package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCyclesDuration(t *testing.T) {
	tests := []struct {
		name string
		c    Cycles
		f    Hertz
		want time.Duration
	}{
		{"1GHz one cycle", 1, GHz, time.Nanosecond},
		{"1GHz thousand cycles", 1000, GHz, time.Microsecond},
		{"500MHz one cycle", 1, 500 * MHz, 2 * time.Nanosecond},
		{"zero frequency", 100, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.c.Duration(tt.f); got != tt.want {
			t.Errorf("%s: Duration = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestCyclesSeconds(t *testing.T) {
	if got := Cycles(2e9).Seconds(GHz); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Seconds = %v, want 2.0", got)
	}
	if got := Cycles(5).Seconds(0); got != 0 {
		t.Errorf("Seconds with zero freq = %v, want 0", got)
	}
}

func TestCyclesOfRoundTrip(t *testing.T) {
	f := 1.3 * GHz
	err := quick.Check(func(us uint16) bool {
		d := time.Duration(us) * time.Microsecond
		c := CyclesOf(d, f)
		back := c.Duration(f)
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Nanosecond
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBandwidthTimeFor(t *testing.T) {
	tests := []struct {
		name string
		b    BytesPerSecond
		n    int64
		want time.Duration
	}{
		{"1GBps 1GB", GBps, 1e9, time.Second},
		{"2GBps 1GB", 2 * GBps, 1e9, 500 * time.Millisecond},
		{"zero bandwidth", 0, 100, 0},
		{"zero bytes", GBps, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.b.TimeFor(tt.n); got != tt.want {
			t.Errorf("%s: TimeFor = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestThroughput(t *testing.T) {
	got := Throughput(2e9, time.Second)
	if math.Abs(got.GB()-2.0) > 1e-9 {
		t.Errorf("Throughput GB = %v, want 2.0", got.GB())
	}
	if Throughput(100, 0) != 0 {
		t.Error("Throughput with zero duration should be 0")
	}
}

func TestThroughputTimeForInverse(t *testing.T) {
	err := quick.Check(func(kb uint16) bool {
		n := int64(kb)*KiB + 1
		b := 3.7 * GBps
		d := b.TimeFor(n)
		if d == 0 {
			return true
		}
		back := Throughput(n, d)
		// Duration quantizes to whole nanoseconds, so allow that rounding.
		return math.Abs(float64(back-b))/float64(b) < 1e-3
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{KiB, "1KiB"},
		{32 * KiB, "32KiB"},
		{2 * MiB, "2MiB"},
		{4 * GiB, "4GiB"},
		{KiB + 1, "1025B"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.162); got != "16.2%" {
		t.Errorf("Percent = %q, want 16.2%%", got)
	}
}

func TestLatencyConversions(t *testing.T) {
	if Lat(time.Microsecond) != 1000 {
		t.Errorf("Lat(1µs) = %v, want 1000", Lat(time.Microsecond))
	}
	if Latency(2500).Duration() != 2500*time.Nanosecond {
		t.Errorf("Duration = %v", Latency(2500).Duration())
	}
	if got := Latency(5e8).Seconds(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Seconds = %v, want 0.5", got)
	}
}

func TestCyclesLat(t *testing.T) {
	// 10 cycles at 2 GHz = 5ns.
	if got := Cycles(10).Lat(2 * GHz); math.Abs(float64(got)-5) > 1e-12 {
		t.Errorf("Lat = %v, want 5", got)
	}
	if Cycles(10).Lat(0) != 0 {
		t.Error("zero frequency should give 0")
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (15 * GBps).String(); got != "15GB/s" {
		t.Errorf("String = %q", got)
	}
	if got := (1.28 * GBps).String(); got != "1.28GB/s" {
		t.Errorf("String = %q", got)
	}
}
