// Package units provides the physical quantities the simulator is built on:
// byte sizes, clock frequencies, bandwidths, and the cycle/time conversions
// between them. Keeping these as distinct types prevents the classic
// "was that cycles or nanoseconds?" class of bugs in timing models.
package units

import (
	"fmt"
	"time"
)

// Common byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Hertz is a clock frequency in Hz.
type Hertz float64

// Frequency helpers.
const (
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// Cycles is a duration measured in clock cycles of some domain.
type Cycles float64

// Duration converts a cycle count in the given clock domain to wall time.
func (c Cycles) Duration(f Hertz) time.Duration {
	if f <= 0 {
		return 0
	}
	return time.Duration(float64(c) / float64(f) * float64(time.Second))
}

// Seconds converts a cycle count to seconds in the given clock domain.
func (c Cycles) Seconds(f Hertz) float64 {
	if f <= 0 {
		return 0
	}
	return float64(c) / float64(f)
}

// CyclesOf converts wall time to cycles in the given clock domain.
func CyclesOf(d time.Duration, f Hertz) Cycles {
	return Cycles(d.Seconds() * float64(f))
}

// Latency is simulated time in nanoseconds. The whole simulator accounts
// critical-path time in this single unit so that latencies composed across
// clock domains (CPU caches serving GPU requests through the I/O-coherence
// port, say) add up without conversion mistakes.
type Latency float64

// Lat converts a wall-clock duration to simulated latency.
func Lat(d time.Duration) Latency { return Latency(d.Nanoseconds()) }

// Duration converts simulated latency back to wall time.
func (l Latency) Duration() time.Duration {
	return time.Duration(float64(l) * float64(time.Nanosecond))
}

// Seconds returns the latency in seconds.
func (l Latency) Seconds() float64 { return float64(l) * 1e-9 }

// Lat converts a cycle count in clock domain f to simulated latency.
func (c Cycles) Lat(f Hertz) Latency {
	if f <= 0 {
		return 0
	}
	return Latency(float64(c) / float64(f) * 1e9)
}

// BytesPerSecond is a bandwidth. The value is bytes per second.
type BytesPerSecond float64

// Bandwidth helpers.
const (
	MBps BytesPerSecond = 1e6
	GBps BytesPerSecond = 1e9
)

// GB returns the bandwidth expressed in GB/s (decimal), the unit the paper's
// tables use.
func (b BytesPerSecond) GB() float64 { return float64(b) / 1e9 }

// TimeFor returns how long moving n bytes takes at this bandwidth.
func (b BytesPerSecond) TimeFor(n int64) time.Duration {
	if b <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(b) * float64(time.Second))
}

// Throughput returns the bandwidth achieved moving n bytes in d.
func Throughput(n int64, d time.Duration) BytesPerSecond {
	if d <= 0 {
		return 0
	}
	return BytesPerSecond(float64(n) / d.Seconds())
}

// FormatBytes renders a byte count in the most natural binary unit.
func FormatBytes(n int64) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%dGiB", n/GiB)
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%dMiB", n/MiB)
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%dKiB", n/KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Percent formats a ratio as a percentage with one decimal.
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// String renders the bandwidth in GB/s.
func (b BytesPerSecond) String() string { return fmt.Sprintf("%.3gGB/s", b.GB()) }
