package hazard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseTrace throws arbitrary bytes at both CSV parsers and holds them to
// three properties:
//
//  1. They never panic or hang — any input either parses or returns an error.
//  2. Every event they accept has a span CheckTrace can safely walk
//     (validateSpan), so a parsed trace can never drive the checker's
//     per-line loops into effectively unbounded iteration.
//  3. ParseEvents round-trips: re-serializing accepted events and reparsing
//     yields the same events.
//
// CheckTrace itself is exercised only on traces whose accepted spans are
// small, keeping each fuzz iteration fast.
func FuzzParseTrace(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join("testdata", "mutated_trace.csv"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("warp,instr,kind,path,addr,size\n0,0,read,cached,0,4\n1,0,write,pinned,64,4\n"))
	f.Add([]byte("seq,agent,op,path,addr,size\n0,cpu,write,pinned,0,64\n1,gpu,read,pinned,0,64\n"))
	f.Add([]byte("# comment\nseq,agent,op,path,addr,size\n0,cpu,barrier,,0,0\n1,gpu,flush,,0,0\n"))
	// Historic crashers: negative and overflowing spans, huge indices,
	// empty and whitespace-only lines, truncated rows.
	f.Add([]byte("0,cpu,read,pinned,-1,10\n"))
	f.Add([]byte("0,gpu,write,cached,1,9223372036854775807\n"))
	f.Add([]byte("0,0,read,cached,281474976710656,64\n"))
	f.Add([]byte("\n\n   \n0,cpu,read\n"))
	f.Add([]byte("seq,agent,op,path,addr,size\n0,cpu,flush,,5,-3\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		in := string(data)

		gpuEvents, gpuErr := ParseGPUTrace(strings.NewReader(in))
		if gpuErr == nil {
			checkAccepted(t, "ParseGPUTrace", gpuEvents)
		}

		events, err := ParseEvents(strings.NewReader(in))
		if err != nil {
			return
		}
		checkAccepted(t, "ParseEvents", events)

		// Round-trip: what ParseEvents accepted must reparse identically.
		var sb strings.Builder
		for _, e := range events {
			fmt.Fprintf(&sb, "%d,%s,%s,%s,%d,%d\n", e.Seq, e.Agent, e.Op, e.Path, e.Addr, e.Size)
		}
		again, err := ParseEvents(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\ninput: %q", err, sb.String())
		}
		if len(again) != len(events) {
			t.Fatalf("round-trip: %d events became %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round-trip event %d: %+v became %+v", i, events[i], again[i])
			}
		}

		// Replay through the checker only when the accepted spans are small
		// enough that the per-line loops stay trivially bounded.
		const maxFuzzSpan = 1 << 20
		for _, e := range events {
			if e.Addr+e.Size > maxFuzzSpan {
				return
			}
		}
		CheckTrace("fuzz", events, TraceOptions{})
		CheckTrace("fuzz-coherent", events, TraceOptions{IOCoherent: true, LineSize: 32})
	})
}

// checkAccepted asserts property 2: every parsed event is safe to replay.
func checkAccepted(t *testing.T, parser string, events []Event) {
	t.Helper()
	for i, e := range events {
		if err := validateSpan(e.Addr, e.Size); err != nil {
			t.Fatalf("%s accepted event %d with unsafe span: %v", parser, i, err)
		}
	}
}
