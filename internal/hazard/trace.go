package hazard

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"igpucomm/internal/faults"
)

// faultTraceParse mangles trace bytes before parsing — the stand-in for a
// truncated or bit-rotted profiler trace file. The parsers' validation must
// reject whatever survives mangling; the fuzz suite holds them to that.
var faultTraceParse = faults.Register("hazard.trace.parse",
	"trace CSV bytes entering the parsers",
	faults.CanError|faults.CanCorrupt|faults.CanTruncate)

// faultTraceReader applies the trace-parse fault point to a reader's bytes.
// With injection off it returns the reader untouched (no extra copy).
func faultTraceReader(r io.Reader) (io.Reader, error) {
	if !faults.Enabled() {
		return r, nil
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	data, err = faults.FireData(faultTraceParse, data)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// TraceAgent identifies the side that issued a trace event.
type TraceAgent int

// Trace agents.
const (
	TraceCPU TraceAgent = 0
	TraceGPU TraceAgent = 1
)

func (a TraceAgent) String() string { return agentName(int(a)) }

// Op is a trace event's operation.
type Op int

// Trace operations.
const (
	// OpRead and OpWrite are memory accesses.
	OpRead Op = iota
	OpWrite
	// OpFlush is a software-coherence cache flush by the issuing agent
	// (writeback + invalidate; Size 0 means flush-all).
	OpFlush
	// OpBarrier is a global synchronization point ordering everything
	// before it against everything after it (the phase barrier, a kernel
	// launch boundary, a cudaDeviceSynchronize).
	OpBarrier
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	case OpBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Event is one replayed trace record.
type Event struct {
	Seq   int
	Agent TraceAgent
	Op    Op
	// Path is the route the access took: "cached" (through the agent's
	// cache hierarchy), "pinned" (uncached zero-copy), or "pinned-wc"
	// (write-combined store). Empty for flushes and barriers.
	Path string
	Addr int64
	Size int64
}

// Range is a half-open address interval [Addr, Addr+Size).
type Range struct {
	Addr, Size int64
}

// End returns the first address past the range.
func (r Range) End() int64 { return r.Addr + r.Size }

func (r Range) contains(addr int64) bool { return addr >= r.Addr && addr < r.End() }

// TraceOptions scope the trace checker.
type TraceOptions struct {
	// LineSize is the conflict granularity in bytes (0 means 64 — the
	// cache line size of every catalogued device).
	LineSize int64
	// Shared restricts cross-agent hazard detection to these address
	// ranges (the shared pinned buffers). Nil means every address is in
	// scope.
	Shared []Range
	// IOCoherent disables the flush-ordering check: with hardware I/O
	// coherence the GPU snoops the CPU LLC, so a dirty CPU line is not a
	// stale read (the Xavier wiring, internal/coherence.IOPort).
	IOCoherent bool
}

func (o TraceOptions) line() int64 {
	if o.LineSize > 0 {
		return o.LineSize
	}
	return 64
}

func (o TraceOptions) inShared(addr int64) bool {
	if len(o.Shared) == 0 {
		return true
	}
	for _, r := range o.Shared {
		if r.contains(addr) {
			return true
		}
	}
	return false
}

// lineState is what each agent did to one line within the current epoch.
type lineState struct {
	read, wrote       bool
	readSeq, writeSeq int
}

// CheckTrace replays a transaction trace and reports data hazards:
//
//   - RAW/WAR/WAW: two accesses to the same line by different agents with
//     at least one write and no barrier between them. Barriers delimit
//     epochs; accesses in the same epoch by different agents are concurrent.
//   - FlushOrder: an access reads a line the other agent dirtied in its
//     cache (a cached-path write) with no intervening flush by that agent —
//     the software-coherence protocol violation internal/coherence exists
//     to prevent. Suppressed when TraceOptions.IOCoherent is set.
//
// Findings are deduplicated per (line, kind): a hazardous loop reports each
// broken line once, not once per iteration.
func CheckTrace(subject string, events []Event, opt TraceOptions) Report {
	rep := Report{Subject: "trace " + subject}
	line := opt.line()

	epoch := 0
	cur := make(map[int64]*[2]lineState) // line -> per-agent state, this epoch
	dirty := [2]map[int64]int{{}, {}}    // agent -> line -> dirtying seq
	seen := make(map[[2]int64]bool)      // (line, kind) already reported

	report := func(k Kind, lineNo int64, firstSeq, secondSeq int, detail string) {
		key := [2]int64{lineNo, int64(k)}
		if seen[key] {
			return
		}
		seen[key] = true
		rep.add(Finding{
			Kind: k, Phase: epoch, Tile: -1, OtherTile: -1,
			Addr: lineNo * line, Size: line,
			Seq: firstSeq, OtherSeq: secondSeq,
			Detail: detail,
		})
	}

	for _, e := range events {
		rep.Checked++
		switch e.Op {
		case OpBarrier:
			cur = make(map[int64]*[2]lineState)
			epoch++
			continue
		case OpFlush:
			d := dirty[int(e.Agent)]
			if e.Size <= 0 {
				dirty[int(e.Agent)] = map[int64]int{}
				continue
			}
			for ln := e.Addr / line; ln <= (e.Addr+e.Size-1)/line; ln++ {
				delete(d, ln)
			}
			continue
		}
		if e.Size <= 0 {
			continue
		}
		me := int(e.Agent)
		other := 1 - me
		first := e.Addr / line
		last := (e.Addr + e.Size - 1) / line
		for ln := first; ln <= last; ln++ {
			// Flush-ordering: reading a line the other side holds dirty.
			if e.Op == OpRead && !opt.IOCoherent {
				if dseq, ok := dirty[other][ln]; ok {
					report(FlushOrder, ln, dseq, e.Seq, fmt.Sprintf(
						"%s reads line 0x%x (seq %d) dirtied by %s cached write (seq %d) with no intervening %s flush",
						e.Agent, ln*line, e.Seq, TraceAgent(other), dseq, TraceAgent(other)))
				}
			}
			if e.Op == OpWrite && e.Path == "cached" {
				dirty[me][ln] = e.Seq
			}

			// Cross-agent same-epoch conflicts on shared ranges.
			if !opt.inShared(ln * line) {
				continue
			}
			st := cur[ln]
			if st == nil {
				st = &[2]lineState{}
				cur[ln] = st
			}
			o := st[other]
			switch e.Op {
			case OpRead:
				if o.wrote {
					report(RAW, ln, o.writeSeq, e.Seq, fmt.Sprintf(
						"epoch %d: %s read of line 0x%x (seq %d) races %s write (seq %d) — no barrier between them",
						epoch, e.Agent, ln*line, e.Seq, TraceAgent(other), o.writeSeq))
				}
				if !st[me].read {
					st[me].read = true
					st[me].readSeq = e.Seq
				}
			case OpWrite:
				if o.wrote {
					report(WAW, ln, o.writeSeq, e.Seq, fmt.Sprintf(
						"epoch %d: %s write of line 0x%x (seq %d) races %s write (seq %d) — no barrier between them",
						epoch, e.Agent, ln*line, e.Seq, TraceAgent(other), o.writeSeq))
				} else if o.read {
					report(WAR, ln, o.readSeq, e.Seq, fmt.Sprintf(
						"epoch %d: %s write of line 0x%x (seq %d) races %s read (seq %d) — no barrier between them",
						epoch, e.Agent, ln*line, e.Seq, TraceAgent(other), o.readSeq))
				}
				if !st[me].wrote {
					st[me].wrote = true
					st[me].writeSeq = e.Seq
				}
			}
		}
	}
	return rep
}

// maxTraceSpan bounds addr+size for any parsed event. 2^48 covers every
// physical address a catalogued SoC can emit with a wide margin; anything
// larger is a corrupt trace, and admitting it would make CheckTrace's
// per-line loops walk on the order of 2^40 lines — an effective hang on
// attacker-shaped input.
const maxTraceSpan = int64(1) << 48

// validateSpan rejects the [addr, addr+size) spans CheckTrace cannot safely
// walk: negative addresses or sizes, spans that overflow int64, and spans
// past maxTraceSpan.
func validateSpan(addr, size int64) error {
	switch {
	case addr < 0:
		return fmt.Errorf("negative addr %d", addr)
	case size < 0:
		return fmt.Errorf("negative size %d", size)
	case size > maxTraceSpan || addr > maxTraceSpan-size:
		return fmt.Errorf("span [%d, %d+%d) exceeds %d", addr, addr, size, maxTraceSpan)
	}
	return nil
}

// ParseGPUTrace reads the CSV cmd/trace (gpu.TraceTransactions) emits —
// header "warp,instr,kind,path,addr,size" — into GPU-agent events, in file
// order. The caller composes these with CPU-side events and barriers before
// checking.
func ParseGPUTrace(r io.Reader) ([]Event, error) {
	r, err := faultTraceReader(r)
	if err != nil {
		return nil, fmt.Errorf("hazard: gpu trace: %w", err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(text, "warp,") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 6 {
			return nil, fmt.Errorf("hazard: gpu trace line %d: want 6 fields, got %d", lineNo, len(f))
		}
		op, err := parseOp(f[2])
		if err != nil {
			return nil, fmt.Errorf("hazard: gpu trace line %d: %w", lineNo, err)
		}
		addr, err1 := strconv.ParseInt(f[4], 10, 64)
		size, err2 := strconv.ParseInt(f[5], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("hazard: gpu trace line %d: bad addr/size %q/%q", lineNo, f[4], f[5])
		}
		if err := validateSpan(addr, size); err != nil {
			return nil, fmt.Errorf("hazard: gpu trace line %d: %w", lineNo, err)
		}
		events = append(events, Event{
			Seq: len(events), Agent: TraceGPU, Op: op, Path: f[3], Addr: addr, Size: size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hazard: gpu trace: %w", err)
	}
	return events, nil
}

// ParseEvents reads the checker's own event CSV — header
// "seq,agent,op,path,addr,size" with agent cpu|gpu and op
// read|write|flush|barrier — the format test fixtures and external tools
// use to feed full multi-agent traces in.
func ParseEvents(r io.Reader) ([]Event, error) {
	r, err := faultTraceReader(r)
	if err != nil {
		return nil, fmt.Errorf("hazard: events: %w", err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "seq,") { // header (comments may precede it)
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 6 {
			return nil, fmt.Errorf("hazard: events line %d: want 6 fields, got %d", lineNo, len(f))
		}
		seq, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("hazard: events line %d: bad seq %q", lineNo, f[0])
		}
		var agent TraceAgent
		switch f[1] {
		case "cpu":
			agent = TraceCPU
		case "gpu":
			agent = TraceGPU
		default:
			return nil, fmt.Errorf("hazard: events line %d: unknown agent %q", lineNo, f[1])
		}
		op, err := parseOp(f[2])
		if err != nil {
			return nil, fmt.Errorf("hazard: events line %d: %w", lineNo, err)
		}
		addr, err1 := strconv.ParseInt(f[4], 10, 64)
		size, err2 := strconv.ParseInt(f[5], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("hazard: events line %d: bad addr/size %q/%q", lineNo, f[4], f[5])
		}
		if err := validateSpan(addr, size); err != nil {
			return nil, fmt.Errorf("hazard: events line %d: %w", lineNo, err)
		}
		events = append(events, Event{Seq: seq, Agent: agent, Op: op, Path: f[3], Addr: addr, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hazard: events: %w", err)
	}
	return events, nil
}

func parseOp(s string) (Op, error) {
	switch s {
	case "read":
		return OpRead, nil
	case "write":
		return OpWrite, nil
	case "flush":
		return OpFlush, nil
	case "barrier":
		return OpBarrier, nil
	default:
		return 0, fmt.Errorf("unknown op %q", s)
	}
}
