package hazard

// Clock is a vector clock over a fixed set of agents. Index i is agent i's
// logical time. The schedule verifier runs one clock per agent and joins
// them at every phase barrier, so "ordered by a barrier" becomes the
// checkable statement "the earlier access's clock happens-before the later
// access's clock".
type Clock []int

// NewClock returns a zeroed clock for n agents.
func NewClock(n int) Clock { return make(Clock, n) }

// Copy returns an independent copy.
func (c Clock) Copy() Clock {
	out := make(Clock, len(c))
	copy(out, c)
	return out
}

// Tick advances agent i's component (a local event).
func (c Clock) Tick(i int) { c[i]++ }

// Join folds another clock in component-wise (a synchronization edge).
func (c Clock) Join(o Clock) {
	for i := range c {
		if i < len(o) && o[i] > c[i] {
			c[i] = o[i]
		}
	}
}

// LessEq reports whether c ≤ o component-wise.
func (c Clock) LessEq(o Clock) bool {
	for i := range c {
		oi := 0
		if i < len(o) {
			oi = o[i]
		}
		if c[i] > oi {
			return false
		}
	}
	return true
}

// HappensBefore reports whether c strictly precedes o: c ≤ o and c ≠ o.
func (c Clock) HappensBefore(o Clock) bool {
	if !c.LessEq(o) {
		return false
	}
	for i := range c {
		oi := 0
		if i < len(o) {
			oi = o[i]
		}
		if c[i] < oi {
			return true
		}
	}
	return false
}

// Concurrent reports whether neither clock precedes the other — the
// condition under which two conflicting accesses are a data race.
func Concurrent(a, b Clock) bool {
	return !a.HappensBefore(b) && !b.HappensBefore(a)
}
