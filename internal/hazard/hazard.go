// Package hazard statically and dynamically verifies CPU-iGPU communication
// schedules. The paper's zero-copy pattern (§III-C, Fig 4) is race-free only
// because even/odd tile ownership keeps the two sides' accesses disjoint
// within a phase and the phase barrier orders everything across phases —
// properties the rest of the repo asserts in comments. This package proves
// them (or refutes them with a concrete counterexample):
//
//   - The schedule verifier takes an explicit per-phase tile assignment
//     (derived from a tiling.Pattern or injected by hand) and checks that
//     CPU and GPU tile sets are disjoint per phase and that every
//     cross-parity access pair is ordered by a phase barrier, using a
//     vector-clock happens-before model.
//   - The layout verifier checks that no two live mmu allocations overlap.
//   - The trace checker replays coalesced transaction traces (the CSV
//     cmd/trace emits) and flags RAW/WAR/WAW hazards on shared buffers and
//     software-coherence flush-ordering violations (an access to a line the
//     other side dirtied in its cache with no intervening flush).
//
// internal/comm wires the verifier into the communication models as an
// opt-in checked mode; cmd/hazardcheck exposes it over every device × app ×
// model combination.
package hazard

import (
	"fmt"
	"strings"
)

// Kind classifies a finding.
type Kind int

// Finding kinds.
const (
	// ParityOverlap: a tile is assigned to both CPU and GPU in one phase.
	ParityOverlap Kind = iota
	// BarrierOrder: two cross-agent accesses to one tile are not ordered
	// by any phase barrier (concurrent under the vector-clock model).
	BarrierOrder
	// LayoutOverlap: two live allocations overlap in the address space.
	LayoutOverlap
	// ZeroSized: an allocation or tile set is empty where it must not be.
	ZeroSized
	// RAW: a read observes data concurrently written by the other agent.
	RAW
	// WAR: a write clobbers data the other agent is concurrently reading.
	WAR
	// WAW: two concurrent writes to the same line by different agents.
	WAW
	// FlushOrder: an agent reads a line the other side dirtied in its
	// cache with no intervening flush (software-coherence violation).
	FlushOrder
)

func (k Kind) String() string {
	switch k {
	case ParityOverlap:
		return "parity-overlap"
	case BarrierOrder:
		return "barrier-order"
	case LayoutOverlap:
		return "layout-overlap"
	case ZeroSized:
		return "zero-sized"
	case RAW:
		return "raw"
	case WAR:
		return "war"
	case WAW:
		return "waw"
	case FlushOrder:
		return "flush-order"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Finding is one verified hazard: a schedule, layout or trace fact that
// breaks the communication model's correctness argument.
type Finding struct {
	Kind Kind

	// Phase is the schedule phase (or trace epoch) the conflict occurs in;
	// -1 when not applicable.
	Phase int
	// Tile and OtherTile are the conflicting tile indices for schedule
	// findings; -1 when not applicable.
	Tile, OtherTile int
	// Buffer and OtherBuffer name the conflicting allocations for layout
	// findings.
	Buffer, OtherBuffer string
	// Addr and Size locate the conflicting bytes for layout and trace
	// findings.
	Addr, Size int64
	// Seq and OtherSeq are the trace event sequence numbers in conflict;
	// -1 when not applicable.
	Seq, OtherSeq int

	// Detail is the human-readable counterexample.
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s", f.Kind, f.Detail)
}

// Report is the structured outcome of one verification run.
type Report struct {
	// Subject names what was verified ("schedule jetson-tx2/shwfs/zc",
	// "layout", "trace", ...).
	Subject string
	// Checked counts the facts examined (tile pairs, buffer pairs, trace
	// events) so "zero findings" is distinguishable from "checked nothing".
	Checked int
	// Findings are the verified hazards, in discovery order.
	Findings []Finding
}

// OK reports whether the verification found no hazards.
func (r Report) OK() bool { return len(r.Findings) == 0 }

// add appends a finding.
func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// Merge folds another report into this one, summing the checked counts.
func (r *Report) Merge(o Report) {
	r.Checked += o.Checked
	r.Findings = append(r.Findings, o.Findings...)
}

// CountKind returns how many findings have the given kind.
func (r Report) CountKind(k Kind) int {
	n := 0
	for _, f := range r.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// String renders the report for CLIs and logs.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d checks", r.Subject, r.Checked)
	if r.OK() {
		b.WriteString(", no hazards")
		return b.String()
	}
	fmt.Fprintf(&b, ", %d hazards:", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return b.String()
}
