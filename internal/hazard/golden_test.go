package hazard_test

// Golden end-to-end checks for the trace checker, in an external test
// package so they can drive the real device catalog, the shwfs case study
// and the GPU's transaction tracer (which sit above package hazard in the
// dependency order).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/hazard"
)

// TestGoldenShwfsZCTraceOnTX2 replays exactly what `cmd/trace -device
// jetson-tx2 -app shwfs -model zc` exports — the kernel's coalesced
// transactions on pinned buffers — wrapped with the CPU's producer writes
// and consumer reads under the zero-copy protocol (no flushes; barriers at
// the launch boundaries). The seed schedule must come out hazard-free.
func TestGoldenShwfsZCTraceOnTX2(t *testing.T) {
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := shwfs.Workload(shwfs.DefaultWorkloadParams())
	if err != nil {
		t.Fatal(err)
	}

	// Place every buffer pinned, the way cmd/trace does for -model zc.
	lay := comm.Layout{}
	all := append(append(append([]comm.BufferSpec{}, w.In...), w.Out...), w.Scratch...)
	for _, spec := range all {
		b, err := s.AllocPinned("trace/"+spec.Name, spec.Size)
		if err != nil {
			t.Fatal(err)
		}
		lay[spec.Name] = b
	}

	var csv bytes.Buffer
	if err := s.GPU.TraceTransactions(w.MakeKernel(lay, 0), &csv); err != nil {
		t.Fatal(err)
	}
	gpuEvents, err := hazard.ParseGPUTrace(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(gpuEvents) == 0 {
		t.Fatal("empty kernel trace")
	}

	// CPU producer epoch, barrier, kernel, barrier, CPU consumer epoch.
	var events []hazard.Event
	seq := 0
	emit := func(agent hazard.TraceAgent, op hazard.Op, addr, size int64) {
		events = append(events, hazard.Event{Seq: seq, Agent: agent, Op: op, Path: "pinned", Addr: addr, Size: size})
		seq++
	}
	for _, spec := range w.In {
		b := lay[spec.Name]
		emit(hazard.TraceCPU, hazard.OpWrite, b.Addr, b.Size)
	}
	emit(hazard.TraceCPU, hazard.OpBarrier, 0, 0)
	for _, e := range gpuEvents {
		e.Seq = seq
		seq++
		events = append(events, e)
	}
	emit(hazard.TraceGPU, hazard.OpBarrier, 0, 0)
	for _, spec := range w.Out {
		b := lay[spec.Name]
		emit(hazard.TraceCPU, hazard.OpRead, b.Addr, b.Size)
	}

	rep := hazard.CheckTrace("golden shwfs/zc/tx2", events, hazard.TraceOptions{
		LineSize:   64,
		IOCoherent: false, // TX2 has no hardware I/O coherence
	})
	if !rep.OK() {
		t.Fatalf("seed trace flagged:\n%s", rep)
	}
	if rep.Checked == 0 {
		t.Fatal("checker inspected nothing")
	}
}

// TestGoldenMutatedTraceOneRAW feeds the checked-in mutated fixture — a
// zero-copy trace whose final CPU write lost its barrier — and requires
// exactly one finding: a RAW on the orphaned line.
func TestGoldenMutatedTraceOneRAW(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "mutated_trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := hazard.ParseEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := hazard.CheckTrace("mutated fixture", events, hazard.TraceOptions{LineSize: 64})
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d:\n%s", len(rep.Findings), rep)
	}
	got := rep.Findings[0]
	if got.Kind != hazard.RAW {
		t.Errorf("kind = %s, want RAW", got.Kind)
	}
	if got.Addr != 4096 {
		t.Errorf("hazard at %d, want the mutated line 4096", got.Addr)
	}
}
