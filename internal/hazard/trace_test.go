package hazard

import (
	"strings"
	"testing"
)

func ev(seq int, agent TraceAgent, op Op, path string, addr, size int64) Event {
	return Event{Seq: seq, Agent: agent, Op: op, Path: path, Addr: addr, Size: size}
}

func TestCheckTraceCleanPhases(t *testing.T) {
	// CPU produces a buffer, barrier, GPU consumes it: the ZC protocol.
	events := []Event{
		ev(0, TraceCPU, OpWrite, "pinned", 0, 256),
		ev(1, TraceCPU, OpBarrier, "", 0, 0),
		ev(2, TraceGPU, OpRead, "pinned", 0, 256),
		ev(3, TraceGPU, OpWrite, "pinned-wc", 4096, 64),
		ev(4, TraceGPU, OpBarrier, "", 0, 0),
		ev(5, TraceCPU, OpRead, "pinned", 4096, 64),
	}
	rep := CheckTrace("clean", events, TraceOptions{})
	if !rep.OK() {
		t.Fatalf("phase-separated trace must be clean, got:\n%s", rep)
	}
	if rep.Checked != len(events) {
		t.Fatalf("checked %d events, want %d", rep.Checked, len(events))
	}
}

func TestCheckTraceRAW(t *testing.T) {
	// GPU reads the line the CPU is concurrently writing: no barrier.
	events := []Event{
		ev(0, TraceCPU, OpWrite, "pinned", 128, 64),
		ev(1, TraceGPU, OpRead, "pinned", 128, 64),
	}
	rep := CheckTrace("raw", events, TraceOptions{})
	if rep.CountKind(RAW) != 1 || len(rep.Findings) != 1 {
		t.Fatalf("want exactly one RAW, got:\n%s", rep)
	}
	f := rep.Findings[0]
	if f.Seq != 0 || f.OtherSeq != 1 || f.Addr != 128 {
		t.Fatalf("RAW counterexample wrong: %+v", f)
	}
}

func TestCheckTraceWARAndWAW(t *testing.T) {
	events := []Event{
		ev(0, TraceCPU, OpRead, "pinned", 0, 64),
		ev(1, TraceGPU, OpWrite, "pinned", 0, 64), // WAR vs seq 0
		ev(2, TraceCPU, OpWrite, "pinned", 0, 64), // WAW vs seq 1
	}
	rep := CheckTrace("mixed", events, TraceOptions{})
	if rep.CountKind(WAR) != 1 || rep.CountKind(WAW) != 1 {
		t.Fatalf("want one WAR and one WAW, got:\n%s", rep)
	}
}

func TestCheckTraceDedupesPerLine(t *testing.T) {
	// A racing loop over the same line must report the line once.
	var events []Event
	events = append(events, ev(0, TraceCPU, OpWrite, "pinned", 0, 64))
	for i := 1; i <= 10; i++ {
		events = append(events, ev(i, TraceGPU, OpRead, "pinned", 0, 64))
	}
	rep := CheckTrace("loop", events, TraceOptions{})
	if rep.CountKind(RAW) != 1 {
		t.Fatalf("want deduped single RAW, got:\n%s", rep)
	}
}

func TestCheckTraceSharedScope(t *testing.T) {
	// The same race outside the declared shared ranges is out of scope.
	events := []Event{
		ev(0, TraceCPU, OpWrite, "pinned", 0, 64),
		ev(1, TraceGPU, OpRead, "pinned", 0, 64),
	}
	rep := CheckTrace("scoped", events, TraceOptions{Shared: []Range{{Addr: 1 << 20, Size: 4096}}})
	if !rep.OK() {
		t.Fatalf("race outside shared ranges must be ignored, got:\n%s", rep)
	}
}

func TestCheckTraceFlushOrdering(t *testing.T) {
	// CPU dirties a line in its cache; GPU reads it before any flush: the
	// software-coherence violation.
	stale := []Event{
		ev(0, TraceCPU, OpWrite, "cached", 64, 64),
		ev(1, TraceCPU, OpBarrier, "", 0, 0),
		ev(2, TraceGPU, OpRead, "cached", 64, 64),
	}
	rep := CheckTrace("stale", stale, TraceOptions{})
	if rep.CountKind(FlushOrder) != 1 {
		t.Fatalf("want a flush-order finding, got:\n%s", rep)
	}
	if !strings.Contains(rep.Findings[0].Detail, "no intervening cpu flush") {
		t.Fatalf("detail unhelpful: %s", rep.Findings[0].Detail)
	}

	// With the SC protocol's pre-kernel flush, the same trace is clean.
	flushed := []Event{
		ev(0, TraceCPU, OpWrite, "cached", 64, 64),
		ev(1, TraceCPU, OpFlush, "", 64, 64),
		ev(2, TraceCPU, OpBarrier, "", 0, 0),
		ev(3, TraceGPU, OpRead, "cached", 64, 64),
	}
	if rep := CheckTrace("flushed", flushed, TraceOptions{}); !rep.OK() {
		t.Fatalf("flushed trace must be clean, got:\n%s", rep)
	}

	// With hardware I/O coherence the dirty line is snooped, not stale.
	if rep := CheckTrace("coherent", stale, TraceOptions{IOCoherent: true}); !rep.OK() {
		t.Fatalf("io-coherent platform must not flag flush ordering, got:\n%s", rep)
	}
}

func TestCheckTraceFlushAll(t *testing.T) {
	events := []Event{
		ev(0, TraceCPU, OpWrite, "cached", 0, 256), // 4 dirty lines
		ev(1, TraceCPU, OpFlush, "", 0, 0),         // flush-all
		ev(2, TraceCPU, OpBarrier, "", 0, 0),
		ev(3, TraceGPU, OpRead, "cached", 0, 256),
	}
	if rep := CheckTrace("flush-all", events, TraceOptions{}); !rep.OK() {
		t.Fatalf("flush-all must clear every dirty line, got:\n%s", rep)
	}
}

func TestParseGPUTrace(t *testing.T) {
	csv := "warp,instr,kind,path,addr,size\n" +
		"0,0,read,cached,4096,64\n" +
		"0,3,write,pinned-wc,8192,32\n"
	events, err := ParseGPUTrace(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("ParseGPUTrace: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events, got %d", len(events))
	}
	if events[0].Agent != TraceGPU || events[0].Op != OpRead || events[0].Addr != 4096 {
		t.Fatalf("event 0 wrong: %+v", events[0])
	}
	if events[1].Op != OpWrite || events[1].Path != "pinned-wc" || events[1].Size != 32 {
		t.Fatalf("event 1 wrong: %+v", events[1])
	}

	if _, err := ParseGPUTrace(strings.NewReader("warp,instr,kind,path,addr,size\n0,0,bogus,cached,0,4\n")); err == nil {
		t.Fatalf("bad op must error")
	}
}

func TestParseEvents(t *testing.T) {
	csv := "seq,agent,op,path,addr,size\n" +
		"# comment lines are skipped\n" +
		"0,cpu,write,cached,0,64\n" +
		"1,cpu,flush,,0,64\n" +
		"2,cpu,barrier,,0,0\n" +
		"3,gpu,read,cached,0,64\n"
	events, err := ParseEvents(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("ParseEvents: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("want 4 events, got %d", len(events))
	}
	if rep := CheckTrace("fixture", events, TraceOptions{}); !rep.OK() {
		t.Fatalf("fixture must be clean, got:\n%s", rep)
	}

	if _, err := ParseEvents(strings.NewReader("0,martian,read,cached,0,4\n")); err == nil {
		t.Fatalf("unknown agent must error")
	}
}
