package hazard

import (
	"strings"
	"testing"

	"igpucomm/internal/mmu"
	"igpucomm/internal/tiling"
)

func mustGeometry(t *testing.T, w, h int) tiling.Geometry {
	t.Helper()
	g, err := tiling.NewGeometry(w, h, 4, 64, 64)
	if err != nil {
		t.Fatalf("NewGeometry: %v", err)
	}
	return g
}

func TestClockHappensBefore(t *testing.T) {
	a := NewClock(2)
	b := NewClock(2)
	if !Concurrent(a, b) == false && a.HappensBefore(b) {
		t.Fatalf("equal clocks must not be ordered")
	}
	a.Tick(0) // a = [1,0]
	if !Concurrent(a, b) {
		// b = [0,0] ≤ a but b != a, so b -> a; they are ordered.
	}
	if !b.HappensBefore(a) {
		t.Fatalf("zero clock should precede ticked clock")
	}
	if a.HappensBefore(b) {
		t.Fatalf("ticked clock must not precede zero clock")
	}
	b.Tick(1) // b = [0,1]: now concurrent with a = [1,0]
	if !Concurrent(a, b) {
		t.Fatalf("[1,0] and [0,1] must be concurrent")
	}
	b.Join(a) // b = [1,1]
	if !a.HappensBefore(b) {
		t.Fatalf("after join, a must precede b")
	}
}

func TestFromPatternVerifies(t *testing.T) {
	g := mustGeometry(t, 64, 8)
	sched, err := FromPattern(tiling.Pattern{Geo: g, Phases: 6})
	if err != nil {
		t.Fatalf("FromPattern: %v", err)
	}
	rep := VerifySchedule(sched)
	if !rep.OK() {
		t.Fatalf("even/odd schedule must verify clean, got:\n%s", rep)
	}
	if rep.Checked == 0 {
		t.Fatalf("clean report must record facts checked")
	}
}

func TestVerifyScheduleParityOverlap(t *testing.T) {
	g := mustGeometry(t, 64, 2) // 4x2 tiles
	sched, err := FromPattern(tiling.Pattern{Geo: g, Phases: 2})
	if err != nil {
		t.Fatalf("FromPattern: %v", err)
	}
	// Inject the bug the verifier exists to catch: give the GPU a tile the
	// CPU already owns in phase 1.
	stolen := sched.Phases[1].CPU[0]
	sched.Phases[1].GPU = append(sched.Phases[1].GPU, stolen)

	rep := VerifySchedule(sched)
	if rep.OK() {
		t.Fatalf("overlapping schedule must be refuted")
	}
	if rep.CountKind(ParityOverlap) != 1 {
		t.Fatalf("want exactly 1 parity-overlap finding, got:\n%s", rep)
	}
	f := rep.Findings[0]
	if f.Phase != 1 || f.Tile != stolen {
		t.Fatalf("counterexample must name phase 1 and tile %d, got %+v", stolen, f)
	}
	if !strings.Contains(f.Detail, "phase 1") || !strings.Contains(f.Detail, "both cpu and gpu") {
		t.Fatalf("counterexample detail unhelpful: %s", f.Detail)
	}
}

func TestVerifyScheduleMissingBarrier(t *testing.T) {
	g := mustGeometry(t, 32, 2)
	sched, err := FromPattern(tiling.Pattern{Geo: g, Phases: 2})
	if err != nil {
		t.Fatalf("FromPattern: %v", err)
	}
	// Omit the barrier between phase 0 and phase 1: every tile is then
	// touched by both sides with no ordering edge between the touches.
	sched.SkipBarrierAfter = map[int]bool{0: true}

	rep := VerifySchedule(sched)
	if rep.OK() {
		t.Fatalf("barrier-free schedule must be refuted")
	}
	if rep.CountKind(BarrierOrder) != g.TileCount() {
		t.Fatalf("want one barrier-order finding per tile (%d), got %d:\n%s",
			g.TileCount(), rep.CountKind(BarrierOrder), rep)
	}
}

func TestVerifyScheduleEmpty(t *testing.T) {
	rep := VerifySchedule(Schedule{})
	if rep.OK() || rep.Findings[0].Kind != ZeroSized {
		t.Fatalf("empty schedule must yield a zero-sized finding, got:\n%s", rep)
	}
}

func TestVerifyLayout(t *testing.T) {
	clean := []mmu.Buffer{
		{Name: "a", Addr: 0, Size: 64},
		{Name: "b", Addr: 64, Size: 128},
		{Name: "c", Addr: 1024, Size: 64},
	}
	if rep := VerifyLayout("clean", clean); !rep.OK() {
		t.Fatalf("disjoint layout must verify, got:\n%s", rep)
	}

	overlapped := []mmu.Buffer{
		{Name: "a", Addr: 0, Size: 128},
		{Name: "b", Addr: 64, Size: 64},
	}
	rep := VerifyLayout("overlap", overlapped)
	if rep.CountKind(LayoutOverlap) != 1 {
		t.Fatalf("want 1 overlap finding, got:\n%s", rep)
	}
	f := rep.Findings[0]
	if f.Buffer != "a" || f.OtherBuffer != "b" || f.Size != 64 {
		t.Fatalf("overlap counterexample wrong: %+v", f)
	}

	zero := []mmu.Buffer{{Name: "z", Addr: 0, Size: 0}}
	if rep := VerifyLayout("zero", zero); rep.CountKind(ZeroSized) != 1 {
		t.Fatalf("want zero-sized finding, got:\n%s", rep)
	}
}

func TestReportMergeAndString(t *testing.T) {
	a := Report{Subject: "a", Checked: 3}
	b := Report{Subject: "b", Checked: 4}
	b.add(Finding{Kind: RAW, Detail: "x"})
	a.Merge(b)
	if a.Checked != 7 || len(a.Findings) != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "1 hazards") || !strings.Contains(s, "[raw]") {
		t.Fatalf("report string unhelpful: %s", s)
	}
}
