package hazard

import (
	"fmt"
	"sort"

	"igpucomm/internal/mmu"
	"igpucomm/internal/tiling"
)

// Agent identifiers for the two sides of the communication pattern.
const (
	agentCPU = 0
	agentGPU = 1
	agents   = 2
)

func agentName(a int) string {
	if a == agentCPU {
		return "cpu"
	}
	return "gpu"
}

// PhaseAssignment is one phase's explicit tile ownership: which tile
// indices the CPU side touches and which the GPU side touches.
type PhaseAssignment struct {
	CPU []int
	GPU []int
}

// Schedule is an explicit communication schedule over a tile geometry — the
// object the verifier proves things about. FromPattern derives the paper's
// even/odd checkerboard; tests inject broken assignments directly.
type Schedule struct {
	Geo    tiling.Geometry
	Phases []PhaseAssignment

	// SkipBarrierAfter marks phases whose trailing barrier is omitted (a
	// deliberately broken schedule for the verifier to refute). The §III-C
	// pattern always has a barrier after every phase.
	SkipBarrierAfter map[int]bool
}

// FromPattern expands a tiling.Pattern into the explicit schedule it
// executes: in phase i the CPU owns parity i%2 and the GPU owns the rest,
// with a barrier after every phase.
func FromPattern(p tiling.Pattern) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("hazard: %w", err)
	}
	s := Schedule{Geo: p.Geo, Phases: make([]PhaseAssignment, p.Phases)}
	for phase := 0; phase < p.Phases; phase++ {
		cpuParity := tiling.Parity(phase % 2)
		var pa PhaseAssignment
		for i := 0; i < p.Geo.TileCount(); i++ {
			if p.Geo.TileAt(i).Parity(p.Geo) == cpuParity {
				pa.CPU = append(pa.CPU, i)
			} else {
				pa.GPU = append(pa.GPU, i)
			}
		}
		s.Phases[phase] = pa
	}
	return s, nil
}

// tileAccess is one (agent, phase) touch of a tile with its vector clock.
type tileAccess struct {
	agent int
	phase int
	clock Clock
}

// VerifySchedule proves (or refutes with a counterexample) the schedule's
// correctness argument:
//
//  1. Disjointness: within each phase the CPU and GPU tile sets do not
//     intersect (ParityOverlap findings name the tile and phase).
//  2. Ordering: every pair of cross-agent accesses to the same tile is
//     ordered by a phase barrier — checked as happens-before between the
//     accesses' vector clocks, with barriers modelled as clock joins
//     (BarrierOrder findings).
//
// Checked counts every cross-agent access pair examined plus every per-phase
// set comparison, so an OK report states what was proven.
func VerifySchedule(s Schedule) Report {
	rep := Report{Subject: fmt.Sprintf("schedule over %d phases", len(s.Phases))}

	if len(s.Phases) == 0 {
		rep.add(Finding{Kind: ZeroSized, Phase: -1, Tile: -1, OtherTile: -1, Seq: -1, OtherSeq: -1,
			Detail: "schedule has no phases"})
		return rep
	}
	if s.Geo.TileW <= 0 || s.Geo.TileH <= 0 {
		rep.add(Finding{Kind: ZeroSized, Phase: -1, Tile: -1, OtherTile: -1, Seq: -1, OtherSeq: -1,
			Detail: "schedule has an empty geometry"})
		return rep
	}
	rep.Subject = fmt.Sprintf("schedule %dx%d tiles x %d phases",
		s.Geo.TilesX(), s.Geo.TilesY(), len(s.Phases))
	nTiles := s.Geo.TileCount()
	if nTiles == 0 {
		rep.add(Finding{Kind: ZeroSized, Phase: -1, Tile: -1, OtherTile: -1, Seq: -1, OtherSeq: -1,
			Detail: "schedule has an empty geometry"})
		return rep
	}

	// Replay the schedule, stamping each tile access with its agent's
	// vector clock and joining clocks at barriers.
	clocks := [agents]Clock{NewClock(agents), NewClock(agents)}
	accesses := make(map[int][]tileAccess)
	overlapAt := make(map[[2]int]bool) // (phase, tile) already reported as ParityOverlap

	for phase, pa := range s.Phases {
		// 1. Per-phase disjointness.
		owner := make(map[int]int, len(pa.CPU))
		for _, t := range pa.CPU {
			owner[t] = agentCPU
		}
		for _, t := range pa.GPU {
			rep.Checked++
			if _, both := owner[t]; both {
				tile := s.Geo.TileAt(t)
				rep.add(Finding{
					Kind: ParityOverlap, Phase: phase, Tile: t, OtherTile: t, Seq: -1, OtherSeq: -1,
					Detail: fmt.Sprintf("phase %d: tile %d (tx=%d,ty=%d) assigned to both cpu and gpu",
						phase, t, tile.X0/maxInt(s.Geo.TileW, 1), tile.Y0/maxInt(s.Geo.TileH, 1)),
				})
				overlapAt[[2]int{phase, t}] = true
			}
		}

		// 2. Record the phase's accesses with clock snapshots.
		for agent, set := range [agents][]int{pa.CPU, pa.GPU} {
			clocks[agent].Tick(agent)
			snap := clocks[agent].Copy()
			for _, t := range set {
				if t < 0 || t >= nTiles {
					rep.add(Finding{Kind: ZeroSized, Phase: phase, Tile: t, OtherTile: -1, Seq: -1, OtherSeq: -1,
						Detail: fmt.Sprintf("phase %d: %s tile index %d out of range [0,%d)",
							phase, agentName(agent), t, nTiles)})
					continue
				}
				accesses[t] = append(accesses[t], tileAccess{agent: agent, phase: phase, clock: snap})
			}
		}

		// 3. Phase barrier: both agents join, unless deliberately omitted.
		if !s.SkipBarrierAfter[phase] {
			joint := clocks[agentCPU].Copy()
			joint.Join(clocks[agentGPU])
			clocks[agentCPU] = joint.Copy()
			clocks[agentGPU] = joint.Copy()
		}
	}

	// 4. Happens-before over every cross-agent access pair per tile. Both
	// sides read and write their tiles, so every cross-agent pair conflicts
	// and must be ordered.
	for t := 0; t < nTiles; t++ {
		acc := accesses[t]
		for i := 0; i < len(acc); i++ {
			for j := i + 1; j < len(acc); j++ {
				a, b := acc[i], acc[j]
				if a.agent == b.agent {
					continue
				}
				rep.Checked++
				if !Concurrent(a.clock, b.clock) {
					continue
				}
				if a.phase == b.phase && overlapAt[[2]int{a.phase, t}] {
					continue // already reported as ParityOverlap
				}
				tile := s.Geo.TileAt(t)
				rep.add(Finding{
					Kind: BarrierOrder, Phase: a.phase, Tile: t, OtherTile: t, Seq: -1, OtherSeq: -1,
					Detail: fmt.Sprintf("tile %d (x0=%d,y0=%d): %s access in phase %d and %s access in phase %d are unordered (no barrier between them)",
						t, tile.X0, tile.Y0, agentName(a.agent), a.phase, agentName(b.agent), b.phase),
				})
			}
		}
	}
	return rep
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// VerifyLayout checks that no two live allocations overlap and that none is
// zero-sized — the memory-side half of the schedule's correctness argument
// (disjoint tiles only help if the buffers behind them are disjoint too).
func VerifyLayout(subject string, bufs []mmu.Buffer) Report {
	rep := Report{Subject: "layout " + subject}
	sorted := make([]mmu.Buffer, len(bufs))
	copy(sorted, bufs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })

	for _, b := range sorted {
		rep.Checked++
		if b.Size <= 0 {
			rep.add(Finding{
				Kind: ZeroSized, Phase: -1, Tile: -1, OtherTile: -1, Seq: -1, OtherSeq: -1,
				Buffer: b.Name, Addr: b.Addr, Size: b.Size,
				Detail: fmt.Sprintf("buffer %q has size %d", b.Name, b.Size),
			})
		}
	}
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		rep.Checked++
		if prev.End() > cur.Addr {
			rep.add(Finding{
				Kind: LayoutOverlap, Phase: -1, Tile: -1, OtherTile: -1, Seq: -1, OtherSeq: -1,
				Buffer: prev.Name, OtherBuffer: cur.Name,
				Addr: cur.Addr, Size: prev.End() - cur.Addr,
				Detail: fmt.Sprintf("buffers %q [%d,%d) and %q [%d,%d) overlap by %d bytes",
					prev.Name, prev.Addr, prev.End(), cur.Name, cur.Addr, cur.End(), prev.End()-cur.Addr),
			})
		}
	}
	return rep
}
