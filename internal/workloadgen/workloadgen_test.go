package workloadgen

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/profile"
)

func baseSpec(shape KernelShape) Spec {
	return Spec{
		Name:     "gen-" + shape.String(),
		Elements: 1 << 14,
		CPU:      CPUSpec{Shape: StreamPass, ComputePerIteration: 2},
		Kernel:   KernelSpec{Shape: shape, ComputePerThread: 4, Passes: 4},
		Warmup:   1,
	}
}

func TestShapeStrings(t *testing.T) {
	for _, s := range []KernelShape{Streaming, Strided, Reduction, Stencil, Gather} {
		if strings.Contains(s.String(), "KernelShape") {
			t.Errorf("missing name for shape %d", s)
		}
	}
	if !strings.Contains(KernelShape(99).String(), "99") {
		t.Error("unknown shape string wrong")
	}
	for _, s := range []CPUShape{StreamPass, HotLoop, StridedScan} {
		if strings.Contains(s.String(), "CPUShape") {
			t.Errorf("missing name for cpu shape %d", s)
		}
	}
	if !strings.Contains(CPUShape(99).String(), "99") {
		t.Error("unknown cpu shape string wrong")
	}
}

func TestValidation(t *testing.T) {
	good := baseSpec(Streaming)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*Spec){
		"no name":       func(s *Spec) { s.Name = "" },
		"tiny buffer":   func(s *Spec) { s.Elements = 4 },
		"bad kernel":    func(s *Spec) { s.Kernel.Shape = KernelShape(99) },
		"bad cpu":       func(s *Spec) { s.CPU.Shape = CPUShape(99) },
		"neg compute":   func(s *Spec) { s.Kernel.ComputePerThread = -1 },
		"neg warmup":    func(s *Spec) { s.Warmup = -1 },
		"zero red pass": func(s *Spec) { s.Kernel.Shape = Reduction; s.Kernel.Passes = 0 },
	}
	for name, mut := range cases {
		s := baseSpec(Streaming)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBuildAllShapesRun(t *testing.T) {
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []KernelShape{Streaming, Strided, Reduction, Stencil, Gather} {
		w, err := Build(baseSpec(shape))
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		rep, err := comm.SC{}.Run(s, w)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if rep.KernelTime <= 0 {
			t.Errorf("%s: no kernel time", shape)
		}
	}
}

func TestShapesHaveDistinctSignatures(t *testing.T) {
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[KernelShape]profile.Profile{}
	for _, shape := range []KernelShape{Streaming, Strided, Gather} {
		w, err := Build(baseSpec(shape))
		if err != nil {
			t.Fatal(err)
		}
		p, err := profile.Collect(context.Background(), s, w, comm.SC{})
		if err != nil {
			t.Fatal(err)
		}
		profiles[shape] = p
	}
	// Strided defeats coalescing: far more transactions than streaming.
	if profiles[Strided].Transactions <= 2*profiles[Streaming].Transactions {
		t.Errorf("strided txns %d not clearly above streaming %d",
			profiles[Strided].Transactions, profiles[Streaming].Transactions)
	}
	// Gather defeats coalescing too: nearly one transaction per lane.
	if profiles[Gather].Transactions <= 2*profiles[Streaming].Transactions {
		t.Errorf("gather txns %d not clearly above streaming %d",
			profiles[Gather].Transactions, profiles[Streaming].Transactions)
	}
}

func TestReductionIsCacheDependent(t *testing.T) {
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	spec := baseSpec(Reduction)
	spec.Kernel.Passes = 8
	spec.Elements = 1 << 13 // 32KiB working set: LLC-resident
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := comm.SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if zc.KernelTime < sc.KernelTime*2 {
		t.Errorf("reduction under ZC (%v) should suffer vs SC (%v) on TX2", zc.KernelTime, sc.KernelTime)
	}
}

func TestCPUShapesRun(t *testing.T) {
	s, err := devices.NewSoC(devices.XavierName)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []CPUShape{StreamPass, HotLoop, StridedScan} {
		spec := baseSpec(Streaming)
		spec.Name = "cpu-" + shape.String()
		spec.CPU = CPUSpec{Shape: shape, ComputePerIteration: 2, Passes: 2}
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := comm.SC{}.Run(s, w)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CPUTime <= 0 {
			t.Errorf("%s: no CPU time", shape)
		}
	}
}

func TestStridedScanShowsCPUCacheUsage(t *testing.T) {
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	spec := baseSpec(Streaming)
	spec.Name = "cpu-llc"
	spec.Elements = 1 << 16 // 256KiB: exceeds L1, fits LLC
	spec.CPU = CPUSpec{Shape: StridedScan, ComputePerIteration: 1, Passes: 3}
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.Collect(context.Background(), s, w, comm.SC{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CPUCacheUsagePerInstr <= 0.02 {
		t.Errorf("strided scan CPU cache usage = %v, want clearly positive", p.CPUCacheUsagePerInstr)
	}
}

func TestLaunchStriping(t *testing.T) {
	spec := baseSpec(Streaming)
	spec.Launches = 4
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.LaunchCount() != 4 {
		t.Errorf("launches = %d", w.LaunchCount())
	}
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := comm.SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 4 {
		t.Errorf("report launches = %d", rep.Launches)
	}
}

// TestPropertyModelInvariants runs randomized specs through every model and
// checks the cross-model accounting invariants:
//   - ZC never copies or flushes;
//   - SC's copy bytes equal the declared transfer volume;
//   - every total is at least the sum of its components' floor;
//   - energy activity mirrors the report.
func TestPropertyModelInvariants(t *testing.T) {
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []KernelShape{Streaming, Strided, Reduction, Stencil, Gather}
	cpuShapes := []CPUShape{StreamPass, HotLoop, StridedScan}
	f := func(sel, csel, sizeSel, launches8 uint8) bool {
		spec := Spec{
			Name:     "prop",
			Elements: int64(1024 << (sizeSel % 5)),
			CPU:      CPUSpec{Shape: cpuShapes[int(csel)%len(cpuShapes)], Iterations: 512, ComputePerIteration: 2, Passes: 1},
			Kernel:   KernelSpec{Shape: shapes[int(sel)%len(shapes)], ComputePerThread: 8, Passes: 2},
			Launches: int(launches8%4) + 1,
		}
		w, err := Build(spec)
		if err != nil {
			return false
		}
		for _, m := range comm.AllModels() {
			rep, err := m.Run(s, w)
			if err != nil {
				return false
			}
			switch m.Name() {
			case "zc":
				if rep.CopyTime != 0 || rep.CopyBytes != 0 || rep.FlushTime != 0 {
					return false
				}
			case "sc", "sc-async":
				if rep.CopyBytes != w.BytesIn()+w.BytesOut() {
					return false
				}
			}
			floor := rep.KernelTime
			if rep.CPUTime > floor {
				floor = rep.CPUTime
			}
			if rep.Total < floor {
				return false
			}
			if rep.Energy.Runtime != rep.Total || rep.Energy.CopyBytes != rep.CopyBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func ExampleBuild() {
	w, err := Build(Spec{
		Name:     "example",
		Elements: 4096,
		CPU:      CPUSpec{Shape: StreamPass, Iterations: 256, ComputePerIteration: 2},
		Kernel:   KernelSpec{Shape: Streaming, ComputePerThread: 16},
	})
	if err != nil {
		panic(err)
	}
	s, err := devices.NewSoC(devices.XavierName)
	if err != nil {
		panic(err)
	}
	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		panic(err)
	}
	fmt.Println("zero-copy moved", zc.CopyBytes, "bytes through the copy engine")
	// Output: zero-copy moved 0 bytes through the copy engine
}
