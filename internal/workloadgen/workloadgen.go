// Package workloadgen provides reusable building blocks for describing
// application workloads to the framework: parameterized GPU kernel shapes
// (streaming, strided, reduction, stencil, gather) and CPU routine shapes
// (streaming pass, hot loop, pointer chase). The micro-benchmarks and case
// studies hand-roll their patterns for fidelity to the paper; this package
// is the convenience layer for users describing *their* applications.
package workloadgen

import (
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
)

// KernelShape enumerates the GPU access-pattern archetypes.
type KernelShape int

// Kernel shapes.
const (
	// Streaming: each thread reads and writes its own element once,
	// perfectly coalesced — bandwidth-bound, cache-independent.
	Streaming KernelShape = iota
	// Strided: each thread touches its own cache line — uncoalesced,
	// latency/bandwidth-hostile.
	Strided
	// Reduction: repeated coalesced passes over a buffer that should live
	// in the LLC — the cache-dependent archetype.
	Reduction
	// Stencil: each thread reads a neighborhood around its element —
	// heavy L1 reuse between adjacent threads.
	Stencil
	// Gather: pseudo-random reads across the buffer — cache-hostile,
	// maximum miss rate.
	Gather
)

func (k KernelShape) String() string {
	switch k {
	case Streaming:
		return "streaming"
	case Strided:
		return "strided"
	case Reduction:
		return "reduction"
	case Stencil:
		return "stencil"
	case Gather:
		return "gather"
	default:
		return fmt.Sprintf("KernelShape(%d)", int(k))
	}
}

// KernelSpec parameterizes one kernel archetype.
type KernelSpec struct {
	Shape KernelShape
	// Threads is the grid size; 0 derives one thread per element.
	Threads int
	// ComputePerThread is the FMA depth accompanying the memory work.
	ComputePerThread int
	// Passes is the reuse factor for Reduction (>=1).
	Passes int
}

// Validate reports problems.
func (k KernelSpec) Validate() error {
	if k.Shape < Streaming || k.Shape > Gather {
		return fmt.Errorf("workloadgen: unknown kernel shape %d", k.Shape)
	}
	if k.Threads < 0 || k.ComputePerThread < 0 {
		return fmt.Errorf("workloadgen: negative kernel parameter")
	}
	if k.Shape == Reduction && k.Passes < 1 {
		return fmt.Errorf("workloadgen: reduction needs at least one pass")
	}
	return nil
}

// CPUShape enumerates the CPU routine archetypes.
type CPUShape int

// CPU routine shapes.
const (
	// StreamPass: sequential loads over the input with FMA work.
	StreamPass CPUShape = iota
	// HotLoop: compute on one address (the paper's MB1 CPU routine shape).
	HotLoop
	// StridedScan: line-granular loads (L1-missing, LLC-served when the
	// buffer fits — the CPU-cache-dependent archetype).
	StridedScan
)

func (c CPUShape) String() string {
	switch c {
	case StreamPass:
		return "stream-pass"
	case HotLoop:
		return "hot-loop"
	case StridedScan:
		return "strided-scan"
	default:
		return fmt.Sprintf("CPUShape(%d)", int(c))
	}
}

// CPUSpec parameterizes the CPU routine.
type CPUSpec struct {
	Shape CPUShape
	// Iterations of the routine's loop; 0 derives from the buffer size.
	Iterations int
	// ComputePerIteration is the FP depth per loop step.
	ComputePerIteration int
	// Passes repeats the scan (reuse across passes is what the LLC
	// serves).
	Passes int
}

// Validate reports problems.
func (c CPUSpec) Validate() error {
	if c.Shape < StreamPass || c.Shape > StridedScan {
		return fmt.Errorf("workloadgen: unknown CPU shape %d", c.Shape)
	}
	if c.Iterations < 0 || c.ComputePerIteration < 0 || c.Passes < 0 {
		return fmt.Errorf("workloadgen: negative CPU parameter")
	}
	return nil
}

// Spec describes a whole synthetic workload.
type Spec struct {
	Name string
	// Elements is the shared buffer size in float32 elements (one In and
	// one Out buffer of this size).
	Elements int64
	CPU      CPUSpec
	Kernel   KernelSpec
	// Launches splits the kernel grid.
	Launches int
	// Overlappable marks the CPU and GPU phases independent.
	Overlappable bool
	Warmup       int
}

// Validate reports problems.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workloadgen: spec needs a name")
	}
	if s.Elements < 64 {
		return fmt.Errorf("workloadgen: %d elements too small", s.Elements)
	}
	if err := s.CPU.Validate(); err != nil {
		return err
	}
	if err := s.Kernel.Validate(); err != nil {
		return err
	}
	if s.Launches < 0 || s.Warmup < 0 {
		return fmt.Errorf("workloadgen: negative spec parameter")
	}
	return nil
}

// Build assembles the comm.Workload.
func Build(s Spec) (comm.Workload, error) {
	if err := s.Validate(); err != nil {
		return comm.Workload{}, err
	}
	size := s.Elements * 4
	return comm.Workload{
		Name:         s.Name,
		In:           []comm.BufferSpec{{Name: "in", Size: size}},
		Out:          []comm.BufferSpec{{Name: "out", Size: size}},
		CPUTask:      buildCPUTask(s),
		MakeKernel:   buildKernel(s),
		Launches:     s.Launches,
		Overlappable: s.Overlappable,
		Warmup:       s.Warmup,
	}, nil
}

func buildCPUTask(s Spec) func(c *cpu.CPU, lay comm.Layout) {
	spec := s.CPU
	elements := s.Elements
	return func(c *cpu.CPU, lay comm.Layout) {
		base := lay.Addr("in")
		passes := spec.Passes
		if passes == 0 {
			passes = 1
		}
		switch spec.Shape {
		case StreamPass:
			iters := int64(spec.Iterations)
			if iters == 0 {
				iters = elements
			}
			for p := 0; p < passes; p++ {
				for i := int64(0); i < iters; i++ {
					c.Load(base+(i%elements)*4, 4)
					c.Work(isa.FMA, spec.ComputePerIteration)
				}
			}
		case HotLoop:
			iters := spec.Iterations
			if iters == 0 {
				iters = 4096
			}
			for i := 0; i < iters; i++ {
				c.Load(base, 4)
				c.Work(isa.SqrtF32, 1)
				c.Work(isa.FMA, spec.ComputePerIteration)
				c.Store(base, 4)
			}
		case StridedScan:
			lines := elements * 4 / 64
			for p := 0; p < passes; p++ {
				for i := int64(0); i < lines; i++ {
					c.Load(base+i*64, 4)
					c.Work(isa.FMA, spec.ComputePerIteration)
				}
			}
		}
	}
}

func buildKernel(s Spec) func(lay comm.Layout, launch int) gpu.Kernel {
	spec := s.Kernel
	elements := s.Elements
	launches := s.Launches
	if launches <= 0 {
		launches = 1
	}
	return func(lay comm.Layout, launch int) gpu.Kernel {
		in, out := lay.Addr("in"), lay.Addr("out")
		threads := spec.Threads
		if threads == 0 {
			threads = int(elements) / launches
		}
		stripe := int64(launch) * int64(threads)
		name := fmt.Sprintf("%s-%s-%d", s.Name, spec.Shape, launch)
		switch spec.Shape {
		case Strided:
			return gpu.Kernel{Name: name, Threads: threads, Program: func(tid int, p *isa.Program) {
				idx := ((stripe + int64(tid)) * 16) % elements
				p.Ld(in+idx*4, 4)
				p.Compute(isa.FMA, spec.ComputePerThread)
				p.St(out+idx*4, 4)
			}}
		case Reduction:
			return gpu.Kernel{Name: name, Threads: threads, Program: func(tid int, p *isa.Program) {
				for pass := 0; pass < spec.Passes; pass++ {
					idx := (stripe + int64(tid)) % elements
					p.Ld(in+idx*4, 4)
					p.Compute(isa.AddS32, 1)
				}
				p.Compute(isa.FMA, spec.ComputePerThread)
				p.St(out+(stripe+int64(tid))%elements*4, 4)
			}}
		case Stencil:
			return gpu.Kernel{Name: name, Threads: threads, Program: func(tid int, p *isa.Program) {
				idx := (stripe + int64(tid)) % elements
				for d := int64(-1); d <= 1; d++ {
					n := (idx + d + elements) % elements
					p.Ld(in+n*4, 4)
				}
				p.Compute(isa.FMA, spec.ComputePerThread)
				p.St(out+idx*4, 4)
			}}
		case Gather:
			return gpu.Kernel{Name: name, Threads: threads, Program: func(tid int, p *isa.Program) {
				// Proper avalanche mix: a plain multiplicative constant
				// mod a power of two degenerates into a fixed stride.
				h := uint64(stripe + int64(tid))
				h ^= h >> 33
				h *= 0xFF51AFD7ED558CCD
				h ^= h >> 29
				idx := int64(h % uint64(elements))
				p.Ld(in+idx*4, 4)
				p.Compute(isa.FMA, spec.ComputePerThread)
				p.St(out+(stripe+int64(tid))%elements*4, 4)
			}}
		default: // Streaming
			return gpu.Kernel{Name: name, Threads: threads, Program: func(tid int, p *isa.Program) {
				idx := (stripe + int64(tid)) % elements
				p.Ld(in+idx*4, 4)
				p.Compute(isa.FMA, spec.ComputePerThread)
				p.St(out+idx*4, 4)
			}}
		}
	}
}
