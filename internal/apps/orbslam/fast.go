// Package orbslam implements the GPU-relevant front-end of the paper's
// second case study, ORB-SLAM2 (Mur-Artal & Tardós, T-RO 2017): an image
// pyramid, the FAST-9 segment-test corner detector, intensity-centroid
// orientation, and rotated-BRIEF descriptors. This is the part the paper
// offloads and profiles (§IV-C, Tables IV and V); the SLAM back-end never
// touches the communication model.
//
// As with shwfs, the algorithms here are functional (real corners on real
// images, tested against references); workload.go mirrors their memory
// behaviour onto the simulated SoC.
package orbslam

import (
	"fmt"

	"igpucomm/internal/imgutil"
)

// ringOffsets is the Bresenham circle of radius 3 the FAST segment test
// probes, in clockwise order from 12 o'clock.
var ringOffsets = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// fastArc is the contiguous-arc length of the segment test (FAST-9).
const fastArc = 9

// Keypoint is one detected corner.
type Keypoint struct {
	X, Y  int
	Level int     // pyramid level it was found on
	Score float32 // corner strength (sum of absolute threshold exceedance)
	Angle float64 // orientation in radians (intensity centroid)
}

// DetectorConfig parameterizes FAST.
type DetectorConfig struct {
	Threshold float32 // intensity difference for the segment test
	Border    int     // pixels to skip at each edge (>= 3 for the ring)
}

// Validate reports configuration problems.
func (c DetectorConfig) Validate() error {
	if c.Threshold <= 0 {
		return fmt.Errorf("orbslam: FAST threshold must be positive")
	}
	if c.Border < 3 {
		return fmt.Errorf("orbslam: border %d too small for the radius-3 ring", c.Border)
	}
	return nil
}

// IsCorner runs the FAST-9 segment test at (x, y): the pixel is a corner if
// at least fastArc contiguous ring pixels are all brighter than center+T or
// all darker than center-T.
func IsCorner(im *imgutil.Image, x, y int, threshold float32) bool {
	c := im.At(x, y)
	brightT := c + threshold
	darkT := c - threshold
	// Walk the ring twice to handle wraparound of the contiguous arc.
	runBright, runDark := 0, 0
	for i := 0; i < 32; i++ {
		off := ringOffsets[i%16]
		v := im.At(x+off[0], y+off[1])
		if v > brightT {
			runBright++
			if runBright >= fastArc {
				return true
			}
		} else {
			runBright = 0
		}
		if v < darkT {
			runDark++
			if runDark >= fastArc {
				return true
			}
		} else {
			runDark = 0
		}
	}
	return false
}

// Score is the corner strength: the sum of absolute differences of ring
// pixels that exceed the threshold (a cheap V-measure used for NMS).
func Score(im *imgutil.Image, x, y int, threshold float32) float32 {
	c := im.At(x, y)
	var s float32
	for _, off := range ringOffsets {
		d := im.At(x+off[0], y+off[1]) - c
		if d < 0 {
			d = -d
		}
		if d > threshold {
			s += d - threshold
		}
	}
	return s
}

// Detect finds FAST-9 corners on one image with 3x3 non-maximum suppression
// on the score map.
func Detect(cfg DetectorConfig, im *imgutil.Image) ([]Keypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if im == nil {
		return nil, fmt.Errorf("orbslam: nil image")
	}
	scores := make([]float32, im.W*im.H)
	for y := cfg.Border; y < im.H-cfg.Border; y++ {
		for x := cfg.Border; x < im.W-cfg.Border; x++ {
			if IsCorner(im, x, y, cfg.Threshold) {
				scores[y*im.W+x] = Score(im, x, y, cfg.Threshold)
			}
		}
	}
	var kps []Keypoint
	for y := cfg.Border; y < im.H-cfg.Border; y++ {
		for x := cfg.Border; x < im.W-cfg.Border; x++ {
			s := scores[y*im.W+x]
			if s <= 0 {
				continue
			}
			// 3x3 non-maximum suppression.
			max := true
			for dy := -1; dy <= 1 && max; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= im.W || ny >= im.H {
						continue
					}
					n := scores[ny*im.W+nx]
					if n > s || (n == s && (dy < 0 || (dy == 0 && dx < 0))) {
						max = false
						break
					}
				}
			}
			if max {
				kps = append(kps, Keypoint{X: x, Y: y, Score: s})
			}
		}
	}
	return kps, nil
}
