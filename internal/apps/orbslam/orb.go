package orbslam

import (
	"fmt"
	"math"
	"math/bits"

	"igpucomm/internal/imgutil"
)

// orientPatchRadius is the circular patch the intensity-centroid orientation
// integrates over.
const orientPatchRadius = 7

// Orientation computes the intensity-centroid angle at a keypoint:
// atan2(m01, m10) over the circular patch. This is what makes BRIEF rotated
// (the "r" of rBRIEF).
func Orientation(im *imgutil.Image, x, y int) float64 {
	var m01, m10 float64
	for dy := -orientPatchRadius; dy <= orientPatchRadius; dy++ {
		for dx := -orientPatchRadius; dx <= orientPatchRadius; dx++ {
			if dx*dx+dy*dy > orientPatchRadius*orientPatchRadius {
				continue
			}
			v := float64(im.At(x+dx, y+dy))
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	return math.Atan2(m01, m10)
}

// DescriptorBits is the rBRIEF descriptor length.
const DescriptorBits = 256

// Descriptor is a 256-bit binary descriptor.
type Descriptor [DescriptorBits / 64]uint64

// HammingDistance counts differing bits between two descriptors — the
// matching metric the SLAM front-end spends its CPU time on.
func HammingDistance(a, b Descriptor) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// briefPattern is the sampling pattern: DescriptorBits point pairs within a
// 31x31 patch, generated once from a fixed seed (ORB uses a learned pattern;
// a deterministic pseudo-random one preserves the access behaviour and the
// descriptor's statistical properties).
var briefPattern = makePattern()

type pointPair struct{ ax, ay, bx, by int }

func makePattern() [DescriptorBits]pointPair {
	var pat [DescriptorBits]pointPair
	rng := imgutil.NewRNG(0x0b5e55ed)
	const r = 13 // keep rotated samples inside the 31x31 patch
	for i := range pat {
		pat[i] = pointPair{
			ax: rng.Intn(2*r+1) - r,
			ay: rng.Intn(2*r+1) - r,
			bx: rng.Intn(2*r+1) - r,
			by: rng.Intn(2*r+1) - r,
		}
	}
	return pat
}

// Describe computes the rotated-BRIEF descriptor of a keypoint: each bit
// compares two pattern points, with the pattern rotated by the keypoint's
// orientation.
func Describe(im *imgutil.Image, kp Keypoint) Descriptor {
	sin, cos := math.Sincos(kp.Angle)
	var d Descriptor
	for i, p := range briefPattern {
		rax := int(math.Round(cos*float64(p.ax) - sin*float64(p.ay)))
		ray := int(math.Round(sin*float64(p.ax) + cos*float64(p.ay)))
		rbx := int(math.Round(cos*float64(p.bx) - sin*float64(p.by)))
		rby := int(math.Round(sin*float64(p.bx) + cos*float64(p.by)))
		if im.At(kp.X+rax, kp.Y+ray) < im.At(kp.X+rbx, kp.Y+rby) {
			d[i/64] |= 1 << (i % 64)
		}
	}
	return d
}

// Pyramid holds the scale levels of one frame.
type Pyramid struct {
	Levels []*imgutil.Image
}

// BuildPyramid downsamples the frame `levels` times by 2x.
func BuildPyramid(frame *imgutil.Image, levels int) (*Pyramid, error) {
	if frame == nil {
		return nil, fmt.Errorf("orbslam: nil frame")
	}
	if levels <= 0 || levels > 12 {
		return nil, fmt.Errorf("orbslam: level count %d out of range", levels)
	}
	p := &Pyramid{Levels: make([]*imgutil.Image, levels)}
	p.Levels[0] = frame
	for l := 1; l < levels; l++ {
		p.Levels[l] = imgutil.Downsample2x(p.Levels[l-1])
	}
	return p, nil
}

// Bytes is the total pyramid footprint.
func (p *Pyramid) Bytes() int64 {
	var n int64
	for _, im := range p.Levels {
		n += im.Bytes()
	}
	return n
}

// Feature is a described keypoint.
type Feature struct {
	Keypoint
	Desc Descriptor
}

// FrontendConfig is the whole pipeline's configuration.
type FrontendConfig struct {
	Detector DetectorConfig
	Levels   int
	// MaxPerLevel truncates detections (strongest first is not needed for
	// the communication study; first-N is deterministic and cheap).
	MaxPerLevel int
}

// Validate checks the configuration.
func (c FrontendConfig) Validate() error {
	if err := c.Detector.Validate(); err != nil {
		return err
	}
	if c.Levels <= 0 || c.Levels > 12 {
		return fmt.Errorf("orbslam: level count %d out of range", c.Levels)
	}
	if c.MaxPerLevel <= 0 {
		return fmt.Errorf("orbslam: MaxPerLevel must be positive")
	}
	return nil
}

// ExtractFeatures runs the full front-end on one frame: pyramid, FAST per
// level, orientation, descriptors. Keypoint coordinates stay in their
// level's pixel grid (Level records which).
func ExtractFeatures(cfg FrontendConfig, frame *imgutil.Image) ([]Feature, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pyr, err := BuildPyramid(frame, cfg.Levels)
	if err != nil {
		return nil, err
	}
	var out []Feature
	for lvl, im := range pyr.Levels {
		if im.W <= 2*cfg.Detector.Border || im.H <= 2*cfg.Detector.Border {
			break
		}
		kps, err := Detect(cfg.Detector, im)
		if err != nil {
			return nil, err
		}
		if len(kps) > cfg.MaxPerLevel {
			kps = kps[:cfg.MaxPerLevel]
		}
		for _, kp := range kps {
			kp.Level = lvl
			kp.Angle = Orientation(im, kp.X, kp.Y)
			out = append(out, Feature{Keypoint: kp, Desc: Describe(im, kp)})
		}
	}
	return out, nil
}

// Match greedily pairs each query feature with its nearest train feature by
// Hamming distance, subject to a maximum distance. It returns index pairs.
// This is the CPU-side consumer work the workload models.
func Match(query, train []Feature, maxDist int) [][2]int {
	var out [][2]int
	for qi, q := range query {
		best, bestDist := -1, maxDist+1
		for ti, t := range train {
			if d := HammingDistance(q.Desc, t.Desc); d < bestDist {
				best, bestDist = ti, d
			}
		}
		if best >= 0 {
			out = append(out, [2]int{qi, best})
		}
	}
	return out
}

// MatchRatio pairs query features with train features using Lowe's ratio
// test: a match is accepted only when the best distance is clearly better
// than the second best (best < ratio * second). This is the matcher real
// ORB-SLAM uses to reject ambiguous correspondences.
func MatchRatio(query, train []Feature, ratio float64) [][2]int {
	if ratio <= 0 || ratio >= 1 || len(train) < 2 {
		return nil
	}
	var out [][2]int
	for qi, q := range query {
		best, second := DescriptorBits+1, DescriptorBits+1
		bestIdx := -1
		for ti, t := range train {
			d := HammingDistance(q.Desc, t.Desc)
			switch {
			case d < best:
				second = best
				best, bestIdx = d, ti
			case d < second:
				second = d
			}
		}
		if bestIdx >= 0 && float64(best) < ratio*float64(second) {
			out = append(out, [2]int{qi, bestIdx})
		}
	}
	return out
}
