package orbslam

import (
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/imgutil"
	"igpucomm/internal/isa"
)

// WorkloadParams maps the ORB front-end onto the simulated SoC.
type WorkloadParams struct {
	Frontend FrontendConfig
	// FrameW and FrameH are the level-0 camera dimensions.
	FrameW, FrameH int
	// PerPixelOps is the fused detector kernel's per-pixel FP work (the
	// segment test, NMS and the orientation patch contribution). The real
	// port stages tiles in shared memory, so each global pixel is LOADED
	// ONCE; the ring probes themselves are explicit ld.shared ops in the
	// kernel and are not counted here.
	PerPixelOps int
	// DescLoads and DescOps are the per-keypoint descriptor kernel's
	// pattern loads and compute depth.
	DescLoads, DescOps int
	// MatchComparisons is the CPU-side matching work per frame: each
	// comparison streams one 32-byte descriptor and computes its Hamming
	// distance against the query. This is where ORB-SLAM's CPU time goes,
	// and — because the feature buffer is pinned under ZC — where the
	// TX2 catastrophe of Table V comes from.
	MatchComparisons int
	// Seed generates the synthetic scene the keypoint placement derives
	// from (the descriptor kernel's addresses come from a real functional
	// detection pass over this scene).
	Seed   uint64
	Warmup int
}

// DefaultWorkloadParams returns the paper-scale configuration: 640x480
// frames, 8 pyramid levels.
func DefaultWorkloadParams() WorkloadParams {
	return WorkloadParams{
		Frontend: FrontendConfig{
			Detector:    DetectorConfig{Threshold: 20, Border: 16},
			Levels:      8,
			MaxPerLevel: 128,
		},
		FrameW: 640, FrameH: 480,
		PerPixelOps:      66,
		DescLoads:        32,
		DescOps:          80,
		MatchComparisons: 100_000,
		Seed:             7,
		Warmup:           1,
	}
}

// Validate checks the parameters.
func (p WorkloadParams) Validate() error {
	if err := p.Frontend.Validate(); err != nil {
		return err
	}
	if p.FrameW < 64 || p.FrameH < 64 {
		return fmt.Errorf("orbslam: frame %dx%d too small for the pyramid", p.FrameW, p.FrameH)
	}
	if p.PerPixelOps <= 0 || p.DescLoads <= 0 || p.DescOps < 0 {
		return fmt.Errorf("orbslam: kernel depths must be positive")
	}
	if p.MatchComparisons < 0 || p.Warmup < 0 {
		return fmt.Errorf("orbslam: negative workload parameter")
	}
	return nil
}

// ringProbes is the FAST ring size staged through shared memory.
const ringProbes = 16

// levelGeometry precomputes per-level dimensions and scratch offsets.
type levelGeometry struct {
	w, h   int
	offset int64 // byte offset of the level inside the pyramid scratch
}

func levels(p WorkloadParams) []levelGeometry {
	var out []levelGeometry
	w, h := p.FrameW, p.FrameH
	var off int64
	for l := 0; l < p.Frontend.Levels; l++ {
		if w <= 2*p.Frontend.Detector.Border || h <= 2*p.Frontend.Detector.Border {
			break
		}
		out = append(out, levelGeometry{w: w, h: h, offset: off})
		off += int64(w) * int64(h) * 4
		w /= 2
		h /= 2
	}
	return out
}

// Workload builds the comm.Workload for the front-end. Buffer roles:
//
//   - In "config": the detector parameter block (threshold LUTs) — the only
//     host-to-device transfer per frame; it is tiny, which is why the
//     paper's Table IV reports copy times of ~1.5µs per kernel.
//   - Out "features": keypoints + descriptors coming back to the CPU.
//   - Scratch "pyramid" and "scores": camera DMA target, pyramid levels and
//     score maps — GPU working storage that never crosses under SC but is
//     pinned (and therefore slow) under ZC.
//
// Launch schedule: one detector kernel per pyramid level, then one
// descriptor kernel per level, using keypoint positions from a real
// functional detection over the synthetic scene.
func Workload(p WorkloadParams) (comm.Workload, error) {
	if err := p.Validate(); err != nil {
		return comm.Workload{}, err
	}
	lvls := levels(p)
	if len(lvls) == 0 {
		return comm.Workload{}, fmt.Errorf("orbslam: no usable pyramid levels")
	}

	// Run the functional pipeline once to place real keypoints.
	scene := imgutil.TexturedScene(p.FrameW, p.FrameH, 24, p.Seed)
	feats, err := ExtractFeatures(p.Frontend, scene)
	if err != nil {
		return comm.Workload{}, err
	}
	kpsByLevel := make([][]Keypoint, len(lvls))
	for _, f := range feats {
		if f.Level < len(lvls) {
			kpsByLevel[f.Level] = append(kpsByLevel[f.Level], f.Keypoint)
		}
	}

	var pyramidBytes int64
	for _, lg := range lvls {
		pyramidBytes += int64(lg.w) * int64(lg.h) * 4
	}
	const featureStride = 48 // 16B keypoint + 32B descriptor
	maxFeatures := p.Frontend.MaxPerLevel * len(lvls)
	featBytes := int64(maxFeatures) * featureStride

	return comm.Workload{
		Name: "orbslam",
		In:   []comm.BufferSpec{{Name: "config", Size: 4096}},
		Out:  []comm.BufferSpec{{Name: "features", Size: featBytes}},
		Scratch: []comm.BufferSpec{
			{Name: "pyramid", Size: pyramidBytes},
			{Name: "scores", Size: int64(p.FrameW) * int64(p.FrameH) * 4},
		},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			// Descriptor matching against the previous frame: stream one
			// 32-byte descriptor per comparison and compute the Hamming
			// distance (XOR + popcount chains). The working set is the
			// feature buffer — L1/LLC-resident when cacheable, a pinned
			// uncached buffer under ZC on non-coherent devices.
			feat := lay.Addr("features")
			for i := 0; i < p.MatchComparisons; i++ {
				slot := int64(i) % int64(maxFeatures)
				c.Load(feat+slot*featureStride+16, 32)
				c.Work(isa.AddS32, 16) // 8x XOR + 8x popcount
				c.Work(isa.FMA, 8)     // score bookkeeping
			}
		},
		MakeKernel: func(lay comm.Layout, launch int) gpu.Kernel {
			if launch < len(lvls) {
				return detectKernel(p, lay, lvls, launch)
			}
			return describeKernel(p, lay, lvls, kpsByLevel, launch-len(lvls))
		},
		Launches: 2 * len(lvls),
		Warmup:   p.Warmup,
	}, nil
}

// detectKernel is the fused FAST+NMS+orientation kernel of one level:
// thread-per-pixel, shared-memory staged (one coalesced global load per
// pixel), PerPixelOps of segment-test work, one score store.
func detectKernel(p WorkloadParams, lay comm.Layout, lvls []levelGeometry, level int) gpu.Kernel {
	lg := lvls[level]
	pyramid := lay.Addr("pyramid") + lg.offset
	scores := lay.Addr("scores")
	return gpu.Kernel{
		Name:    fmt.Sprintf("orb-detect-L%d", level),
		Threads: lg.w * lg.h,
		Program: func(tid int, prog *isa.Program) {
			prog.Ld(pyramid+int64(tid)*4, 4)       // tile stage-in, coalesced
			prog.Compute(isa.StShared, 1)          // park the pixel in the tile
			prog.Compute(isa.LdShared, ringProbes) // ring reads from shared memory
			prog.Compute(isa.FMA, p.PerPixelOps)   // segment test, NMS, orientation
			prog.St(scores+int64(tid)*4, 4)        // score map, coalesced
		},
	}
}

// describeKernel computes rBRIEF for the level's real keypoints: one thread
// per (keypoint, pattern-chunk), scattered patch loads, descriptor store.
func describeKernel(p WorkloadParams, lay comm.Layout, lvls []levelGeometry, kps [][]Keypoint, level int) gpu.Kernel {
	lg := lvls[level]
	pyramid := lay.Addr("pyramid") + lg.offset
	feat := lay.Addr("features")
	pts := kps[level]
	threads := p.Frontend.MaxPerLevel
	pattern := briefPattern
	return gpu.Kernel{
		Name:    fmt.Sprintf("orb-describe-L%d", level),
		Threads: threads,
		Program: func(tid int, prog *isa.Program) {
			// Threads beyond the real keypoint count run predicated on a
			// border position (real kernels round up the grid the same way).
			x, y := p.Frontend.Detector.Border, p.Frontend.Detector.Border
			if tid < len(pts) {
				x, y = pts[tid].X, pts[tid].Y
			}
			base := pyramid + (int64(y)*int64(lg.w)+int64(x))*4
			for i := 0; i < p.DescLoads; i++ {
				pp := pattern[(i*7)%DescriptorBits]
				off := (int64(pp.ay)*int64(lg.w) + int64(pp.ax)) * 4
				prog.Ld(base+off, 4)
			}
			prog.Compute(isa.FMA, p.DescOps)
			slot := int64(level*p.Frontend.MaxPerLevel + tid)
			prog.St(feat+slot*48+16, 32)
		},
	}
}
