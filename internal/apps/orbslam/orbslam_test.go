package orbslam

import (
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/imgutil"
)

// cornerImage renders a single bright rectangle whose corners FAST must find.
func cornerImage() *imgutil.Image {
	im := imgutil.NewImage(64, 64)
	for i := range im.Pix {
		im.Pix[i] = 10
	}
	for y := 20; y < 44; y++ {
		for x := 20; x < 44; x++ {
			im.Set(x, y, 200)
		}
	}
	return im
}

func TestDetectorConfigValidate(t *testing.T) {
	good := DetectorConfig{Threshold: 20, Border: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (DetectorConfig{Threshold: 0, Border: 8}).Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	if err := (DetectorConfig{Threshold: 10, Border: 2}).Validate(); err == nil {
		t.Error("ring-clipping border accepted")
	}
}

func TestIsCornerOnRectangle(t *testing.T) {
	im := cornerImage()
	// A rectangle corner pixel (inside the bright region, at its corner)
	// sees a contiguous dark arc: a FAST corner.
	if !IsCorner(im, 20, 20, 20) {
		t.Error("rectangle corner not detected")
	}
	// Flat regions are not corners.
	if IsCorner(im, 32, 32, 20) {
		t.Error("rectangle interior detected as corner")
	}
	if IsCorner(im, 5, 5, 20) {
		t.Error("flat background detected as corner")
	}
	// Straight edges are not corners under FAST-9 (arc too short... the
	// edge midpoint sees only half the ring dark, i.e. 8 < 9).
	if IsCorner(im, 32, 20, 20) {
		t.Error("edge midpoint detected as corner")
	}
}

func TestDetectFindsRectangleCorners(t *testing.T) {
	im := cornerImage()
	kps, err := Detect(DetectorConfig{Threshold: 20, Border: 3}, im)
	if err != nil {
		t.Fatal(err)
	}
	if len(kps) == 0 {
		t.Fatal("no corners found")
	}
	// Every detection must be near one of the four rectangle corners.
	corners := [][2]int{{20, 20}, {43, 20}, {20, 43}, {43, 43}}
	found := make([]bool, 4)
	for _, kp := range kps {
		nearSome := false
		for i, c := range corners {
			if abs(kp.X-c[0]) <= 2 && abs(kp.Y-c[1]) <= 2 {
				found[i] = true
				nearSome = true
			}
		}
		if !nearSome {
			t.Errorf("spurious corner at (%d, %d)", kp.X, kp.Y)
		}
	}
	for i, f := range found {
		if !f {
			t.Errorf("rectangle corner %d not detected", i)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(DetectorConfig{Threshold: 0, Border: 3}, cornerImage()); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Detect(DetectorConfig{Threshold: 20, Border: 3}, nil); err == nil {
		t.Error("nil image accepted")
	}
}

func TestScorePositiveAtCorners(t *testing.T) {
	im := cornerImage()
	if Score(im, 20, 20, 20) <= 0 {
		t.Error("corner score not positive")
	}
	if Score(im, 5, 5, 20) != 0 {
		t.Error("flat region score not zero")
	}
}

func TestOrientationPointsAtMass(t *testing.T) {
	im := imgutil.NewImage(32, 32)
	// Bright mass to the right of the keypoint: angle ~ 0.
	for y := 12; y < 20; y++ {
		for x := 16; x < 24; x++ {
			im.Set(x, y, 100)
		}
	}
	a := Orientation(im, 16, 16)
	if math.Abs(a) > 0.5 {
		t.Errorf("angle = %.2f, want ~0 (mass to the right)", a)
	}
	// Mass below: angle ~ +pi/2.
	im2 := imgutil.NewImage(32, 32)
	for y := 16; y < 24; y++ {
		for x := 12; x < 20; x++ {
			im2.Set(x, y, 100)
		}
	}
	a2 := Orientation(im2, 16, 16)
	if math.Abs(a2-math.Pi/2) > 0.5 {
		t.Errorf("angle = %.2f, want ~pi/2 (mass below)", a2)
	}
}

func TestDescriptorDeterministicAndDiscriminative(t *testing.T) {
	scene := imgutil.TexturedScene(128, 128, 10, 3)
	kpA := Keypoint{X: 40, Y: 40}
	kpB := Keypoint{X: 90, Y: 70}
	d1 := Describe(scene, kpA)
	d2 := Describe(scene, kpA)
	if d1 != d2 {
		t.Error("same keypoint produced different descriptors")
	}
	if HammingDistance(d1, d2) != 0 {
		t.Error("identical descriptors with nonzero distance")
	}
	dB := Describe(scene, kpB)
	if HammingDistance(d1, dB) == 0 {
		t.Error("distinct patches produced identical descriptors")
	}
}

func TestHammingDistanceBasics(t *testing.T) {
	var a, b Descriptor
	if HammingDistance(a, b) != 0 {
		t.Error("zero descriptors should match")
	}
	b[0] = 0xFF
	if HammingDistance(a, b) != 8 {
		t.Errorf("distance = %d, want 8", HammingDistance(a, b))
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	if HammingDistance(a, b) != DescriptorBits {
		t.Errorf("full distance = %d, want %d", HammingDistance(a, b), DescriptorBits)
	}
}

func TestBuildPyramid(t *testing.T) {
	frame := imgutil.TexturedScene(128, 96, 8, 1)
	pyr, err := BuildPyramid(frame, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pyr.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(pyr.Levels))
	}
	if pyr.Levels[1].W != 64 || pyr.Levels[3].W != 16 {
		t.Error("downsampling chain wrong")
	}
	if pyr.Bytes() <= frame.Bytes() {
		t.Error("pyramid bytes should exceed level-0 alone")
	}
	if _, err := BuildPyramid(nil, 4); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := BuildPyramid(frame, 0); err == nil {
		t.Error("zero levels accepted")
	}
}

func TestExtractFeaturesEndToEnd(t *testing.T) {
	cfg := FrontendConfig{
		Detector:    DetectorConfig{Threshold: 20, Border: 16},
		Levels:      3,
		MaxPerLevel: 64,
	}
	scene := imgutil.TexturedScene(256, 192, 16, 5)
	feats, err := ExtractFeatures(cfg, scene)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Fatal("no features extracted from a corner-rich scene")
	}
	var nonZeroDesc int
	for _, f := range feats {
		if f.Level < 0 || f.Level >= 3 {
			t.Errorf("feature level %d out of range", f.Level)
		}
		if f.Desc != (Descriptor{}) {
			nonZeroDesc++
		}
	}
	if nonZeroDesc == 0 {
		t.Error("all descriptors empty")
	}
}

func TestMatchFindsSelf(t *testing.T) {
	cfg := FrontendConfig{
		Detector:    DetectorConfig{Threshold: 20, Border: 16},
		Levels:      2,
		MaxPerLevel: 32,
	}
	scene := imgutil.TexturedScene(192, 144, 12, 9)
	feats, err := ExtractFeatures(cfg, scene)
	if err != nil || len(feats) == 0 {
		t.Fatalf("extraction failed: %v (%d feats)", err, len(feats))
	}
	matches := Match(feats, feats, 0)
	if len(matches) != len(feats) {
		t.Fatalf("self-match found %d of %d", len(matches), len(feats))
	}
	for _, m := range matches {
		a, b := feats[m[0]], feats[m[1]]
		if HammingDistance(a.Desc, b.Desc) != 0 {
			t.Error("self-match with nonzero distance")
		}
	}
}

// Property: Hamming distance is a metric (symmetry + identity + triangle).
func TestPropertyHammingMetric(t *testing.T) {
	f := func(a0, b0, c0 uint64) bool {
		a := Descriptor{a0, a0 >> 1, a0 >> 2, a0 >> 3}
		b := Descriptor{b0, b0 >> 7, b0 >> 3, b0}
		c := Descriptor{c0, c0, c0 >> 5, c0 >> 9}
		dab := HammingDistance(a, b)
		dba := HammingDistance(b, a)
		dac := HammingDistance(a, c)
		dcb := HammingDistance(c, b)
		return dab == dba && HammingDistance(a, a) == 0 && dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadStructure(t *testing.T) {
	p := DefaultWorkloadParams()
	p.FrameW, p.FrameH = 256, 192 // keep test fast
	p.Frontend.Levels = 3
	p.MatchComparisons = 1000
	w, err := Workload(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Launches != 6 {
		t.Errorf("launches = %d, want 2 levels x 3", w.Launches)
	}
	if len(w.Scratch) != 2 {
		t.Error("pyramid and score map should be scratch buffers")
	}
	if w.BytesIn() != 4096 {
		t.Errorf("config copy = %d, want tiny", w.BytesIn())
	}
	if w.BytesOut() <= 0 {
		t.Error("feature buffer missing")
	}
}

func TestWorkloadParamsValidate(t *testing.T) {
	bad := DefaultWorkloadParams()
	bad.FrameW = 8
	if err := bad.Validate(); err == nil {
		t.Error("tiny frame accepted")
	}
	bad = DefaultWorkloadParams()
	bad.PerPixelOps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero kernel depth accepted")
	}
	bad = DefaultWorkloadParams()
	bad.MatchComparisons = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative comparisons accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMatchRatioRejectsAmbiguity(t *testing.T) {
	// Three features: two nearly identical, one distinct. The ratio test
	// must match the distinct one and reject the ambiguous pair.
	var a, b, c Descriptor
	a[0] = 0xFFFF
	b[0] = 0xFFFE     // 1 bit from a
	c[2] = 0xFFFFFFFF // far from both
	train := []Feature{{Desc: a}, {Desc: b}, {Desc: c}}
	query := []Feature{{Desc: a}, {Desc: c}}

	matches := MatchRatio(query, train, 0.8)
	// Query 0 (== a) has best 0 vs second 1: ratio 0 < 0.8? best=0 passes
	// trivially; query 1 (== c) best 0 vs second >> 0 passes.
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(matches))
	}
	// Now query something equidistant from two candidates: rejected.
	var p1, p2, q Descriptor
	p1[0] = 0b1111
	p2[0] = 0b0011
	q[0] = 0b0111 // distance 1 from both
	amb := MatchRatio([]Feature{{Desc: q}}, []Feature{{Desc: p1}, {Desc: p2}}, 0.8)
	if len(amb) != 0 {
		t.Errorf("ambiguous query matched: %v", amb)
	}
}

func TestMatchRatioDegenerate(t *testing.T) {
	feats := []Feature{{}, {}}
	if MatchRatio(feats, feats[:1], 0.8) != nil {
		t.Error("too-small train set accepted")
	}
	if MatchRatio(feats, feats, 0) != nil || MatchRatio(feats, feats, 1.5) != nil {
		t.Error("invalid ratio accepted")
	}
}

func TestMatchRatioOnRealFeatures(t *testing.T) {
	cfg := FrontendConfig{
		Detector:    DetectorConfig{Threshold: 20, Border: 16},
		Levels:      2,
		MaxPerLevel: 48,
	}
	scene := imgutil.TexturedScene(256, 192, 14, 21)
	feats, err := ExtractFeatures(cfg, scene)
	if err != nil || len(feats) < 4 {
		t.Fatalf("extraction: %v (%d)", err, len(feats))
	}
	matches := MatchRatio(feats, feats, 0.8)
	// Self-matching with the ratio test keeps only unambiguous features,
	// but each kept match must be the identity.
	for _, m := range matches {
		if HammingDistance(feats[m[0]].Desc, feats[m[1]].Desc) != 0 {
			t.Error("ratio match is not the identity on self-matching")
		}
	}
	if len(matches) == 0 {
		t.Error("no unambiguous self-matches at all")
	}
}

func TestWorkloadRunsOnSimulator(t *testing.T) {
	p := DefaultWorkloadParams()
	p.FrameW, p.FrameH = 192, 144
	p.Frontend.Levels = 2
	p.Frontend.MaxPerLevel = 32
	p.MatchComparisons = 2000
	w, err := Workload(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := devices.NewSoC(devices.XavierName)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := comm.SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Launches != 4 || sc.KernelTime <= 0 {
		t.Errorf("incomplete run: launches=%d kern=%v", sc.Launches, sc.KernelTime)
	}
	// Only the tiny config buffer is copied in; features come back.
	if sc.CopyBytes != w.BytesIn()+w.BytesOut() {
		t.Errorf("copies = %d, want %d", sc.CopyBytes, w.BytesIn()+w.BytesOut())
	}
	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	// Xavier coherence keeps the pipeline usable under ZC.
	if zc.Total > sc.Total*3 {
		t.Errorf("Xavier ZC %v unreasonably above SC %v", zc.Total, sc.Total)
	}
}
