package shwfs

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/imgutil"
)

func sensorConfig() Config {
	return Config{SubapsX: 8, SubapsY: 8, SubapPx: 16, Threshold: 8}
}

func renderFrame(t *testing.T, seed uint64) (*imgutil.Image, []imgutil.TrueCentroid) {
	t.Helper()
	im, truth, err := imgutil.SpotGrid(imgutil.SpotGridParams{
		SubapsX: 8, SubapsY: 8, SubapPx: 16,
		SpotSigma: 1.4, MaxShift: 3,
		PeakIntensity: 220, Background: 4, NoiseAmp: 2,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return im, truth
}

func TestConfigValidate(t *testing.T) {
	if err := sensorConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := sensorConfig()
	bad.SubapPx = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero subap size accepted")
	}
	bad = sensorConfig()
	bad.Threshold = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestExtractRecoversTruth(t *testing.T) {
	cfg := sensorConfig()
	frame, truth := renderFrame(t, 11)
	cents, err := Extract(cfg, frame)
	if err != nil {
		t.Fatal(err)
	}
	rms, err := RMSError(cfg, cents, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholded CoG on clean Gaussian spots should be sub-pixel accurate.
	if rms > 0.5 {
		t.Errorf("RMS centroid error = %.3f px, want < 0.5", rms)
	}
	for i, c := range cents {
		if !c.Valid {
			t.Errorf("subaperture %d had no valid centroid", i)
		}
	}
}

func TestExtractErrors(t *testing.T) {
	cfg := sensorConfig()
	if _, err := Extract(cfg, nil); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := Extract(cfg, imgutil.NewImage(10, 10)); err == nil {
		t.Error("mismatched frame accepted")
	}
	bad := cfg
	bad.SubapsX = 0
	if _, err := Extract(bad, imgutil.NewImage(128, 128)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDarkFrameInvalidCentroids(t *testing.T) {
	cfg := sensorConfig()
	frame := imgutil.NewImage(cfg.FrameW(), cfg.FrameH()) // all zeros
	cents, err := Extract(cfg, frame)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cents {
		if c.Valid {
			t.Errorf("subaperture %d valid on a dark frame", i)
		}
	}
}

func TestSlopes(t *testing.T) {
	cfg := sensorConfig()
	frame, truth := renderFrame(t, 5)
	cents, err := Extract(cfg, frame)
	if err != nil {
		t.Fatal(err)
	}
	slopes, err := Slopes(cfg, cents)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slopes {
		wantDX := truth[i].X - (float64(i%8)*16 + 8)
		wantDY := truth[i].Y - (float64(i/8)*16 + 8)
		if math.Abs(s.DX-wantDX) > 0.6 || math.Abs(s.DY-wantDY) > 0.6 {
			t.Errorf("subap %d slope (%.2f, %.2f), want (%.2f, %.2f)", i, s.DX, s.DY, wantDX, wantDY)
		}
	}
	if _, err := Slopes(cfg, cents[:3]); err == nil {
		t.Error("mismatched centroid count accepted")
	}
}

func TestRMSErrorEdgeCases(t *testing.T) {
	cfg := sensorConfig()
	if _, err := RMSError(cfg, make([]Centroid, 3), make([]imgutil.TrueCentroid, 4)); err == nil {
		t.Error("mismatched lengths accepted")
	}
	rms, err := RMSError(cfg, nil, nil)
	if err != nil || rms != 0 {
		t.Error("empty inputs should give 0")
	}
	// Invalid centroid counts as a big error.
	rms, err = RMSError(cfg, make([]Centroid, 1), make([]imgutil.TrueCentroid, 1))
	if err != nil || rms < float64(cfg.SubapPx) {
		t.Errorf("invalid centroid RMS = %v, want >= subap size", rms)
	}
}

// Property: centroids are invariant under uniform intensity scaling of the
// above-threshold signal (threshold 0 for exactness).
func TestPropertyIntensityScaleInvariance(t *testing.T) {
	cfg := Config{SubapsX: 4, SubapsY: 4, SubapPx: 16, Threshold: 0}
	f := func(seed uint64, scale8 uint8) bool {
		scale := float32(scale8%9) + 1.5
		im, _, err := imgutil.SpotGrid(imgutil.SpotGridParams{
			SubapsX: 4, SubapsY: 4, SubapPx: 16,
			SpotSigma: 1.4, MaxShift: 3, PeakIntensity: 100,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		a, err := Extract(cfg, im)
		if err != nil {
			return false
		}
		scaled := imgutil.NewImage(im.W, im.H)
		for i, v := range im.Pix {
			scaled.Pix[i] = v * scale
		}
		b, err := Extract(cfg, scaled)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i].Valid != b[i].Valid {
				return false
			}
			if !a[i].Valid {
				continue
			}
			if math.Abs(a[i].X-b[i].X) > 1e-3 || math.Abs(a[i].Y-b[i].Y) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a single bright pixel's centroid is that pixel's center.
func TestPropertySinglePixelCentroid(t *testing.T) {
	cfg := Config{SubapsX: 2, SubapsY: 2, SubapPx: 8, Threshold: 0}
	f := func(px, py uint8) bool {
		x := int(px % 8)
		y := int(py % 8)
		frame := imgutil.NewImage(16, 16)
		frame.Set(x, y, 100)
		cents, err := Extract(cfg, frame)
		if err != nil {
			return false
		}
		c := cents[0]
		return c.Valid &&
			math.Abs(c.X-(float64(x)+0.5)) < 1e-9 &&
			math.Abs(c.Y-(float64(y)+0.5)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadParamsValidate(t *testing.T) {
	p := DefaultWorkloadParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	bad := DefaultWorkloadParams()
	bad.Launches = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero launches accepted")
	}
	bad = DefaultWorkloadParams()
	bad.Launches = 5 // 32 rows not divisible by 5
	if err := bad.Validate(); err == nil {
		t.Error("indivisible stripes accepted")
	}
	bad = DefaultWorkloadParams()
	bad.CPUPasses = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero CPU passes accepted")
	}
}

func TestWorkloadStructure(t *testing.T) {
	w, err := Workload(DefaultWorkloadParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Launches != 4 {
		t.Errorf("launches = %d, want 4", w.Launches)
	}
	if w.BytesIn() != 512*512*4 {
		t.Errorf("frame bytes = %d, want 1MiB", w.BytesIn())
	}
	if w.BytesOut() != 32*32*16 {
		t.Errorf("centroid bytes = %d", w.BytesOut())
	}
	if _, err := Workload(WorkloadParams{}); err == nil {
		t.Error("zero params accepted")
	}
}

func ExampleExtract() {
	frame, _, err := imgutil.SpotGrid(imgutil.SpotGridParams{
		SubapsX: 2, SubapsY: 1, SubapPx: 16,
		SpotSigma: 1.2, MaxShift: 0, // spots dead-center
		PeakIntensity: 200, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	cents, err := Extract(Config{SubapsX: 2, SubapsY: 1, SubapPx: 16, Threshold: 5}, frame)
	if err != nil {
		panic(err)
	}
	fmt.Printf("subap 0 centroid (%.0f, %.0f)\n", cents[0].X, cents[0].Y)
	// Output: subap 0 centroid (8, 8)
}

func TestWorkloadRunsOnSimulator(t *testing.T) {
	p := DefaultWorkloadParams()
	p.Config = Config{SubapsX: 8, SubapsY: 8, SubapPx: 16, Threshold: 10}
	p.Launches = 2
	p.PerPixelOps = 24
	w, err := Workload(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := comm.SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if sc.KernelTime <= 0 || sc.CPUTime <= 0 || sc.Launches != 2 {
		t.Errorf("incomplete run: %+v", sc)
	}
	// The CPU statistics passes give the app its CPU cache usage.
	if sc.CPUL1Misses == 0 {
		t.Error("CPU task should miss L1 (sampled stride)")
	}
	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	// On TX2 the uncached CPU path must dominate the ZC run.
	if zc.CPUTime <= sc.CPUTime {
		t.Error("ZC CPU task should slow down on TX2")
	}
}
