// Package shwfs implements the paper's first case study: centroid extraction
// for Shack-Hartmann wavefront sensors (Kong, Polo, Lambert — Applied Optics
// 2017), the adaptive-optics kernel the paper tunes across the three Jetson
// boards (§IV-B, Tables II and III).
//
// The sensor divides the pupil into a lenslet grid; each lenslet focuses a
// spot onto its subaperture of the detector, and the local wavefront slope
// is the spot's displacement from the subaperture center. The algorithm is
// therefore a thresholded center-of-gravity reduction per subaperture:
//
//	cx = Σ (I(x,y) - T)+ · x / Σ (I(x,y) - T)+   (same for cy)
//
// This file is the *functional* implementation (computes real centroids on
// real frames and is tested against ground truth); workload.go emits the
// matching memory-access pattern to the simulated SoC.
package shwfs

import (
	"fmt"
	"math"

	"igpucomm/internal/imgutil"
)

// Config is the sensor geometry and extraction parameters.
type Config struct {
	SubapsX, SubapsY int     // lenslet grid
	SubapPx          int     // detector pixels per subaperture side
	Threshold        float32 // background threshold subtracted before weighting
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.SubapsX <= 0 || c.SubapsY <= 0 || c.SubapPx <= 0 {
		return fmt.Errorf("shwfs: geometry must be positive, got %dx%d subaps of %dpx",
			c.SubapsX, c.SubapsY, c.SubapPx)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("shwfs: negative threshold %v", c.Threshold)
	}
	return nil
}

// FrameW and FrameH are the detector dimensions the config implies.
func (c Config) FrameW() int { return c.SubapsX * c.SubapPx }

// FrameH is the detector height.
func (c Config) FrameH() int { return c.SubapsY * c.SubapPx }

// Subaps is the lenslet count.
func (c Config) Subaps() int { return c.SubapsX * c.SubapsY }

// Centroid is one subaperture's extraction result, in absolute detector
// coordinates (pixel centers at integer+0.5).
type Centroid struct {
	X, Y  float64
	Mass  float64 // total thresholded intensity
	Valid bool    // false when the subaperture had no signal above threshold
}

// Slope is the wavefront slope a centroid encodes: displacement from the
// subaperture center in pixels.
type Slope struct{ DX, DY float64 }

// Extract computes the per-subaperture centroids of a frame. The frame must
// match the configured geometry.
func Extract(cfg Config, frame *imgutil.Image) ([]Centroid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if frame == nil || frame.W != cfg.FrameW() || frame.H != cfg.FrameH() {
		return nil, fmt.Errorf("shwfs: frame size mismatch (want %dx%d)", cfg.FrameW(), cfg.FrameH())
	}
	out := make([]Centroid, cfg.Subaps())
	for sy := 0; sy < cfg.SubapsY; sy++ {
		for sx := 0; sx < cfg.SubapsX; sx++ {
			out[sy*cfg.SubapsX+sx] = extractOne(cfg, frame, sx, sy)
		}
	}
	return out, nil
}

func extractOne(cfg Config, frame *imgutil.Image, sx, sy int) Centroid {
	x0 := sx * cfg.SubapPx
	y0 := sy * cfg.SubapPx
	var mass, mx, my float64
	for y := y0; y < y0+cfg.SubapPx; y++ {
		for x := x0; x < x0+cfg.SubapPx; x++ {
			v := float64(frame.At(x, y) - cfg.Threshold)
			if v <= 0 {
				continue
			}
			mass += v
			mx += v * (float64(x) + 0.5)
			my += v * (float64(y) + 0.5)
		}
	}
	if mass <= 0 {
		return Centroid{}
	}
	return Centroid{X: mx / mass, Y: my / mass, Mass: mass, Valid: true}
}

// Slopes converts centroids to wavefront slopes (displacement from each
// subaperture's center).
func Slopes(cfg Config, cents []Centroid) ([]Slope, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cents) != cfg.Subaps() {
		return nil, fmt.Errorf("shwfs: got %d centroids for %d subapertures", len(cents), cfg.Subaps())
	}
	out := make([]Slope, len(cents))
	for i, c := range cents {
		if !c.Valid {
			continue
		}
		sx := i % cfg.SubapsX
		sy := i / cfg.SubapsX
		cx := float64(sx*cfg.SubapPx) + float64(cfg.SubapPx)/2
		cy := float64(sy*cfg.SubapPx) + float64(cfg.SubapPx)/2
		out[i] = Slope{DX: c.X - cx, DY: c.Y - cy}
	}
	return out, nil
}

// RMSError measures extraction accuracy against ground truth (only valid
// centroids are scored; an invalid centroid with real signal counts as a
// full-subaperture error).
func RMSError(cfg Config, cents []Centroid, truth []imgutil.TrueCentroid) (float64, error) {
	if len(cents) != len(truth) {
		return 0, fmt.Errorf("shwfs: %d centroids vs %d truth entries", len(cents), len(truth))
	}
	if len(cents) == 0 {
		return 0, nil
	}
	var sum float64
	for i, c := range cents {
		if !c.Valid {
			sum += float64(cfg.SubapPx) * float64(cfg.SubapPx)
			continue
		}
		dx := c.X - truth[i].X
		dy := c.Y - truth[i].Y
		sum += dx*dx + dy*dy
	}
	return math.Sqrt(sum / float64(len(cents))), nil
}
