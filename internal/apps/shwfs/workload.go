package shwfs

import (
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
)

// WorkloadParams maps the algorithm onto the simulated SoC: how the frame is
// striped into kernel launches and how deep the per-pixel GPU work is. The
// defaults mirror the stream-processing implementation the paper tunes
// (thread-per-pixel, warp-shuffle reduction, windowing).
type WorkloadParams struct {
	Config
	// Launches is the number of kernel launches per frame (the stripe
	// count; Table II's "copy time per kernel" divides by it).
	Launches int
	// PerPixelOps is the FP work per pixel in the GPU kernel: threshold
	// test, window function, weighting FMAs and the per-pixel share of the
	// multi-stage reduction the stream-processing formulation uses.
	PerPixelOps int
	// ReduceSteps models the warp-shuffle reduction depth per pixel slot.
	ReduceSteps int
	// CPUPasses is how many sampled statistics passes the CPU makes over
	// the frame (background estimation, threshold update).
	CPUPasses int
	// CPUSampleStride is the byte stride of those passes — the CPU reads
	// one word per stride (the AO loop samples the frame; the full
	// per-pixel work lives on the GPU).
	CPUSampleStride int64
	// Warmup iterations before the measured one.
	Warmup int
}

// DefaultWorkloadParams returns the paper-scale configuration: a 512x512
// detector as 32x32 subapertures of 16x16 px, striped into 4 launches.
func DefaultWorkloadParams() WorkloadParams {
	return WorkloadParams{
		Config:          Config{SubapsX: 32, SubapsY: 32, SubapPx: 16, Threshold: 10},
		Launches:        4,
		PerPixelOps:     200,
		ReduceSteps:     8,
		CPUPasses:       2,
		CPUSampleStride: 256,
		Warmup:          1,
	}
}

// Validate checks the workload parameters.
func (p WorkloadParams) Validate() error {
	if err := p.Config.Validate(); err != nil {
		return err
	}
	if p.Launches <= 0 {
		return fmt.Errorf("shwfs: launches must be positive")
	}
	if p.SubapsY%p.Launches != 0 {
		return fmt.Errorf("shwfs: %d subaperture rows not divisible into %d launches", p.SubapsY, p.Launches)
	}
	if p.PerPixelOps < 0 || p.ReduceSteps < 0 || p.CPUPasses <= 0 || p.Warmup < 0 {
		return fmt.Errorf("shwfs: negative workload parameter")
	}
	if p.CPUSampleStride <= 0 {
		return fmt.Errorf("shwfs: CPU sample stride must be positive")
	}
	return nil
}

// Workload builds the comm.Workload that reproduces this application's
// memory behaviour on the simulator:
//
//   - CPU task: CPUPasses streaming passes over the frame (write-back on the
//     first — dark subtraction; read-only after). The second and later
//     passes are served by the CPU LLC, which is exactly the locality that
//     makes the app CPU-cache-dependent on Nano/TX2 (Table II).
//   - GPU kernels: one stripe of subaperture rows per launch,
//     thread-per-pixel, coalesced loads, PerPixelOps of FP work plus a
//     shuffle reduction, one 4-byte store per pixel slot into the
//     per-subaperture accumulator.
//   - CPU post: converts the reduced accumulators to slopes (a division per
//     axis per subaperture).
func Workload(p WorkloadParams) (comm.Workload, error) {
	if err := p.Validate(); err != nil {
		return comm.Workload{}, err
	}
	frameBytes := int64(p.FrameW()) * int64(p.FrameH()) * 4
	centBytes := int64(p.Subaps()) * 16
	pxPerLaunch := p.FrameW() * p.FrameH() / p.Launches

	return comm.Workload{
		Name: "shwfs",
		In:   []comm.BufferSpec{{Name: "frame", Size: frameBytes}},
		Out:  []comm.BufferSpec{{Name: "centroids", Size: centBytes}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			// Sampled background/threshold statistics over the frame: one
			// word per CPUSampleStride bytes, CPUPasses times. The first
			// pass misses the CPU caches; later passes are served by the
			// LLC (the sampled set exceeds L1), which is the locality
			// behind the app's CPU cache usage in Table II.
			frame := lay.Addr("frame")
			for pass := 0; pass < p.CPUPasses; pass++ {
				for off := int64(0); off < frameBytes; off += p.CPUSampleStride {
					c.Load(frame+off, 4)
					c.Work(isa.FMA, 2)
				}
			}
		},
		MakeKernel: func(lay comm.Layout, launch int) gpu.Kernel {
			frame := lay.Addr("frame")
			cents := lay.Addr("centroids")
			stripeBase := int64(launch) * int64(pxPerLaunch)
			return gpu.Kernel{
				Name:    fmt.Sprintf("shwfs-centroid-%d", launch),
				Threads: pxPerLaunch,
				Program: func(tid int, prog *isa.Program) {
					pxIdx := stripeBase + int64(tid)
					prog.Ld(frame+pxIdx*4, 4)
					// Threshold test + window + weighting.
					prog.Compute(isa.FMA, p.PerPixelOps)
					// Warp-shuffle reduction steps (register traffic only).
					prog.Compute(isa.AddS32, p.ReduceSteps)
					// Accumulator store: every lane targets its
					// subaperture's slot; lanes of a warp span at most two
					// subapertures, so the store coalesces to 1-2 lines.
					y := int(pxIdx) / p.FrameW()
					x := int(pxIdx) % p.FrameW()
					subap := int64((y/p.SubapPx)*p.SubapsX + x/p.SubapPx)
					prog.St(cents+subap*16, 4)
				},
			}
		},
		CPUPost: func(c *cpu.CPU, lay comm.Layout) {
			cents := lay.Addr("centroids")
			for s := int64(0); s < int64(p.Subaps()); s++ {
				c.Load(cents+s*16, 12)
				c.Work(isa.DivF32, 2)
			}
		},
		Launches: p.Launches,
		Warmup:   p.Warmup,
	}, nil
}
