package lanedet

import (
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/imgutil"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := map[string]func(*Config){
		"zero threshold": func(c *Config) { c.EdgeThreshold = 0 },
		"even bins":      func(c *Config) { c.ThetaBins = 30 },
		"tiny bins":      func(c *Config) { c.ThetaBins = 1 },
		"wide theta":     func(c *Config) { c.MaxTheta = math.Pi },
		"zero rho":       func(c *Config) { c.RhoStep = 0 },
		"zero lanes":     func(c *Config) { c.MaxLanes = 0 },
	}
	for name, mut := range cases {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSobelRespondsToEdges(t *testing.T) {
	im := imgutil.NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			im.Set(x, y, 200) // vertical step edge at x=16
		}
	}
	g := Sobel(im)
	if g.At(16, 16) < 100 {
		t.Errorf("gradient at the edge = %v, want strong", g.At(16, 16))
	}
	if g.At(8, 16) != 0 || g.At(24, 16) != 0 {
		t.Error("gradient nonzero on flat regions")
	}
	// Border stays zero.
	if g.At(0, 0) != 0 || g.At(31, 31) != 0 {
		t.Error("border not zeroed")
	}
}

func TestSobelBrightnessOffsetInvariance(t *testing.T) {
	a := imgutil.TexturedScene(64, 48, 6, 3)
	b := imgutil.NewImage(64, 48)
	for i, v := range a.Pix {
		b.Pix[i] = v + 50
	}
	ga, gb := Sobel(a), Sobel(b)
	for i := range ga.Pix {
		if math.Abs(float64(ga.Pix[i]-gb.Pix[i])) > 1e-3 {
			t.Fatal("Sobel not invariant to uniform brightness offset")
		}
	}
}

func TestDetectStraightVerticalLanes(t *testing.T) {
	frame, truth := RoadScene(320, 240, []float64{80, 240}, 0, 1)
	lanes, err := Detect(DefaultConfig(), frame, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) < 2 {
		t.Fatalf("detected %d lanes, want >= 2", len(lanes))
	}
	for _, want := range truth {
		found := false
		for _, got := range lanes {
			if math.Abs(got.XAt(120)-want.XAt(120)) < 6 && math.Abs(got.Theta-want.Theta) < 0.1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ground-truth lane at x=%.0f not detected (got %+v)", want.XAt(120), lanes)
		}
	}
}

func TestDetectSlantedLanes(t *testing.T) {
	frame, truth := RoadScene(320, 240, []float64{100, 220}, 0.15, 2)
	lanes, err := Detect(DefaultConfig(), frame, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range truth {
		found := false
		for _, got := range lanes {
			if math.Abs(got.XAt(120)-want.XAt(120)) < 8 {
				found = true
			}
		}
		if !found {
			t.Errorf("slanted lane at x(120)=%.0f not detected", want.XAt(120))
		}
	}
}

func TestDetectEmptyRoad(t *testing.T) {
	frame, _ := RoadScene(160, 120, nil, 0, 3)
	lanes, err := Detect(DefaultConfig(), frame, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 0 {
		t.Errorf("detected %d lanes on an empty road", len(lanes))
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(DefaultConfig(), nil, 10); err == nil {
		t.Error("nil frame accepted")
	}
	bad := DefaultConfig()
	bad.ThetaBins = 2
	frame, _ := RoadScene(64, 48, []float64{32}, 0, 1)
	if _, err := Detect(bad, frame, 10); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Hough(DefaultConfig(), nil); err == nil {
		t.Error("nil edge map accepted")
	}
}

func TestFindLanesSuppression(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLanes = 2
	acc := &Accumulator{cfg: cfg, W: 100, H: 100, RhoBins: 100, rhoOffset: 50}
	acc.Votes = make([]int32, cfg.ThetaBins*acc.RhoBins)
	// One strong peak plus a near-duplicate neighbor and a distant peak.
	acc.Votes[5*acc.RhoBins+50] = 100
	acc.Votes[5*acc.RhoBins+52] = 90 // within suppression window
	acc.Votes[20*acc.RhoBins+20] = 80
	lanes := FindLanes(acc, 10)
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d, want 2 (duplicate suppressed)", len(lanes))
	}
	if lanes[0].Votes != 100 || lanes[1].Votes != 80 {
		t.Errorf("peak selection wrong: %+v", lanes)
	}
}

func TestLaneXAt(t *testing.T) {
	// Vertical lane at x = 42.
	l := Lane{Theta: 0, Rho: 42}
	if math.Abs(l.XAt(0)-42) > 1e-9 || math.Abs(l.XAt(100)-42) > 1e-9 {
		t.Error("vertical lane XAt wrong")
	}
	// Degenerate horizontal line: NaN.
	if !math.IsNaN(Lane{Theta: math.Pi / 2}.XAt(0)) {
		t.Error("degenerate XAt should be NaN")
	}
}

// Property: detection is invariant to uniform brightness offsets (Sobel is
// differential, so the edge map is unchanged).
func TestPropertyBrightnessInvariantDetection(t *testing.T) {
	f := func(offset8 uint8) bool {
		offset := float32(offset8 % 60)
		frame, _ := RoadScene(160, 120, []float64{40, 120}, 0.05, 7)
		shifted := imgutil.NewImage(frame.W, frame.H)
		for i, v := range frame.Pix {
			shifted.Pix[i] = v + offset
		}
		a, err1 := Detect(DefaultConfig(), frame, 60)
		b, err2 := Detect(DefaultConfig(), shifted, 60)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadStructureAndRun(t *testing.T) {
	p := DefaultWorkloadParams()
	p.FrameW, p.FrameH = 160, 120 // keep the simulated run quick
	w, err := Workload(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Launches != 2 {
		t.Errorf("launches = %d, want 2 (sobel + hough)", w.Launches)
	}
	if len(w.Scratch) != 1 {
		t.Error("edge map should be scratch")
	}

	s, err := devices.NewSoC(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := comm.SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if sc.KernelTime <= 0 || sc.CPUTime <= 0 || sc.CopyBytes <= 0 {
		t.Errorf("incomplete SC run: %+v", sc)
	}
	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	// The scatter-heavy Hough kernel must suffer on the TX2 pinned path.
	if zc.KernelTime <= sc.KernelTime {
		t.Error("ZC kernels should slow down on TX2")
	}
}

func TestWorkloadParamsValidate(t *testing.T) {
	bad := DefaultWorkloadParams()
	bad.FrameW = 8
	if err := bad.Validate(); err == nil {
		t.Error("tiny frame accepted")
	}
	bad = DefaultWorkloadParams()
	bad.SobelOps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sobel depth accepted")
	}
	bad = DefaultWorkloadParams()
	bad.Warmup = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
}
