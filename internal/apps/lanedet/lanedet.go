// Package lanedet implements a lane-detection pipeline — the ADAS workload
// the paper's introduction motivates (convoy tracking and lane detection on
// embedded GPUs, refs [1] and [2]): Sobel edge extraction and a restricted
// Hough transform on the GPU, with lane-line selection and temporal tracking
// on the CPU.
//
// Like the other case studies, the algorithm is functional (finds real lane
// lines on synthetic road scenes, tested against ground truth) and
// workload.go maps its memory behaviour onto the simulated SoC as a third
// tuning subject for the framework.
package lanedet

import (
	"fmt"
	"math"
	"sort"

	"igpucomm/internal/imgutil"
)

// Config parameterizes the pipeline.
type Config struct {
	// EdgeThreshold is the Sobel gradient-magnitude cutoff.
	EdgeThreshold float32
	// ThetaBins quantizes line angle over [-MaxTheta, +MaxTheta] around
	// vertical (lane markings are near-vertical in a forward camera).
	ThetaBins int
	// MaxTheta is the angular half-range in radians.
	MaxTheta float64
	// RhoStep is the distance quantization in pixels.
	RhoStep float64
	// MaxLanes bounds how many lines the peak extraction returns.
	MaxLanes int
}

// DefaultConfig returns a forward-camera tuning.
func DefaultConfig() Config {
	return Config{
		EdgeThreshold: 60,
		ThetaBins:     31,
		MaxTheta:      math.Pi / 4,
		RhoStep:       2,
		MaxLanes:      4,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.EdgeThreshold <= 0 {
		return fmt.Errorf("lanedet: edge threshold must be positive")
	}
	if c.ThetaBins < 3 || c.ThetaBins%2 == 0 {
		return fmt.Errorf("lanedet: theta bins %d must be odd and >= 3", c.ThetaBins)
	}
	if c.MaxTheta <= 0 || c.MaxTheta >= math.Pi/2 {
		return fmt.Errorf("lanedet: max theta %v out of (0, pi/2)", c.MaxTheta)
	}
	if c.RhoStep <= 0 {
		return fmt.Errorf("lanedet: rho step must be positive")
	}
	if c.MaxLanes <= 0 {
		return fmt.Errorf("lanedet: max lanes must be positive")
	}
	return nil
}

// Sobel computes the gradient magnitude map (zero on the 1px border).
func Sobel(im *imgutil.Image) *imgutil.Image {
	out := imgutil.NewImage(im.W, im.H)
	for y := 1; y < im.H-1; y++ {
		for x := 1; x < im.W-1; x++ {
			gx := -im.At(x-1, y-1) - 2*im.At(x-1, y) - im.At(x-1, y+1) +
				im.At(x+1, y-1) + 2*im.At(x+1, y) + im.At(x+1, y+1)
			gy := -im.At(x-1, y-1) - 2*im.At(x, y-1) - im.At(x+1, y-1) +
				im.At(x-1, y+1) + 2*im.At(x, y+1) + im.At(x+1, y+1)
			out.Set(x, y, float32(math.Hypot(float64(gx), float64(gy))))
		}
	}
	return out
}

// Accumulator is a Hough vote grid over (theta, rho).
type Accumulator struct {
	cfg        Config
	W, H       int // image dimensions the votes came from
	RhoBins    int
	rhoOffset  float64
	Votes      []int32 // ThetaBins * RhoBins, theta-major
	EdgePixels int
}

// thetaAt returns the angle of bin t, measured from vertical.
func (a *Accumulator) thetaAt(t int) float64 {
	half := a.cfg.ThetaBins / 2
	return float64(t-half) / float64(half) * a.cfg.MaxTheta
}

// binFor returns the rho bin of (x, y) at theta bin t, and whether it is in
// range. Lines are parameterized x·cos(θ) + y·sin(θ) = ρ with θ measured
// from the x-axis... here from vertical: ρ = x·cos(θ) - y·sin(θ).
func (a *Accumulator) binFor(x, y, t int) (int, bool) {
	th := a.thetaAt(t)
	rho := float64(x)*math.Cos(th) - float64(y)*math.Sin(th)
	bin := int(math.Round((rho + a.rhoOffset) / a.cfg.RhoStep))
	if bin < 0 || bin >= a.RhoBins {
		return 0, false
	}
	return bin, true
}

// Hough votes every edge pixel into the accumulator.
func Hough(cfg Config, edges *imgutil.Image) (*Accumulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if edges == nil {
		return nil, fmt.Errorf("lanedet: nil edge map")
	}
	diag := math.Hypot(float64(edges.W), float64(edges.H))
	acc := &Accumulator{
		cfg:       cfg,
		W:         edges.W,
		H:         edges.H,
		RhoBins:   int(2*diag/cfg.RhoStep) + 1,
		rhoOffset: diag,
	}
	acc.Votes = make([]int32, cfg.ThetaBins*acc.RhoBins)
	for y := 0; y < edges.H; y++ {
		for x := 0; x < edges.W; x++ {
			if edges.At(x, y) < cfg.EdgeThreshold {
				continue
			}
			acc.EdgePixels++
			for t := 0; t < cfg.ThetaBins; t++ {
				if bin, ok := acc.binFor(x, y, t); ok {
					acc.Votes[t*acc.RhoBins+bin]++
				}
			}
		}
	}
	return acc, nil
}

// Lane is one detected line in (theta, rho) form plus its support.
type Lane struct {
	Theta float64 // radians from vertical; positive leans right
	Rho   float64 // signed distance parameter in pixels
	Votes int
}

// XAt returns the lane line's x position at row y.
func (l Lane) XAt(y int) float64 {
	c := math.Cos(l.Theta)
	if math.Abs(c) < 1e-9 {
		return math.NaN()
	}
	return (l.Rho + float64(y)*math.Sin(l.Theta)) / c
}

// FindLanes extracts up to MaxLanes peaks from the accumulator with
// neighborhood suppression (no two lanes within 2 theta bins and 5 rho bins).
func FindLanes(acc *Accumulator, minVotes int) []Lane {
	type peak struct{ t, r, v int }
	var peaks []peak
	for t := 0; t < acc.cfg.ThetaBins; t++ {
		for r := 0; r < acc.RhoBins; r++ {
			v := int(acc.Votes[t*acc.RhoBins+r])
			if v >= minVotes {
				peaks = append(peaks, peak{t, r, v})
			}
		}
	}
	sort.Slice(peaks, func(i, j int) bool {
		if peaks[i].v != peaks[j].v {
			return peaks[i].v > peaks[j].v
		}
		if peaks[i].t != peaks[j].t {
			return peaks[i].t < peaks[j].t
		}
		return peaks[i].r < peaks[j].r
	})
	var out []Lane
	taken := make([][2]int, 0, acc.cfg.MaxLanes)
	for _, p := range peaks {
		if len(out) >= acc.cfg.MaxLanes {
			break
		}
		clash := false
		for _, tk := range taken {
			if abs(p.t-tk[0]) <= 2 && abs(p.r-tk[1]) <= 5 {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		taken = append(taken, [2]int{p.t, p.r})
		out = append(out, Lane{
			Theta: acc.thetaAt(p.t),
			Rho:   float64(p.r)*acc.cfg.RhoStep - acc.rhoOffset,
			Votes: p.v,
		})
	}
	return out
}

// Detect runs the whole pipeline on a frame.
func Detect(cfg Config, frame *imgutil.Image, minVotes int) ([]Lane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if frame == nil {
		return nil, fmt.Errorf("lanedet: nil frame")
	}
	acc, err := Hough(cfg, Sobel(frame))
	if err != nil {
		return nil, err
	}
	return FindLanes(acc, minVotes), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RoadScene renders a synthetic forward-camera frame: a dark road surface
// with bright lane markings drawn as slanted lines, plus mild noise. It
// returns the frame and the ground-truth lanes.
func RoadScene(w, h int, laneXs []float64, slope float64, seed uint64) (*imgutil.Image, []Lane) {
	im := imgutil.NewImage(w, h)
	rng := imgutil.NewRNG(seed)
	for i := range im.Pix {
		im.Pix[i] = 25 + float32(rng.Float()*6)
	}
	truth := make([]Lane, 0, len(laneXs))
	theta := math.Atan(slope)
	for _, baseX := range laneXs {
		// Marking: x(y) = baseX + slope*(h-1-y); bottom row at baseX.
		for y := 0; y < h; y++ {
			x := baseX + slope*float64(h-1-y)
			for dx := -1; dx <= 1; dx++ {
				xi := int(math.Round(x)) + dx
				if xi >= 0 && xi < w {
					im.Set(xi, y, 230)
				}
			}
		}
		// In (theta from vertical, rho) form: x·cosθ - y·sinθ = ρ with
		// slope = -tan(... derive directly from two points.
		x0 := baseX + slope*float64(h-1) // at y=0
		rho := x0 * math.Cos(-theta)
		truth = append(truth, Lane{Theta: -theta, Rho: rho})
	}
	return im, truth
}
