package lanedet

import (
	"fmt"
	"math"
)

// Tracker smooths lane detections across frames: each detection is
// associated with the nearest tracked lane (by bottom-row position) and
// blended exponentially; unmatched tracks age out. This is the CPU-side
// temporal work the workload models (and what makes the pipeline usable on
// noisy single-frame detections).
type Tracker struct {
	// Alpha is the blend weight of the new detection (0..1].
	Alpha float64
	// GateX is the association gate in pixels at the anchor row.
	GateX float64
	// MaxMisses drops a track after this many frames without a match.
	MaxMisses int
	// AnchorY is the row where lanes are compared (bottom of the image).
	AnchorY int

	tracks []track
}

type track struct {
	lane   Lane
	misses int
	age    int
}

// TrackedLane is a smoothed lane with its track age.
type TrackedLane struct {
	Lane
	Age int // frames the track has existed
}

// NewTracker builds a tracker with sane defaults for the given frame height.
func NewTracker(frameH int) (*Tracker, error) {
	if frameH <= 0 {
		return nil, fmt.Errorf("lanedet: frame height must be positive")
	}
	return &Tracker{
		Alpha:     0.4,
		GateX:     12,
		MaxMisses: 3,
		AnchorY:   frameH - 1,
	}, nil
}

// Validate reports configuration problems.
func (t *Tracker) Validate() error {
	if t.Alpha <= 0 || t.Alpha > 1 {
		return fmt.Errorf("lanedet: alpha %v out of (0,1]", t.Alpha)
	}
	if t.GateX <= 0 || t.MaxMisses <= 0 || t.AnchorY < 0 {
		return fmt.Errorf("lanedet: invalid tracker parameters")
	}
	return nil
}

// Update feeds one frame's detections and returns the current smoothed lanes
// (stable-ordered by anchor-row position).
func (t *Tracker) Update(detections []Lane) ([]TrackedLane, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	matched := make([]bool, len(t.tracks))
	var unclaimed []Lane
	for _, det := range detections {
		best, bestDist := -1, t.GateX
		dx := det.XAt(t.AnchorY)
		for i, tr := range t.tracks {
			if matched[i] {
				continue
			}
			d := math.Abs(tr.lane.XAt(t.AnchorY) - dx)
			if d <= bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			unclaimed = append(unclaimed, det)
			continue
		}
		matched[best] = true
		tr := &t.tracks[best]
		tr.lane.Theta = blend(tr.lane.Theta, det.Theta, t.Alpha)
		tr.lane.Rho = blend(tr.lane.Rho, det.Rho, t.Alpha)
		tr.lane.Votes = det.Votes
		tr.misses = 0
		tr.age++
	}

	// Age unmatched tracks, drop stale ones.
	kept := t.tracks[:0]
	for i, tr := range t.tracks {
		if !matched[i] {
			tr.misses++
			tr.age++
		}
		if tr.misses < t.MaxMisses {
			kept = append(kept, tr)
		}
	}
	t.tracks = kept

	// Adopt the unmatched detections as new tracks.
	for _, det := range unclaimed {
		t.tracks = append(t.tracks, track{lane: det, age: 1})
	}

	out := make([]TrackedLane, 0, len(t.tracks))
	for _, tr := range t.tracks {
		out = append(out, TrackedLane{Lane: tr.lane, Age: tr.age})
	}
	sortByAnchor(out, t.AnchorY)
	return out, nil
}

func blend(old, new, alpha float64) float64 {
	return old*(1-alpha) + new*alpha
}

func sortByAnchor(lanes []TrackedLane, anchorY int) {
	for i := 1; i < len(lanes); i++ {
		for j := i; j > 0 && lanes[j].XAt(anchorY) < lanes[j-1].XAt(anchorY); j-- {
			lanes[j], lanes[j-1] = lanes[j-1], lanes[j]
		}
	}
}
