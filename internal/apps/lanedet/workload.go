package lanedet

import (
	"fmt"
	"math"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
)

// WorkloadParams maps the pipeline onto the simulated SoC.
type WorkloadParams struct {
	Config
	// FrameW and FrameH are the camera dimensions.
	FrameW, FrameH int
	// SobelOps is the per-pixel compute of the gradient kernel.
	SobelOps int
	// VoteOps is the per-(pixel, theta-bin) compute of the Hough kernel.
	VoteOps int
	// TrackOps is the CPU-side per-accumulator-word work (peak scan +
	// temporal smoothing against the previous frame).
	TrackOps int
	Warmup   int
}

// DefaultWorkloadParams returns a 320x240 forward-camera configuration.
func DefaultWorkloadParams() WorkloadParams {
	return WorkloadParams{
		Config: DefaultConfig(),
		FrameW: 320, FrameH: 240,
		SobelOps: 14,
		VoteOps:  4,
		TrackOps: 3,
		Warmup:   1,
	}
}

// Validate checks the parameters.
func (p WorkloadParams) Validate() error {
	if err := p.Config.Validate(); err != nil {
		return err
	}
	if p.FrameW < 32 || p.FrameH < 32 {
		return fmt.Errorf("lanedet: frame %dx%d too small", p.FrameW, p.FrameH)
	}
	if p.SobelOps <= 0 || p.VoteOps <= 0 || p.TrackOps <= 0 {
		return fmt.Errorf("lanedet: kernel depths must be positive")
	}
	if p.Warmup < 0 {
		return fmt.Errorf("lanedet: negative warmup")
	}
	return nil
}

// rhoBins mirrors the functional accumulator sizing.
func (p WorkloadParams) rhoBins() int {
	diag := math.Hypot(float64(p.FrameW), float64(p.FrameH))
	return int(2*diag/p.RhoStep) + 1
}

// Workload builds the comm.Workload for the pipeline:
//
//   - In "frame": the camera frame (copied to the device under SC).
//   - Scratch "edges": the gradient map, produced and consumed on the GPU.
//   - Out "acc": the Hough accumulator the CPU scans for peaks.
//   - Launch 0: Sobel (thread-per-pixel stencil, coalesced row reuse).
//   - Launch 1: Hough voting (thread-per-pixel, scattered accumulator
//     stores — the cache-hostile part).
//   - CPU post: accumulator peak scan + temporal lane smoothing.
func Workload(p WorkloadParams) (comm.Workload, error) {
	if err := p.Validate(); err != nil {
		return comm.Workload{}, err
	}
	frameBytes := int64(p.FrameW) * int64(p.FrameH) * 4
	accBytes := int64(p.ThetaBins) * int64(p.rhoBins()) * 4
	px := p.FrameW * p.FrameH

	return comm.Workload{
		Name: "lanedet",
		In:   []comm.BufferSpec{{Name: "frame", Size: frameBytes}},
		Out:  []comm.BufferSpec{{Name: "acc", Size: accBytes}},
		Scratch: []comm.BufferSpec{
			{Name: "edges", Size: frameBytes},
		},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			// Temporal tracking: scan the previous frame's accumulator for
			// peaks and smooth the lane estimates.
			acc := lay.Addr("acc")
			words := accBytes / 4
			for i := int64(0); i < words; i += 4 {
				c.Load(acc+i*4, 4)
				c.Work(isa.FMA, p.TrackOps)
			}
		},
		MakeKernel: func(lay comm.Layout, launch int) gpu.Kernel {
			frame := lay.Addr("frame")
			edges := lay.Addr("edges")
			acc := lay.Addr("acc")
			if launch == 0 {
				return gpu.Kernel{
					Name:    "lanedet-sobel",
					Threads: px,
					Program: func(tid int, prog *isa.Program) {
						// 3x3 stencil: three row-segment loads (row reuse
						// makes the upper rows L1 hits), gradient math,
						// one edge-map store.
						y := tid / p.FrameW
						x := tid % p.FrameW
						for dy := -1; dy <= 1; dy++ {
							ny := clamp(y+dy, 0, p.FrameH-1)
							nx := clamp(x-1, 0, p.FrameW-1)
							prog.Ld(frame+(int64(ny)*int64(p.FrameW)+int64(nx))*4, 12)
						}
						prog.Compute(isa.FMA, p.SobelOps)
						prog.Compute(isa.SqrtF32, 1)
						prog.St(edges+int64(tid)*4, 4)
					},
				}
			}
			rb := int64(p.rhoBins())
			return gpu.Kernel{
				Name:    "lanedet-hough",
				Threads: px,
				Program: func(tid int, prog *isa.Program) {
					// Read the edge value, then vote across the theta bins
					// (predicated: every thread emits the votes; real
					// kernels do too and mask the write). Votes scatter
					// across the accumulator rows.
					prog.Ld(edges+int64(tid)*4, 4)
					for t := 0; t < p.ThetaBins; t += 4 {
						prog.Compute(isa.FMA, p.VoteOps)
						// Deterministic scattered vote address with the
						// same statistics as x·cosθ - y·sinθ quantization.
						bin := (int64(tid)*2654435761 + int64(t)*40503) % rb
						if bin < 0 {
							bin += rb
						}
						prog.St(acc+(int64(t)*rb+bin)*4, 4)
					}
				},
			}
		},
		CPUPost: func(c *cpu.CPU, lay comm.Layout) {
			// Final lane selection over the fresh accumulator.
			acc := lay.Addr("acc")
			words := accBytes / 4
			for i := int64(0); i < words; i += 16 {
				c.Load(acc+i*4, 4)
				c.Work(isa.AddS32, 1)
			}
		},
		Launches: 2,
		Warmup:   p.Warmup,
	}, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
