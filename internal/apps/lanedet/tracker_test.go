package lanedet

import (
	"math"
	"testing"
)

func TestNewTracker(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Error("zero height accepted")
	}
	tr, err := NewTracker(240)
	if err != nil {
		t.Fatal(err)
	}
	if tr.AnchorY != 239 {
		t.Errorf("anchor = %d", tr.AnchorY)
	}
}

func TestTrackerValidate(t *testing.T) {
	tr, _ := NewTracker(240)
	tr.Alpha = 0
	if _, err := tr.Update(nil); err == nil {
		t.Error("zero alpha accepted")
	}
	tr, _ = NewTracker(240)
	tr.MaxMisses = 0
	if _, err := tr.Update(nil); err == nil {
		t.Error("zero misses accepted")
	}
}

func TestTrackerSmoothsJitter(t *testing.T) {
	tr, _ := NewTracker(240)
	// A lane jittering around rho=100 with theta 0.
	var last []TrackedLane
	var err error
	for i := 0; i < 12; i++ {
		jitter := 4.0
		if i%2 == 1 {
			jitter = -4
		}
		last, err = tr.Update([]Lane{{Theta: 0, Rho: 100 + jitter, Votes: 50}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(last) != 1 {
		t.Fatalf("tracks = %d, want 1", len(last))
	}
	if math.Abs(last[0].Rho-100) > 3 {
		t.Errorf("smoothed rho = %.1f, want near 100 (raw jitter ±4)", last[0].Rho)
	}
	if last[0].Age != 12 {
		t.Errorf("age = %d, want 12", last[0].Age)
	}
}

func TestTrackerAssociatesByPosition(t *testing.T) {
	tr, _ := NewTracker(240)
	if _, err := tr.Update([]Lane{{Rho: 80}, {Rho: 240}}); err != nil {
		t.Fatal(err)
	}
	// Next frame: detections move slightly; they must keep their tracks.
	lanes, err := tr.Update([]Lane{{Rho: 238}, {Rho: 83}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 2 {
		t.Fatalf("tracks = %d, want 2", len(lanes))
	}
	if lanes[0].Age != 2 || lanes[1].Age != 2 {
		t.Errorf("tracks not continued: ages %d, %d", lanes[0].Age, lanes[1].Age)
	}
	// Sorted by anchor position.
	if lanes[0].Rho > lanes[1].Rho {
		t.Error("lanes not ordered")
	}
}

func TestTrackerDropsStaleTracks(t *testing.T) {
	tr, _ := NewTracker(240)
	if _, err := tr.Update([]Lane{{Rho: 100}}); err != nil {
		t.Fatal(err)
	}
	var lanes []TrackedLane
	var err error
	for i := 0; i < 3; i++ { // MaxMisses empty frames
		lanes, err = tr.Update(nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(lanes) != 0 {
		t.Errorf("stale track survived: %v", lanes)
	}
}

func TestTrackerNewLaneOutsideGate(t *testing.T) {
	tr, _ := NewTracker(240)
	if _, err := tr.Update([]Lane{{Rho: 100}}); err != nil {
		t.Fatal(err)
	}
	lanes, err := tr.Update([]Lane{{Rho: 100}, {Rho: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 2 {
		t.Fatalf("tracks = %d, want 2 (new lane adopted)", len(lanes))
	}
}

func TestTrackerEndToEndOverFrames(t *testing.T) {
	// Drive the tracker with real detections over a slowly drifting scene.
	tr, _ := NewTracker(240)
	var lanes []TrackedLane
	for frame := 0; frame < 6; frame++ {
		drift := float64(frame) * 1.5
		img, _ := RoadScene(320, 240, []float64{80 + drift, 240 - drift}, 0.05, uint64(frame+1))
		dets, err := Detect(DefaultConfig(), img, 100)
		if err != nil {
			t.Fatal(err)
		}
		lanes, err = tr.Update(dets)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(lanes) < 2 {
		t.Fatalf("tracked %d lanes, want >= 2", len(lanes))
	}
	// The two oldest tracks should have survived all frames.
	old := 0
	for _, l := range lanes {
		if l.Age >= 5 {
			old++
		}
	}
	if old < 2 {
		t.Errorf("only %d long-lived tracks", old)
	}
}
