// Package catalog is the registry of the paper's case-study applications,
// keyed by the names the CLIs and the advisory service accept. It exists so
// cmd/advisor, cmd/advisord and the test suites resolve "shwfs" to the same
// workload construction instead of each carrying its own switch.
package catalog

import (
	"fmt"
	"sort"

	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
)

// Scale selects the workload size.
type Scale int

// Workload scales.
const (
	// Full is the paper-scale configuration (each app's
	// DefaultWorkloadParams).
	Full Scale = iota
	// Quick is a reduced configuration with the same structure — the same
	// buffers, launch schedule and access patterns at a fraction of the
	// footprint — for tests, benchmarks and -quick CLI runs.
	Quick
	// Micro is the smallest configuration that still exercises every
	// structural element (all buffers, at least one launch per kernel,
	// both reduce and per-pixel phases). Its absolute numbers are
	// meaningless; it exists for harnesses that need thousands of advisory
	// calls per second — the deterministic simulation tests sweep hundreds
	// of seeded fleet scenarios and pay the workload simulation on every
	// step.
	Micro
)

var builders = map[string]func(Scale) (comm.Workload, error){
	"shwfs": func(sc Scale) (comm.Workload, error) {
		p := shwfs.DefaultWorkloadParams()
		switch sc {
		case Quick:
			p.Config = shwfs.Config{SubapsX: 8, SubapsY: 8, SubapPx: 8, Threshold: 10}
			p.Launches = 2
			p.PerPixelOps = 50
			p.ReduceSteps = 4
		case Micro:
			p.Config = shwfs.Config{SubapsX: 2, SubapsY: 2, SubapPx: 4, Threshold: 10}
			p.Launches = 1
			p.PerPixelOps = 4
			p.ReduceSteps = 1
		}
		return shwfs.Workload(p)
	},
	"orbslam": func(sc Scale) (comm.Workload, error) {
		p := orbslam.DefaultWorkloadParams()
		switch sc {
		case Quick:
			p.FrameW, p.FrameH = 160, 120
			p.Frontend.Levels = 3
			p.Frontend.MaxPerLevel = 32
			p.PerPixelOps = 16
			p.DescLoads = 8
			p.DescOps = 20
			p.MatchComparisons = 5000
		case Micro:
			p.FrameW, p.FrameH = 32, 24
			p.Frontend.Levels = 2
			p.Frontend.MaxPerLevel = 8
			p.PerPixelOps = 2
			p.DescLoads = 2
			p.DescOps = 4
			p.MatchComparisons = 100
		}
		return orbslam.Workload(p)
	},
	"lanedet": func(sc Scale) (comm.Workload, error) {
		p := lanedet.DefaultWorkloadParams()
		switch sc {
		case Quick:
			p.FrameW, p.FrameH = 96, 64
			p.SobelOps = 6
			p.VoteOps = 2
			p.TrackOps = 2
		case Micro:
			p.FrameW, p.FrameH = 16, 12
			p.SobelOps = 1
			p.VoteOps = 1
			p.TrackOps = 1
		}
		return lanedet.Workload(p)
	},
}

// Names lists the catalogued application names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName builds the named application's workload at the given scale.
func ByName(name string, sc Scale) (comm.Workload, error) {
	b, ok := builders[name]
	if !ok {
		return comm.Workload{}, fmt.Errorf("catalog: unknown application %q (have %v)", name, Names())
	}
	return b(sc)
}
