// Package catalog is the registry of the paper's case-study applications,
// keyed by the names the CLIs and the advisory service accept. It exists so
// cmd/advisor, cmd/advisord and the test suites resolve "shwfs" to the same
// workload construction instead of each carrying its own switch.
package catalog

import (
	"fmt"
	"sort"

	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
)

// Scale selects the workload size.
type Scale int

// Workload scales.
const (
	// Full is the paper-scale configuration (each app's
	// DefaultWorkloadParams).
	Full Scale = iota
	// Quick is a reduced configuration with the same structure — the same
	// buffers, launch schedule and access patterns at a fraction of the
	// footprint — for tests, benchmarks and -quick CLI runs.
	Quick
)

var builders = map[string]func(Scale) (comm.Workload, error){
	"shwfs": func(sc Scale) (comm.Workload, error) {
		p := shwfs.DefaultWorkloadParams()
		if sc == Quick {
			p.Config = shwfs.Config{SubapsX: 8, SubapsY: 8, SubapPx: 8, Threshold: 10}
			p.Launches = 2
			p.PerPixelOps = 50
			p.ReduceSteps = 4
		}
		return shwfs.Workload(p)
	},
	"orbslam": func(sc Scale) (comm.Workload, error) {
		p := orbslam.DefaultWorkloadParams()
		if sc == Quick {
			p.FrameW, p.FrameH = 160, 120
			p.Frontend.Levels = 3
			p.Frontend.MaxPerLevel = 32
			p.PerPixelOps = 16
			p.DescLoads = 8
			p.DescOps = 20
			p.MatchComparisons = 5000
		}
		return orbslam.Workload(p)
	},
	"lanedet": func(sc Scale) (comm.Workload, error) {
		p := lanedet.DefaultWorkloadParams()
		if sc == Quick {
			p.FrameW, p.FrameH = 96, 64
			p.SobelOps = 6
			p.VoteOps = 2
			p.TrackOps = 2
		}
		return lanedet.Workload(p)
	},
}

// Names lists the catalogued application names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName builds the named application's workload at the given scale.
func ByName(name string, sc Scale) (comm.Workload, error) {
	b, ok := builders[name]
	if !ok {
		return comm.Workload{}, fmt.Errorf("catalog: unknown application %q (have %v)", name, Names())
	}
	return b(sc)
}
