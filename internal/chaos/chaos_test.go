package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/advisord/client"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/microbench"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// chaosServer boots an advisord instance tuned for fast failure cycling:
// short breaker cooldown so open periods do not dominate the run.
func chaosServer(t *testing.T, cacheDir string) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	srv := advisord.New(eng, advisord.Options{
		Params:           microbench.TestParams(),
		Scale:            catalog.Quick,
		CacheDir:         cacheDir,
		Logger:           quietLogger(),
		RequestTimeout:   10 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

// activateSchedule installs a schedule's plan for the duration of the test.
func activateSchedule(t *testing.T, s Schedule) {
	t.Helper()
	if err := faults.Activate(faults.NewPlan(s.Seed, s.Rules...)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		faults.Deactivate()
		faults.ResetInjected()
	})
}

// checkResult asserts the per-response invariant: valid advice (possibly
// degraded, then with a reason) or a typed error, never a half-answer.
func checkResult(t *testing.T, combo advisord.AdviseRequest, res advisord.AdviseResult) {
	t.Helper()
	if res.Error != "" {
		if res.Recommendation != nil {
			t.Errorf("%+v: both error %q and a recommendation", combo, res.Error)
		}
		if res.ErrorKind == "" {
			t.Errorf("%+v: error %q lacks a kind", combo, res.Error)
		}
		return
	}
	if res.Recommendation == nil || res.Recommendation.Suggested == "" || res.Zone == "" {
		t.Errorf("%+v: incomplete advice %+v", combo, res)
		return
	}
	if res.Degraded && res.DegradedReason == "" {
		t.Errorf("%+v: degraded without a reason", combo)
	}
	if !res.Degraded && res.DegradedReason != "" {
		t.Errorf("%+v: reason %q on a non-degraded result", combo, res.DegradedReason)
	}
}

// TestSweepUnderFaultSchedules drives the full 45-combination sweep through
// the retrying client under each fault schedule, asserting that no panic
// escapes (the process and server survive), every response is valid advice
// or a typed error, and the server still answers health checks afterwards.
func TestSweepUnderFaultSchedules(t *testing.T) {
	combos := Combos()
	if len(combos) != 45 {
		t.Fatalf("sweep has %d combos, want 45 (3 devices x 3 apps x 5 models)", len(combos))
	}

	for _, sched := range Schedules() {
		t.Run(sched.Name, func(t *testing.T) {
			activateSchedule(t, sched)
			_, ts := chaosServer(t, "")

			const workers = 6
			var wg sync.WaitGroup
			jobs := make(chan advisord.AdviseRequest)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl := client.New(client.Options{
						BaseURL:     ts.URL,
						MaxAttempts: 3,
						BaseDelay:   2 * time.Millisecond,
						MaxDelay:    20 * time.Millisecond,
						Budget:      2 * time.Second,
						Seed:        sched.Seed + int64(w),
					})
					for combo := range jobs {
						out, err := cl.Advise(context.Background(),
							advisord.AdviseBody{Requests: []advisord.AdviseRequest{combo}})
						if err != nil {
							// The client's failures must themselves be typed:
							// an HTTP-level APIError or an exhausted budget.
							var apiErr *client.APIError
							if !errors.As(err, &apiErr) && !errors.Is(err, client.ErrBudgetExhausted) {
								t.Errorf("%+v: untyped client error %v", combo, err)
							}
							continue
						}
						if len(out.Results) != 1 {
							t.Errorf("%+v: %d results", combo, len(out.Results))
							continue
						}
						checkResult(t, combo, out.Results[0])
					}
				}(w)
			}
			for _, combo := range combos {
				jobs <- combo
			}
			close(jobs)
			wg.Wait()

			// The process survived the schedule; the server must still be
			// healthy and scrapeable.
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("healthz after sweep = %d", resp.StatusCode)
			}
			resp, err = http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("metrics after sweep = %d", resp.StatusCode)
			}
		})
	}
}

// TestCacheNeverServesCorruptEntries populates a cache directory under the
// corrupt-persistence schedule, then warm-starts a fresh engine from it with
// load-path corruption still firing, and asserts that every characterization
// the warm engine serves is byte-identical to a clean engine's — quarantine
// must catch everything the injector mangles.
func TestCacheNeverServesCorruptEntries(t *testing.T) {
	params := microbench.TestParams()

	// Clean baselines, computed with injection off.
	baseline := map[string]string{}
	cleanEng := engine.New(engine.Options{Workers: 4})
	for _, cfg := range devices.All() {
		char, err := cleanEng.Characterize(context.Background(), cfg, params)
		if err != nil {
			t.Fatal(err)
		}
		baseline[cfg.Name] = fmt.Sprintf("%+v", char)
	}

	// Populate the cache dir through the server under persistence faults.
	dir := t.TempDir()
	var sched Schedule
	for _, s := range Schedules() {
		if s.Name == "corrupt-persistence" {
			sched = s
		}
	}
	if sched.Name == "" {
		t.Fatal("corrupt-persistence schedule missing")
	}
	activateSchedule(t, sched)
	_, ts := chaosServer(t, dir)
	cl := client.New(client.Options{BaseURL: ts.URL, MaxAttempts: 3,
		BaseDelay: 2 * time.Millisecond, Budget: 2 * time.Second, Seed: sched.Seed})
	for _, cfg := range devices.All() {
		out, err := cl.Advise(context.Background(), advisord.AdviseBody{
			Requests: []advisord.AdviseRequest{{Device: cfg.Name, App: "shwfs", Current: "sc"}},
		})
		if err == nil && len(out.Results) == 1 {
			checkResult(t, advisord.AdviseRequest{Device: cfg.Name}, out.Results[0])
		}
	}

	// Warm start a fresh engine with load-path corruption still active.
	warm := engine.New(engine.Options{Workers: 4})
	loaded, err := warm.LoadCache(dir)
	if err != nil {
		t.Fatalf("warm start must quarantine, not fail: %v", err)
	}
	quarantined := warm.Stats().CacheCorruptEntries
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if loaded+int(quarantined) != len(entries) {
		t.Errorf("loaded %d + quarantined %d != %d entries on disk",
			loaded, quarantined, len(entries))
	}

	// Injection off: whatever the warm engine now answers — cache hit or
	// recomputation after quarantine — must equal the clean baseline.
	faults.Deactivate()
	for _, cfg := range devices.All() {
		char, err := warm.Characterize(context.Background(), cfg, params)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if got := fmt.Sprintf("%+v", char); got != baseline[cfg.Name] {
			t.Errorf("%s: warm characterization diverges from clean baseline", cfg.Name)
		}
	}
}
