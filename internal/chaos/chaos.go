// Package chaos holds the fault schedules and sweep definition for the
// chaos test suite: the full device x app x current-model advisory sweep
// driven through the retrying client against an advisord instance with the
// fault-injection layer active. The suite asserts the service's resilience
// invariants — no panic escapes, every response is valid advice (possibly
// degraded) or a typed error, and the cache never serves corrupt entries —
// under several deterministic, seeded fault schedules. CI's chaos job runs
// it under the race detector.
package chaos

import (
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/faults"
)

// Schedule is one named, seeded fault schedule a chaos run activates.
type Schedule struct {
	// Name identifies the schedule in test output.
	Name string
	// Seed makes the schedule's probabilistic rules reproducible.
	Seed int64
	// Rules are the fault rules to activate.
	Rules []faults.Rule
}

// Schedules returns the fixed schedules the chaos suite sweeps under.
// Each mixes fault modes across layers: engine errors, injected panics,
// latency spikes, and persistence corruption.
func Schedules() []Schedule {
	return []Schedule{
		{
			Name: "flaky-engine",
			Seed: 101,
			Rules: []faults.Rule{
				{Point: "engine.characterize", Mode: faults.ModeError, Prob: 0.3},
				{Point: "engine.explore", Mode: faults.ModeError, Prob: 0.2},
				{Point: "profile.collect", Mode: faults.ModeError, Prob: 0.2},
			},
		},
		{
			Name: "slow-and-panicky",
			Seed: 202,
			Rules: []faults.Rule{
				{Point: "engine.characterize", Mode: faults.ModePanic, Prob: 0.15},
				{Point: "profile.collect", Mode: faults.ModePanic, Prob: 0.1},
				{Point: "soc.clone", Mode: faults.ModeLatency, Prob: 0.05, Delay: 2 * time.Millisecond},
				{Point: "engine.characterize", Mode: faults.ModeLatency, Prob: 0.2, Delay: 5 * time.Millisecond},
			},
		},
		{
			Name: "corrupt-persistence",
			Seed: 303,
			Rules: []faults.Rule{
				{Point: "engine.cache.load", Mode: faults.ModeCorrupt, Prob: 0.5},
				{Point: "engine.cache.store", Mode: faults.ModeError, Prob: 0.3},
				{Point: "framework.persist.save", Mode: faults.ModeError, Prob: 0.2},
				{Point: "engine.characterize", Mode: faults.ModeError, Prob: 0.2},
			},
		},
	}
}

// Combos returns the full advisory sweep: every catalog device and app
// crossed with every communication model name as the declared current model
// (3 devices x 3 apps x 5 models = 45). The sc-async and hybrid entries are
// deliberate invalid-current probes — the framework only accepts sc/um/zc as
// a current model — so the sweep exercises the typed-error path alongside
// the advice paths.
func Combos() []advisord.AdviseRequest {
	var out []advisord.AdviseRequest
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			for _, m := range comm.AllModels() {
				out = append(out, advisord.AdviseRequest{
					Device: cfg.Name, App: app, Current: m.Name(),
				})
			}
		}
	}
	return out
}
