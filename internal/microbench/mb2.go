package microbench

import (
	"context"
	"fmt"
	"strconv"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
	"igpucomm/internal/units"
)

// mb2ComparableTol is the relative gap below which two model runtimes count
// as "comparable" (the flat zone of Figs 3 and 6).
const mb2ComparableTol = 0.10

// mb2SecondZoneRatio bounds the middle zone: beyond a ZC/SC runtime ratio of
// 3 (a 200% difference, the paper's Fig 3 annotation) ZC is discouraged
// outright.
const mb2SecondZoneRatio = 3.0

// MB2GPUPoint is one density step of the GPU sweep.
type MB2GPUPoint struct {
	Fraction   float64 // memory ops per instruction
	SCKernel   units.Latency
	ZCKernel   units.Latency
	SCDemand   units.BytesPerSecond // LL-L1 demand throughput under SC
	CacheUsage float64              // SCDemand / device peak (eqn 2 form)
}

// MB2CPUPoint is one density step of the CPU sweep.
type MB2CPUPoint struct {
	Fraction   float64
	Cached     units.Latency // CPU routine over cacheable memory
	Uncached   units.Latency // same routine over a pinned (ZC) mapping
	CacheUsage float64       // instruction-normalized eqn 1
}

// MB2Result carries both sweeps and the thresholds extracted from them.
type MB2Result struct {
	Platform   string
	GPU        []MB2GPUPoint
	CPU        []MB2CPUPoint
	Thresholds perfmodel.Thresholds
}

// RunMB2 executes the second micro-benchmark. peak is the device's cached
// GPU LL-L1 peak throughput from RunMB1, used to express the thresholds as
// cache-usage percentages.
func RunMB2(ctx context.Context, s *soc.SoC, p Params, peak units.BytesPerSecond) (MB2Result, error) {
	ctx, span := telemetry.Start(ctx, "mb2", telemetry.String("platform", s.Name()))
	defer span.End()
	var gpu []MB2GPUPoint
	var cpu []MB2CPUPoint
	for _, f := range p.MB2Fractions {
		pt, err := RunMB2GPUPoint(ctx, s, p, f, peak)
		if err != nil {
			return MB2Result{}, err
		}
		gpu = append(gpu, pt)
	}
	for _, f := range p.MB2Fractions {
		pt, err := RunMB2CPUPoint(ctx, s, p, f)
		if err != nil {
			return MB2Result{}, err
		}
		cpu = append(cpu, pt)
	}
	return BuildMB2Result(s.Name(), s.IOCoherent(), gpu, cpu)
}

// RunMB2GPUPoint measures one density step of the GPU sweep. Each point
// resets the platform state, so points measured on separate clones equal
// points measured sequentially on one instance — the execution engine relies
// on this to run the sweep in parallel.
func RunMB2GPUPoint(ctx context.Context, s *soc.SoC, p Params, f float64, peak units.BytesPerSecond) (MB2GPUPoint, error) {
	if peak <= 0 {
		return MB2GPUPoint{}, fmt.Errorf("mb2: need a positive peak throughput from mb1")
	}
	if f <= 0 || f > 1 {
		return MB2GPUPoint{}, fmt.Errorf("mb2: fraction %v out of (0,1]", f)
	}
	_, span := telemetry.Start(ctx, "mb2.gpu.point",
		telemetry.String("fraction", strconv.FormatFloat(f, 'g', -1, 64)))
	defer span.End()
	return mb2GPUPoint(s, p, f, peak)
}

// RunMB2CPUPoint measures one density step of the CPU sweep.
func RunMB2CPUPoint(ctx context.Context, s *soc.SoC, p Params, f float64) (MB2CPUPoint, error) {
	if f <= 0 || f > 1 {
		return MB2CPUPoint{}, fmt.Errorf("mb2: fraction %v out of (0,1]", f)
	}
	_, span := telemetry.Start(ctx, "mb2.cpu.point",
		telemetry.String("fraction", strconv.FormatFloat(f, 'g', -1, 64)))
	defer span.End()
	return mb2CPUPoint(s, p, f), nil
}

// BuildMB2Result assembles sweep points (in sweep order) into an MB2Result,
// extracting and validating the thresholds. ioCoherent is the platform's
// coherence capability (it decides whether a CPU knee exists at all).
func BuildMB2Result(platform string, ioCoherent bool, gpu []MB2GPUPoint, cpu []MB2CPUPoint) (MB2Result, error) {
	res := MB2Result{Platform: platform, GPU: gpu, CPU: cpu}
	res.Thresholds = extractThresholds(ioCoherent, res)
	if err := res.Thresholds.Validate(); err != nil {
		return MB2Result{}, fmt.Errorf("mb2: %w", err)
	}
	return res, nil
}

// mb2GPUWorkload: each thread runs a fixed op budget; a fraction f of the
// budget is ld.global/st.global pairs over a fixed 1 MiB array (linear,
// coalesced), the rest is fma.rn on locally computed values.
func mb2GPUWorkload(p Params, f float64) comm.Workload {
	const arrayBytes = 1 * units.MiB
	events := int(f * float64(p.MB2OpsPerThread) / 2)
	if events < 1 {
		events = 1
	}
	fmas := p.MB2OpsPerThread - 2*events
	if fmas < 0 {
		fmas = 0
	}
	return comm.Workload{
		Name: fmt.Sprintf("mb2-f%g", f),
		In:   []comm.BufferSpec{{Name: "array", Size: arrayBytes}},
		Out:  []comm.BufferSpec{{Name: "sink", Size: 4096}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			c.Work(isa.FMA, 1) // negligible; MB2's subject is the kernel
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			array := lay.Addr("array")
			elems := int64(arrayBytes / 4)
			threads := p.MB2Threads
			perEvent := fmas / events
			extra := fmas - perEvent*events
			return gpu.Kernel{
				Name:    "mb2-sweep",
				Threads: threads,
				Program: func(tid int, prog *isa.Program) {
					for k := 0; k < events; k++ {
						idx := (int64(tid) + int64(k)*int64(threads)) % elems
						prog.Ld(array+idx*4, 4)
						prog.St(array+idx*4, 4)
						prog.Compute(isa.FMA, perEvent)
					}
					prog.Compute(isa.FMA, extra)
				},
			}
		},
		Warmup: p.Warmup,
	}
}

func mb2GPUPoint(s *soc.SoC, p Params, f float64, peak units.BytesPerSecond) (MB2GPUPoint, error) {
	w := mb2GPUWorkload(p, f)
	sc, err := comm.SC{}.Run(s, w)
	if err != nil {
		return MB2GPUPoint{}, fmt.Errorf("mb2 f=%g under sc: %w", f, err)
	}
	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		return MB2GPUPoint{}, fmt.Errorf("mb2 f=%g under zc: %w", f, err)
	}
	pt := MB2GPUPoint{
		Fraction: f,
		SCKernel: sc.KernelTime,
		ZCKernel: zc.KernelTime,
	}
	if sc.KernelTime > 0 {
		demand := float64(sc.GPU.TransactionBytes) * (1 - sc.GPU.L1.HitRate())
		pt.SCDemand = units.BytesPerSecond(demand / sc.KernelTime.Seconds())
		pt.CacheUsage = float64(pt.SCDemand) / float64(peak)
	}
	return pt, nil
}

// mb2CPUPoint measures the CPU routine at density f over a 256 KiB working
// set (LLC-resident, L1-thrashing) on the cacheable path and on the pinned
// path, and evaluates the instruction-normalized cache usage.
func mb2CPUPoint(s *soc.SoC, p Params, f float64) MB2CPUPoint {
	const wsBytes = 256 * units.KiB

	run := func(pinned bool) (units.Latency, int64, float64, int64) {
		s.ResetState()
		var base int64
		if pinned {
			b, err := s.AllocPinned("mb2cpu", wsBytes)
			if err != nil {
				panic(err) // sizes are static; failure is a bug
			}
			base = b.Addr
		} else {
			b, err := s.AllocHost("mb2cpu", wsBytes)
			if err != nil {
				panic(err)
			}
			base = b.Addr
		}
		defer func() { _ = s.Free("mb2cpu") }()

		c := s.CPU
		events := int(f * float64(p.MB2CPUInstrs) / 2)
		if events < 1 {
			events = 1
		}
		fill := (p.MB2CPUInstrs - 2*events) / events
		loop := func() {
			for k := 0; k < events; k++ {
				addr := base + int64(k)*64%wsBytes
				c.Load(addr, 4)
				c.Store(addr, 4)
				c.Work(isa.FMA, fill)
			}
		}
		loop() // warmup
		l1Before := c.L1().Stats()
		llcBefore := c.LLC().Stats()
		instrBefore := c.Instructions()
		start := c.Elapsed()
		loop()
		elapsed := c.Elapsed() - start
		l1 := c.L1().Stats()
		llc := c.LLC().Stats()
		misses := l1.Misses() - l1Before.Misses()
		llcMiss := 0.0
		if d := llc.Accesses() - llcBefore.Accesses(); d > 0 {
			llcMiss = float64(llc.Misses()-llcBefore.Misses()) / float64(d)
		}
		return elapsed, misses, llcMiss, c.Instructions() - instrBefore
	}

	cached, misses, llcMiss, instrs := run(false)
	uncached, _, _, _ := run(true)
	return MB2CPUPoint{
		Fraction:   f,
		Cached:     cached,
		Uncached:   uncached,
		CacheUsage: perfmodel.CPUCacheUsagePerInstr(misses, llcMiss, instrs),
	}
}

// extractThresholds locates the knees of both sweeps.
func extractThresholds(ioCoherent bool, res MB2Result) perfmodel.Thresholds {
	th := perfmodel.Thresholds{CPUCache: 1.0} // "never" unless a knee exists

	// GPU: the low threshold is the last density where ZC stays comparable
	// to SC; the high threshold is the last density where the gap stays
	// under the second-zone ratio.
	lowSet := false
	for _, pt := range res.GPU {
		if pt.SCKernel <= 0 {
			continue
		}
		ratio := float64(pt.ZCKernel) / float64(pt.SCKernel)
		if ratio <= 1+mb2ComparableTol {
			th.GPUCacheLow = pt.CacheUsage
			lowSet = true
		}
		if ratio <= mb2SecondZoneRatio {
			th.GPUCacheHigh = pt.CacheUsage
		}
	}
	if !lowSet && len(res.GPU) > 0 {
		th.GPUCacheLow = res.GPU[0].CacheUsage
	}
	if th.GPUCacheHigh < th.GPUCacheLow {
		th.GPUCacheHigh = th.GPUCacheLow
	}

	// CPU: on I/O-coherent platforms the CPU keeps its caches under ZC, so
	// there is no knee (threshold 100%). Otherwise the threshold is the
	// usage at the last comparable density.
	if !ioCoherent {
		found := false
		for _, pt := range res.CPU {
			if pt.Cached <= 0 {
				continue
			}
			ratio := float64(pt.Uncached) / float64(pt.Cached)
			if ratio <= 1+mb2ComparableTol {
				th.CPUCache = pt.CacheUsage
				found = true
			}
		}
		if !found && len(res.CPU) > 0 {
			th.CPUCache = res.CPU[0].CacheUsage
		}
	}
	return th
}
