package microbench

import (
	"context"
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
	"igpucomm/internal/units"
)

// MB3Result reports the third micro-benchmark: a balanced, cache-independent
// CPU+GPU workload run under all three models, with ZC using the fully
// overlapped §III-C pattern. Its headline number is SC/ZC_Max_speedup — the
// most an application can gain on this device by moving from SC to ZC.
type MB3Result struct {
	Platform string
	Floats   int64

	SCTotal units.Latency
	UMTotal units.Latency
	ZCTotal units.Latency

	// Component times of the ZC run (the overlapped pair).
	ZCCPUTime    units.Latency
	ZCKernelTime units.Latency
}

// SCZCMaxSpeedup is the SC-to-ZC runtime ratio (>= values mean ZC wins).
func (r MB3Result) SCZCMaxSpeedup() float64 {
	if r.ZCTotal <= 0 {
		return 1
	}
	return float64(r.SCTotal) / float64(r.ZCTotal)
}

// UMZCSpeedup is the UM-to-ZC runtime ratio.
func (r MB3Result) UMZCSpeedup() float64 {
	if r.ZCTotal <= 0 {
		return 1
	}
	return float64(r.UMTotal) / float64(r.ZCTotal)
}

// mb3Workload: the GPU kernel touches each element exactly once with
// deliberately sparse, non-reusable accesses (maximum miss rate, so GPU
// cache state is irrelevant — selectivity); the CPU performs a comparable
// amount of independent work; the two are overlappable.
func mb3Workload(p Params) comm.Workload {
	n := p.MB3Floats
	size := n * 4
	const lineElems = 16
	return comm.Workload{
		Name: "mb3",
		In:   []comm.BufferSpec{{Name: "data", Size: size}},
		Out:  []comm.BufferSpec{{Name: "result", Size: size}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			// One strided pass over the data with a modest FP chain per
			// touched line — sized to roughly balance the GPU kernel so
			// the pair can fully overlap ("balanced CPU+iGPU computation").
			base := lay.Addr("data")
			lines := n / lineElems
			for i := int64(0); i < lines; i += 32 {
				c.Load(base+i*64, 4)
				c.Work(isa.FMA, 20)
				c.Store(base+i*64, 4)
			}
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			dst := lay.Addr("result")
			src := lay.Addr("data")
			return gpu.Kernel{
				Name:    "mb3-stream",
				Threads: int(n),
				Program: func(tid int, prog *isa.Program) {
					// Single coalesced read and write per element, each
					// line visited exactly once across the whole grid:
					// maximum miss rate, zero cache dependence.
					off := int64(tid) * 4
					prog.Ld(src+off, 4)
					prog.Compute(isa.FMA, 4)
					prog.St(dst+off, 4)
				},
			}
		},
		Overlappable: true,
		Warmup:       0, // nothing to warm: the point is maximum miss rate
	}
}

// RunMB3 executes the third micro-benchmark.
func RunMB3(ctx context.Context, s *soc.SoC, p Params) (MB3Result, error) {
	if p.MB3Floats < 1024 {
		return MB3Result{}, fmt.Errorf("mb3: data set %d too small to be meaningful", p.MB3Floats)
	}
	_, span := telemetry.Start(ctx, "mb3", telemetry.String("platform", s.Name()))
	defer span.End()
	w := mb3Workload(p)
	res := MB3Result{Platform: s.Name(), Floats: p.MB3Floats}

	sc, err := comm.SC{}.Run(s, w)
	if err != nil {
		return MB3Result{}, fmt.Errorf("mb3 under sc: %w", err)
	}
	res.SCTotal = sc.Total

	um, err := comm.UM{}.Run(s, w)
	if err != nil {
		return MB3Result{}, fmt.Errorf("mb3 under um: %w", err)
	}
	res.UMTotal = um.Total

	zc, err := comm.ZC{}.Run(s, w)
	if err != nil {
		return MB3Result{}, fmt.Errorf("mb3 under zc: %w", err)
	}
	res.ZCTotal = zc.Total
	res.ZCCPUTime = zc.CPUTime
	res.ZCKernelTime = zc.KernelTime
	return res, nil
}

// MB3WorkloadForAblation exposes the third micro-benchmark's workload so
// ablation benchmarks can toggle its overlap flag.
func MB3WorkloadForAblation(p Params) comm.Workload { return mb3Workload(p) }
