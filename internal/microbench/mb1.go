package microbench

import (
	"context"
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
	"igpucomm/internal/units"
)

// MB1Row is one communication model's measurement in the first
// micro-benchmark.
type MB1Row struct {
	Model      string
	CPUTime    units.Latency
	KernelTime units.Latency
	// Throughput is the GPU LL-L1 requested-byte throughput — the paper's
	// Table I quantity.
	Throughput units.BytesPerSecond
	// Overlapped ZC total (side-by-side bars in Fig 5).
	Total units.Latency
}

// MB1Result characterizes the device's cache paths under each model.
type MB1Result struct {
	Platform string
	Rows     []MB1Row
}

// Row returns the measurement for a model name.
func (r MB1Result) Row(model string) (MB1Row, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return MB1Row{}, false
}

// PeakThroughput is the cached-path peak (the SC row): the
// GPU_Cache_LL_L1^max_throughput of eqn 2.
func (r MB1Result) PeakThroughput() units.BytesPerSecond {
	row, _ := r.Row("sc")
	return row.Throughput
}

// PinnedThroughput is the ZC row's throughput.
func (r MB1Result) PinnedThroughput() units.BytesPerSecond {
	row, _ := r.Row("zc")
	return row.Throughput
}

// ZCSCMaxSpeedup is the cached/pinned throughput ratio: the upper bound on
// what a cache-dependent application can gain by leaving zero-copy
// (ZC/SC_Max_speedup; 77x on TX2, 3.7-7x on Xavier in the paper).
func (r MB1Result) ZCSCMaxSpeedup() float64 {
	pinned := r.PinnedThroughput()
	if pinned <= 0 {
		return 1
	}
	ratio := float64(r.PeakThroughput()) / float64(pinned)
	if ratio < 1 {
		return 1
	}
	return ratio
}

// RunMB1 executes the first micro-benchmark on the platform.
func RunMB1(ctx context.Context, s *soc.SoC, p Params) (MB1Result, error) {
	ctx, span := telemetry.Start(ctx, "mb1", telemetry.String("platform", s.Name()))
	defer span.End()
	res := MB1Result{Platform: s.Name()}
	for _, m := range comm.Models() {
		row, err := RunMB1Model(ctx, s, p, m)
		if err != nil {
			return MB1Result{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunMB1Model runs the first micro-benchmark under a single communication
// model and returns its row. Every model run resets the platform state at
// entry and frees its buffers on exit, so rows measured on separate clones of
// the same configuration are identical to rows measured back-to-back on one
// instance — which is what lets the execution engine fan the models out
// across workers.
func RunMB1Model(ctx context.Context, s *soc.SoC, p Params, m comm.Model) (MB1Row, error) {
	_, span := telemetry.Start(ctx, "mb1.model", telemetry.String("model", m.Name()))
	defer span.End()
	rep, err := m.Run(s, mb1Workload(p))
	if err != nil {
		return MB1Row{}, fmt.Errorf("mb1 under %s: %w", m.Name(), err)
	}
	row := MB1Row{
		Model:      m.Name(),
		CPUTime:    rep.CPUTime,
		KernelTime: rep.KernelTime,
		Total:      rep.Total,
	}
	if rep.KernelTime > 0 {
		row.Throughput = units.BytesPerSecond(
			float64(rep.GPU.BytesRequested) / rep.KernelTime.Seconds())
	}
	return row, nil
}
