// Package microbench implements the paper's three device-characterization
// micro-benchmarks (§III-B). They satisfy the four stated properties:
//
//   - Stressing capability: workloads run to cache steady state (warmup
//     iterations) and are large enough to saturate the component under test.
//   - Workload variability: MB2 sweeps memory-access density over three
//     orders of magnitude.
//   - Selectivity: MB1 isolates the GPU LL-L1 cache; the CPU side of MB1 and
//     the CPU sweep of MB2 isolate the CPU cache path; MB3 is built to be
//     cache-independent (maximum miss rate) so only the communication and
//     overlap machinery matters.
//   - Portability: everything is expressed against the abstract SoC model,
//     parameterized purely by the device catalog.
//
// Outputs:
//
//	MB1 -> peak GPU LL-L1 throughput per communication model (Table I,
//	       Fig 5) and ZC/SC_Max_speedup (the cached/pinned ratio).
//	MB2 -> GPU and CPU cache thresholds (Figs 3 and 6).
//	MB3 -> SC/ZC_Max_speedup from a fully-overlapped balanced workload
//	       (Fig 7).
package microbench

import (
	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/units"
)

// Params tunes the micro-benchmark workload sizes. Defaults reproduce the
// paper's characterization at simulation-friendly scale; tests shrink them.
type Params struct {
	// MB1MatrixBytes is the matrix the first micro-benchmark reduces; it
	// should fit the GPU LLC so the cached models measure cache throughput.
	MB1MatrixBytes int64
	// MB1Passes is how many reduction passes run per kernel (reuse factor).
	MB1Passes int
	// MB1CPUOps is the iteration count of the CPU single-address FP loop.
	MB1CPUOps int
	// MB2Threads is the GPU thread count per sweep point.
	MB2Threads int
	// MB2OpsPerThread is the fixed per-thread instruction budget.
	MB2OpsPerThread int
	// MB2Fractions is the sweep of memory-ops-per-instruction densities.
	MB2Fractions []float64
	// MB2CPUInstrs is the CPU-side sweep's instruction budget.
	MB2CPUInstrs int
	// MB3Floats is the element count of the third benchmark's data set
	// (the paper uses 2^27; the default scales down, same behaviour).
	MB3Floats int64
	// Warmup iterations before measurement.
	Warmup int
}

// DefaultParams returns the standard characterization scale.
func DefaultParams() Params {
	return Params{
		MB1MatrixBytes:  192 * units.KiB,
		MB1Passes:       8,
		MB1CPUOps:       4096,
		MB2Threads:      2048,
		MB2OpsPerThread: 2048,
		MB2Fractions: []float64{
			1.0 / 16384, 1.0 / 8192, 1.0 / 4096, 1.0 / 2048, 1.0 / 1024,
			1.0 / 512, 1.0 / 256, 1.0 / 128, 1.0 / 64, 1.5 / 64,
			1.0 / 32, 1.5 / 32, 1.0 / 16, 1.5 / 16, 1.0 / 8, 1.5 / 8,
			1.0 / 4, 1.5 / 4, 1.0 / 2,
		},
		MB2CPUInstrs: 1 << 15,
		MB3Floats:    1 << 22,
		Warmup:       1,
	}
}

// TestParams returns a reduced scale for fast unit tests.
func TestParams() Params {
	p := DefaultParams()
	p.MB1MatrixBytes = 32 * units.KiB
	p.MB1Passes = 4
	p.MB1CPUOps = 512
	p.MB2Threads = 512
	p.MB2OpsPerThread = 512
	p.MB2Fractions = []float64{1.0 / 1024, 1.0 / 128, 1.0 / 32, 1.0 / 8, 1.0 / 2}
	p.MB2CPUInstrs = 1 << 12
	p.MB3Floats = 1 << 15
	return p
}

// mb1Workload builds the first micro-benchmark: a matrix elaborated by both
// sides. The CPU performs a chain of sqrt/div/mul on a single address of the
// shared matrix; the GPU performs a linear 2D reduction (ld.global,
// add.s32, st.global) over it, several passes, so the cached models serve it
// from the LL-L1 caches at steady state.
func mb1Workload(p Params) comm.Workload {
	n := p.MB1MatrixBytes / 4 // float32 elements
	return comm.Workload{
		Name: "mb1",
		In:   []comm.BufferSpec{{Name: "matrix", Size: p.MB1MatrixBytes}},
		Out:  []comm.BufferSpec{{Name: "sums", Size: maxInt64(p.MB1MatrixBytes/16, 64)}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			// A chain of square roots, divisions and multiplications over
			// one address of the shared matrix (§III-B). The chain length
			// keeps the routine compute-leaning, so disabling the CPU
			// cache under ZC degrades it noticeably but not absurdly —
			// Fig 5's TX2 shape.
			addr := lay.Addr("matrix")
			for i := 0; i < p.MB1CPUOps; i++ {
				c.Load(addr, 4)
				c.Work(isa.SqrtF32, 16)
				c.Work(isa.DivF32, 16)
				c.Work(isa.MulF32, 16)
				c.Store(addr, 4)
			}
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			matrix := lay.Addr("matrix")
			sums := lay.Addr("sums")
			// 2D reduction with linear (coalesced) accesses: on pass p,
			// thread tid loads elements tid, tid+T, tid+2T, ... with a
			// per-pass rotation so every SM's warps sweep the whole
			// matrix. The matrix fits the GPU LLC but not one SM's L1, so
			// at steady state the LL-L1 cache serves the traffic — the
			// component this benchmark is selective for.
			threads := int(n / 16)
			return gpu.Kernel{
				Name:    "mb1-reduce2d",
				Threads: threads,
				Program: func(tid int, prog *isa.Program) {
					// Pass p re-reads rows 0..15 (element (e*T + tid) of
					// the matrix, perfectly coalesced). A pass's working
					// set exceeds the SM L1 shared by the resident warps,
					// so at steady state the GPU LLC serves the re-reads:
					// the benchmark measures LL-L1 cache bandwidth.
					for pass := 0; pass < p.MB1Passes; pass++ {
						for e := int64(0); e < 16; e++ {
							idx := (e*int64(threads) + int64(tid)) * 4 % (n * 4)
							prog.Ld(matrix+idx, 4)
							prog.Compute(isa.AddS32, 1)
						}
						prog.St(sums+int64(tid)*4, 4)
					}
				},
			}
		},
		Warmup: p.Warmup,
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
