package microbench

import (
	"context"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

func TestMB1RowsAndAccessors(t *testing.T) {
	s := soc.New(devices.TX2())
	res, err := RunMB1(context.Background(), s, TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Platform != devices.TX2Name {
		t.Errorf("platform = %q", res.Platform)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want one per model", len(res.Rows))
	}
	for _, model := range []string{"sc", "um", "zc"} {
		row, ok := res.Row(model)
		if !ok {
			t.Fatalf("missing row %q", model)
		}
		if row.CPUTime <= 0 || row.KernelTime <= 0 || row.Throughput <= 0 {
			t.Errorf("%s: incomplete row %+v", model, row)
		}
	}
	if _, ok := res.Row("dma"); ok {
		t.Error("unknown model row found")
	}
}

func TestMB1ZeroCopyStarvesCache(t *testing.T) {
	for _, name := range []string{devices.TX2Name, devices.XavierName} {
		s, err := devices.NewSoC(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMB1(context.Background(), s, TestParams())
		if err != nil {
			t.Fatal(err)
		}
		if res.PinnedThroughput() >= res.PeakThroughput() {
			t.Errorf("%s: pinned throughput %.1f not below cached %.1f",
				name, res.PinnedThroughput().GB(), res.PeakThroughput().GB())
		}
		if res.ZCSCMaxSpeedup() <= 1 {
			t.Errorf("%s: ZC/SC max speedup = %v, want > 1", name, res.ZCSCMaxSpeedup())
		}
	}
}

func TestMB1Table1Shape(t *testing.T) {
	// The calibrated full-scale run must land on the paper's Table I shape:
	// TX2 cached/pinned gap enormously larger than Xavier's.
	if testing.Short() {
		t.Skip("full-scale characterization")
	}
	p := DefaultParams()
	tx2, err := RunMB1(context.Background(), soc.New(devices.TX2()), p)
	if err != nil {
		t.Fatal(err)
	}
	xavier, err := RunMB1(context.Background(), soc.New(devices.Xavier()), p)
	if err != nil {
		t.Fatal(err)
	}
	if g := tx2.ZCSCMaxSpeedup(); g < 50 || g > 100 {
		t.Errorf("TX2 gap = %.1fx, want ~77x", g)
	}
	if g := xavier.ZCSCMaxSpeedup(); g < 4 || g > 10 {
		t.Errorf("Xavier gap = %.1fx, want ~7x", g)
	}
	if thr := tx2.PeakThroughput().GB(); thr < 80 || thr > 115 {
		t.Errorf("TX2 peak = %.1f GB/s, want ~97", thr)
	}
	if thr := xavier.PeakThroughput().GB(); thr < 190 || thr > 240 {
		t.Errorf("Xavier peak = %.1f GB/s, want ~215", thr)
	}
	if thr := tx2.PinnedThroughput().GB(); thr < 1.0 || thr > 1.6 {
		t.Errorf("TX2 pinned = %.2f GB/s, want ~1.28", thr)
	}
	if thr := xavier.PinnedThroughput().GB(); thr < 28 || thr > 36 {
		t.Errorf("Xavier pinned = %.1f GB/s, want ~32.3", thr)
	}
}

func TestMB1Fig5CPUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale characterization")
	}
	p := DefaultParams()
	tx2, err := RunMB1(context.Background(), soc.New(devices.TX2()), p)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := tx2.Row("sc")
	zc, _ := tx2.Row("zc")
	penalty := float64(zc.CPUTime) / float64(sc.CPUTime)
	// TX2 disables CPU caching of pinned buffers: the CPU routine slows
	// noticeably (the paper reports up to ~70%).
	if penalty < 1.3 || penalty > 2.5 {
		t.Errorf("TX2 ZC CPU penalty = %.2fx, want ~1.7x", penalty)
	}
	xavier, err := RunMB1(context.Background(), soc.New(devices.Xavier()), p)
	if err != nil {
		t.Fatal(err)
	}
	scx, _ := xavier.Row("sc")
	zcx, _ := xavier.Row("zc")
	penaltyX := float64(zcx.CPUTime) / float64(scx.CPUTime)
	// Xavier's I/O coherence keeps the CPU cache on: no CPU penalty.
	if penaltyX > 1.05 {
		t.Errorf("Xavier ZC CPU penalty = %.2fx, want ~1.0x", penaltyX)
	}
}

func TestMB2ThresholdsStructure(t *testing.T) {
	s := soc.New(devices.TX2())
	p := TestParams()
	mb1, err := RunMB1(context.Background(), s, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMB2(context.Background(), s, p, mb1.PeakThroughput())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GPU) != len(p.MB2Fractions) || len(res.CPU) != len(p.MB2Fractions) {
		t.Fatalf("sweep lengths %d/%d, want %d", len(res.GPU), len(res.CPU), len(p.MB2Fractions))
	}
	if err := res.Thresholds.Validate(); err != nil {
		t.Fatal(err)
	}
	// TX2 is not I/O coherent: its CPU threshold must exist (below 100%).
	if res.Thresholds.CPUCache >= 1.0 {
		t.Error("TX2 CPU threshold should be below 100%")
	}
	for _, pt := range res.GPU {
		if pt.SCKernel <= 0 || pt.ZCKernel <= 0 {
			t.Errorf("f=%v: missing kernel times", pt.Fraction)
		}
		if pt.ZCKernel < pt.SCKernel {
			t.Errorf("f=%v: ZC kernel %v faster than SC %v on TX2", pt.Fraction, pt.ZCKernel, pt.SCKernel)
		}
	}
}

func TestMB2XavierHasWiderZCZone(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale characterization")
	}
	p := DefaultParams()
	thresholds := make(map[string]float64)
	zones := make(map[string]float64)
	for _, name := range []string{devices.TX2Name, devices.XavierName} {
		s, err := devices.NewSoC(name)
		if err != nil {
			t.Fatal(err)
		}
		mb1, err := RunMB1(context.Background(), s, p)
		if err != nil {
			t.Fatal(err)
		}
		mb2, err := RunMB2(context.Background(), s, p, mb1.PeakThroughput())
		if err != nil {
			t.Fatal(err)
		}
		thresholds[name] = mb2.Thresholds.GPUCacheLow
		zones[name] = mb2.Thresholds.GPUCacheHigh
	}
	// The I/O-coherent device tolerates much higher GPU cache usage under
	// ZC (paper: 16.2% vs 2.7%).
	if thresholds[devices.XavierName] <= 2*thresholds[devices.TX2Name] {
		t.Errorf("Xavier threshold %.3f not clearly above TX2 %.3f",
			thresholds[devices.XavierName], thresholds[devices.TX2Name])
	}
	if zones[devices.XavierName] <= thresholds[devices.XavierName] {
		t.Error("Xavier should have a usable middle zone")
	}
}

func TestMB2XavierCPUThresholdIs100(t *testing.T) {
	s := soc.New(devices.Xavier())
	p := TestParams()
	mb1, err := RunMB1(context.Background(), s, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMB2(context.Background(), s, p, mb1.PeakThroughput())
	if err != nil {
		t.Fatal(err)
	}
	if res.Thresholds.CPUCache != 1.0 {
		t.Errorf("Xavier CPU threshold = %v, want 1.0 (CPU cache never disabled)", res.Thresholds.CPUCache)
	}
	for _, pt := range res.CPU {
		if pt.Cached != pt.Uncached {
			t.Errorf("f=%v: Xavier CPU times differ under ZC (%v vs %v)", pt.Fraction, pt.Cached, pt.Uncached)
		}
	}
}

func TestMB2RejectsBadInputs(t *testing.T) {
	s := soc.New(devices.TX2())
	p := TestParams()
	if _, err := RunMB2(context.Background(), s, p, 0); err == nil {
		t.Error("zero peak accepted")
	}
	p.MB2Fractions = []float64{0}
	if _, err := RunMB2(context.Background(), s, p, units.GBps); err == nil {
		t.Error("zero fraction accepted")
	}
	p.MB2Fractions = []float64{1.5}
	if _, err := RunMB2(context.Background(), s, p, units.GBps); err == nil {
		t.Error("fraction above 1 accepted")
	}
}

func TestMB3BalancedAndOverlapped(t *testing.T) {
	s := soc.New(devices.Xavier())
	res, err := RunMB3(context.Background(), s, TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.SCTotal <= 0 || res.UMTotal <= 0 || res.ZCTotal <= 0 {
		t.Fatal("missing totals")
	}
	if res.ZCCPUTime <= 0 || res.ZCKernelTime <= 0 {
		t.Fatal("missing ZC component times")
	}
}

func TestMB3XavierZCWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale characterization")
	}
	res, err := RunMB3(context.Background(), soc.New(devices.Xavier()), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 7: ZC up to 152% faster than SC, 164% than UM.
	if sp := res.SCZCMaxSpeedup(); sp < 1.8 || sp > 3.5 {
		t.Errorf("Xavier SC/ZC = %.2fx, want ~2.5x", sp)
	}
	if sp := res.UMZCSpeedup(); sp < 1.8 || sp > 5.0 {
		t.Errorf("Xavier UM/ZC = %.2fx, want ~2.6x", sp)
	}
}

func TestMB3TX2ZCLosesOnUncachedPath(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale characterization")
	}
	res, err := RunMB3(context.Background(), soc.New(devices.TX2()), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// On TX2 the pinned path throttles the streaming kernel: the device's
	// SC->ZC maximum gain is below 1 (nothing to gain).
	if sp := res.SCZCMaxSpeedup(); sp >= 1 {
		t.Errorf("TX2 SC/ZC = %.2fx, expected ZC to lose on the uncached path", sp)
	}
}

func TestMB3RejectsTinyDataset(t *testing.T) {
	p := TestParams()
	p.MB3Floats = 16
	if _, err := RunMB3(context.Background(), soc.New(devices.TX2()), p); err == nil {
		t.Error("tiny dataset accepted")
	}
}

func TestDegenerateSpeedupAccessors(t *testing.T) {
	if (MB1Result{}).ZCSCMaxSpeedup() != 1 {
		t.Error("empty MB1 speedup should be 1")
	}
	low := MB1Result{Rows: []MB1Row{
		{Model: "sc", Throughput: units.GBps},
		{Model: "zc", Throughput: 2 * units.GBps},
	}}
	if low.ZCSCMaxSpeedup() != 1 {
		t.Error("pinned faster than cached should clamp to 1")
	}
	if (MB3Result{}).SCZCMaxSpeedup() != 1 || (MB3Result{}).UMZCSpeedup() != 1 {
		t.Error("empty MB3 ratios should be 1")
	}
	if maxInt64(3, 7) != 7 || maxInt64(7, 3) != 7 {
		t.Error("maxInt64 wrong")
	}
	w := MB3WorkloadForAblation(TestParams())
	if err := w.Validate(); err != nil {
		t.Error(err)
	}
}
