package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
)

// fakeClock is a manually advanced clock for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestCacheKeyStability(t *testing.T) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	p := microbench.TestParams()

	k1, err := CacheKey(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("same inputs hashed apart: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}

	// Any physical difference must change the key, even under the same name.
	retuned := cfg
	retuned.GPU.LLCBandwidth *= 2
	k3, err := CacheKey(retuned, p)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("retuned config hashed to the same key")
	}

	// Different micro-benchmark scales must also hash apart.
	k4, err := CacheKey(cfg, microbench.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Error("different params hashed to the same key")
	}
}

func TestMemoHitMissCounters(t *testing.T) {
	m := newMemo[int](4, 0, time.Now)
	var calls atomic.Int32
	get := func(key string, v int) (int, error) {
		return m.do(context.Background(), key, func() (int, error) {
			calls.Add(1)
			return v, nil
		})
	}

	if v, err := get("a", 1); err != nil || v != 1 {
		t.Fatalf("cold get = %d, %v", v, err)
	}
	if v, err := get("a", 99); err != nil || v != 1 {
		t.Fatalf("warm get = %d, %v (must serve cached 1)", v, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	st := m.snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Executions != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 execution / 1 entry", st)
	}
}

func TestMemoErrorsAreNotCached(t *testing.T) {
	m := newMemo[int](4, 0, time.Now)
	boom := errors.New("boom")
	fail := true
	get := func() (int, error) {
		return m.do(context.Background(), "k", func() (int, error) {
			if fail {
				return 0, boom
			}
			return 7, nil
		})
	}
	if _, err := get(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fail = false
	if v, err := get(); err != nil || v != 7 {
		t.Fatalf("retry = %d, %v, want 7 (failure must not be cached)", v, err)
	}
	if st := m.snapshot(); st.Executions != 2 {
		t.Errorf("executions = %d, want 2", st.Executions)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := newMemo[int](2, 0, time.Now)
	m.put("a", 1)
	m.put("b", 2)
	// Touch a so b is the least recently used.
	if _, err := m.do(context.Background(), "a", func() (int, error) { return 0, errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	m.put("c", 3)
	if _, ok := func() (int, bool) { m.lock(); defer m.unlock(); return m.lookupLocked("b") }(); ok {
		t.Error("b survived eviction; LRU should have dropped it")
	}
	if st := m.snapshot(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestMemoTTLExpiry(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := newMemo[int](4, time.Minute, clock.now)
	m.put("a", 1)

	clock.advance(59 * time.Second)
	if v, err := m.do(context.Background(), "a", func() (int, error) { return 0, errors.New("must not run") }); err != nil || v != 1 {
		t.Fatalf("pre-TTL get = %d, %v, want cached 1", v, err)
	}

	clock.advance(2 * time.Second) // now 61s past insertion
	ran := false
	if v, err := m.do(context.Background(), "a", func() (int, error) { ran = true; return 2, nil }); err != nil || v != 2 {
		t.Fatalf("post-TTL get = %d, %v, want recomputed 2", v, err)
	}
	if !ran {
		t.Error("expired entry served from cache")
	}
	if st := m.snapshot(); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}

	// dump must exclude expired entries.
	clock.advance(2 * time.Minute)
	if d := m.dump(); len(d) != 0 {
		t.Errorf("dump after expiry = %v, want empty", d)
	}
}

func TestEngineCharacterizeCaches(t *testing.T) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	p := microbench.TestParams()

	c1, err := e.Characterize(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.Characterize(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", c1) != fmt.Sprintf("%+v", c2) {
		t.Error("cached characterization differs from the computed one")
	}
	st := e.Stats()
	if st.Characterizations.Executions != 1 {
		t.Errorf("executions = %d, want 1", st.Characterizations.Executions)
	}
	if st.Characterizations.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Characterizations.Hits)
	}
}

func TestEnginePersistRoundTrip(t *testing.T) {
	cfg, err := devices.ByName(devices.NanoName)
	if err != nil {
		t.Fatal(err)
	}
	p := microbench.TestParams()
	e := New(Options{Workers: 2})
	want, err := e.Characterize(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	n, err := e.SaveCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("saved %d entries, want 1", n)
	}

	e2 := New(Options{Workers: 2})
	n, err = e2.LoadCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d entries, want 1", n)
	}
	got, err := e2.Characterize(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Error("round-tripped characterization differs")
	}
	st := e2.Stats()
	if st.Characterizations.Executions != 0 {
		t.Errorf("warm engine executed %d characterizations, want 0", st.Characterizations.Executions)
	}
	if st.Characterizations.Hits != 1 {
		t.Errorf("warm engine hits = %d, want 1", st.Characterizations.Hits)
	}
}

// A malformed entry no longer fails the warm start: it is quarantined
// (skipped + counted) and the healthy entries still load.
func TestLoadCacheQuarantinesGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	n, err := e.LoadCache(dir)
	if err != nil {
		t.Fatalf("LoadCache failed on a corrupt entry instead of quarantining: %v", err)
	}
	if n != 0 {
		t.Errorf("loaded %d entries, want 0", n)
	}
	if got := e.Stats().CacheCorruptEntries; got != 1 {
		t.Errorf("CacheCorruptEntries = %d, want 1", got)
	}
}

func TestFanOutReportsLowestIndexError(t *testing.T) {
	s := make(sem, 2)
	err := fanOut(context.Background(), s, 5, func(i int) error {
		if i == 1 || i == 3 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 1 failed" {
		t.Errorf("err = %v, want the lowest-index failure", err)
	}
	if err := fanOut(context.Background(), s, 3, func(int) error { return nil }); err != nil {
		t.Errorf("all-success fanOut returned %v", err)
	}
}

// A panicking task degrades into a *PanicError instead of killing the
// process — the guarantee injected panic faults rely on.
func TestFanOutRecoversPanics(t *testing.T) {
	s := make(sem, 2)
	err := fanOut(context.Background(), s, 3, func(i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %+v, want value boom with a stack", pe)
	}
}

// A context cancelled before a task gets its slot skips the task and
// reports the cancellation.
func TestFanOutHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := make(sem, 1)
	ran := false
	err := fanOut(ctx, s, 2, func(int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task ran under a cancelled context")
	}
}
