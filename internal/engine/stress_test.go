package engine

import (
	"context"
	"sync"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
)

// TestAdviseBatchStress hammers one engine from many goroutines with
// overlapping (device, params) keys and checks the singleflight contract:
// every unique key is characterized exactly once, every request still gets a
// full recommendation, and the cache counters are arithmetically consistent.
// Run with -race; the engine's only defense is real synchronization.
func TestAdviseBatchStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const goroutines = 32

	p := microbench.TestParams()
	names := []string{devices.NanoName, devices.TX2Name, devices.XavierName}
	apps := catalog.Names()

	// Every goroutine submits one batch covering all device x app pairs, so
	// all 32 batches contend for the same three characterization keys.
	var reqs []Request
	for _, dn := range names {
		cfg, err := devices.ByName(dn)
		if err != nil {
			t.Fatal(err)
		}
		for _, an := range apps {
			w, err := catalog.ByName(an, catalog.Quick)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, Request{Config: cfg, Params: p, Workload: w, Current: "sc"})
		}
	}

	e := New(Options{Workers: 4})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(reqs))
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i, res := range e.AdviseBatch(context.Background(), reqs) {
				if res.Err != nil {
					errs <- res.Err
					continue
				}
				if res.Rec.Suggested == "" || res.Rec.Platform != reqs[i].Config.Name {
					errs <- errMismatch(res.Rec.Platform, reqs[i].Config.Name)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.Stats()
	// Exactly one execution per unique (config, params) key, no matter how
	// many goroutines raced for it.
	if st.Characterizations.Executions != uint64(len(names)) {
		t.Errorf("executions = %d, want %d (one per device)",
			st.Characterizations.Executions, len(names))
	}
	total := uint64(goroutines * len(reqs))
	if st.Requests != total {
		t.Errorf("requests = %d, want %d", st.Requests, total)
	}
	if st.Batches != goroutines {
		t.Errorf("batches = %d, want %d", st.Batches, goroutines)
	}
	// Every request either hit the cache or missed; every miss either
	// executed or piggybacked on an in-flight execution.
	c := st.Characterizations
	if c.Hits+c.Misses != total {
		t.Errorf("hits(%d) + misses(%d) != requests(%d)", c.Hits, c.Misses, total)
	}
	if c.Misses != c.Executions+c.Shared {
		t.Errorf("misses(%d) != executions(%d) + shared(%d)", c.Misses, c.Executions, c.Shared)
	}
	if c.InFlight != 0 {
		t.Errorf("in_flight = %d after quiescence, want 0", c.InFlight)
	}
	if c.Entries != len(names) {
		t.Errorf("entries = %d, want %d", c.Entries, len(names))
	}
}

type errMismatch2 struct{ got, want string }

func errMismatch(got, want string) error { return &errMismatch2{got, want} }

func (e *errMismatch2) Error() string {
	return "recommendation platform " + e.got + ", want " + e.want
}
