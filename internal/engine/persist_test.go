package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/faults"
	"igpucomm/internal/microbench"
)

// saveOneEntry characterizes one device and persists the cache, returning
// the engine and the entry's path.
func saveOneEntry(t *testing.T, dir string) (*Engine, string) {
	t.Helper()
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	if _, err := e.Characterize(context.Background(), cfg, microbench.TestParams()); err != nil {
		t.Fatal(err)
	}
	if n, err := e.SaveCache(dir); err != nil || n != 1 {
		t.Fatalf("SaveCache = %d, %v", n, err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("cache files = %v, %v", names, err)
	}
	return e, names[0]
}

// SaveCache must leave no temp droppings and must pair every entry with a
// checksum sidecar.
func TestSaveCacheWritesChecksummedEntries(t *testing.T) {
	dir := t.TempDir()
	_, entry := saveOneEntry(t, dir)
	if _, err := os.Stat(entry + checksumSuffix); err != nil {
		t.Errorf("missing checksum sidecar: %v", err)
	}
	all, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range all {
		if strings.Contains(f.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", f.Name())
		}
	}
}

// The regression the warm-start satellite demands: a hand-corrupted entry is
// quarantined while the healthy entries load, and the corrupt counter
// reflects it.
func TestLoadCacheQuarantinesHandCorruptedEntry(t *testing.T) {
	dir := t.TempDir()
	_, entry := saveOneEntry(t, dir)

	// Flip bytes in the middle of the payload without touching the sidecar:
	// the checksum catches it even though the JSON may still decode.
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	data[mid] ^= 0xff
	data[mid+1] ^= 0xff
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New(Options{})
	n, err := e2.LoadCache(dir)
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if n != 0 {
		t.Errorf("loaded %d entries, want 0 (corrupt)", n)
	}
	if got := e2.Stats().CacheCorruptEntries; got != 1 {
		t.Errorf("CacheCorruptEntries = %d, want 1", got)
	}

	// A truncated entry (torn write) is also quarantined.
	if err := os.WriteFile(entry, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := New(Options{})
	if n, err := e3.LoadCache(dir); err != nil || n != 0 {
		t.Fatalf("truncated entry: loaded=%d err=%v, want 0,nil", n, err)
	}
	if got := e3.Stats().CacheCorruptEntries; got != 1 {
		t.Errorf("CacheCorruptEntries = %d, want 1", got)
	}
}

// Healthy entries still load when a corrupt neighbor is quarantined.
func TestLoadCacheLoadsHealthyDespiteCorruptNeighbor(t *testing.T) {
	dir := t.TempDir()
	saveOneEntry(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "zz-corrupt.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	n, err := e.LoadCache(dir)
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if n != 1 {
		t.Errorf("loaded %d entries, want 1", n)
	}
	if got := e.Stats().CacheCorruptEntries; got != 1 {
		t.Errorf("CacheCorruptEntries = %d, want 1", got)
	}
}

// An injected corrupt fault on the load path is caught by the checksum and
// quarantined — the cache never serves mangled bytes.
func TestLoadCacheQuarantinesInjectedCorruption(t *testing.T) {
	dir := t.TempDir()
	saveOneEntry(t, dir)

	plan := faults.NewPlan(11, faults.Rule{Point: "engine.cache.load", Mode: faults.ModeCorrupt, Every: 1})
	if err := faults.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer faults.Deactivate()
	defer faults.ResetInjected()

	e := New(Options{})
	n, err := e.LoadCache(dir)
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if n != 0 {
		t.Errorf("loaded %d entries under injected corruption, want 0", n)
	}
	if got := e.Stats().CacheCorruptEntries; got != 1 {
		t.Errorf("CacheCorruptEntries = %d, want 1", got)
	}
	if faults.Injected()["engine.cache.load"] == 0 {
		t.Error("fault counter did not record the injection")
	}
}
