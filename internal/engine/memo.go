package engine

import (
	"container/list"
	"context"
	"sync"
	"time"

	"igpucomm/internal/telemetry"
)

// MemoRoleStats is one role's slice of a memo cache's counters — fleet
// deployments classify each cache key by shard role (owned vs remote) so
// /statusz can show whether a replica's hit rate comes from keys it owns or
// from fallback traffic.
type MemoRoleStats struct {
	// Hits and Misses are the lookups for keys of this role.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the number of live cached values whose key currently
	// classifies as this role. Classification follows the live ring, so a
	// membership change moves entries between roles without re-counting
	// lookups.
	Entries int `json:"entries"`
	// HitRate is Hits/(Hits+Misses), 0 with no lookups.
	HitRate float64 `json:"hit_rate"`
}

// MemoStats is one memo cache's counter snapshot, served by /statusz.
type MemoStats struct {
	// Hits are requests served from the cache.
	Hits uint64 `json:"hits"`
	// Misses are requests that found no live entry (every miss either
	// executes or piggybacks on an in-flight execution).
	Misses uint64 `json:"misses"`
	// Shared counts misses that piggybacked on an in-flight execution of
	// the same key instead of executing themselves (singleflight).
	Shared uint64 `json:"shared"`
	// Executions counts the compute functions actually run — for a given
	// key set this is the number of unique characterizations simulated.
	Executions uint64 `json:"executions"`
	// Evictions counts LRU capacity evictions; Expirations counts entries
	// dropped because their TTL lapsed.
	Evictions   uint64 `json:"evictions"`
	Expirations uint64 `json:"expirations"`
	// InFlight is the number of executions running right now.
	InFlight int `json:"in_flight"`
	// Entries is the current number of live cached values.
	Entries int `json:"entries"`
}

// flight is one in-progress execution other requests for the same key wait
// on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type memoEntry[V any] struct {
	key     string
	val     V
	expires time.Time // zero: never
}

// memo is an LRU-with-TTL cache fused with singleflight deduplication:
// concurrent do() calls for the same key share one execution, and completed
// values are retained until capacity or TTL turns them out. Safe for
// concurrent use. Errors are never cached.
type memo[V any] struct {
	// role classifies a key for per-role accounting (nil: no role
	// tracking). It is always called outside the memo lock — it may take
	// other locks of its own (the fleet ring's, for one).
	role func(key string) string

	mu         sync.Mutex
	capacity   int
	ttl        time.Duration
	now        func() time.Time
	order      *list.List // front = most recently used
	entries    map[string]*list.Element
	inflight   map[string]*flight[V]
	stats      MemoStats
	roleHits   map[string]uint64
	roleMisses map[string]uint64
}

// newMemo builds a cache; now must be non-nil (the engine passes its
// Clock's Now, defaulting to the wall clock).
func newMemo[V any](capacity int, ttl time.Duration, now func() time.Time) *memo[V] {
	if capacity <= 0 {
		capacity = 64
	}
	m := &memo[V]{
		capacity:   capacity,
		ttl:        ttl,
		now:        now,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*flight[V]),
		roleHits:   make(map[string]uint64),
		roleMisses: make(map[string]uint64),
	}
	return m
}

func (m *memo[V]) lock()   { m.mu.Lock() }
func (m *memo[V]) unlock() { m.mu.Unlock() }

// lookupLocked returns the live value for key, expiring it if its TTL
// lapsed. Caller holds the lock.
func (m *memo[V]) lookupLocked(key string) (V, bool) {
	var zero V
	el, ok := m.entries[key]
	if !ok {
		return zero, false
	}
	ent := el.Value.(*memoEntry[V])
	if !ent.expires.IsZero() && m.now().After(ent.expires) {
		m.order.Remove(el)
		delete(m.entries, key)
		m.stats.Expirations++
		return zero, false
	}
	m.order.MoveToFront(el)
	return ent.val, true
}

// putLocked inserts (or refreshes) a value, evicting from the LRU tail if
// over capacity. Caller holds the lock.
func (m *memo[V]) putLocked(key string, val V) {
	if el, ok := m.entries[key]; ok {
		ent := el.Value.(*memoEntry[V])
		ent.val = val
		ent.expires = m.deadline()
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&memoEntry[V]{key: key, val: val, expires: m.deadline()})
	for m.order.Len() > m.capacity {
		tail := m.order.Back()
		m.order.Remove(tail)
		delete(m.entries, tail.Value.(*memoEntry[V]).key)
		m.stats.Evictions++
	}
}

func (m *memo[V]) deadline() time.Time {
	if m.ttl <= 0 {
		return time.Time{}
	}
	return m.now().Add(m.ttl)
}

// put inserts a precomputed value (warm-start loading).
func (m *memo[V]) put(key string, val V) {
	m.lock()
	defer m.unlock()
	m.putLocked(key, val)
}

// do returns the cached value for key, or computes it via fn. Concurrent
// calls for one key share a single fn execution; its error is delivered to
// every sharer and not cached. The context's current span (if any) is
// annotated with the cache outcome: hit, shared (singleflight piggyback) or
// miss (this call executed).
func (m *memo[V]) do(ctx context.Context, key string, fn func() (V, error)) (V, error) {
	span := telemetry.SpanFrom(ctx)
	role := ""
	if m.role != nil {
		// Classified before taking the memo lock: the classifier may lock
		// the fleet ring, and lock order must stay one-way.
		role = m.role(key)
	}
	m.lock()
	if v, ok := m.lookupLocked(key); ok {
		m.stats.Hits++
		if role != "" {
			m.roleHits[role]++
		}
		m.unlock()
		span.SetAttr("cache", "hit")
		return v, nil
	}
	m.stats.Misses++
	if role != "" {
		m.roleMisses[role]++
	}
	if fl, ok := m.inflight[key]; ok {
		m.stats.Shared++
		m.unlock()
		span.SetAttr("cache", "shared")
		<-fl.done
		return fl.val, fl.err
	}
	span.SetAttr("cache", "miss")
	fl := &flight[V]{done: make(chan struct{})}
	m.inflight[key] = fl
	m.stats.InFlight++
	m.unlock()

	fl.val, fl.err = fn()

	m.lock()
	m.stats.Executions++
	m.stats.InFlight--
	delete(m.inflight, key)
	if fl.err == nil {
		m.putLocked(key, fl.val)
	}
	m.unlock()
	close(fl.done)
	return fl.val, fl.err
}

// snapshot returns the current stats.
func (m *memo[V]) snapshot() MemoStats {
	m.lock()
	defer m.unlock()
	st := m.stats
	st.Entries = m.order.Len()
	return st
}

// snapshotRoles returns the per-role counter snapshot, nil when no role
// classifier is installed. Live entries are re-classified on every snapshot
// so the owned/remote split tracks the current ring, not the ring at insert
// time.
func (m *memo[V]) snapshotRoles() map[string]MemoRoleStats {
	if m.role == nil {
		return nil
	}
	m.lock()
	hits := make(map[string]uint64, len(m.roleHits))
	for r, n := range m.roleHits {
		hits[r] = n
	}
	misses := make(map[string]uint64, len(m.roleMisses))
	for r, n := range m.roleMisses {
		misses[r] = n
	}
	keys := make([]string, 0, len(m.entries))
	now := m.now()
	for key, el := range m.entries {
		ent := el.Value.(*memoEntry[V])
		if !ent.expires.IsZero() && now.After(ent.expires) {
			continue
		}
		keys = append(keys, key)
	}
	m.unlock()

	out := make(map[string]MemoRoleStats)
	for r, n := range hits {
		st := out[r]
		st.Hits = n
		out[r] = st
	}
	for r, n := range misses {
		st := out[r]
		st.Misses = n
		out[r] = st
	}
	for _, key := range keys {
		r := m.role(key)
		st := out[r]
		st.Entries++
		out[r] = st
	}
	for r, st := range out {
		if total := st.Hits + st.Misses; total > 0 {
			st.HitRate = float64(st.Hits) / float64(total)
		}
		out[r] = st
	}
	return out
}

// dump returns every live entry (expired ones excluded), for persistence.
func (m *memo[V]) dump() map[string]V {
	m.lock()
	defer m.unlock()
	out := make(map[string]V, len(m.entries))
	now := m.now()
	for key, el := range m.entries {
		ent := el.Value.(*memoEntry[V])
		if !ent.expires.IsZero() && now.After(ent.expires) {
			continue
		}
		out[key] = ent.val
	}
	return out
}
