package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
)

// TestGoldenExploreHeatMatchesExplore is the heat-map correctness contract:
// across every device x app x model combination (the 45-point sweep), a
// heat-enabled exploration must produce byte-identical measurements to the
// heat-free one — heat recording observes the simulation, it never perturbs
// it. The only permitted difference is the BufferHeat attachment itself.
func TestGoldenExploreHeatMatchesExplore(t *testing.T) {
	models := comm.AllModels()
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			cfg, app := cfg, app
			t.Run(cfg.Name+"/"+app, func(t *testing.T) {
				w, err := catalog.ByName(app, catalog.Quick)
				if err != nil {
					t.Fatal(err)
				}
				e := New(Options{Workers: 4})
				plain, err := e.Explore(context.Background(), cfg, w, models)
				if err != nil {
					t.Fatal(err)
				}
				heat, err := e.ExploreHeat(context.Background(), cfg, w, models)
				if err != nil {
					t.Fatal(err)
				}
				for i := range heat.Ranked {
					if len(heat.Ranked[i].Report.BufferHeat) == 0 {
						t.Errorf("%s: heat run carries no BufferHeat", heat.Ranked[i].Model)
					}
					heat.Ranked[i].Report.BufferHeat = nil
				}
				want, err := json.Marshal(plain)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(heat)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("heat-enabled exploration diverges from plain:\nplain: %s\nheat:  %s", want, got)
				}
			})
		}
	}
}

// TestExploreHeatLeavesPoolClean checks the enable/disable bracket: after a
// heat exploration returns its pooled platforms, a plain Explore on the same
// engine must run heat-free (no BufferHeat on its reports).
func TestExploreHeatLeavesPoolClean(t *testing.T) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := catalog.ByName("shwfs", catalog.Quick)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	if _, err := e.ExploreHeat(context.Background(), cfg, w, comm.AllModels()); err != nil {
		t.Fatal(err)
	}
	exp, err := e.Explore(context.Background(), cfg, w, comm.AllModels())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range exp.Ranked {
		if len(c.Report.BufferHeat) != 0 {
			t.Errorf("%s: plain exploration after heat run still records heat", c.Model)
		}
	}
}

// TestGoldenAPUHeat pins the heat profile of the extra-catalog APU platform
// (unified page tables, free migration) as a golden artifact: the per-buffer
// heat entries of a quick shwfs exploration, hints included. Refresh with
// GOLDEN_UPDATE=1 after intentional simulator or threshold changes.
func TestGoldenAPUHeat(t *testing.T) {
	cfg, err := devices.ByName(devices.APUName)
	if err != nil {
		t.Fatal(err)
	}
	w, err := catalog.ByName("shwfs", catalog.Quick)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	exp, err := e.ExploreHeat(context.Background(), cfg, w, comm.AllModels())
	if err != nil {
		t.Fatal(err)
	}
	art := framework.HeatArtifact{Entries: framework.HeatEntriesFromExploration(exp)}
	var buf bytes.Buffer
	if err := framework.SaveHeatArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "apu_heat.json")
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("APU heat artifact diverges from golden %s:\ngot:  %s\nwant: %s", path, got, want)
	}
	// The golden must survive its own schema loader.
	if _, err := framework.LoadHeatArtifact(bytes.NewReader(want)); err != nil {
		t.Errorf("golden does not load: %v", err)
	}
}
