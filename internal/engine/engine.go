// Package engine is the repo's parallel execution and advisory engine: a
// bounded worker pool that fans device characterization and model
// exploration out across cloned platforms, an LRU+TTL memo cache (with
// singleflight deduplication) for the expensive application-independent
// characterizations, and a batch advisory API on top — the machinery that
// turns the paper's one-shot tuning flow (Fig 2) into something that can
// serve sustained advisory traffic.
//
// Correctness contract: every simulation task holds a private platform —
// taken from a per-config pool (soc.ResetState restores fresh-equivalent
// state between runs) or freshly built — and results are assembled in the
// same order the serial paths produce them, so the engine's Characterize and
// Explore outputs are byte-identical to framework.Characterize and
// framework.Explore (the golden equivalence test holds the engine to this
// for every device x app x model combination).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"igpucomm/internal/comm"
	"igpucomm/internal/faults"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/simnet"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
)

// Fault points the engine exposes to the injection layer (inert unless a
// plan is activated; see internal/faults).
var (
	faultCharacterize = faults.Register("engine.characterize",
		"cold characterization run (before the micro-benchmark fan-out)",
		faults.CanError|faults.CanLatency|faults.CanPanic)
	faultExplore = faults.Register("engine.explore",
		"model exploration fan-out", faults.CanError|faults.CanLatency|faults.CanPanic)
	faultCacheStore = faults.Register("engine.cache.store",
		"cache persistence write (per entry)", faults.CanError|faults.CanLatency|faults.CanPanic)
	faultCacheLoad = faults.Register("engine.cache.load",
		"cache warm-start read (per-entry bytes)",
		faults.CanError|faults.CanLatency|faults.CanCorrupt|faults.CanTruncate|faults.CanPanic)
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of concurrently executing simulation
	// tasks. <=0 means GOMAXPROCS.
	Workers int
	// CacheEntries is the LRU capacity of each memo cache (<=0: 64).
	CacheEntries int
	// TTL expires cached characterizations this long after insertion
	// (0: never). Characterizations are pure functions of (config,
	// params), so the TTL exists for operational hygiene — bounding how
	// long a service trusts any one simulation — not for correctness.
	TTL time.Duration
	// Clock is the time source for TTL bookkeeping (nil: simnet.Real()).
	// The DST harness injects a virtual clock here.
	Clock simnet.Clock
	// KeyRole classifies a characterization cache key for per-role
	// accounting (nil: no role tracking). Fleet deployments install the
	// shard's fleet.State.KeyRole here so /statusz reports cache entries
	// and hit rates split into owned vs remote keys. The classifier is
	// called outside the cache lock and must be safe for concurrent use.
	KeyRole func(key string) string
}

// Engine executes characterizations, explorations and advisory requests with
// bounded parallelism and memoization. Safe for concurrent use.
type Engine struct {
	workers int
	sem     sem
	pool    *socPool
	chars   *memo[framework.Characterization]
	mb1s    *memo[microbench.MB1Result]

	requests     atomic.Uint64
	batches      atomic.Uint64
	cacheCorrupt atomic.Uint64
}

// New builds an engine.
func New(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Clock == nil {
		o.Clock = simnet.Real()
	}
	chars := newMemo[framework.Characterization](o.CacheEntries, o.TTL, o.Clock.Now)
	// Only the characterization cache is sharded across a fleet; MB1
	// memoization stays process-local.
	chars.role = o.KeyRole
	return &Engine{
		workers: o.Workers,
		sem:     make(sem, o.Workers),
		pool:    newSocPool(o.Workers),
		chars:   chars,
		mb1s:    newMemo[microbench.MB1Result](o.CacheEntries, o.TTL, o.Clock.Now),
	}
}

// Workers returns the configured simulation-parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// PoolInUse returns how many simulation slots are held right now — the
// numerator of the pool-utilization gauge advisord exports.
func (e *Engine) PoolInUse() int { return len(e.sem) }

// Stats is the engine's counter snapshot (served by advisord's /statusz).
type Stats struct {
	Workers           int       `json:"workers"`
	Requests          uint64    `json:"requests"`
	Batches           uint64    `json:"batches"`
	Characterizations MemoStats `json:"characterizations"`
	MB1               MemoStats `json:"mb1"`
	// CacheCorruptEntries counts persisted cache entries quarantined at
	// warm start (checksum mismatch or undecodable payload).
	CacheCorruptEntries uint64 `json:"cache_corrupt_entries"`
	// CharacterizationsByRole splits the characterization cache's counters
	// by shard role (Options.KeyRole). Absent — keeping the pre-fleet JSON
	// shape — when no classifier is installed.
	CharacterizationsByRole map[string]MemoRoleStats `json:"characterizations_by_role,omitempty"`
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:                 e.workers,
		Requests:                e.requests.Load(),
		Batches:                 e.batches.Load(),
		Characterizations:       e.chars.snapshot(),
		MB1:                     e.mb1s.snapshot(),
		CacheCorruptEntries:     e.cacheCorrupt.Load(),
		CharacterizationsByRole: e.chars.snapshotRoles(),
	}
}

// CacheExport returns every live characterization cache entry keyed by cache
// key — the source of a fleet warm-handoff stream. The map is a copy; the
// values are the cached characterizations themselves, which callers must
// treat as read-only.
func (e *Engine) CacheExport() map[string]framework.Characterization {
	return e.chars.dump()
}

// CachePut inserts a characterization under its cache key, as a warm-handoff
// pull (or any other out-of-band warm start) does. The entry joins the LRU
// under the same capacity and TTL rules as a computed one.
func (e *Engine) CachePut(key string, char framework.Characterization) {
	if key == "" {
		return
	}
	e.chars.put(key, char)
}

// Characterize returns the device characterization for (cfg, p), from the
// memo cache when possible. Concurrent calls for the same key share one
// execution; a cold execution fans the micro-benchmark sweep points out
// across cloned platforms under the worker bound.
func (e *Engine) Characterize(ctx context.Context, cfg soc.Config, p microbench.Params) (framework.Characterization, error) {
	key, err := CacheKey(cfg, p)
	if err != nil {
		return framework.Characterization{}, err
	}
	ctx, span := telemetry.Start(ctx, "engine.characterize",
		telemetry.String("device", cfg.Name))
	defer span.End()
	return e.chars.do(ctx, key, func() (framework.Characterization, error) {
		return e.characterize(ctx, cfg, p)
	})
}

// characterize is the cold path: the parallel equivalent of
// framework.Characterize.
func (e *Engine) characterize(ctx context.Context, cfg soc.Config, p microbench.Params) (framework.Characterization, error) {
	if err := faults.Fire(faultCharacterize); err != nil {
		return framework.Characterization{}, fmt.Errorf("engine: %w", err)
	}
	// Stage 1: the MB1 rows and MB3 have no mutual dependencies — run the
	// three model rows and the third micro-benchmark concurrently, each on
	// its own clone.
	models := comm.Models()
	rows := make([]microbench.MB1Row, len(models))
	var mb3 microbench.MB3Result
	err := fanOut(ctx, e.sem, len(models)+1, func(i int) error {
		s, pk := e.pool.get(cfg)
		var err error
		if i == len(models) {
			mb3, err = microbench.RunMB3(ctx, s, p)
		} else {
			rows[i], err = microbench.RunMB1Model(ctx, s, p, models[i])
		}
		e.pool.put(pk, s, err)
		return err
	})
	if err != nil {
		return framework.Characterization{}, fmt.Errorf("engine: %w", err)
	}
	mb1 := microbench.MB1Result{Platform: cfg.Name, Rows: rows}

	// Stage 2: MB2 needs MB1's peak throughput; its sweep points are then
	// independent of each other.
	peak := mb1.PeakThroughput()
	nf := len(p.MB2Fractions)
	gpuPts := make([]microbench.MB2GPUPoint, nf)
	cpuPts := make([]microbench.MB2CPUPoint, nf)
	err = fanOut(ctx, e.sem, 2*nf, func(i int) error {
		s, pk := e.pool.get(cfg)
		var err error
		if i < nf {
			gpuPts[i], err = microbench.RunMB2GPUPoint(ctx, s, p, p.MB2Fractions[i], peak)
		} else {
			cpuPts[i-nf], err = microbench.RunMB2CPUPoint(ctx, s, p, p.MB2Fractions[i-nf])
		}
		e.pool.put(pk, s, err)
		return err
	})
	if err != nil {
		return framework.Characterization{}, fmt.Errorf("engine: %w", err)
	}
	mb2, err := microbench.BuildMB2Result(cfg.Name, cfg.IOCoherent, gpuPts, cpuPts)
	if err != nil {
		return framework.Characterization{}, fmt.Errorf("engine: %w", err)
	}
	return framework.NewCharacterization(cfg.Name, cfg.IOCoherent, mb1, mb2, mb3), nil
}

// MB1 returns just the first micro-benchmark's result, memoized under the
// same key scheme. Calibration loops use this: re-measuring a config the
// loop (or a previous fit against the same config) already measured is a
// cache hit.
func (e *Engine) MB1(ctx context.Context, cfg soc.Config, p microbench.Params) (microbench.MB1Result, error) {
	key, err := CacheKey(cfg, p)
	if err != nil {
		return microbench.MB1Result{}, err
	}
	ctx, span := telemetry.Start(ctx, "engine.mb1", telemetry.String("device", cfg.Name))
	defer span.End()
	return e.mb1s.do(ctx, key, func() (microbench.MB1Result, error) {
		models := comm.Models()
		rows := make([]microbench.MB1Row, len(models))
		err := fanOut(ctx, e.sem, len(models), func(i int) error {
			s, pk := e.pool.get(cfg)
			row, err := microbench.RunMB1Model(ctx, s, p, models[i])
			e.pool.put(pk, s, err)
			rows[i] = row
			return err
		})
		if err != nil {
			return microbench.MB1Result{}, fmt.Errorf("engine: %w", err)
		}
		return microbench.MB1Result{Platform: cfg.Name, Rows: rows}, nil
	})
}

// Explore measures the workload under every given model (comm.Models when
// nil) concurrently, one clone per model, and returns the same ranking the
// serial framework.Explore produces.
func (e *Engine) Explore(ctx context.Context, cfg soc.Config, w comm.Workload, models []comm.Model) (framework.Exploration, error) {
	if models == nil {
		models = comm.Models()
	}
	if len(models) == 0 {
		return framework.Exploration{}, fmt.Errorf("engine: no models to explore")
	}
	ctx, span := telemetry.Start(ctx, "engine.explore",
		telemetry.String("device", cfg.Name), telemetry.String("workload", w.Name))
	defer span.End()
	if err := faults.Fire(faultExplore); err != nil {
		return framework.Exploration{}, fmt.Errorf("engine: %w", err)
	}
	cands := make([]framework.Candidate, len(models))
	err := fanOut(ctx, e.sem, len(models), func(i int) error {
		_, mspan := telemetry.Start(ctx, "engine.explore.model",
			telemetry.String("model", models[i].Name()))
		defer mspan.End()
		s, pk := e.pool.get(cfg)
		rep, err := models[i].Run(s, w)
		e.pool.put(pk, s, err)
		if err != nil {
			return fmt.Errorf("engine: explore %s: %w", models[i].Name(), err)
		}
		cands[i] = framework.Candidate{Model: models[i].Name(), Total: rep.Total, Report: rep}
		return nil
	})
	if err != nil {
		return framework.Exploration{}, err
	}
	return framework.NewExploration(cfg.Name, w.Name, cands), nil
}

// ExploreHeat is Explore with per-buffer heat profiling enabled for the
// duration of each model run: every candidate's Report carries a BufferHeat
// snapshot of its measured iteration. Heat is disabled again before the
// platform returns to the pool, so pooled platforms stay heat-free for
// ordinary work (the accumulator itself is cached on the SoC, so repeated
// heat sweeps do not reallocate). Timings are byte-identical to Explore's —
// heat recording never perturbs the simulation.
func (e *Engine) ExploreHeat(ctx context.Context, cfg soc.Config, w comm.Workload, models []comm.Model) (framework.Exploration, error) {
	if models == nil {
		models = comm.Models()
	}
	if len(models) == 0 {
		return framework.Exploration{}, fmt.Errorf("engine: no models to explore")
	}
	ctx, span := telemetry.Start(ctx, "engine.explore-heat",
		telemetry.String("device", cfg.Name), telemetry.String("workload", w.Name))
	defer span.End()
	if err := faults.Fire(faultExplore); err != nil {
		return framework.Exploration{}, fmt.Errorf("engine: %w", err)
	}
	cands := make([]framework.Candidate, len(models))
	err := fanOut(ctx, e.sem, len(models), func(i int) error {
		_, mspan := telemetry.Start(ctx, "engine.explore.model",
			telemetry.String("model", models[i].Name()),
			telemetry.String("heat", "on"))
		defer mspan.End()
		s, pk := e.pool.get(cfg)
		s.EnableHeat()
		rep, err := models[i].Run(s, w)
		s.DisableHeat()
		e.pool.put(pk, s, err)
		if err != nil {
			return fmt.Errorf("engine: explore %s: %w", models[i].Name(), err)
		}
		cands[i] = framework.Candidate{Model: models[i].Name(), Total: rep.Total, Report: rep}
		return nil
	})
	if err != nil {
		return framework.Exploration{}, err
	}
	return framework.NewExploration(cfg.Name, w.Name, cands), nil
}

// Request is one advisory question: which communication model should this
// workload use on this platform, given it currently uses Current?
type Request struct {
	Config   soc.Config
	Params   microbench.Params
	Workload comm.Workload
	Current  string
}

// Result pairs a request's recommendation with its error; a batch reports
// per-request failures instead of aborting the requests that can succeed.
type Result struct {
	Rec framework.Recommendation
	Err error
}

// Advise answers one request: characterization from the cache (or one shared
// cold run), profiling and the Fig-2 decision flow on a private clone.
func (e *Engine) Advise(ctx context.Context, req Request) (framework.Recommendation, error) {
	e.requests.Add(1)
	ctx, span := telemetry.Start(ctx, "engine.advise",
		telemetry.String("device", req.Config.Name),
		telemetry.String("workload", req.Workload.Name),
		telemetry.String("current", req.Current))
	defer span.End()
	char, err := e.Characterize(ctx, req.Config, req.Params)
	if err != nil {
		return framework.Recommendation{}, err
	}
	return e.adviseWith(ctx, char, req)
}

// AdviseWith answers a request against a characterization the caller already
// holds: profiling and the Fig-2 decision flow on a private clone, under the
// engine's worker bound. advisord's resilience layer uses it to separate
// characterization failures (which feed the circuit breaker) from profiling
// failures (which fall back to degraded-mode advice).
func (e *Engine) AdviseWith(ctx context.Context, char framework.Characterization, req Request) (framework.Recommendation, error) {
	e.requests.Add(1)
	ctx, span := telemetry.Start(ctx, "engine.advise",
		telemetry.String("device", req.Config.Name),
		telemetry.String("workload", req.Workload.Name),
		telemetry.String("current", req.Current))
	defer span.End()
	return e.adviseWith(ctx, char, req)
}

// adviseWith is the shared profile-and-decide tail of Advise/AdviseWith.
func (e *Engine) adviseWith(ctx context.Context, char framework.Characterization, req Request) (framework.Recommendation, error) {
	var rec framework.Recommendation
	err := fanOut(ctx, e.sem, 1, func(int) error {
		s, pk := e.pool.get(req.Config)
		var err error
		rec, err = framework.AdviseWorkload(ctx, char, s, req.Workload, req.Current)
		e.pool.put(pk, s, err)
		return err
	})
	return rec, err
}

// NoteBatch counts one advisory batch answered outside AdviseBatch —
// advisord's resilience layer drives requests individually through
// Characterize/AdviseWith but each /v1/advise body is still one batch.
func (e *Engine) NoteBatch() { e.batches.Add(1) }

// AdviseBatch answers a batch of requests concurrently. Requests sharing a
// (config, params) key share one characterization — under a cold cache a
// 3-device batch of any size simulates exactly three characterizations —
// and results come back in request order.
func (e *Engine) AdviseBatch(ctx context.Context, reqs []Request) []Result {
	e.batches.Add(1)
	ctx, span := telemetry.Start(ctx, "engine.advise_batch",
		telemetry.String("requests", fmt.Sprintf("%d", len(reqs))))
	defer span.End()
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i := range reqs {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if err := recovered(recover()); err != nil {
					out[i].Err = err
				}
			}()
			out[i].Rec, out[i].Err = e.Advise(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return out
}
