package engine

import (
	"errors"
	"testing"

	"igpucomm/internal/devices"
)

// TestSocPoolRecyclesPerKey pins the pool's core behavior: a returned
// platform is handed back for the same config (same instance, warm kernel
// caches and all), a different config never receives it, and the idle list
// never grows past perKey.
func TestSocPoolRecyclesPerKey(t *testing.T) {
	all := devices.All()
	p := newSocPool(2)

	s1, k1 := p.get(all[0])
	if k1 == "" {
		t.Fatal("catalog config produced an empty pool key")
	}
	p.put(k1, s1, nil)
	s2, _ := p.get(all[0])
	if s2 != s1 {
		t.Error("same config did not receive the recycled platform")
	}

	sOther, kOther := p.get(all[1])
	if kOther == k1 {
		t.Error("distinct configs hashed to the same pool key")
	}
	if sOther == s1 {
		t.Error("a different config received another config's platform")
	}

	// perKey cap: returning three platforms keeps at most two idle.
	s3, _ := p.get(all[0])
	s4, _ := p.get(all[0])
	p.put(k1, s2, nil)
	p.put(k1, s3, nil)
	p.put(k1, s4, nil)
	if got := len(p.socs[k1]); got != 2 {
		t.Errorf("idle list holds %d platforms, perKey cap is 2", got)
	}
}

// TestSocPoolDropsOnError checks the failure contract: a task that errored
// must not recycle its platform — an aborted run can leave buffers allocated.
func TestSocPoolDropsOnError(t *testing.T) {
	cfg := devices.All()[0]
	p := newSocPool(4)
	s, k := p.get(cfg)
	p.put(k, s, errors.New("task failed"))
	if got := len(p.socs[k]); got != 0 {
		t.Errorf("errored task's platform was pooled (%d idle)", got)
	}
	p.put("", s, nil) // unpoolable key: must be a no-op, not a panic
	if got := len(p.socs[""]); got != 0 {
		t.Error("empty key was pooled")
	}
	p.put(k, nil, nil) // nil platform: same
	if got := len(p.socs[k]); got != 0 {
		t.Error("nil platform was pooled")
	}
}

// TestSocPoolEvictsOldestKey checks the key bound: past maxPoolKeys distinct
// configs, the oldest config's idle platforms are dropped so the pool cannot
// grow without bound under a config sweep.
func TestSocPoolEvictsOldestKey(t *testing.T) {
	base := devices.All()[0]
	p := newSocPool(1)
	var keys []string
	for i := 0; i <= maxPoolKeys; i++ {
		cfg := base
		cfg.Name = cfg.Name + string(rune('a'+i)) // distinct content hash
		s, k := p.get(cfg)
		p.put(k, s, nil)
		keys = append(keys, k)
	}
	if _, ok := p.socs[keys[0]]; ok {
		t.Error("oldest key survived past maxPoolKeys")
	}
	if got := len(p.socs); got != maxPoolKeys {
		t.Errorf("pool retains %d keys, want %d", got, maxPoolKeys)
	}
	if got := len(p.order); got != maxPoolKeys {
		t.Errorf("eviction order tracks %d keys, want %d", got, maxPoolKeys)
	}
	for _, k := range keys[1:] {
		if _, ok := p.socs[k]; !ok {
			t.Errorf("recent key %s was evicted", k[:8])
		}
	}
}
