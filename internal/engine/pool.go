package engine

import "sync"

// sem is the engine's global simulation-concurrency bound. Coordination
// goroutines (batch requests waiting on a singleflight, assembly barriers)
// run unbounded — they are cheap and mostly blocked — but every goroutine
// that actually simulates holds a slot, so the total simulation parallelism
// never exceeds Options.Workers no matter how batches, characterizations and
// explorations nest.
type sem chan struct{}

func (s sem) acquire() { s <- struct{}{} }
func (s sem) release() { <-s }

// fanOut runs task(0..n-1) concurrently, each under a semaphore slot, and
// waits for all of them. It returns the lowest-index error so the reported
// failure is deterministic regardless of scheduling.
func fanOut(s sem, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			s.acquire()
			defer s.release()
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
