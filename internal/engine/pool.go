package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sync"

	"igpucomm/internal/soc"
)

// sem is the engine's global simulation-concurrency bound. Coordination
// goroutines (batch requests waiting on a singleflight, assembly barriers)
// run unbounded — they are cheap and mostly blocked — but every goroutine
// that actually simulates holds a slot, so the total simulation parallelism
// never exceeds Options.Workers no matter how batches, characterizations and
// explorations nest.
type sem chan struct{}

func (s sem) acquire() { s <- struct{}{} }
func (s sem) release() { <-s }

// PanicError is a panic recovered at an engine goroutine boundary, converted
// into an ordinary error so a panicking simulation task (or an injected
// panic fault) degrades into a failed request instead of killing the
// process. The original panic value and stack are preserved for logs.
type PanicError struct {
	// Value is what the task panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error summarizes the recovered panic.
func (e *PanicError) Error() string { return fmt.Sprintf("engine: recovered panic: %v", e.Value) }

// recovered converts a recover() result into a *PanicError (nil for nil).
func recovered(r any) error {
	if r == nil {
		return nil
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// socPool recycles simulated platforms across engine tasks. Building a
// platform allocates every cache level's line arrays and throws away the
// GPU's compiled-kernel cache, so a fan-out that did soc.New per task paid
// both on every model run. Reuse is safe because every model Run begins with
// soc.ResetState, which restores a fresh-platform-equivalent state by
// contract (the engine's golden equivalence test holds it to that), and
// stale compiled kernels are revalidated by content before replay.
//
// Platforms are keyed by a content hash of their config: a renamed or
// retuned config can never receive another config's platform. A task that
// fails drops its platform instead of recycling it — an aborted run can
// leave buffers allocated, and a fresh build is cheaper than reasoning about
// partially torn-down state.
type socPool struct {
	mu     sync.Mutex
	perKey int
	socs   map[string][]*soc.SoC
	order  []string // keys, oldest first; bounded by maxPoolKeys
}

// maxPoolKeys bounds how many distinct configs the pool retains platforms
// for; the oldest config's platforms are dropped past it. Sized for the
// in-tree device catalog with headroom for retuned variants.
const maxPoolKeys = 16

func newSocPool(perKey int) *socPool {
	return &socPool{perKey: perKey, socs: make(map[string][]*soc.SoC)}
}

// configKey content-hashes a platform config (CacheKey's scheme, without
// micro-benchmark params). An unencodable config yields "", which get/put
// treat as "never pool".
func configKey(cfg soc.Config) string {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// get returns an idle pooled platform for cfg, or builds one. The returned
// key recycles the platform via put.
func (p *socPool) get(cfg soc.Config) (*soc.SoC, string) {
	key := configKey(cfg)
	if key != "" {
		p.mu.Lock()
		if idle := p.socs[key]; len(idle) > 0 {
			s := idle[len(idle)-1]
			p.socs[key] = idle[:len(idle)-1]
			p.mu.Unlock()
			return s, key
		}
		p.mu.Unlock()
	}
	return soc.New(cfg), key
}

// put returns a platform to the pool. A failed task passes its error so the
// platform is dropped rather than recycled.
func (p *socPool) put(key string, s *soc.SoC, err error) {
	if key == "" || s == nil || err != nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idle, known := p.socs[key]
	if len(idle) >= p.perKey {
		return
	}
	if !known {
		if len(p.order) >= maxPoolKeys {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.socs, oldest)
		}
		p.order = append(p.order, key)
	}
	p.socs[key] = append(idle, s)
}

// fanOut runs task(0..n-1) concurrently, each under a semaphore slot, and
// waits for all of them. It returns the lowest-index error so the reported
// failure is deterministic regardless of scheduling. A task that panics is
// recovered into a *PanicError; a context already cancelled when a task's
// slot frees up skips the task and reports the context's error.
func fanOut(ctx context.Context, s sem, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if err := recovered(recover()); err != nil {
					errs[i] = err
				}
			}()
			s.acquire()
			defer s.release()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
