package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// sem is the engine's global simulation-concurrency bound. Coordination
// goroutines (batch requests waiting on a singleflight, assembly barriers)
// run unbounded — they are cheap and mostly blocked — but every goroutine
// that actually simulates holds a slot, so the total simulation parallelism
// never exceeds Options.Workers no matter how batches, characterizations and
// explorations nest.
type sem chan struct{}

func (s sem) acquire() { s <- struct{}{} }
func (s sem) release() { <-s }

// PanicError is a panic recovered at an engine goroutine boundary, converted
// into an ordinary error so a panicking simulation task (or an injected
// panic fault) degrades into a failed request instead of killing the
// process. The original panic value and stack are preserved for logs.
type PanicError struct {
	// Value is what the task panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error summarizes the recovered panic.
func (e *PanicError) Error() string { return fmt.Sprintf("engine: recovered panic: %v", e.Value) }

// recovered converts a recover() result into a *PanicError (nil for nil).
func recovered(r any) error {
	if r == nil {
		return nil
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// fanOut runs task(0..n-1) concurrently, each under a semaphore slot, and
// waits for all of them. It returns the lowest-index error so the reported
// failure is deterministic regardless of scheduling. A task that panics is
// recovered into a *PanicError; a context already cancelled when a task's
// slot frees up skips the task and reports the context's error.
func fanOut(ctx context.Context, s sem, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if err := recovered(recover()); err != nil {
					errs[i] = err
				}
			}()
			s.acquire()
			defer s.release()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
