package engine

import (
	"context"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
)

// Per-role cache accounting and the export/put warm-handoff surface: a fleet
// replica classifies keys owned vs remote and hands entries to peers without
// touching disk.
func TestCacheRolesAndExportPut(t *testing.T) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	p := microbench.TestParams()
	key, err := CacheKey(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	roleOf := func(k string) string {
		if k == key {
			return "owned"
		}
		return "remote"
	}
	e := New(Options{Workers: 2, KeyRole: roleOf})
	ctx := context.Background()

	// Cold run: one miss, then a warm hit, both under the owned role.
	if _, err := e.Characterize(ctx, cfg, p); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Characterize(ctx, cfg, p); err != nil {
		t.Fatal(err)
	}
	roles := e.Stats().CharacterizationsByRole
	if roles == nil {
		t.Fatal("no per-role stats despite a KeyRole classifier")
	}
	owned := roles["owned"]
	if owned.Hits != 1 || owned.Misses != 1 || owned.Entries != 1 {
		t.Fatalf("owned role = %+v, want 1 hit / 1 miss / 1 entry", owned)
	}
	if owned.HitRate != 0.5 {
		t.Fatalf("owned hit rate = %v, want 0.5", owned.HitRate)
	}
	if remote, ok := roles["remote"]; ok && (remote.Hits+remote.Misses+uint64(remote.Entries)) != 0 {
		t.Fatalf("remote role = %+v, want untouched", remote)
	}

	// Export the cache and warm a second engine with it: the handoff target
	// must answer from cache without a single execution.
	exported := e.CacheExport()
	if len(exported) != 1 {
		t.Fatalf("exported %d entries, want 1", len(exported))
	}
	char, ok := exported[key]
	if !ok || char.Platform != cfg.Name {
		t.Fatalf("exported entry for %s missing or wrong: %+v", key, char)
	}

	e2 := New(Options{Workers: 2})
	e2.CachePut("", char) // no-op, must not panic or insert
	e2.CachePut(key, char)
	if _, err := e2.Characterize(ctx, cfg, p); err != nil {
		t.Fatal(err)
	}
	st2 := e2.Stats()
	if st2.Characterizations.Executions != 0 || st2.Characterizations.Hits != 1 {
		t.Fatalf("warm-started engine stats = %+v, want pure cache hit", st2.Characterizations)
	}
	if st2.Characterizations.Entries != 1 {
		t.Fatalf("warm-started engine holds %d entries, want 1", st2.Characterizations.Entries)
	}
	// No classifier: the per-role section must be absent, keeping the
	// pre-fleet JSON shape.
	if st2.CharacterizationsByRole != nil {
		t.Fatalf("per-role stats present without classifier: %+v", st2.CharacterizationsByRole)
	}
}
