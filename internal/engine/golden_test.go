package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
)

// TestGoldenCharacterizeMatchesSerial holds the engine to its correctness
// contract: for every catalog device, the parallel Characterize must be
// byte-identical — through the persist serialization, so every field counts —
// to the serial framework.Characterize it replaces.
func TestGoldenCharacterizeMatchesSerial(t *testing.T) {
	p := microbench.TestParams()
	e := New(Options{Workers: 4})
	for _, cfg := range devices.All() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			serial, err := framework.Characterize(context.Background(), soc.New(cfg), p)
			if err != nil {
				t.Fatal(err)
			}
			par, err := e.Characterize(context.Background(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			want := marshalChar(t, serial)
			got := marshalChar(t, par)
			if !bytes.Equal(got, want) {
				t.Errorf("parallel characterization of %s diverges from serial:\nserial: %s\nengine: %s",
					cfg.Name, want, got)
			}
		})
	}
}

// TestGoldenExploreMatchesSerial runs every device x app x model combination
// (3 x 3 x 5 = 45) through both the serial framework.Explore and the engine's
// parallel Explore and requires byte-identical JSON — same measurements, same
// ranking, same tie-breaks.
func TestGoldenExploreMatchesSerial(t *testing.T) {
	models := comm.AllModels()
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			cfg, app := cfg, app
			t.Run(cfg.Name+"/"+app, func(t *testing.T) {
				w, err := catalog.ByName(app, catalog.Quick)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := framework.Explore(soc.New(cfg), w, models)
				if err != nil {
					t.Fatal(err)
				}
				e := New(Options{Workers: 4})
				par, err := e.Explore(context.Background(), cfg, w, models)
				if err != nil {
					t.Fatal(err)
				}
				want, err := json.Marshal(serial)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(par)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("parallel exploration diverges from serial:\nserial: %s\nengine: %s", want, got)
				}
			})
		}
	}
}

// TestGoldenAdviseMatchesSerial checks the full advisory path end to end: the
// engine's Advise must agree with the serial Characterize+AdviseWorkload
// composition for every device x app pair.
func TestGoldenAdviseMatchesSerial(t *testing.T) {
	p := microbench.TestParams()
	e := New(Options{Workers: 4})
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			cfg, app := cfg, app
			t.Run(cfg.Name+"/"+app, func(t *testing.T) {
				w, err := catalog.ByName(app, catalog.Quick)
				if err != nil {
					t.Fatal(err)
				}
				char, err := framework.Characterize(context.Background(), soc.New(cfg), p)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := framework.AdviseWorkload(context.Background(), char, soc.New(cfg), w, "sc")
				if err != nil {
					t.Fatal(err)
				}
				par, err := e.Advise(context.Background(), Request{Config: cfg, Params: p, Workload: w, Current: "sc"})
				if err != nil {
					t.Fatal(err)
				}
				want, err := json.Marshal(serial)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(par)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("parallel advice diverges from serial:\nserial: %s\nengine: %s", want, got)
				}
			})
		}
	}
}

func marshalChar(t *testing.T, char framework.Characterization) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := framework.SaveCharacterization(&buf, char); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
