package engine

import (
	"context"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
)

// The sweep benchmarks answer the PR's headline question: how much faster is
// the engine than the serial seed path on the full 3-device x 3-app x
// 3-current-model advisory sweep (27 requests)? The serial path characterizes
// per request (27 simulations); the engine's memo cache collapses that to one
// characterization per device (3), sharing each across the 9 requests that
// need it. Run with -benchtime=1x: one iteration is the whole sweep.

// sweepRequests builds the 27-point sweep.
func sweepRequests(b *testing.B, p microbench.Params) []Request {
	b.Helper()
	var reqs []Request
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			w, err := catalog.ByName(app, catalog.Quick)
			if err != nil {
				b.Fatal(err)
			}
			for _, cur := range []string{"sc", "um", "zc"} {
				reqs = append(reqs, Request{Config: cfg, Params: p, Workload: w, Current: cur})
			}
		}
	}
	return reqs
}

func BenchmarkSweepSerial(b *testing.B) {
	p := microbench.TestParams()
	reqs := sweepRequests(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			char, err := framework.Characterize(context.Background(), soc.New(req.Config), req.Params)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := framework.AdviseWorkload(context.Background(), char, soc.New(req.Config), req.Workload, req.Current); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSweepEngine(b *testing.B) {
	p := microbench.TestParams()
	reqs := sweepRequests(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Options{}) // cold cache every iteration
		for _, res := range e.AdviseBatch(context.Background(), reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// The cold/warm pair isolates what the cache is worth under the paper's real
// micro-benchmark scale (DefaultParams — the characterization that dominates
// a cold request). Cold rebuilds the engine every iteration; warm reuses one
// whose cache already holds all three devices, so only profiling remains.

func BenchmarkAdviseBatchCold(b *testing.B) {
	p := microbench.DefaultParams()
	reqs := sweepRequests(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Options{})
		for _, res := range e.AdviseBatch(context.Background(), reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

func BenchmarkAdviseBatchWarm(b *testing.B) {
	p := microbench.DefaultParams()
	reqs := sweepRequests(b, p)
	e := New(Options{})
	for _, res := range e.AdviseBatch(context.Background(), reqs) { // prime the cache
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range e.AdviseBatch(context.Background(), reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkCharacterizeSerial/Engine compare one device characterization at
// the paper's scale: the engine fans the micro-benchmark sweep points out
// across clones, so this isolates raw parallelism (on multi-core hosts) from
// the memoization the sweep benchmarks measure.

func BenchmarkCharacterizeSerial(b *testing.B) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		b.Fatal(err)
	}
	p := microbench.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := framework.Characterize(context.Background(), soc.New(cfg), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacterizeEngine(b *testing.B) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		b.Fatal(err)
	}
	p := microbench.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Options{})
		if _, err := e.Characterize(context.Background(), cfg, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreEngine measures the parallel brute-force ranking of all
// five models against the serial seed path.

func BenchmarkExploreSerial(b *testing.B) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		b.Fatal(err)
	}
	w, err := catalog.ByName("shwfs", catalog.Quick)
	if err != nil {
		b.Fatal(err)
	}
	models := comm.AllModels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := framework.Explore(soc.New(cfg), w, models); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreEngine(b *testing.B) {
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		b.Fatal(err)
	}
	w, err := catalog.ByName("shwfs", catalog.Quick)
	if err != nil {
		b.Fatal(err)
	}
	models := comm.AllModels()
	e := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explore(context.Background(), cfg, w, models); err != nil {
			b.Fatal(err)
		}
	}
}
