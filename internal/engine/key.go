package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
)

// cacheKeyEnvelope is what gets hashed. Both members are plain exported
// data, and encoding/json emits struct fields in declaration order and map
// keys sorted, so the encoding — and therefore the key — is deterministic
// for equal inputs.
type cacheKeyEnvelope struct {
	// Version bumps whenever the characterization semantics change, so a
	// persisted warm-start cache from an older engine can never satisfy a
	// newer engine's lookups.
	Version int               `json:"version"`
	Config  soc.Config        `json:"config"`
	Params  microbench.Params `json:"params"`
}

// cacheKeyVersion mirrors the persist format's notion of "same physics":
// bump it together with framework's persistFormatVersion.
const cacheKeyVersion = 1

// CacheKey derives the content-hash cache key for characterizing a platform
// configuration with the given micro-benchmark parameters. Two (config,
// params) pairs collide exactly when their characterizations are
// interchangeable: the platform name is part of the config, but so is every
// physical parameter, so renamed-but-identical and same-named-but-retuned
// configs both hash apart.
func CacheKey(cfg soc.Config, p microbench.Params) (string, error) {
	raw, err := json.Marshal(cacheKeyEnvelope{Version: cacheKeyVersion, Config: cfg, Params: p})
	if err != nil {
		return "", fmt.Errorf("engine: hash cache key: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
