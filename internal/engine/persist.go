package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"igpucomm/internal/faults"
	"igpucomm/internal/framework"
)

// Cache persistence: each cached characterization is written as one file,
// named by its cache key, in the exact format framework.SaveCharacterization
// defines — so the files are interchangeable with cmd/advisor's -char files
// and inherit the persist format's versioning (a stale cache fails loudly at
// load instead of silently advising from old physics).
//
// Crash safety: every entry is written to a temp file in the same directory
// and atomically renamed into place, so a crash mid-write never leaves a
// half-written entry under the final name. Each entry also gets a
// <key>.json.sha256 sidecar carrying the payload's checksum; at warm start a
// missing-checksum, checksum-mismatched or undecodable entry is quarantined
// (skipped, logged, counted in Stats.CacheCorruptEntries) instead of
// aborting the load.

// checksumSuffix names the per-entry checksum sidecar files.
const checksumSuffix = ".sha256"

// SaveCache writes every live characterization entry into dir (created if
// missing) as <key>.json plus a <key>.json.sha256 checksum sidecar, each via
// an atomic temp-file + rename. It returns the number of entries written.
func (e *Engine) SaveCache(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("engine: save cache: %w", err)
	}
	entries := e.chars.dump()
	n := 0
	for key, char := range entries {
		if err := faults.Fire(faultCacheStore); err != nil {
			return n, fmt.Errorf("engine: save cache entry %s: %w", key, err)
		}
		var buf bytes.Buffer
		if err := framework.SaveCharacterization(&buf, char); err != nil {
			return n, fmt.Errorf("engine: save cache entry %s: %w", key, err)
		}
		payload := buf.Bytes()
		if err := writeAtomic(filepath.Join(dir, key+".json"), payload); err != nil {
			return n, fmt.Errorf("engine: save cache entry %s: %w", key, err)
		}
		sum := sha256.Sum256(payload)
		sumLine := []byte(hex.EncodeToString(sum[:]) + "\n")
		if err := writeAtomic(filepath.Join(dir, key+".json"+checksumSuffix), sumLine); err != nil {
			return n, fmt.Errorf("engine: save cache entry %s: %w", key, err)
		}
		n++
	}
	return n, nil
}

// writeAtomic writes data to path via a same-directory temp file, fsync and
// rename, so readers only ever observe absent or complete files.
func writeAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCache warm-starts the characterization cache from a directory written
// by SaveCache. Every *.json file is checked against its checksum sidecar
// (when present) and validated through framework.LoadCharacterization; a
// corrupt entry — torn bytes, checksum mismatch, undecodable or
// version-mismatched payload — is quarantined: skipped, logged and counted
// in Stats.CacheCorruptEntries. All healthy entries still load. It returns
// the number of entries loaded; the error reports directory-level failures
// only.
func (e *Engine) LoadCache(dir string) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, fmt.Errorf("engine: load cache: %w", err)
	}
	n := 0
	for _, name := range names {
		char, err := loadEntry(name)
		if err != nil {
			e.cacheCorrupt.Add(1)
			slog.Warn("engine: quarantined corrupt cache entry",
				"entry", filepath.Base(name), "err", err)
			continue
		}
		key := strings.TrimSuffix(filepath.Base(name), ".json")
		e.chars.put(key, char)
		n++
	}
	return n, nil
}

// loadEntry reads, checksums and decodes one cache entry file.
func loadEntry(name string) (framework.Characterization, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return framework.Characterization{}, err
	}
	data, err = faults.FireData(faultCacheLoad, data)
	if err != nil {
		return framework.Characterization{}, err
	}
	if sumData, serr := os.ReadFile(name + checksumSuffix); serr == nil {
		want := strings.TrimSpace(string(sumData))
		got := sha256.Sum256(data)
		if hex.EncodeToString(got[:]) != want {
			return framework.Characterization{}, fmt.Errorf("checksum mismatch")
		}
	}
	return framework.LoadCharacterization(bytes.NewReader(data))
}
