package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"igpucomm/internal/framework"
)

// Cache persistence: each cached characterization is written as one file,
// named by its cache key, in the exact format framework.SaveCharacterization
// defines — so the files are interchangeable with cmd/advisor's -char files
// and inherit the persist format's versioning (a stale cache fails loudly at
// load instead of silently advising from old physics).

// SaveCache writes every live characterization entry into dir (created if
// missing) as <key>.json. It returns the number of entries written.
func (e *Engine) SaveCache(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("engine: save cache: %w", err)
	}
	entries := e.chars.dump()
	n := 0
	for key, char := range entries {
		f, err := os.Create(filepath.Join(dir, key+".json"))
		if err != nil {
			return n, fmt.Errorf("engine: save cache: %w", err)
		}
		err = framework.SaveCharacterization(f, char)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return n, fmt.Errorf("engine: save cache entry %s: %w", key, err)
		}
		n++
	}
	return n, nil
}

// LoadCache warm-starts the characterization cache from a directory written
// by SaveCache. Every *.json file is validated through
// framework.LoadCharacterization; any malformed or version-mismatched file
// fails the load. It returns the number of entries loaded.
func (e *Engine) LoadCache(dir string) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, fmt.Errorf("engine: load cache: %w", err)
	}
	n := 0
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			return n, fmt.Errorf("engine: load cache: %w", err)
		}
		char, err := framework.LoadCharacterization(f)
		f.Close()
		if err != nil {
			return n, fmt.Errorf("engine: load cache entry %s: %w", filepath.Base(name), err)
		}
		key := strings.TrimSuffix(filepath.Base(name), ".json")
		e.chars.put(key, char)
		n++
	}
	return n, nil
}
