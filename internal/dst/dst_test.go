package dst

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	dstSeed = flag.Int64("dst.seed", -1,
		"replay one DST seed instead of sweeping (the replay command in a repro artifact)")
	dstSeeds = flag.Int("dst.seeds", 0,
		"seeds to sweep in TestDSTSeedSweep (0: 200)")
	dstBug = flag.String("dst.bug", "",
		"plant a named bug during the run (e.g. ack-before-install)")
)

func sweepSize() int {
	if *dstSeeds > 0 {
		return *dstSeeds
	}
	return 200
}

// failRun reports a failing run: shrink it, emit the repro artifact (to
// $DST_ARTIFACT when set), and fail the test with the replay command.
func failRun(t *testing.T, opt Options, rep *Report) {
	t.Helper()
	shrunk, shrunkRep, err := Shrink(opt, rep)
	if err != nil {
		t.Logf("shrink failed (%v); reporting the unshrunk schedule", err)
		shrunk, shrunkRep = rep.Schedule, rep
	}
	art := NewArtifact(opt, shrunkRep)
	if path := os.Getenv("DST_ARTIFACT"); path != "" {
		if werr := WriteArtifact(path, art); werr != nil {
			t.Logf("write artifact %s: %v", path, werr)
		} else {
			t.Logf("repro artifact written to %s", path)
		}
	}
	t.Logf("shrunk schedule (%d of %d events):", len(shrunk.Events), len(rep.Schedule.Events))
	for _, ev := range shrunk.Events {
		t.Logf("  %s", ev)
	}
	for _, v := range shrunkRep.Violations {
		t.Errorf("%s", v)
	}
	t.Fatalf("seed %d violated invariants; replay: %s", opt.Seed, art.Replay)
}

// TestDSTSeedSweep is the harness's front door: K seeded fleet scenarios,
// every step invariant-checked, entirely in virtual time. With -dst.seed it
// replays exactly one seed (plus -dst.bug to re-plant a bug), which is what
// a repro artifact's replay command invokes.
func TestDSTSeedSweep(t *testing.T) {
	if *dstSeed >= 0 {
		opt := Options{Seed: *dstSeed, Bug: *dstBug, Trace: testWriter{t}}
		rep, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: calls=%d errors=%d degraded=%d virtual=%s",
			rep.Seed, rep.Calls, rep.CallErrors, rep.Degraded, rep.VirtualElapsed)
		if rep.Failed() {
			failRun(t, opt, rep)
		}
		return
	}
	// Runs are individually deterministic, so the sweep fans out across
	// cores; the lowest failing seed is re-run sequentially for its repro
	// so the reported failure is stable regardless of scheduling.
	seeds := make(chan int64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	failedSeed := int64(-1)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				rep, err := Run(Options{Seed: seed, Bug: *dstBug, Parallel: true})
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("seed %d: %w", seed, err)
				}
				if err == nil && rep.Failed() && (failedSeed < 0 || seed < failedSeed) {
					failedSeed = seed
				}
				mu.Unlock()
			}
		}()
	}
	for seed := int64(1); seed <= int64(sweepSize()); seed++ {
		seeds <- seed
	}
	close(seeds)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if failedSeed >= 0 {
		opt := Options{Seed: failedSeed, Bug: *dstBug}
		rep, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Failed() {
			t.Fatalf("seed %d failed in the sweep but not sequentially — a run is not self-contained", failedSeed)
		}
		failRun(t, opt, rep)
	}
}

// TestDSTDeterminism is the property everything else rests on: the same
// seed must produce byte-identical reports, violations included.
func TestDSTDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, a, b)
		}
	}
}

// TestDSTRunsInVirtualTime pins the harness's reason to exist: a scenario
// that spans minutes of simulated time must finish in a fraction of a
// second of wall clock.
func TestDSTRunsInVirtualTime(t *testing.T) {
	wallStart := time.Now()
	rep, err := Run(Options{Seed: 3})
	wall := time.Since(wallStart)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed 3 violated invariants: %v", rep.Violations)
	}
	if rep.Calls != 8 {
		t.Fatalf("ran %d workload steps, want 8", rep.Calls)
	}
	if wall > 5*time.Second {
		t.Fatalf("run took %s of wall clock — virtual time is leaking into real sleeps", wall)
	}
}

// TestDSTCatchesInjectedBug is the harness's acceptance test: plant an
// ack-before-durable-write bug in the warm-handoff path and require the
// seed sweep to catch it, the shrinker to keep the failure while removing
// events, and the shrunk schedule to replay identically.
func TestDSTCatchesInjectedBug(t *testing.T) {
	var failing *Report
	var opt Options
	for seed := int64(1); seed <= 200; seed++ {
		o := Options{Seed: seed, Bug: BugAckBeforeInstall}
		rep, err := Run(o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			failing, opt = rep, o
			break
		}
	}
	if failing == nil {
		t.Fatal("ack-before-install bug survived 200 seeds — the harness is blind to lost handoff entries")
	}
	t.Logf("bug caught by seed %d at step %d", failing.Seed, failing.Violations[0].Step)

	found := false
	for _, v := range failing.Violations {
		if v.Invariant == "handoff-acked-entry-lost" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bug caught, but by the wrong invariant: %v", failing.Violations)
	}

	shrunk, shrunkRep, err := Shrink(opt, failing)
	if err != nil {
		t.Fatal(err)
	}
	if !shrunkRep.Failed() {
		t.Fatal("shrinker returned a passing schedule")
	}
	if len(shrunk.Events) > len(failing.Schedule.Events) {
		t.Fatalf("shrinker grew the schedule: %d -> %d events",
			len(failing.Schedule.Events), len(shrunk.Events))
	}
	// The shrunk schedule must replay: same violations, twice in a row.
	ropt := opt
	ropt.Schedule = &shrunk
	again, err := Run(ropt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Violations, shrunkRep.Violations) {
		t.Fatalf("shrunk schedule does not replay:\n first %v\nsecond %v",
			shrunkRep.Violations, again.Violations)
	}
}

// TestDSTReplayAckBeforeInstall is the committed repro from the injected
// ack-before-install bug hunt: seed 3's schedule drives a crash, restart
// and warm handoff on shard-2, and the bug loses acknowledged entries. The
// same seed must fail at the same step on every run, with zero wall-clock
// sleeps — this is the artifact replay workflow, pinned in CI.
func TestDSTReplayAckBeforeInstall(t *testing.T) {
	const seed = 3
	var steps []int
	wallStart := time.Now()
	for run := 0; run < 2; run++ {
		rep, err := Run(Options{Seed: seed, Bug: BugAckBeforeInstall})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Failed() {
			t.Fatalf("run %d: seed %d no longer reproduces the bug", run, seed)
		}
		if inv := rep.Violations[0].Invariant; inv != "handoff-acked-entry-lost" {
			t.Fatalf("run %d: first violation is %q, want handoff-acked-entry-lost", run, inv)
		}
		steps = append(steps, rep.Violations[0].Step)
	}
	if steps[0] != steps[1] {
		t.Fatalf("failing step moved between identical runs: %d then %d", steps[0], steps[1])
	}
	if wall := time.Since(wallStart); wall > 2*time.Second {
		t.Fatalf("replay took %s — a repro must not sleep on the wall clock", wall)
	}
}

// testWriter adapts t.Logf for runner traces.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func TestGenerateIsPure(t *testing.T) {
	a := Generate(99, 3, 8)
	b := Generate(99, 3, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not a pure function of its arguments")
	}
	if len(a.Events) < 2 {
		t.Fatalf("schedule has %d events, want >= 2", len(a.Events))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Step < a.Events[i-1].Step {
			t.Fatalf("events out of order: %v", a.Events)
		}
	}
}

func TestReplayCommand(t *testing.T) {
	want := "go test ./internal/dst -run TestDSTSeedSweep -dst.seed=17"
	if got := ReplayCommand(17); got != want {
		t.Fatalf("ReplayCommand = %q, want %q", got, want)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	path := t.TempDir() + "/artifact.json"
	rep := &Report{Seed: 5, Schedule: Generate(5, 3, 8),
		Violations: []Violation{{Step: 2, Invariant: "x", Detail: "y"}}}
	if err := WriteArtifact(path, NewArtifact(Options{Seed: 5}, rep)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seed": 5`, `"invariant": "x"`, ReplayCommand(5)} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("artifact missing %q:\n%s", want, data)
		}
	}
}
