package dst

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Automatic schedule shrinking: a failing seed usually fails because of one
// or two of its events, and a two-event repro reads in seconds where a
// seven-event one reads in minutes. The shrinker is greedy delta-debugging
// over the event list — drop one event at a time, keep the drop when the
// run still violates an invariant, repeat to fixpoint — followed by a
// delay-halving pass so latency faults end up at the smallest magnitude
// that still reproduces. Every candidate is a full deterministic run, so
// the shrunk schedule is guaranteed failing, not heuristically likely.

// shrinkBudget bounds total candidate runs during a shrink; each run is
// milliseconds of wall clock, so 200 keeps a worst-case shrink well under a
// second without ever abandoning a realistic schedule mid-pass.
const shrinkBudget = 200

// Shrink minimizes a failing run's schedule. opt must be the exact options
// of the failing run (the shrinker overrides only Schedule). It returns the
// minimized schedule and the report of its final failing run.
func Shrink(opt Options, failing *Report) (Schedule, *Report, error) {
	opt.applyDefaults()
	opt.Trace = nil
	best := failing.Schedule
	bestRep := failing
	runs := 0

	tryWith := func(cand Schedule) (*Report, bool) {
		if runs >= shrinkBudget {
			return nil, false
		}
		runs++
		o := opt
		o.Schedule = &cand
		rep, err := Run(o)
		if err != nil || !rep.Failed() {
			return nil, false
		}
		return rep, true
	}

	// Pass 1 to fixpoint: drop single events.
	for changed := true; changed && runs < shrinkBudget; {
		changed = false
		for i := 0; i < len(best.Events); i++ {
			cand := best
			cand.Events = append(append([]Event{}, best.Events[:i]...), best.Events[i+1:]...)
			if rep, ok := tryWith(cand); ok {
				best, bestRep = cand, rep
				changed = true
				i-- // the slot now holds the next event; retry it
			}
		}
	}

	// Pass 2: halve link delays while the failure survives — a 3ms delay
	// repro is a better bug report than a 190ms one.
	for i := range best.Events {
		for pass := 0; pass < 4 && best.Events[i].Delay > time.Millisecond; pass++ {
			cand := best
			cand.Events = append([]Event{}, best.Events...)
			cand.Events[i].Delay /= 2
			rep, ok := tryWith(cand)
			if !ok {
				break
			}
			best, bestRep = cand, rep
		}
	}
	return best, bestRep, nil
}

// Artifact is the minimized repro document a failing DST run emits: enough
// to refile the bug and to replay it — the schedule is the full input, the
// replay command reruns it from the seed alone.
type Artifact struct {
	Seed       int64       `json:"seed"`
	Bug        string      `json:"bug,omitempty"`
	Schedule   Schedule    `json:"schedule"`
	Violations []Violation `json:"violations"`
	// Replay is the exact command that reproduces this failure.
	Replay string `json:"replay"`
}

// ReplayCommand is the go test invocation that replays one seed.
func ReplayCommand(seed int64) string {
	return fmt.Sprintf("go test ./internal/dst -run TestDSTSeedSweep -dst.seed=%d", seed)
}

// NewArtifact assembles the repro artifact for a (possibly shrunk) failing
// report.
func NewArtifact(opt Options, rep *Report) Artifact {
	return Artifact{
		Seed:       opt.Seed,
		Bug:        opt.Bug,
		Schedule:   rep.Schedule,
		Violations: rep.Violations,
		Replay:     ReplayCommand(opt.Seed),
	}
}

// WriteArtifact writes the artifact as indented JSON to path, creating or
// truncating it.
func WriteArtifact(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
