// Package dst is the deterministic simulation test (DST) harness over the
// advisord fleet: it boots N in-process shards plus a routing client on a
// virtual clock (internal/simnet), runs the storm workload entirely in
// virtual time under a seeded schedule of failures — link drops, delays,
// duplicates, one-way response losses, partitions, shard crash/restart,
// drain, warm handoff, injected engine faults — and checks global
// invariants after every step. A failing seed is shrunk automatically to a
// minimal schedule and emitted as a repro artifact with a replay command,
// so a CI failure is reproducible from its log line alone.
package dst

import (
	"fmt"
	"math/rand"
	"time"
)

// Event kinds a schedule can contain.
const (
	// EvCrash kills a shard: its handler unregisters from the network and
	// its cache (and acked-handoff bookkeeping) is forgotten.
	EvCrash = "crash"
	// EvRestart reboots a crashed shard with a fresh engine, warm-started
	// with the device characterizations (as a disk warm start would) but
	// without any handoff freight.
	EvRestart = "restart"
	// EvPartition cuts the directed link From -> To.
	EvPartition = "partition"
	// EvHeal clears every partition and every link fault.
	EvHeal = "heal"
	// EvLink installs a probabilistic fault profile on the directed link
	// From -> To: request drops, response losses (one-way link),
	// duplicates, added virtual latency.
	EvLink = "link"
	// EvDrain sets a shard draining (503 + Retry-After on /v1 traffic);
	// EvUndrain clears it.
	EvDrain   = "drain"
	EvUndrain = "undrain"
	// EvHandoff warm-pulls the entries a shard owns from its peers — the
	// operation the no-acked-entry-lost invariant audits.
	EvHandoff = "handoff"
	// EvFault activates a seeded internal/faults plan erroring the
	// advisord.fleet.export point (handoff streams fail server-side);
	// EvFaultHeal deactivates it.
	EvFault     = "fault"
	EvFaultHeal = "fault-heal"
)

// Event is one scheduled failure. Step indexes the workload step before
// which the event applies.
type Event struct {
	Step int    `json:"step"`
	Kind string `json:"kind"`
	// Shard is the target shard index for crash/restart/drain/undrain/
	// handoff events.
	Shard int `json:"shard,omitempty"`
	// From and To name link endpoints for partition/link events: "client"
	// or a shard host.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Link fault knobs (EvLink).
	Drop     float64       `json:"drop,omitempty"`
	RespLoss float64       `json:"resp_loss,omitempty"`
	Dup      float64       `json:"dup,omitempty"`
	Delay    time.Duration `json:"delay,omitempty"`
}

// String renders the event for trace logs.
func (e Event) String() string {
	switch e.Kind {
	case EvPartition, EvLink:
		return fmt.Sprintf("step %d: %s %s->%s drop=%.2f loss=%.2f dup=%.2f delay=%s",
			e.Step, e.Kind, e.From, e.To, e.Drop, e.RespLoss, e.Dup, e.Delay)
	default:
		return fmt.Sprintf("step %d: %s shard=%d", e.Step, e.Kind, e.Shard)
	}
}

// Schedule is a seeded failure schedule: the full input of one DST run
// (alongside the runner options), and the unit shrinking minimizes.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Shards int     `json:"shards"`
	Steps  int     `json:"steps"`
	Events []Event `json:"events"`
}

// Generate derives the failure schedule for a seed: a handful of events at
// random steps, kinds weighted so churn (links, handoffs, crashes) is
// common and permanent outages are possible but rare. Pure function of its
// arguments.
func Generate(seed int64, shards, steps int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed, Shards: shards, Steps: steps}
	n := 2 + rng.Intn(5)
	endpoint := func() string {
		if rng.Intn(3) == 0 {
			return "client"
		}
		return hostOf(rng.Intn(shards))
	}
	for i := 0; i < n; i++ {
		ev := Event{Step: rng.Intn(steps), Shard: rng.Intn(shards)}
		switch w := rng.Intn(100); {
		case w < 25:
			ev.Kind = EvLink
			ev.From, ev.To = endpoint(), endpoint()
			// One knob per fault keeps shrunk schedules readable.
			switch rng.Intn(4) {
			case 0:
				ev.Drop = 0.3 + 0.6*rng.Float64()
			case 1:
				ev.RespLoss = 0.3 + 0.6*rng.Float64()
			case 2:
				ev.Dup = 0.5 + 0.5*rng.Float64()
			case 3:
				ev.Delay = time.Duration(1+rng.Intn(200)) * time.Millisecond
			}
		case w < 37:
			ev.Kind = EvPartition
			ev.From, ev.To = endpoint(), endpoint()
		case w < 47:
			ev.Kind = EvHeal
		case w < 57:
			ev.Kind = EvCrash
		case w < 67:
			ev.Kind = EvRestart
		case w < 74:
			ev.Kind = EvDrain
		case w < 80:
			ev.Kind = EvUndrain
		case w < 93:
			ev.Kind = EvHandoff
		case w < 97:
			ev.Kind = EvFault
		default:
			ev.Kind = EvFaultHeal
		}
		sched.Events = append(sched.Events, ev)
	}
	sortEvents(sched.Events)
	return sched
}

// sortEvents orders events by step, stably, so application order is the
// generation order within a step.
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Step < evs[j-1].Step; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// hostOf is shard i's simnet host name.
func hostOf(i int) string { return fmt.Sprintf("shard-%d.sim", i) }

// idOf is shard i's fleet ID.
func idOf(i int) string { return fmt.Sprintf("shard-%d", i) }
