package dst

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/advisord/client"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/simnet"
	"igpucomm/internal/units"
)

// Injectable bugs the acceptance suite plants to prove the harness catches
// them. Production code paths contain none of these; the bug lives in the
// runner's handoff plumbing.
const (
	// BugAckBeforeInstall makes the warm-handoff pull acknowledge every
	// third entry without installing it — the classic
	// acked-before-durable-write bug the no-acked-entry-lost invariant
	// exists to catch.
	BugAckBeforeInstall = "ack-before-install"
)

// Options configures one DST run.
type Options struct {
	// Seed selects the failure schedule and every derived random stream.
	Seed int64
	// Shards is the fleet size (0: 3).
	Shards int
	// Steps is the number of workload steps (0: 8).
	Steps int
	// Schedule overrides the generated schedule (shrinking replays edited
	// schedules; nil: Generate(Seed, Shards, Steps)).
	Schedule *Schedule
	// Bug plants a deliberate defect (see the Bug* consts; "": none).
	Bug string
	// Trace receives per-step trace lines (nil: silent).
	Trace io.Writer
	// Parallel declares that other Runs execute concurrently in this
	// process. Each run stays individually deterministic (its virtual
	// clock is driven only by its own call stack), but the process-global
	// goroutine-leak invariant is skipped — the count would see the other
	// runs' transient goroutines.
	Parallel bool
}

func (o *Options) applyDefaults() {
	if o.Shards <= 0 {
		o.Shards = 3
	}
	if o.Steps <= 0 {
		o.Steps = 8
	}
}

// Violation is one invariant failure, anchored to the step that exposed it.
type Violation struct {
	Step      int    `json:"step"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d: invariant %q: %s", v.Step, v.Invariant, v.Detail)
}

// Report is one run's outcome.
type Report struct {
	Seed       int64       `json:"seed"`
	Schedule   Schedule    `json:"schedule"`
	Violations []Violation `json:"violations,omitempty"`
	// Calls, CallErrors and Degraded count advisory calls issued, calls
	// that failed after retries, and degraded results accepted.
	Calls      int `json:"calls"`
	CallErrors int `json:"call_errors"`
	Degraded   int `json:"degraded"`
	// VirtualElapsed is how much virtual time the run consumed; wall time
	// is orders of magnitude smaller.
	VirtualElapsed time.Duration `json:"virtual_elapsed"`
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// reference is the fault-free ground truth, computed once per process: the
// device characterizations shards warm-start with and the byte-exact
// advice a healthy fleet returns for each workload question. Advice is a
// pure function of (device, params, app), so one computation serves every
// seed.
type reference struct {
	params microbench.Params
	chars  map[string]charEntry // by device name
	advice map[string][]byte    // canonical AdviseResult JSON, by device name
	// synthetic is extra cache freight — entries that exist only to give
	// warm handoff something to move, so the acked-entry invariant has
	// real traffic to audit. Keys are spread across the ring like any
	// content-hash key.
	synthetic map[string]framework.Characterization
}

type charEntry struct {
	key  string
	char framework.Characterization
}

var (
	refOnce sync.Once
	refVal  *reference
	refErr  error
)

func loadReference() (*reference, error) {
	refOnce.Do(func() {
		params := microbench.TestParams()
		eng := engine.New(engine.Options{Workers: 2, Clock: simnet.NewSim().AutoAdvance(true)})
		ref := &reference{
			params:    params,
			chars:     make(map[string]charEntry),
			advice:    make(map[string][]byte),
			synthetic: make(map[string]framework.Characterization),
		}
		for i := 0; i < syntheticEntries; i++ {
			// Shaped like a real characterization so the handoff wire's
			// persist-format validation accepts it.
			ref.synthetic[fmt.Sprintf("dst-syn-%03d", i)] = framework.Characterization{
				Platform:            fmt.Sprintf("synthetic-%03d", i),
				Thresholds:          perfmodel.Thresholds{CPUCache: 0.10, GPUCacheLow: 0.10, GPUCacheHigh: 0.30},
				PeakGPUThroughput:   100 * units.GBps,
				PinnedGPUThroughput: 10 * units.GBps,
				ZCSCMaxSpeedup:      10,
				SCZCMaxSpeedup:      2.5,
			}
		}
		//igpulint:ignore ctxflow the reference build is a run's root; there is no caller context to thread
		ctx := context.Background()
		for _, cfg := range devices.All() {
			key, err := engine.CacheKey(cfg, params)
			if err != nil {
				refErr = err
				return
			}
			char, err := eng.Characterize(ctx, cfg, params)
			if err != nil {
				refErr = err
				return
			}
			ref.chars[cfg.Name] = charEntry{key: key, char: char}
			wl, err := catalog.ByName(dstApp, catalog.Micro)
			if err != nil {
				refErr = err
				return
			}
			rec, err := eng.AdviseWith(ctx, char, engine.Request{
				Config: cfg, Params: params, Workload: wl, Current: "sc",
			})
			if err != nil {
				refErr = err
				return
			}
			res := advisord.AdviseResult{Recommendation: &rec, Zone: rec.Zone.String()}
			data, err := json.Marshal(res)
			if err != nil {
				refErr = err
				return
			}
			ref.advice[cfg.Name] = data
		}
		refVal = ref
	})
	return refVal, refErr
}

// dstApp is the catalog workload every advisory question asks about.
const dstApp = "shwfs"

// syntheticEntries is how much synthetic cache freight every shard carries
// for handoff to move.
const syntheticEntries = 30

// shard is one simulated advisord replica.
type shard struct {
	idx  int
	id   string
	host string
	st   *fleet.State
	eng  *engine.Engine
	down bool
	// acked tracks handoff entries this shard acknowledged; the
	// no-acked-entry-lost invariant holds the cache to it. Cleared on
	// crash — a dead shard owes nothing.
	acked map[string]bool
}

// runner is one run's live state.
type runner struct {
	opt     Options
	sched   Schedule
	sim     *simnet.Sim
	nw      *simnet.Network
	ref     *reference
	members []fleet.Shard
	shards  []*shard
	router  *fleet.Router
	cl      *client.Client
	rep     *Report

	// slept accumulates the client's virtual backoff per call, for the
	// retry-budget invariant.
	slept time.Duration
	// budget is the client's configured per-retry-sequence budget.
	budget time.Duration
	// lastRouterVersion and lastShardVersion feed the
	// topology-monotonic invariant.
	lastRouterVersion int64
	lastShardVersion  []int64
	// handoffSeq drives the deterministic ack-before-install bug.
	handoffSeq int
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// Run executes one full DST scenario in virtual time and returns its
// report. The scenario is strictly sequential — one workload call at a
// time, handlers inline on the caller's goroutine, the virtual clock driven
// by whoever sleeps — which is what makes the run a pure function of
// (Options, Schedule).
func Run(opt Options) (*Report, error) {
	opt.applyDefaults()
	ref, err := loadReference()
	if err != nil {
		return nil, fmt.Errorf("dst: reference: %w", err)
	}
	sched := Generate(opt.Seed, opt.Shards, opt.Steps)
	if opt.Schedule != nil {
		sched = *opt.Schedule
	}
	// The injected faults plan is process-global; a schedule that touches
	// it runs exclusively, everyone else shares. Exclusive runs also clean
	// up after themselves so no plan leaks into the next run.
	if usesFaultPlan(sched) {
		faultPlanMu.Lock()
		defer faultPlanMu.Unlock()
		defer faults.Deactivate()
	} else {
		faultPlanMu.RLock()
		defer faultPlanMu.RUnlock()
	}

	goroutinesBefore := runtime.NumGoroutine()

	r := &runner{
		opt:   opt,
		sched: sched,
		sim:   simnet.NewSim().AutoAdvance(true),
		ref:   ref,
		rep:   &Report{Seed: opt.Seed, Schedule: sched},
	}
	r.nw = simnet.NewNetwork(r.sim, opt.Seed)
	start := r.sim.Now()

	for i := 0; i < opt.Shards; i++ {
		r.members = append(r.members, fleet.Shard{ID: idOf(i), URL: "http://" + hostOf(i)})
	}
	for i := 0; i < opt.Shards; i++ {
		sh, err := r.bootShard(i, true)
		if err != nil {
			return nil, err
		}
		r.shards = append(r.shards, sh)
	}
	r.lastShardVersion = make([]int64, opt.Shards)

	r.router, err = fleet.NewRouter(fleet.RouterOptions{
		Shards:           r.members,
		FailureThreshold: 2,
		Cooldown:         2 * time.Second,
		Clock:            r.sim,
	})
	if err != nil {
		return nil, err
	}
	r.budget = 2 * time.Second
	r.cl = client.New(client.Options{
		HTTPClient:         r.nw.Client("client"),
		Fleet:              r.router,
		Params:             ref.params,
		Clock:              r.sim,
		Sleep:              r.countingSleep,
		MaxAttempts:        4,
		BaseDelay:          20 * time.Millisecond,
		MaxDelay:           250 * time.Millisecond,
		Budget:             r.budget,
		Seed:               opt.Seed ^ 0x6a5d,
		RefreshMinInterval: 500 * time.Millisecond,
	})

	devs := devices.All()
	evIdx := 0
	for step := 0; step < opt.Steps; step++ {
		for evIdx < len(sched.Events) && sched.Events[evIdx].Step <= step {
			r.applyEvent(step, sched.Events[evIdx])
			evIdx++
		}
		dev := devs[step%len(devs)].Name
		r.workloadStep(step, dev)
		r.checkTopologyMonotonic(step)
		r.checkAckedEntries(step)
	}

	r.rep.VirtualElapsed = r.sim.Since(start)
	if !opt.Parallel {
		r.checkGoroutines(goroutinesBefore)
	}
	return r.rep, nil
}

// faultPlanMu serializes runs that touch the process-global faults plan
// against everything else; fault-free runs share it and may execute in
// parallel.
var faultPlanMu sync.RWMutex

// usesFaultPlan reports whether a schedule activates the global fault
// injector.
func usesFaultPlan(sched Schedule) bool {
	for _, ev := range sched.Events {
		if ev.Kind == EvFault || ev.Kind == EvFaultHeal {
			return true
		}
	}
	return false
}

// countingSleep is the client's backoff sleep: virtual, and accounted
// toward the retry-budget invariant.
func (r *runner) countingSleep(ctx context.Context, d time.Duration) error {
	r.slept += d
	return r.sim.Sleep(ctx, d)
}

func (r *runner) tracef(format string, args ...interface{}) {
	if r.opt.Trace != nil {
		fmt.Fprintf(r.opt.Trace, format+"\n", args...)
	}
}

func (r *runner) violate(step int, invariant, format string, args ...interface{}) {
	v := Violation{Step: step, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	r.rep.Violations = append(r.rep.Violations, v)
	r.tracef("VIOLATION %s", v)
}

// bootShard builds shard i: fleet state over the full membership, an
// engine warm-started with the device characterizations (as a disk
// warm start would), and an advisord server registered on the network.
// withFreight additionally seeds the synthetic handoff cargo — true at
// fleet bringup, false on restart, so a restarted shard has lost exactly
// the entries a warm handoff exists to restore.
func (r *runner) bootShard(i int, withFreight bool) (*shard, error) {
	st, err := fleet.NewState(idOf(i), r.members, 0)
	if err != nil {
		return nil, err
	}
	eng := engine.New(engine.Options{
		Workers:      2,
		CacheEntries: 4096,
		Clock:        r.sim,
		KeyRole:      st.KeyRole,
	})
	for _, ce := range r.ref.chars {
		eng.CachePut(ce.key, ce.char)
	}
	if withFreight {
		// A shard's synthetic freight is the entries it does NOT own —
		// remote keys accumulated by serving rerouted traffic. Its owned
		// entries live on its peers until a warm handoff pulls them home,
		// which is exactly the install path the acked-entry invariant
		// audits.
		for key, char := range r.ref.synthetic {
			if !st.Owns(key) {
				eng.CachePut(key, char)
			}
		}
	}
	srv := advisord.New(eng, advisord.Options{
		Params:           r.ref.params,
		Scale:            catalog.Micro,
		Logger:           quietLogger(),
		RequestTimeout:   5 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		Clock:            r.sim,
		Fleet:            st,
	})
	sh := &shard{idx: i, id: idOf(i), host: hostOf(i), st: st, eng: eng, acked: make(map[string]bool)}
	r.nw.Register(sh.host, srv.Handler())
	return sh, nil
}

// applyEvent mutates the simulated world per one schedule event.
func (r *runner) applyEvent(step int, ev Event) {
	r.tracef("apply %s", ev)
	sh := r.shards[ev.Shard%len(r.shards)]
	switch ev.Kind {
	case EvCrash:
		r.nw.SetDown(sh.host, true)
		sh.down = true
		// A dead shard's cache — and with it every handoff ack — is gone.
		sh.acked = make(map[string]bool)
	case EvRestart:
		if !sh.down {
			return
		}
		fresh, err := r.bootShard(sh.idx, false)
		if err != nil {
			r.violate(step, "restart", "reboot %s: %v", sh.id, err)
			return
		}
		*sh = *fresh
		r.nw.SetDown(sh.host, false)
	case EvPartition:
		r.nw.SetCut(ev.From, ev.To, true)
	case EvHeal:
		for _, a := range r.endpoints() {
			for _, b := range r.endpoints() {
				r.nw.SetCut(a, b, false)
				r.nw.SetLinkFault(a, b, simnet.LinkFault{})
			}
		}
		r.nw.SetLinkFault("*", "*", simnet.LinkFault{})
	case EvLink:
		r.nw.SetLinkFault(ev.From, ev.To, simnet.LinkFault{
			DropProb:     ev.Drop,
			RespLossProb: ev.RespLoss,
			DupProb:      ev.Dup,
			Delay:        ev.Delay,
		})
	case EvDrain:
		sh.st.SetDraining(true)
	case EvUndrain:
		sh.st.SetDraining(false)
	case EvHandoff:
		r.handoff(step, sh)
	case EvFault:
		_ = faults.Activate(faults.NewPlan(r.opt.Seed,
			faults.Rule{Point: "advisord.fleet.export", Mode: faults.ModeError, Every: 2}))
	case EvFaultHeal:
		faults.Deactivate()
	}
}

// endpoints lists every network endpoint name, for EvHeal.
func (r *runner) endpoints() []string {
	out := []string{"client", "*"}
	for i := range r.shards {
		out = append(out, hostOf(i))
	}
	return out
}

// handoff warm-pulls the entries sh owns from its peers, recording every
// acknowledged key — and, under BugAckBeforeInstall, dropping every third
// install while still acknowledging it.
func (r *runner) handoff(step int, sh *shard) {
	if sh.down {
		return
	}
	put := func(key string, char framework.Characterization) {
		r.handoffSeq++
		sh.acked[key] = true
		if r.opt.Bug == BugAckBeforeInstall && r.handoffSeq%3 == 0 {
			return // acked, never installed
		}
		sh.eng.CachePut(key, char)
	}
	//igpulint:ignore ctxflow the harness is the root of its virtual world; each handoff gets a fresh root under the simulated clock
	ctx, cancel := r.sim.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rep, err := fleet.Pull(ctx, sh.st, r.nw.Client(sh.host), put)
	if err != nil {
		r.violate(step, "handoff", "pull on %s: %v", sh.id, err)
		return
	}
	r.tracef("handoff %s: pulled=%d quarantined=%d peer_errors=%v",
		sh.id, rep.Pulled, rep.Quarantined, rep.PeerErrors)
}

// workloadStep issues one advisory question and checks the per-response
// invariants: every result is complete advice or a typed error, and
// non-degraded advice is byte-identical to the fault-free reference.
func (r *runner) workloadStep(step int, device string) {
	r.slept = 0
	r.rep.Calls++
	//igpulint:ignore ctxflow the harness is the root of its virtual world; each step gets a fresh root under the simulated clock
	ctx, cancel := r.sim.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := r.cl.Advise(ctx, advisord.AdviseBody{Requests: []advisord.AdviseRequest{
		{Device: device, App: dstApp, Current: "sc"},
	}})
	if r.slept > r.budget {
		r.violate(step, "retry-budget", "client slept %s of a %s budget", r.slept, r.budget)
	}
	if err != nil {
		// A fleet that cannot answer fails loudly — acceptable under
		// faults, as long as the failure is an error, not bad advice.
		r.rep.CallErrors++
		r.tracef("step %d %s: call error: %v", step, device, err)
		return
	}
	if len(resp.Results) != 1 {
		r.violate(step, "response-shape", "%d results for 1 request", len(resp.Results))
		return
	}
	res := resp.Results[0]
	if verr := checkResult(res); verr != nil {
		r.violate(step, "typed-result", "device %s: %v", device, verr)
		return
	}
	if res.Error != "" {
		r.tracef("step %d %s: typed error %s (%s)", step, device, res.Error, res.ErrorKind)
		return
	}
	if res.Degraded {
		r.rep.Degraded++
		r.tracef("step %d %s: degraded: %s", step, device, res.DegradedReason)
		return
	}
	got, merr := json.Marshal(res)
	if merr != nil {
		r.violate(step, "advice-identity", "marshal result: %v", merr)
		return
	}
	want := r.ref.advice[device]
	if string(got) != string(want) {
		r.violate(step, "advice-identity",
			"device %s advice diverged from fault-free run:\n got %s\nwant %s", device, got, want)
	}
}

// checkResult is the typed-result invariant: complete advice (degraded only
// with a reason) or a typed error — never a half-answer.
func checkResult(res advisord.AdviseResult) error {
	if res.Error != "" {
		if res.Recommendation != nil {
			return fmt.Errorf("both error %q and a recommendation", res.Error)
		}
		if res.ErrorKind == "" {
			return fmt.Errorf("error %q lacks a kind", res.Error)
		}
		return nil
	}
	if res.Recommendation == nil || res.Recommendation.Suggested == "" || res.Zone == "" {
		return fmt.Errorf("incomplete advice %+v", res)
	}
	if res.Degraded && res.DegradedReason == "" {
		return fmt.Errorf("degraded without a reason")
	}
	return nil
}

// checkTopologyMonotonic asserts router and shard topology versions never
// move backwards.
func (r *runner) checkTopologyMonotonic(step int) {
	if v := r.router.Version(); v < r.lastRouterVersion {
		r.violate(step, "topology-monotonic", "router version %d < %d", v, r.lastRouterVersion)
	} else {
		r.lastRouterVersion = v
	}
	for i, sh := range r.shards {
		if sh.down {
			continue
		}
		if v := sh.st.Version(); v < r.lastShardVersion[i] {
			r.violate(step, "topology-monotonic", "%s version %d < %d", sh.id, v, r.lastShardVersion[i])
		} else {
			r.lastShardVersion[i] = v
		}
	}
}

// checkAckedEntries asserts no acknowledged handoff entry is missing from
// its shard's cache — the durable-write side of the handoff contract.
func (r *runner) checkAckedEntries(step int) {
	for _, sh := range r.shards {
		if sh.down || len(sh.acked) == 0 {
			continue
		}
		have := sh.eng.CacheExport()
		keys := make([]string, 0, len(sh.acked))
		for key := range sh.acked {
			keys = append(keys, key)
		}
		sort.Strings(keys) // map order must not leak into violation order
		for _, key := range keys {
			if _, ok := have[key]; !ok {
				r.violate(step, "handoff-acked-entry-lost",
					"%s acknowledged %s but does not hold it", sh.id, key)
			}
		}
	}
}

// checkGoroutines asserts the scenario leaked no goroutines: everything in
// the simulation runs inline, so whatever was running before must be all
// that is running after (transient runtime goroutines get a brief real
// grace period to exit).
func (r *runner) checkGoroutines(before int) {
	const slack = 2
	deadline := time.Now().Add(200 * time.Millisecond)
	for {
		now := runtime.NumGoroutine()
		if now <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			r.violate(r.opt.Steps-1, "goroutine-leak",
				"%d goroutines before the run, %d after", before, now)
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
