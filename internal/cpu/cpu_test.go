package cpu

import (
	"testing"

	"igpucomm/internal/cache"
	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

// testCPU builds a 1 GHz CPU (1 cycle == 1 ns, so costs read directly) with
// small caches over a 100ns DRAM and a 400ns uncached port.
func testCPU(t *testing.T) (*CPU, *memdev.DRAM) {
	t.Helper()
	d := memdev.New(memdev.Config{Name: "dram", Latency: 100, Bandwidth: 25 * units.GBps})
	cfg := Config{
		Name: "cpu",
		Freq: units.GHz,
		L1:   cache.Config{Name: "cpuL1", Size: 4 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 2},
		LLC:  cache.Config{Name: "cpuLLC", Size: 64 * units.KiB, LineSize: 64, Ways: 8, HitLatency: 10},
		Costs: isa.CostModel{Issue: map[isa.Op]units.Cycles{
			isa.LdGlobal: 1, isa.StGlobal: 1, isa.FMA: 1, isa.SqrtF32: 14, isa.DivF32: 12,
		}},
		FlushLineCost: 1,
		MemMLP:        1, // no miss overlap: latencies add exactly in tests
	}
	return New(cfg, d.NewPort("cpu-dram", -1), d.NewUncachedPort("pinned", 400)), d
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		Name: "c", Freq: units.GHz,
		L1:    cache.Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 1},
		LLC:   cache.Config{Name: "llc", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 1},
		Costs: isa.DefaultCPUCosts(),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Freq = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	bad = good
	bad.L1.Size = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad L1 accepted")
	}
	bad = good
	bad.FlushLineCost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative flush cost accepted")
	}
}

func TestComputeTiming(t *testing.T) {
	c, _ := testCPU(t)
	c.Work(isa.FMA, 10)
	if got := c.Elapsed(); got != 10 {
		t.Errorf("10 FMA at 1GHz = %vns, want 10", got)
	}
	c.ResetTime()
	c.Work(isa.SqrtF32, 2)
	if got := c.Elapsed(); got != 28 {
		t.Errorf("2 sqrt = %vns, want 28", got)
	}
}

func TestMemoryTimingColdThenWarm(t *testing.T) {
	c, _ := testCPU(t)
	c.Load(0, 4)
	// 1 issue + 2 L1 + 10 LLC + 100 DRAM = 113ns.
	if got := c.Elapsed(); got != 113 {
		t.Errorf("cold load = %vns, want 113", got)
	}
	c.ResetTime()
	c.Load(0, 4)
	// 1 issue + 2 L1 hit.
	if got := c.Elapsed(); got != 3 {
		t.Errorf("warm load = %vns, want 3", got)
	}
}

func TestUncachedRangeRouting(t *testing.T) {
	c, d := testCPU(t)
	c.AddUncachedRange(0x1000, 0x2000)
	c.Load(0x1000, 4)
	// 1 issue + 400 uncached; repeated access never caches.
	if got := c.Elapsed(); got != 401 {
		t.Errorf("uncached load = %vns, want 401", got)
	}
	c.Load(0x1000, 4)
	if got := c.Elapsed(); got != 802 {
		t.Errorf("second uncached load = %vns, want 802 (no caching)", got)
	}
	if c.L1().Stats().Accesses() != 0 {
		t.Error("uncached access went through L1")
	}
	// Outside the range still cached.
	c.Load(0x3000, 4)
	c.Load(0x3000, 4)
	if c.L1().Stats().ReadHits != 1 {
		t.Error("cacheable access did not hit L1")
	}
	_ = d
}

func TestClearUncachedRanges(t *testing.T) {
	c, _ := testCPU(t)
	c.AddUncachedRange(0, 64)
	c.ClearUncachedRanges()
	c.Load(0, 4)
	if c.L1().Stats().Accesses() != 1 {
		t.Error("cleared range still routed uncached")
	}
}

func TestAddUncachedRangePanics(t *testing.T) {
	c, _ := testCPU(t)
	defer func() {
		if recover() == nil {
			t.Fatal("empty range accepted")
		}
	}()
	c.AddUncachedRange(100, 100)
}

func TestStoreMarksWrite(t *testing.T) {
	c, _ := testCPU(t)
	c.Store(0, 4)
	if st := c.L1().Stats(); st.Writes != 1 {
		t.Errorf("L1 writes = %d, want 1", st.Writes)
	}
}

func TestCountsAndResetStats(t *testing.T) {
	c, _ := testCPU(t)
	var p isa.Program
	p.Ld(0, 4).Compute(isa.FMA, 5).St(4, 4)
	c.Run(&p)
	if c.Instructions() != 7 || c.MemOps() != 2 || c.OpCount(isa.FMA) != 5 {
		t.Errorf("instrs=%d memops=%d fma=%d", c.Instructions(), c.MemOps(), c.OpCount(isa.FMA))
	}
	c.ResetStats()
	if c.Instructions() != 0 || c.L1().Stats().Accesses() != 0 {
		t.Error("stats survived reset")
	}
	if c.Elapsed() == 0 {
		t.Error("ResetStats should not clear elapsed time")
	}
}

func TestAdvanceTime(t *testing.T) {
	c, _ := testCPU(t)
	c.AdvanceTime(500)
	c.AdvanceTime(-10) // ignored
	if c.Elapsed() != 500 {
		t.Errorf("elapsed = %v, want 500", c.Elapsed())
	}
}

func TestFlushAllWritesBackAndCharges(t *testing.T) {
	c, d := testCPU(t)
	c.Store(0, 4)
	c.Store(64, 4)
	c.ResetTime()
	wbs := c.FlushAll()
	// Two dirty lines in L1; they writeback into LLC (allocating there,
	// dirty), then LLC flush writes them to DRAM.
	if wbs != 4 {
		t.Errorf("writebacks = %d, want 4 (2 L1 + 2 LLC)", wbs)
	}
	if c.Elapsed() == 0 {
		t.Error("flush cost not charged")
	}
	if c.L1().ResidentLines() != 0 || c.LLC().ResidentLines() != 0 {
		t.Error("caches not empty after FlushAll")
	}
	if d.Stats().BytesWritten != 128 {
		t.Errorf("DRAM bytes written = %d, want 128", d.Stats().BytesWritten)
	}
}

func TestInvalidateAll(t *testing.T) {
	c, d := testCPU(t)
	c.Store(0, 4)
	before := d.Stats().BytesWritten
	c.InvalidateAll()
	if c.L1().ResidentLines() != 0 || c.LLC().ResidentLines() != 0 {
		t.Error("caches not empty after InvalidateAll")
	}
	if d.Stats().BytesWritten != before {
		t.Error("InvalidateAll produced writebacks")
	}
}

func TestFrequencyScalesTime(t *testing.T) {
	d := memdev.New(memdev.Config{Name: "dram", Latency: 100, Bandwidth: units.GBps})
	cfg := Config{
		Name: "fast", Freq: 2 * units.GHz,
		L1:    cache.Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 2},
		LLC:   cache.Config{Name: "llc", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 10},
		Costs: isa.CostModel{Issue: map[isa.Op]units.Cycles{isa.FMA: 1}},
	}
	c := New(cfg, d.NewPort("p", -1), nil)
	c.Work(isa.FMA, 10)
	if got := c.Elapsed(); got != 5 {
		t.Errorf("10 FMA at 2GHz = %vns, want 5", got)
	}
}

func TestMemMLPOverlapsCacheableMisses(t *testing.T) {
	d := memdev.New(memdev.Config{Name: "dram", Latency: 100, Bandwidth: units.GBps})
	cfg := Config{
		Name: "mlp", Freq: units.GHz,
		L1:     cache.Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 2},
		LLC:    cache.Config{Name: "llc", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 10},
		Costs:  isa.CostModel{Issue: map[isa.Op]units.Cycles{isa.LdGlobal: 1}},
		MemMLP: 4,
	}
	c := New(cfg, d.NewPort("p", -1), d.NewUncachedPort("u", 400))
	c.Load(0, 4)
	// 1 issue + (2+10+100)/4 = 29ns.
	if got := c.Elapsed(); got != 29 {
		t.Errorf("overlapped miss = %vns, want 29", got)
	}
	// Uncached path never overlaps.
	c.AddUncachedRange(1<<20, 1<<21)
	c.ResetTime()
	c.Load(1<<20, 4)
	if got := c.Elapsed(); got != 401 {
		t.Errorf("uncached load = %vns, want full 401", got)
	}
}

func BenchmarkCPUStreamingLoads(b *testing.B) {
	d := memdev.New(memdev.Config{Name: "dram", Latency: 100, Bandwidth: 25 * units.GBps})
	cfg := Config{
		Name: "bench", Freq: 2 * units.GHz,
		L1:     cache.Config{Name: "l1", Size: 32 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 2},
		LLC:    cache.Config{Name: "llc", Size: 2 * units.MiB, LineSize: 64, Ways: 16, HitLatency: 12},
		Costs:  isa.DefaultCPUCosts(),
		MemMLP: 6,
	}
	c := New(cfg, d.NewPort("p", -1), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(int64(i%(1<<20))*4, 4)
	}
}

func TestTracerSeesEveryInstruction(t *testing.T) {
	c, _ := testCPU(t)
	var seen []isa.Op
	c.SetTracer(func(in isa.Instr) { seen = append(seen, in.Op) })
	c.Load(0, 4)
	c.Work(isa.FMA, 2)
	c.Store(4, 4)
	want := []isa.Op{isa.LdGlobal, isa.FMA, isa.FMA, isa.StGlobal}
	if len(seen) != len(want) {
		t.Fatalf("traced %d instrs, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("instr %d = %v, want %v", i, seen[i], want[i])
		}
	}
	c.SetTracer(nil)
	c.Load(8, 4)
	if len(seen) != len(want) {
		t.Error("disabled tracer still fired")
	}
}

func TestAccessorsAndFlushRange(t *testing.T) {
	c, d := testCPU(t)
	if c.Name() != "cpu" {
		t.Errorf("name = %q", c.Name())
	}
	if c.Config().Freq != units.GHz {
		t.Error("config accessor wrong")
	}
	// FlushRange: dirty a line inside and a line outside the range.
	c.Store(0, 4)
	c.Store(1<<16, 4)
	before := d.Stats().BytesWritten
	wbs := c.FlushRange(0, 4096)
	// The dirty L1 line writes back into the LLC, whose range flush then
	// pushes it to DRAM: one writeback at each level.
	if wbs != 2 {
		t.Errorf("range flush writebacks = %d, want 2 (L1 + LLC)", wbs)
	}
	if d.Stats().BytesWritten != before+64 {
		t.Errorf("DRAM writeback bytes = %d", d.Stats().BytesWritten-before)
	}
	if c.L1().Contains(0) {
		t.Error("in-range line survived")
	}
	if !c.L1().Contains(1 << 16) {
		t.Error("out-of-range line flushed")
	}
}

func TestNewPanics(t *testing.T) {
	cases := map[string]func(){
		"invalid config": func() {
			New(Config{}, nil, nil)
		},
		"nil memory": func() {
			cfg := Config{
				Name: "x", Freq: units.GHz,
				L1:    cache.Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 1},
				LLC:   cache.Config{Name: "llc", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 1},
				Costs: isa.DefaultCPUCosts(),
			}
			New(cfg, nil, nil)
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestAddUncachedRangeWithoutPortPanics(t *testing.T) {
	d := memdev.New(memdev.Config{Name: "dram", Latency: 100, Bandwidth: units.GBps})
	cfg := Config{
		Name: "noport", Freq: units.GHz,
		L1:    cache.Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 1},
		LLC:   cache.Config{Name: "llc", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 1},
		Costs: isa.DefaultCPUCosts(),
	}
	c := New(cfg, d.NewPort("p", -1), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("uncached range without port accepted")
		}
	}()
	c.AddUncachedRange(0, 64)
}

func TestConfigValidateMoreMutations(t *testing.T) {
	good := Config{
		Name: "c", Freq: units.GHz,
		L1:    cache.Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 1},
		LLC:   cache.Config{Name: "llc", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 1},
		Costs: isa.DefaultCPUCosts(),
	}
	bad := good
	bad.LLC.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad LLC accepted")
	}
	bad = good
	bad.Costs = isa.CostModel{Issue: map[isa.Op]units.Cycles{isa.FMA: -1}}
	if err := bad.Validate(); err == nil {
		t.Error("bad cost model accepted")
	}
	bad = good
	bad.MemMLP = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative MLP accepted")
	}
}

// TestRunSteadyStateZeroAlloc is the allocation gate on the CPU simulate hot
// path: once the program and cache state exist, executing a mixed
// compute+memory program (Exec loop, cache lookups, uncached routing)
// allocates nothing.
func TestRunSteadyStateZeroAlloc(t *testing.T) {
	c, _ := testCPU(t)
	c.AddUncachedRange(1<<20, 1<<20+4096)
	var p isa.Program
	p.Compute(isa.FMA, 32)
	for i := int64(0); i < 16; i++ {
		p.Ld(i*64, 64)
	}
	p.St(1<<20+128, 64) // pinned path
	p.Compute(isa.DivF32, 4)
	c.Run(&p) // warm the caches
	allocs := testing.AllocsPerRun(100, func() {
		c.Run(&p)
	})
	if allocs != 0 {
		t.Fatalf("warm CPU.Run allocates %v times per run, want 0", allocs)
	}
}
