// Package cpu models the CPU complex of an embedded SoC as an in-order core
// with an L1 + LLC cache hierarchy over shared DRAM.
//
// Timing is accumulated per executed instruction: compute ops cost their
// issue cycles (from an isa.CostModel), memory ops cost issue plus the
// critical-path latency reported by the cache hierarchy. The model is
// deliberately in-order and latency-additive — embedded Cortex-A cores are
// close enough to this for the communication-model comparisons the framework
// makes, and determinism is what the profiler needs.
//
// Zero-copy interaction: on devices without hardware I/O coherence, pinned
// buffers are mapped uncacheable for the CPU (this is what the CUDA runtime
// does on Jetson Nano/TX2). The CPU model implements that as address-range
// routing: accesses falling in a registered uncached range bypass the whole
// hierarchy and go to the DRAM uncached port.
package cpu

import (
	"fmt"

	"igpucomm/internal/cache"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/isa"
	"igpucomm/internal/units"
)

// Config describes the CPU complex.
type Config struct {
	Name  string
	Freq  units.Hertz
	L1    cache.Config
	LLC   cache.Config
	Costs isa.CostModel
	// FlushLineCost is the per-line cost of a cache maintenance walk
	// (flush/invalidate), used by the standard-copy coherence protocol.
	FlushLineCost units.Latency
	// MemMLP is the memory-level parallelism of the core: how many
	// outstanding cacheable misses the load/store unit plus prefetchers
	// overlap. Cache-hierarchy latencies are divided by it; uncached
	// (device) accesses are strongly ordered and never overlap. 0 means 4.
	MemMLP int
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Freq <= 0 {
		return fmt.Errorf("cpu %s: frequency must be positive", c.Name)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("cpu %s: %w", c.Name, err)
	}
	if err := c.LLC.Validate(); err != nil {
		return fmt.Errorf("cpu %s: %w", c.Name, err)
	}
	if err := c.Costs.Validate(); err != nil {
		return fmt.Errorf("cpu %s: %w", c.Name, err)
	}
	if c.FlushLineCost < 0 {
		return fmt.Errorf("cpu %s: negative flush cost", c.Name)
	}
	if c.MemMLP < 0 {
		return fmt.Errorf("cpu %s: negative memory-level parallelism", c.Name)
	}
	return nil
}

type addrRange struct{ lo, hi int64 } // [lo, hi)

// CPU is the simulated CPU complex. Not safe for concurrent use.
type CPU struct {
	cfg      Config
	l1       *cache.Cache
	llc      *cache.Cache
	uncached cache.Level
	ranges   []addrRange

	// issueLat[op] is Costs.Cost(op).Lat(Freq), precomputed once so Exec
	// indexes an array instead of hashing a map per instruction. Indexed by
	// the full uint8 opcode space, so unknown ops cost 0 like CostModel.Cost.
	issueLat [256]units.Latency

	elapsed  units.Latency
	instrs   int64
	memOps   int64
	opCounts [256]int64 // per-opcode retire counters, indexed by isa.Op
	tracer   func(isa.Instr)
	// heat receives records for uncached-range accesses (the L1 records its
	// own via its sink); nil when heat profiling is off.
	heat *heatmap.Accumulator
}

// New builds a CPU whose LLC misses go to mem (a DRAM port) and whose
// uncached-range accesses go to uncached (the DRAM pinned port). It panics on
// invalid configuration.
func New(cfg Config, mem, uncached cache.Level) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if mem == nil {
		panic(fmt.Sprintf("cpu %s: nil memory level", cfg.Name))
	}
	llc := cache.New(cfg.LLC, mem)
	l1 := cache.New(cfg.L1, llc)
	c := &CPU{
		cfg:      cfg,
		l1:       l1,
		llc:      llc,
		uncached: uncached,
	}
	for op := range cfg.Costs.Issue {
		c.issueLat[op] = cfg.Costs.Cost(op).Lat(cfg.Freq)
	}
	return c
}

// Name returns the configured name.
func (c *CPU) Name() string { return c.cfg.Name }

// Config returns the configuration.
func (c *CPU) Config() Config { return c.cfg }

// L1 exposes the L1 cache for profiling.
func (c *CPU) L1() *cache.Cache { return c.l1 }

// LLC exposes the last-level cache for profiling and coherence operations.
func (c *CPU) LLC() *cache.Cache { return c.llc }

// AddUncachedRange marks [lo, hi) as uncacheable for this CPU: accesses in it
// bypass the hierarchy. Used when a pinned zero-copy buffer is mapped on a
// device without I/O coherence. Panics if hi <= lo or no uncached port was
// wired.
func (c *CPU) AddUncachedRange(lo, hi int64) {
	if hi <= lo {
		panic(fmt.Sprintf("cpu %s: empty uncached range [%d,%d)", c.cfg.Name, lo, hi))
	}
	if c.uncached == nil {
		panic(fmt.Sprintf("cpu %s: no uncached port wired", c.cfg.Name))
	}
	c.ranges = append(c.ranges, addrRange{lo, hi})
}

// ClearUncachedRanges removes all uncacheable mappings.
func (c *CPU) ClearUncachedRanges() { c.ranges = c.ranges[:0] }

func (c *CPU) route(addr int64) cache.Level {
	for _, r := range c.ranges {
		if addr >= r.lo && addr < r.hi {
			return c.uncached
		}
	}
	return c.l1
}

// SetTracer installs a hook invoked for every executed instruction — a
// debugging aid for workload authors (set nil to disable). The hook sees the
// instruction before its memory access is serviced.
func (c *CPU) SetTracer(f func(isa.Instr)) { c.tracer = f }

// SetHeat attaches (nil detaches) the per-page heat accumulator: the L1
// records cacheable traffic through its sink, the CPU itself records
// uncached-range (pinned) traffic, which never reaches a cache.
func (c *CPU) SetHeat(h *heatmap.Accumulator) {
	c.heat = h
	c.l1.SetHeatSink(h)
}

// Exec executes one instruction, advancing the CPU's elapsed time.
func (c *CPU) Exec(in isa.Instr) {
	if c.tracer != nil {
		c.tracer(in)
	}
	c.instrs++
	c.opCounts[in.Op]++
	c.elapsed += c.issueLat[in.Op]
	if !in.Op.IsMemory() {
		return
	}
	c.memOps++
	kind := cache.Read
	if in.Op == isa.StGlobal {
		kind = cache.Write
	}
	level := c.route(in.Addr)
	r := level.Do(cache.Access{Addr: in.Addr, Size: in.Size, Kind: kind})
	if level == c.l1 {
		// Cacheable path: the LSU and prefetchers overlap misses.
		mlp := c.cfg.MemMLP
		if mlp == 0 {
			mlp = 4
		}
		c.elapsed += r.Latency / units.Latency(mlp)
	} else {
		// Uncached pinned path: strongly ordered, no overlap.
		c.elapsed += r.Latency
		if c.heat != nil {
			// Uncached traffic always goes to memory: a miss by definition.
			c.heat.Record(in.Addr, in.Size, kind == cache.Write, true)
		}
	}
}

// Load is a convenience for trace-driven callers (instrumented applications).
func (c *CPU) Load(addr, size int64) { c.Exec(isa.Instr{Op: isa.LdGlobal, Addr: addr, Size: size}) }

// Store is the write-side convenience.
func (c *CPU) Store(addr, size int64) { c.Exec(isa.Instr{Op: isa.StGlobal, Addr: addr, Size: size}) }

// Work executes n copies of a compute op. With no tracer installed the loop
// collapses to counter bumps plus n issue-latency additions — the additions
// stay a loop (not a multiply) so the elapsed clock accumulates bit-for-bit
// the same float sequence the per-instruction path produces.
func (c *CPU) Work(op isa.Op, n int) {
	if c.tracer != nil || op.IsMemory() {
		for i := 0; i < n; i++ {
			c.Exec(isa.Instr{Op: op})
		}
		return
	}
	c.instrs += int64(n)
	c.opCounts[op] += int64(n)
	lat := c.issueLat[op]
	for i := 0; i < n; i++ {
		c.elapsed += lat
	}
}

// Run executes a whole program, walking its run-length encoding: compute
// stretches go through the bulk Work path, memory ops execute individually.
func (c *CPU) Run(p *isa.Program) {
	for _, r := range p.Runs() {
		if r.In.Op.IsMemory() || c.tracer != nil {
			for i := int32(0); i < r.Count; i++ {
				c.Exec(r.In)
			}
			continue
		}
		c.Work(r.In.Op, int(r.Count))
	}
}

// AdvanceTime adds wall time directly (used for fixed software overheads such
// as runtime API calls).
func (c *CPU) AdvanceTime(l units.Latency) {
	if l > 0 {
		c.elapsed += l
	}
}

// Elapsed returns the accumulated execution time.
func (c *CPU) Elapsed() units.Latency { return c.elapsed }

// ResetTime zeroes the elapsed clock (cache contents persist, as after a
// warmup phase).
func (c *CPU) ResetTime() { c.elapsed = 0 }

// Instructions returns the executed instruction count.
func (c *CPU) Instructions() int64 { return c.instrs }

// MemOps returns the executed memory operation count.
func (c *CPU) MemOps() int64 { return c.memOps }

// OpCount returns how many instructions of op executed.
func (c *CPU) OpCount(op isa.Op) int64 { return c.opCounts[op] }

// FlushAll flushes L1 then LLC (software coherence around a kernel launch,
// as the standard-copy model requires) and charges the walk cost to the
// CPU's clock. It returns the total lines written back.
func (c *CPU) FlushAll() int64 {
	wb1, cost1 := c.l1.Flush(c.cfg.FlushLineCost)
	wb2, cost2 := c.llc.Flush(c.cfg.FlushLineCost)
	c.elapsed += cost1 + cost2
	return wb1 + wb2
}

// FlushRange performs cache maintenance by virtual address over [lo, hi):
// both levels write back and invalidate only the lines of that range, and
// the walk cost is charged to the CPU clock. This is what software coherence
// does to a shared buffer before handing it to the GPU.
func (c *CPU) FlushRange(lo, hi int64) int64 {
	wb1, cost1 := c.l1.FlushRange(lo, hi, c.cfg.FlushLineCost)
	wb2, cost2 := c.llc.FlushRange(lo, hi, c.cfg.FlushLineCost)
	c.elapsed += cost1 + cost2
	return wb1 + wb2
}

// InvalidateAll drops both cache levels without writeback (the "before CPU
// reads GPU-produced data" half of software coherence). A fixed walk cost per
// resident line is charged.
func (c *CPU) InvalidateAll() {
	resident := c.l1.ResidentLines() + c.llc.ResidentLines()
	c.l1.Invalidate()
	c.llc.Invalidate()
	c.elapsed += units.Latency(float64(resident) * float64(c.cfg.FlushLineCost))
}

// ResetStats zeroes cache and instruction counters (elapsed time untouched).
func (c *CPU) ResetStats() {
	c.l1.ResetStats()
	c.llc.ResetStats()
	c.instrs = 0
	c.memOps = 0
	c.opCounts = [256]int64{}
}
