package framework

import (
	"fmt"

	"igpucomm/internal/profile"
	"igpucomm/internal/units"
)

// Stability reports how robust a recommendation is to profiler measurement
// error. Our simulated counters are exact, but the real nvprof/tegrastats
// numbers the paper's flow consumes are sampled and noisy — a verdict that
// flips under ±10% measurement error is not one to re-engineer an
// application over.
type Stability struct {
	// Nominal is the recommendation at the measured values.
	Nominal Recommendation
	// Agreement is the fraction of perturbed profiles whose suggested
	// model matches the nominal one.
	Agreement float64
	// Flips lists the distinct alternative suggestions observed.
	Flips []string
	// Trials is the number of perturbed evaluations.
	Trials int
}

// Stable reports whether every perturbation agreed.
func (s Stability) Stable() bool { return s.Agreement >= 1 }

// DecisionStability re-runs the Fig-2 decision flow over a deterministic
// grid of ±jitter perturbations of the noise-prone profile quantities (CPU
// cache usage, GPU demand, copy time, CPU/kernel times) and measures how
// often the suggestion changes. jitter is relative (e.g. 0.10 for ±10%).
func DecisionStability(char Characterization, classify, current profile.Profile,
	currentModel string, jitter float64) (Stability, error) {
	if jitter <= 0 || jitter >= 1 {
		return Stability{}, fmt.Errorf("framework: jitter %v out of (0,1)", jitter)
	}
	nominal, err := Advise(char, classify, current, currentModel)
	if err != nil {
		return Stability{}, err
	}
	out := Stability{Nominal: nominal}

	scales := []float64{1 - jitter, 1, 1 + jitter}
	seenFlips := map[string]bool{}
	agree := 0
	for _, sCPUUse := range scales {
		for _, sDemand := range scales {
			for _, sCopy := range scales {
				for _, sTimes := range scales {
					cl := classify
					cl.CPUCacheUsagePerInstr *= sCPUUse
					cl.GPUDemand = units.BytesPerSecond(float64(cl.GPUDemand) * sDemand)
					cu := current
					cu.Report.CopyTime = units.Latency(float64(cu.Report.CopyTime) * sCopy)
					cu.CPUTime = units.Latency(float64(cu.CPUTime) * sTimes)
					cu.KernelTime = units.Latency(float64(cu.KernelTime) * sTimes)
					// Keep the report internally consistent: the total
					// moves with its components.
					cu.Total = cu.CPUTime + cu.KernelTime + cu.Report.CopyTime +
						cu.Report.FlushTime + cu.Report.LaunchTime
					cu.Report.Total = cu.Total

					rec, err := Advise(char, cl, cu, currentModel)
					if err != nil {
						return Stability{}, err
					}
					out.Trials++
					if rec.Suggested == nominal.Suggested {
						agree++
					} else if !seenFlips[rec.Suggested] {
						seenFlips[rec.Suggested] = true
						out.Flips = append(out.Flips, rec.Suggested)
					}
				}
			}
		}
	}
	out.Agreement = float64(agree) / float64(out.Trials)
	return out, nil
}
