package framework

// Differential acceptance suite for the batch-kernel simulator core: the
// framework's observable outputs — explorations and characterizations — must
// be byte-identical whether the GPU runs kernels through the compiled batch
// path or through the per-access reference executor it replaced. This is the
// whole-framework companion to the per-kernel fuzz/property suites in
// internal/gpu and internal/cache: it proves the rewrite changed no number
// the paper's tables are built from, across every device x app x model combo.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
)

// TestBatchVsReferenceExploration covers all 45 device x app x model combos:
// a reference-mode platform (per-access executor, the seed's code path) and a
// batch-mode platform must produce byte-identical exploration JSON — every
// latency, every report field, every ranking tie-break.
func TestBatchVsReferenceExploration(t *testing.T) {
	models := comm.AllModels()
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			cfg, app := cfg, app
			t.Run(cfg.Name+"/"+app, func(t *testing.T) {
				w, err := catalog.ByName(app, catalog.Quick)
				if err != nil {
					t.Fatal(err)
				}
				ref := soc.New(cfg)
				ref.GPU.SetReferenceMode(true)
				want, err := Explore(ref, w, models)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Explore(soc.New(cfg), w, models)
				if err != nil {
					t.Fatal(err)
				}
				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Errorf("batch exploration diverges from reference:\nreference: %s\nbatch:     %s",
						wantJSON, gotJSON)
				}
			})
		}
	}
}

// TestBatchVsReferenceCharacterization holds the microbenchmark-driven half
// of the framework to the same standard: MB1–MB3 characterization through the
// persist serialization (so every field counts) must not move by a byte when
// the batch kernels replace the reference executor.
func TestBatchVsReferenceCharacterization(t *testing.T) {
	p := microbench.TestParams()
	for _, cfg := range devices.All() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			ref := soc.New(cfg)
			ref.GPU.SetReferenceMode(true)
			want, err := Characterize(context.Background(), ref, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Characterize(context.Background(), soc.New(cfg), p)
			if err != nil {
				t.Fatal(err)
			}
			var wantBuf, gotBuf bytes.Buffer
			if err := SaveCharacterization(&wantBuf, want); err != nil {
				t.Fatal(err)
			}
			if err := SaveCharacterization(&gotBuf, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
				t.Errorf("batch characterization of %s diverges from reference:\nreference: %s\nbatch:     %s",
					cfg.Name, wantBuf.Bytes(), gotBuf.Bytes())
			}
		})
	}
}

// TestBatchVsReferenceRepeatedRuns reruns one combo three times on the SAME
// batch-mode platform (soc.ResetState between runs, as the engine's pool
// does) and requires every rerun to match the reference answer — warm
// compiled-kernel caches must replay, not drift.
func TestBatchVsReferenceRepeatedRuns(t *testing.T) {
	cfg := devices.All()[0]
	w, err := catalog.ByName(catalog.Names()[0], catalog.Quick)
	if err != nil {
		t.Fatal(err)
	}
	models := comm.AllModels()

	ref := soc.New(cfg)
	ref.GPU.SetReferenceMode(true)
	want, err := Explore(ref, w, models)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	s := soc.New(cfg)
	for i := 0; i < 3; i++ {
		got, err := Explore(s, w, models)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("run %d on a reused platform diverges from reference:\nreference: %s\nbatch:     %s",
				i, wantJSON, gotJSON)
		}
	}
}
