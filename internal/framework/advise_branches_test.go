package framework

import (
	"strings"
	"testing"

	"igpucomm/internal/comm"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/profile"
	"igpucomm/internal/units"
)

// synthChar builds a hand-crafted characterization so each Fig-2 branch can
// be driven deterministically, without depending on where the simulated
// sweeps put the thresholds.
func synthChar(coherent bool) Characterization {
	char := Characterization{
		Platform:            "synth-board",
		IOCoherent:          coherent,
		Thresholds:          perfmodel.Thresholds{CPUCache: 0.10, GPUCacheLow: 0.10, GPUCacheHigh: 0.30},
		PeakGPUThroughput:   100 * units.GBps,
		PinnedGPUThroughput: 10 * units.GBps,
		ZCSCMaxSpeedup:      10,
		SCZCMaxSpeedup:      2.5,
	}
	if coherent {
		char.Thresholds.CPUCache = 1.0
	}
	// MB1 rows feed cpuUncacheFactor.
	char.MB1 = microbench.MB1Result{
		Platform: "synth-board",
		Rows: []microbench.MB1Row{
			{Model: "sc", CPUTime: 100_000, KernelTime: 10_000, Throughput: 100 * units.GBps},
			{Model: "um", CPUTime: 100_000, KernelTime: 10_500, Throughput: 95 * units.GBps},
			{Model: "zc", CPUTime: 170_000, KernelTime: 80_000, Throughput: 10 * units.GBps},
		},
	}
	return char
}

// synthProfile builds a profile with a chosen GPU usage (of the 100 GB/s
// peak) and CPU usage, plus consistent timing fields.
func synthProfile(gpuUsage, cpuUsage float64, overlapCapable bool) profile.Profile {
	return profile.Profile{
		Platform:              "synth-board",
		Workload:              "synth-app",
		Model:                 "sc",
		CPUCacheUsagePerInstr: cpuUsage,
		GPUDemand:             units.BytesPerSecond(gpuUsage) * 100 * units.GBps,
		CPUTime:               200_000,
		KernelTime:            100_000,
		Total:                 400_000,
		Report: comm.Report{
			Platform:         "synth-board",
			Workload:         "synth-app",
			Total:            400_000,
			CPUTime:          200_000,
			KernelTime:       100_000,
			CopyTime:         80_000,
			FlushTime:        10_000,
			DeclaredBytesIn:  1 << 20,
			DeclaredBytesOut: 1 << 16,
			OverlapCapable:   overlapCapable,
		},
	}
}

func TestConditionalZoneKeepsZC(t *testing.T) {
	char := synthChar(true)
	prof := synthProfile(0.20, 0.01, false) // usage 0.2 in (0.1, 0.3]
	rec, err := Advise(char, prof, prof, "zc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneZCConditional {
		t.Fatalf("zone = %v", rec.Zone)
	}
	if rec.Suggested != "zc" || !rec.EnergyAdvantage {
		t.Errorf("conditional ZC-current should keep ZC: %+v", rec)
	}
	if !strings.Contains(rec.Rationale, "conditional zone") {
		t.Errorf("rationale = %q", rec.Rationale)
	}
}

func TestConditionalZoneAdoptsZCWhenGainCoversPenalty(t *testing.T) {
	char := synthChar(true)
	// Low demand relative to the pinned path: penalty small; copy time is
	// 20% of the run and the workload overlaps: gain large.
	prof := synthProfile(0.12, 0.01, true)
	prof.GPUDemand = 8 * units.GBps // below the 10 GB/s pinned path
	// Keep classification in the conditional zone via the classify profile.
	classify := synthProfile(0.15, 0.01, true)
	rec, err := Advise(char, classify, prof, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneZCConditional {
		t.Fatalf("zone = %v", rec.Zone)
	}
	if rec.Suggested != "zc" {
		t.Errorf("suggested = %q, want zc (gain should cover the ~1x penalty): %s", rec.Suggested, rec.Rationale)
	}
	if rec.SpeedupRatio <= 1 {
		t.Errorf("speedup = %v", rec.SpeedupRatio)
	}
}

func TestConditionalZoneKeepsSCWhenPenaltyWins(t *testing.T) {
	char := synthChar(true)
	classify := synthProfile(0.25, 0.01, false)
	current := synthProfile(0.25, 0.01, false)
	// Heavy demand (25 GB/s over a 10 GB/s pinned path: 2.5x penalty) and
	// a serialized workload whose only gain is the copy+flush share.
	rec, err := Advise(char, classify, current, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneZCConditional {
		t.Fatalf("zone = %v", rec.Zone)
	}
	if rec.Suggested != "sc" || rec.SpeedupRatio != 1 {
		t.Errorf("penalty should keep SC: %+v", rec)
	}
	if !strings.Contains(rec.Rationale, "penalty") {
		t.Errorf("rationale = %q", rec.Rationale)
	}
}

func TestConditionalZoneCPUDependentNonCoherent(t *testing.T) {
	char := synthChar(false) // CPU threshold 0.10
	classify := synthProfile(0.20, 0.50, false)
	rec, err := Advise(char, classify, classify, "zc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneZCConditional || !rec.CPUDependent {
		t.Fatalf("setup wrong: %+v", rec)
	}
	if rec.Suggested != "sc" {
		t.Errorf("suggested = %q, want sc", rec.Suggested)
	}
	if rec.SpeedupRatio <= 1 {
		t.Errorf("leaving ZC should estimate a gain, got %v", rec.SpeedupRatio)
	}
	// Same zone, already on SC: keep.
	rec, err = Advise(char, classify, classify, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Suggested != "sc" || rec.SpeedupRatio != 1 {
		t.Errorf("SC-current should keep: %+v", rec)
	}
}

func TestGPUSafeCPUDependentLeavingZC(t *testing.T) {
	char := synthChar(false)
	classify := synthProfile(0.05, 0.40, false) // GPU safe, CPU dependent
	rec, err := Advise(char, classify, classify, "zc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneZCSafe || !rec.CPUDependent {
		t.Fatalf("setup wrong: %+v", rec)
	}
	if rec.Suggested != "sc" {
		t.Errorf("suggested = %q, want sc", rec.Suggested)
	}
	if !strings.Contains(rec.Rationale, "no I/O coherence") {
		t.Errorf("rationale = %q", rec.Rationale)
	}
}

func TestEstimateSCToZCOverlapVsSerialized(t *testing.T) {
	char := synthChar(true)
	overlap := synthProfile(0.05, 0.01, true)
	serial := synthProfile(0.05, 0.01, false)
	spOverlap := estimateSCToZC(char, overlap)
	spSerial := estimateSCToZC(char, serial)
	if spOverlap <= spSerial {
		t.Errorf("overlap-capable estimate %v should exceed serialized %v", spOverlap, spSerial)
	}
	// Serialized gain is exactly the copy+flush share: 400/(400-90).
	want := 400.0 / 310.0
	if spSerial < want-1e-9 || spSerial > want+1e-9 {
		t.Errorf("serialized estimate = %v, want %v", spSerial, want)
	}
	// Degenerate: copies consume the whole run.
	broken := serial
	broken.Report.CopyTime = broken.Total
	if sp := estimateSCToZC(char, broken); sp != 1 {
		t.Errorf("degenerate estimate = %v, want 1", sp)
	}
}

func TestKernelPenaltyUnderZCBounds(t *testing.T) {
	char := synthChar(true)
	prof := synthProfile(0.5, 0, false) // demand 50 GB/s vs 10 GB/s pinned
	if p := kernelPenaltyUnderZC(char, prof); p != 5 {
		t.Errorf("penalty = %v, want 5", p)
	}
	prof.GPUDemand = 1 * units.GBps
	if p := kernelPenaltyUnderZC(char, prof); p != 1 {
		t.Errorf("sub-path penalty = %v, want 1", p)
	}
	prof.GPUDemand = 0
	if p := kernelPenaltyUnderZC(char, prof); p != 1 {
		t.Errorf("degenerate penalty = %v, want 1", p)
	}
}

func TestCopyEstimateAndUncacheFactor(t *testing.T) {
	char := synthChar(false)
	prof := synthProfile(0.2, 0.2, false)
	if e := copyEstimate(char, prof); e <= 0 {
		t.Errorf("copy estimate = %v, want positive", e)
	}
	empty := prof
	empty.Report.DeclaredBytesIn = 0
	empty.Report.DeclaredBytesOut = 0
	if e := copyEstimate(char, empty); e != 0 {
		t.Errorf("no-transfer estimate = %v, want 0", e)
	}
	if f := cpuUncacheFactor(char); f != 1.7 {
		t.Errorf("uncache factor = %v, want 1.7 (170µs/100µs)", f)
	}
	if f := cpuUncacheFactor(synthChar(true)); f != 1 {
		t.Errorf("coherent factor = %v, want 1", f)
	}
	noRows := synthChar(false)
	noRows.MB1 = microbench.MB1Result{}
	if f := cpuUncacheFactor(noRows); f != 1 {
		t.Errorf("missing-rows factor = %v, want 1", f)
	}
}

func TestDecisionStabilityRobustCase(t *testing.T) {
	// Deep in the GPU-safe zone with a large copy share: no ±10% jitter can
	// flip the verdict.
	char := synthChar(true)
	prof := synthProfile(0.02, 0.01, false)
	st, err := DecisionStability(char, prof, prof, "sc", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 81 {
		t.Errorf("trials = %d, want 3^4", st.Trials)
	}
	if !st.Stable() || len(st.Flips) != 0 {
		t.Errorf("robust case flipped: %+v", st)
	}
	if st.Nominal.Suggested != "zc" {
		t.Errorf("nominal = %q", st.Nominal.Suggested)
	}
}

func TestDecisionStabilityBorderlineCase(t *testing.T) {
	// GPU usage parked right under the upper zone boundary: +10% jitter
	// pushes it into cache-dependent territory, flipping zc -> sc.
	char := synthChar(true)
	prof := synthProfile(0.28, 0.01, false) // just under GPUCacheHigh = 0.30
	st, err := DecisionStability(char, prof, prof, "zc", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stable() {
		t.Errorf("borderline case reported stable (agreement %.2f)", st.Agreement)
	}
	if st.Agreement <= 0 || st.Agreement >= 1 {
		t.Errorf("agreement = %v, want partial", st.Agreement)
	}
	if len(st.Flips) == 0 {
		t.Error("no flips recorded")
	}
}

func TestDecisionStabilityErrors(t *testing.T) {
	char := synthChar(true)
	prof := synthProfile(0.02, 0.01, false)
	if _, err := DecisionStability(char, prof, prof, "sc", 0); err == nil {
		t.Error("zero jitter accepted")
	}
	if _, err := DecisionStability(char, prof, prof, "dma", 0.1); err == nil {
		t.Error("unknown model accepted")
	}
}
