package framework

import (
	"fmt"
	"sort"

	"igpucomm/internal/comm"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// Candidate is one measured (model, runtime) pair from an exploration.
type Candidate struct {
	Model string
	Total units.Latency
	// Report keeps the full measurement.
	Report comm.Report
}

// Exploration is a measured ranking of communication models for a workload
// on a platform — the ground truth the advisor's prediction can be checked
// against (the paper does exactly this in Tables III and V).
type Exploration struct {
	Platform string
	Workload string
	// Ranked candidates, fastest first.
	Ranked []Candidate
}

// Best returns the fastest model.
func (e Exploration) Best() Candidate {
	return e.Ranked[0]
}

// Candidate looks up a model's measurement.
func (e Exploration) Candidate(model string) (Candidate, bool) {
	for _, c := range e.Ranked {
		if c.Model == model {
			return c, true
		}
	}
	return Candidate{}, false
}

// SpeedupOver returns how much faster the best model is than `model`.
func (e Exploration) SpeedupOver(model string) (float64, error) {
	c, ok := e.Candidate(model)
	if !ok {
		return 0, fmt.Errorf("framework: model %q not explored", model)
	}
	if e.Best().Total <= 0 {
		return 0, fmt.Errorf("framework: degenerate exploration")
	}
	return float64(c.Total) / float64(e.Best().Total), nil
}

// Explore measures the workload under every given model (the paper's three
// when models is nil) and returns the ranking. This is the brute-force
// companion to Advise: exact but as expensive as implementing every variant,
// which is the cost the framework exists to avoid.
func Explore(s *soc.SoC, w comm.Workload, models []comm.Model) (Exploration, error) {
	if models == nil {
		models = comm.Models()
	}
	if len(models) == 0 {
		return Exploration{}, fmt.Errorf("framework: no models to explore")
	}
	cands := make([]Candidate, 0, len(models))
	for _, m := range models {
		rep, err := m.Run(s, w)
		if err != nil {
			return Exploration{}, fmt.Errorf("framework: explore %s: %w", m.Name(), err)
		}
		cands = append(cands, Candidate{Model: m.Name(), Total: rep.Total, Report: rep})
	}
	return NewExploration(s.Name(), w.Name, cands), nil
}

// NewExploration ranks measured candidates (given in measurement order) into
// an Exploration. The sort is stable, so ties keep measurement order — the
// parallel engine feeds candidates in the same model order as the serial
// path and therefore produces the identical ranking.
func NewExploration(platform, workload string, cands []Candidate) Exploration {
	out := Exploration{Platform: platform, Workload: workload, Ranked: cands}
	sort.SliceStable(out.Ranked, func(i, j int) bool {
		return out.Ranked[i].Total < out.Ranked[j].Total
	})
	return out
}

// Validate checks a Recommendation against a measured exploration: did the
// framework pick a model within tolerance of the true best? It returns the
// measured regret (best-of-suggested over best-overall, >= 1).
func (e Exploration) Validate(rec Recommendation, tolerance float64) (regret float64, ok bool, err error) {
	c, found := e.Candidate(rec.Suggested)
	if !found {
		return 0, false, fmt.Errorf("framework: suggested model %q was not explored", rec.Suggested)
	}
	if e.Best().Total <= 0 {
		return 0, false, fmt.Errorf("framework: degenerate exploration")
	}
	regret = float64(c.Total) / float64(e.Best().Total)
	return regret, regret <= 1+tolerance, nil
}
