// Package framework is the paper's decision framework (Fig 2): given a
// profiled application and a characterized device, it classifies the
// application's cache dependence, recommends the most suitable communication
// model, and estimates the potential speedup of switching — the three outputs
// the paper's tuning flow produces for the programmer.
package framework

import (
	"context"
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/profile"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
	"igpucomm/internal/units"
)

// Characterization bundles everything the micro-benchmarks extract from a
// device. Produce it once per platform (it is application-independent) and
// reuse it to advise any number of applications.
type Characterization struct {
	Platform   string
	IOCoherent bool

	MB1 microbench.MB1Result
	MB2 microbench.MB2Result
	MB3 microbench.MB3Result

	// Thresholds are the MB2 decision boundaries.
	Thresholds perfmodel.Thresholds
	// PeakGPUThroughput is GPU_Cache_LL_L1^max_throughput (MB1, SC row).
	PeakGPUThroughput units.BytesPerSecond
	// PinnedGPUThroughput is the ZC-path throughput (MB1, ZC row).
	PinnedGPUThroughput units.BytesPerSecond
	// ZCSCMaxSpeedup bounds what leaving ZC can gain (MB1 ratio).
	ZCSCMaxSpeedup float64
	// SCZCMaxSpeedup bounds what adopting ZC can gain (MB3).
	SCZCMaxSpeedup float64
}

// Characterize runs the three micro-benchmarks on the platform, serially.
// The execution engine (internal/engine) produces the identical result by
// fanning the sweep points out across cloned platforms and assembling them
// with NewCharacterization.
func Characterize(ctx context.Context, s *soc.SoC, p microbench.Params) (Characterization, error) {
	ctx, span := telemetry.Start(ctx, "framework.characterize",
		telemetry.String("platform", s.Name()))
	defer span.End()
	mb1, err := microbench.RunMB1(ctx, s, p)
	if err != nil {
		return Characterization{}, fmt.Errorf("framework: %w", err)
	}
	mb2, err := microbench.RunMB2(ctx, s, p, mb1.PeakThroughput())
	if err != nil {
		return Characterization{}, fmt.Errorf("framework: %w", err)
	}
	mb3, err := microbench.RunMB3(ctx, s, p)
	if err != nil {
		return Characterization{}, fmt.Errorf("framework: %w", err)
	}
	return NewCharacterization(s.Name(), s.IOCoherent(), mb1, mb2, mb3), nil
}

// NewCharacterization assembles micro-benchmark results into the framework's
// device characterization. It is the single place the derived quantities
// (thresholds, peaks, speedup caps) are computed, so serial and parallel
// characterization paths cannot diverge.
func NewCharacterization(platform string, ioCoherent bool,
	mb1 microbench.MB1Result, mb2 microbench.MB2Result, mb3 microbench.MB3Result) Characterization {
	return Characterization{
		Platform:            platform,
		IOCoherent:          ioCoherent,
		MB1:                 mb1,
		MB2:                 mb2,
		MB3:                 mb3,
		Thresholds:          mb2.Thresholds,
		PeakGPUThroughput:   mb1.PeakThroughput(),
		PinnedGPUThroughput: mb1.PinnedThroughput(),
		ZCSCMaxSpeedup:      mb1.ZCSCMaxSpeedup(),
		SCZCMaxSpeedup:      mb3.SCZCMaxSpeedup(),
	}
}

// Zone classifies where the application's GPU cache usage lands on the
// device's Fig 3/6 curve.
type Zone int

// Zones of the second micro-benchmark's curve.
const (
	// ZoneZCSafe: usage below the low threshold — ZC performs on par with
	// SC and saves the copies.
	ZoneZCSafe Zone = iota
	// ZoneZCConditional: the middle zone — ZC costs kernel performance but
	// overlap and copy elimination may still pay for it.
	ZoneZCConditional
	// ZoneCacheDependent: past the high threshold — the GPU would be
	// severely bottlenecked under ZC.
	ZoneCacheDependent
)

func (z Zone) String() string {
	switch z {
	case ZoneZCSafe:
		return "zc-safe"
	case ZoneZCConditional:
		return "zc-conditional"
	case ZoneCacheDependent:
		return "cache-dependent"
	default:
		return fmt.Sprintf("Zone(%d)", int(z))
	}
}

// Recommendation is the framework's verdict for one application on one
// device.
type Recommendation struct {
	Platform     string
	Workload     string
	CurrentModel string

	// Classification inputs.
	CPUUsage     float64
	GPUUsage     float64
	CPUDependent bool
	GPUDependent bool
	Zone         Zone

	// Suggested is the recommended communication model ("sc", "um", "zc").
	Suggested string
	// SpeedupRatio estimates runtime(current)/runtime(suggested); 1.0
	// means no change expected. Capped by the device maxima.
	SpeedupRatio float64
	// EnergyAdvantage notes that the suggestion also eliminates copy
	// traffic (set when suggesting ZC).
	EnergyAdvantage bool
	// Rationale is the human-readable reasoning chain.
	Rationale string
	// BufferHints refines the whole-workload verdict per buffer (mixed-model
	// placement); nil unless the classification run was heat-profiled, so
	// default advice output is unchanged.
	BufferHints []BufferHint `json:"BufferHints,omitempty"`
}

// SpeedupPercent is the paper's percentage convention for the estimate.
func (r Recommendation) SpeedupPercent() float64 { return perfmodel.SpeedupPercent(r.SpeedupRatio) }

// AdviseWorkload profiles the workload on the platform under SC (for
// classification — profiling under ZC would hide cache demand behind the
// inflated kernel time) and under the current model (for the switching
// estimates), then runs the Fig-2 decision flow.
func AdviseWorkload(ctx context.Context, char Characterization, s *soc.SoC, w comm.Workload, currentModel string) (Recommendation, error) {
	ctx, span := telemetry.Start(ctx, "framework.advise",
		telemetry.String("platform", char.Platform),
		telemetry.String("workload", w.Name),
		telemetry.String("current", currentModel))
	defer span.End()
	classify, err := profile.Collect(ctx, s, w, comm.SC{})
	if err != nil {
		return Recommendation{}, fmt.Errorf("framework: classification profile: %w", err)
	}
	current := classify
	if currentModel != "sc" {
		m, err := comm.ByName(currentModel)
		if err != nil {
			return Recommendation{}, fmt.Errorf("framework: %w", err)
		}
		current, err = profile.Collect(ctx, s, w, m)
		if err != nil {
			return Recommendation{}, fmt.Errorf("framework: current-model profile: %w", err)
		}
	}
	rec, err := Advise(char, classify, current, currentModel)
	if err == nil {
		// Heat-profiled classification runs carry per-buffer data; attach
		// the mixed-model hints. Nil otherwise — default output unchanged.
		rec.BufferHints = PerBufferHints(classify.PerBuffer)
		span.SetAttr("suggested", rec.Suggested)
		span.SetAttr("zone", rec.Zone.String())
	}
	return rec, err
}

// Advise runs the Fig-2 decision flow. classify must be a caches-on (SC)
// profile of the workload — the source of the cache-usage metrics; current
// must be a profile under currentModel — the source of the timings the
// switching estimates start from. When the current model is SC, pass the
// same profile twice.
func Advise(char Characterization, classify, current profile.Profile, currentModel string) (Recommendation, error) {
	switch currentModel {
	case "sc", "um", "zc":
	default:
		return Recommendation{}, fmt.Errorf("framework: unknown current model %q", currentModel)
	}
	for _, p := range []profile.Profile{classify, current} {
		if p.Platform != char.Platform {
			return Recommendation{}, fmt.Errorf("framework: profile from %q but characterization from %q",
				p.Platform, char.Platform)
		}
	}

	rec := Recommendation{
		Platform:     char.Platform,
		Workload:     classify.Workload,
		CurrentModel: currentModel,
		CPUUsage:     classify.CPUCacheUsagePerInstr,
		GPUUsage:     classify.GPUCacheUsage(char.PeakGPUThroughput),
		SpeedupRatio: 1,
	}
	rec.CPUDependent = rec.CPUUsage > char.Thresholds.CPUCache
	switch {
	case rec.GPUUsage > char.Thresholds.GPUCacheHigh:
		rec.Zone = ZoneCacheDependent
	case rec.GPUUsage > char.Thresholds.GPUCacheLow:
		rec.Zone = ZoneZCConditional
	default:
		rec.Zone = ZoneZCSafe
	}
	rec.GPUDependent = rec.Zone == ZoneCacheDependent

	switch rec.Zone {
	case ZoneCacheDependent:
		adviseCacheDependent(char, classify, current, &rec)
	case ZoneZCConditional:
		adviseConditional(char, classify, current, &rec)
	default:
		adviseGPUSafe(char, classify, current, &rec)
	}
	return rec, nil
}

// adviseCacheDependent: the GPU leans on its cache; ZC would starve it.
func adviseCacheDependent(char Characterization, classify, current profile.Profile, rec *Recommendation) {
	rec.Suggested = "sc"
	if rec.CurrentModel == "zc" {
		rec.Rationale = fmt.Sprintf(
			"GPU cache usage %.1f%% exceeds the device's upper threshold %.1f%%: the kernel is starving on the ZC path; switch to SC/UM",
			rec.GPUUsage*100, char.Thresholds.GPUCacheHigh*100)
		rec.SpeedupRatio = estimateZCToSC(char, classify, current)
		return
	}
	// Already on a copying model: the paper's flow suggests no change and
	// no further potential speedup.
	rec.Suggested = rec.CurrentModel
	rec.Rationale = fmt.Sprintf(
		"GPU cache usage %.1f%% marks the application cache-dependent; the current %s model is already the right choice",
		rec.GPUUsage*100, rec.CurrentModel)
}

// adviseConditional: the middle zone of Figs 3/6 — ZC costs some kernel
// performance but copy elimination and overlap may compensate.
func adviseConditional(char Characterization, classify, current profile.Profile, rec *Recommendation) {
	if rec.CPUDependent && !char.IOCoherent {
		rec.Suggested = "sc"
		if rec.CurrentModel == "zc" {
			rec.SpeedupRatio = estimateZCToSC(char, classify, current)
		} else {
			rec.Suggested = rec.CurrentModel
		}
		rec.Rationale = fmt.Sprintf(
			"GPU cache usage %.1f%% is in the conditional zone but CPU cache usage %.2f%% exceeds the %.2f%% threshold on a non-coherent device: stay on a copying model",
			rec.GPUUsage*100, rec.CPUUsage*100, char.Thresholds.CPUCache*100)
		return
	}
	if rec.CurrentModel == "zc" {
		rec.Suggested = "zc"
		rec.Rationale = fmt.Sprintf(
			"GPU cache usage %.1f%% sits in the conditional zone [%.1f%%, %.1f%%]: ZC remains viable; the kernel slowdown is compensated by eliminated transfers and overlap",
			rec.GPUUsage*100, char.Thresholds.GPUCacheLow*100, char.Thresholds.GPUCacheHigh*100)
		rec.EnergyAdvantage = true
		return
	}
	// Currently copying: ZC may pay off if the copy+overlap gain covers
	// the kernel penalty; estimate both sides.
	gain := estimateSCToZC(char, current)
	penalty := kernelPenaltyUnderZC(char, classify)
	rec.SpeedupRatio = gain / penalty
	if rec.SpeedupRatio >= 1 {
		rec.Suggested = "zc"
		rec.EnergyAdvantage = true
		rec.Rationale = fmt.Sprintf(
			"conditional zone: estimated transfer/overlap gain %.2fx outweighs the ZC kernel penalty %.2fx",
			gain, penalty)
	} else {
		rec.Suggested = rec.CurrentModel
		rec.SpeedupRatio = 1
		rec.Rationale = fmt.Sprintf(
			"conditional zone: estimated ZC kernel penalty %.2fx exceeds the transfer/overlap gain %.2fx; keep %s",
			penalty, gain, rec.CurrentModel)
	}
}

// adviseGPUSafe: the GPU barely uses its cache; the CPU side decides.
func adviseGPUSafe(char Characterization, classify, current profile.Profile, rec *Recommendation) {
	if rec.CPUDependent && !char.IOCoherent {
		rec.Suggested = "sc"
		if rec.CurrentModel == "zc" {
			rec.SpeedupRatio = estimateZCToSC(char, classify, current)
			rec.Rationale = fmt.Sprintf(
				"CPU cache usage %.2f%% exceeds the %.2f%% threshold and the device has no I/O coherence: ZC uncaches the CPU's working set; switch to SC/UM",
				rec.CPUUsage*100, char.Thresholds.CPUCache*100)
		} else {
			rec.Suggested = rec.CurrentModel
			rec.Rationale = fmt.Sprintf(
				"CPU cache usage %.2f%% exceeds the %.2f%% threshold on a non-coherent device: the current %s model is the right choice",
				rec.CPUUsage*100, char.Thresholds.CPUCache*100, rec.CurrentModel)
		}
		return
	}
	rec.Suggested = "zc"
	rec.EnergyAdvantage = true
	if rec.CurrentModel == "zc" {
		rec.Rationale = "cache usage is low on both sides: ZC is already optimal (and saves transfer energy)"
		return
	}
	sp := estimateSCToZC(char, current)
	rec.SpeedupRatio = sp
	rec.Rationale = fmt.Sprintf(
		"cache usage is low on both sides (CPU %.2f%%, GPU %.1f%%): ZC eliminates %v of copy time per iteration; eqn 3 estimates up to %.0f%% speedup",
		rec.CPUUsage*100, rec.GPUUsage*100, current.Report.CopyTime.Duration(), perfmodel.SpeedupPercent(sp))
}

// estimateZCToSC prices leaving zero-copy: the kernel recovers by up to the
// cached/pinned throughput ratio, but the copies and serialization come back
// (eqn 4's structure), all bounded by the device maximum.
func estimateZCToSC(char Characterization, classify, current profile.Profile) float64 {
	gain := perfmodel.KernelGainZCToSC(classify.GPUDemand, char.PinnedGPUThroughput, char.ZCSCMaxSpeedup)
	estKernel := float64(current.KernelTime) / gain
	estCopies := copyEstimate(char, current)
	estSC := float64(current.CPUTime)/cpuUncacheFactor(char) + estKernel + estCopies
	if estSC <= 0 {
		return 1
	}
	sp := float64(current.Total) / estSC
	if sp > char.ZCSCMaxSpeedup && char.ZCSCMaxSpeedup > 0 {
		sp = char.ZCSCMaxSpeedup
	}
	return sp
}

// estimateSCToZC prices adopting zero-copy. For overlappable workloads it
// is eqn 3 (copy elimination + task overlap) with the device cap; for
// serialized workloads only the copy and flush elimination counts — eqn 3's
// overlap credit does not apply.
func estimateSCToZC(char Characterization, prof profile.Profile) float64 {
	if prof.Report.OverlapCapable {
		sp, err := perfmodel.SCToZC(perfmodel.Inputs{
			Runtime:  prof.Total,
			CopyTime: prof.Report.CopyTime,
			CPUTime:  prof.CPUTime,
			GPUTime:  prof.KernelTime,
		}, char.SCZCMaxSpeedup)
		if err != nil {
			return 1
		}
		return sp
	}
	saved := prof.Report.CopyTime + prof.Report.FlushTime
	if saved >= prof.Total {
		return 1
	}
	sp := float64(prof.Total) / float64(prof.Total-saved)
	if char.SCZCMaxSpeedup > 0 && sp > char.SCZCMaxSpeedup {
		sp = char.SCZCMaxSpeedup
	}
	return sp
}

// kernelPenaltyUnderZC estimates how much slower the kernel runs on the
// pinned path: demand over pinned throughput, at least 1.
func kernelPenaltyUnderZC(char Characterization, prof profile.Profile) float64 {
	if char.PinnedGPUThroughput <= 0 || prof.GPUDemand <= 0 {
		return 1
	}
	p := float64(prof.GPUDemand) / float64(char.PinnedGPUThroughput)
	if p < 1 {
		return 1
	}
	return p
}

// copyEstimate prices the explicit transfers SC would need, using the MB3
// characterization's effective copy throughput.
func copyEstimate(char Characterization, prof profile.Profile) float64 {
	bytes := prof.Report.DeclaredBytesIn + prof.Report.DeclaredBytesOut
	if bytes <= 0 {
		return 0
	}
	// The MB1 ZC/SC rows do not expose copy bandwidth directly; approximate
	// with the DRAM-bound pinned ceiling's counterpart: assume copies move
	// at the device's peak GPU DRAM throughput / 2 (read+write).
	bw := float64(char.PeakGPUThroughput) / 4
	if bw <= 0 {
		return 0
	}
	return float64(bytes) / bw * 1e9
}

// cpuUncacheFactor estimates how much faster the CPU task becomes when its
// buffers are cacheable again (only relevant leaving ZC on a non-coherent
// device). Without a direct measurement we use the MB1 CPU rows' ratio.
func cpuUncacheFactor(char Characterization) float64 {
	if char.IOCoherent {
		return 1
	}
	zc, okZC := char.MB1.Row("zc")
	sc, okSC := char.MB1.Row("sc")
	if !okZC || !okSC || sc.CPUTime <= 0 {
		return 1
	}
	f := float64(zc.CPUTime) / float64(sc.CPUTime)
	if f < 1 {
		return 1
	}
	return f
}

// String summarizes the recommendation for logs and CLIs.
func (r Recommendation) String() string {
	return fmt.Sprintf("%s/%s: %s -> %s (%+.1f%%, zone %v, cpu %.2f%%, gpu %.1f%%)",
		r.Platform, r.Workload, r.CurrentModel, r.Suggested,
		r.SpeedupPercent(), r.Zone, r.CPUUsage*100, r.GPUUsage*100)
}

// ClassificationProfile collects the caches-on (SC) profile Advise
// classifies with — exposed so tools can reuse it for stability analysis.
func ClassificationProfile(ctx context.Context, s *soc.SoC, w comm.Workload) (profile.Profile, error) {
	return profile.Collect(ctx, s, w, comm.SC{})
}

// CurrentProfile collects a profile under the given model.
func CurrentProfile(ctx context.Context, s *soc.SoC, w comm.Workload, m comm.Model) (profile.Profile, error) {
	return profile.Collect(ctx, s, w, m)
}
