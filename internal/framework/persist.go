package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"igpucomm/internal/faults"
)

// Persist-format fault points: save-side error injection and load-side byte
// mangling, so corrupt or truncated characterization files are a testable
// input rather than an assumption.
var (
	faultPersistSave = faults.Register("framework.persist.save",
		"characterization save", faults.CanError|faults.CanLatency)
	faultPersistLoad = faults.Register("framework.persist.load",
		"characterization bytes entering the loader",
		faults.CanError|faults.CanLatency|faults.CanCorrupt|faults.CanTruncate)
)

// characterizationFile is the on-disk envelope, versioned so stale caches
// fail loudly instead of silently advising from old physics.
type characterizationFile struct {
	FormatVersion int              `json:"format_version"`
	Data          Characterization `json:"characterization"`
}

// persistFormatVersion bumps whenever Characterization's semantics change.
const persistFormatVersion = 1

// SaveCharacterization writes the characterization as JSON. Device
// characterization is expensive (it runs the three micro-benchmarks at full
// scale) and application-independent, so tools cache it per platform.
func SaveCharacterization(w io.Writer, char Characterization) error {
	if char.Platform == "" {
		return fmt.Errorf("framework: refusing to save an empty characterization")
	}
	if err := faults.Fire(faultPersistSave); err != nil {
		return fmt.Errorf("framework: save characterization: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(characterizationFile{
		FormatVersion: persistFormatVersion,
		Data:          char,
	})
}

// LoadCharacterization reads a characterization saved by
// SaveCharacterization, validating the format version and basic sanity.
func LoadCharacterization(r io.Reader) (Characterization, error) {
	if faults.Enabled() {
		data, err := io.ReadAll(r)
		if err != nil {
			return Characterization{}, fmt.Errorf("framework: read characterization: %w", err)
		}
		data, err = faults.FireData(faultPersistLoad, data)
		if err != nil {
			return Characterization{}, fmt.Errorf("framework: load characterization: %w", err)
		}
		r = bytes.NewReader(data)
	}
	var f characterizationFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Characterization{}, fmt.Errorf("framework: decode characterization: %w", err)
	}
	if f.FormatVersion != persistFormatVersion {
		return Characterization{}, fmt.Errorf("framework: characterization format v%d, want v%d (re-run the micro-benchmarks)",
			f.FormatVersion, persistFormatVersion)
	}
	char := f.Data
	if char.Platform == "" {
		return Characterization{}, fmt.Errorf("framework: characterization has no platform")
	}
	if char.PeakGPUThroughput <= 0 {
		return Characterization{}, fmt.Errorf("framework: characterization has no peak throughput")
	}
	if err := char.Thresholds.Validate(); err != nil {
		return Characterization{}, fmt.Errorf("framework: %w", err)
	}
	return char, nil
}
