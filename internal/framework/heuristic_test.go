package framework

import (
	"strings"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/soc"
)

func heuristicWorkload(in, out, scratch int64, overlappable bool) comm.Workload {
	w := comm.Workload{Name: "synthetic", Overlappable: overlappable}
	if in > 0 {
		w.In = []comm.BufferSpec{{Name: "in", Size: in}}
	}
	if out > 0 {
		w.Out = []comm.BufferSpec{{Name: "out", Size: out}}
	}
	if scratch > 0 {
		w.Scratch = []comm.BufferSpec{{Name: "scratch", Size: scratch}}
	}
	return w
}

func mustDevice(t *testing.T, name string) soc.Config {
	t.Helper()
	cfg, err := devices.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestHeuristicScratchDominatedKeepsCopyingModel(t *testing.T) {
	cfg := mustDevice(t, devices.TX2Name)
	w := heuristicWorkload(1<<20, 1<<20, 8<<20, true)

	rec, err := HeuristicAdvise(cfg, w, "zc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneCacheDependent || rec.Suggested != "sc" {
		t.Errorf("zc current: zone=%v suggested=%q, want cache-dependent -> sc", rec.Zone, rec.Suggested)
	}
	rec, err = HeuristicAdvise(cfg, w, "um")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Suggested != "um" {
		t.Errorf("um current: suggested=%q, want um kept", rec.Suggested)
	}
	if !strings.HasPrefix(rec.Rationale, "degraded heuristic") {
		t.Errorf("rationale %q lacks the degraded prefix", rec.Rationale)
	}
	if rec.SpeedupRatio != 1 {
		t.Errorf("degraded advice estimated a speedup: %v", rec.SpeedupRatio)
	}
}

func TestHeuristicNonCoherentSerialKeepsCurrent(t *testing.T) {
	cfg := mustDevice(t, devices.TX2Name)
	if cfg.IOCoherent {
		t.Fatalf("%s unexpectedly coherent", cfg.Name)
	}
	w := heuristicWorkload(4<<20, 4<<20, 0, false)
	for _, current := range []string{"sc", "um", "zc"} {
		rec, err := HeuristicAdvise(cfg, w, current)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Suggested != current {
			t.Errorf("current %s: suggested %q, want current kept", current, rec.Suggested)
		}
		if rec.Zone != ZoneZCConditional {
			t.Errorf("current %s: zone %v, want conditional", current, rec.Zone)
		}
	}
}

func TestHeuristicTransferDominatedSuggestsZC(t *testing.T) {
	// Overlappable on a non-coherent device, or anything on a coherent one.
	for _, tc := range []struct {
		device       string
		overlappable bool
	}{
		{devices.TX2Name, true},
		{devices.XavierName, false},
	} {
		cfg := mustDevice(t, tc.device)
		rec, err := HeuristicAdvise(cfg, heuristicWorkload(8<<20, 2<<20, 1<<20, tc.overlappable), "sc")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Suggested != "zc" || rec.Zone != ZoneZCSafe {
			t.Errorf("%s: suggested=%q zone=%v, want zc / zc-safe", tc.device, rec.Suggested, rec.Zone)
		}
		if !rec.EnergyAdvantage {
			t.Errorf("%s: zc suggestion without energy advantage", tc.device)
		}
	}
}

func TestHeuristicRejectsUnknownCurrent(t *testing.T) {
	cfg := mustDevice(t, devices.TX2Name)
	if _, err := HeuristicAdvise(cfg, heuristicWorkload(1, 1, 0, false), "hybrid"); err == nil {
		t.Error("unknown current model accepted")
	}
}

// The heuristic must answer for every real device x app combination — it is
// the last line of defense, so it can never error on catalog inputs.
func TestHeuristicCoversCatalog(t *testing.T) {
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			w, err := catalog.ByName(app, catalog.Quick)
			if err != nil {
				t.Fatal(err)
			}
			for _, current := range []string{"sc", "um", "zc"} {
				rec, err := HeuristicAdvise(cfg, w, current)
				if err != nil {
					t.Fatalf("%s/%s current=%s: %v", cfg.Name, app, current, err)
				}
				if rec.Suggested == "" || rec.Rationale == "" {
					t.Errorf("%s/%s current=%s: empty recommendation %+v", cfg.Name, app, current, rec)
				}
			}
		}
	}
}
