package framework

import (
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/soc"
)

// Degraded-mode advice: when no device characterization is available — the
// cache is corrupt, the micro-benchmarks keep failing, the circuit breaker
// is open — advisord still answers, using only what is knowable without
// running anything: the workload's declared buffer topology and the device's
// static coherence capability. This is the paper's Fig-2 decision flow with
// the measured classification inputs replaced by structural proxies:
//
//   - A scratch-dominated kernel (GPU-side working storage larger than the
//     transferred set) is the structural signature of cache dependence — the
//     ORB-SLAM case in Table V — so a copying model is kept or suggested.
//   - Otherwise, on a non-coherent device a non-overlappable workload has no
//     overlap credit to pay for ZC's uncached CPU path, so the current model
//     is kept (the conditional zone's conservative answer).
//   - Otherwise ZC is suggested: copy elimination is the one gain that needs
//     no measurement to exist (eqn 3's CopyTime term), though its magnitude
//     is unknown, so no speedup is estimated.
//
// Degraded recommendations always carry SpeedupRatio 1 (no estimate) and a
// rationale prefixed "degraded heuristic".

// scratchDominanceRatio is the scratch share of total declared bytes above
// which the heuristic treats the kernel as cache-dependent.
const scratchDominanceRatio = 0.5

// HeuristicAdvise is the threshold-only fallback of the Fig-2 decision flow:
// advice from the workload's declared buffers and the device's static
// configuration alone, with no characterization or profiling. It powers
// advisord's degraded mode.
func HeuristicAdvise(cfg soc.Config, w comm.Workload, currentModel string) (Recommendation, error) {
	switch currentModel {
	case "sc", "um", "zc":
	default:
		return Recommendation{}, fmt.Errorf("framework: unknown current model %q", currentModel)
	}
	transfer := specBytes(w.In) + specBytes(w.Out)
	scratch := specBytes(w.Scratch)
	total := transfer + scratch

	rec := Recommendation{
		Platform:     cfg.Name,
		Workload:     w.Name,
		CurrentModel: currentModel,
		SpeedupRatio: 1,
	}

	switch {
	case total > 0 && float64(scratch)/float64(total) > scratchDominanceRatio:
		// Scratch-dominated: the kernel's working set lives GPU-side, the
		// structural proxy for heavy GPU cache use.
		rec.Zone = ZoneCacheDependent
		rec.GPUDependent = true
		rec.Suggested = currentModel
		if currentModel == "zc" {
			rec.Suggested = "sc"
		}
		rec.Rationale = fmt.Sprintf(
			"degraded heuristic: scratch buffers are %d of %d declared bytes — kernel working set is GPU-resident, a copying model is the safe choice",
			scratch, total)
	case !cfg.IOCoherent && !w.Overlappable:
		// Conditional-zone stance without measurements: no overlap credit
		// to pay for ZC's uncached CPU path on a non-coherent device.
		rec.Zone = ZoneZCConditional
		rec.Suggested = currentModel
		rec.Rationale = fmt.Sprintf(
			"degraded heuristic: %s has no I/O coherence and the workload declares no CPU/GPU overlap; keeping %s avoids an unmeasurable ZC kernel penalty",
			cfg.Name, currentModel)
	default:
		rec.Zone = ZoneZCSafe
		rec.Suggested = "zc"
		rec.EnergyAdvantage = true
		rec.Rationale = fmt.Sprintf(
			"degraded heuristic: %d transfer bytes per iteration and no structural cache dependence; zero-copy eliminates the copies (speedup not estimable without characterization)",
			transfer)
	}
	return rec, nil
}

func specBytes(specs []comm.BufferSpec) int64 {
	var n int64
	for _, s := range specs {
		n += s.Size
	}
	return n
}
