package framework

import (
	"encoding/json"
	"fmt"
	"io"

	"igpucomm/internal/heatmap"
	"igpucomm/internal/units"
)

// This file closes the heat-map loop: per-buffer heat (internal/heatmap,
// recorded by the cache simulator) becomes per-buffer placement hints and a
// schema-versioned artifact the advisor binary and advisord endpoint emit.

// Buffer heat classes.
const (
	BufferHot  = "hot"
	BufferWarm = "warm"
	BufferCold = "cold"
)

// Heat-classification thresholds. HeatScore is accessed bytes per buffer
// byte — effectively the buffer's reuse factor within one iteration.
const (
	// hotScoreThreshold: the iteration touches the buffer several times
	// over — communication latency for it is on the critical path.
	hotScoreThreshold = 4.0
	// coldScoreThreshold: at most ~one streaming pass.
	coldScoreThreshold = 1.5
	// smallBufferBytes splits "pin it" from "stream it": below this the
	// pinned path's narrow transactions stay cheaper than per-iteration
	// copy setup; above it bulk copy bandwidth wins.
	smallBufferBytes = 512 * units.KiB
)

// BufferHint is one buffer's placement advice derived from its heat: the
// mixed-model refinement of the whole-workload recommendation (hot small
// buffers → ZC, cold bulk → SC).
type BufferHint struct {
	Buffer string `json:"buffer"`
	// Class is "hot", "warm" or "cold".
	Class string `json:"class"`
	// Model is the per-buffer placement suggestion ("zc", "sc", "um").
	Model string `json:"model"`
	// Reason is the human-readable justification.
	Reason string `json:"reason"`
}

// PerBufferHints classifies each buffer hot/warm/cold from its heat and
// derives a per-buffer model hint. Returns nil for nil input (heat profiling
// off), so attaching hints to a recommendation never changes default output.
func PerBufferHints(heats []heatmap.BufferHeat) []BufferHint {
	if len(heats) == 0 {
		return nil
	}
	out := make([]BufferHint, 0, len(heats))
	for _, h := range heats {
		hint := BufferHint{Buffer: h.Name}
		small := h.Size <= smallBufferBytes
		switch {
		case h.HeatScore >= hotScoreThreshold:
			hint.Class = BufferHot
		case h.HeatScore < coldScoreThreshold:
			hint.Class = BufferCold
		default:
			hint.Class = BufferWarm
		}
		switch {
		case hint.Class == BufferHot && small:
			hint.Model = "zc"
			hint.Reason = fmt.Sprintf(
				"hot small buffer (%.1fx reuse over %d bytes): pin it zero-copy and skip the per-iteration copies",
				h.HeatScore, h.Size)
		case hint.Class == BufferHot:
			hint.Model = "sc"
			hint.Reason = fmt.Sprintf(
				"hot bulk working set (%.1fx reuse, %.0f%% hit rate): keep it cacheable behind software coherence",
				h.HeatScore, h.HitRate*100)
		case hint.Class == BufferCold && !small:
			hint.Model = "sc"
			hint.Reason = fmt.Sprintf(
				"cold bulk data (%.1fx reuse over %d bytes): stream it through the copy engine at bulk bandwidth",
				h.HeatScore, h.Size)
		case hint.Class == BufferCold:
			hint.Model = "zc"
			hint.Reason = fmt.Sprintf(
				"cold small buffer (%d bytes): copy setup would dominate; pin it zero-copy",
				h.Size)
		default:
			hint.Model = "um"
			hint.Reason = fmt.Sprintf(
				"moderate reuse (%.1fx): let the unified-memory driver place it on demand",
				h.HeatScore)
		}
		out = append(out, hint)
	}
	return out
}

// heatFormatVersion versions the HeatArtifact schema.
const heatFormatVersion = 1

// HeatEntry is one model run's heat snapshot within a HeatArtifact.
type HeatEntry struct {
	Platform string               `json:"platform"`
	Workload string               `json:"workload"`
	Model    string               `json:"model"`
	Total    units.Latency        `json:"total_ns"`
	Buffers  []heatmap.BufferHeat `json:"buffers"`
	Hints    []BufferHint         `json:"hints,omitempty"`
}

// HeatArtifact is the schema-versioned per-buffer heat report `advisor
// -heatmap` writes and `/v1/heatmap` serves.
type HeatArtifact struct {
	FormatVersion int         `json:"format_version"`
	Entries       []HeatEntry `json:"entries"`
}

// HeatEntriesFromExploration extracts one HeatEntry per ranked candidate
// that carries heat data (candidates from heat-disabled runs are skipped),
// attaching per-buffer hints to each.
func HeatEntriesFromExploration(exp Exploration) []HeatEntry {
	var out []HeatEntry
	for _, c := range exp.Ranked {
		if len(c.Report.BufferHeat) == 0 {
			continue
		}
		out = append(out, HeatEntry{
			Platform: exp.Platform,
			Workload: exp.Workload,
			Model:    c.Model,
			Total:    c.Total,
			Buffers:  c.Report.BufferHeat,
			Hints:    PerBufferHints(c.Report.BufferHeat),
		})
	}
	return out
}

// SaveHeatArtifact writes the artifact as indented, schema-versioned JSON.
func SaveHeatArtifact(w io.Writer, a HeatArtifact) error {
	a.FormatVersion = heatFormatVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("framework: save heat artifact: %w", err)
	}
	return nil
}

// LoadHeatArtifact reads a saved artifact, rejecting unknown fields and
// foreign format versions.
func LoadHeatArtifact(r io.Reader) (HeatArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a HeatArtifact
	if err := dec.Decode(&a); err != nil {
		return HeatArtifact{}, fmt.Errorf("framework: load heat artifact: %w", err)
	}
	if a.FormatVersion != heatFormatVersion {
		return HeatArtifact{}, fmt.Errorf("framework: heat artifact format version %d, want %d",
			a.FormatVersion, heatFormatVersion)
	}
	return a, nil
}
