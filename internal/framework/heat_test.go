package framework

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/units"
)

func TestPerBufferHintsClassification(t *testing.T) {
	tests := []struct {
		name      string
		heat      heatmap.BufferHeat
		wantClass string
		wantModel string
	}{
		{"hot small pins zero-copy",
			heatmap.BufferHeat{Name: "lut", Size: 64 * units.KiB, HeatScore: 10}, BufferHot, "zc"},
		{"hot bulk stays cached",
			heatmap.BufferHeat{Name: "frame", Size: 4 * units.MiB, HeatScore: 6, HitRate: 0.9}, BufferHot, "sc"},
		{"cold bulk streams",
			heatmap.BufferHeat{Name: "video", Size: 8 * units.MiB, HeatScore: 1.0}, BufferCold, "sc"},
		{"cold small pins",
			heatmap.BufferHeat{Name: "flags", Size: 4 * units.KiB, HeatScore: 0.5}, BufferCold, "zc"},
		{"warm goes managed",
			heatmap.BufferHeat{Name: "mid", Size: 1 * units.MiB, HeatScore: 2.0}, BufferWarm, "um"},
		{"hot threshold is inclusive",
			heatmap.BufferHeat{Name: "edge", Size: 1 * units.KiB, HeatScore: hotScoreThreshold}, BufferHot, "zc"},
		{"cold threshold is exclusive",
			heatmap.BufferHeat{Name: "edge2", Size: 1 * units.MiB, HeatScore: coldScoreThreshold}, BufferWarm, "um"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			hints := PerBufferHints([]heatmap.BufferHeat{tt.heat})
			if len(hints) != 1 {
				t.Fatalf("got %d hints, want 1", len(hints))
			}
			h := hints[0]
			if h.Buffer != tt.heat.Name {
				t.Errorf("Buffer = %q, want %q", h.Buffer, tt.heat.Name)
			}
			if h.Class != tt.wantClass || h.Model != tt.wantModel {
				t.Errorf("class/model = %s/%s, want %s/%s", h.Class, h.Model, tt.wantClass, tt.wantModel)
			}
			if h.Reason == "" {
				t.Error("empty reason")
			}
		})
	}
}

func TestPerBufferHintsNilForEmpty(t *testing.T) {
	if PerBufferHints(nil) != nil {
		t.Error("PerBufferHints(nil) != nil")
	}
	if PerBufferHints([]heatmap.BufferHeat{}) != nil {
		t.Error("PerBufferHints(empty) != nil")
	}
}

func TestHeatArtifactRoundTrip(t *testing.T) {
	art := HeatArtifact{Entries: []HeatEntry{{
		Platform: "jetson-tx2",
		Workload: "shwfs",
		Model:    "sc",
		Total:    12345,
		Buffers:  []heatmap.BufferHeat{{Name: "b", Kind: "host", Size: 4096, HeatScore: 5}},
		Hints:    PerBufferHints([]heatmap.BufferHeat{{Name: "b", Size: 4096, HeatScore: 5}}),
	}}}
	var buf bytes.Buffer
	if err := SaveHeatArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHeatArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.FormatVersion != heatFormatVersion {
		t.Errorf("FormatVersion = %d, want %d", got.FormatVersion, heatFormatVersion)
	}
	if len(got.Entries) != 1 || got.Entries[0].Model != "sc" ||
		len(got.Entries[0].Buffers) != 1 || len(got.Entries[0].Hints) != 1 {
		t.Errorf("round trip mangled entries: %+v", got.Entries)
	}
}

func TestLoadHeatArtifactRejectsBadInput(t *testing.T) {
	if _, err := LoadHeatArtifact(strings.NewReader(`{"format_version":99,"entries":[]}`)); err == nil {
		t.Error("foreign format version accepted")
	}
	if _, err := LoadHeatArtifact(strings.NewReader(`{"format_version":1,"entries":[],"extra":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadHeatArtifact(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestAdviseWorkloadAttachesHints checks the loop closure: when the advisory
// platform runs with heat enabled, AdviseWorkload's recommendation carries
// per-buffer hints; without heat it stays hint-free (and therefore
// JSON-identical to the pre-heat wire format).
func TestAdviseWorkloadAttachesHints(t *testing.T) {
	char, s := characterize(t, devices.TX2Name)
	w := computeWorkload()

	plain, err := AdviseWorkload(context.Background(), char, s, w, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if plain.BufferHints != nil {
		t.Errorf("heat-free advice carries hints: %+v", plain.BufferHints)
	}

	s.EnableHeat()
	defer s.DisableHeat()
	hot, err := AdviseWorkload(context.Background(), char, s, w, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if len(hot.BufferHints) == 0 {
		t.Fatal("heat-enabled advice carries no hints")
	}
	for _, h := range hot.BufferHints {
		if h.Buffer == "" || h.Class == "" || h.Model == "" || h.Reason == "" {
			t.Errorf("incomplete hint: %+v", h)
		}
	}
}
