package framework

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/devices"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/microbench"
	"igpucomm/internal/profile"
	"igpucomm/internal/soc"
)

// characterize caches per-platform characterizations across tests (they are
// application-independent, as the design intends).
var charCache = map[string]Characterization{}

func characterize(t *testing.T, name string) (Characterization, *soc.SoC) {
	t.Helper()
	s, err := devices.NewSoC(name)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := charCache[name]; ok {
		return c, s
	}
	c, err := Characterize(context.Background(), s, microbench.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	charCache[name] = c
	return c, s
}

// cacheHungryWorkload leans hard on the GPU LLC: high reuse over an
// LLC-resident buffer with almost no compute.
func cacheHungryWorkload() comm.Workload {
	const n = 32 * 1024 // 128KiB
	return comm.Workload{
		Name: "cache-hungry",
		In:   []comm.BufferSpec{{Name: "buf", Size: n * 4}},
		Out:  []comm.BufferSpec{{Name: "out", Size: 4096}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			c.Work(isa.FMA, 64)
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			buf := lay.Addr("buf")
			return gpu.Kernel{
				Name:    "reuse",
				Threads: 2048,
				Program: func(tid int, p *isa.Program) {
					for pass := 0; pass < 8; pass++ {
						for e := int64(0); e < 8; e++ {
							p.Ld(buf+(e*2048+int64(tid))*4%(n*4), 4)
						}
					}
				},
			}
		},
		Warmup: 1,
	}
}

// computeWorkload barely touches memory on either side.
func computeWorkload() comm.Workload {
	return comm.Workload{
		Name: "compute-heavy",
		In:   []comm.BufferSpec{{Name: "buf", Size: 64 * 1024}},
		Out:  []comm.BufferSpec{{Name: "out", Size: 64 * 1024}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			c.Load(lay.Addr("buf"), 4)
			c.Work(isa.FMA, 4096)
			c.Store(lay.Addr("buf"), 4)
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			buf := lay.Addr("buf")
			out := lay.Addr("out")
			return gpu.Kernel{
				Name:    "fma-storm",
				Threads: 512,
				Program: func(tid int, p *isa.Program) {
					p.Ld(buf+int64(tid)*4, 4)
					p.Compute(isa.FMA, 4096)
					p.St(out+int64(tid)*4, 4)
				},
			}
		},
		Overlappable: true,
		Warmup:       1,
	}
}

func TestCharacterizeBundlesEverything(t *testing.T) {
	char, _ := characterize(t, devices.TX2Name)
	if char.Platform != devices.TX2Name || char.IOCoherent {
		t.Error("identity fields wrong")
	}
	if char.PeakGPUThroughput <= char.PinnedGPUThroughput {
		t.Error("peak should exceed pinned throughput")
	}
	if char.ZCSCMaxSpeedup <= 1 {
		t.Error("ZC->SC max speedup should exceed 1")
	}
	if err := char.Thresholds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZoneString(t *testing.T) {
	if ZoneZCSafe.String() != "zc-safe" ||
		ZoneZCConditional.String() != "zc-conditional" ||
		ZoneCacheDependent.String() != "cache-dependent" {
		t.Error("zone strings wrong")
	}
	if !strings.Contains(Zone(9).String(), "9") {
		t.Error("unknown zone string wrong")
	}
}

func TestAdviseRejectsBadInputs(t *testing.T) {
	char, s := characterize(t, devices.TX2Name)
	prof, err := profile.Collect(context.Background(), s, computeWorkload(), comm.SC{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(char, prof, prof, "dma"); err == nil {
		t.Error("unknown model accepted")
	}
	wrong := prof
	wrong.Platform = "other-board"
	if _, err := Advise(char, wrong, prof, "sc"); err == nil {
		t.Error("cross-platform classification profile accepted")
	}
	if _, err := Advise(char, prof, wrong, "sc"); err == nil {
		t.Error("cross-platform current profile accepted")
	}
}

func TestCacheDependentOnZCSuggestsSC(t *testing.T) {
	char, s := characterize(t, devices.TX2Name)
	rec, err := AdviseWorkload(context.Background(), char, s, cacheHungryWorkload(), "zc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneCacheDependent {
		t.Fatalf("zone = %v (GPU usage %.3f, thresholds %+v)", rec.Zone, rec.GPUUsage, char.Thresholds)
	}
	if rec.Suggested != "sc" {
		t.Errorf("suggested = %q, want sc", rec.Suggested)
	}
	if rec.SpeedupRatio <= 1 {
		t.Errorf("speedup = %v, want > 1 (leaving the starved pinned path)", rec.SpeedupRatio)
	}
	if rec.SpeedupRatio > char.ZCSCMaxSpeedup {
		t.Errorf("speedup %v exceeds device max %v", rec.SpeedupRatio, char.ZCSCMaxSpeedup)
	}
}

func TestCacheDependentOnSCKeeps(t *testing.T) {
	char, s := characterize(t, devices.TX2Name)
	rec, err := AdviseWorkload(context.Background(), char, s, cacheHungryWorkload(), "sc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Suggested != "sc" || rec.SpeedupRatio != 1 {
		t.Errorf("cache-dependent app on SC should stay: %+v", rec)
	}
}

func TestComputeWorkloadGetsZC(t *testing.T) {
	char, s := characterize(t, devices.XavierName)
	rec, err := AdviseWorkload(context.Background(), char, s, computeWorkload(), "sc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Zone != ZoneZCSafe {
		t.Fatalf("zone = %v (GPU usage %.4f)", rec.Zone, rec.GPUUsage)
	}
	if rec.Suggested != "zc" {
		t.Errorf("suggested = %q, want zc", rec.Suggested)
	}
	if !rec.EnergyAdvantage {
		t.Error("ZC suggestion should note the energy advantage")
	}
	if rec.SpeedupRatio < 1 {
		t.Errorf("speedup = %v, want >= 1", rec.SpeedupRatio)
	}
	if rec.SpeedupRatio > char.SCZCMaxSpeedup {
		t.Errorf("speedup %v exceeds MB3 cap %v", rec.SpeedupRatio, char.SCZCMaxSpeedup)
	}
}

func TestComputeWorkloadOnZCKeeps(t *testing.T) {
	char, s := characterize(t, devices.XavierName)
	rec, err := AdviseWorkload(context.Background(), char, s, computeWorkload(), "zc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Suggested != "zc" || rec.SpeedupRatio != 1 {
		t.Errorf("optimal placement should be kept: %+v", rec)
	}
}

func TestCPUDependentOnNonCoherentAvoidsZC(t *testing.T) {
	char, s := characterize(t, devices.TX2Name)
	// Memory-heavy CPU task with LLC-served working set, trivial kernel.
	w := comm.Workload{
		Name: "cpu-bound",
		In:   []comm.BufferSpec{{Name: "buf", Size: 256 * 1024}},
		Out:  []comm.BufferSpec{{Name: "out", Size: 4096}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			// Produce the buffer, then re-read it: the re-read pass is
			// served by the LLC (the 256KiB set exceeds L1), which is
			// exactly the locality eqn 1 measures.
			base := lay.Addr("buf")
			for i := int64(0); i < 4096; i++ {
				c.Store(base+i*64%(256*1024), 4)
			}
			for pass := 0; pass < 4; pass++ {
				for i := int64(0); i < 4096; i++ {
					c.Load(base+i*64%(256*1024), 4)
					c.Work(isa.FMA, 2)
				}
			}
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			out := lay.Addr("out")
			return gpu.Kernel{Name: "tiny", Threads: 32, Program: func(tid int, p *isa.Program) {
				p.Compute(isa.FMA, 64)
				p.St(out+int64(tid)*4, 4)
			}}
		},
		Warmup: 1,
	}
	rec, err := AdviseWorkload(context.Background(), char, s, w, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.CPUDependent {
		t.Fatalf("CPU usage %.4f should exceed threshold %.4f", rec.CPUUsage, char.Thresholds.CPUCache)
	}
	if rec.Suggested == "zc" {
		t.Error("CPU-cache-dependent app on a non-coherent device must not get ZC")
	}
}

func TestSameWorkloadDifferentVerdictAcrossDevices(t *testing.T) {
	// The paper's central point: the best model depends on the device.
	w := cacheHungryWorkload()
	verdicts := map[string]Recommendation{}
	for _, name := range []string{devices.TX2Name, devices.XavierName} {
		char, s := characterize(t, name)
		rec, err := AdviseWorkload(context.Background(), char, s, w, "zc")
		if err != nil {
			t.Fatal(err)
		}
		verdicts[name] = rec
	}
	tx2 := verdicts[devices.TX2Name]
	xavier := verdicts[devices.XavierName]
	if tx2.Suggested != "sc" {
		t.Errorf("TX2 should pull a cache-hungry kernel off ZC, got %q", tx2.Suggested)
	}
	// Xavier tolerates more: either it keeps ZC (conditional zone) or the
	// estimated gain from leaving is far smaller than TX2's.
	if xavier.Suggested == "sc" && xavier.SpeedupRatio >= tx2.SpeedupRatio {
		t.Errorf("Xavier's ZC exit gain (%.1fx) should be below TX2's (%.1fx)",
			xavier.SpeedupRatio, tx2.SpeedupRatio)
	}
}

func TestRationaleAlwaysPresent(t *testing.T) {
	char, s := characterize(t, devices.TX2Name)
	for _, model := range []string{"sc", "um", "zc"} {
		rec, err := AdviseWorkload(context.Background(), char, s, computeWorkload(), model)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Rationale == "" {
			t.Errorf("model %s: empty rationale", model)
		}
		if rec.Suggested == "" {
			t.Errorf("model %s: no suggestion", model)
		}
	}
}

func TestSpeedupPercentConvention(t *testing.T) {
	r := Recommendation{SpeedupRatio: 1.38}
	if pct := r.SpeedupPercent(); pct < 37.9 || pct > 38.1 {
		t.Errorf("percent = %v, want 38", pct)
	}
}

func TestExploreRanksModels(t *testing.T) {
	_, s := characterize(t, devices.XavierName)
	exp, err := Explore(s, computeWorkload(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Ranked) != 3 {
		t.Fatalf("ranked %d models, want 3", len(exp.Ranked))
	}
	for i := 1; i < len(exp.Ranked); i++ {
		if exp.Ranked[i-1].Total > exp.Ranked[i].Total {
			t.Fatal("ranking not sorted")
		}
	}
	// A copy-light compute workload on the coherent board: ZC wins.
	if exp.Best().Model != "zc" {
		t.Errorf("best = %q, want zc", exp.Best().Model)
	}
	sp, err := exp.SpeedupOver("sc")
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1 {
		t.Errorf("speedup over sc = %v, want >= 1", sp)
	}
	if _, ok := exp.Candidate("nvlink"); ok {
		t.Error("unknown candidate found")
	}
	if _, err := exp.SpeedupOver("nvlink"); err == nil {
		t.Error("unknown model speedup accepted")
	}
}

func TestExploreErrors(t *testing.T) {
	_, s := characterize(t, devices.TX2Name)
	if _, err := Explore(s, computeWorkload(), []comm.Model{}); err == nil {
		t.Error("empty model list accepted")
	}
	bad := computeWorkload()
	bad.Name = ""
	if _, err := Explore(s, bad, nil); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestAdviceValidatesAgainstExploration(t *testing.T) {
	// The framework's suggestion should be within tolerance of the measured
	// best for the scenarios it was built for.
	char, s := characterize(t, devices.XavierName)
	w := computeWorkload()
	rec, err := AdviseWorkload(context.Background(), char, s, w, "sc")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Explore(s, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	regret, ok, err := exp.Validate(rec, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("suggested %q has regret %.2fx vs measured best %q",
			rec.Suggested, regret, exp.Best().Model)
	}
	// A model the exploration never ran is an error.
	fake := rec
	fake.Suggested = "sc-async"
	if _, _, err := exp.Validate(fake, 0.1); err == nil {
		t.Error("unexplored suggestion accepted")
	}
}

func TestCharacterizationRoundTrip(t *testing.T) {
	char, _ := characterize(t, devices.TX2Name)
	var buf bytes.Buffer
	if err := SaveCharacterization(&buf, char); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCharacterization(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != char.Platform ||
		back.PeakGPUThroughput != char.PeakGPUThroughput ||
		back.Thresholds != char.Thresholds ||
		back.SCZCMaxSpeedup != char.SCZCMaxSpeedup {
		t.Error("round trip lost data")
	}
	if len(back.MB1.Rows) != len(char.MB1.Rows) || len(back.MB2.GPU) != len(char.MB2.GPU) {
		t.Error("micro-benchmark payloads lost")
	}
	// A loaded characterization must drive Advise exactly like the original.
	recA, err := AdviseWorkload(context.Background(), char, mustSoC(t, devices.TX2Name), computeWorkload(), "sc")
	if err != nil {
		t.Fatal(err)
	}
	recB, err := AdviseWorkload(context.Background(), back, mustSoC(t, devices.TX2Name), computeWorkload(), "sc")
	if err != nil {
		t.Fatal(err)
	}
	if recA.Suggested != recB.Suggested || recA.Zone != recB.Zone {
		t.Error("loaded characterization advises differently")
	}
}

func mustSoC(t *testing.T, name string) *soc.SoC {
	t.Helper()
	s, err := devices.NewSoC(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadCharacterizationErrors(t *testing.T) {
	if err := SaveCharacterization(io.Discard, Characterization{}); err == nil {
		t.Error("empty characterization saved")
	}
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"format_version": 99, "characterization": {"Platform": "x"}}`,
		"no platform":   `{"format_version": 1, "characterization": {}}`,
		"unknown field": `{"format_version": 1, "bogus": 1, "characterization": {"Platform": "x"}}`,
	}
	for name, data := range cases {
		if _, err := LoadCharacterization(strings.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRecommendationString(t *testing.T) {
	r := Recommendation{
		Platform: "tx2", Workload: "app", CurrentModel: "sc", Suggested: "zc",
		SpeedupRatio: 1.5, Zone: ZoneZCSafe, CPUUsage: 0.1, GPUUsage: 0.05,
	}
	s := r.String()
	for _, want := range []string{"tx2", "app", "sc -> zc", "+50.0%", "zc-safe"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
