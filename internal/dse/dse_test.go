package dse

import (
	"math"
	"testing"

	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/workloadgen"
)

// streamingWorkload is copy-dominated: the crossover stories below hinge on
// transfer costs, exactly what the axes move.
func streamingWorkload(t *testing.T) comm.Workload {
	t.Helper()
	w, err := workloadgen.Build(workloadgen.Spec{
		Name:     "dse-streaming",
		Elements: 1 << 16,
		CPU:      workloadgen.CPUSpec{Shape: workloadgen.StreamPass, Iterations: 1024, ComputePerIteration: 2},
		Kernel:   workloadgen.KernelSpec{Shape: workloadgen.Streaming, ComputePerThread: 8},
		Warmup:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAxisByName(t *testing.T) {
	for _, name := range []string{"io", "copy", "pinned", "dram", "io-coherence-bandwidth"} {
		if _, err := AxisByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := AxisByName("nvlink"); err == nil {
		t.Error("unknown axis accepted")
	}
}

func TestLinspaceAndGeomspace(t *testing.T) {
	lin := Linspace(0, 10, 6)
	if len(lin) != 6 || lin[0] != 0 || lin[5] != 10 || lin[3] != 6 {
		t.Errorf("linspace = %v", lin)
	}
	if Linspace(1, 2, 0) != nil {
		t.Error("n=0 should give nil")
	}
	if got := Linspace(5, 9, 1); len(got) != 1 || got[0] != 5 {
		t.Error("n=1 should give [lo]")
	}
	geo := Geomspace(1, 100, 3)
	if len(geo) != 3 || math.Abs(geo[1]-10) > 1e-9 || math.Abs(geo[2]-100) > 1e-9 {
		t.Errorf("geomspace = %v", geo)
	}
	if Geomspace(-1, 10, 3) != nil || Geomspace(1, 10, 0) != nil {
		t.Error("invalid geomspace inputs accepted")
	}
}

func TestSweepErrors(t *testing.T) {
	w := streamingWorkload(t)
	base := devices.TX2()
	if _, err := Sweep(base, Axis{}, []float64{1}, w, nil); err == nil {
		t.Error("axis without Apply accepted")
	}
	if _, err := Sweep(base, CopyBandwidth, nil, w, nil); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Sweep(base, CopyBandwidth, []float64{-5}, w, nil); err == nil {
		t.Error("invalid config value accepted")
	}
}

func TestCopyBandwidthCrossover(t *testing.T) {
	// On the coherent board, a copy-dominated streaming workload flips
	// from ZC-best (starved copy engine) to SC-best (fast copy engine)...
	// or stays ZC if copies never dominate; either way the sweep is
	// monotone: SC totals fall as the engine speeds up.
	w := streamingWorkload(t)
	points, err := Sweep(devices.Xavier(), CopyBandwidth, []float64{0.5, 2, 8, 32}, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Totals["sc"] > points[i-1].Totals["sc"] {
			t.Errorf("SC total not monotone in copy bandwidth: %v -> %v",
				points[i-1].Totals["sc"], points[i].Totals["sc"])
		}
	}
	// ZC ignores the copy engine entirely.
	for i := 1; i < len(points); i++ {
		if points[i].Totals["zc"] != points[0].Totals["zc"] {
			t.Error("ZC total moved with the copy engine")
		}
	}
	// At a crawling copy engine ZC must win.
	if points[0].Best != "zc" {
		t.Errorf("best at 0.5 GB/s copy engine = %q, want zc", points[0].Best)
	}
}

func TestIOBandwidthMakesZCViable(t *testing.T) {
	// Sweep the coherence path on a TX2-like base: with a fast coherent
	// path the board behaves like Xavier and ZC wins the copy-dominated
	// workload; ZC totals fall monotonically along the axis.
	w := streamingWorkload(t)
	points, err := Sweep(devices.TX2(), IOBandwidth, []float64{1, 4, 16, 64}, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Totals["zc"] > points[i-1].Totals["zc"] {
			t.Errorf("ZC total not monotone in IO bandwidth: %v -> %v",
				points[i-1].Totals["zc"], points[i].Totals["zc"])
		}
	}
	if v, ok := Crossover(points, "zc"); !ok {
		t.Error("no IO bandwidth makes ZC best — expected a crossover")
	} else if v <= 0 {
		t.Errorf("crossover at %v", v)
	}
}

func TestCrossoverAbsent(t *testing.T) {
	points := []Point{{Value: 1, Best: "sc"}, {Value: 2, Best: "sc"}}
	if _, ok := Crossover(points, "zc"); ok {
		t.Error("found a crossover that does not exist")
	}
}
