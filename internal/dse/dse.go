// Package dse performs design-space exploration over device parameters:
// given a workload, sweep one platform characteristic (coherent-path
// bandwidth, copy-engine speed, pinned-path bandwidth, DRAM bandwidth) and
// find where the best communication model flips. The paper's conclusion —
// that the device's coherence support decides whether zero-copy is usable —
// becomes a measurable crossover here, and a hardware architect can ask the
// dual question: how fast must the I/O-coherent path be before ZC wins for
// this application?
package dse

import (
	"fmt"
	"math"

	"igpucomm/internal/comm"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// Axis is one swept device parameter.
type Axis struct {
	// Name identifies the axis in reports.
	Name string
	// Unit renders values ("GB/s").
	Unit string
	// Apply mutates a config to set the axis value.
	Apply func(cfg *soc.Config, value float64)
}

// Predefined axes.
var (
	// IOBandwidth sweeps the hardware I/O-coherence path (and forces the
	// platform coherent) — "how good must Xavier's coherence be?".
	IOBandwidth = Axis{
		Name: "io-coherence-bandwidth", Unit: "GB/s",
		Apply: func(cfg *soc.Config, v float64) {
			cfg.IOCoherent = true
			cfg.IOBandwidth = units.BytesPerSecond(v) * units.GBps
		},
	}
	// CopyBandwidth sweeps the copy engine — moves the SC<->ZC crossover.
	CopyBandwidth = Axis{
		Name: "copy-bandwidth", Unit: "GB/s",
		Apply: func(cfg *soc.Config, v float64) {
			cfg.CopyBandwidth = units.BytesPerSecond(v) * units.GBps
		},
	}
	// PinnedBandwidth sweeps the uncached pinned path on a non-coherent
	// platform.
	PinnedBandwidth = Axis{
		Name: "pinned-bandwidth", Unit: "GB/s",
		Apply: func(cfg *soc.Config, v float64) {
			cfg.IOCoherent = false
			cfg.PinnedBandwidth = units.BytesPerSecond(v) * units.GBps
		},
	}
	// DRAMBandwidth sweeps the shared memory itself.
	DRAMBandwidth = Axis{
		Name: "dram-bandwidth", Unit: "GB/s",
		Apply: func(cfg *soc.Config, v float64) {
			bw := units.BytesPerSecond(v) * units.GBps
			cfg.DRAM.Bandwidth = bw
			cfg.GPU.DRAMBandwidth = bw * 85 / 100
		},
	}
)

// AxisByName resolves a predefined axis.
func AxisByName(name string) (Axis, error) {
	for _, a := range []Axis{IOBandwidth, CopyBandwidth, PinnedBandwidth, DRAMBandwidth} {
		if a.Name == name || shortName(a.Name) == name {
			return a, nil
		}
	}
	return Axis{}, fmt.Errorf("dse: unknown axis %q (have io, copy, pinned, dram)", name)
}

func shortName(full string) string {
	switch full {
	case "io-coherence-bandwidth":
		return "io"
	case "copy-bandwidth":
		return "copy"
	case "pinned-bandwidth":
		return "pinned"
	case "dram-bandwidth":
		return "dram"
	}
	return full
}

// Point is one sweep sample.
type Point struct {
	Value float64
	// Totals per model name, in simulated ns.
	Totals map[string]units.Latency
	// Best is the fastest model at this point.
	Best string
}

// Sweep evaluates the workload under the given models (the paper's three
// when nil) at each axis value, on a fresh platform built from the modified
// base config.
func Sweep(base soc.Config, axis Axis, values []float64, w comm.Workload, models []comm.Model) ([]Point, error) {
	if axis.Apply == nil {
		return nil, fmt.Errorf("dse: axis has no Apply")
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("dse: no axis values")
	}
	if models == nil {
		models = comm.Models()
	}
	out := make([]Point, 0, len(values))
	for _, v := range values {
		cfg := base
		cfg.Name = fmt.Sprintf("%s[%s=%g]", base.Name, shortName(axis.Name), v)
		axis.Apply(&cfg, v)
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("dse: %s=%g: %w", axis.Name, v, err)
		}
		s := soc.New(cfg)
		pt := Point{Value: v, Totals: map[string]units.Latency{}}
		best := units.Latency(0)
		for _, m := range models {
			rep, err := m.Run(s, w)
			if err != nil {
				return nil, fmt.Errorf("dse: %s=%g under %s: %w", axis.Name, v, m.Name(), err)
			}
			pt.Totals[m.Name()] = rep.Total
			if pt.Best == "" || rep.Total < best {
				pt.Best = m.Name()
				best = rep.Total
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// Crossover returns the first axis value at which `model` becomes the best
// choice, and whether such a point exists.
func Crossover(points []Point, model string) (float64, bool) {
	for _, p := range points {
		if p.Best == model {
			return p.Value, true
		}
	}
	return 0, false
}

// Linspace builds n evenly spaced values over [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Geomspace builds n geometrically spaced values over [lo, hi]; lo and hi
// must be positive.
func Geomspace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
