package experiments

import (
	"context"
	"fmt"

	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
	"igpucomm/internal/report"
)

// Table1Data is experiment E1: maximum GPU cache throughput per model
// (paper Table I).
type Table1Data struct {
	// Rows[board][model] in GB/s.
	ZC, SC, UM map[string]float64
}

// Paper reference values for Table I (GB/s).
var table1Paper = map[string]map[string]float64{
	devices.TX2Name:    {"zc": 1.28, "sc": 97.34, "um": 104.15},
	devices.XavierName: {"zc": 32.29, "sc": 214.64, "um": 231.14},
}

// Table1 regenerates Table I on TX2 and Xavier.
func Table1(ctx context.Context, c *Context) (report.Table, Table1Data, error) {
	data := Table1Data{
		ZC: map[string]float64{}, SC: map[string]float64{}, UM: map[string]float64{},
	}
	t := report.Table{
		Title:   "Table I — Maximum throughput of the GPU cache (GB/s)",
		Headers: []string{"Board", "Zero Copy", "Standard Copy", "Unified Memory"},
		Note:    "paper values in parentheses; UM-vs-SC sign varies across the paper's own experiments (±8% band, §III-A)",
	}
	for _, board := range []string{devices.TX2Name, devices.XavierName} {
		char, err := c.Char(ctx, board)
		if err != nil {
			return report.Table{}, Table1Data{}, err
		}
		rows := map[string]float64{}
		for _, model := range []string{"zc", "sc", "um"} {
			row, ok := char.MB1.Row(model)
			if !ok {
				return report.Table{}, Table1Data{}, fmt.Errorf("experiments: mb1 missing %s row", model)
			}
			rows[model] = row.Throughput.GB()
		}
		data.ZC[board] = rows["zc"]
		data.SC[board] = rows["sc"]
		data.UM[board] = rows["um"]
		t.AddRow(board,
			report.PaperVsMeasured(rows["zc"], table1Paper[board]["zc"], ""),
			report.PaperVsMeasured(rows["sc"], table1Paper[board]["sc"], ""),
			report.PaperVsMeasured(rows["um"], table1Paper[board]["um"], ""))
	}
	return t, data, nil
}

// Fig5Data is experiment E2: MB1 execution times per model (paper Fig 5).
type Fig5Data struct {
	// CPU and GPU times in µs, per board per model.
	CPU, GPU map[string]map[string]float64
}

// Fig5 regenerates the first benchmark's execution-time bars.
func Fig5(ctx context.Context, c *Context) (report.Table, Fig5Data, error) {
	data := Fig5Data{CPU: map[string]map[string]float64{}, GPU: map[string]map[string]float64{}}
	t := report.Table{
		Title:   "Fig 5 — First micro-benchmark execution times (µs)",
		Headers: []string{"Board", "Model", "CPU routine", "GPU kernel"},
		Note:    "ZC on TX2/Nano uncaches both sides; Xavier's I/O coherence protects the CPU routine",
	}
	for _, board := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		char, err := c.Char(ctx, board)
		if err != nil {
			return report.Table{}, Fig5Data{}, err
		}
		data.CPU[board] = map[string]float64{}
		data.GPU[board] = map[string]float64{}
		for _, model := range []string{"sc", "um", "zc"} {
			row, _ := char.MB1.Row(model)
			cpuUS := row.CPUTime.Seconds() * 1e6
			gpuUS := row.KernelTime.Seconds() * 1e6
			data.CPU[board][model] = cpuUS
			data.GPU[board][model] = gpuUS
			t.AddRow(board, model, cpuUS, gpuUS)
		}
	}
	return t, data, nil
}

// SweepData is experiments E3/E4: the second micro-benchmark's sweep
// (paper Figs 3 and 6).
type SweepData struct {
	Board        string
	MB2          microbench.MB2Result
	ThresholdLow float64 // paper: 16.2% Xavier, 2.7% TX2
	ThresholdHi  float64 // paper: 57.1% Xavier
}

// Paper threshold references.
var sweepPaper = map[string][2]float64{
	devices.TX2Name:    {0.027, 0.027},
	devices.XavierName: {0.162, 0.571},
}

// Fig3 regenerates the Xavier sweep; Fig6 the TX2 sweep.
func Fig3(ctx context.Context, c *Context) (report.Series, SweepData, error) {
	return sweep(ctx, c, devices.XavierName, "Fig 3")
}

// Fig6 is the TX2 counterpart of Fig3.
func Fig6(ctx context.Context, c *Context) (report.Series, SweepData, error) {
	return sweep(ctx, c, devices.TX2Name, "Fig 6")
}

func sweep(ctx context.Context, c *Context, board, fig string) (report.Series, SweepData, error) {
	char, err := c.Char(ctx, board)
	if err != nil {
		return report.Series{}, SweepData{}, err
	}
	mb2 := char.MB2
	s := report.Series{
		Title:   fmt.Sprintf("%s — Second micro-benchmark on %s (memory-op density sweep)", fig, board),
		XLabel:  "mem-op fraction",
		Columns: []string{"SC kernel µs", "ZC kernel µs", "ZC/SC ratio", "cache usage %"},
		Note: fmt.Sprintf("thresholds: low %.1f%% high %.1f%% (paper %.1f%% / %.1f%%)",
			mb2.Thresholds.GPUCacheLow*100, mb2.Thresholds.GPUCacheHigh*100,
			sweepPaper[board][0]*100, sweepPaper[board][1]*100),
	}
	for _, pt := range mb2.GPU {
		ratio := 0.0
		if pt.SCKernel > 0 {
			ratio = float64(pt.ZCKernel) / float64(pt.SCKernel)
		}
		s.AddPoint(pt.Fraction,
			pt.SCKernel.Seconds()*1e6, pt.ZCKernel.Seconds()*1e6, ratio, pt.CacheUsage*100)
	}
	return s, SweepData{
		Board:        board,
		MB2:          mb2,
		ThresholdLow: mb2.Thresholds.GPUCacheLow,
		ThresholdHi:  mb2.Thresholds.GPUCacheHigh,
	}, nil
}

// Fig7Data is experiment E5: the third micro-benchmark (paper Fig 7).
type Fig7Data struct {
	// Totals in µs per board per model; Max speedups per board.
	Totals map[string]map[string]float64
	SCZC   map[string]float64
	UMZC   map[string]float64
}

// Fig7 regenerates the balanced overlapped workload comparison.
func Fig7(ctx context.Context, c *Context) (report.Table, Fig7Data, error) {
	data := Fig7Data{
		Totals: map[string]map[string]float64{},
		SCZC:   map[string]float64{},
		UMZC:   map[string]float64{},
	}
	t := report.Table{
		Title:   "Fig 7 — Third micro-benchmark: balanced CPU+GPU, fully overlapped ZC",
		Headers: []string{"Board", "SC µs", "UM µs", "ZC µs", "SC/ZC", "UM/ZC"},
		Note:    "paper: ZC up to 152% faster than SC and 164% than UM (its best case is the I/O-coherent board)",
	}
	for _, board := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		char, err := c.Char(ctx, board)
		if err != nil {
			return report.Table{}, Fig7Data{}, err
		}
		mb3 := char.MB3
		data.Totals[board] = map[string]float64{
			"sc": mb3.SCTotal.Seconds() * 1e6,
			"um": mb3.UMTotal.Seconds() * 1e6,
			"zc": mb3.ZCTotal.Seconds() * 1e6,
		}
		data.SCZC[board] = mb3.SCZCMaxSpeedup()
		data.UMZC[board] = mb3.UMZCSpeedup()
		t.AddRow(board,
			data.Totals[board]["sc"], data.Totals[board]["um"], data.Totals[board]["zc"],
			fmt.Sprintf("%.2fx", data.SCZC[board]), fmt.Sprintf("%.2fx", data.UMZC[board]))
	}
	return t, data, nil
}
