package experiments

import (
	"context"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/report"
)

// EnergyData quantifies the per-frame energy of each model and the J/s
// savings the paper reports in prose (§IV-B: 0.12 J/s on Xavier and 0.09 J/s
// on TX2 for SH-WFS; §IV-C: 0.17 J/s on Xavier for ORB-SLAM at 30 Hz).
type EnergyData struct {
	// JoulesPerFrame[board][app][model].
	JoulesPerFrame map[string]map[string]map[string]float64
	// BestModelSavingJPerS[board][app] is the energy saved per second by
	// the framework's recommended model versus SC, at 30 Hz.
	BestModelSavingJPerS map[string]map[string]float64
}

// TableEnergy regenerates the energy accounting for both case studies.
func TableEnergy(ctx context.Context, c *Context) (report.Table, EnergyData, error) {
	data := EnergyData{
		JoulesPerFrame:       map[string]map[string]map[string]float64{},
		BestModelSavingJPerS: map[string]map[string]float64{},
	}
	t := report.Table{
		Title:   "Energy — per-frame energy by model and SC->ZC saving at 30 Hz",
		Headers: []string{"Board", "App", "SC mJ", "UM mJ", "ZC mJ", "ZC saving J/s"},
		Note:    "paper prose: SH-WFS saves 0.12 J/s (Xavier) / 0.09 J/s (TX2); ORB-SLAM saves 0.17 J/s (Xavier); savings only count where ZC performance holds",
	}
	apps := map[string]func() (comm.Workload, error){
		"shwfs":   shwfsWorkload,
		"orbslam": orbWorkload,
	}
	for _, board := range []string{devices.TX2Name, devices.XavierName} {
		s, err := c.SoC(board)
		if err != nil {
			return report.Table{}, EnergyData{}, err
		}
		data.JoulesPerFrame[board] = map[string]map[string]float64{}
		data.BestModelSavingJPerS[board] = map[string]float64{}
		for _, app := range []string{"shwfs", "orbslam"} {
			w, err := apps[app]()
			if err != nil {
				return report.Table{}, EnergyData{}, err
			}
			frames := map[string]float64{}
			var scRep, zcRep comm.Report
			for _, m := range comm.Models() {
				rep, err := m.Run(s, w)
				if err != nil {
					return report.Table{}, EnergyData{}, err
				}
				frames[m.Name()] = s.Config().Power.Joules(rep.Energy)
				switch m.Name() {
				case "sc":
					scRep = rep
				case "zc":
					zcRep = rep
				}
			}
			data.JoulesPerFrame[board][app] = frames
			saving := s.Config().Power.SavingPerSecond(scRep.Energy, zcRep.Energy, Table3IterationRate)
			data.BestModelSavingJPerS[board][app] = saving
			t.AddRow(board, app,
				frames["sc"]*1e3, frames["um"]*1e3, frames["zc"]*1e3, saving)
		}
	}
	return t, data, nil
}
