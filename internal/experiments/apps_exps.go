package experiments

import (
	"context"
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/profile"
	"igpucomm/internal/report"
)

// AppProfile is one board's profiling row for an application (Tables II/IV).
type AppProfile struct {
	Board           string
	CPUUsage        float64
	CPUThreshold    float64
	GPUUsage        float64
	GPUThresholdLo  float64
	GPUThresholdHi  float64
	KernelTimePerUS float64
	CopyTimePerUS   float64
	Zone            framework.Zone
	Suggested       string
	PredictedPct    float64 // predicted speedup of adopting the suggestion, %
}

// profileApp profiles the workload under SC and runs the advisor.
func (c *Context) profileApp(ctx context.Context, board string, w comm.Workload, currentModel string) (AppProfile, error) {
	char, err := c.Char(ctx, board)
	if err != nil {
		return AppProfile{}, err
	}
	s, err := c.SoC(board)
	if err != nil {
		return AppProfile{}, err
	}
	prof, err := profile.Collect(ctx, s, w, comm.SC{})
	if err != nil {
		return AppProfile{}, err
	}
	rec, err := framework.AdviseWorkload(ctx, char, s, w, currentModel)
	if err != nil {
		return AppProfile{}, err
	}
	return AppProfile{
		Board:           board,
		CPUUsage:        rec.CPUUsage,
		CPUThreshold:    char.Thresholds.CPUCache,
		GPUUsage:        rec.GPUUsage,
		GPUThresholdLo:  char.Thresholds.GPUCacheLow,
		GPUThresholdHi:  char.Thresholds.GPUCacheHigh,
		KernelTimePerUS: prof.KernelTimePer.Seconds() * 1e6,
		CopyTimePerUS:   prof.CopyTimePer.Seconds() * 1e6,
		Zone:            rec.Zone,
		Suggested:       rec.Suggested,
		PredictedPct:    rec.SpeedupPercent(),
	}, nil
}

// Table2Data is experiment E6: SH-WFS profiling (paper Table II).
type Table2Data struct{ Rows map[string]AppProfile }

// Table2 regenerates the SH-WFS profiling table on all three boards.
func Table2(ctx context.Context, c *Context) (report.Table, Table2Data, error) {
	w, err := shwfsWorkload()
	if err != nil {
		return report.Table{}, Table2Data{}, err
	}
	data := Table2Data{Rows: map[string]AppProfile{}}
	t := report.Table{
		Title: "Table II — Profiling results of the SH-WFS application",
		Headers: []string{"Board", "CPU usage %", "CPU thresh %", "GPU usage %",
			"GPU thresh %", "Kernel µs", "Copy/kernel µs", "Suggests", "Predicted %"},
		Note: "paper rows: Nano 19.8/15.6/1.7/2.5/453.5/44.8/-, TX2 19.8/15.6/3.7/2.7/175.2/22.4/-, Xavier 6.1/100/7.0/16.2-57.1/41.2/16.88/69.3",
	}
	for _, board := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		row, err := c.profileApp(ctx, board, w, "sc")
		if err != nil {
			return report.Table{}, Table2Data{}, err
		}
		data.Rows[board] = row
		t.AddRow(board, row.CPUUsage*100, row.CPUThreshold*100, row.GPUUsage*100,
			fmt.Sprintf("%.1f-%.1f", row.GPUThresholdLo*100, row.GPUThresholdHi*100),
			row.KernelTimePerUS, row.CopyTimePerUS, row.Suggested, row.PredictedPct)
	}
	return t, data, nil
}

// ModelRun is one (board, model) measured outcome.
type ModelRun struct {
	TotalUS     float64
	CPUOnlyUS   float64
	KernelPerUS float64
	EnergyJ     float64
}

// Table3Data is experiment E7: SH-WFS measured performance (paper Table III)
// plus the energy deltas §IV-B reports.
type Table3Data struct {
	// Runs[board][model].
	Runs map[string]map[string]ModelRun
	// EnergySavingJPerS[board] is the SC->ZC energy saving at the paper's
	// iteration rate.
	EnergySavingJPerS map[string]float64
}

// Table3IterationRate is the frame rate the energy deltas are computed at.
const Table3IterationRate = 30.0

// Table3 regenerates the SH-WFS per-model measurements.
func Table3(ctx context.Context, c *Context) (report.Table, Table3Data, error) {
	w, err := shwfsWorkload()
	if err != nil {
		return report.Table{}, Table3Data{}, err
	}
	data := Table3Data{
		Runs:              map[string]map[string]ModelRun{},
		EnergySavingJPerS: map[string]float64{},
	}
	t := report.Table{
		Title: "Table III — SH-WFS centroid extraction performance",
		Headers: []string{"Board", "Model", "Total µs", "CPU-only µs", "Kernel µs",
			"vs SC %", "Kernel vs SC %"},
		Note: "paper: Nano ZC -67%, TX2 ZC -5%, Xavier ZC +38%; UM within ±5% of SC; energy saving ~0.12 J/s (Xavier), ~0.09 J/s (TX2)",
	}
	for _, board := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		reps, err := c.runModels(board, w)
		if err != nil {
			return report.Table{}, Table3Data{}, err
		}
		s, err := c.SoC(board)
		if err != nil {
			return report.Table{}, Table3Data{}, err
		}
		data.Runs[board] = map[string]ModelRun{}
		sc := reps["sc"]
		for _, model := range []string{"sc", "um", "zc"} {
			rep := reps[model]
			run := ModelRun{
				TotalUS:     rep.Total.Seconds() * 1e6,
				CPUOnlyUS:   rep.CPUTime.Seconds() * 1e6,
				KernelPerUS: rep.KernelTimePer().Seconds() * 1e6,
				EnergyJ:     s.Config().Power.Joules(rep.Energy),
			}
			data.Runs[board][model] = run
			t.AddRow(board, model, run.TotalUS, run.CPUOnlyUS, run.KernelPerUS,
				speedupPct(sc.Total.Seconds(), rep.Total.Seconds()),
				speedupPct(sc.KernelTimePer().Seconds(), rep.KernelTimePer().Seconds()))
		}
		data.EnergySavingJPerS[board] = s.Config().Power.SavingPerSecond(
			reps["sc"].Energy, reps["zc"].Energy, Table3IterationRate)
	}
	return t, data, nil
}

// Table4Data is experiment E8: ORB-SLAM profiling (paper Table IV).
type Table4Data struct{ Rows map[string]AppProfile }

// Table4 regenerates the ORB-SLAM profiling table (TX2 and Xavier, as in the
// paper; the Nano cannot hold the app's real-time constraint).
func Table4(ctx context.Context, c *Context) (report.Table, Table4Data, error) {
	w, err := orbWorkload()
	if err != nil {
		return report.Table{}, Table4Data{}, err
	}
	data := Table4Data{Rows: map[string]AppProfile{}}
	t := report.Table{
		Title: "Table IV — Profiling results of the ORB-SLAM application",
		Headers: []string{"Board", "CPU usage %", "CPU thresh %", "GPU usage %",
			"GPU thresh %", "Kernel µs", "Copy/kernel µs", "Suggests", "Predicted %"},
		Note: "paper rows: TX2 0/15.6/25.3/2.7/93.56/1.57/-, Xavier 0/100/20.1/16.2-57.1/24.22/1.35/5.9",
	}
	for _, board := range []string{devices.TX2Name, devices.XavierName} {
		row, err := c.profileApp(ctx, board, w, "sc")
		if err != nil {
			return report.Table{}, Table4Data{}, err
		}
		data.Rows[board] = row
		t.AddRow(board, row.CPUUsage*100, row.CPUThreshold*100, row.GPUUsage*100,
			fmt.Sprintf("%.1f-%.1f", row.GPUThresholdLo*100, row.GPUThresholdHi*100),
			row.KernelTimePerUS, row.CopyTimePerUS, row.Suggested, row.PredictedPct)
	}
	return t, data, nil
}

// Table5Data is experiment E9: ORB-SLAM SC vs ZC (paper Table V).
type Table5Data struct {
	Runs              map[string]map[string]ModelRun
	EnergySavingJPerS map[string]float64 // at the 30 Hz camera rate
}

// Table5 regenerates the ORB-SLAM measured comparison.
func Table5(ctx context.Context, c *Context) (report.Table, Table5Data, error) {
	w, err := orbWorkload()
	if err != nil {
		return report.Table{}, Table5Data{}, err
	}
	data := Table5Data{
		Runs:              map[string]map[string]ModelRun{},
		EnergySavingJPerS: map[string]float64{},
	}
	t := report.Table{
		Title:   "Table V — ORB-SLAM performance (SC vs ZC)",
		Headers: []string{"Board", "Model", "Total µs", "Kernel µs", "vs SC %", "Kernel vs SC %"},
		Note:    "paper: TX2 ZC -744% total / -880% kernel; Xavier ZC 0% total / -10% kernel, 0.17 J/s energy saving at 30 Hz",
	}
	for _, board := range []string{devices.TX2Name, devices.XavierName} {
		s, err := c.SoC(board)
		if err != nil {
			return report.Table{}, Table5Data{}, err
		}
		data.Runs[board] = map[string]ModelRun{}
		var scRep, zcRep comm.Report
		for _, m := range []comm.Model{comm.SC{}, comm.ZC{}} {
			rep, err := m.Run(s, w)
			if err != nil {
				return report.Table{}, Table5Data{}, err
			}
			if m.Name() == "sc" {
				scRep = rep
			} else {
				zcRep = rep
			}
			data.Runs[board][m.Name()] = ModelRun{
				TotalUS:     rep.Total.Seconds() * 1e6,
				KernelPerUS: rep.KernelTimePer().Seconds() * 1e6,
				EnergyJ:     s.Config().Power.Joules(rep.Energy),
			}
		}
		for _, model := range []string{"sc", "zc"} {
			run := data.Runs[board][model]
			rep := scRep
			if model == "zc" {
				rep = zcRep
			}
			t.AddRow(board, model, run.TotalUS, run.KernelPerUS,
				speedupPct(scRep.Total.Seconds(), rep.Total.Seconds()),
				speedupPct(scRep.KernelTimePer().Seconds(), rep.KernelTimePer().Seconds()))
		}
		data.EnergySavingJPerS[board] = s.Config().Power.SavingPerSecond(
			scRep.Energy, zcRep.Energy, Table3IterationRate)
	}
	return t, data, nil
}
