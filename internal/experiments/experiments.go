// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV) on the simulated platforms. Each experiment
// returns both a rendered artifact (internal/report) and the structured data
// the shape tests and benchmarks assert on; paper reference values are
// embedded so EXPERIMENTS.md can show paper-vs-measured side by side.
package experiments

import (
	"context"
	"fmt"

	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
)

// Context caches the per-device characterizations (they are expensive and
// application-independent) across the experiments of one session.
type Context struct {
	Params microbench.Params

	socs  map[string]*soc.SoC
	chars map[string]framework.Characterization
}

// NewContext builds a context at the given characterization scale.
func NewContext(p microbench.Params) *Context {
	return &Context{
		Params: p,
		socs:   make(map[string]*soc.SoC),
		chars:  make(map[string]framework.Characterization),
	}
}

// SoC returns (instantiating on first use) the named platform.
func (c *Context) SoC(name string) (*soc.SoC, error) {
	if s, ok := c.socs[name]; ok {
		return s, nil
	}
	s, err := devices.NewSoC(name)
	if err != nil {
		return nil, err
	}
	c.socs[name] = s
	return s, nil
}

// Char returns (running the micro-benchmarks on first use) the named
// platform's characterization.
func (c *Context) Char(ctx context.Context, name string) (framework.Characterization, error) {
	if ch, ok := c.chars[name]; ok {
		return ch, nil
	}
	s, err := c.SoC(name)
	if err != nil {
		return framework.Characterization{}, err
	}
	ch, err := framework.Characterize(ctx, s, c.Params)
	if err != nil {
		return framework.Characterization{}, err
	}
	c.chars[name] = ch
	return ch, nil
}

// runModels executes a workload under the three models on one platform.
func (c *Context) runModels(name string, w comm.Workload) (map[string]comm.Report, error) {
	s, err := c.SoC(name)
	if err != nil {
		return nil, err
	}
	out := make(map[string]comm.Report, 3)
	for _, m := range comm.Models() {
		rep, err := m.Run(s, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s under %s on %s: %w", w.Name, m.Name(), name, err)
		}
		out[m.Name()] = rep
	}
	return out, nil
}

// shwfsWorkload and orbWorkload are the evaluation-scale case studies.
func shwfsWorkload() (comm.Workload, error) {
	return shwfs.Workload(shwfs.DefaultWorkloadParams())
}

func orbWorkload() (comm.Workload, error) {
	return orbslam.Workload(orbslam.DefaultWorkloadParams())
}

// speedupPct is the paper's (asymmetric) percentage convention: gains are
// reported as base/new - 1 (+38% means 1.38x faster), losses as
// -(new/base - 1) (-744% means 8.44x slower).
func speedupPct(base, new float64) float64 {
	if new <= 0 || base <= 0 {
		return 0
	}
	if new <= base {
		return (base/new - 1) * 100
	}
	return -(new/base - 1) * 100
}

// SHWFSWorkloadForAblation exposes the evaluation-scale SH-WFS workload for
// ablation benchmarks.
func SHWFSWorkloadForAblation() (comm.Workload, error) { return shwfsWorkload() }

// Prewarm characterizes the named platforms concurrently (each on its own
// SoC instance — the simulators are independent) and caches the results.
// Characterization dominates the experiments' wall time, so this is the
// 3-devices-in-the-time-of-1 fast path used by the benchmark harness.
func (c *Context) Prewarm(ctx context.Context, names ...string) error {
	type result struct {
		name string
		s    *soc.SoC
		char framework.Characterization
		err  error
	}
	pending := make([]string, 0, len(names))
	for _, n := range names {
		if _, ok := c.chars[n]; !ok {
			pending = append(pending, n)
		}
	}
	results := make(chan result, len(pending))
	for _, name := range pending {
		go func(name string) {
			s, err := devices.NewSoC(name)
			if err != nil {
				results <- result{name: name, err: err}
				return
			}
			char, err := framework.Characterize(ctx, s, c.Params)
			results <- result{name: name, s: s, char: char, err: err}
		}(name)
	}
	for range pending {
		r := <-results
		if r.err != nil {
			return fmt.Errorf("experiments: prewarm %s: %w", r.name, r.err)
		}
		c.socs[r.name] = r.s
		c.chars[r.name] = r.char
	}
	return nil
}
