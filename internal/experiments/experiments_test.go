package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
)

// sharedCtx characterizes each device once for the whole test binary; the
// full-scale experiments are the expensive part of this package.
var (
	ctxOnce sync.Once
	ctx     *Context
)

func testCtx(t *testing.T) *Context {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	ctxOnce.Do(func() {
		ctx = NewContext(microbench.DefaultParams())
		if err := ctx.Prewarm(context.Background(), devices.NanoName, devices.TX2Name, devices.XavierName); err != nil {
			panic(err)
		}
	})
	return ctx
}

func TestTable1Shape(t *testing.T) {
	c := testCtx(t)
	tab, data, err := Table1(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E1 criteria: ZC << SC ~ UM; TX2 gap ~77x, Xavier ~7x.
	tx2Gap := data.SC[devices.TX2Name] / data.ZC[devices.TX2Name]
	if tx2Gap < 50 || tx2Gap > 100 {
		t.Errorf("TX2 SC/ZC throughput gap = %.1fx, want ~77x", tx2Gap)
	}
	xGap := data.SC[devices.XavierName] / data.ZC[devices.XavierName]
	if xGap < 4 || xGap > 10 {
		t.Errorf("Xavier gap = %.1fx, want ~7x", xGap)
	}
	for _, board := range []string{devices.TX2Name, devices.XavierName} {
		umDelta := data.UM[board]/data.SC[board] - 1
		if umDelta < -0.12 || umDelta > 0.12 {
			t.Errorf("%s UM deviates %.1f%% from SC, want within the ±8%%-ish band", board, umDelta*100)
		}
	}
	if !strings.Contains(tab.String(), "Zero Copy") {
		t.Error("table rendering broken")
	}
}

func TestFig5Shape(t *testing.T) {
	c := testCtx(t)
	_, data, err := Fig5(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E2: TX2/Nano ZC hurts both CPU and GPU; Xavier only the GPU.
	for _, board := range []string{devices.NanoName, devices.TX2Name} {
		if data.CPU[board]["zc"] <= data.CPU[board]["sc"]*1.2 {
			t.Errorf("%s: ZC CPU time should be clearly above SC", board)
		}
		if data.GPU[board]["zc"] <= data.GPU[board]["sc"]*5 {
			t.Errorf("%s: ZC kernel should be dramatically above SC", board)
		}
	}
	x := devices.XavierName
	if data.CPU[x]["zc"] > data.CPU[x]["sc"]*1.02 {
		t.Errorf("Xavier ZC CPU %.1f should match SC %.1f (I/O coherence)", data.CPU[x]["zc"], data.CPU[x]["sc"])
	}
	ratio := data.GPU[x]["zc"] / data.GPU[x]["sc"]
	if ratio < 2 || ratio > 10 {
		t.Errorf("Xavier ZC kernel penalty = %.1fx, want limited (paper ~3.7x)", ratio)
	}
}

func TestFig3And6Shape(t *testing.T) {
	c := testCtx(t)
	_, xavier, err := Fig3(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	_, tx2, err := Fig6(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E3/E4: flat zone then widening gap; Xavier's thresholds far above TX2's.
	if xavier.ThresholdLow <= 2*tx2.ThresholdLow {
		t.Errorf("Xavier low threshold %.3f not clearly above TX2 %.3f",
			xavier.ThresholdLow, tx2.ThresholdLow)
	}
	if xavier.ThresholdHi <= xavier.ThresholdLow {
		t.Error("Xavier should have a usable middle zone")
	}
	// The first sweep point must be comparable (ratio ~1) on Xavier and the
	// last point strongly divergent on both boards.
	firstX := xavier.MB2.GPU[0]
	if r := float64(firstX.ZCKernel) / float64(firstX.SCKernel); r > 1.05 {
		t.Errorf("Xavier flat zone missing: first-point ratio %.2f", r)
	}
	lastT := tx2.MB2.GPU[len(tx2.MB2.GPU)-1]
	if r := float64(lastT.ZCKernel) / float64(lastT.SCKernel); r < 5 {
		t.Errorf("TX2 divergence too weak at max density: %.1fx", r)
	}
}

func TestFig7Shape(t *testing.T) {
	c := testCtx(t)
	_, data, err := Fig7(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E5: on the I/O-coherent board ZC wins strongly (paper: up to 152%/164%).
	if data.SCZC[devices.XavierName] < 1.8 {
		t.Errorf("Xavier SC/ZC = %.2fx, want ~2.5x", data.SCZC[devices.XavierName])
	}
	if data.UMZC[devices.XavierName] < 1.8 {
		t.Errorf("Xavier UM/ZC = %.2fx, want ~2.6x", data.UMZC[devices.XavierName])
	}
	// On the uncached-pinned boards, the streaming kernel makes ZC lose.
	if data.SCZC[devices.TX2Name] >= 1 {
		t.Errorf("TX2 SC/ZC = %.2fx, expected ZC to lose", data.SCZC[devices.TX2Name])
	}
}

func TestTable2Shape(t *testing.T) {
	c := testCtx(t)
	_, data, err := Table2(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E6: SC/UM recommended on Nano+TX2, ZC on Xavier with a positive estimate.
	for _, board := range []string{devices.NanoName, devices.TX2Name} {
		row := data.Rows[board]
		if row.Suggested == "zc" {
			t.Errorf("%s: framework suggested ZC for the CPU-cache-dependent app", board)
		}
	}
	x := data.Rows[devices.XavierName]
	if x.Suggested != "zc" {
		t.Errorf("Xavier suggestion = %q, want zc (paper: +69%% estimate)", x.Suggested)
	}
	if x.PredictedPct < 10 || x.PredictedPct > 120 {
		t.Errorf("Xavier predicted speedup = %.1f%%, want meaningfully positive", x.PredictedPct)
	}
	// CPU usage is the discriminator on the non-coherent boards.
	if data.Rows[devices.TX2Name].CPUUsage <= data.Rows[devices.TX2Name].CPUThreshold {
		t.Error("TX2 CPU usage should exceed its threshold")
	}
	// Kernel time ordering follows device capability: Nano > TX2 > Xavier.
	if !(data.Rows[devices.NanoName].KernelTimePerUS > data.Rows[devices.TX2Name].KernelTimePerUS &&
		data.Rows[devices.TX2Name].KernelTimePerUS > data.Rows[devices.XavierName].KernelTimePerUS) {
		t.Error("kernel times not ordered Nano > TX2 > Xavier")
	}
}

func TestTable3Shape(t *testing.T) {
	c := testCtx(t)
	_, data, err := Table3(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E7: ZC loses on Nano and TX2, wins on Xavier (paper: -67%, -5%, +38%).
	for _, board := range []string{devices.NanoName, devices.TX2Name} {
		if data.Runs[board]["zc"].TotalUS <= data.Runs[board]["sc"].TotalUS {
			t.Errorf("%s: ZC should lose to SC", board)
		}
	}
	x := data.Runs[devices.XavierName]
	if x["zc"].TotalUS >= x["sc"].TotalUS {
		t.Error("Xavier: ZC should beat SC")
	}
	// UM stays within a modest band of SC everywhere.
	for board, runs := range data.Runs {
		delta := runs["um"].TotalUS/runs["sc"].TotalUS - 1
		if delta < -0.35 || delta > 0.35 {
			t.Errorf("%s: UM deviates %.0f%% from SC", board, delta*100)
		}
	}
	// Kernel-time paper anchors (±40%): Nano 453.5µs, TX2 175.2, Xavier 41.2.
	anchors := map[string]float64{
		devices.NanoName:   453.5,
		devices.TX2Name:    175.2,
		devices.XavierName: 41.2,
	}
	for board, want := range anchors {
		got := data.Runs[board]["sc"].KernelPerUS
		if got < want*0.6 || got > want*1.4 {
			t.Errorf("%s SC kernel = %.1fµs, want within 40%% of paper's %.1f", board, got, want)
		}
	}
	// Energy: switching to ZC on Xavier saves joules at 30 Hz.
	if data.EnergySavingJPerS[devices.XavierName] <= 0 {
		t.Error("Xavier SC->ZC energy saving should be positive")
	}
}

func TestTable4Shape(t *testing.T) {
	c := testCtx(t)
	_, data, err := Table4(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E8: GPU-cache-dependent on TX2; Xavier in the middle zone; CPU usage ~0.
	tx2 := data.Rows[devices.TX2Name]
	if tx2.GPUUsage <= tx2.GPUThresholdHi {
		t.Errorf("TX2 GPU usage %.3f should exceed the high threshold %.3f", tx2.GPUUsage, tx2.GPUThresholdHi)
	}
	if tx2.CPUUsage > 0.02 {
		t.Errorf("TX2 CPU usage = %.3f, want ~0 (paper: 0)", tx2.CPUUsage)
	}
	x := data.Rows[devices.XavierName]
	if x.GPUUsage <= x.GPUThresholdLo || x.GPUUsage > x.GPUThresholdHi {
		t.Errorf("Xavier GPU usage %.3f should sit in the middle zone [%.3f, %.3f]",
			x.GPUUsage, x.GPUThresholdLo, x.GPUThresholdHi)
	}
	// The framework keeps ZC viable on Xavier, with a small positive estimate
	// (paper: up to 5.9%).
	if x.Suggested != "zc" {
		t.Errorf("Xavier suggestion = %q, want zc", x.Suggested)
	}
	if x.PredictedPct < 0 || x.PredictedPct > 30 {
		t.Errorf("Xavier predicted speedup = %.1f%%, want small positive (paper 5.9%%)", x.PredictedPct)
	}
}

func TestTable5Shape(t *testing.T) {
	c := testCtx(t)
	_, data, err := Table5(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// E9: TX2 ZC catastrophic (paper -744% => ~7.4x slower), Xavier ~0%.
	tx2 := data.Runs[devices.TX2Name]
	slowdown := tx2["zc"].TotalUS / tx2["sc"].TotalUS
	if slowdown < 4 || slowdown > 12 {
		t.Errorf("TX2 ZC slowdown = %.1fx, want ~7x", slowdown)
	}
	x := data.Runs[devices.XavierName]
	delta := x["zc"].TotalUS/x["sc"].TotalUS - 1
	if delta < -0.15 || delta > 0.15 {
		t.Errorf("Xavier ZC delta = %.0f%%, want ~0%%", delta*100)
	}
	// Xavier saves energy by dropping the copies even at equal runtime.
	if data.EnergySavingJPerS[devices.XavierName] <= 0 {
		t.Error("Xavier ZC energy saving should be positive")
	}
}

func TestContextCachesCharacterizations(t *testing.T) {
	c := testCtx(t)
	a, err := c.Char(context.Background(), devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Char(context.Background(), devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakGPUThroughput != b.PeakGPUThroughput {
		t.Error("characterization not cached")
	}
	if _, err := c.Char(context.Background(), "no-such-board"); err == nil {
		t.Error("unknown board accepted")
	}
}

func TestTableAsyncShape(t *testing.T) {
	c := testCtx(t)
	_, data, err := TableAsync(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for board, apps := range data.Totals {
		for app, totals := range apps {
			// Pipelining copies can only help.
			if totals["sc-async"] > totals["sc"]*1.01 {
				t.Errorf("%s/%s: sc-async %v slower than sc %v", board, app, totals["sc-async"], totals["sc"])
			}
		}
	}
	// Where ZC collapses (TX2/orbslam), sc-async must remain the sane choice.
	tx2 := data.Totals[devices.TX2Name]["orbslam"]
	if tx2["sc-async"] >= tx2["zc"] {
		t.Error("TX2 orbslam: sc-async should beat the collapsed ZC")
	}
}

func TestTableEnergyShape(t *testing.T) {
	c := testCtx(t)
	_, data, err := TableEnergy(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// Where ZC wins or ties (Xavier), dropping the copies saves energy.
	for _, app := range []string{"shwfs", "orbslam"} {
		if data.BestModelSavingJPerS[devices.XavierName][app] <= 0 {
			t.Errorf("Xavier/%s: expected positive SC->ZC energy saving", app)
		}
	}
	// Per-frame energy is positive under every model.
	for board, apps := range data.JoulesPerFrame {
		for app, frames := range apps {
			for model, j := range frames {
				if j <= 0 {
					t.Errorf("%s/%s/%s: non-positive energy %v", board, app, model, j)
				}
			}
		}
	}
}

func TestTableRealtimeShape(t *testing.T) {
	c := testCtx(t)
	_, data, err := TableRealtime(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// The 1 kHz AO loop: Nano cannot hold it under any model; TX2 holds it
	// under SC but not under ZC; Xavier holds it under both.
	if data.Stats[devices.NanoName]["shwfs"]["sc"].Sustainable {
		t.Error("Nano should not sustain the 1 kHz AO loop even under SC")
	}
	tx2 := data.Stats[devices.TX2Name]["shwfs"]
	if !tx2["sc"].Sustainable {
		t.Error("TX2 should sustain the AO loop under SC")
	}
	if tx2["zc"].Sustainable {
		t.Error("TX2 should lose the AO loop under ZC (uncached CPU path)")
	}
	x := data.Stats[devices.XavierName]["shwfs"]
	if !x["sc"].Sustainable || !x["zc"].Sustainable {
		t.Error("Xavier should sustain the AO loop under both models")
	}
	// ZC buys Xavier headroom: lower utilization than SC.
	if x["zc"].Utilization >= x["sc"].Utilization {
		t.Error("Xavier ZC should lower the AO loop utilization")
	}
	// The 30 Hz camera is easy at this scale for every surviving pair.
	for board, apps := range data.Stats {
		if st, ok := apps["orbslam"]; ok {
			if !st["sc"].Sustainable {
				t.Errorf("%s: ORB at 30 Hz should be sustainable under SC", board)
			}
		}
	}
	if _, ok := data.Stats[devices.NanoName]["orbslam"]; ok {
		t.Error("Nano ORB row should be omitted, as in the paper")
	}
}

// TestQuickContextSmoke keeps a fast path through every artifact exercised
// even under -short (the shape assertions above need full scale).
func TestQuickContextSmoke(t *testing.T) {
	c := NewContext(microbench.TestParams())
	if _, _, err := Table1(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Fig5(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Fig7(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	tab, _, err := Table2(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("table2 rows = %d", len(tab.Rows))
	}
}

func TestPrewarmParallel(t *testing.T) {
	c := NewContext(microbench.TestParams())
	if err := c.Prewarm(context.Background(), devices.NanoName, devices.TX2Name, devices.XavierName); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		char, err := c.Char(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		if char.Platform != name {
			t.Errorf("prewarmed %q as %q", name, char.Platform)
		}
	}
	// Idempotent, and unknown names fail.
	if err := c.Prewarm(context.Background(), devices.TX2Name); err != nil {
		t.Error(err)
	}
	if err := c.Prewarm(context.Background(), "jetson-bogus"); err == nil {
		t.Error("unknown platform prewarmed")
	}
}
