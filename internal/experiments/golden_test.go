package experiments

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"igpucomm/internal/devices"
)

// goldenMetrics snapshots the headline calibration numbers. The golden file
// guards against accidental recalibration: any substrate or device-catalog
// change that moves these by more than the tolerance fails loudly and must
// either be reverted or re-baselined deliberately (GOLDEN_UPDATE=1).
type goldenMetrics struct {
	TX2SCThroughputGB    float64 `json:"tx2_sc_throughput_gb"`
	TX2ZCThroughputGB    float64 `json:"tx2_zc_throughput_gb"`
	XavierSCThroughputGB float64 `json:"xavier_sc_throughput_gb"`
	XavierZCThroughputGB float64 `json:"xavier_zc_throughput_gb"`

	TX2GPUThresholdLow    float64 `json:"tx2_gpu_threshold_low"`
	XavierGPUThresholdLow float64 `json:"xavier_gpu_threshold_low"`
	XavierGPUThresholdHi  float64 `json:"xavier_gpu_threshold_hi"`

	XavierSCZCMaxSpeedup float64 `json:"xavier_sczc_max_speedup"`

	SHWFSXavierZCGainPct float64 `json:"shwfs_xavier_zc_gain_pct"`
	ORBTX2ZCSlowdown     float64 `json:"orb_tx2_zc_slowdown"`
}

const goldenTolerance = 0.05 // 5% relative

func collectGolden(t *testing.T, c *Context) goldenMetrics {
	t.Helper()
	var g goldenMetrics
	tx2, err := c.Char(context.Background(), devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	xavier, err := c.Char(context.Background(), devices.XavierName)
	if err != nil {
		t.Fatal(err)
	}
	g.TX2SCThroughputGB = tx2.PeakGPUThroughput.GB()
	g.TX2ZCThroughputGB = tx2.PinnedGPUThroughput.GB()
	g.XavierSCThroughputGB = xavier.PeakGPUThroughput.GB()
	g.XavierZCThroughputGB = xavier.PinnedGPUThroughput.GB()
	g.TX2GPUThresholdLow = tx2.Thresholds.GPUCacheLow
	g.XavierGPUThresholdLow = xavier.Thresholds.GPUCacheLow
	g.XavierGPUThresholdHi = xavier.Thresholds.GPUCacheHigh
	g.XavierSCZCMaxSpeedup = xavier.SCZCMaxSpeedup

	_, t3, err := Table3(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	x := t3.Runs[devices.XavierName]
	g.SHWFSXavierZCGainPct = (x["sc"].TotalUS/x["zc"].TotalUS - 1) * 100

	_, t5, err := Table5(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	tx := t5.Runs[devices.TX2Name]
	g.ORBTX2ZCSlowdown = tx["zc"].TotalUS / tx["sc"].TotalUS
	return g
}

func TestGoldenCalibration(t *testing.T) {
	c := testCtx(t)
	got := collectGolden(t, c)
	path := filepath.Join("testdata", "goldens.json")

	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want goldenMetrics
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	check := func(name string, got, want float64) {
		if want == 0 {
			t.Errorf("%s: golden value is zero — re-baseline", name)
			return
		}
		rel := math.Abs(got-want) / math.Abs(want)
		if rel > goldenTolerance {
			t.Errorf("%s drifted: got %.4g, golden %.4g (%.1f%% > %.0f%%)",
				name, got, want, rel*100, goldenTolerance*100)
		}
	}
	check("tx2_sc_throughput", got.TX2SCThroughputGB, want.TX2SCThroughputGB)
	check("tx2_zc_throughput", got.TX2ZCThroughputGB, want.TX2ZCThroughputGB)
	check("xavier_sc_throughput", got.XavierSCThroughputGB, want.XavierSCThroughputGB)
	check("xavier_zc_throughput", got.XavierZCThroughputGB, want.XavierZCThroughputGB)
	check("tx2_gpu_threshold_low", got.TX2GPUThresholdLow, want.TX2GPUThresholdLow)
	check("xavier_gpu_threshold_low", got.XavierGPUThresholdLow, want.XavierGPUThresholdLow)
	check("xavier_gpu_threshold_hi", got.XavierGPUThresholdHi, want.XavierGPUThresholdHi)
	check("xavier_sczc_max_speedup", got.XavierSCZCMaxSpeedup, want.XavierSCZCMaxSpeedup)
	check("shwfs_xavier_zc_gain_pct", got.SHWFSXavierZCGainPct, want.SHWFSXavierZCGainPct)
	check("orb_tx2_zc_slowdown", got.ORBTX2ZCSlowdown, want.ORBTX2ZCSlowdown)
}
