package experiments

import (
	"context"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/report"
	"igpucomm/internal/stream"
)

// RealtimeData evaluates the case studies as continuous pipelines — the
// deployment the paper motivates (§I) and appeals to when excluding the Nano
// from the ORB study (§IV-C). The SH-WFS adaptive-optics loop must close at
// 1 kHz; the SLAM front-end consumes a 30 Hz camera.
type RealtimeData struct {
	// Stats[board][app][model].
	Stats map[string]map[string]map[string]stream.Stats
}

// Loop rates of the two case studies.
const (
	SHWFSLoopHz = 1000.0
	ORBCameraHz = 30.0
)

// TableRealtime runs the streaming analysis.
func TableRealtime(ctx context.Context, c *Context) (report.Table, RealtimeData, error) {
	data := RealtimeData{Stats: map[string]map[string]map[string]stream.Stats{}}
	t := report.Table{
		Title:   "Real-time — sustained loop analysis (SH-WFS @ 1 kHz AO loop, ORB @ 30 Hz camera)",
		Headers: []string{"Board", "App", "Model", "Service µs", "Util %", "Sustainable", "Power W"},
		Note:    "the communication model decides real-time feasibility: ZC pushes TX2's AO loop past its budget while buying Xavier headroom",
	}
	type appCase struct {
		name string
		mk   func() (comm.Workload, error)
		rate float64
	}
	cases := []appCase{
		{"shwfs", shwfsWorkload, SHWFSLoopHz},
		{"orbslam", orbWorkload, ORBCameraHz},
	}
	for _, board := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		s, err := c.SoC(board)
		if err != nil {
			return report.Table{}, RealtimeData{}, err
		}
		data.Stats[board] = map[string]map[string]stream.Stats{}
		for _, ac := range cases {
			if ac.name == "orbslam" && board == devices.NanoName {
				continue // the paper omits the Nano for ORB as well
			}
			w, err := ac.mk()
			if err != nil {
				return report.Table{}, RealtimeData{}, err
			}
			data.Stats[board][ac.name] = map[string]stream.Stats{}
			cfg := stream.Config{RateHz: ac.rate, Frames: 128}
			for _, m := range []comm.Model{comm.SC{}, comm.ZC{}} {
				st, err := stream.Run(s, w, m, cfg)
				if err != nil {
					return report.Table{}, RealtimeData{}, err
				}
				data.Stats[board][ac.name][m.Name()] = st
				t.AddRow(board, ac.name, m.Name(),
					st.Service.Seconds()*1e6, st.Utilization*100, st.Sustainable,
					st.EnergyPerSecond)
			}
		}
	}
	return t, data, nil
}
