package experiments

import (
	"context"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/report"
)

// AsyncData is the extension experiment (beyond the paper): the
// double-buffered standard copy (sc-async) and the copied-in/pinned-out
// hybrid against the paper's models on both case studies. It answers the
// natural follow-up to the paper's SC-vs-ZC dichotomy: how much of ZC's
// copy-elimination gain can a port recover without giving up cached memory
// wholesale?
type AsyncData struct {
	// Totals[board][app][model] in µs.
	Totals map[string]map[string]map[string]float64
}

// TableAsync runs the extension comparison.
func TableAsync(ctx context.Context, c *Context) (report.Table, AsyncData, error) {
	data := AsyncData{Totals: map[string]map[string]map[string]float64{}}
	t := report.Table{
		Title:   "Extension — sc-async and hybrid vs the paper's models",
		Headers: []string{"Board", "App", "SC µs", "SC-async µs", "Hybrid µs", "ZC µs", "async vs SC %", "hybrid vs SC %"},
		Note:    "sc-async hides stripe copies behind kernels (CUDA streams) and is always safe; hybrid (copied inputs, pinned outputs) helps only when the CPU consumes results lightly — ORB's matcher hammers the pinned feature buffer, so on TX2 hybrid inherits ZC's collapse",
	}
	apps := map[string]func() (comm.Workload, error){
		"shwfs":   shwfsWorkload,
		"orbslam": orbWorkload,
	}
	for _, board := range []string{devices.TX2Name, devices.XavierName} {
		s, err := c.SoC(board)
		if err != nil {
			return report.Table{}, AsyncData{}, err
		}
		data.Totals[board] = map[string]map[string]float64{}
		for _, app := range []string{"shwfs", "orbslam"} {
			w, err := apps[app]()
			if err != nil {
				return report.Table{}, AsyncData{}, err
			}
			totals := map[string]float64{}
			for _, m := range []comm.Model{comm.SC{}, comm.SCAsync{}, comm.Hybrid{}, comm.ZC{}} {
				rep, err := m.Run(s, w)
				if err != nil {
					return report.Table{}, AsyncData{}, err
				}
				totals[m.Name()] = rep.Total.Seconds() * 1e6
			}
			data.Totals[board][app] = totals
			t.AddRow(board, app, totals["sc"], totals["sc-async"], totals["hybrid"], totals["zc"],
				speedupPct(totals["sc"], totals["sc-async"]),
				speedupPct(totals["sc"], totals["hybrid"]))
		}
	}
	return t, data, nil
}
