// Package mmu manages the simulated SoC's physically shared address space:
// buffer allocation, the logical CPU/GPU partitioning the communication
// models rely on, pinned (zero-copy) mappings, and the on-demand page
// migration engine behind the unified-memory model.
package mmu

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultPageSize is the 4 KiB page the UM driver migrates.
const DefaultPageSize int64 = 4096

// Kind classifies an allocation by the communication model that created it.
type Kind uint8

// Allocation kinds.
const (
	// HostAlloc is ordinary CPU-partition memory (malloc).
	HostAlloc Kind = iota
	// DeviceAlloc is GPU-partition memory (cudaMalloc).
	DeviceAlloc
	// Pinned is page-locked memory shared by CPU and GPU (cudaHostAlloc) —
	// the zero-copy mapping.
	Pinned
	// Managed is unified-memory (cudaMallocManaged), migrated on demand.
	Managed
)

func (k Kind) String() string {
	switch k {
	case HostAlloc:
		return "host"
	case DeviceAlloc:
		return "device"
	case Pinned:
		return "pinned"
	case Managed:
		return "managed"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Buffer is one allocation in the shared physical space.
type Buffer struct {
	Name string
	Addr int64
	Size int64
	Kind Kind
}

// End returns the first address past the buffer.
func (b Buffer) End() int64 { return b.Addr + b.Size }

// Contains reports whether addr falls inside the buffer.
func (b Buffer) Contains(addr int64) bool { return addr >= b.Addr && addr < b.End() }

// ErrOutOfMemory is returned when no free extent can satisfy a request.
var ErrOutOfMemory = errors.New("mmu: out of memory")

type extent struct{ addr, size int64 }

// Space is a first-fit allocator over the SoC's physical memory. Not safe
// for concurrent use.
type Space struct {
	size    int64
	align   int64
	free    []extent // sorted by addr, coalesced
	buffers map[string]Buffer
}

// NewSpace creates an address space of the given size. align is the minimum
// allocation alignment (use the largest cache line size in the SoC); it must
// be a power of two. Panics on invalid parameters.
func NewSpace(size, align int64) *Space {
	if size <= 0 {
		panic(fmt.Sprintf("mmu: space size %d must be positive", size))
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mmu: alignment %d must be a positive power of two", align))
	}
	return &Space{
		size:    size,
		align:   align,
		free:    []extent{{0, size}},
		buffers: make(map[string]Buffer),
	}
}

// Size returns the total space size.
func (s *Space) Size() int64 { return s.size }

// Alloc carves a named buffer out of the space. Names must be unique among
// live buffers.
func (s *Space) Alloc(name string, size int64, kind Kind) (Buffer, error) {
	if size <= 0 {
		return Buffer{}, fmt.Errorf("mmu: alloc %q: size %d must be positive", name, size)
	}
	if _, exists := s.buffers[name]; exists {
		return Buffer{}, fmt.Errorf("mmu: alloc %q: name already in use", name)
	}
	rounded := (size + s.align - 1) &^ (s.align - 1)
	for i, e := range s.free {
		if e.size < rounded {
			continue
		}
		b := Buffer{Name: name, Addr: e.addr, Size: rounded, Kind: kind}
		if e.size == rounded {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i] = extent{e.addr + rounded, e.size - rounded}
		}
		s.buffers[name] = b
		return b, nil
	}
	return Buffer{}, fmt.Errorf("%w: %d bytes requested", ErrOutOfMemory, rounded)
}

// AllocAt carves a named buffer at a fixed address — how tests and layout
// replays place buffers deterministically. Unlike Alloc, the requested range
// can collide with live buffers, so overlap is checked explicitly and
// rejected with the conflicting buffer named.
func (s *Space) AllocAt(name string, addr, size int64, kind Kind) (Buffer, error) {
	if size <= 0 {
		return Buffer{}, fmt.Errorf("mmu: alloc %q at %d: size %d must be positive", name, addr, size)
	}
	if _, exists := s.buffers[name]; exists {
		return Buffer{}, fmt.Errorf("mmu: alloc %q at %d: name already in use", name, addr)
	}
	if addr < 0 || addr+size > s.size {
		return Buffer{}, fmt.Errorf("mmu: alloc %q: range [%d,%d) outside space of %d bytes",
			name, addr, addr+size, s.size)
	}
	if addr%s.align != 0 {
		return Buffer{}, fmt.Errorf("mmu: alloc %q: address %d not %d-byte aligned", name, addr, s.align)
	}
	rounded := (size + s.align - 1) &^ (s.align - 1)
	for _, b := range s.buffers {
		if addr < b.End() && b.Addr < addr+rounded {
			return Buffer{}, fmt.Errorf("mmu: alloc %q: range [%d,%d) overlaps live buffer %q [%d,%d)",
				name, addr, addr+rounded, b.Name, b.Addr, b.End())
		}
	}
	for i, e := range s.free {
		if e.addr <= addr && addr+rounded <= e.addr+e.size {
			b := Buffer{Name: name, Addr: addr, Size: rounded, Kind: kind}
			// Split the extent around the carved range.
			var repl []extent
			if addr > e.addr {
				repl = append(repl, extent{e.addr, addr - e.addr})
			}
			if end := addr + rounded; end < e.addr+e.size {
				repl = append(repl, extent{end, e.addr + e.size - end})
			}
			s.free = append(s.free[:i], append(repl, s.free[i+1:]...)...)
			s.buffers[name] = b
			return b, nil
		}
	}
	return Buffer{}, fmt.Errorf("%w: no free extent covers [%d,%d)", ErrOutOfMemory, addr, addr+rounded)
}

// Validate checks the allocator's invariants: live buffers are pairwise
// disjoint and in bounds, free extents are sorted, coalesced and disjoint
// from every buffer, and free plus allocated bytes account for the whole
// space. A violation means the simulated layout is corrupt.
func (s *Space) Validate() error {
	bufs := s.Buffers()
	var allocated int64
	for i, b := range bufs {
		if b.Size <= 0 {
			return fmt.Errorf("mmu: buffer %q has size %d", b.Name, b.Size)
		}
		if b.Addr < 0 || b.End() > s.size {
			return fmt.Errorf("mmu: buffer %q [%d,%d) outside space of %d bytes", b.Name, b.Addr, b.End(), s.size)
		}
		allocated += b.Size
		if i > 0 && bufs[i-1].End() > b.Addr {
			return fmt.Errorf("mmu: buffers %q [%d,%d) and %q [%d,%d) overlap",
				bufs[i-1].Name, bufs[i-1].Addr, bufs[i-1].End(), b.Name, b.Addr, b.End())
		}
	}
	var free int64
	for i, e := range s.free {
		if e.size <= 0 {
			return fmt.Errorf("mmu: free extent [%d,%d) has size %d", e.addr, e.addr+e.size, e.size)
		}
		free += e.size
		if i > 0 && s.free[i-1].addr+s.free[i-1].size > e.addr {
			return fmt.Errorf("mmu: free extents out of order or overlapping at %d", e.addr)
		}
		for _, b := range bufs {
			if e.addr < b.End() && b.Addr < e.addr+e.size {
				return fmt.Errorf("mmu: free extent [%d,%d) overlaps buffer %q [%d,%d)",
					e.addr, e.addr+e.size, b.Name, b.Addr, b.End())
			}
		}
	}
	if allocated+free != s.size {
		return fmt.Errorf("mmu: %d allocated + %d free != %d total", allocated, free, s.size)
	}
	return nil
}

// MustAlloc is Alloc for static setup paths where failure is a bug.
func (s *Space) MustAlloc(name string, size int64, kind Kind) Buffer {
	b, err := s.Alloc(name, size, kind)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases a named buffer, coalescing free extents.
func (s *Space) Free(name string) error {
	b, ok := s.buffers[name]
	if !ok {
		return fmt.Errorf("mmu: free %q: no such buffer", name)
	}
	delete(s.buffers, name)
	s.free = append(s.free, extent{b.Addr, b.Size})
	sort.Slice(s.free, func(i, j int) bool { return s.free[i].addr < s.free[j].addr })
	merged := s.free[:1]
	for _, e := range s.free[1:] {
		last := &merged[len(merged)-1]
		if last.addr+last.size == e.addr {
			last.size += e.size
		} else {
			merged = append(merged, e)
		}
	}
	s.free = merged
	return nil
}

// Lookup returns a live buffer by name.
func (s *Space) Lookup(name string) (Buffer, bool) {
	b, ok := s.buffers[name]
	return b, ok
}

// Buffers returns all live buffers sorted by address.
func (s *Space) Buffers() []Buffer {
	out := make([]Buffer, 0, len(s.buffers))
	for _, b := range s.buffers {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FreeBytes returns the total unallocated space.
func (s *Space) FreeBytes() int64 {
	var n int64
	for _, e := range s.free {
		n += e.size
	}
	return n
}

// Owner says which agent currently holds a managed page.
type Owner uint8

// Page owners.
const (
	OwnerCPU Owner = iota
	OwnerGPU
)

func (o Owner) String() string {
	if o == OwnerCPU {
		return "cpu"
	}
	return "gpu"
}

// MigrationStats accumulates the UM driver's work.
type MigrationStats struct {
	Faults        int64
	PagesMigrated int64
	BytesMigrated int64
}

// Migrator is the unified-memory driver: it tracks the owner of each page of
// the managed region and migrates pages on first touch by the other side.
// This is the mechanism whose overhead the paper reports as the ±8% UM-vs-SC
// band.
type Migrator struct {
	pageSize int64
	owner    map[int64]Owner
	stats    MigrationStats
}

// NewMigrator creates a UM driver with the given page size (power of two).
func NewMigrator(pageSize int64) *Migrator {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mmu: page size %d must be a positive power of two", pageSize))
	}
	return &Migrator{pageSize: pageSize, owner: make(map[int64]Owner)}
}

// PageSize returns the migration granularity.
func (m *Migrator) PageSize() int64 { return m.pageSize }

// Touch records that `by` is about to access [addr, addr+size) and migrates
// any pages the other side owns. It returns the number of faulting pages and
// the bytes moved; the caller converts those to time using the device's
// fault overhead and copy bandwidth. Pages touched for the first time are
// adopted fault-free (first-touch placement).
func (m *Migrator) Touch(addr, size int64, by Owner) (faults int64, bytes int64) {
	if size <= 0 {
		return 0, 0
	}
	first := addr / m.pageSize
	last := (addr + size - 1) / m.pageSize
	for p := first; p <= last; p++ {
		cur, seen := m.owner[p]
		if !seen {
			m.owner[p] = by
			continue
		}
		if cur != by {
			m.owner[p] = by
			faults++
			bytes += m.pageSize
		}
	}
	m.stats.Faults += faults
	m.stats.PagesMigrated += faults
	m.stats.BytesMigrated += bytes
	return faults, bytes
}

// Prefetch moves [addr, addr+size) to `to` proactively, the way
// cudaMemPrefetchAsync does: the bytes still travel, but no demand faults
// are taken (the driver batches the transfer ahead of the access). It
// returns the bytes moved; pages already on the target side cost nothing.
func (m *Migrator) Prefetch(addr, size int64, to Owner) (bytes int64) {
	if size <= 0 {
		return 0
	}
	first := addr / m.pageSize
	last := (addr + size - 1) / m.pageSize
	for p := first; p <= last; p++ {
		cur, seen := m.owner[p]
		if !seen {
			m.owner[p] = to
			continue
		}
		if cur != to {
			m.owner[p] = to
			bytes += m.pageSize
		}
	}
	m.stats.PagesMigrated += bytes / m.pageSize
	m.stats.BytesMigrated += bytes
	return bytes
}

// OwnerOf reports the current owner of the page holding addr.
func (m *Migrator) OwnerOf(addr int64) (Owner, bool) {
	o, ok := m.owner[addr/m.pageSize]
	return o, ok
}

// Stats returns accumulated migration work.
func (m *Migrator) Stats() MigrationStats { return m.stats }

// Reset forgets all placements and zeroes the stats.
func (m *Migrator) Reset() {
	m.owner = make(map[int64]Owner)
	m.stats = MigrationStats{}
}
