package mmu

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{HostAlloc, "host"}, {DeviceAlloc, "device"}, {Pinned, "pinned"},
		{Managed, "managed"}, {Kind(9), "Kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind string = %q, want %q", got, tt.want)
		}
	}
}

func TestNewSpacePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero size":  func() { NewSpace(0, 64) },
		"bad align":  func() { NewSpace(1024, 48) },
		"zero align": func() { NewSpace(1024, 0) },
		"neg size":   func() { NewSpace(-1, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestAllocBasics(t *testing.T) {
	s := NewSpace(4096, 64)
	b, err := s.Alloc("a", 100, HostAlloc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 128 {
		t.Errorf("size = %d, want 128 (aligned up)", b.Size)
	}
	if b.Addr%64 != 0 {
		t.Errorf("addr %d not aligned", b.Addr)
	}
	if !b.Contains(b.Addr) || b.Contains(b.End()) {
		t.Error("Contains boundary behaviour wrong")
	}
	if got, ok := s.Lookup("a"); !ok || got != b {
		t.Error("Lookup mismatch")
	}
	if s.FreeBytes() != 4096-128 {
		t.Errorf("free = %d, want %d", s.FreeBytes(), 4096-128)
	}
}

func TestAllocErrors(t *testing.T) {
	s := NewSpace(1024, 64)
	if _, err := s.Alloc("x", 0, HostAlloc); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := s.Alloc("x", -5, HostAlloc); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := s.Alloc("a", 64, HostAlloc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("a", 64, HostAlloc); err == nil {
		t.Error("duplicate name accepted")
	}
	_, err := s.Alloc("big", 2048, HostAlloc)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversize alloc error = %v, want ErrOutOfMemory", err)
	}
}

func TestMustAllocPanicsWhenFull(t *testing.T) {
	s := NewSpace(128, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc did not panic when full")
		}
	}()
	s.MustAlloc("too-big", 4096, HostAlloc)
}

func TestFreeAndCoalesce(t *testing.T) {
	s := NewSpace(4096, 64)
	a := s.MustAlloc("a", 1024, HostAlloc)
	s.MustAlloc("b", 1024, HostAlloc)
	s.MustAlloc("c", 1024, HostAlloc)
	if err := s.Free("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Free("b"); err != nil {
		t.Fatal(err)
	}
	// a+b coalesce with each other: a 2048 block must now fit at the front.
	d, err := s.Alloc("d", 2048, HostAlloc)
	if err != nil {
		t.Fatalf("coalesced alloc failed: %v", err)
	}
	if d.Addr != a.Addr {
		t.Errorf("reused addr = %d, want %d", d.Addr, a.Addr)
	}
	if err := s.Free("nope"); err == nil {
		t.Error("freeing unknown buffer accepted")
	}
}

func TestBuffersSorted(t *testing.T) {
	s := NewSpace(4096, 64)
	s.MustAlloc("a", 64, HostAlloc)
	s.MustAlloc("b", 64, Pinned)
	s.MustAlloc("c", 64, Managed)
	bufs := s.Buffers()
	if len(bufs) != 3 {
		t.Fatalf("len = %d, want 3", len(bufs))
	}
	for i := 1; i < len(bufs); i++ {
		if bufs[i-1].Addr >= bufs[i].Addr {
			t.Error("buffers not sorted by address")
		}
	}
}

// Property: allocations never overlap and never exceed the space.
func TestPropertyAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace(1<<20, 64)
		var live []Buffer
		for i, sz := range sizes {
			b, err := s.Alloc(string(rune('a'+i%26))+string(rune('0'+i/26)), int64(sz)+1, HostAlloc)
			if err != nil {
				continue
			}
			live = append(live, b)
		}
		for i := range live {
			if live[i].End() > 1<<20 || live[i].Addr < 0 {
				return false
			}
			for j := i + 1; j < len(live); j++ {
				if live[i].Addr < live[j].End() && live[j].Addr < live[i].End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: alloc-free-alloc of the same size reuses space (no leak).
func TestPropertyFreeRestoresSpace(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace(1<<20, 64)
		before := s.FreeBytes()
		names := make([]string, 0, len(sizes))
		for i, sz := range sizes {
			name := string(rune('a'+i%26)) + string(rune('0'+i))
			if _, err := s.Alloc(name, int64(sz)+1, HostAlloc); err == nil {
				names = append(names, name)
			}
		}
		for _, n := range names {
			if err := s.Free(n); err != nil {
				return false
			}
		}
		return s.FreeBytes() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMigratorPanicsOnBadPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad page size accepted")
		}
	}()
	NewMigrator(1000)
}

func TestMigratorFirstTouchIsFree(t *testing.T) {
	m := NewMigrator(4096)
	faults, bytes := m.Touch(0, 4*4096, OwnerCPU)
	if faults != 0 || bytes != 0 {
		t.Errorf("first touch cost faults=%d bytes=%d, want free", faults, bytes)
	}
	if o, ok := m.OwnerOf(8192); !ok || o != OwnerCPU {
		t.Error("first touch did not record owner")
	}
}

func TestMigratorMigratesOnOtherSideTouch(t *testing.T) {
	m := NewMigrator(4096)
	m.Touch(0, 4*4096, OwnerCPU)
	faults, bytes := m.Touch(0, 4*4096, OwnerGPU)
	if faults != 4 || bytes != 4*4096 {
		t.Errorf("migration faults=%d bytes=%d, want 4 pages", faults, bytes)
	}
	// Same side again: no faults.
	if faults, _ := m.Touch(0, 4*4096, OwnerGPU); faults != 0 {
		t.Errorf("re-touch faulted %d times", faults)
	}
	st := m.Stats()
	if st.Faults != 4 || st.PagesMigrated != 4 || st.BytesMigrated != 4*4096 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMigratorPartialPageTouch(t *testing.T) {
	m := NewMigrator(4096)
	m.Touch(100, 10, OwnerCPU) // page 0 only
	faults, _ := m.Touch(4000, 200, OwnerGPU)
	// Range [4000,4200) spans pages 0 and 1; page 0 migrates, page 1 is new.
	if faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
}

func TestMigratorDegenerateAndReset(t *testing.T) {
	m := NewMigrator(4096)
	if f, b := m.Touch(0, 0, OwnerCPU); f != 0 || b != 0 {
		t.Error("zero-size touch did work")
	}
	m.Touch(0, 4096, OwnerCPU)
	m.Touch(0, 4096, OwnerGPU)
	m.Reset()
	if m.Stats() != (MigrationStats{}) {
		t.Error("stats survived reset")
	}
	if _, ok := m.OwnerOf(0); ok {
		t.Error("placements survived reset")
	}
}

// Property: ping-pong touches always migrate every previously-seen page.
func TestPropertyPingPongMigration(t *testing.T) {
	f := func(pages uint8, rounds uint8) bool {
		n := int64(pages%32) + 1
		m := NewMigrator(4096)
		m.Touch(0, n*4096, OwnerCPU)
		side := OwnerGPU
		for r := 0; r < int(rounds%8)+1; r++ {
			faults, bytes := m.Touch(0, n*4096, side)
			if faults != n || bytes != n*4096 {
				return false
			}
			if side == OwnerGPU {
				side = OwnerCPU
			} else {
				side = OwnerGPU
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrefetchMovesWithoutFaults(t *testing.T) {
	m := NewMigrator(4096)
	m.Touch(0, 4*4096, OwnerCPU)
	bytes := m.Prefetch(0, 4*4096, OwnerGPU)
	if bytes != 4*4096 {
		t.Errorf("prefetched %d bytes, want %d", bytes, 4*4096)
	}
	st := m.Stats()
	if st.Faults != 0 {
		t.Errorf("prefetch took %d faults, want 0", st.Faults)
	}
	if st.BytesMigrated != 4*4096 || st.PagesMigrated != 4 {
		t.Errorf("stats = %+v", st)
	}
	// Already resident: free.
	if bytes := m.Prefetch(0, 4*4096, OwnerGPU); bytes != 0 {
		t.Errorf("re-prefetch moved %d bytes", bytes)
	}
	// First touch adopts for free, like Touch.
	if bytes := m.Prefetch(1<<20, 4096, OwnerGPU); bytes != 0 {
		t.Errorf("first-touch prefetch moved %d bytes", bytes)
	}
	if m.Prefetch(0, 0, OwnerCPU) != 0 {
		t.Error("degenerate prefetch did work")
	}
}

func TestAllocAtFailures(t *testing.T) {
	// Table of rejected placements; every case must name the problem and
	// leave the space untouched.
	newSpace := func() *Space {
		s := NewSpace(4096, 64)
		s.MustAlloc("live", 256, HostAlloc) // occupies [0,256)
		return s
	}
	cases := []struct {
		name       string
		buf        string
		addr, size int64
		wantSubstr string
	}{
		{"zero size", "z", 512, 0, "must be positive"},
		{"negative size", "n", 512, -64, "must be positive"},
		{"duplicate name", "live", 512, 64, "already in use"},
		{"negative addr", "neg", -64, 64, "outside space"},
		{"beyond end", "end", 4096 - 64, 128, "outside space"},
		{"misaligned", "mis", 100, 64, "aligned"},
		{"overlap live", "clash", 128, 64, `overlaps live buffer "live"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newSpace()
			freeBefore := s.FreeBytes()
			_, err := s.AllocAt(c.buf, c.addr, c.size, DeviceAlloc)
			if err == nil {
				t.Fatalf("AllocAt(%q, %d, %d) accepted", c.buf, c.addr, c.size)
			}
			if !strings.Contains(err.Error(), c.wantSubstr) {
				t.Errorf("error %q does not mention %q", err, c.wantSubstr)
			}
			if s.FreeBytes() != freeBefore {
				t.Error("failed AllocAt changed the space")
			}
			if err := s.Validate(); err != nil {
				t.Errorf("space invalid after rejected AllocAt: %v", err)
			}
		})
	}
}

func TestAllocAtCarvesAndFrees(t *testing.T) {
	s := NewSpace(4096, 64)
	// Carve from the middle of the single free extent.
	b, err := s.AllocAt("mid", 1024, 256, Pinned)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != 1024 || b.Size != 256 || b.Kind != Pinned {
		t.Errorf("buffer = %+v", b)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The split extents still serve ordinary allocations on both sides.
	lo, err := s.Alloc("lo", 1024, HostAlloc)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Addr != 0 {
		t.Errorf("first-fit landed at %d, want 0", lo.Addr)
	}
	if _, err := s.Alloc("hi", 2048, HostAlloc); err != nil {
		t.Fatal(err)
	}
	if err := s.Free("mid"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.FreeBytes() != 4096-1024-2048 {
		t.Errorf("free = %d after freeing the carve", s.FreeBytes())
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	cases := []struct {
		name       string
		corrupt    func(*Space)
		wantSubstr string
	}{
		{"overlapping buffers", func(s *Space) {
			b := s.buffers["a"]
			b.Name = "evil"
			b.Addr += 32 // overlaps "a"
			s.buffers["evil"] = b
		}, "overlap"},
		{"zero-size buffer", func(s *Space) {
			b := s.buffers["a"]
			b.Size = 0
			s.buffers["a"] = b
		}, "has size"},
		{"buffer outside space", func(s *Space) {
			b := s.buffers["a"]
			b.Addr = 1 << 40
			s.buffers["a"] = b
		}, "outside space"},
		{"free overlaps buffer", func(s *Space) {
			s.free = append([]extent{{0, 64}}, s.free...)
		}, "overlaps buffer"},
		{"accounting mismatch", func(s *Space) {
			s.free[len(s.free)-1].size -= 64
		}, "total"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewSpace(4096, 64)
			s.MustAlloc("a", 256, HostAlloc)
			if err := s.Validate(); err != nil {
				t.Fatalf("clean space invalid: %v", err)
			}
			c.corrupt(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), c.wantSubstr) {
				t.Errorf("error %q does not mention %q", err, c.wantSubstr)
			}
		})
	}
}
