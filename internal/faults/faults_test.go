package faults

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// activate installs a plan for the test's duration, failing on a
// capability-validation error.
func activate(t *testing.T, p *Plan) {
	t.Helper()
	if err := Activate(p); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	t.Cleanup(Deactivate)
	t.Cleanup(ResetInjected)
}

func TestDisabledIsInert(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("Enabled with no plan active")
	}
	if err := Fire("nonexistent.point"); err != nil {
		t.Fatalf("Fire while disabled: %v", err)
	}
	data := []byte("hello")
	out, err := FireData("nonexistent.point", data)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("FireData while disabled mangled data: %q, %v", out, err)
	}
}

func TestErrorModeReturnsTypedError(t *testing.T) {
	activate(t, NewPlan(1, Rule{Point: "t.err", Mode: ModeError, Every: 1}))
	err := Fire("t.err")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Fire = %v, want *faults.Error", err)
	}
	if fe.Point != "t.err" || fe.Mode != ModeError {
		t.Errorf("fault = %+v", fe)
	}
	if got := Injected()["t.err"]; got != 1 {
		t.Errorf("injected[t.err] = %d, want 1", got)
	}
	if InjectedTotal() == 0 {
		t.Error("InjectedTotal = 0 after a fire")
	}
}

func TestEverySchedule(t *testing.T) {
	activate(t, NewPlan(1, Rule{Point: "t.every", Mode: ModeError, Every: 3, After: 1}))
	var fired []int
	for i := 1; i <= 10; i++ {
		if Fire("t.every") != nil {
			fired = append(fired, i)
		}
	}
	// After skipping hit 1, fires land on eligible hits 3, 6, 9 (i.e. calls
	// 4, 7, 10).
	want := []int{4, 7, 10}
	if len(fired) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fired, want)
		}
	}
}

func TestCountBudget(t *testing.T) {
	activate(t, NewPlan(1, Rule{Point: "t.count", Mode: ModeError, Every: 1, Count: 2}))
	n := 0
	for i := 0; i < 10; i++ {
		if Fire("t.count") != nil {
			n++
		}
	}
	if n != 2 {
		t.Errorf("fired %d times, want 2 (count budget)", n)
	}
}

func TestProbabilisticScheduleIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewPlan(42, Rule{Point: "t.prob", Mode: ModeError, Prob: 0.5})
		if err := Activate(p); err != nil {
			t.Fatal(err)
		}
		defer Deactivate()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire("t.prob") != nil
		}
		return out
	}
	a, b := run(), run()
	ResetInjected()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d for the same seed", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("p=0.5 fired %d/%d times — schedule looks degenerate", fires, len(a))
	}
}

func TestCorruptAndTruncate(t *testing.T) {
	activate(t, NewPlan(7,
		Rule{Point: "t.corrupt", Mode: ModeCorrupt, Every: 1},
		Rule{Point: "t.trunc", Mode: ModeTruncate, Every: 1},
	))
	orig := bytes.Repeat([]byte("abcdefgh"), 16)
	got, err := FireData("t.corrupt", append([]byte(nil), orig...))
	if err != nil {
		t.Fatalf("corrupt returned error: %v", err)
	}
	if bytes.Equal(got, orig) {
		t.Error("corrupt mode left data untouched")
	}
	if len(got) != len(orig) {
		t.Errorf("corrupt changed length %d -> %d", len(orig), len(got))
	}

	got, err = FireData("t.trunc", append([]byte(nil), orig...))
	if err != nil {
		t.Fatalf("truncate returned error: %v", err)
	}
	if len(got) >= len(orig) {
		t.Errorf("truncate kept %d of %d bytes", len(got), len(orig))
	}
	if !bytes.Equal(got, orig[:len(got)]) {
		t.Error("truncate is not a prefix")
	}
}

func TestPanicMode(t *testing.T) {
	activate(t, NewPlan(1, Rule{Point: "t.panic", Mode: ModePanic, Every: 1}))
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %v, want *faults.PanicValue", r)
		}
		if pv.Point != "t.panic" {
			t.Errorf("panic point = %q", pv.Point)
		}
	}()
	_ = Fire("t.panic")
	t.Fatal("Fire did not panic")
}

func TestLatencyMode(t *testing.T) {
	activate(t, NewPlan(1, Rule{Point: "t.lat", Mode: ModeLatency, Every: 1, Delay: 20 * time.Millisecond}))
	t0 := time.Now()
	if err := Fire("t.lat"); err != nil {
		t.Fatalf("latency fire returned error: %v", err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Errorf("latency fire took %v, want >= ~20ms", d)
	}
}

func TestActivateRejectsUnsupportedMode(t *testing.T) {
	Register("t.registered", "test point", CanError)
	t.Cleanup(func() {
		registryMu.Lock()
		delete(registry, "t.registered")
		registryMu.Unlock()
	})
	err := Activate(NewPlan(1, Rule{Point: "t.registered", Mode: ModeCorrupt, Every: 1}))
	if err == nil {
		Deactivate()
		t.Fatal("Activate accepted a corrupt rule on an error-only point")
	}
}

func TestConcurrentFireIsRaceFree(t *testing.T) {
	activate(t, NewPlan(3,
		Rule{Point: "t.race", Mode: ModeError, Prob: 0.5},
		Rule{Point: "t.race.data", Mode: ModeCorrupt, Prob: 0.5},
	))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := []byte("0123456789abcdef")
			for i := 0; i < 200; i++ {
				_ = Fire("t.race")
				_, _ = FireData("t.race.data", buf)
			}
		}()
	}
	wg.Wait()
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("a.b:error:p=0.25;c.d:latency:delay=5ms,count=3; e.f:truncate:every=2,after=1", 9)
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	byPoint := map[string]Rule{}
	for _, r := range rules {
		byPoint[r.Point] = r
	}
	if r := byPoint["a.b"]; r.Mode != ModeError || r.Prob != 0.25 {
		t.Errorf("a.b = %+v", r)
	}
	if r := byPoint["c.d"]; r.Mode != ModeLatency || r.Delay != 5*time.Millisecond || r.Count != 3 {
		t.Errorf("c.d = %+v", r)
	}
	if r := byPoint["e.f"]; r.Mode != ModeTruncate || r.Every != 2 || r.After != 1 {
		t.Errorf("e.f = %+v", r)
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"",
		";;",
		"justapoint",
		"p:badmode",
		"p:error:p=2",
		"p:error:p=nope",
		"p:error:every=-1",
		"p:latency:delay=xyz",
		"p:error:unknown=1",
		"p:error:noequals",
	} {
		if _, err := ParsePlan(spec, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted garbage", spec)
		}
	}
}

func TestParseEnv(t *testing.T) {
	t.Setenv(EnvVar, "x.y:error:every=1")
	t.Setenv(EnvSeedVar, "17")
	p, err := ParseEnv()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Seed() != 17 {
		t.Fatalf("ParseEnv plan = %+v", p)
	}
	t.Setenv(EnvVar, "")
	p, err = ParseEnv()
	if err != nil || p != nil {
		t.Fatalf("empty FAULTS: plan=%v err=%v, want nil,nil", p, err)
	}
	t.Setenv(EnvVar, "x.y:error")
	t.Setenv(EnvSeedVar, "not-a-number")
	if _, err := ParseEnv(); err == nil {
		t.Error("bad FAULTS_SEED accepted")
	}
}

// BenchmarkFireDisabled documents the disabled-path cost the perfgate
// acceptance criterion rests on: one atomic load, no allocation.
func BenchmarkFireDisabled(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Fire("bench.point")
	}
}
