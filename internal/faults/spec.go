package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// The -faults / FAULTS spec grammar, one rule per semicolon-separated
// clause:
//
//	point:mode[:key=value[,key=value...]]
//
// modes: error | latency | corrupt | truncate | panic
// keys:  p=<0..1>  per-hit probability (default 1 when no schedule given)
//	every=<n>  deterministic: fire on every n-th hit
//	after=<n>  skip the first n hits
//	count=<n>  cap total fires
//	delay=<duration>  latency-mode sleep (default 10ms)
//
// Example: "engine.characterize:error:p=0.3;engine.cache.load:corrupt:every=2"

// EnvVar is the environment variable ParseEnv reads the fault spec from.
const EnvVar = "FAULTS"

// EnvSeedVar is the environment variable carrying the plan seed.
const EnvSeedVar = "FAULTS_SEED"

// ParsePlan parses a spec string into a plan with the given seed.
func ParsePlan(spec string, seed int64) (*Plan, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty spec")
	}
	return NewPlan(seed, rules...), nil
}

func parseRule(clause string) (Rule, error) {
	parts := strings.SplitN(clause, ":", 3)
	if len(parts) < 2 || parts[0] == "" {
		return Rule{}, fmt.Errorf("faults: rule %q: want point:mode[:params]", clause)
	}
	r := Rule{Point: parts[0], Prob: 1, Delay: 10 * time.Millisecond}
	switch parts[1] {
	case "error":
		r.Mode = ModeError
	case "latency":
		r.Mode = ModeLatency
	case "corrupt":
		r.Mode = ModeCorrupt
	case "truncate":
		r.Mode = ModeTruncate
	case "panic":
		r.Mode = ModePanic
	default:
		return Rule{}, fmt.Errorf("faults: rule %q: unknown mode %q", clause, parts[1])
	}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Rule{}, fmt.Errorf("faults: rule %q: parameter %q is not key=value", clause, kv)
			}
			if err := setParam(&r, key, val); err != nil {
				return Rule{}, fmt.Errorf("faults: rule %q: %w", clause, err)
			}
		}
	}
	if r.Prob < 0 || r.Prob > 1 {
		return Rule{}, fmt.Errorf("faults: rule %q: p=%v out of [0,1]", clause, r.Prob)
	}
	if r.Every < 0 || r.After < 0 || r.Count < 0 {
		return Rule{}, fmt.Errorf("faults: rule %q: negative schedule parameter", clause)
	}
	return r, nil
}

func setParam(r *Rule, key, val string) error {
	switch key {
	case "p":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("p=%q: %w", val, err)
		}
		r.Prob = f
	case "every":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("every=%q: %w", val, err)
		}
		r.Every = n
	case "after":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("after=%q: %w", val, err)
		}
		r.After = n
	case "count":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("count=%q: %w", val, err)
		}
		r.Count = n
	case "delay":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("delay=%q: %w", val, err)
		}
		r.Delay = d
	default:
		return fmt.Errorf("unknown parameter %q", key)
	}
	return nil
}

// ParseEnv builds a plan from the FAULTS / FAULTS_SEED environment, or
// (nil, nil) when FAULTS is unset or empty.
func ParseEnv() (*Plan, error) {
	spec := os.Getenv(EnvVar)
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var seed int64 = 1
	if s := os.Getenv(EnvSeedVar); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: %s=%q: %w", EnvSeedVar, s, err)
		}
		seed = n
	}
	return ParsePlan(spec, seed)
}
