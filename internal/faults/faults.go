// Package faults is the repo's deterministic fault-injection layer: named
// fault points compiled into the production code paths (cache load/store,
// platform cloning, characterization, profiling, trace parsing, persistence)
// that stay inert — one atomic load, no allocation — until a seeded Plan is
// activated. A plan maps points to rules (error returns, latency spikes,
// corrupted or truncated bytes, panics) with deterministic or probabilistic
// schedules, so every failure mode the chaos suite asserts against is
// reproducible from a seed.
//
// Activation is process-global by design: the chaos tests exercise the whole
// advisord stack (HTTP surface, engine fan-out, cache persistence) and the
// fault points live many layers below where a plan could be threaded through.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the kind of failure a rule injects.
type Mode int

// Fault modes.
const (
	// ModeError makes the point return a typed *Error.
	ModeError Mode = iota
	// ModeLatency makes the point sleep for the rule's Delay before
	// proceeding normally.
	ModeLatency
	// ModeCorrupt flips bytes in the data passing through the point
	// (FireData points only). The corruption is silent: downstream
	// validation must catch it.
	ModeCorrupt
	// ModeTruncate drops a suffix of the data passing through the point
	// (FireData points only), simulating a partial write or torn read.
	ModeTruncate
	// ModePanic makes the point panic with a *PanicValue.
	ModePanic
)

// String names the mode for logs and error messages.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeCorrupt:
		return "corrupt"
	case ModeTruncate:
		return "truncate"
	case ModePanic:
		return "panic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Cap is the bitmask of modes a registered fault point supports; Activate
// rejects plans that pair a point with a mode it cannot express.
type Cap uint8

// Capability bits.
const (
	// CanError marks points that can return an injected error.
	CanError Cap = 1 << iota
	// CanLatency marks points that can absorb an injected delay.
	CanLatency
	// CanCorrupt marks data points whose bytes can be corrupted.
	CanCorrupt
	// CanTruncate marks data points whose bytes can be truncated.
	CanTruncate
	// CanPanic marks points that can panic.
	CanPanic
)

func (c Cap) has(m Mode) bool {
	switch m {
	case ModeError:
		return c&CanError != 0
	case ModeLatency:
		return c&CanLatency != 0
	case ModeCorrupt:
		return c&CanCorrupt != 0
	case ModeTruncate:
		return c&CanTruncate != 0
	case ModePanic:
		return c&CanPanic != 0
	}
	return false
}

// Error is the typed error an error-mode fault returns; callers and tests
// identify injected failures with errors.As.
type Error struct {
	// Point is the fault point that fired.
	Point string
	// Mode is the rule's mode (ModeError, or a data mode fired at a
	// non-data point).
	Mode Mode
}

// Error formats the injected failure with its point and mode.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s at %s", e.Mode, e.Point)
}

// PanicValue is what a panic-mode fault panics with; recovery layers (the
// engine's fan-out, advisord's middleware) surface it in their PanicError.
type PanicValue struct {
	// Point is the fault point that fired.
	Point string
}

// String identifies the injected panic's origin point.
func (p *PanicValue) String() string { return "faults: injected panic at " + p.Point }

// Point is one registered fault point: its name, what it interrupts, and the
// modes it supports.
type Point struct {
	Name string
	Desc string
	Caps Cap
}

var (
	registryMu sync.Mutex
	registry   = map[string]Point{}
)

// Register declares a fault point (typically from a package-level var at the
// site that fires it) and returns its name so the declaration doubles as the
// identifier. Re-registering a name overwrites its metadata.
func Register(name, desc string, caps Cap) string {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = Point{Name: name, Desc: desc, Caps: caps}
	return name
}

// Points lists the registered fault points sorted by name — the catalog the
// docs and the -faults flag validation are built from.
func Points() []Point {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Point, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Rule activates one fault at one point. Scheduling: with Every > 0 the rule
// fires deterministically on every Every-th hit after the first After hits;
// otherwise it fires with probability Prob per hit, drawn from the plan's
// seeded per-point stream. Count, when > 0, caps the total number of fires.
type Rule struct {
	// Point names the fault point this rule attaches to.
	Point string
	// Mode is the failure to inject.
	Mode Mode
	// Prob is the per-hit fire probability (used when Every == 0).
	Prob float64
	// Every fires deterministically on every Every-th eligible hit.
	Every int
	// After skips the first After hits entirely.
	After int
	// Count caps the number of fires (0: unlimited).
	Count int
	// Delay is the injected latency for ModeLatency.
	Delay time.Duration
}

// ruleState is a rule plus its mutable schedule state.
type ruleState struct {
	Rule
	hits  int
	fires int
	rng   *rand.Rand
}

// Plan is an activatable set of rules with a deterministic seed. Build one
// with NewPlan/ParsePlan, then Activate it.
type Plan struct {
	seed  int64
	mu    sync.Mutex
	rules map[string][]*ruleState
}

// NewPlan builds a plan from rules. Each point gets its own random stream
// derived from seed, so adding a rule for one point never perturbs another
// point's schedule.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{seed: seed, rules: make(map[string][]*ruleState)}
	for _, r := range rules {
		p.rules[r.Point] = append(p.rules[r.Point], &ruleState{
			Rule: r,
			rng:  rand.New(rand.NewSource(pointSeed(seed, r.Point))),
		})
	}
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Rules returns the plan's rules in activation order per point.
func (p *Plan) Rules() []Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Rule
	for _, name := range sortedRuleKeys(p.rules) {
		for _, rs := range p.rules[name] {
			out = append(out, rs.Rule)
		}
	}
	return out
}

func sortedRuleKeys(m map[string][]*ruleState) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pointSeed(seed int64, point string) int64 {
	h := fnv.New64a()
	h.Write([]byte(point))
	return seed ^ int64(h.Sum64())
}

// active is the process-wide plan; nil means fault injection is off and
// every Fire call is a single atomic load.
var active atomic.Pointer[Plan]

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Activate validates the plan against the registered point catalog (a rule
// whose mode the point cannot express is a configuration error) and makes it
// the process-wide plan. Tests must pair it with a deferred Deactivate.
func Activate(p *Plan) error {
	if p == nil {
		return fmt.Errorf("faults: nil plan")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	for point, rules := range p.rules {
		reg, known := registry[point]
		if !known {
			continue // ad-hoc points (tests) are allowed
		}
		for _, rs := range rules {
			if !reg.Caps.has(rs.Mode) {
				return fmt.Errorf("faults: point %s does not support mode %s", point, rs.Mode)
			}
		}
	}
	active.Store(p)
	return nil
}

// Deactivate turns fault injection off. Injected-counter totals survive so a
// post-run scrape still reports what happened.
func Deactivate() { active.Store(nil) }

// injected is the per-point fire total, kept outside the plan so counters
// survive plan swaps and deactivation.
var (
	injectedMu    sync.Mutex
	injected      = map[string]uint64{}
	injectedTotal atomic.Uint64
)

func recordFire(point string) {
	injectedMu.Lock()
	injected[point]++
	injectedMu.Unlock()
	injectedTotal.Add(1)
}

// Injected snapshots the per-point injected-fault totals (for the
// faults_injected_total metric vec).
func Injected() map[string]uint64 {
	injectedMu.Lock()
	defer injectedMu.Unlock()
	out := make(map[string]uint64, len(injected))
	for k, v := range injected {
		out[k] = v
	}
	return out
}

// InjectedTotal returns the total number of injected faults since process
// start.
func InjectedTotal() uint64 { return injectedTotal.Load() }

// ResetInjected zeroes the injected counters (tests).
func ResetInjected() {
	injectedMu.Lock()
	injected = map[string]uint64{}
	injectedMu.Unlock()
	injectedTotal.Store(0)
}

// decision is what a point's rule evaluation produced.
type decision struct {
	mode  Mode
	delay time.Duration
	// rng is a private stream split off the point's seeded stream under
	// the plan lock, so data mangling happens lock-free yet two concurrent
	// fires never share rand state.
	rng *rand.Rand
}

// decide evaluates the point's rules and returns at most one firing decision
// (first matching rule wins, in plan order).
func (p *Plan) decide(point string) (decision, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rs := range p.rules[point] {
		rs.hits++
		if rs.hits <= rs.After {
			continue
		}
		if rs.Count > 0 && rs.fires >= rs.Count {
			continue
		}
		fire := false
		if rs.Every > 0 {
			fire = (rs.hits-rs.After)%rs.Every == 0
		} else {
			fire = rs.rng.Float64() < rs.Prob
		}
		if !fire {
			continue
		}
		rs.fires++
		d := decision{mode: rs.Mode, delay: rs.Delay}
		if rs.Mode == ModeCorrupt || rs.Mode == ModeTruncate {
			d.rng = rand.New(rand.NewSource(rs.rng.Int63()))
		}
		return d, true
	}
	return decision{}, false
}

// Fire evaluates the named point. When injection is off (or no rule fires)
// it returns nil with no side effects. Error mode returns a typed *Error;
// latency mode sleeps; panic mode panics with *PanicValue. Data modes at a
// non-data point degrade to an error so a misconfigured rule is still
// visible.
func Fire(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	d, ok := p.decide(point)
	if !ok {
		return nil
	}
	recordFire(point)
	switch d.mode {
	case ModeLatency:
		time.Sleep(d.delay)
		return nil
	case ModePanic:
		panic(&PanicValue{Point: point})
	default:
		return &Error{Point: point, Mode: d.mode}
	}
}

// FireData evaluates the named point against bytes flowing through it.
// Corrupt mode flips deterministic-random bytes, truncate mode drops a
// suffix; both return mangled data with a nil error — silent damage the
// caller's validation must catch. Error, latency and panic modes behave as
// in Fire. With injection off, data is returned untouched.
func FireData(point string, data []byte) ([]byte, error) {
	p := active.Load()
	if p == nil {
		return data, nil
	}
	d, ok := p.decide(point)
	if !ok {
		return data, nil
	}
	recordFire(point)
	switch d.mode {
	case ModeLatency:
		time.Sleep(d.delay)
		return data, nil
	case ModePanic:
		panic(&PanicValue{Point: point})
	case ModeCorrupt:
		return corrupt(d.rng, data), nil
	case ModeTruncate:
		return truncate(d.rng, data), nil
	default:
		return data, &Error{Point: point, Mode: d.mode}
	}
}

// corrupt returns a copy of data with 1 + len/64 bytes flipped at seeded
// positions.
func corrupt(rng *rand.Rand, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	flips := 1 + len(data)/64
	for i := 0; i < flips; i++ {
		pos := rng.Intn(len(out))
		out[pos] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// truncate returns a strict prefix of data (possibly empty).
func truncate(rng *rand.Rand, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	n := rng.Intn(len(data))
	out := make([]byte, n)
	copy(out, data[:n])
	return out
}
