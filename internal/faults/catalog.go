package faults

// Catalog is the committed fault-point catalog: every point name compiled
// into the tree, sorted. The igpulint faultpoint analyzer holds the code to
// this list both ways — a Register site whose name is missing here fails
// the gate, and an entry here with no Register site is an orphan. Chaos
// schedules and the -faults flag grammar should only ever name points from
// this list.
var Catalog = []string{
	"advisord.fleet.export",
	"engine.cache.load",
	"engine.cache.store",
	"engine.characterize",
	"engine.explore",
	"framework.persist.load",
	"framework.persist.save",
	"hazard.trace.parse",
	"profile.collect",
	"soc.clone",
}
