package fleet_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/advisord/client"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/chaos"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/units"
)

// The storm harness: a live multi-shard advisord fleet under closed-loop
// load while the topology changes underneath it — a cold shard joins with a
// warm handoff at T/3, a shard dies without ceremony at 2T/3. The run
// asserts the tentpole's operational claims: throughput holds, fleet p99
// stays within 5x of a single-process baseline, every response is valid
// advice or a typed error, and the cache never serves corrupt entries.

// stormTargetRPS returns the throughput floor the storm must sustain. The
// race detector slows the warm advise path by ~20x on this class of
// hardware, so the floor scales rather than making `-race` CI a liar.
func stormTargetRPS() float64 {
	if fleet.RaceEnabled() {
		return 50
	}
	return 1000
}

// stormDuration returns the storm's load window. Correctness under
// topology churn now lives in the deterministic simulation suite
// (internal/dst), which sweeps hundreds of seeded schedules in virtual
// time; the real-time storm remains as a smoke check of the live-socket
// stack, so it defaults to a short profile. FLEET_STORM=full restores the
// original window for soak runs on a quiet machine.
func stormDuration() time.Duration {
	if os.Getenv("FLEET_STORM") == "full" {
		return 3 * time.Second
	}
	return 1 * time.Second
}

// stormShard is one live shard: its fleet state, engine and data listener.
type stormShard struct {
	id  string
	st  *fleet.State
	eng *engine.Engine
	ts  *httptest.Server
}

// quietLogger drops everything below Error at the Enabled check, so the
// per-request Info log costs nothing during the storm.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
}

// startStormShard boots one shard with a placeholder single-member
// membership; the test pushes real membership once every listener URL is
// known, the same order of operations an operator's rebalance uses.
func startStormShard(t *testing.T, id string) *stormShard {
	t.Helper()
	st, err := fleet.NewState(id, []fleet.Shard{{ID: id, URL: "http://placeholder.invalid"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2, KeyRole: st.KeyRole})
	srv := advisord.New(eng, advisord.Options{
		Params:           microbench.TestParams(),
		Scale:            catalog.Quick,
		Logger:           quietLogger(),
		RequestTimeout:   10 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
		Fleet:            st,
	})
	sh := &stormShard{id: id, st: st, eng: eng}
	sh.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(sh.ts.Close)
	return sh
}

// membership builds the shard list for the given shards.
func membership(shards ...*stormShard) []fleet.Shard {
	out := make([]fleet.Shard, len(shards))
	for i, sh := range shards {
		out[i] = fleet.Shard{ID: sh.id, URL: sh.ts.URL}
	}
	return out
}

// pushMembership installs a membership list on every listed shard, as
// `advisorctl rebalance -peers ...` would.
func pushMembership(t *testing.T, members []fleet.Shard, shards ...*stormShard) {
	t.Helper()
	for _, sh := range shards {
		if err := sh.st.SetShards(members); err != nil {
			t.Fatalf("push membership to %s: %v", sh.id, err)
		}
	}
}

// seedSyntheticEntries spreads n synthetic characterizations across the
// fleet, each installed on the shard owning its key, so a later warm handoff
// has real freight to move.
func seedSyntheticEntries(t *testing.T, n int, shards ...*stormShard) {
	t.Helper()
	byID := make(map[string]*stormShard, len(shards))
	for _, sh := range shards {
		byID[sh.id] = sh
	}
	ring := shards[0].st.Ring()
	for i := 0; i < n; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("storm-seed-%d", i)))
		key := hex.EncodeToString(sum[:])
		owner, ok := byID[ring.Owner(key)]
		if !ok {
			t.Fatalf("key owner %q is not a running shard", ring.Owner(key))
		}
		owner.eng.CachePut(key, framework.Characterization{
			Platform:            fmt.Sprintf("storm-board-%d", i),
			Thresholds:          perfmodel.Thresholds{CPUCache: 0.10, GPUCacheLow: 0.10, GPUCacheHigh: 0.30},
			PeakGPUThroughput:   100 * units.GBps,
			PinnedGPUThroughput: 10 * units.GBps,
			ZCSCMaxSpeedup:      10,
			SCZCMaxSpeedup:      2.5,
		})
	}
}

// deviceRequests is the storm's request mix: one valid advisory question per
// catalog device, so the warm path dominates and every shard owning a device
// key sees traffic.
func deviceRequests() []advisord.AdviseRequest {
	var out []advisord.AdviseRequest
	for _, cfg := range devices.All() {
		out = append(out, advisord.AdviseRequest{Device: cfg.Name, App: "shwfs", Current: "sc"})
	}
	return out
}

// checkStormResult enforces the per-response invariant under churn: complete
// advice (possibly degraded, then with a reason) or a typed error — never a
// half-answer.
func checkStormResult(res advisord.AdviseResult) error {
	if res.Error != "" {
		if res.Recommendation != nil {
			return fmt.Errorf("both error %q and a recommendation", res.Error)
		}
		if res.ErrorKind == "" {
			return fmt.Errorf("error %q lacks a kind", res.Error)
		}
		return nil
	}
	if res.Recommendation == nil || res.Recommendation.Suggested == "" || res.Zone == "" {
		return fmt.Errorf("incomplete advice %+v", res)
	}
	if res.Degraded && res.DegradedReason == "" {
		return fmt.Errorf("degraded without a reason")
	}
	return nil
}

// stormDo builds the closed-loop Do func: each call advises the whole
// request mix as one batch — so every call exercises the client's
// split-by-owner routing across shards — and validates the response
// invariant. Each answered question counts as one op.
func stormDo(cl *client.Client, reqs []advisord.AdviseRequest, violations *atomic.Int64) func(context.Context) (int, error) {
	return func(ctx context.Context) (int, error) {
		body := advisord.AdviseBody{Requests: reqs}
		resp, err := cl.Advise(ctx, body)
		if err != nil {
			return 0, err
		}
		for _, res := range resp.Results {
			if verr := checkStormResult(res); verr != nil {
				violations.Add(1)
				return len(resp.Results), verr
			}
		}
		return len(resp.Results), nil
	}
}

// warmFleet pushes every request through once so each shard characterizes
// the device keys it owns before the clock starts.
func warmFleet(t *testing.T, cl *client.Client, reqs []advisord.AdviseRequest) {
	t.Helper()
	for _, ar := range reqs {
		if _, err := cl.Advise(context.Background(), advisord.AdviseBody{Requests: []advisord.AdviseRequest{ar}}); err != nil {
			t.Fatalf("warm advise %s: %v", ar.Device, err)
		}
	}
}

// singleProcessBaseline measures the non-fleet advisord p99 the storm is
// held against.
func singleProcessBaseline(t *testing.T, reqs []advisord.AdviseRequest) fleet.LoadSummary {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	srv := advisord.New(eng, advisord.Options{
		Params:         microbench.TestParams(),
		Scale:          catalog.Quick,
		Logger:         quietLogger(),
		RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cl := client.New(client.Options{BaseURL: ts.URL})
	warmFleet(t, cl, reqs)
	var violations atomic.Int64
	sum, err := fleet.RunLoad(context.Background(), fleet.LoadOptions{
		Workers:  4,
		Duration: 1 * time.Second,
		Do:       stormDo(cl, reqs, &violations),
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Fatalf("baseline produced %d invalid responses", violations.Load())
	}
	return sum
}

// stormClient builds the fleet client the storm drives: aggressive backoff
// caps so a dead shard costs milliseconds, not seconds, and the shared
// topology-refresh rate limit low enough to learn the join mid-storm.
func stormClient(rt *fleet.Router) *client.Client {
	return client.New(client.Options{
		Fleet:              rt,
		Params:             microbench.TestParams(),
		MaxAttempts:        6,
		BaseDelay:          time.Millisecond,
		MaxDelay:           10 * time.Millisecond,
		Budget:             2 * time.Second,
		RefreshMinInterval: 100 * time.Millisecond,
	})
}

// stormArtifact is the latency summary `make fleet` uploads when
// FLEET_SUMMARY names a path.
type stormArtifact struct {
	Race            bool              `json:"race"`
	TargetRPS       float64           `json:"target_rps"`
	Baseline        fleet.LoadSummary `json:"baseline"`
	Storm           fleet.LoadSummary `json:"storm"`
	JoinPulled      int               `json:"join_pulled"`
	ClientStats     fleet.RouterStats `json:"client_stats"`
	ServerReroutes  uint64            `json:"server_reroutes"`
	HandoffImported uint64            `json:"handoff_imported"`
}

// writeStormArtifact persists the run summary when FLEET_SUMMARY is set.
func writeStormArtifact(t *testing.T, art stormArtifact) {
	t.Helper()
	path := os.Getenv("FLEET_SUMMARY")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("storm summary written to %s", path)
}

func TestFleetStormJoinAndDeath(t *testing.T) {
	a := startStormShard(t, "shard-a")
	b := startStormShard(t, "shard-b")
	c := startStormShard(t, "shard-c")
	core := []*stormShard{a, b, c}
	pushMembership(t, membership(core...), core...)
	seedSyntheticEntries(t, 60, core...)

	// The cold shard exists but is not yet a member: no traffic routes to
	// it until the mid-storm membership push.
	d := startStormShard(t, "shard-d")
	all := []*stormShard{a, b, c, d}
	fullMembers := membership(all...)

	// Pick the kill victim among the original shards: the owner of a device
	// key under the post-join ring, so its death actually rejects traffic.
	fullRing, err := fleet.NewRing([]string{"shard-a", "shard-b", "shard-c", "shard-d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := deviceRequests()
	rt, err := fleet.NewRouter(fleet.RouterOptions{Shards: membership(core...)})
	if err != nil {
		t.Fatal(err)
	}
	cl := stormClient(rt)
	victim := a
	for _, ar := range reqs {
		owner := fullRing.Owner(clientRouteKey(t, ar))
		for _, sh := range core {
			if sh.id == owner {
				victim = sh
			}
		}
	}
	warmFleet(t, cl, reqs)
	baseline := singleProcessBaseline(t, reqs)
	if baseline.P99Micros <= 0 {
		t.Fatalf("baseline p99 = %d", baseline.P99Micros)
	}

	storm := stormDuration()
	var joinPulled atomic.Int64
	join := time.AfterFunc(storm/3, func() {
		// The join protocol: membership push to every replica first, then
		// the cold shard pulls the entries it now owns from its peers.
		pushMembership(t, fullMembers, all...)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rep, err := fleet.Pull(ctx, d.st, nil, d.eng.CachePut)
		if err != nil {
			t.Errorf("join pull: %v", err)
			return
		}
		joinPulled.Store(int64(rep.Pulled))
	})
	defer join.Stop()
	kill := time.AfterFunc(2*storm/3, func() {
		// No drain, no goodbye: the shard's listener dies mid-connection.
		victim.ts.CloseClientConnections()
		victim.ts.Close()
	})
	defer kill.Stop()

	var violations atomic.Int64
	sum, err := fleet.RunLoad(context.Background(), fleet.LoadOptions{
		Workers:  4,
		Duration: storm,
		Do:       stormDo(cl, reqs, &violations),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm: %.0f rps over %d calls, p50=%dµs p99=%dµs (baseline p99=%dµs), %d errors",
		sum.AchievedRPS, sum.Calls, sum.P50Micros, sum.P99Micros, baseline.P99Micros, sum.Errors)

	if target := stormTargetRPS(); sum.AchievedRPS < target {
		t.Errorf("achieved %.0f RPS, floor is %.0f", sum.AchievedRPS, target)
	}
	if limit := 5 * baseline.P99Micros; sum.P99Micros >= limit {
		t.Errorf("storm p99 %dµs >= 5x baseline %dµs", sum.P99Micros, baseline.P99Micros)
	}
	if violations.Load() != 0 {
		t.Errorf("%d responses broke the advice-or-typed-error invariant", violations.Load())
	}
	if got := joinPulled.Load(); got == 0 {
		t.Error("cold shard's warm handoff pulled nothing")
	}
	if sum.Errors*10 > sum.Calls {
		t.Errorf("%d of %d calls failed outright; the fleet should absorb a single shard death", sum.Errors, sum.Calls)
	}
	var serverReroutes, imported uint64
	for _, sh := range all {
		if sh == victim {
			continue
		}
		st := sh.st.Stats()
		serverReroutes += st.ReroutesReceived
		imported += st.HandoffImported
		if corrupt := sh.eng.Stats().CacheCorruptEntries; corrupt != 0 {
			t.Errorf("%s quarantined %d corrupt cache entries", sh.id, corrupt)
		}
	}
	if serverReroutes == 0 {
		t.Error("no shard reports serving a rerouted key after the death")
	}
	if imported == 0 {
		t.Error("handoff import counter never moved")
	}
	cs := rt.Stats()
	if cs.Reroutes == 0 {
		t.Error("client never rerouted around the dead shard")
	}
	if rt.Version() < 2 {
		t.Errorf("client never refreshed topology mid-storm (version %d)", rt.Version())
	}
	writeStormArtifact(t, stormArtifact{
		Race:            fleet.RaceEnabled(),
		TargetRPS:       stormTargetRPS(),
		Baseline:        baseline,
		Storm:           sum,
		JoinPulled:      int(joinPulled.Load()),
		ClientStats:     cs,
		ServerReroutes:  serverReroutes,
		HandoffImported: imported,
	})
}

// clientRouteKey mirrors the client's key computation for victim selection.
func clientRouteKey(t *testing.T, ar advisord.AdviseRequest) string {
	t.Helper()
	cfg, err := devices.ByName(ar.Device)
	if err != nil {
		t.Fatal(err)
	}
	key, err := engine.CacheKey(cfg, microbench.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestFleetStormUnderChaosSchedule replays the storm's load shape with the
// chaos suite's flaky-engine schedule active: injected engine errors must
// surface as degraded advice or typed errors — the fleet layer must not
// amplify them into invariant violations or corrupt cache entries.
func TestFleetStormUnderChaosSchedule(t *testing.T) {
	a := startStormShard(t, "shard-a")
	b := startStormShard(t, "shard-b")
	c := startStormShard(t, "shard-c")
	core := []*stormShard{a, b, c}
	pushMembership(t, membership(core...), core...)

	rt, err := fleet.NewRouter(fleet.RouterOptions{Shards: membership(core...)})
	if err != nil {
		t.Fatal(err)
	}
	cl := stormClient(rt)
	reqs := deviceRequests()
	// Warm before the faults go live: cold characterization under the race
	// detector takes longer than the whole storm window, and the chaos
	// question is about the steady state anyway.
	warmFleet(t, cl, reqs)

	sched := chaos.Schedules()[0] // flaky-engine, seed 101
	if err := faults.Activate(faults.NewPlan(sched.Seed, sched.Rules...)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		faults.Deactivate()
		faults.ResetInjected()
	})

	var violations atomic.Int64
	sum, err := fleet.RunLoad(context.Background(), fleet.LoadOptions{
		Workers:  4,
		Duration: stormDuration() / 2,
		Do:       stormDo(cl, reqs, &violations),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos storm: %.0f rps over %d calls, %d errors, %d faults injected",
		sum.AchievedRPS, sum.Calls, sum.Errors, faults.InjectedTotal())

	if sum.Calls == 0 {
		t.Fatal("chaos storm completed no calls")
	}
	if violations.Load() != 0 {
		t.Errorf("%d responses broke the advice-or-typed-error invariant under chaos", violations.Load())
	}
	for _, sh := range core {
		if corrupt := sh.eng.Stats().CacheCorruptEntries; corrupt != 0 {
			t.Errorf("%s quarantined %d corrupt cache entries", sh.id, corrupt)
		}
	}
}
