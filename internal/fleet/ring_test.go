package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// testKey fabricates a content-hash-shaped cache key, matching what the
// engine actually routes.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership should fail")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty shard ID should fail")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate shard ID should fail")
	}
}

func TestRingVNodeClamping(t *testing.T) {
	r, err := NewRing([]string{"a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	r, err = NewRing([]string{"a"}, MaxVNodes*10)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != MaxVNodes {
		t.Fatalf("vnodes = %d, want clamp %d", r.VNodes(), MaxVNodes)
	}
}

// Ring determinism across restarts (satellite): the ring hashes only stable
// inputs, so two rings built in different "processes" — here, separate
// constructions, including from a permuted membership list — must agree on
// every owner and the full preference order.
func TestRingDeterministicAcrossRebuilds(t *testing.T) {
	a, err := NewRing([]string{"shard-a", "shard-b", "shard-c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"shard-c", "shard-a", "shard-b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := testKey(i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner diverged for %s: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		if !reflect.DeepEqual(a.Preference(key, 0), b.Preference(key, 0)) {
			t.Fatalf("preference diverged for %s", key)
		}
	}
}

// Single-shard ring (satellite edge case): every key routes to the only
// shard, and it owns the whole key space.
func TestRingSingleShard(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(testKey(i)); got != "solo" {
			t.Fatalf("owner = %q, want solo", got)
		}
	}
	if got := r.Preference(testKey(0), 0); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("preference = %v, want [solo]", got)
	}
	shares := r.Shares()
	if math.Abs(shares["solo"]-1.0) > 1e-9 {
		t.Fatalf("solo share = %v, want 1.0", shares["solo"])
	}
}

func TestRingPreferenceDistinctAndOwnerFirst(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := testKey(i)
		pref := r.Preference(key, 0)
		if len(pref) != 4 {
			t.Fatalf("preference %v has %d entries, want 4", pref, len(pref))
		}
		if pref[0] != r.Owner(key) {
			t.Fatalf("preference %v does not start with owner %s", pref, r.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range pref {
			if seen[id] {
				t.Fatalf("preference %v repeats %s", pref, id)
			}
			seen[id] = true
		}
		if got := r.Preference(key, 2); len(got) != 2 || got[0] != pref[0] || got[1] != pref[1] {
			t.Fatalf("truncated preference %v disagrees with prefix of %v", got, pref)
		}
	}
}

// Shares must sum to 1 and, with enough virtual nodes, stay roughly balanced
// — the property `advisorctl ring` reports to operators.
func TestRingSharesBalanced(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 256)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	total := 0.0
	for id, s := range shares {
		total += s
		if s < 0.15 || s > 0.55 {
			t.Fatalf("share for %s = %.3f, outside sane balance band", id, s)
		}
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1.0", total)
	}
}

// A joining shard should take over part of the key space without reshuffling
// keys between the surviving shards — the property that bounds warm-handoff
// volume.
func TestRingJoinOnlyMovesKeysToNewShard(t *testing.T) {
	before, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"a", "b", "c", "d"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 2000; i++ {
		key := testKey(i)
		o1, o2 := before.Owner(key), after.Owner(key)
		if o1 != o2 {
			moved++
			if o2 != "d" {
				t.Fatalf("key %s moved %s -> %s, not to the joining shard", key, o1, o2)
			}
		}
	}
	if moved == 0 {
		t.Fatal("joining shard took no keys")
	}
	if moved > 1200 {
		t.Fatalf("join moved %d/2000 keys — far more than its fair share", moved)
	}
}
