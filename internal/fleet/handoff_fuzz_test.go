package fleet

import (
	"bytes"
	"strings"
	"testing"

	"igpucomm/internal/framework"
)

// FuzzReadExport feeds arbitrary byte streams — and mutations of valid
// export streams — to the NDJSON handoff parser. The contract under fuzz:
// never panic, never deliver an entry the persist-format loader would
// reject, quarantine (count, skip) everything else. A handoff peer is a
// network peer; its stream is attacker-shaped input.
func FuzzReadExport(f *testing.F) {
	var valid bytes.Buffer
	entries := map[string]framework.Characterization{
		testKey(1): handoffChar("board-1"),
		testKey(2): handoffChar("board-2"),
	}
	if _, err := WriteExport(&valid, entries, nil); err != nil {
		f.Fatal(err)
	}
	validStream := valid.String()
	lines := strings.SplitAfter(validStream, "\n")

	f.Add(validStream)                                                      // well-formed stream
	f.Add("")                                                               // empty
	f.Add("\n\n\n")                                                         // blank lines only
	f.Add("{nope\n")                                                        // malformed JSON
	f.Add(`{"key":"","entry":{}}` + "\n")                                   // empty key
	f.Add(`{"key":"k","entry":{"format_version":999}}` + "\n")              // version mismatch
	f.Add(`{"key":"k","entry":null}` + "\n")                                // null payload
	f.Add(validStream[:len(validStream)/2])                                 // truncated mid-line
	f.Add(lines[0] + lines[0])                                              // duplicate keys
	f.Add(`{"key":"` + strings.Repeat("x", 1<<16) + `","entry":{}}` + "\n") // huge key
	f.Add(strings.Repeat(lines[0], 50))                                     // long stream

	f.Fuzz(func(t *testing.T, stream string) {
		delivered := 0
		n, quarantined, err := ReadExport(strings.NewReader(stream), func(key string, char framework.Characterization) error {
			if key == "" {
				t.Fatal("delivered an entry with an empty key")
			}
			// Anything delivered must round-trip through the persist
			// format — ReadExport promises loader-validated entries.
			var buf bytes.Buffer
			if err := framework.SaveCharacterization(&buf, char); err != nil {
				t.Fatalf("delivered entry does not re-save: %v", err)
			}
			delivered++
			return nil
		})
		if err != nil {
			// Only transport errors are fatal, and a strings.Reader has
			// none — every malformed line must quarantine instead.
			t.Fatalf("in-memory stream returned fatal error: %v", err)
		}
		if n != delivered {
			t.Fatalf("reported %d delivered, callback saw %d", n, delivered)
		}
		if quarantined < 0 {
			t.Fatalf("negative quarantine count %d", quarantined)
		}
	})
}
