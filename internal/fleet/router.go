package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"igpucomm/internal/simnet"
)

// RouterOptions configures a Router. Zero values mean defaults.
type RouterOptions struct {
	// Shards is the initial membership (required, at least one).
	Shards []Shard
	// VNodes is the per-shard virtual-node count (0: DefaultVNodes). It
	// must match the fleet's, or client ownership diverges from server
	// ownership and every request counts as a reroute.
	VNodes int
	// FailureThreshold is how many consecutive failures mark a shard
	// unhealthy (0: 3).
	FailureThreshold int
	// Cooldown is how long an unhealthy shard stays out of preference
	// order before it is probed again (0: 2s).
	Cooldown time.Duration
	// Clock is the time source for health timing (nil: simnet.Real()).
	// The DST harness injects a virtual clock here.
	Clock simnet.Clock
}

// replicaHealth tracks one shard's consecutive failures and the instant it
// becomes eligible again after being marked down.
type replicaHealth struct {
	failures  int
	downUntil time.Time // zero: healthy
}

// Router is the client side of the fleet: it holds a topology (swappable via
// Update when a refresh fetches a newer one), computes each key's shard
// preference order on the shared ring, and tracks per-replica health so
// unhealthy shards drop out of preference until their cooldown lapses. When
// every shard is unhealthy it still returns the full ring order — the
// any-replica fallback — so a storm of failures degrades answers instead of
// erasing them. Safe for concurrent use.
type Router struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu      sync.Mutex
	version int64
	vnodes  int
	ring    *Ring
	byID    map[string]Shard
	health  map[string]*replicaHealth

	reroutes  atomic.Uint64
	fallbacks atomic.Uint64
	refreshes atomic.Uint64
}

// NewRouter builds a router over the initial membership.
func NewRouter(opt RouterOptions) (*Router, error) {
	if opt.FailureThreshold <= 0 {
		opt.FailureThreshold = 3
	}
	if opt.Cooldown <= 0 {
		opt.Cooldown = 2 * time.Second
	}
	if opt.Clock == nil {
		opt.Clock = simnet.Real()
	}
	rt := &Router{
		threshold: opt.FailureThreshold,
		cooldown:  opt.Cooldown,
		now:       opt.Clock.Now,
		health:    make(map[string]*replicaHealth),
	}
	if err := rt.install(Topology{Version: 1, VNodes: opt.VNodes, Shards: opt.Shards}); err != nil {
		return nil, err
	}
	return rt, nil
}

// install swaps in a topology, keeping health records for surviving shards.
func (rt *Router) install(topo Topology) error {
	ids := make([]string, len(topo.Shards))
	byID := make(map[string]Shard, len(topo.Shards))
	for i, sh := range topo.Shards {
		ids[i] = sh.ID
		byID[sh.ID] = sh
	}
	ring, err := NewRing(ids, topo.VNodes)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	rt.version = topo.Version
	rt.vnodes = ring.VNodes()
	rt.ring = ring
	rt.byID = byID
	for id := range rt.health {
		if _, ok := byID[id]; !ok {
			delete(rt.health, id)
		}
	}
	rt.mu.Unlock()
	return nil
}

// Update installs topo when its version exceeds the router's, returning
// whether it was accepted. A topology refresh counts whether or not the
// fetched version was newer.
func (rt *Router) Update(topo Topology) (bool, error) {
	rt.refreshes.Add(1)
	rt.mu.Lock()
	stale := topo.Version <= rt.version
	rt.mu.Unlock()
	if stale {
		return false, nil
	}
	if err := rt.install(topo); err != nil {
		return false, err
	}
	return true, nil
}

// Version returns the topology version the router holds.
func (rt *Router) Version() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.version
}

// Shards returns the membership the router holds, in ring (sorted-ID)
// order — the candidate list a topology refresh walks.
func (rt *Router) Shards() []Shard {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]Shard, 0, len(rt.byID))
	for _, id := range rt.ring.Shards() {
		out = append(out, rt.byID[id])
	}
	return out
}

// healthyLocked reports whether id may be routed to. An unhealthy shard
// becomes eligible again (half-open) once its cooldown lapses; its next
// failure marks it straight down again.
func (rt *Router) healthyLocked(id string) bool {
	h := rt.health[id]
	if h == nil || h.downUntil.IsZero() {
		return true
	}
	return !rt.now().Before(h.downUntil)
}

// Route returns key's shard preference order: the ring's owner-first
// preference filtered to healthy, non-draining shards, with unhealthy and
// draining shards appended in ring order as the any-replica fallback. The
// result is never empty; when the healthy prefix is empty the fallback
// counter increments — every request is then a shot in the dark, and the
// answers that come back may be degraded.
func (rt *Router) Route(key string) []Shard {
	rt.mu.Lock()
	pref := rt.ring.Preference(key, 0)
	out := make([]Shard, 0, len(pref))
	var demoted []Shard
	for _, id := range pref {
		sh := rt.byID[id]
		if rt.healthyLocked(id) && sh.State != StateDraining {
			out = append(out, sh)
		} else {
			demoted = append(demoted, sh)
		}
	}
	rt.mu.Unlock()
	if len(out) == 0 {
		rt.fallbacks.Add(1)
	}
	return append(out, demoted...)
}

// Owner returns key's owning shard ID under the router's current ring,
// ignoring health — the ground truth reroutes are measured against.
func (rt *Router) Owner(key string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Owner(key)
}

// ReportSuccess records a successful call to shard id, resetting its
// failure streak and bringing it back into preference order.
func (rt *Router) ReportSuccess(id string) {
	rt.mu.Lock()
	if h := rt.health[id]; h != nil {
		h.failures = 0
		h.downUntil = time.Time{}
	}
	rt.mu.Unlock()
}

// ReportFailure records a failed call to shard id. Reaching the failure
// threshold — or failing a half-open probe — marks the shard down for the
// cooldown.
func (rt *Router) ReportFailure(id string) {
	rt.mu.Lock()
	h := rt.health[id]
	if h == nil {
		if _, ok := rt.byID[id]; !ok {
			rt.mu.Unlock()
			return
		}
		h = &replicaHealth{}
		rt.health[id] = h
	}
	h.failures++
	probeFailed := !h.downUntil.IsZero() && !rt.now().Before(h.downUntil)
	if h.failures >= rt.threshold || probeFailed {
		h.downUntil = rt.now().Add(rt.cooldown)
		h.failures = 0
	}
	rt.mu.Unlock()
}

// NoteReroute counts one request sent to a shard other than the one a
// previous attempt targeted — the client-side reroute counter the fleet
// harness reports.
func (rt *Router) NoteReroute() { rt.reroutes.Add(1) }

// RouterStats is a Router counter snapshot.
type RouterStats struct {
	// Version is the topology version held.
	Version int64 `json:"version"`
	// Shards is the membership size.
	Shards int `json:"shards"`
	// Healthy is how many members are currently in preference order.
	Healthy int `json:"healthy"`
	// Reroutes counts attempts that switched shards mid-call.
	Reroutes uint64 `json:"reroutes"`
	// Fallbacks counts routes computed with zero healthy shards
	// (any-replica fallback).
	Fallbacks uint64 `json:"fallbacks"`
	// TopologyRefreshes counts Update calls (accepted or stale).
	TopologyRefreshes uint64 `json:"topology_refreshes"`
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	st := RouterStats{Version: rt.version, Shards: len(rt.byID)}
	for id := range rt.byID {
		if rt.healthyLocked(id) {
			st.Healthy++
		}
	}
	rt.mu.Unlock()
	st.Reroutes = rt.reroutes.Load()
	st.Fallbacks = rt.fallbacks.Load()
	st.TopologyRefreshes = rt.refreshes.Load()
	return st
}
