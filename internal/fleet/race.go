package fleet

// raceEnabled is flipped by an init in the race-tagged file. A var + init
// rather than tagged const pairs so tag-blind tooling (the igpulint loader
// type-checks every file in one pass) never sees a redeclaration.
var raceEnabled = false

// RaceEnabled reports whether this binary was built with the race detector.
// The detector makes every memory access several times slower, so load
// targets that hold for a plain build are unreachable under -race on the
// same hardware; the fleet harness scales its RPS floor by this.
func RaceEnabled() bool { return raceEnabled }
