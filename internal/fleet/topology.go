package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Shard states a Topology reports. A replica only knows its own operational
// state authoritatively; peers it lists are reported as StateUnknown and
// clients track their health themselves (Router).
const (
	// StateHealthy marks a shard serving data-plane traffic.
	StateHealthy = "healthy"
	// StateDraining marks a shard shedding data-plane traffic (503) while
	// still serving cache export to its peers.
	StateDraining = "draining"
	// StateUnknown marks a peer whose state the reporting replica does not
	// track.
	StateUnknown = "unknown"
)

// Cache-role labels for per-shard cache accounting: a cache entry (or a
// lookup for one) is "owned" when the ring assigns its key to this shard and
// "remote" when the entry is held on behalf of another shard — fallback
// traffic and pre-rebalance leftovers. Engines outside a fleet report no
// roles at all.
const (
	// RoleOwned labels keys the ring assigns to this shard.
	RoleOwned = "owned"
	// RoleRemote labels keys owned by another shard.
	RoleRemote = "remote"
)

// Shard is one advisord replica in the fleet: a stable ID (the ring hashes
// it, so renaming a shard moves its key range) and the data-plane base URL
// peers and clients reach it on.
type Shard struct {
	// ID is the stable ring identity, e.g. "shard-a".
	ID string `json:"id"`
	// URL is the data-plane base URL, e.g. "http://10.0.0.1:8025".
	URL string `json:"url"`
	// State is the shard's operational state as known by the reporter:
	// authoritative for the reporting shard itself, StateUnknown for peers.
	State string `json:"state,omitempty"`
}

// Topology is the fleet membership one replica answers on
// /v1/fleet/topology and /admin/v1/ring: the shard list, the per-shard
// virtual-node count, and a version clients use to order refreshes.
type Topology struct {
	// Version orders topology updates: a Router only accepts a Topology
	// whose Version exceeds the one it holds. Membership pushes
	// (advisorctl rebalance -set-peers) bump every replica's version in
	// lockstep.
	Version int64 `json:"version"`
	// Self is the reporting shard's ID ("" in client-built topologies).
	Self string `json:"self,omitempty"`
	// VNodes is the per-shard virtual-node count the ring was built with.
	VNodes int `json:"vnodes"`
	// Shards is the membership list.
	Shards []Shard `json:"shards"`
}

// State is the fleet state one advisord replica holds: membership and the
// ring derived from it, the replica's own identity and drain flag, and the
// handoff/reroute counters the fleet metrics export. Safe for concurrent
// use.
type State struct {
	self string

	mu       sync.Mutex
	vnodes   int
	version  int64
	shards   []Shard
	ring     *Ring
	draining bool

	reroutes atomic.Uint64
	exported atomic.Uint64
	imported atomic.Uint64
}

// NewState builds the fleet state for the replica self, which must appear in
// shards. vnodes 0 means DefaultVNodes. The initial topology has Version 1.
func NewState(self string, shards []Shard, vnodes int) (*State, error) {
	s := &State{self: self, vnodes: clampVNodes(vnodes), version: 0}
	if err := s.SetShards(shards); err != nil {
		return nil, err
	}
	return s, nil
}

// Self returns this replica's shard ID.
func (s *State) Self() string { return s.self }

// SetShards replaces the membership list, rebuilds the ring and bumps the
// topology version. self must remain a member — a replica cannot be ejected
// from its own fleet view; drain it instead.
func (s *State) SetShards(shards []Shard) error {
	ids := make([]string, len(shards))
	found := false
	for i, sh := range shards {
		ids[i] = sh.ID
		if sh.ID == s.self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("fleet: shard %q missing from its own membership list", s.self)
	}
	ring, err := NewRing(ids, s.vnodesSnapshot())
	if err != nil {
		return err
	}
	cp := make([]Shard, len(shards))
	copy(cp, shards)
	s.mu.Lock()
	s.shards = cp
	s.ring = ring
	s.version++
	s.mu.Unlock()
	return nil
}

func (s *State) vnodesSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vnodes
}

// Ring returns the current immutable ring.
func (s *State) Ring() *Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring
}

// Version returns the current topology version.
func (s *State) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Draining reports whether this replica is shedding data-plane traffic.
func (s *State) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SetDraining flips the drain flag (advisorctl drain / undrain).
func (s *State) SetDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
}

// Topology snapshots the membership for the wire: this replica's state is
// authoritative (healthy or draining), peers are reported unknown.
func (s *State) Topology() Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	shards := make([]Shard, len(s.shards))
	copy(shards, s.shards)
	for i := range shards {
		if shards[i].ID == s.self {
			if s.draining {
				shards[i].State = StateDraining
			} else {
				shards[i].State = StateHealthy
			}
		} else {
			shards[i].State = StateUnknown
		}
	}
	return Topology{Version: s.version, Self: s.self, VNodes: s.vnodes, Shards: shards}
}

// Owner returns the shard ID owning key under the current ring.
func (s *State) Owner(key string) string { return s.Ring().Owner(key) }

// Owns reports whether this replica owns key.
func (s *State) Owns(key string) bool { return s.Owner(key) == s.self }

// KeyRole classifies key for per-role cache accounting: RoleOwned when this
// replica owns it, RoleRemote otherwise. Install it as the engine's
// Options.KeyRole so /statusz can report cache entries and hit rates per
// shard role.
func (s *State) KeyRole(key string) string {
	if s.Owns(key) {
		return RoleOwned
	}
	return RoleRemote
}

// NoteServed records one advisory request served for key, counting a
// received reroute when the key is owned by another shard — the signal that
// clients are falling back onto this replica.
func (s *State) NoteServed(key string) {
	if !s.Owns(key) {
		s.reroutes.Add(1)
	}
}

// CountExported adds n warm-handoff entries streamed out to a peer.
func (s *State) CountExported(n int) { s.exported.Add(uint64(n)) }

// CountImported adds n warm-handoff entries pulled in from peers.
func (s *State) CountImported(n int) { s.imported.Add(uint64(n)) }

// Stats is a State counter snapshot for /statusz, /metrics and the admin
// surface.
type Stats struct {
	// Self is this replica's shard ID.
	Self string `json:"self"`
	// Version is the topology version.
	Version int64 `json:"version"`
	// Shards is the membership size (the ring-size gauge).
	Shards int `json:"shards"`
	// VNodes is the per-shard virtual-node count.
	VNodes int `json:"vnodes"`
	// Draining reports the drain flag.
	Draining bool `json:"draining"`
	// ReroutesReceived counts advisory requests served for keys owned by
	// another shard.
	ReroutesReceived uint64 `json:"reroutes_received"`
	// HandoffExported counts cache entries streamed out to peers.
	HandoffExported uint64 `json:"handoff_exported"`
	// HandoffImported counts cache entries pulled in from peers.
	HandoffImported uint64 `json:"handoff_imported"`
}

// Stats snapshots the state's counters.
func (s *State) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Self:     s.self,
		Version:  s.version,
		Shards:   len(s.shards),
		VNodes:   s.vnodes,
		Draining: s.draining,
	}
	s.mu.Unlock()
	st.ReroutesReceived = s.reroutes.Load()
	st.HandoffExported = s.exported.Load()
	st.HandoffImported = s.imported.Load()
	return st
}

// Peers returns the membership minus this replica — the shards a handoff
// pull contacts.
func (s *State) Peers() []Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.ID != s.self {
			out = append(out, sh)
		}
	}
	return out
}
