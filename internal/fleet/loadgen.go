package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"igpucomm/internal/simnet"
)

// LoadOptions configures a closed-loop load run.
type LoadOptions struct {
	// Workers is the number of concurrent closed-loop callers (0: 4).
	Workers int
	// Duration is how long the storm runs (0: 2s).
	Duration time.Duration
	// Do issues one call and returns how many advisory operations it
	// answered (a batched advise call counts each question) plus an error.
	// Ops from failed calls still count toward the achieved rate when
	// positive; latency is recorded for every call, failed or not, because
	// a slow failure hurts a caller exactly like a slow success. Required.
	Do func(ctx context.Context) (ops int, err error)
	// OnError receives each call error (nil: errors are only counted).
	OnError func(error)
	// Clock is the time source for the run's duration, deadline and
	// latency measurement (nil: simnet.Real()). Under a virtual clock the
	// run ends when virtual time covers Duration — workers must then drive
	// the clock (their Do sleeping or a test advancing it).
	Clock simnet.Clock
}

// LoadSummary is the result of one load run — the latency artifact `make
// fleet` uploads.
type LoadSummary struct {
	// Workers is the closed-loop worker count.
	Workers int `json:"workers"`
	// DurationSeconds is the wall-clock run length.
	DurationSeconds float64 `json:"duration_seconds"`
	// Calls is the number of Do invocations completed.
	Calls int `json:"calls"`
	// Ops is the number of advisory operations answered.
	Ops int `json:"ops"`
	// Errors is the number of Do invocations that returned an error.
	Errors int `json:"errors"`
	// AchievedRPS is Ops per second of wall clock.
	AchievedRPS float64 `json:"achieved_rps"`
	// P50Micros, P99Micros and MaxMicros are call-latency percentiles in
	// microseconds.
	P50Micros int64 `json:"p50_micros"`
	P99Micros int64 `json:"p99_micros"`
	MaxMicros int64 `json:"max_micros"`
}

// RunLoad drives Do from Workers closed-loop goroutines for Duration and
// returns the latency/throughput summary. Closed-loop means each worker
// issues its next call as soon as the previous one returns, so achieved RPS
// is a measurement, not a target.
func RunLoad(ctx context.Context, opt LoadOptions) (LoadSummary, error) {
	if opt.Do == nil {
		return LoadSummary{}, fmt.Errorf("fleet: load run needs a Do func")
	}
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.Duration <= 0 {
		opt.Duration = 2 * time.Second
	}
	if opt.Clock == nil {
		opt.Clock = simnet.Real()
	}
	runCtx, cancel := opt.Clock.WithTimeout(ctx, opt.Duration)
	defer cancel()

	type shard struct {
		lat  []time.Duration
		ops  int
		errs int
	}
	perWorker := make([]shard, opt.Workers)
	var wg sync.WaitGroup
	start := opt.Clock.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			for runCtx.Err() == nil {
				callStart := opt.Clock.Now()
				ops, err := opt.Do(runCtx)
				elapsed := opt.Clock.Since(callStart)
				if runCtx.Err() != nil && err != nil {
					// The deadline cut this call short; neither its latency
					// nor its error says anything about the fleet.
					return
				}
				sh.lat = append(sh.lat, elapsed)
				if ops > 0 {
					sh.ops += ops
				}
				if err != nil {
					sh.errs++
					if opt.OnError != nil {
						opt.OnError(err)
					}
				}
			}
		}(&perWorker[w])
	}
	wg.Wait()
	wall := opt.Clock.Since(start)

	var all []time.Duration
	sum := LoadSummary{Workers: opt.Workers, DurationSeconds: wall.Seconds()}
	for i := range perWorker {
		all = append(all, perWorker[i].lat...)
		sum.Ops += perWorker[i].ops
		sum.Errors += perWorker[i].errs
	}
	sum.Calls = len(all)
	if wall > 0 {
		sum.AchievedRPS = float64(sum.Ops) / wall.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		sum.P50Micros = percentile(all, 0.50).Microseconds()
		sum.P99Micros = percentile(all, 0.99).Microseconds()
		sum.MaxMicros = all[len(all)-1].Microseconds()
	}
	return sum, nil
}

// percentile reads the p-quantile from a sorted latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
