package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"

	"igpucomm/internal/framework"
)

// Warm handoff: cache entries move between peers as a newline-delimited JSON
// stream on GET /v1/cache/export. Each line carries one entry — the
// engine's content-hash cache key plus the characterization in the exact
// versioned persist format framework.SaveCharacterization defines, so a
// pulled entry inherits the same stale-format protection a warm-start file
// has. A shard joining (or rebalancing after a membership change) pulls the
// entries it now owns from every peer before taking traffic, so its first
// requests hit a warm cache instead of stampeding cold characterizations.

// ExportLine is one entry on the handoff wire: the cache key and the
// characterization payload in the persist format.
type ExportLine struct {
	// Key is the engine's content-hash cache key.
	Key string `json:"key"`
	// Entry is the framework persist-format characterization document.
	Entry json.RawMessage `json:"entry"`
}

// WriteExport streams the entries whose key passes include (nil: all) to w
// as NDJSON, in sorted key order so streams are deterministic. It returns
// the number of entries written.
func WriteExport(w io.Writer, entries map[string]framework.Characterization, include func(key string) bool) (int, error) {
	keys := make([]string, 0, len(entries))
	for key := range entries {
		if include == nil || include(key) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	n := 0
	for _, key := range keys {
		var payload bytes.Buffer
		if err := framework.SaveCharacterization(&payload, entries[key]); err != nil {
			return n, fmt.Errorf("fleet: export %s: %w", key, err)
		}
		// The persist format is indented; compact it so the line stays a
		// line.
		var compact bytes.Buffer
		if err := json.Compact(&compact, payload.Bytes()); err != nil {
			return n, fmt.Errorf("fleet: export %s: %w", key, err)
		}
		line, err := json.Marshal(ExportLine{Key: key, Entry: compact.Bytes()})
		if err != nil {
			return n, fmt.Errorf("fleet: export %s: %w", key, err)
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return n, fmt.Errorf("fleet: export: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// ReadExport decodes an export stream, calling fn for every valid entry.
// Each entry's payload is validated through framework.LoadCharacterization;
// a line that fails to decode or validate — malformed JSON, an empty key, a
// corrupt or version-mismatched characterization — is quarantined: skipped
// and counted, never delivered to fn. One bad line must not discard the
// good entries around it (a partial pull beats a cold cache), and a
// malicious or buggy peer must never panic its puller. Only transport-level
// failures (the reader erroring mid-stream) and fn's own errors abort the
// read. It returns the entries delivered and the lines quarantined.
func ReadExport(r io.Reader, fn func(key string, char framework.Characterization) error) (n, quarantined int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line ExportLine
		if err := json.Unmarshal(raw, &line); err != nil {
			quarantined++
			continue
		}
		if line.Key == "" {
			quarantined++
			continue
		}
		char, err := framework.LoadCharacterization(bytes.NewReader(line.Entry))
		if err != nil {
			quarantined++
			continue
		}
		if err := fn(line.Key, char); err != nil {
			return n, quarantined, err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, quarantined, fmt.Errorf("fleet: import: %w", err)
	}
	return n, quarantined, nil
}

// PullReport summarizes one warm-handoff pull.
type PullReport struct {
	// Pulled is the number of entries installed.
	Pulled int `json:"pulled"`
	// Quarantined is the number of corrupt export lines skipped.
	Quarantined int `json:"quarantined,omitempty"`
	// Peers is the number of peers contacted.
	Peers int `json:"peers"`
	// PeerErrors lists peers that could not be pulled from, with their
	// errors. A partial pull is still a pull: the joining shard serves
	// what it got and characterizes the rest cold.
	PeerErrors []string `json:"peer_errors,omitempty"`
}

// Pull fetches the cache entries this replica owns from every peer's
// /v1/cache/export stream and installs them via put. Peer failures are
// collected, not fatal — a dead peer must not block a join — so the error
// return is reserved for a nil state or client.
func Pull(ctx context.Context, st *State, hc *http.Client, put func(key string, char framework.Characterization)) (PullReport, error) {
	if st == nil {
		return PullReport{}, fmt.Errorf("fleet: pull without fleet state")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	var rep PullReport
	for _, peer := range st.Peers() {
		rep.Peers++
		n, quarantined, err := pullPeer(ctx, st, hc, peer, put)
		rep.Pulled += n
		rep.Quarantined += quarantined
		if err != nil {
			rep.PeerErrors = append(rep.PeerErrors, fmt.Sprintf("%s: %v", peer.ID, err))
		}
	}
	st.CountImported(rep.Pulled)
	return rep, nil
}

// pullPeer streams one peer's export of the keys this replica owns.
func pullPeer(ctx context.Context, st *State, hc *http.Client, peer Shard, put func(string, framework.Characterization)) (int, int, error) {
	u := peer.URL + "/v1/cache/export?owner=" + url.QueryEscape(st.Self())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("export returned %d", resp.StatusCode)
	}
	return ReadExport(resp.Body, func(key string, char framework.Characterization) error {
		put(key, char)
		return nil
	})
}
