// Package fleet shards the advisory service across N advisord replicas: a
// consistent-hash ring over the engine's content-hash characterization keys
// (bounded virtual nodes, deterministic across process restarts), a
// server-side State each replica holds (membership, ring, drain flag,
// handoff counters), a client-side Router (shard preference order, replica
// health tracking, any-replica fallback), warm-handoff streaming of cache
// entries between peers, and a closed-loop load generator the fleet harness
// and `make fleet` drive.
//
// The ring hashes only stable inputs — shard IDs and the sha256 content-hash
// cache keys — so key ownership is a pure function of the membership list:
// every replica, every client and every restart of either computes the same
// owner for the same key.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// Virtual-node bounds: the ring is O(shards x vnodes) points, rebuilt on
// every membership change and binary-searched per request, so the vnode
// count is clamped to keep both costs bounded.
const (
	// DefaultVNodes is the virtual-node count per shard when a caller
	// passes 0.
	DefaultVNodes = 64
	// MaxVNodes caps the per-shard virtual-node count.
	MaxVNodes = 512
)

// clampVNodes applies the bounded-ring policy.
func clampVNodes(v int) int {
	if v <= 0 {
		return DefaultVNodes
	}
	if v > MaxVNodes {
		return MaxVNodes
	}
	return v
}

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the index (into the sorted shard list) of the shard that owns the arc
// ending at it.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring: shard IDs expanded into a
// bounded number of virtual nodes each, sorted on a 64-bit hash circle.
// Build a new Ring for every membership change; lookups are safe for
// concurrent use.
type Ring struct {
	shards []string // sorted, unique
	vnodes int
	points []ringPoint // sorted by hash
}

// NewRing builds a ring over the given shard IDs with vnodes virtual nodes
// per shard (0 means DefaultVNodes; values above MaxVNodes are clamped).
// Shard order does not matter — IDs are sorted and deduplicated, so two
// rings built from permutations of one membership list are identical.
func NewRing(shardIDs []string, vnodes int) (*Ring, error) {
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard")
	}
	vnodes = clampVNodes(vnodes)
	sorted := append([]string(nil), shardIDs...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("fleet: empty shard ID")
		}
		if i > 0 && id == sorted[i-1] {
			return nil, fmt.Errorf("fleet: duplicate shard ID %q", id)
		}
		uniq = append(uniq, id)
	}
	r := &Ring{
		shards: uniq,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for si, id := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(id + "#" + strconv.Itoa(v)),
				shard: si,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnodes is astronomically unlikely but
		// must still order deterministically.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// hash64 maps a string to a position on the hash circle. sha256 keeps the
// placement uniform for both shard vnode labels and the engine's already-
// hashed cache keys, and — unlike maphash — is stable across processes,
// which is what makes ring ownership reproducible after a restart.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Shards returns the sorted member shard IDs.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Size returns the number of member shards.
func (r *Ring) Size() int { return len(r.shards) }

// VNodes returns the per-shard virtual-node count after clamping.
func (r *Ring) VNodes() int { return r.vnodes }

// ownerIndex returns the index into points of the vnode owning key.
func (r *Ring) ownerIndex(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return i
}

// Owner returns the shard ID owning key.
func (r *Ring) Owner(key string) string {
	return r.shards[r.points[r.ownerIndex(key)].shard]
}

// Preference returns up to n distinct shard IDs in ring order starting at
// key's owner: the owner first, then the successor shards a client should
// fall back to when the owner is unhealthy. n <= 0 or n > Size returns all
// shards.
func (r *Ring) Preference(key string, n int) []string {
	if n <= 0 || n > len(r.shards) {
		n = len(r.shards)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.ownerIndex(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, r.shards[p.shard])
	}
	return out
}

// Shares returns the fraction of the 64-bit key space each shard owns — the
// balance number `advisorctl ring` shows operators. Fractions sum to 1.
func (r *Ring) Shares() map[string]float64 {
	// Accumulate in float64: a shard's arcs can sum to the full 2^64
	// circle (single-shard ring), which would wrap a uint64 accumulator
	// to zero.
	arcs := make(map[string]float64, len(r.shards))
	const whole = float64(1<<63) * 2 // 2^64 as a float
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// The arc (prev, p.hash] belongs to p's shard; the wrap arc length
		// falls out of unsigned subtraction.
		arcs[r.shards[p.shard]] += float64(p.hash - prev)
	}
	out := make(map[string]float64, len(arcs))
	for id, arc := range arcs {
		out[id] = arc / whole
	}
	return out
}
