package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"igpucomm/internal/framework"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/units"
)

// handoffChar builds a characterization that survives the persist round trip.
func handoffChar(platform string) framework.Characterization {
	return framework.Characterization{
		Platform:            platform,
		Thresholds:          perfmodel.Thresholds{CPUCache: 0.10, GPUCacheLow: 0.10, GPUCacheHigh: 0.30},
		PeakGPUThroughput:   100 * units.GBps,
		PinnedGPUThroughput: 10 * units.GBps,
		ZCSCMaxSpeedup:      10,
		SCZCMaxSpeedup:      2.5,
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	entries := map[string]framework.Characterization{
		testKey(1): handoffChar("board-1"),
		testKey(2): handoffChar("board-2"),
		testKey(3): handoffChar("board-3"),
	}
	var buf bytes.Buffer
	n, err := WriteExport(&buf, entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("exported %d entries, want 3", n)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("export is %d lines, want 3 (one per entry)", lines)
	}

	got := map[string]framework.Characterization{}
	in, quarantined, err := ReadExport(&buf, func(key string, char framework.Characterization) error {
		got[key] = char
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if in != 3 || len(got) != 3 || quarantined != 0 {
		t.Fatalf("imported %d entries (%d distinct, %d quarantined), want 3", in, len(got), quarantined)
	}
	for key, want := range entries {
		if got[key].Platform != want.Platform {
			t.Fatalf("entry %s round-tripped platform %q, want %q", key, got[key].Platform, want.Platform)
		}
		if got[key].PeakGPUThroughput != want.PeakGPUThroughput {
			t.Fatalf("entry %s lost peak throughput", key)
		}
	}
}

func TestWriteExportFilter(t *testing.T) {
	entries := map[string]framework.Characterization{
		testKey(1): handoffChar("keep"),
		testKey(2): handoffChar("drop"),
	}
	var buf bytes.Buffer
	n, err := WriteExport(&buf, entries, func(key string) bool { return key == testKey(1) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("filtered export wrote %d entries, want 1", n)
	}
	if !strings.Contains(buf.String(), "keep") || strings.Contains(buf.String(), "drop") {
		t.Fatalf("filter leaked the wrong entry: %s", buf.String())
	}
}

// A corrupt line is quarantined — skipped and counted — never delivered,
// and never fatal to the good entries around it.
func TestReadExportQuarantinesCorruptLines(t *testing.T) {
	good := map[string]framework.Characterization{testKey(1): handoffChar("b")}
	var buf bytes.Buffer
	if _, err := WriteExport(&buf, good, nil); err != nil {
		t.Fatal(err)
	}
	goodLine := buf.String()

	cases := map[string]string{
		"not json":    "{nope\n",
		"empty key":   `{"key":"","entry":{}}` + "\n",
		"bad payload": `{"key":"abc","entry":{"format_version":999}}` + "\n",
	}
	for name, corrupt := range cases {
		// Corrupt line sandwiched between good ones: both good entries must
		// survive, the bad one must be quarantined.
		stream := goodLine + corrupt + goodLine
		delivered := 0
		n, quarantined, err := ReadExport(strings.NewReader(stream), func(key string, _ framework.Characterization) error {
			if key != testKey(1) {
				t.Fatalf("%s: delivered corrupt key %q", name, key)
			}
			delivered++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: quarantine turned fatal: %v", name, err)
		}
		if n != 2 || delivered != 2 || quarantined != 1 {
			t.Fatalf("%s: n=%d delivered=%d quarantined=%d, want 2, 2, 1", name, n, delivered, quarantined)
		}
	}
}

func TestReadExportSkipsBlankLines(t *testing.T) {
	entries := map[string]framework.Characterization{testKey(1): handoffChar("b")}
	var buf bytes.Buffer
	if _, err := WriteExport(&buf, entries, nil); err != nil {
		t.Fatal(err)
	}
	padded := "\n" + buf.String() + "\n\n"
	n, quarantined, err := ReadExport(strings.NewReader(padded), func(string, framework.Characterization) error { return nil })
	if err != nil || n != 1 || quarantined != 0 {
		t.Fatalf("padded stream: n=%d quarantined=%d err=%v, want 1, 0, nil", n, quarantined, err)
	}
}

// Pull must import only owned keys, tolerate a dead peer, and count what it
// installed.
func TestPullImportsOwnedEntriesAndSurvivesDeadPeer(t *testing.T) {
	// The exporting peer owns nothing here; it just serves whatever the
	// owner filter the *puller* requested selects, like advisord will.
	st, err := NewState("shard-a", testShards("shard-a", "shard-b", "shard-dead"), 64)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string]framework.Characterization{}
	for i := 0; i < 50; i++ {
		entries[testKey(i)] = handoffChar("b")
	}
	ownedByA := 0
	for key := range entries {
		if st.Owner(key) == "shard-a" {
			ownedByA++
		}
	}
	if ownedByA == 0 || ownedByA == len(entries) {
		t.Fatalf("test ring degenerate: shard-a owns %d/%d", ownedByA, len(entries))
	}

	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cache/export" {
			http.NotFound(w, r)
			return
		}
		owner := r.URL.Query().Get("owner")
		if _, err := WriteExport(w, entries, func(key string) bool { return st.Owner(key) == owner }); err != nil {
			t.Errorf("export: %v", err)
		}
	}))
	defer peer.Close()

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused

	shards := []Shard{
		{ID: "shard-a", URL: "http://unused.test"},
		{ID: "shard-b", URL: peer.URL},
		{ID: "shard-dead", URL: dead.URL},
	}
	if err := st.SetShards(shards); err != nil {
		t.Fatal(err)
	}

	got := map[string]framework.Characterization{}
	rep, err := Pull(context.Background(), st, peer.Client(), func(key string, char framework.Characterization) {
		got[key] = char
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peers != 2 {
		t.Fatalf("contacted %d peers, want 2", rep.Peers)
	}
	if len(rep.PeerErrors) != 1 || !strings.Contains(rep.PeerErrors[0], "shard-dead") {
		t.Fatalf("peer errors = %v, want one for shard-dead", rep.PeerErrors)
	}
	if rep.Pulled != ownedByA || len(got) != ownedByA {
		t.Fatalf("pulled %d entries (%d installed), want %d", rep.Pulled, len(got), ownedByA)
	}
	for key := range got {
		if st.Owner(key) != "shard-a" {
			t.Fatalf("pulled key %s owned by %s, not shard-a", key, st.Owner(key))
		}
	}
	if st.Stats().HandoffImported != uint64(ownedByA) {
		t.Fatalf("imported counter = %d, want %d", st.Stats().HandoffImported, ownedByA)
	}
}

func TestStateBasics(t *testing.T) {
	st, err := NewState("a", testShards("a", "b"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", st.Version())
	}
	if _, err := NewState("ghost", testShards("a", "b"), 0); err == nil {
		t.Fatal("state for non-member self should fail")
	}
	if err := st.SetShards(testShards("b", "c")); err == nil {
		t.Fatal("ejecting self via SetShards should fail")
	}
	if err := st.SetShards(testShards("a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	if st.Version() != 2 {
		t.Fatalf("version after SetShards = %d, want 2", st.Version())
	}

	topo := st.Topology()
	if topo.Self != "a" || len(topo.Shards) != 3 {
		t.Fatalf("topology = %+v", topo)
	}
	for _, sh := range topo.Shards {
		want := StateUnknown
		if sh.ID == "a" {
			want = StateHealthy
		}
		if sh.State != want {
			t.Fatalf("shard %s state = %q, want %q", sh.ID, sh.State, want)
		}
	}
	st.SetDraining(true)
	if !st.Draining() {
		t.Fatal("drain flag not set")
	}
	for _, sh := range st.Topology().Shards {
		if sh.ID == "a" && sh.State != StateDraining {
			t.Fatalf("draining self reported as %q", sh.State)
		}
	}

	// Role classification and reroute accounting follow ring ownership.
	owned, remote := "", ""
	for i := 0; owned == "" || remote == ""; i++ {
		key := testKey(i)
		if st.Owns(key) {
			owned = key
		} else {
			remote = key
		}
	}
	if st.KeyRole(owned) != RoleOwned || st.KeyRole(remote) != RoleRemote {
		t.Fatal("KeyRole misclassified")
	}
	st.NoteServed(owned)
	st.NoteServed(remote)
	if got := st.Stats().ReroutesReceived; got != 1 {
		t.Fatalf("reroutes_received = %d, want 1", got)
	}
	if peers := st.Peers(); len(peers) != 2 {
		t.Fatalf("peers = %v, want 2 entries", peers)
	}
}
