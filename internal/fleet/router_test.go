package fleet

import (
	"testing"
	"time"

	"igpucomm/internal/simnet"
)

func testShards(ids ...string) []Shard {
	out := make([]Shard, len(ids))
	for i, id := range ids {
		out[i] = Shard{ID: id, URL: "http://" + id + ".test"}
	}
	return out
}

func TestRouterRouteOwnerFirstAndHealthDemotion(t *testing.T) {
	clock := simnet.NewSimAt(time.Unix(1000, 0))
	rt, err := NewRouter(RouterOptions{
		Shards:           testShards("a", "b", "c"),
		FailureThreshold: 2,
		Cooldown:         5 * time.Second,
		Clock:            clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	pref := rt.Route(key)
	if len(pref) != 3 {
		t.Fatalf("route returned %d shards, want 3", len(pref))
	}
	if pref[0].ID != rt.Owner(key) {
		t.Fatalf("route %v does not start at owner %s", pref, rt.Owner(key))
	}

	// Fail the owner to threshold: it must drop to the back of the order.
	owner := pref[0].ID
	rt.ReportFailure(owner)
	rt.ReportFailure(owner)
	demoted := rt.Route(key)
	if demoted[0].ID == owner {
		t.Fatalf("unhealthy owner %s still leads the route", owner)
	}
	if demoted[len(demoted)-1].ID != owner {
		t.Fatalf("unhealthy owner %s missing from fallback tail of %v", owner, demoted)
	}

	// After the cooldown the owner is probed again (half-open) and leads.
	clock.Advance(6 * time.Second)
	if got := rt.Route(key); got[0].ID != owner {
		t.Fatalf("half-open owner %s not restored to route head: %v", owner, got)
	}
	// A failed probe marks it straight down again, one strike only.
	rt.ReportFailure(owner)
	if got := rt.Route(key); got[0].ID == owner {
		t.Fatal("owner led the route right after failing its half-open probe")
	}
	// A success clears everything.
	clock.Advance(6 * time.Second)
	rt.ReportSuccess(owner)
	if got := rt.Route(key); got[0].ID != owner {
		t.Fatalf("owner %s not restored after success: %v", owner, got)
	}
}

// All-shards-unhealthy (satellite edge case): the route must still return
// every shard — the any-replica fallback — and count the fallback.
func TestRouterAllUnhealthyFallsBackToAnyReplica(t *testing.T) {
	clock := simnet.NewSimAt(time.Unix(1000, 0))
	rt, err := NewRouter(RouterOptions{
		Shards:           testShards("a", "b", "c"),
		FailureThreshold: 1,
		Cooldown:         time.Hour,
		Clock:            clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		rt.ReportFailure(id)
	}
	pref := rt.Route(testKey(1))
	if len(pref) != 3 {
		t.Fatalf("fallback route has %d shards, want all 3", len(pref))
	}
	st := rt.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.Healthy != 0 {
		t.Fatalf("healthy = %d, want 0", st.Healthy)
	}
}

func TestRouterDrainingShardDemoted(t *testing.T) {
	shards := testShards("a", "b")
	shards[0].State = StateDraining
	rt, err := NewRouter(RouterOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pref := rt.Route(testKey(i))
		if pref[0].ID == "a" {
			t.Fatalf("draining shard a leads route for key %d", i)
		}
		if len(pref) != 2 {
			t.Fatalf("draining shard dropped from route entirely: %v", pref)
		}
	}
}

func TestRouterUpdateVersionGate(t *testing.T) {
	rt, err := NewRouter(RouterOptions{Shards: testShards("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	// Stale and equal versions are rejected but still count as refreshes.
	for _, v := range []int64{0, 1} {
		ok, err := rt.Update(Topology{Version: v, Shards: testShards("a", "b", "c")})
		if err != nil || ok {
			t.Fatalf("version %d accepted (%v, %v), want stale rejection", v, ok, err)
		}
	}
	if rt.Version() != 1 {
		t.Fatalf("version = %d, want 1", rt.Version())
	}
	ok, err := rt.Update(Topology{Version: 5, Shards: testShards("a", "b", "c")})
	if err != nil || !ok {
		t.Fatalf("newer topology rejected: %v, %v", ok, err)
	}
	if rt.Version() != 5 || len(rt.Shards()) != 3 {
		t.Fatalf("topology not installed: version=%d shards=%v", rt.Version(), rt.Shards())
	}
	if got := rt.Stats().TopologyRefreshes; got != 3 {
		t.Fatalf("topology_refreshes = %d, want 3", got)
	}
}

func TestRouterUpdateKeepsSurvivorHealth(t *testing.T) {
	clock := simnet.NewSimAt(time.Unix(1000, 0))
	rt, err := NewRouter(RouterOptions{
		Shards:           testShards("a", "b"),
		FailureThreshold: 1,
		Cooldown:         time.Hour,
		Clock:            clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.ReportFailure("a")
	if _, err := rt.Update(Topology{Version: 2, Shards: testShards("a", "b", "c")}); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Healthy != 2 {
		t.Fatalf("healthy after update = %d, want 2 (a stays down)", st.Healthy)
	}
	// A shard removed by the update must not keep a health record.
	if _, err := rt.Update(Topology{Version: 3, Shards: testShards("b", "c")}); err != nil {
		t.Fatal(err)
	}
	rt.mu.Lock()
	_, leaked := rt.health["a"]
	rt.mu.Unlock()
	if leaked {
		t.Fatal("health record for removed shard a leaked")
	}
}

func TestRouterFailureForUnknownShardIgnored(t *testing.T) {
	rt, err := NewRouter(RouterOptions{Shards: testShards("a")})
	if err != nil {
		t.Fatal(err)
	}
	rt.ReportFailure("ghost")
	if st := rt.Stats(); st.Healthy != 1 || st.Shards != 1 {
		t.Fatalf("unknown-shard failure mutated stats: %+v", st)
	}
}
