// Package gpu models an integrated GPU: an array of streaming
// multiprocessors (SMs) with per-SM L1 caches over a shared GPU LLC, all
// backed by the same DRAM the CPU uses.
//
// Execution is SIMT at warp granularity. A kernel supplies a per-thread
// instruction emitter; the launcher groups threads into warps, checks that
// lanes stay convergent (same opcode sequence), coalesces each memory
// instruction's lane addresses into line-granular transactions, and drives
// those transactions through the cache hierarchy.
//
// Timing uses an interval (roofline) model per kernel:
//
//	smTime      = max(computeTime, memLatency / min(maxInflight, warpsOnSM))
//	kernelTime  = max(max_sm smTime, llcBytes/llcBW, dramBytes/dramBW,
//	                  pinnedBytes/pinnedBW) + launch overhead
//
// The bandwidth terms are what make a streaming kernel DRAM-bound and a
// reuse-heavy kernel LLC-bound — exactly the distinction the paper's
// micro-benchmarks probe.
//
// Zero-copy interaction: accesses to registered pinned ranges bypass the GPU
// caches entirely and go down the device's pinned path — an uncached DRAM
// port on Jetson Nano/TX2, or the I/O-coherence port into the CPU LLC on
// Xavier. Lane accesses on the pinned path are NOT coalesced: the bypass
// path issues narrow transactions, which (together with its low bandwidth)
// is why the paper measures up to 77x lower GPU throughput under ZC on TX2.
package gpu

import (
	"fmt"
	"strconv"

	"igpucomm/internal/cache"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

// MemPath is a memory route that exposes traffic counters — a DRAM port, an
// uncached pinned port, or an I/O-coherence port.
type MemPath interface {
	cache.Level
	Stats() memdev.Stats
}

// Config describes the iGPU.
type Config struct {
	Name        string
	Freq        units.Hertz
	SMs         int
	WarpSize    int
	MaxInflight int // cap on outstanding memory requests per SM (MSHRs)
	// WarpMLP is the memory-level parallelism one resident warp sustains
	// (independent outstanding loads). Effective overlap per SM is
	// min(MaxInflight, residentWarps * WarpMLP). 0 defaults to 8.
	WarpMLP int
	// ResidentWarps is how many warps an SM holds concurrently. Execution
	// interleaves instruction-by-instruction across a resident batch (the
	// warp scheduler), which is what makes per-warp temporal locality
	// contend for L1 the way it does on hardware. 0 defaults to 16.
	ResidentWarps int

	L1  cache.Config // per-SM
	LLC cache.Config // shared

	LLCBandwidth  units.BytesPerSecond // sustained LLC service bandwidth
	DRAMBandwidth units.BytesPerSecond // sustained DRAM bandwidth via the LLC path

	Costs          isa.CostModel
	LaunchOverhead units.Latency
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.Freq <= 0:
		return fmt.Errorf("gpu %s: frequency must be positive", c.Name)
	case c.SMs <= 0:
		return fmt.Errorf("gpu %s: SM count must be positive", c.Name)
	case c.WarpSize <= 0:
		return fmt.Errorf("gpu %s: warp size must be positive", c.Name)
	case c.MaxInflight <= 0:
		return fmt.Errorf("gpu %s: max inflight must be positive", c.Name)
	case c.WarpMLP < 0:
		return fmt.Errorf("gpu %s: negative warp MLP", c.Name)
	case c.ResidentWarps < 0:
		return fmt.Errorf("gpu %s: negative resident warps", c.Name)
	case c.LLCBandwidth <= 0 || c.DRAMBandwidth <= 0:
		return fmt.Errorf("gpu %s: bandwidths must be positive", c.Name)
	case c.LaunchOverhead < 0:
		return fmt.Errorf("gpu %s: negative launch overhead", c.Name)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("gpu %s: %w", c.Name, err)
	}
	if err := c.LLC.Validate(); err != nil {
		return fmt.Errorf("gpu %s: %w", c.Name, err)
	}
	return c.Costs.Validate()
}

type addrRange struct{ lo, hi int64 }

type sm struct {
	l1 *cache.Cache
	// Per-kernel accumulators, reset at each launch.
	computeCycles units.Cycles
	memLatency    units.Latency
	warps         int
}

// GPU is the simulated integrated GPU. Not safe for concurrent use.
type GPU struct {
	cfg        Config
	sms        []*sm
	llc        *cache.Cache
	dramPath   MemPath
	pinnedPath MemPath
	pinnedBW   units.BytesPerSecond
	ranges     []addrRange

	// costs is cfg.Costs densified; intCosts says every cost is a whole
	// number of cycles, which is what lets the compiled path bulk-charge
	// run-length-encoded compute stretches bit-identically (see
	// isa.CostTable.Integral). Non-integral models fall back to the
	// reference executor.
	costs    isa.CostTable
	intCosts bool

	// lineShift is log2(cfg.L1.LineSize) — the line size is validated to
	// be a power of two, so the compile pass maps addresses to lines with
	// a shift. Addresses are non-negative, making shift and division agree.
	lineShift uint

	// refMode forces Launch through the per-access reference executor —
	// the differential test harness runs one GPU in each mode and asserts
	// byte-identical results.
	refMode bool

	// pinnedEpoch invalidates compiled kernels when the pinned routing
	// they were compiled against changes.
	pinnedEpoch uint64

	laneProgs []isa.Program // reusable per-lane buffers
	laneIn    [][]isa.Instr // materialized lane views (reference executor)

	compileScratch CompiledKernel // reused by Launch's compile-and-replay
	comp           compiler       // reusable compile-pass scratch
	replay         replayScratch  // reusable replay buffers

	// The compiled-kernel cache behind Launcher: entries keyed by
	// (scope, launch index), validated by program comparison before every
	// replay, evicted oldest-first past a byte budget.
	kcache      map[kernelKey]*cachedKernel
	kcacheOrder []kernelKey
	kcacheBytes int64
	vprog       isa.Program // revalidation emission scratch
	hashCompile bool        // make CompileInto record the program fingerprint

	// heat receives records for pinned-path transactions (which bypass the
	// caches entirely); the per-SM L1s record cacheable traffic through
	// their own sinks. nil when heat profiling is off.
	heat *heatmap.Accumulator
}

// New builds a GPU whose LLC misses go to dram. The pinned path is wired
// later with SetPinnedPath (it may depend on the CPU hierarchy when the
// device has I/O coherence). Panics on invalid configuration.
func New(cfg Config, dram MemPath) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if dram == nil {
		panic(fmt.Sprintf("gpu %s: nil dram path", cfg.Name))
	}
	llc := cache.New(cfg.LLC, dram)
	g := &GPU{
		cfg:       cfg,
		llc:       llc,
		dramPath:  dram,
		laneProgs: make([]isa.Program, cfg.WarpSize),
	}
	g.costs = cfg.Costs.Table()
	g.intCosts = g.costs.Integral()
	for ls := cfg.L1.LineSize; ls > 1; ls >>= 1 {
		g.lineShift++
	}
	for i := 0; i < cfg.SMs; i++ {
		l1cfg := cfg.L1
		l1cfg.Name = cfg.L1.Name + "/sm" + strconv.Itoa(i)
		g.sms = append(g.sms, &sm{l1: cache.New(l1cfg, llc)})
	}
	return g
}

// Name returns the configured name.
func (g *GPU) Name() string { return g.cfg.Name }

// Config returns the configuration.
func (g *GPU) Config() Config { return g.cfg }

// LLC exposes the shared GPU cache for profiling and coherence.
func (g *GPU) LLC() *cache.Cache { return g.llc }

// L1Stats aggregates the per-SM L1 counters.
func (g *GPU) L1Stats() cache.Stats {
	var total cache.Stats
	for _, s := range g.sms {
		total.Add(s.l1.Stats())
	}
	return total
}

// SetPinnedPath wires the route pinned-range accesses take, with the
// sustained bandwidth of that route.
func (g *GPU) SetPinnedPath(p MemPath, bw units.BytesPerSecond) {
	g.pinnedPath = p
	g.pinnedBW = bw
	g.pinnedEpoch++
}

// SetHeat attaches (nil detaches) the per-page heat accumulator. Cacheable
// traffic is recorded by the per-SM L1 sinks; pinned zero-copy transactions
// never reach a cache, so the GPU records them itself at issue. Compiled
// kernels stay valid across heat toggles: recording happens at replay time
// and never alters a result.
func (g *GPU) SetHeat(h *heatmap.Accumulator) {
	g.heat = h
	for _, s := range g.sms {
		s.l1.SetHeatSink(h)
	}
}

// SetReferenceMode forces every Launch through the per-access reference
// executor instead of the compiled batch path. The two are byte-identical by
// contract; the differential suite runs twin platforms in each mode to prove
// it. Reference mode is a testing facility and is slower.
func (g *GPU) SetReferenceMode(on bool) { g.refMode = on }

// PinnedEpoch identifies the current pinned-routing generation. A
// CompiledKernel is only replayable while the epoch it was compiled under is
// current (pinned classification is baked in at compile time).
func (g *GPU) PinnedEpoch() uint64 { return g.pinnedEpoch }

// AddPinnedRange marks [lo, hi) as a pinned zero-copy region: GPU accesses
// in it bypass the caches and use the pinned path. Panics if the range is
// empty or no pinned path is wired.
func (g *GPU) AddPinnedRange(lo, hi int64) {
	if hi <= lo {
		panic(fmt.Sprintf("gpu %s: empty pinned range [%d,%d)", g.cfg.Name, lo, hi))
	}
	if g.pinnedPath == nil {
		panic(fmt.Sprintf("gpu %s: no pinned path wired", g.cfg.Name))
	}
	g.ranges = append(g.ranges, addrRange{lo, hi})
	g.pinnedEpoch++
}

// ClearPinnedRanges removes all pinned mappings.
func (g *GPU) ClearPinnedRanges() {
	g.ranges = g.ranges[:0]
	g.pinnedEpoch++
}

func (g *GPU) pinned(addr int64) bool {
	for _, r := range g.ranges {
		if addr >= r.lo && addr < r.hi {
			return true
		}
	}
	return false
}

// FlushLLC writes back and invalidates the GPU LLC, returning writebacks.
// Standard-copy coherence performs this after each kernel.
func (g *GPU) FlushLLC(perLineCost units.Latency) (int64, units.Latency) {
	var wbs int64
	var cost units.Latency
	for _, s := range g.sms {
		w, c := s.l1.Flush(perLineCost)
		wbs += w
		cost += c
	}
	w, c := g.llc.Flush(perLineCost)
	return wbs + w, cost + c
}

// FlushRange writes back and invalidates [lo, hi) across all GPU cache
// levels (maintenance by VA), returning writebacks and walk cost.
func (g *GPU) FlushRange(lo, hi int64, perLineCost units.Latency) (int64, units.Latency) {
	var wbs int64
	var cost units.Latency
	for _, s := range g.sms {
		w, c := s.l1.FlushRange(lo, hi, perLineCost)
		wbs += w
		cost += c
	}
	w, c := g.llc.FlushRange(lo, hi, perLineCost)
	return wbs + w, cost + c
}

// InvalidateCaches drops all GPU cache contents without writeback.
func (g *GPU) InvalidateCaches() {
	for _, s := range g.sms {
		s.l1.Invalidate()
	}
	g.llc.Invalidate()
}

// ResetStats zeroes all cache counters.
func (g *GPU) ResetStats() {
	for _, s := range g.sms {
		s.l1.ResetStats()
	}
	g.llc.ResetStats()
}
