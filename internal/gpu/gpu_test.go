package gpu

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"igpucomm/internal/cache"
	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

func testConfig() Config {
	return Config{
		Name:          "gpu",
		Freq:          units.GHz, // 1 cycle == 1ns
		SMs:           2,
		WarpSize:      32,
		MaxInflight:   8,
		L1:            cache.Config{Name: "gpuL1", Size: 16 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 20},
		LLC:           cache.Config{Name: "gpuLLC", Size: 256 * units.KiB, LineSize: 64, Ways: 8, HitLatency: 80},
		LLCBandwidth:  100 * units.GBps,
		DRAMBandwidth: 25 * units.GBps,
		Costs:         isa.DefaultGPUCosts(),
	}
}

func testGPU(t *testing.T) (*GPU, *memdev.DRAM) {
	t.Helper()
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g := New(testConfig(), d.NewPort("gpu-dram", -1))
	g.SetPinnedPath(d.NewUncachedPort("pinned", 600), 2*units.GBps)
	return g, d
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Freq = 0 },
		func(c *Config) { c.SMs = 0 },
		func(c *Config) { c.WarpSize = 0 },
		func(c *Config) { c.MaxInflight = 0 },
		func(c *Config) { c.LLCBandwidth = 0 },
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.LaunchOverhead = -1 },
		func(c *Config) { c.L1.Size = 0 },
		func(c *Config) { c.LLC.Ways = 0 },
	}
	for i, mut := range mutations {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLaunchErrors(t *testing.T) {
	g, _ := testGPU(t)
	if _, err := g.Launch(Kernel{Name: "none", Threads: 0, Program: func(int, *isa.Program) {}}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := g.Launch(Kernel{Name: "nil", Threads: 32}); err == nil {
		t.Error("nil program accepted")
	}
	_, err := g.Launch(Kernel{Name: "div", Threads: 32, Program: func(tid int, p *isa.Program) {
		if tid%2 == 0 {
			p.Compute(isa.FMA, 1)
		} else {
			p.Compute(isa.AddS32, 1)
		}
	}})
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Errorf("opcode divergence not rejected: %v", err)
	}
	_, err = g.Launch(Kernel{Name: "lendiv", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 1+tid%2)
	}})
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Errorf("length divergence not rejected: %v", err)
	}
	_, err = g.Launch(Kernel{Name: "badinstr", Threads: 1, Program: func(tid int, p *isa.Program) {
		p.Ld(-4, 4)
	}})
	if err == nil {
		t.Error("invalid instruction accepted")
	}
}

func TestComputeBoundKernel(t *testing.T) {
	g, _ := testGPU(t)
	// 2 warps on 2 SMs, each warp 1000 FMA => 1000 cycles = 1000ns per SM.
	res, err := g.Launch(Kernel{Name: "fma", Threads: 64, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 1000)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 1000 {
		t.Errorf("time = %vns, want 1000", res.Time)
	}
	if res.Bound != "compute" {
		t.Errorf("bound = %q, want compute", res.Bound)
	}
	if res.Warps != 2 || res.Instructions != 64000 {
		t.Errorf("warps=%d instrs=%d", res.Warps, res.Instructions)
	}
}

func TestCoalescingAdjacentLanes(t *testing.T) {
	g, _ := testGPU(t)
	// 32 lanes loading consecutive 4-byte words: 128 bytes = 2 lines of 64.
	res, err := g.Launch(Kernel{Name: "coalesced", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 2 {
		t.Errorf("transactions = %d, want 2 (perfectly coalesced)", res.Transactions)
	}
	if res.TransactionBytes != 128 {
		t.Errorf("transaction bytes = %d, want 128", res.TransactionBytes)
	}
	if res.BytesRequested != 128 {
		t.Errorf("requested = %d, want 128", res.BytesRequested)
	}
}

func TestUncoalescedStride(t *testing.T) {
	g, _ := testGPU(t)
	// Each lane hits its own line: 32 transactions.
	res, err := g.Launch(Kernel{Name: "strided", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*64, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 32 {
		t.Errorf("transactions = %d, want 32 (one line per lane)", res.Transactions)
	}
}

func TestLatencyHidingDividesByInflight(t *testing.T) {
	cfg := testConfig()
	cfg.SMs = 1
	cfg.MaxInflight = 8
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 1000 * units.GBps})
	g := New(cfg, d.NewPort("p", -1))
	// 16 warps, each 1 load to its own line. Per-transaction latency:
	// 20 (L1) + 80 (LLC) + 200 (DRAM) = 300ns; 16 txns = 4800ns total,
	// hidden across min(8, 16) = 8 -> 600ns.
	res, err := g.Launch(Kernel{Name: "lat", Threads: 16 * 32, Program: func(tid int, p *isa.Program) {
		warp := tid / 32
		p.Ld(int64(warp)*64, 2) // all lanes of a warp share one line
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != "latency" {
		t.Fatalf("bound = %q, want latency (bw terms tiny here)", res.Bound)
	}
	if res.Time != 600 {
		t.Errorf("time = %vns, want 600", res.Time)
	}
}

func TestDRAMBandwidthBound(t *testing.T) {
	cfg := testConfig()
	cfg.DRAMBandwidth = 1 * units.GBps // 1 byte/ns
	d := memdev.New(memdev.Config{Name: "dram", Latency: 1, Bandwidth: units.GBps})
	g := New(cfg, d.NewPort("p", -1))
	// Stream 1 MiB with no reuse: DRAM moves >= 1 MiB -> >= ~1e6 ns.
	threads := 4096
	res, err := g.Launch(Kernel{Name: "stream", Threads: threads, Program: func(tid int, p *isa.Program) {
		for i := 0; i < 4; i++ {
			p.Ld(int64(tid)*256+int64(i)*64, 64)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != "dram-bw" {
		t.Errorf("bound = %q, want dram-bw", res.Bound)
	}
	wantMin := units.Latency(1 << 20) // 1 byte per ns
	if res.Time < wantMin {
		t.Errorf("time = %v, want >= %v", res.Time, wantMin)
	}
}

func TestLLCServesReuse(t *testing.T) {
	g, _ := testGPU(t)
	// Working set 64 KiB fits LLC (256 KiB) but not one L1 (16 KiB).
	// Two passes: second pass should hit in LLC heavily.
	kernel := Kernel{Name: "reuse", Threads: 1024, Program: func(tid int, p *isa.Program) {
		base := int64(tid%256) * 256
		for i := int64(0); i < 4; i++ {
			p.Ld(base+i*64, 64)
		}
	}}
	if _, err := g.Launch(kernel); err != nil {
		t.Fatal(err)
	}
	res, err := g.Launch(kernel)
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.LLC.HitRate(); hr < 0.9 {
		t.Errorf("warm LLC hit rate = %.2f, want >= 0.9", hr)
	}
	if res.DRAM.Bytes() != 0 {
		t.Errorf("warm pass DRAM traffic = %d, want 0", res.DRAM.Bytes())
	}
}

func TestPinnedPathBypassesCaches(t *testing.T) {
	g, _ := testGPU(t)
	g.AddPinnedRange(0, 1<<20)
	res, err := g.Launch(Kernel{Name: "zc", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.L1.Accesses() != 0 || res.LLC.Accesses() != 0 {
		t.Error("pinned accesses went through GPU caches")
	}
	if res.Transactions != 32 {
		t.Errorf("transactions = %d, want 32 (no coalescing on pinned path)", res.Transactions)
	}
	if res.Pinned.Bytes() != 128 {
		t.Errorf("pinned bytes = %d, want 128", res.Pinned.Bytes())
	}
}

func TestPinnedSlowerThanCached(t *testing.T) {
	g, _ := testGPU(t)
	kernel := func(name string) Kernel {
		return Kernel{Name: name, Threads: 2048, Program: func(tid int, p *isa.Program) {
			base := int64(tid%64) * 64 // small, reusable working set
			for i := 0; i < 8; i++ {
				p.Ld(base, 4)
			}
		}}
	}
	warm, err := g.Launch(kernel("warmup"))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := g.Launch(kernel("cached"))
	if err != nil {
		t.Fatal(err)
	}
	g.AddPinnedRange(0, 1<<20)
	pinnedRes, err := g.Launch(kernel("pinned"))
	if err != nil {
		t.Fatal(err)
	}
	if pinnedRes.Time <= cached.Time*5 {
		t.Errorf("pinned %v not dramatically slower than cached %v", pinnedRes.Time, cached.Time)
	}
	_ = warm
}

func TestPartialWarp(t *testing.T) {
	g, _ := testGPU(t)
	res, err := g.Launch(Kernel{Name: "partial", Threads: 40, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warps != 2 {
		t.Errorf("warps = %d, want 2", res.Warps)
	}
	if res.Instructions != 40 {
		t.Errorf("instructions = %d, want 40", res.Instructions)
	}
}

func TestLaunchOverheadAdded(t *testing.T) {
	cfg := testConfig()
	cfg.LaunchOverhead = 5000
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g := New(cfg, d.NewPort("p", -1))
	res, err := g.Launch(Kernel{Name: "tiny", Threads: 1, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchOverhead != 5000 {
		t.Errorf("launch overhead = %v, want 5000", res.LaunchOverhead)
	}
	if res.Time >= 5000 {
		t.Errorf("exec time %v should not include launch overhead", res.Time)
	}
}

func TestReqThroughput(t *testing.T) {
	r := Result{Time: 1000, BytesRequested: 4000} // 4000 B / 1µs = 4 GB/s
	if got := r.ReqThroughput().GB(); got < 3.999 || got > 4.001 {
		t.Errorf("throughput = %v GB/s, want 4", got)
	}
	if (Result{}).ReqThroughput() != 0 {
		t.Error("zero-time throughput should be 0")
	}
}

func TestResultDeltasIsolatedPerLaunch(t *testing.T) {
	g, _ := testGPU(t)
	k := Kernel{Name: "k", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
	}}
	r1, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if r1.L1.Accesses() != r2.L1.Accesses() {
		t.Errorf("per-launch access deltas differ: %d vs %d", r1.L1.Accesses(), r2.L1.Accesses())
	}
	if r2.L1.Hits() == 0 {
		t.Error("second launch should hit warm caches")
	}
	if r1.L1.Hits() != 0 {
		t.Error("first launch cannot hit cold caches")
	}
}

func TestFlushLLCAndInvalidate(t *testing.T) {
	g, d := testGPU(t)
	if _, err := g.Launch(Kernel{Name: "w", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.St(int64(tid)*64, 4)
	}}); err != nil {
		t.Fatal(err)
	}
	wbs, cost := g.FlushLLC(2)
	if wbs == 0 || cost == 0 {
		t.Errorf("flush wbs=%d cost=%v, want dirty writebacks and cost", wbs, cost)
	}
	if g.LLC().ResidentLines() != 0 {
		t.Error("LLC not empty after flush")
	}
	g.InvalidateCaches()
	if g.L1Stats().Accesses() == 0 {
		t.Error("stats unexpectedly cleared by invalidate")
	}
	g.ResetStats()
	if g.L1Stats().Accesses() != 0 {
		t.Error("ResetStats did not clear L1 stats")
	}
	_ = d
}

func TestAddPinnedRangePanics(t *testing.T) {
	g, _ := testGPU(t)
	defer func() {
		if recover() == nil {
			t.Fatal("empty pinned range accepted")
		}
	}()
	g.AddPinnedRange(5, 5)
}

func TestAddPinnedRangeWithoutPathPanics(t *testing.T) {
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g := New(testConfig(), d.NewPort("p", -1))
	defer func() {
		if recover() == nil {
			t.Fatal("pinned range without path accepted")
		}
	}()
	g.AddPinnedRange(0, 64)
}

func TestPinnedWriteCombining(t *testing.T) {
	g, _ := testGPU(t)
	g.AddPinnedRange(0, 1<<20)
	// 32 lanes storing 4B each into one 64B-aligned region: the WC buffer
	// merges same-line stores, unlike pinned reads.
	res, err := g.Launch(Kernel{Name: "wc", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.St(int64(tid%16)*4, 4) // all lanes within line 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 1 {
		t.Errorf("WC store transactions = %d, want 1 (merged)", res.Transactions)
	}
	// Reads of the same addresses stay per-lane.
	res, err = g.Launch(Kernel{Name: "rd", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid%16)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 32 {
		t.Errorf("pinned read transactions = %d, want 32 (uncoalesced)", res.Transactions)
	}
}

func TestPinnedWriteCombiningAcrossLines(t *testing.T) {
	g, _ := testGPU(t)
	g.AddPinnedRange(0, 1<<20)
	// Lanes span two 64B WC lines: two transactions.
	res, err := g.Launch(Kernel{Name: "wc2", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.St(int64(tid)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 2 {
		t.Errorf("WC transactions = %d, want 2", res.Transactions)
	}
}

func TestResidentBatchThrashesL1(t *testing.T) {
	// One warp's working set fits L1, but a resident batch of 16 such
	// warps does not: interleaved execution must evict across warps,
	// unlike a (wrong) warp-sequential model.
	cfg := testConfig()
	cfg.SMs = 1
	cfg.ResidentWarps = 16
	cfg.L1 = cache.Config{Name: "tiny", Size: 4 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 20}
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 100 * units.GBps})
	g := New(cfg, d.NewPort("p", -1))
	// Each warp re-reads its own 1KiB slice twice; 16 warps x 1KiB = 16KiB
	// footprint >> 4KiB L1.
	res, err := g.Launch(Kernel{Name: "thrash", Threads: 16 * 32, Program: func(tid int, p *isa.Program) {
		warp := tid / 32
		base := int64(warp) * 1024
		for pass := 0; pass < 2; pass++ {
			for i := int64(0); i < 16; i++ {
				p.Ld(base+i*64, 4)
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.L1.HitRate(); hr > 0.3 {
		t.Errorf("interleaved L1 hit rate = %.2f, want thrashing (< 0.3)", hr)
	}
}

func TestSingleResidentWarpKeepsLocality(t *testing.T) {
	// With a batch of one, each warp's second pass hits its own L1 lines.
	cfg := testConfig()
	cfg.SMs = 1
	cfg.ResidentWarps = 1
	cfg.L1 = cache.Config{Name: "tiny", Size: 4 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 20}
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 100 * units.GBps})
	g := New(cfg, d.NewPort("p", -1))
	res, err := g.Launch(Kernel{Name: "local", Threads: 16 * 32, Program: func(tid int, p *isa.Program) {
		warp := tid / 32
		base := int64(warp) * 1024
		for pass := 0; pass < 2; pass++ {
			for i := int64(0); i < 16; i++ {
				p.Ld(base+i*64, 4)
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.L1.HitRate(); hr < 0.45 {
		t.Errorf("warp-private L1 hit rate = %.2f, want ~0.5", hr)
	}
}

func TestOccupancyAndIPC(t *testing.T) {
	cfg := testConfig()
	cfg.SMs = 2
	cfg.ResidentWarps = 4
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g := New(cfg, d.NewPort("p", -1))
	// 4 warps over a capacity of 8: half occupancy; pure compute: IPC 1
	// on the busiest SM, 1.0 overall here because both SMs get 2 warps.
	res, err := g.Launch(Kernel{Name: "occ", Threads: 4 * 32, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 100)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Occupancy != 0.5 {
		t.Errorf("occupancy = %v, want 0.5", res.Occupancy)
	}
	if res.WarpIPC < 0.9 || res.WarpIPC > 1.1 {
		t.Errorf("compute-bound IPC = %v, want ~1", res.WarpIPC)
	}
	// Oversubscription clamps at 1.0.
	res, err = g.Launch(Kernel{Name: "full", Threads: 64 * 32, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 10)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Occupancy != 1 {
		t.Errorf("occupancy = %v, want clamped 1", res.Occupancy)
	}
	// A latency-bound kernel stalls: IPC well below 1.
	g2, _ := testGPU(t)
	res, err = g2.Launch(Kernel{Name: "stall", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*64, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarpIPC >= 0.5 {
		t.Errorf("memory-stalled IPC = %v, want low", res.WarpIPC)
	}
}

func TestResultString(t *testing.T) {
	g, _ := testGPU(t)
	res, err := g.Launch(Kernel{Name: "s", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"bound", "warps", "txns"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

// Property: random valid kernels never break the launcher's accounting.
func TestPropertyLaunchAccounting(t *testing.T) {
	g, _ := testGPU(t)
	progs := []func(tid int, p *isa.Program){
		func(tid int, p *isa.Program) { p.Compute(isa.FMA, 3) },
		func(tid int, p *isa.Program) { p.Ld(int64(tid)*4, 4) },
		func(tid int, p *isa.Program) { p.Ld(int64(tid)*64, 8).St(int64(tid)*64, 8) },
		func(tid int, p *isa.Program) {
			p.Compute(isa.LdShared, 4)
			p.St(int64(tid)*4, 4)
		},
	}
	f := func(sel, threads16 uint16) bool {
		threads := int(threads16%2048) + 1
		prog := progs[int(sel)%len(progs)]
		res, err := g.Launch(Kernel{Name: "prop", Threads: threads, Program: prog})
		if err != nil {
			return false
		}
		wantWarps := (threads + 31) / 32
		if res.Warps != wantWarps {
			return false
		}
		if res.Time < 0 || res.Occupancy < 0 || res.Occupancy > 1 {
			return false
		}
		// Demand traffic is consistent: transaction bytes cover requests
		// only when memory ops exist.
		if res.BytesRequested > 0 && res.Transactions == 0 {
			return false
		}
		return res.Instructions > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTraceMatchesLaunchTransactions(t *testing.T) {
	// The trace exporter must agree with the launcher's coalescing: same
	// transaction count for the same kernel, on both paths.
	g, _ := testGPU(t)
	g.AddPinnedRange(1<<20, 2<<20)
	kernel := Kernel{Name: "mixed", Threads: 96, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)         // cached, coalesced
		p.Ld(1<<20+int64(tid)*64, 4)  // pinned reads, per lane
		p.St(1<<20+int64(tid%8)*4, 4) // pinned writes, WC-merged
		p.St(int64(tid)*64, 8)        // cached, strided
		p.Compute(isa.FMA, 2)
	}}
	var buf bytes.Buffer
	if err := g.TraceTransactions(kernel, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	traceTxns := len(lines) - 1 // header
	res, err := g.Launch(kernel)
	if err != nil {
		t.Fatal(err)
	}
	if int64(traceTxns) != res.Transactions {
		t.Errorf("trace has %d transactions, launch counted %d", traceTxns, res.Transactions)
	}
	if lines[0] != "warp,instr,kind,path,addr,size" {
		t.Errorf("header = %q", lines[0])
	}
	var sawPinned, sawWC, sawCached bool
	for _, ln := range lines[1:] {
		if strings.Contains(ln, ",pinned,") {
			sawPinned = true
		}
		if strings.Contains(ln, ",pinned-wc,") {
			sawWC = true
		}
		if strings.Contains(ln, ",cached,") {
			sawCached = true
		}
	}
	if !sawPinned || !sawWC || !sawCached {
		t.Errorf("trace missing a path: pinned=%v wc=%v cached=%v", sawPinned, sawWC, sawCached)
	}
}

func TestTraceErrors(t *testing.T) {
	g, _ := testGPU(t)
	if err := g.TraceTransactions(Kernel{Name: "none", Threads: 0}, io.Discard); err == nil {
		t.Error("zero threads accepted")
	}
	if err := g.TraceTransactions(Kernel{Name: "nil", Threads: 4}, io.Discard); err == nil {
		t.Error("nil program accepted")
	}
	err := g.TraceTransactions(Kernel{Name: "div", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 1+tid%2)
		p.Ld(0, 4)
	}}, io.Discard)
	if err == nil {
		t.Error("divergent kernel accepted")
	}
}

func TestPadToResolvesDivergence(t *testing.T) {
	g, _ := testGPU(t)
	// Without padding this kernel diverges; PadTo makes it legal.
	_, err := g.Launch(Kernel{Name: "padded", Threads: 32, Program: func(tid int, p *isa.Program) {
		if tid%2 == 0 {
			p.Compute(isa.FMA, 4)
		} else {
			p.Compute(isa.FMA, 2)
		}
		p.PadTo(4)
	}})
	if err != nil {
		t.Fatalf("padded kernel rejected: %v", err)
	}
}

func TestMaskedMemorySlot(t *testing.T) {
	// Odd lanes are masked off a load slot: only even lanes contribute
	// addresses (predicated memory access).
	g, _ := testGPU(t)
	res, err := g.Launch(Kernel{Name: "masked", Threads: 32, Program: func(tid int, p *isa.Program) {
		if tid%2 == 0 {
			p.Ld(int64(tid)*64, 4)
		}
		p.PadTo(1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 16 {
		t.Errorf("transactions = %d, want 16 (half the lanes masked)", res.Transactions)
	}
	if res.BytesRequested != 16*4 {
		t.Errorf("requested = %d, want 64", res.BytesRequested)
	}
}

func TestAccessorsAndFlushRangeGPU(t *testing.T) {
	g, _ := testGPU(t)
	if g.Name() != "gpu" {
		t.Errorf("name = %q", g.Name())
	}
	if g.Config().SMs != 2 {
		t.Error("config accessor wrong")
	}
	// Dirty lines inside and outside the range via a store kernel.
	if _, err := g.Launch(Kernel{Name: "w", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.St(int64(tid)*64, 4)
		p.St(1<<16+int64(tid)*64, 4)
	}}); err != nil {
		t.Fatal(err)
	}
	wbs, cost := g.FlushRange(0, 2048, 2)
	// Each in-range line writes back once from its SM's L1 into the LLC
	// and once from the LLC to DRAM.
	if wbs != 64 {
		t.Errorf("range flush writebacks = %d, want 64 (32 L1 + 32 LLC)", wbs)
	}
	if cost <= 0 {
		t.Error("flush cost missing")
	}
	if !g.LLC().Contains(1<<16) && g.L1Stats().Accesses() > 0 {
		// The out-of-range lines must survive in some level.
		found := false
		for addr := int64(1 << 16); addr < 1<<16+2048; addr += 64 {
			if g.LLC().Contains(addr) {
				found = true
				break
			}
		}
		if !found {
			t.Error("out-of-range lines flushed")
		}
	}
	// ClearPinnedRanges: pinned routing is removable.
	g.AddPinnedRange(0, 4096)
	g.ClearPinnedRanges()
	res, err := g.Launch(Kernel{Name: "r", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pinned.Bytes() != 0 {
		t.Error("cleared pinned range still routed")
	}
	if res.L1HitRate() < 0 {
		t.Error("L1HitRate accessor broken")
	}
}

func TestNewGPUPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"invalid config": func() { New(Config{}, nil) },
		"nil dram": func() {
			New(testConfig(), nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestTraceWriterErrors(t *testing.T) {
	g, _ := testGPU(t)
	k := Kernel{Name: "k", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
	}}
	if err := g.TraceTransactions(k, failingWriter{}); err == nil {
		t.Error("writer failure not propagated")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
