package gpu

import (
	"fmt"

	"igpucomm/internal/cache"
	"igpucomm/internal/isa"
	"igpucomm/internal/units"
)

// This file is the batch-kernel core: a one-time "trace → access-run"
// compile pass plus a replay executor.
//
// Compile walks the kernel exactly the way the reference executor does —
// SMs outer, resident batches, slot-major interleave across a batch's warps
// — but instead of pushing each coalesced transaction through the cache
// hierarchy it records the whole transaction stream into a flat
// struct-of-arrays CompiledKernel. Everything that does not depend on cache
// state is resolved at compile time: SIMT validation, coalescing, the
// per-SM warp counts, issue-cycle totals, instruction and requested-byte
// counts. What remains per launch — the only state-dependent part — is
// driving the recorded transactions through the caches, which LaunchCompiled
// does with the batch cache kernels (cache.DoBatch) instead of per-access
// interface calls.
//
// Byte-identity argument, load-bearing for the differential suite:
//
//   - The transaction stream depends only on the emitted programs and the
//     pinned ranges, never on cache contents, so recording it once and
//     replaying is exact. Pinned routing is guarded by a generation counter
//     (GPU.PinnedEpoch); a stale CompiledKernel refuses to replay.
//   - Issue-cycle totals are float sums, but every in-tree cost model is
//     integral (whole cycles), so bulk-charging a run of n identical ops as
//     cost*n equals the reference's n sequential additions bit-for-bit
//     (integer-valued partial sums are exact). Non-integral models make
//     Launch fall back to the reference executor instead.
//   - Per-SM memory latency is summed per transaction in the original
//     global order, reading the batch kernels' per-access results, so the
//     float addition sequence matches the reference exactly — including the
//     fractional latencies some device catalogs use.
//   - Transactions on the cached path and the pinned path share no mutable
//     state below except DRAM's integer counters, so servicing consecutive
//     same-path groups together preserves every observable.
type CompiledKernel struct {
	name      string
	warpCount int

	instructions   int64
	bytesRequested int64
	txnBytes       int64

	smCompute []units.Cycles
	smWarps   []int
	smTxnEnd  []int32 // exclusive end index into the transaction arrays, per SM

	// The transaction stream: ready-to-issue cache accesses plus a parallel
	// path byte. Storing accesses directly lets the replay hand contiguous
	// same-path groups to the batch cache kernels without copying.
	accs  []cache.Access
	paths []uint8

	// progH1/progH2 fingerprint the emitted programs: the sum of every
	// lane's digest (laneDigest), accumulated during compile emission when
	// GPU.hashCompile is set (the kernel cache requests it for keys that
	// show cross-run reuse). The sum is order-independent, so it equals
	// hashPrograms' tid-major walk even though compile emits in SM-strided
	// batch order.
	progH1, progH2 uint64

	epoch uint64
	valid bool
}

const (
	pathCached uint8 = iota // through the issuing SM's L1
	pathPinned              // down the pinned (zero-copy) path
)

// Epoch is the pinned-routing generation this kernel was compiled under; it
// must match GPU.PinnedEpoch for LaunchCompiled to accept the kernel.
func (ck *CompiledKernel) Epoch() uint64 { return ck.epoch }

// Name returns the source kernel's name.
func (ck *CompiledKernel) Name() string { return ck.name }

// Transactions returns the size of the compiled transaction stream.
func (ck *CompiledKernel) Transactions() int64 { return int64(len(ck.accs)) }

func (ck *CompiledKernel) reset(k Kernel, warpCount, sms int, epoch uint64) {
	ck.name = k.Name
	ck.warpCount = warpCount
	ck.instructions = 0
	ck.bytesRequested = 0
	ck.txnBytes = 0
	if cap(ck.smCompute) < sms {
		ck.smCompute = make([]units.Cycles, sms)
		ck.smWarps = make([]int, sms)
		ck.smTxnEnd = make([]int32, sms)
	}
	ck.smCompute = ck.smCompute[:sms]
	ck.smWarps = ck.smWarps[:sms]
	ck.smTxnEnd = ck.smTxnEnd[:sms]
	for i := 0; i < sms; i++ {
		ck.smCompute[i] = 0
		ck.smWarps[i] = 0
		ck.smTxnEnd[i] = 0
	}
	ck.accs = ck.accs[:0]
	ck.paths = ck.paths[:0]
	ck.progH1 = 0
	ck.progH2 = 0
	ck.epoch = epoch
	ck.valid = false
}

func (ck *CompiledKernel) appendTxn(path uint8, kind cache.Kind, addr, size int64) {
	ck.accs = append(ck.accs, cache.Access{Addr: addr, Size: size, Kind: kind})
	ck.paths = append(ck.paths, path)
	ck.txnBytes += size
}

// laneCursor walks one lane's run-length-encoded program.
type laneCursor struct {
	runs []isa.Run
	idx  int
	off  int32
}

// memEvent is one memory warp-instruction discovered during the per-warp
// walk: its slot index and the captured per-lane instructions.
type memEvent struct {
	slot      int32
	laneStart int32
	laneCount int32
	op        isa.Op
}

// compiler is the reusable compile-pass scratch. Everything grows once and
// is sliced back to zero per batch, so steady-state compilation allocates
// only the CompiledKernel's own (also reused) arrays.
type compiler struct {
	warps    []int
	lanes    []int
	cur      []laneCursor
	laneRuns [][]isa.Run
	events   []memEvent
	evLanes  []isa.Instr
	evStart  []int32
	evEnd    []int32
	evCur    []int32
	lineBuf  []int64
	wcBuf    []int64
}

func (c *compiler) ensure(ws, resident int) {
	if cap(c.cur) < ws {
		c.cur = make([]laneCursor, ws)
	}
	if cap(c.laneRuns) < ws {
		c.laneRuns = make([][]isa.Run, ws)
	}
	if cap(c.evStart) < resident {
		c.evStart = make([]int32, resident)
		c.evEnd = make([]int32, resident)
		c.evCur = make([]int32, resident)
	}
	if cap(c.lineBuf) < 2*ws {
		c.lineBuf = make([]int64, 0, 2*ws)
	}
	if cap(c.wcBuf) < ws {
		c.wcBuf = make([]int64, 0, ws)
	}
}

// Compile builds a fresh compiled form of the kernel (see CompileInto).
// Model runners cache the result and replay it across iterations.
func (g *GPU) Compile(k Kernel) (*CompiledKernel, error) {
	ck := &CompiledKernel{}
	if err := g.CompileInto(k, ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// CompileInto compiles the kernel into ck, reusing its storage. It performs
// every validation Launch performs (thread count, program validity, SIMT
// convergence) and reports the same errors; unlike the reference executor it
// does so before any cache state is touched.
func (g *GPU) CompileInto(k Kernel, ck *CompiledKernel) error {
	if !g.intCosts {
		return fmt.Errorf("gpu %s: kernel %s: cost model has non-integral cycles; compiled replay unavailable", g.cfg.Name, k.Name)
	}
	if k.Threads <= 0 {
		return fmt.Errorf("kernel %s: thread count %d must be positive", k.Name, k.Threads)
	}
	if k.Program == nil {
		return fmt.Errorf("kernel %s: nil program", k.Name)
	}
	ws := g.cfg.WarpSize
	warpCount := (k.Threads + ws - 1) / ws
	resident := g.resident()
	g.ensureLaneBuffers(resident)
	g.comp.ensure(ws, resident)
	ck.reset(k, warpCount, len(g.sms), g.pinnedEpoch)

	c := &g.comp
	for smIdx := range g.sms {
		for start := smIdx; start < warpCount; start += len(g.sms) * resident {
			c.warps = c.warps[:0]
			for w := start; w < warpCount && len(c.warps) < resident; w += len(g.sms) {
				c.warps = append(c.warps, w)
			}
			if err := g.compileBatch(k, smIdx, ck); err != nil {
				return err
			}
		}
		ck.smTxnEnd[smIdx] = int32(len(ck.accs))
	}
	ck.valid = true
	return nil
}

// compileBatch compiles one resident batch: emit lanes, validate, charge
// compute in bulk per run segment, then emit the batch's memory transactions
// in the reference executor's slot-major interleaved order.
func (g *GPU) compileBatch(k Kernel, smIdx int, ck *CompiledKernel) error {
	c := &g.comp
	ws := g.cfg.WarpSize

	// Emission, validation and convergence, warp by warp in batch order —
	// the same error-discovery order as the reference executor.
	c.lanes = c.lanes[:0]
	for bi, w := range c.warps {
		lanes := ws
		if last := k.Threads - w*ws; last < lanes {
			lanes = last
		}
		c.lanes = append(c.lanes, lanes)
		for l := 0; l < lanes; l++ {
			p := &g.laneProgs[bi*ws+l]
			p.Reset()
			k.Program(w*ws+l, p)
			if g.hashCompile {
				d1, d2 := laneDigest(w*ws+l, p.Runs())
				ck.progH1 += d1
				ck.progH2 += d2
			}
		}
		idx := 0
		for _, r := range g.laneProgs[bi*ws].Runs() {
			if err := r.In.Validate(); err != nil {
				return fmt.Errorf("kernel %s: warp %d lane 0 instr %d: %w", k.Name, w, idx, err)
			}
			idx += int(r.Count)
		}
		ref := &g.laneProgs[bi*ws]
		for l := 1; l < lanes; l++ {
			other := &g.laneProgs[bi*ws+l]
			if other.Len() != ref.Len() {
				return fmt.Errorf("kernel %s: warp %d diverges: lane 0 has %d instrs, lane %d has %d",
					k.Name, w, ref.Len(), l, other.Len())
			}
			if slot, opA, opB, ok := firstOpMismatch(ref.Runs(), other.Runs()); !ok {
				return fmt.Errorf("kernel %s: warp %d instr %d diverges: lane 0 %s vs lane %d %s",
					k.Name, w, slot, opA, l, opB)
			}
		}
		ck.smWarps[smIdx]++
	}

	// Per-warp run walk: bulk compute charging plus memory-event capture.
	// Segments are bounded by every lane's run boundaries, so each lane's
	// opcode — and therefore the slot's effective opcode — is constant
	// within a segment.
	c.events = c.events[:0]
	c.evLanes = c.evLanes[:0]
	maxLen := 0
	for bi := range c.warps {
		c.evStart[bi] = int32(len(c.events))
		lanes := c.lanes[bi]
		total := g.laneProgs[bi*ws].Len()
		if total > maxLen {
			maxLen = total
		}
		laneRuns := c.laneRuns[:lanes]
		for l := 0; l < lanes; l++ {
			laneRuns[l] = g.laneProgs[bi*ws+l].Runs()
		}

		// Lockstep fast path: when every lane's run boundaries coincide
		// (the common case — masked lanes with wider Nop runs are the
		// exception), the walk advances one whole run at a time with no
		// per-lane cursors; the segment decomposition, and with it every
		// emitted quantity, is identical to the generic walk's.
		runs0 := laneRuns[0]
		lockstep := true
		for l := 1; l < lanes && lockstep; l++ {
			rl := laneRuns[l]
			if len(rl) != len(runs0) {
				lockstep = false
				break
			}
			for ri := range rl {
				if rl[ri].Count != runs0[ri].Count {
					lockstep = false
					break
				}
			}
		}
		if lockstep {
			slot := 0
			for ri := range runs0 {
				step := int(runs0[ri].Count)
				eff := runs0[ri].In.Op
				if eff == isa.Nop {
					for l := 1; l < lanes; l++ {
						if op := laneRuns[l][ri].In.Op; op != isa.Nop {
							eff = op
							break
						}
					}
				}
				ck.instructions += int64(lanes) * int64(step)
				ck.smCompute[smIdx] += g.costs.Cost(eff) * units.Cycles(step)
				if eff.IsMemory() {
					// A memory run has Count 1, so step is 1 here.
					ev := memEvent{slot: int32(slot), laneStart: int32(len(c.evLanes)), laneCount: int32(lanes), op: eff}
					for l := 0; l < lanes; l++ {
						c.evLanes = append(c.evLanes, laneRuns[l][ri].In)
					}
					c.events = append(c.events, ev)
				}
				slot += step
			}
			c.evEnd[bi] = int32(len(c.events))
			continue
		}

		cur := c.cur[:lanes]
		for l := 0; l < lanes; l++ {
			cur[l] = laneCursor{runs: laneRuns[l]}
		}
		slot := 0
		for slot < total {
			step := total - slot
			eff := isa.Nop
			for l := 0; l < lanes; l++ {
				r := &cur[l].runs[cur[l].idx]
				if rem := int(r.Count - cur[l].off); rem < step {
					step = rem
				}
				if eff == isa.Nop && r.In.Op != isa.Nop {
					eff = r.In.Op
				}
			}
			ck.instructions += int64(lanes) * int64(step)
			ck.smCompute[smIdx] += g.costs.Cost(eff) * units.Cycles(step)
			if eff.IsMemory() {
				// A memory run has Count 1, so step is 1 here.
				ev := memEvent{slot: int32(slot), laneStart: int32(len(c.evLanes)), laneCount: int32(lanes), op: eff}
				for l := 0; l < lanes; l++ {
					c.evLanes = append(c.evLanes, cur[l].runs[cur[l].idx].In)
				}
				c.events = append(c.events, ev)
			}
			for l := 0; l < lanes; l++ {
				cur[l].off += int32(step)
				if cur[l].off == cur[l].runs[cur[l].idx].Count {
					cur[l].idx++
					cur[l].off = 0
				}
			}
			slot += step
		}
		c.evEnd[bi] = int32(len(c.events))
	}

	// Emit transactions slot-major across the batch's warps — the warp
	// scheduler's interleave, which fixes the global transaction order the
	// replay preserves.
	copy(c.evCur[:len(c.warps)], c.evStart[:len(c.warps)])
	for i := 0; i < maxLen; i++ {
		for bi := range c.warps {
			if c.evCur[bi] < c.evEnd[bi] && c.events[c.evCur[bi]].slot == int32(i) {
				g.emitTxns(ck, &c.events[c.evCur[bi]])
				c.evCur[bi]++
			}
		}
	}
	return nil
}

// emitTxns coalesces one memory warp-instruction into transactions, exactly
// as the reference executor does: pinned reads lane-by-lane uncoalesced,
// pinned writes merged through the 64B write-combining buffer, cacheable
// lanes deduplicated to distinct lines.
func (g *GPU) emitTxns(ck *CompiledKernel, ev *memEvent) {
	c := &g.comp
	kind := cache.Read
	if ev.op == isa.StGlobal {
		kind = cache.Write
	}
	lineSize := g.cfg.L1.LineSize
	c.lineBuf = c.lineBuf[:0]
	c.wcBuf = c.wcBuf[:0]
	var wcBytes int64
	for _, la := range c.evLanes[ev.laneStart : ev.laneStart+ev.laneCount] {
		if la.Op == isa.Nop {
			continue
		}
		ck.bytesRequested += la.Size
		if g.pinned(la.Addr) {
			if kind == cache.Write {
				wcLine := la.Addr >> 6 // 64B write-combining lines
				if !containsInt64(c.wcBuf, wcLine) {
					c.wcBuf = append(c.wcBuf, wcLine)
					wcBytes += la.Size
				}
				continue
			}
			ck.appendTxn(pathPinned, kind, la.Addr, la.Size)
			continue
		}
		first := la.Addr >> g.lineShift
		last := (la.Addr + la.Size - 1) >> g.lineShift
		for ln := first; ln <= last; ln++ {
			if !containsInt64(c.lineBuf, ln) {
				c.lineBuf = append(c.lineBuf, ln)
			}
		}
	}
	for _, wcLine := range c.wcBuf {
		size := wcBytes / int64(len(c.wcBuf))
		if size <= 0 {
			size = 4
		}
		ck.appendTxn(pathPinned, cache.Write, wcLine*64, size)
	}
	for _, ln := range c.lineBuf {
		ck.appendTxn(pathCached, kind, ln*lineSize, lineSize)
	}
}

// firstOpMismatch scans two run-length-encoded lanes for the first slot
// whose opcodes differ with neither masked off by a Nop. ok is true when the
// lanes converge. Lengths must already be equal.
func firstOpMismatch(a, b []isa.Run) (slot int, opA, opB isa.Op, ok bool) {
	ai, bi := 0, 0
	var ao, bo int32
	at := 0
	for ai < len(a) && bi < len(b) {
		ra, rb := a[ai], b[bi]
		if ra.In.Op != rb.In.Op && ra.In.Op != isa.Nop && rb.In.Op != isa.Nop {
			return at, ra.In.Op, rb.In.Op, false
		}
		step := ra.Count - ao
		if s := rb.Count - bo; s < step {
			step = s
		}
		ao += step
		bo += step
		at += int(step)
		if ao == ra.Count {
			ai++
			ao = 0
		}
		if bo == rb.Count {
			bi++
			bo = 0
		}
	}
	return 0, 0, 0, true
}

// replayScratch holds the replay executor's reusable buffers.
type replayScratch struct {
	outs  []cache.Result
	batch cache.Batch
}

// LaunchCompiled replays a compiled kernel: it restores the per-SM compile-
// time accumulators, drives the recorded transaction stream through the
// batch cache kernels in original order, and applies the shared interval-
// model tail. The result is byte-identical to LaunchReference of the source
// kernel. It is an error to replay a kernel compiled under different pinned
// routing (see PinnedEpoch) or one whose compile failed.
func (g *GPU) LaunchCompiled(ck *CompiledKernel) (Result, error) {
	if !ck.valid {
		return Result{}, fmt.Errorf("gpu %s: compiled kernel %s is not valid", g.cfg.Name, ck.name)
	}
	if ck.epoch != g.pinnedEpoch {
		return Result{}, fmt.Errorf("gpu %s: compiled kernel %s is stale: pinned routing changed since compile", g.cfg.Name, ck.name)
	}
	before := g.snapStats()
	var res Result
	res.Warps = ck.warpCount
	res.Instructions = ck.instructions
	res.Transactions = int64(len(ck.accs))
	res.TransactionBytes = ck.txnBytes
	res.BytesRequested = ck.bytesRequested

	start := 0
	for si, s := range g.sms {
		s.computeCycles = ck.smCompute[si]
		s.memLatency = 0
		s.warps = ck.smWarps[si]
		end := int(ck.smTxnEnd[si])
		for t := start; t < end; {
			p := ck.paths[t]
			r := t + 1
			for r < end && ck.paths[r] == p {
				r++
			}
			g.replayGroup(s, ck, p, t, r)
			t = r
		}
		start = end
	}

	g.finishResult(&res, before, ck.warpCount, g.resident())
	return res, nil
}

// replayGroup services the consecutive same-path transactions [lo, hi)
// through the batch cache kernels and accumulates their latencies into the
// SM in transaction order. The access group is a direct slice of the
// compiled stream — no per-launch copying.
func (g *GPU) replayGroup(s *sm, ck *CompiledKernel, path uint8, lo, hi int) {
	rs := &g.replay
	n := hi - lo
	if cap(rs.outs) < n {
		rs.outs = make([]cache.Result, n)
	}
	accs := ck.accs[lo:hi]
	outs := rs.outs[:n]
	if g.heat != nil && path == pathPinned {
		// Pinned transactions bypass the caches, so the replay records them
		// directly — in stream order, the same order the reference executor
		// records at issue, keeping heat under the byte-identity contract.
		for j := range accs {
			g.heat.Record(accs[j].Addr, accs[j].Size, accs[j].Kind == cache.Write, true)
		}
	}
	switch {
	case path == pathCached:
		s.l1.DoBatch(accs, outs, &rs.batch)
	default:
		if bl, ok := g.pinnedPath.(cache.BatchLevel); ok {
			bl.DoBatch(accs, outs, &rs.batch)
		} else {
			for j := range accs {
				outs[j] = g.pinnedPath.Do(accs[j])
			}
		}
	}
	for j := 0; j < n; j++ {
		s.memLatency += outs[j].Latency
	}
}
