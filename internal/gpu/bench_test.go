package gpu

// Simulator-performance benchmarks: how fast the substrate itself simulates,
// in simulated-instructions and transactions per wall second. Useful when
// sizing experiment scales.

import (
	"testing"

	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

func benchGPU(b *testing.B) *GPU {
	b.Helper()
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g := New(testConfig(), d.NewPort("p", -1))
	g.SetPinnedPath(d.NewUncachedPort("pinned", 600), 2*units.GBps)
	return g
}

func BenchmarkLaunchComputeKernel(b *testing.B) {
	g := benchGPU(b)
	k := Kernel{Name: "compute", Threads: 4096, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 64)
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Launch(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(4096*64), "sim-instrs/op")
}

func BenchmarkLaunchStreamingKernel(b *testing.B) {
	g := benchGPU(b)
	k := Kernel{Name: "stream", Threads: 4096, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
		p.Compute(isa.FMA, 8)
		p.St(1<<22+int64(tid)*4, 4)
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Launch(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaunchPinnedKernel(b *testing.B) {
	g := benchGPU(b)
	g.AddPinnedRange(0, 1<<24)
	k := Kernel{Name: "pinned", Threads: 4096, Program: func(tid int, p *isa.Program) {
		p.Ld(int64(tid)*4, 4)
		p.St(1<<22+int64(tid)*4, 4)
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Launch(k); err != nil {
			b.Fatal(err)
		}
	}
}
