package gpu

// Differential harness for the batch-kernel executor: the compiled path
// (compile once, replay through cache.DoBatch) must be byte-identical to the
// per-access reference executor for EVERY expressible kernel, and its steady
// state must not allocate. The fuzzer generates kernels from raw bytes —
// mixed strides, sizes, pinned and cached lanes, masked slots, partial
// warps — and fails on the first observable divergence.

import (
	"testing"

	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

// pinnedBase is where the fuzz harness maps its pinned window; far above the
// cacheable working set so the two never alias.
const pinnedBase = int64(1) << 20

// twinGPUs builds two identically configured GPUs over separate DRAMs, the
// first forced onto the per-access reference path.
func twinGPUs() (ref, batch *GPU) {
	build := func() *GPU {
		d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
		g := New(testConfig(), d.NewPort("gpu-dram", -1))
		g.SetPinnedPath(d.NewUncachedPort("pinned", 600), 2*units.GBps)
		g.AddPinnedRange(pinnedBase, pinnedBase+8192)
		return g
	}
	ref = build()
	ref.SetReferenceMode(true)
	return ref, build()
}

// fuzzKernel decodes the fuzz payload into a convergent kernel: each 4-byte
// group is one slot shared by every thread (SIMT), with per-thread addresses.
// Byte 0 picks the slot kind (compute run, load, store, masked load), byte 1
// the base region (cacheable or pinned), byte 2 the per-thread stride, byte 3
// the access size. Returns at most 48 slots so fuzzing stays fast.
func fuzzKernel(data []byte, threads int) Kernel {
	slots := len(data) / 4
	if slots > 48 {
		slots = 48
	}
	return Kernel{
		Name:    "fuzz",
		Threads: threads,
		Program: func(tid int, p *isa.Program) {
			for s := 0; s < slots; s++ {
				b0, b1, b2, b3 := data[4*s], data[4*s+1], data[4*s+2], data[4*s+3]
				base := int64(b1%64) * 128
				if b1 >= 192 {
					base = pinnedBase + int64(b1%32)*64
				}
				stride := int64(b2 % 9 * 8)
				size := int64(b3%32) + 1
				addr := base + int64(tid)*stride
				switch b0 % 4 {
				case 0:
					p.Compute(isa.FMA, int(b2%5)+1)
				case 1:
					p.Ld(addr, size)
				case 2:
					p.St(addr, size)
				case 3:
					// Masked slot: odd lanes sit this one out (predication).
					if tid%2 == 1 {
						p.PadTo(p.Len() + 1)
					} else {
						p.Ld(addr, size)
					}
				}
			}
		},
	}
}

// FuzzBatchVsReference is the batch-vs-reference differential fuzzer: any
// decodable kernel must produce an identical Result — times, hit/miss
// deltas, transaction (coalescing) counts, bytes — from the compiled batch
// path and the per-access reference path, and identical errors when it is
// invalid.
func FuzzBatchVsReference(f *testing.F) {
	f.Add([]byte{1, 0, 1, 3, 0, 0, 0, 0, 2, 10, 2, 7}, uint8(64))
	f.Add([]byte{1, 200, 0, 3, 2, 220, 1, 7}, uint8(33))  // pinned read + WC write
	f.Add([]byte{3, 8, 4, 15, 1, 8, 4, 15}, uint8(90))    // masked + partial warp
	f.Add([]byte{2, 63, 8, 31, 1, 63, 8, 31}, uint8(255)) // wide strides, many warps
	f.Fuzz(func(t *testing.T, data []byte, nthreads uint8) {
		threads := int(nthreads)%128 + 1
		ref, batch := twinGPUs()
		k := fuzzKernel(data, threads)

		want, errRef := ref.Launch(k)
		got, errBatch := batch.Launch(k)
		if (errRef == nil) != (errBatch == nil) {
			t.Fatalf("error divergence: reference %v, batch %v", errRef, errBatch)
		}
		if errRef != nil {
			return
		}
		if got != want {
			t.Fatalf("result divergence:\nreference: %+v\nbatch:     %+v", want, got)
		}
		// The caches must also end in the same state, not just report the
		// same deltas — replay a second time and compare again (warm-cache
		// behaviour diverges if residency differs).
		want2, _ := ref.Launch(k)
		got2, _ := batch.Launch(k)
		if got2 != want2 {
			t.Fatalf("warm-cache divergence:\nreference: %+v\nbatch:     %+v", want2, got2)
		}
	})
}

// TestBatchVsReferenceSeeds runs the fuzz seed corpus as a plain test so the
// differential contract is exercised on every `go test`, not only under
// -fuzz.
func TestBatchVsReferenceSeeds(t *testing.T) {
	seeds := []struct {
		data    []byte
		threads int
	}{
		{[]byte{1, 0, 1, 3, 0, 0, 0, 0, 2, 10, 2, 7}, 64},
		{[]byte{1, 200, 0, 3, 2, 220, 1, 7}, 33},
		{[]byte{3, 8, 4, 15, 1, 8, 4, 15}, 90},
		{[]byte{2, 63, 8, 31, 1, 63, 8, 31}, 255},
		{[]byte{1, 5, 0, 0}, 1},
	}
	for i, s := range seeds {
		ref, batch := twinGPUs()
		k := fuzzKernel(s.data, s.threads)
		want, errRef := ref.Launch(k)
		got, errBatch := batch.Launch(k)
		if (errRef == nil) != (errBatch == nil) {
			t.Fatalf("seed %d: error divergence: %v vs %v", i, errRef, errBatch)
		}
		if got != want {
			t.Fatalf("seed %d: result divergence:\nreference: %+v\nbatch:     %+v", i, want, got)
		}
	}
}

// TestNonIntegralCostsFallBackIdentically pins the escape hatch: a cost
// model with fractional cycles disables compiled replay (bulk-charging would
// reorder float additions), and Launch must transparently produce the
// reference executor's exact result.
func TestNonIntegralCostsFallBackIdentically(t *testing.T) {
	cfg := testConfig()
	cfg.Costs.Issue[isa.FMA] = 1.5
	d := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g := New(cfg, d.NewPort("gpu-dram", -1))
	if g.intCosts {
		t.Fatal("fractional cost model classified integral")
	}
	k := Kernel{Name: "frac", Threads: 64, Program: func(tid int, p *isa.Program) {
		p.Compute(isa.FMA, 3)
		p.Ld(int64(tid)*64, 8)
	}}
	got, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	d2 := memdev.New(memdev.Config{Name: "dram", Latency: 200, Bandwidth: 25 * units.GBps})
	g2 := New(cfg, d2.NewPort("gpu-dram", -1))
	want, err := g2.LaunchReference(k)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fallback divergence:\nreference: %+v\nlaunch:    %+v", want, got)
	}
	if _, err := g.Compile(k); err == nil {
		t.Fatal("Compile accepted a non-integral cost model")
	}
}

// TestLaunchSteadyStateZeroAlloc is the allocation gate on the simulate hot
// path: once warm, a compiled Launch — emission, compile walk, coalescing,
// batch cache replay — must not allocate at all.
func TestLaunchSteadyStateZeroAlloc(t *testing.T) {
	_, g := twinGPUs()
	k := fuzzKernel([]byte{1, 0, 1, 3, 0, 0, 0, 0, 2, 10, 2, 7, 1, 200, 0, 3}, 128)
	for i := 0; i < 3; i++ { // warm scratch to steady-state capacity
		if _, err := g.Launch(k); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := g.Launch(k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Launch allocates %v times per run, want 0", allocs)
	}
}

// TestLauncherSteadyStateZeroAlloc extends the gate to the cached-replay
// path model runs actually use: a warm Launcher.Launch validates the cache
// entry and replays without allocating.
func TestLauncherSteadyStateZeroAlloc(t *testing.T) {
	_, g := twinGPUs()
	lch := NewLauncher(g, "alloc-test/fuzz")
	k := fuzzKernel([]byte{1, 0, 1, 3, 2, 10, 2, 7}, 128)
	for i := 0; i < 3; i++ {
		if _, err := lch.Launch(0, k); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := lch.Launch(0, k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Launcher.Launch allocates %v times per run, want 0", allocs)
	}
}

// TestLauncherCrossRunReplay pins the cross-run reuse protocol: after a
// pinned-routing reset that rebuilds identical content (what soc.ResetState
// does between model runs), the second compile of a key records the program
// fingerprint, and from the third run on the launcher replays — validated by
// hash — instead of recompiling.
func TestLauncherCrossRunReplay(t *testing.T) {
	_, g := twinGPUs()
	lch := NewLauncher(g, "xrun/fuzz")
	k := fuzzKernel([]byte{1, 0, 1, 3, 2, 10, 2, 7}, 64)

	newRun := func() {
		// Rebuild the same pinned routing; the epoch moves, content doesn't.
		g.ClearPinnedRanges()
		g.AddPinnedRange(pinnedBase, pinnedBase+8192)
	}
	want, err := lch.Launch(0, k)
	if err != nil {
		t.Fatal(err)
	}
	e := g.kcache[kernelKey{scope: "xrun/fuzz", idx: 0}]
	if e == nil {
		t.Fatal("no cache entry after first launch")
	}
	if e.hashed {
		t.Fatal("first compile hashed eagerly; hashing must be deferred to reuse")
	}
	newRun()
	if _, err := lch.Launch(0, k); err != nil {
		t.Fatal(err)
	}
	if !e.hashed {
		t.Fatal("second compile did not record the program fingerprint")
	}
	epochAfterSecond := e.ck.epoch
	newRun()
	got, err := lch.Launch(0, k)
	if err != nil {
		t.Fatal(err)
	}
	if e.ck.epoch == epochAfterSecond {
		t.Fatal("third launch did not revalidate against the new epoch")
	}
	if got.Transactions != want.Transactions || got.Instructions != want.Instructions {
		t.Fatalf("cross-run replay diverged: %+v vs %+v", got, want)
	}

	// A changed pinned layout must force recompilation, not replay.
	g.ClearPinnedRanges()
	g.AddPinnedRange(pinnedBase, pinnedBase+4096)
	if _, err := lch.Launch(0, k); err != nil {
		t.Fatal(err)
	}
	if e.path == nil {
		t.Fatal("entry lost its routing evidence after recompile")
	}
	if got := len(e.ranges); got != 1 || e.ranges[0].hi != pinnedBase+4096 {
		t.Fatalf("entry not recompiled against new routing: ranges %+v", e.ranges)
	}
}

// TestLauncherBypassesMatchLaunch pins the launcher's bypass rules: negative
// launch indices and reference mode take the uncached paths with identical
// results.
func TestLauncherBypassesMatchLaunch(t *testing.T) {
	ref, g := twinGPUs()
	k := fuzzKernel([]byte{1, 0, 1, 3}, 64)
	lch := NewLauncher(g, "bypass/fuzz")
	want, err := ref.Launch(k) // reference path
	if err != nil {
		t.Fatal(err)
	}
	got, err := lch.Launch(-1, k)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("negative-index launch diverged from reference: %+v vs %+v", got, want)
	}
	g.SetReferenceMode(true)
	got, err = lch.Launch(0, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.kcache) != 0 {
		t.Fatal("reference mode populated the kernel cache")
	}
	g.SetReferenceMode(false)
	if got.Transactions != want.Transactions {
		t.Fatalf("reference-mode launcher diverged: %+v vs %+v", got, want)
	}
	if _, err := lch.Launch(0, Kernel{Name: "bad", Threads: 0, Program: func(int, *isa.Program) {}}); err == nil {
		t.Fatal("launcher accepted zero threads")
	}
	if _, err := lch.Launch(0, Kernel{Name: "nil", Threads: 4}); err == nil {
		t.Fatal("launcher accepted nil program")
	}
}

// TestKernelCacheEviction bounds the GPU-resident kernel cache: pushing many
// distinct large kernels through one GPU must evict oldest entries rather
// than grow past the byte budget.
func TestKernelCacheEviction(t *testing.T) {
	_, g := twinGPUs()
	// Large streaming kernels so each entry carries real transaction weight.
	mk := func(i int) Kernel {
		base := int64(i) * 4096
		return Kernel{Name: "big", Threads: 256, Program: func(tid int, p *isa.Program) {
			for j := 0; j < 64; j++ {
				p.Ld(base+int64(tid)*64+int64(j)*16384, 4)
			}
		}}
	}
	lch := NewLauncher(g, "evict/fuzz")
	for i := 0; i < 2000; i++ {
		if _, err := lch.Launch(i, mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if g.kcacheBytes > kernelCacheBudget {
		t.Fatalf("kernel cache %d bytes exceeds budget %d", g.kcacheBytes, kernelCacheBudget)
	}
	if len(g.kcache) >= 2000 {
		t.Fatalf("no eviction happened: %d entries resident", len(g.kcache))
	}
	if len(g.kcache) != len(g.kcacheOrder) {
		t.Fatalf("cache map (%d) and order list (%d) out of sync", len(g.kcache), len(g.kcacheOrder))
	}
}
