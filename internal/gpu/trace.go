package gpu

import (
	"bufio"
	"fmt"
	"io"

	"igpucomm/internal/isa"
)

// TraceTransactions dry-runs the kernel's memory behaviour and writes one
// CSV row per coalesced transaction:
//
//	warp,instr,kind,path,addr,size
//
// without touching the caches or the clock — a tool for exporting access
// traces to external analyzers. The coalescing rules are exactly Launch's
// (the test suite cross-checks the transaction counts against a real
// launch).
func (g *GPU) TraceTransactions(k Kernel, w io.Writer) error {
	if k.Threads <= 0 {
		return fmt.Errorf("kernel %s: thread count %d must be positive", k.Name, k.Threads)
	}
	if k.Program == nil {
		return fmt.Errorf("kernel %s: nil program", k.Name)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "warp,instr,kind,path,addr,size"); err != nil {
		return err
	}

	ws := g.cfg.WarpSize
	warpCount := (k.Threads + ws - 1) / ws
	lineSize := g.cfg.L1.LineSize
	progs := make([]isa.Program, ws)
	laneIn := make([][]isa.Instr, ws) // materialized flat views, per warp
	// Coalescing scratch, reused across warp-instructions exactly as in
	// Launch (two lines per lane worst case, one WC line per lane).
	lineBuf := make([]int64, 0, 2*ws)
	wcBuf := make([]int64, 0, ws)

	emit := func(warp, instr int, kind, path string, addr, size int64) error {
		_, err := fmt.Fprintf(bw, "%d,%d,%s,%s,%d,%d\n", warp, instr, kind, path, addr, size)
		return err
	}

	for warp := 0; warp < warpCount; warp++ {
		lanes := ws
		if last := k.Threads - warp*ws; last < lanes {
			lanes = last
		}
		for l := 0; l < lanes; l++ {
			progs[l].Reset()
			k.Program(warp*ws+l, &progs[l])
			laneIn[l] = progs[l].Instrs()
		}
		ref := laneIn[0]
		for i, in := range ref {
			if err := in.Validate(); err != nil {
				return fmt.Errorf("kernel %s: warp %d instr %d: %w", k.Name, warp, i, err)
			}
			// Slot opcode: first non-Nop among lanes (masking).
			if in.Op == isa.Nop {
				for l := 1; l < lanes; l++ {
					lane := laneIn[l]
					if i < len(lane) && lane[i].Op != isa.Nop {
						in = lane[i]
						break
					}
				}
			}
			if !in.Op.IsMemory() {
				continue
			}
			kind := "read"
			if in.Op == isa.StGlobal {
				kind = "write"
			}
			lineBuf, wcBuf = lineBuf[:0], wcBuf[:0]
			var wcBytes int64
			for l := 0; l < lanes; l++ {
				lane := laneIn[l]
				if i >= len(lane) || (lane[i].Op != in.Op && lane[i].Op != isa.Nop) {
					return fmt.Errorf("kernel %s: warp %d diverges at instr %d", k.Name, warp, i)
				}
				la := lane[i]
				if la.Op == isa.Nop {
					continue
				}
				if g.pinned(la.Addr) {
					if in.Op == isa.StGlobal {
						wcLine := la.Addr / 64
						if !containsInt64(wcBuf, wcLine) {
							wcBuf = append(wcBuf, wcLine)
							wcBytes += la.Size
						}
						continue
					}
					if err := emit(warp, i, kind, "pinned", la.Addr, la.Size); err != nil {
						return err
					}
					continue
				}
				first := la.Addr / lineSize
				last := (la.Addr + la.Size - 1) / lineSize
				for ln := first; ln <= last; ln++ {
					if !containsInt64(lineBuf, ln) {
						lineBuf = append(lineBuf, ln)
					}
				}
			}
			for _, wcLine := range wcBuf {
				size := wcBytes / int64(len(wcBuf))
				if size <= 0 {
					size = 4
				}
				if err := emit(warp, i, kind, "pinned-wc", wcLine*64, size); err != nil {
					return err
				}
			}
			for _, ln := range lineBuf {
				if err := emit(warp, i, kind, "cached", ln*lineSize, lineSize); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
