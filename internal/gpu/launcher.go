package gpu

import (
	"fmt"

	"igpucomm/internal/isa"
)

// Launcher front-ends the compiled-kernel cache the GPU keeps across model
// runs. A model run creates one with a scope naming its launch sequence
// (typically "model/workload"); Launch(idx, k) then compiles on first use
// and replays the cached artifact on every later launch of the same kernel —
// across iterations of one run and across whole runs when the platform is
// reused.
//
// Cross-run reuse is verified, not assumed: when an entry's pinned epoch is
// stale (a ResetState happened since compile), its programs are re-emitted
// and their 128-bit content hash compared against the hash taken at compile
// time, and the pinned routing is checked by content. A mismatch recompiles,
// so a stale entry costs time, never correctness. Within one run the epoch
// cannot move after allocation, so replays validate on the epoch alone —
// kernels are deterministic per layout by the Kernel contract.
type Launcher struct {
	g     *GPU
	scope string
}

// NewLauncher returns a launcher for one run's launch sequence. scope keys
// the GPU's kernel cache; runs that repeat the same scope with the same
// deterministic kernels replay each other's compiled artifacts.
func NewLauncher(g *GPU, scope string) *Launcher {
	return &Launcher{g: g, scope: scope}
}

// Launch executes launch number idx of the scope's sequence. Results are
// byte-identical to g.Launch(k); reference mode and non-integral cost models
// bypass the cache exactly the way g.Launch does, as does a negative idx.
func (l *Launcher) Launch(idx int, k Kernel) (Result, error) {
	g := l.g
	if g.refMode || !g.intCosts {
		return g.LaunchReference(k)
	}
	if idx < 0 {
		return g.Launch(k)
	}
	e, err := g.lookupKernel(l.scope, idx, k)
	if err != nil {
		return Result{}, err
	}
	return g.LaunchCompiled(&e.ck)
}

// cachedKernel is one kernel-cache entry: the compiled artifact plus the
// evidence that justifies replaying it — the program content hash and the
// pinned routing the compile saw. hashed reports whether the fingerprint was
// recorded: hashing costs a pass over every emitted run, so it is deferred
// until a key's second compile proves the key sees cross-run reuse;
// single-use kernels never pay for it.
type cachedKernel struct {
	ck      CompiledKernel
	threads int
	hashed  bool
	h1, h2  uint64
	path    MemPath
	ranges  []addrRange
}

// bytes approximates the entry's retained storage, for the cache budget.
func (e *cachedKernel) bytes() int64 {
	return int64(cap(e.ck.accs))*25 + int64(cap(e.ck.smCompute))*20 + 64
}

type kernelKey struct {
	scope string
	idx   int
}

// kernelCacheBudget bounds the bytes the compiled-kernel cache retains per
// GPU; oldest entries are evicted first. Large enough for every in-tree
// sweep's working set, small enough that a long-lived engine cannot grow
// without bound.
const kernelCacheBudget = 64 << 20

// lookupKernel returns a valid, current compiled kernel for (scope, idx),
// revalidating a cached entry or (re)compiling into it.
//
// Validation is tiered by how much could have changed. Within one run the
// pinned epoch is constant after allocation, so an epoch-current entry is
// replayed with no further checks — kernels are deterministic per layout by
// the Kernel contract, and the layout cannot have moved without the epoch
// moving. Across runs (the epoch bumped at ResetState) the entry is only
// reused after the freshly emitted programs hash to the compile-time
// fingerprint and the pinned routing matches by content.
func (g *GPU) lookupKernel(scope string, idx int, k Kernel) (*cachedKernel, error) {
	if k.Threads <= 0 {
		return nil, fmt.Errorf("kernel %s: thread count %d must be positive", k.Name, k.Threads)
	}
	if k.Program == nil {
		return nil, fmt.Errorf("kernel %s: nil program", k.Name)
	}
	key := kernelKey{scope: scope, idx: idx}
	e := g.kcache[key]
	if e == nil {
		if g.kcache == nil {
			g.kcache = make(map[kernelKey]*cachedKernel)
		}
		e = &cachedKernel{}
		g.kcache[key] = e
		g.kcacheOrder = append(g.kcacheOrder, key)
	} else if e.ck.valid && e.threads == k.Threads {
		if e.ck.epoch == g.pinnedEpoch {
			return e, nil
		}
		if e.hashed {
			h1, h2 := g.hashPrograms(k)
			if e.h1 == h1 && e.h2 == h2 &&
				e.path == g.pinnedPath && rangesEqual(e.ranges, g.ranges) {
				e.ck.epoch = g.pinnedEpoch
				return e, nil
			}
		}
	}
	g.kcacheBytes -= e.bytes()
	// A second compile of the same key means the key sees cross-run reuse;
	// record the fingerprint this time so the next reuse can validate and
	// replay instead of compiling again.
	g.hashCompile = e.ck.valid
	err := g.CompileInto(k, &e.ck)
	e.hashed = g.hashCompile
	g.hashCompile = false
	if err != nil {
		return nil, err
	}
	e.threads = k.Threads
	e.h1, e.h2 = e.ck.progH1, e.ck.progH2
	e.path = g.pinnedPath
	e.ranges = append(e.ranges[:0], g.ranges...)
	g.kcacheBytes += e.bytes()
	g.evictKernels(key)
	return e, nil
}

// laneDigest hashes one thread's emitted program into a 128-bit value (two
// independently mixed 64-bit lanes seeded by the thread id). Per-lane
// digests are summed to fingerprint a whole kernel — the sum commutes, so
// compile-order accumulation and hashPrograms' tid-major walk agree.
func laneDigest(tid int, runs []isa.Run) (uint64, uint64) {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h1 := uint64(fnvOffset) ^ uint64(tid)*fnvPrime
	h2 := uint64(0x9e3779b97f4a7c15) + uint64(tid)
	for _, r := range runs {
		h1 = (h1 ^ uint64(r.In.Op)) * fnvPrime
		h1 = (h1 ^ uint64(r.In.Addr)) * fnvPrime
		h1 = (h1 ^ uint64(r.In.Size)) * fnvPrime
		h1 = (h1 ^ uint64(r.Count)) * fnvPrime
		h2 ^= uint64(r.In.Op) + 0x9e3779b97f4a7c15
		h2 = (h2 ^ uint64(r.In.Addr)) * 0xff51afd7ed558ccd
		h2 ^= h2 >> 33
		h2 = (h2 ^ uint64(r.In.Size)*0xc4ceb9fe1a85ec53 + uint64(r.Count))
	}
	// Finalize so structurally similar lanes don't cancel under summation.
	h2 ^= h2 >> 29
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 32
	h1 ^= h1 >> 31
	h1 *= 0xc4ceb9fe1a85ec53
	h1 ^= h1 >> 29
	return h1, h2
}

// hashPrograms emits every thread's program and sums the lane digests into
// the kernel's 128-bit content fingerprint (same value CompileInto records
// in CompiledKernel as it emits).
func (g *GPU) hashPrograms(k Kernel) (uint64, uint64) {
	var h1, h2 uint64
	p := &g.vprog
	for tid := 0; tid < k.Threads; tid++ {
		p.Reset()
		k.Program(tid, p)
		d1, d2 := laneDigest(tid, p.Runs())
		h1 += d1
		h2 += d2
	}
	return h1, h2
}

// evictKernels drops oldest entries until the cache fits its byte budget,
// never evicting keep (the entry just produced).
func (g *GPU) evictKernels(keep kernelKey) {
	for g.kcacheBytes > kernelCacheBudget && len(g.kcacheOrder) > 1 {
		victim := g.kcacheOrder[0]
		if victim == keep {
			// Rotate the protected entry to the back.
			g.kcacheOrder = append(g.kcacheOrder[1:], victim)
			continue
		}
		g.kcacheOrder = g.kcacheOrder[1:]
		if e := g.kcache[victim]; e != nil {
			g.kcacheBytes -= e.bytes()
			delete(g.kcache, victim)
		}
	}
}

func rangesEqual(a, b []addrRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
