package gpu

import (
	"fmt"

	"igpucomm/internal/cache"
	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

// Kernel describes one GPU launch. Program is called once per thread and
// appends that thread's instructions; all threads that share a warp must emit
// the same opcode sequence (SIMT convergence — model data-dependent work with
// predication, i.e. emit the ops anyway, as real GPUs do).
//
// Program must be deterministic: calling it twice for the same thread id must
// emit the same instructions. The batch executor compiles the emitted trace
// once and replays it, so a non-deterministic emitter would silently
// desynchronize from what a per-access execution would have done.
type Kernel struct {
	Name    string
	Threads int
	Program func(tid int, p *isa.Program)
}

// Result reports the timing and traffic of one kernel launch.
type Result struct {
	// Time is the kernel execution time — what a profiler reports as
	// kernel duration. The software launch overhead is NOT included; it is
	// returned separately so end-to-end accounting can add it exactly once.
	Time units.Latency
	// LaunchOverhead is the software launch cost of this launch.
	LaunchOverhead units.Latency

	Warps        int
	Instructions int64

	// Transactions is the number of memory transactions issued after
	// coalescing (the t_n of the paper's eqn 2); TransactionBytes is their
	// total size (t_n * t_size).
	Transactions     int64
	TransactionBytes int64

	// BytesRequested sums the bytes the threads asked for, before
	// coalescing and line inflation. Requested-throughput uses this.
	BytesRequested int64

	// Cache/traffic deltas for this launch only.
	L1     cache.Stats
	LLC    cache.Stats
	DRAM   memdev.Stats
	Pinned memdev.Stats

	// Bound records which term of the interval model dominated:
	// "compute", "latency", "llc-bw", "dram-bw" or "pinned-bw".
	Bound string

	// Occupancy is the fraction of the GPU's resident-warp capacity the
	// launch filled (min(1, warps / (SMs * residentWarps))).
	Occupancy float64
	// WarpIPC is warp-instructions retired per SM-cycle of kernel time —
	// 1.0 means the issue pipes never stalled.
	WarpIPC float64
}

// ReqThroughput is the requested-bytes throughput of the launch — the
// quantity the paper's Table I reports as GPU cache throughput.
func (r Result) ReqThroughput() units.BytesPerSecond {
	if r.Time <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(r.BytesRequested) / r.Time.Seconds())
}

// L1HitRate is the per-launch GPU L1 hit rate (eqn 2's hit_rate_L1_GPU).
func (r Result) L1HitRate() float64 { return r.L1.HitRate() }

// Launch executes the kernel and returns its timing and traffic. It is an
// error for lanes of one warp to diverge in opcode sequence, for the kernel
// to have no threads, or for a program to emit an invalid instruction.
//
// Warps are distributed round-robin over SMs. Each SM executes its warps in
// resident batches, interleaving instruction-by-instruction within a batch —
// the warp-scheduler behaviour that makes per-warp working sets contend for
// the SM's L1.
//
// Launch normally compiles the kernel's transaction trace and replays it
// through the batch cache kernels (the compiled artifact is scratch-reused,
// so a steady-state Launch allocates nothing). It falls back to the
// per-access reference executor under SetReferenceMode or a non-integral
// cost model; both paths produce byte-identical results, except that the
// compiled path reports emission errors before touching any cache state
// while the reference path may have executed earlier resident batches first.
func (g *GPU) Launch(k Kernel) (Result, error) {
	if g.refMode || !g.intCosts {
		return g.LaunchReference(k)
	}
	if err := g.CompileInto(k, &g.compileScratch); err != nil {
		return Result{}, err
	}
	return g.LaunchCompiled(&g.compileScratch)
}

// LaunchReference executes the kernel with the original per-access executor:
// emit every lane, walk every slot, push each coalesced transaction through
// the interface-dispatched cache path. It is the ground truth the compiled
// path is differentially tested against.
func (g *GPU) LaunchReference(k Kernel) (Result, error) {
	if k.Threads <= 0 {
		return Result{}, fmt.Errorf("kernel %s: thread count %d must be positive", k.Name, k.Threads)
	}
	if k.Program == nil {
		return Result{}, fmt.Errorf("kernel %s: nil program", k.Name)
	}

	// Snapshot counters so the result reports launch-only deltas.
	before := g.snapStats()
	for _, s := range g.sms {
		s.computeCycles = 0
		s.memLatency = 0
		s.warps = 0
	}

	var res Result
	warpCount := (k.Threads + g.cfg.WarpSize - 1) / g.cfg.WarpSize
	res.Warps = warpCount

	resident := g.resident()
	g.ensureLaneBuffers(resident)

	// Per-SM warp lists (round-robin assignment).
	for smIdx, s := range g.sms {
		for start := smIdx; start < warpCount; start += len(g.sms) * resident {
			// Collect this resident batch: warps start, start+SMs, ...
			batch := batch{}
			for w := start; w < warpCount && len(batch.warps) < resident; w += len(g.sms) {
				batch.warps = append(batch.warps, w)
			}
			if err := g.runBatch(k, s, &batch, &res); err != nil {
				return Result{}, err
			}
		}
	}

	g.finishResult(&res, before, warpCount, resident)
	return res, nil
}

// statSnap captures the traffic counters Launch reports deltas against.
type statSnap struct {
	l1     cache.Stats
	llc    cache.Stats
	dram   memdev.Stats
	pinned memdev.Stats
}

func (g *GPU) snapStats() statSnap {
	s := statSnap{l1: g.L1Stats(), llc: g.llc.Stats(), dram: g.dramPath.Stats()}
	if g.pinnedPath != nil {
		s.pinned = g.pinnedPath.Stats()
	}
	return s
}

func (g *GPU) resident() int {
	if g.cfg.ResidentWarps == 0 {
		return 16
	}
	return g.cfg.ResidentWarps
}

// finishResult applies the interval (roofline) model and the counter deltas.
// It is shared by the reference and compiled executors: both leave the
// per-SM accumulators (computeCycles, memLatency, warps) populated and the
// caches mutated, and this tail derives time, bound, occupancy and IPC.
func (g *GPU) finishResult(res *Result, before statSnap, warpCount, resident int) {
	var worstSM units.Latency
	var worstIsCompute bool
	mlp := g.cfg.WarpMLP
	if mlp == 0 {
		mlp = 8
	}
	for _, s := range g.sms {
		if s.warps == 0 {
			continue
		}
		compute := s.computeCycles.Lat(g.cfg.Freq)
		overlap := s.warps * mlp
		if overlap > g.cfg.MaxInflight {
			overlap = g.cfg.MaxInflight
		}
		mem := s.memLatency / units.Latency(overlap)
		smTime := compute
		isCompute := true
		if mem > smTime {
			smTime = mem
			isCompute = false
		}
		if smTime > worstSM {
			worstSM = smTime
			worstIsCompute = isCompute
		}
	}

	res.L1 = deltaCache(g.L1Stats(), before.l1)
	res.LLC = deltaCache(g.llc.Stats(), before.llc)
	res.DRAM = deltaMem(g.dramPath.Stats(), before.dram)
	if g.pinnedPath != nil {
		res.Pinned = deltaMem(g.pinnedPath.Stats(), before.pinned)
	}

	time := worstSM
	bound := "latency"
	if worstIsCompute {
		bound = "compute"
	}
	if t := bwTime(res.LLC.BytesIn, g.cfg.LLCBandwidth); t > time {
		time, bound = t, "llc-bw"
	}
	if t := bwTime(res.DRAM.Bytes(), g.cfg.DRAMBandwidth); t > time {
		time, bound = t, "dram-bw"
	}
	if t := bwTime(res.Pinned.Bytes(), g.pinnedBW); t > time {
		time, bound = t, "pinned-bw"
	}
	res.Time = time
	res.LaunchOverhead = g.cfg.LaunchOverhead
	res.Bound = bound

	capacity := float64(len(g.sms) * resident)
	res.Occupancy = float64(warpCount) / capacity
	if res.Occupancy > 1 {
		res.Occupancy = 1
	}
	if time > 0 {
		warpInstrs := float64(res.Instructions) / float64(g.cfg.WarpSize)
		smCycles := time.Seconds() * float64(g.cfg.Freq) * float64(len(g.sms))
		if smCycles > 0 {
			res.WarpIPC = warpInstrs / smCycles
		}
	}
}

type batch struct {
	warps []int // global warp indices resident together on one SM
	lanes []int // lane count per warp, parallel to warps
}

func (g *GPU) ensureLaneBuffers(resident int) {
	need := resident * g.cfg.WarpSize
	if len(g.laneProgs) < need {
		g.laneProgs = make([]isa.Program, need)
	}
	if len(g.laneIn) < need {
		g.laneIn = make([][]isa.Instr, need)
	}
}

// runBatch materializes the batch's lane programs, checks SIMT convergence,
// then executes the batch interleaved instruction-by-instruction.
func (g *GPU) runBatch(k Kernel, s *sm, b *batch, res *Result) error {
	ws := g.cfg.WarpSize
	b.lanes = b.lanes[:0]
	for bi, w := range b.warps {
		lanes := ws
		if last := k.Threads - w*ws; last < lanes {
			lanes = last
		}
		b.lanes = append(b.lanes, lanes)
		for l := 0; l < lanes; l++ {
			p := &g.laneProgs[bi*ws+l]
			p.Reset()
			k.Program(w*ws+l, p)
			g.laneIn[bi*ws+l] = p.Instrs()
		}
		// Convergence and validity check: all lanes must agree on each
		// slot's opcode, except that a lane may be masked off with a Nop
		// (predication — see isa.Program.PadTo).
		ref := g.laneIn[bi*ws]
		for i, in := range ref {
			if err := in.Validate(); err != nil {
				return fmt.Errorf("kernel %s: warp %d lane 0 instr %d: %w", k.Name, w, i, err)
			}
		}
		for l := 1; l < lanes; l++ {
			other := g.laneIn[bi*ws+l]
			if len(other) != len(ref) {
				return fmt.Errorf("kernel %s: warp %d diverges: lane 0 has %d instrs, lane %d has %d",
					k.Name, w, len(ref), l, len(other))
			}
			for i := range other {
				if other[i].Op != ref[i].Op && other[i].Op != isa.Nop && ref[i].Op != isa.Nop {
					return fmt.Errorf("kernel %s: warp %d instr %d diverges: lane 0 %s vs lane %d %s",
						k.Name, w, i, ref[i].Op, l, other[i].Op)
				}
			}
		}
		s.warps++
	}

	maxLen := 0
	for bi := range b.warps {
		if n := len(g.laneIn[bi*ws]); n > maxLen {
			maxLen = n
		}
	}

	lineSize := g.cfg.L1.LineSize
	// Coalescing scratch, reused across every warp-instruction: a lane can
	// touch at most two cache lines, and WC merging caps at one line per
	// lane, so these never regrow after the first warp.
	lineBuf := make([]int64, 0, 2*ws)
	wcBuf := make([]int64, 0, ws)
	for i := 0; i < maxLen; i++ {
		for bi := range b.warps {
			ref := g.laneIn[bi*ws]
			if i >= len(ref) {
				continue
			}
			lanes := b.lanes[bi]
			// The slot's opcode is the first non-Nop among the lanes
			// (masked lanes ride along, as on hardware).
			in := ref[i]
			if in.Op == isa.Nop {
				for l := 1; l < lanes; l++ {
					if cand := g.laneIn[bi*ws+l][i]; cand.Op != isa.Nop {
						in = cand
						break
					}
				}
			}
			res.Instructions += int64(lanes)
			s.computeCycles += g.cfg.Costs.Cost(in.Op)
			if !in.Op.IsMemory() {
				continue
			}
			kind := cache.Read
			if in.Op == isa.StGlobal {
				kind = cache.Write
			}

			// Split lanes into pinned and cacheable groups. Mixed warps
			// are legal (uniform opcode, arbitrary addresses); Nop lanes
			// are masked off.
			lineBuf = lineBuf[:0]
			wcBuf = wcBuf[:0]
			var wcBytes int64
			for l := 0; l < lanes; l++ {
				la := g.laneIn[bi*ws+l][i]
				if la.Op == isa.Nop {
					continue
				}
				res.BytesRequested += la.Size
				if g.pinned(la.Addr) {
					if kind == cache.Write {
						// Pinned writes go through the write-combining
						// buffer: lanes hitting the same 64B WC line merge
						// into one transaction.
						wcLine := la.Addr / 64
						if !containsInt64(wcBuf, wcLine) {
							wcBuf = append(wcBuf, wcLine)
							wcBytes += la.Size
						}
						continue
					}
					// Pinned reads: no coalescing, one narrow transaction
					// per lane — the uncached read path.
					if g.heat != nil {
						g.heat.Record(la.Addr, la.Size, false, true)
					}
					r := g.pinnedPath.Do(cache.Access{Addr: la.Addr, Size: la.Size, Kind: kind})
					s.memLatency += r.Latency
					res.Transactions++
					res.TransactionBytes += la.Size
					continue
				}
				// Cacheable: collect distinct lines for coalescing.
				first := la.Addr / lineSize
				last := (la.Addr + la.Size - 1) / lineSize
				for ln := first; ln <= last; ln++ {
					if !containsInt64(lineBuf, ln) {
						lineBuf = append(lineBuf, ln)
					}
				}
			}
			for _, wcLine := range wcBuf {
				size := wcBytes / int64(len(wcBuf))
				if size <= 0 {
					size = 4
				}
				if g.heat != nil {
					g.heat.Record(wcLine*64, size, true, true)
				}
				r := g.pinnedPath.Do(cache.Access{Addr: wcLine * 64, Size: size, Kind: cache.Write})
				s.memLatency += r.Latency
				res.Transactions++
				res.TransactionBytes += size
			}
			for _, ln := range lineBuf {
				r := s.l1.Do(cache.Access{Addr: ln * lineSize, Size: lineSize, Kind: kind})
				s.memLatency += r.Latency
				res.Transactions++
				res.TransactionBytes += lineSize
			}
		}
	}
	return nil
}

func bwTime(bytes int64, bw units.BytesPerSecond) units.Latency {
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	return units.Latency(float64(bytes) / float64(bw) * 1e9)
}

func containsInt64(s []int64, v int64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func deltaCache(now, before cache.Stats) cache.Stats {
	return cache.Stats{
		Reads:           now.Reads - before.Reads,
		Writes:          now.Writes - before.Writes,
		ReadHits:        now.ReadHits - before.ReadHits,
		WriteHits:       now.WriteHits - before.WriteHits,
		Evictions:       now.Evictions - before.Evictions,
		Writebacks:      now.Writebacks - before.Writebacks,
		WritebacksIn:    now.WritebacksIn - before.WritebacksIn,
		Flushes:         now.Flushes - before.Flushes,
		FlushWritebacks: now.FlushWritebacks - before.FlushWritebacks,
		Invalidates:     now.Invalidates - before.Invalidates,
		Bypasses:        now.Bypasses - before.Bypasses,
		BypassBytes:     now.BypassBytes - before.BypassBytes,
		BytesIn:         now.BytesIn - before.BytesIn,
	}
}

func deltaMem(now, before memdev.Stats) memdev.Stats {
	return memdev.Stats{
		Reads:        now.Reads - before.Reads,
		Writes:       now.Writes - before.Writes,
		Writebacks:   now.Writebacks - before.Writebacks,
		BytesRead:    now.BytesRead - before.BytesRead,
		BytesWritten: now.BytesWritten - before.BytesWritten,
	}
}

// String summarizes the launch for logs and CLIs.
func (r Result) String() string {
	return fmt.Sprintf("%v (%s-bound, %d warps, occ %.0f%%, ipc %.2f, %d txns, %s req)",
		r.Time.Duration(), r.Bound, r.Warps, r.Occupancy*100, r.WarpIPC,
		r.Transactions, units.FormatBytes(r.BytesRequested))
}
