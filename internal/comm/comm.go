// Package comm implements the three CPU-iGPU communication models the paper
// compares (Fig 1):
//
//   - SC, standard copy: CPU and GPU work on separate logical partitions of
//     the shared memory; the copy engine moves data across; caches stay
//     enabled; software coherence flushes them around each kernel.
//   - UM, unified memory: one managed allocation; the runtime migrates pages
//     on demand between the CPU and GPU sides.
//   - ZC, zero-copy: one pinned allocation accessed concurrently through
//     pointers; no copies; cache behaviour depends on the platform's
//     coherence hardware (see internal/soc); CPU and GPU tasks may overlap.
//
// Each model runs the same Workload on a soc.SoC and produces a Report with
// identical structure, so the framework and the experiments can compare them
// directly.
package comm

import (
	"fmt"

	"igpucomm/internal/cpu"
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/hazard"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// BufferSpec names one shared buffer and its size.
type BufferSpec struct {
	Name string
	Size int64
}

// Layout maps buffer names to their placement for the current run. A
// workload's tasks address memory through it, so the same workload runs
// unmodified under every model.
type Layout map[string]mmu.Buffer

// Addr returns the base address of a named buffer; it panics on unknown
// names because a workload referencing a buffer it never declared is a bug.
func (l Layout) Addr(name string) int64 {
	b, ok := l[name]
	if !ok {
		panic(fmt.Sprintf("comm: workload references undeclared buffer %q", name))
	}
	return b.Addr
}

// Buffer returns the full buffer record.
func (l Layout) Buffer(name string) mmu.Buffer {
	b, ok := l[name]
	if !ok {
		panic(fmt.Sprintf("comm: workload references undeclared buffer %q", name))
	}
	return b
}

// Workload is one iteration of a CPU+GPU application.
type Workload struct {
	Name string

	// In buffers are produced by the CPU and consumed by the GPU kernel
	// (host-to-device under SC). Out buffers flow the other way.
	In  []BufferSpec
	Out []BufferSpec
	// Scratch buffers are GPU-side working storage (camera DMA targets,
	// image pyramids, intermediate maps): the kernels read and write them
	// but they are never transferred. SC places them in the device
	// partition, UM leaves them GPU-resident, ZC pins them — which is why
	// a scratch-heavy kernel collapses on a ZC path without coherence
	// hardware (the ORB-SLAM case, Table V).
	Scratch []BufferSpec

	// CPUTask is the CPU-side producer work (runs before the kernels).
	CPUTask func(c *cpu.CPU, lay Layout)
	// CPUPost is optional CPU-side consumer work (runs after the kernels).
	CPUPost func(c *cpu.CPU, lay Layout)
	// MakeKernel builds GPU launch number `launch` (0-based) against the
	// layout. Applications that process a frame in several launches (the
	// paper's case studies do) return a different slice of work per launch.
	MakeKernel func(lay Layout, launch int) gpu.Kernel
	// Launches is the number of kernel launches per iteration; 0 means 1.
	// Under SC, each launch copies its 1/Launches share of the In buffers
	// before and of the Out buffers after (stripe processing), which is
	// what makes "copy time per kernel" a meaningful profile quantity.
	Launches int

	// Overlappable marks the CPU task and GPU kernel as independent within
	// an iteration (producer/consumer on *different* phases), so the
	// zero-copy model may run them concurrently using the tiled access
	// pattern of §III-C.
	Overlappable bool

	// UMPrefetch opts the unified-memory model into driver prefetching
	// (cudaMemPrefetchAsync): migrations still move the bytes but skip the
	// per-page demand-fault overhead — an extension beyond the paper's
	// on-demand UM.
	UMPrefetch bool

	// Warmup runs the iteration this many times before the measured run,
	// so caches reach steady state (how the paper's micro-benchmarks
	// measure peak behaviour).
	Warmup int
}

// Validate reports structural problems with the workload.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("comm: workload needs a name")
	}
	if w.MakeKernel == nil {
		return fmt.Errorf("comm: workload %s: nil MakeKernel", w.Name)
	}
	if w.CPUTask == nil {
		return fmt.Errorf("comm: workload %s: nil CPUTask", w.Name)
	}
	if len(w.In)+len(w.Out) == 0 {
		return fmt.Errorf("comm: workload %s: no shared buffers", w.Name)
	}
	seen := make(map[string]bool)
	all := append(append(append([]BufferSpec{}, w.In...), w.Out...), w.Scratch...)
	for _, b := range all {
		if b.Size <= 0 {
			return fmt.Errorf("comm: workload %s: buffer %q has size %d", w.Name, b.Name, b.Size)
		}
		if seen[b.Name] {
			return fmt.Errorf("comm: workload %s: duplicate buffer %q", w.Name, b.Name)
		}
		seen[b.Name] = true
	}
	if w.Warmup < 0 {
		return fmt.Errorf("comm: workload %s: negative warmup", w.Name)
	}
	if w.Launches < 0 {
		return fmt.Errorf("comm: workload %s: negative launch count", w.Name)
	}
	return nil
}

// LaunchCount returns the effective number of kernel launches (>= 1).
func (w Workload) LaunchCount() int {
	if w.Launches <= 0 {
		return 1
	}
	return w.Launches
}

// BytesIn and BytesOut total the declared transfer sizes.
func (w Workload) BytesIn() int64 {
	var n int64
	for _, b := range w.In {
		n += b.Size
	}
	return n
}

// BytesOut totals the GPU-to-CPU buffer sizes.
func (w Workload) BytesOut() int64 {
	var n int64
	for _, b := range w.Out {
		n += b.Size
	}
	return n
}

// Report is the outcome of running a workload under one model.
type Report struct {
	Model    string
	Platform string
	Workload string

	// Total is the end-to-end iteration time.
	Total units.Latency
	// CPUTime is the CPU task (+post) time alone.
	CPUTime units.Latency
	// KernelTime is the total GPU kernel execution time across launches
	// (profiler-style: launch overhead excluded).
	KernelTime units.Latency
	// LaunchTime is the accumulated software launch overhead.
	LaunchTime units.Latency
	// Launches is the number of kernel launches in the iteration.
	Launches int
	// CopyTime is explicit copy time (SC) or migration time (UM); zero
	// for ZC — that is the point.
	CopyTime units.Latency
	// FlushTime is software-coherence cache maintenance time (SC only).
	FlushTime units.Latency
	// Overlapped reports whether CPU and GPU ran concurrently (ZC pattern).
	Overlapped bool
	// OverlapCapable records the workload's Overlappable flag, so the
	// advisor knows whether eqn 3's task-overlap credit applies.
	OverlapCapable bool

	// GPU carries the kernel's detailed traffic counters.
	GPU gpu.Result
	// CPUL1MissRate / CPULLCMissRate profile the CPU task (eqn 1 inputs).
	CPUL1MissRate  float64
	CPULLCMissRate float64
	// CPUL1Misses and CPUInstrs allow the instruction-normalized cache
	// usage variant (what density sweeps and the framework thresholds use).
	CPUL1Misses int64
	CPUInstrs   int64

	// DRAMBytes is total DRAM traffic for the iteration; CopyBytes the
	// copy-engine share of it.
	DRAMBytes int64
	CopyBytes int64

	// DeclaredBytesIn/Out are the workload's declared transfer volumes
	// (what SC would copy), kept so the advisor can price a model switch.
	DeclaredBytesIn  int64
	DeclaredBytesOut int64

	// Energy summarizes the run for the power model.
	Energy energy.Activity

	// Hazards is the verifier's report when the run went through the
	// checked mode (CheckedRun / the Checked wrapper); nil otherwise. A
	// non-nil report with zero findings is a machine-checked statement
	// that the schedule and layout this run used are race-free.
	Hazards *hazard.Report

	// BufferHeat is the per-buffer heat snapshot of the measured iteration,
	// hottest first; nil unless the platform ran with heat profiling enabled
	// (soc.EnableHeat). Heat recording never perturbs the timings above.
	BufferHeat []heatmap.BufferHeat
}

// KernelTimePer is the mean time of one kernel launch.
func (r Report) KernelTimePer() units.Latency {
	if r.Launches <= 0 {
		return r.KernelTime
	}
	return r.KernelTime / units.Latency(r.Launches)
}

// CopyTimePer is the mean copy (or migration) time attributable to one
// kernel launch — the paper's "copy time per kernel".
func (r Report) CopyTimePer() units.Latency {
	if r.Launches <= 0 {
		return r.CopyTime
	}
	return r.CopyTime / units.Latency(r.Launches)
}

// Throughput is the end-to-end processing rate in iterations per second.
func (r Report) Throughput() float64 {
	if r.Total <= 0 {
		return 0
	}
	return 1 / r.Total.Seconds()
}

// Model is one communication model.
type Model interface {
	Name() string
	// Run executes the workload on the platform and reports timings. The
	// platform's state is reset at entry; buffers the model allocates are
	// freed before returning.
	Run(s *soc.SoC, w Workload) (Report, error)
}

// Models returns the three paper models in presentation order.
func Models() []Model { return []Model{SC{}, UM{}, ZC{}} }

// AllModels additionally includes the extensions beyond the paper (the
// double-buffered sc-async and the copied-in/pinned-out hybrid).
func AllModels() []Model { return []Model{SC{}, SCAsync{}, UM{}, ZC{}, Hybrid{}} }

// ByName resolves a model by its short name ("sc", "sc-async", "um", "zc",
// "hybrid").
func ByName(name string) (Model, error) {
	for _, m := range AllModels() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("comm: unknown model %q (have sc, sc-async, um, zc, hybrid)", name)
}

// AllocGroup is one allocation batch in a model's placement plan: which
// buffer specs it places, with what kind, and which side's view of the
// workload the resulting layout backs. Every model's Run allocates exactly
// its AllocPlan, so the verifier reasons about the same placement the
// execution uses.
type AllocGroup struct {
	// Prefix distinguishes the group's buffer names ("host-", "dev-", ...).
	Prefix string
	// Kind is the mmu allocation kind for every buffer in the group.
	Kind mmu.Kind
	// Specs are the buffers the group places.
	Specs []BufferSpec
	// CPUVisible and GPUVisible say whether this group's layout backs the
	// CPU task's view and the kernels' view of the named buffers.
	CPUVisible, GPUVisible bool
}

// Planner exposes a model's placement plan without executing it — what the
// hazard verifier mirrors. Every communication model implements it.
type Planner interface {
	AllocPlan(w Workload) []AllocGroup
}

// allocPlan materializes a placement plan group by group. It returns one
// Layout per group, in plan order, plus the allocated names for cleanup.
func allocPlan(s *soc.SoC, wName string, plan []AllocGroup) ([]Layout, []string, error) {
	lays := make([]Layout, 0, len(plan))
	var all []string
	for _, g := range plan {
		lay, names, err := allocAll(s, wName, g.Specs, g.Kind, g.Prefix)
		if err != nil {
			freeAll(s, all)
			return nil, nil, err
		}
		lays = append(lays, lay)
		all = append(all, names...)
	}
	return lays, all, nil
}

// planViews merges a plan's layouts into the CPU-side and GPU-side views of
// the workload's buffers (later groups win on name collisions, matching the
// hybrid model's host+pinned / device+pinned composition).
func planViews(plan []AllocGroup, lays []Layout) (cpuLay, gpuLay Layout) {
	cpuLay, gpuLay = Layout{}, Layout{}
	for i, g := range plan {
		for name, b := range lays[i] {
			if g.CPUVisible {
				cpuLay[name] = b
			}
			if g.GPUVisible {
				gpuLay[name] = b
			}
		}
	}
	return cpuLay, gpuLay
}

// allocAll places the given buffers with one kind, returning the layout.
// Buffer names are prefixed with the workload name to stay unique. Zero- or
// negative-sized and duplicate specs are rejected here — before any space
// is carved — so a malformed spec list cannot corrupt the layout.
func allocAll(s *soc.SoC, wName string, specs []BufferSpec, kind mmu.Kind, prefix string) (Layout, []string, error) {
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if spec.Size <= 0 {
			return nil, nil, fmt.Errorf("comm: alloc %s/%s%s: buffer size %d must be positive",
				wName, prefix, spec.Name, spec.Size)
		}
		if seen[spec.Name] {
			return nil, nil, fmt.Errorf("comm: alloc %s/%s%s: duplicate buffer spec", wName, prefix, spec.Name)
		}
		seen[spec.Name] = true
	}
	lay := make(Layout, len(specs))
	var names []string
	for _, spec := range specs {
		full := wName + "/" + prefix + spec.Name
		var (
			b   mmu.Buffer
			err error
		)
		switch kind {
		case mmu.HostAlloc:
			b, err = s.AllocHost(full, spec.Size)
		case mmu.DeviceAlloc:
			b, err = s.AllocDevice(full, spec.Size)
		case mmu.Pinned:
			b, err = s.AllocPinned(full, spec.Size)
		case mmu.Managed:
			b, err = s.AllocManaged(full, spec.Size)
		}
		if err != nil {
			freeAll(s, names)
			return nil, nil, err
		}
		lay[spec.Name] = b
		names = append(names, full)
	}
	// The allocator's invariants (live buffers pairwise disjoint, free list
	// consistent) hold by construction; check them anyway so a future
	// allocator bug surfaces here instead of as silent layout corruption.
	if err := s.Space.Validate(); err != nil {
		freeAll(s, names)
		return nil, nil, fmt.Errorf("comm: alloc %s: %w", wName, err)
	}
	return lay, names, nil
}

func freeAll(s *soc.SoC, names []string) {
	for _, n := range names {
		_ = s.Free(n) // best-effort cleanup; names came from allocAll
	}
}

// transferSpecs returns the buffers SC copies and UM migrates (In + Out;
// Scratch never moves).
func transferSpecs(w Workload) []BufferSpec {
	return append(append([]BufferSpec{}, w.In...), w.Out...)
}

// allSpecs returns every buffer the kernels may address.
func allSpecs(w Workload) []BufferSpec {
	return append(transferSpecs(w), w.Scratch...)
}

// stripe returns the byte range of launch l's share of a buffer split into
// n stripes (the last stripe absorbs the remainder).
func stripe(b mmu.Buffer, l, n int) (addr, size int64) {
	share := b.Size / int64(n)
	addr = b.Addr + int64(l)*share
	size = share
	if l == n-1 {
		size = b.Size - int64(l)*share
	}
	return addr, size
}

// mergeGPU accumulates launch b into the iteration total a. Time adds; the
// traffic counters add; Bound keeps the most recent launch's verdict.
func mergeGPU(a *gpu.Result, b gpu.Result) {
	a.Time += b.Time
	a.LaunchOverhead += b.LaunchOverhead
	a.Warps += b.Warps
	a.Instructions += b.Instructions
	a.Transactions += b.Transactions
	a.TransactionBytes += b.TransactionBytes
	a.BytesRequested += b.BytesRequested
	a.L1.Add(b.L1)
	a.LLC.Add(b.LLC)
	a.DRAM.Add(b.DRAM)
	a.Pinned.Add(b.Pinned)
	a.Bound = b.Bound
}

// cpuTaskStats profiles one CPU task execution.
type cpuTaskStats struct {
	elapsed    units.Latency
	l1MissRate float64
	llcMiss    float64
	l1Misses   int64
	instrs     int64
}

// timeCPU runs f against the CPU model and returns its elapsed time along
// with the cache counters the performance model consumes.
func timeCPU(s *soc.SoC, f func(c *cpu.CPU, lay Layout), lay Layout) cpuTaskStats {
	if f == nil {
		return cpuTaskStats{}
	}
	c := s.CPU
	l1Before, llcBefore := c.L1().Stats(), c.LLC().Stats()
	instrBefore := c.Instructions()
	start := c.Elapsed()
	f(c, lay)
	out := cpuTaskStats{
		elapsed: c.Elapsed() - start,
		instrs:  c.Instructions() - instrBefore,
	}
	l1 := c.L1().Stats()
	llc := c.LLC().Stats()
	out.l1Misses = l1.Misses() - l1Before.Misses()
	if d := l1.Accesses() - l1Before.Accesses(); d > 0 {
		out.l1MissRate = float64(out.l1Misses) / float64(d)
	}
	if d := llc.Accesses() - llcBefore.Accesses(); d > 0 {
		out.llcMiss = float64(llc.Misses()-llcBefore.Misses()) / float64(d)
	}
	return out
}

// String summarizes the run for logs and CLIs.
func (r Report) String() string {
	return fmt.Sprintf("%s/%s under %s: total %v (cpu %v, kernels %v x%d, copies %v, flushes %v, launch %v)",
		r.Platform, r.Workload, r.Model, r.Total.Duration(),
		r.CPUTime.Duration(), r.KernelTime.Duration(), r.Launches,
		r.CopyTime.Duration(), r.FlushTime.Duration(), r.LaunchTime.Duration())
}

// resetHeat zeroes the platform's heat accumulator (if profiling is on) so
// each warmup iteration starts clean and the measured iteration's snapshot
// reflects only itself.
func resetHeat(s *soc.SoC) {
	if h := s.Heat(); h != nil {
		h.Reset()
	}
}

// captureHeat snapshots the per-buffer heat of the just-finished iteration
// into the report. A no-op (leaving BufferHeat nil) when heat profiling is
// off, so default runs stay byte-identical.
func captureHeat(s *soc.SoC, rep *Report) {
	h := s.Heat()
	if h == nil {
		return
	}
	rep.BufferHeat = h.Snapshot(s.Space.Buffers())
}
