package comm

import (
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// SCAsync is an extension beyond the paper's three models: standard copy
// with CUDA-streams-style double buffering. The copy engine and the GPU are
// separate resources, so launch l's kernel overlaps launch l+1's input copy
// and launch l-1's output copy — hiding transfer time behind compute the way
// production ports do once the synchronous SC version works.
//
// It exists to show the framework generalizes: the advisor's copy-time
// accounting prices exactly the component this model hides, so an
// application whose verdict was "switch to ZC for the copy savings" may
// instead keep cached memory and pipeline the copies.
type SCAsync struct{}

// Name returns "sc-async".
func (SCAsync) Name() string { return "sc-async" }

// AllocPlan matches SC's placement: host partition for transfers, device
// partition for everything the kernels address. Double buffering changes
// the timeline, not the layout.
func (SCAsync) AllocPlan(w Workload) []AllocGroup {
	return []AllocGroup{
		{Prefix: "host-", Kind: mmu.HostAlloc, Specs: transferSpecs(w), CPUVisible: true},
		{Prefix: "dev-", Kind: mmu.DeviceAlloc, Specs: allSpecs(w), GPUVisible: true},
	}
}

// Run executes the workload under double-buffered standard copy.
func (SCAsync) Run(s *soc.SoC, w Workload) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	s.ResetState()
	lays, names, err := allocPlan(s, w.Name, SCAsync{}.AllocPlan(w))
	if err != nil {
		return Report{}, err
	}
	defer freeAll(s, names)
	hostLay, devLay := lays[0], lays[1]

	var rep Report
	lch := gpu.NewLauncher(s.GPU, "sc-async/"+w.Name)
	for i := 0; i <= w.Warmup; i++ {
		measured := i == w.Warmup
		resetHeat(s)
		r, err := scAsyncIteration(s, w, hostLay, devLay, lch)
		if err != nil {
			return Report{}, err
		}
		if measured {
			rep = r
		}
	}
	captureHeat(s, &rep)
	rep.Model = SCAsync{}.Name()
	rep.Platform = s.Name()
	rep.Workload = w.Name
	rep.DeclaredBytesIn = w.BytesIn()
	rep.DeclaredBytesOut = w.BytesOut()
	rep.OverlapCapable = w.Overlappable
	return rep, nil
}

func scAsyncIteration(s *soc.SoC, w Workload, hostLay, devLay Layout, lch *gpu.Launcher) (Report, error) {
	dramBefore := s.DRAM.Stats()
	copyBefore := s.CopyBytes()

	var rep Report

	task := timeCPU(s, w.CPUTask, hostLay)
	rep.CPUTime = task.elapsed
	rep.CPUL1MissRate = task.l1MissRate
	rep.CPULLCMissRate = task.llcMiss
	rep.CPUL1Misses = task.l1Misses
	rep.CPUInstrs = task.instrs

	// One producer-side flush: the CPU is done with the inputs before the
	// pipeline starts (output stripes are flushed per launch below).
	flushStart := s.CPU.Elapsed()
	for _, spec := range w.In {
		b := hostLay.Buffer(spec.Name)
		s.CPU.FlushRange(b.Addr, b.End())
	}
	rep.FlushTime += s.CPU.Elapsed() - flushStart

	launches := w.LaunchCount()
	rep.Launches = launches

	// Measure the per-launch stage times, then compose the two-resource
	// pipeline (copy engine vs GPU).
	copyIn := make([]units.Latency, launches)
	copyOut := make([]units.Latency, launches)
	kern := make([]units.Latency, launches)
	for l := 0; l < launches; l++ {
		for _, spec := range w.In {
			_, size := stripe(hostLay.Buffer(spec.Name), l, launches)
			copyIn[l] += s.Copy(size)
		}
		res, err := lch.Launch(l, w.MakeKernel(devLay, l))
		if err != nil {
			return Report{}, err
		}
		mergeGPU(&rep.GPU, res)
		kern[l] = res.Time
		rep.KernelTime += res.Time
		rep.LaunchTime += res.LaunchOverhead

		for _, spec := range transferSpecs(w) {
			b := devLay.Buffer(spec.Name)
			_, cost := s.GPU.FlushRange(b.Addr, b.End(), GPUFlushLineCost)
			rep.FlushTime += cost
		}
		for _, spec := range w.Out {
			_, size := stripe(hostLay.Buffer(spec.Name), l, launches)
			copyOut[l] += s.Copy(size)
		}
		rep.CopyTime += copyIn[l] + copyOut[l]
	}

	// Two-resource pipeline: the GPU runs kernel l while the copy engine
	// moves launch l+1's inputs and launch l-1's outputs. Model each as a
	// ready-time recurrence.
	var engineFree, gpuFree units.Latency
	for l := 0; l < launches; l++ {
		// Input copy for launch l occupies the engine.
		inDone := engineFree + copyIn[l]
		engineFree = inDone
		// Kernel l starts when its input is there and the GPU is free.
		start := inDone
		if gpuFree > start {
			start = gpuFree
		}
		gpuFree = start + kern[l]
		// Output copy for launch l queues on the engine after the kernel.
		outStart := gpuFree
		if engineFree > outStart {
			outStart = engineFree
		}
		engineFree = outStart + copyOut[l]
	}
	pipeline := engineFree
	if gpuFree > pipeline {
		pipeline = gpuFree
	}

	rep.Overlapped = true
	rep.Total = rep.CPUTime + rep.FlushTime + pipeline + rep.LaunchTime

	post := timeCPU(s, w.CPUPost, hostLay)
	rep.CPUTime += post.elapsed
	rep.Total += post.elapsed

	rep.DRAMBytes = s.DRAM.Stats().Bytes() - dramBefore.Bytes()
	rep.CopyBytes = s.CopyBytes() - copyBefore
	rep.Energy = energy.Activity{
		Runtime:   rep.Total,
		CPUBusy:   rep.CPUTime + rep.FlushTime + rep.LaunchTime,
		GPUBusy:   rep.KernelTime,
		DRAMBytes: rep.DRAMBytes,
		CopyBytes: rep.CopyBytes,
	}
	return rep, nil
}
