package comm

import (
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// SC is the standard-copy model (paper Fig 1.c): the shared physical memory
// is partitioned into CPU and GPU logical spaces, the copy engine moves
// buffers across, all caches stay enabled, and software coherence flushes
// them around every kernel launch. CPU and GPU tasks are serialized.
type SC struct{}

// Name returns "sc".
func (SC) Name() string { return "sc" }

// GPUFlushLineCost is the per-line walk cost of the post-kernel GPU cache
// flush, in ns.
const GPUFlushLineCost units.Latency = 2

// AllocPlan places the transfer buffers in the host partition and every
// buffer the kernels address — transfers plus scratch — in the device
// partition. The CPU task sees the host copies, the kernels the device ones.
func (SC) AllocPlan(w Workload) []AllocGroup {
	return []AllocGroup{
		{Prefix: "host-", Kind: mmu.HostAlloc, Specs: transferSpecs(w), CPUVisible: true},
		{Prefix: "dev-", Kind: mmu.DeviceAlloc, Specs: allSpecs(w), GPUVisible: true},
	}
}

// Run executes the workload under standard copy.
func (SC) Run(s *soc.SoC, w Workload) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	s.ResetState()
	lays, names, err := allocPlan(s, w.Name, SC{}.AllocPlan(w))
	if err != nil {
		return Report{}, err
	}
	defer freeAll(s, names)
	hostLay, devLay := lays[0], lays[1]

	var rep Report
	lch := gpu.NewLauncher(s.GPU, "sc/"+w.Name)
	for i := 0; i <= w.Warmup; i++ {
		measured := i == w.Warmup
		resetHeat(s)
		r, err := scIteration(s, w, hostLay, devLay, lch)
		if err != nil {
			return Report{}, err
		}
		if measured {
			rep = r
		}
	}
	captureHeat(s, &rep)
	rep.Model = SC{}.Name()
	rep.Platform = s.Name()
	rep.Workload = w.Name
	rep.DeclaredBytesIn = w.BytesIn()
	rep.DeclaredBytesOut = w.BytesOut()
	rep.OverlapCapable = w.Overlappable
	return rep, nil
}

func scIteration(s *soc.SoC, w Workload, hostLay, devLay Layout, lch *gpu.Launcher) (Report, error) {
	dramBefore := s.DRAM.Stats()
	copyBefore := s.CopyBytes()

	var rep Report

	// 1. CPU produces the inputs in its own partition.
	task := timeCPU(s, w.CPUTask, hostLay)
	rep.CPUTime = task.elapsed
	rep.CPUL1MissRate = task.l1MissRate
	rep.CPULLCMissRate = task.llcMiss
	rep.CPUL1Misses = task.l1Misses
	rep.CPUInstrs = task.instrs

	// 2-6. One striped copy-kernel-copy round per launch, with software
	// coherence flushes around every kernel (the SC protocol).
	launches := w.LaunchCount()
	rep.Launches = launches
	for l := 0; l < launches; l++ {
		// Flush the shared buffers out of the CPU caches (maintenance by
		// VA) so the copy engine (and the GPU) observe the produced data.
		// Private CPU working sets stay cached — real drivers flush
		// ranges, not the whole hierarchy.
		flushStart := s.CPU.Elapsed()
		for _, spec := range transferSpecs(w) {
			b := hostLay.Buffer(spec.Name)
			s.CPU.FlushRange(b.Addr, b.End())
		}
		rep.FlushTime += s.CPU.Elapsed() - flushStart

		// Copy this launch's input stripes host -> device.
		for _, spec := range w.In {
			_, size := stripe(hostLay.Buffer(spec.Name), l, launches)
			rep.CopyTime += s.Copy(size)
		}

		res, err := lch.Launch(l, w.MakeKernel(devLay, l))
		if err != nil {
			return Report{}, err
		}
		mergeGPU(&rep.GPU, res)
		rep.KernelTime += res.Time
		rep.LaunchTime += res.LaunchOverhead

		// Flush the shared buffers out of the GPU caches so the copy
		// engine (and the CPU) observe the results.
		for _, spec := range transferSpecs(w) {
			b := devLay.Buffer(spec.Name)
			_, gpuFlushCost := s.GPU.FlushRange(b.Addr, b.End(), GPUFlushLineCost)
			rep.FlushTime += gpuFlushCost
		}

		// Copy this launch's output stripes device -> host.
		for _, spec := range w.Out {
			_, size := stripe(hostLay.Buffer(spec.Name), l, launches)
			rep.CopyTime += s.Copy(size)
		}
	}

	// 7. Optional CPU consumer work.
	post := timeCPU(s, w.CPUPost, hostLay)
	rep.CPUTime += post.elapsed

	rep.Total = rep.CPUTime + rep.FlushTime + rep.CopyTime + rep.KernelTime + rep.LaunchTime
	rep.DRAMBytes = s.DRAM.Stats().Bytes() - dramBefore.Bytes()
	rep.CopyBytes = s.CopyBytes() - copyBefore
	rep.Energy = energy.Activity{
		Runtime:   rep.Total,
		CPUBusy:   rep.CPUTime + rep.FlushTime + rep.LaunchTime,
		GPUBusy:   rep.KernelTime,
		DRAMBytes: rep.DRAMBytes,
		CopyBytes: rep.CopyBytes,
	}
	return rep, nil
}
