package comm

import (
	"strings"
	"testing"

	"igpucomm/internal/cpu"
	"igpucomm/internal/devices"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// streamWorkload builds a simple producer/consumer workload: the CPU writes
// n floats into "in", the GPU reads them and writes n floats to "out".
func streamWorkload(n int64, overlappable bool) Workload {
	size := n * 4
	return Workload{
		Name: "stream",
		In:   []BufferSpec{{Name: "in", Size: size}},
		Out:  []BufferSpec{{Name: "out", Size: size}},
		CPUTask: func(c *cpu.CPU, lay Layout) {
			base := lay.Addr("in")
			for i := int64(0); i < n; i += 16 { // one store per line
				c.Store(base+i*4, 4)
				c.Work(isa.MulF32, 2)
			}
		},
		MakeKernel: func(lay Layout, launch int) gpu.Kernel {
			in, out := lay.Addr("in"), lay.Addr("out")
			return gpu.Kernel{
				Name:    "stream",
				Threads: int(n),
				Program: func(tid int, p *isa.Program) {
					p.Ld(in+int64(tid)*4, 4)
					p.Compute(isa.FMA, 2)
					p.St(out+int64(tid)*4, 4)
				},
			}
		},
		Overlappable: overlappable,
		Warmup:       1,
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := streamWorkload(1024, false)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := map[string]func(*Workload){
		"no name":     func(w *Workload) { w.Name = "" },
		"nil kernel":  func(w *Workload) { w.MakeKernel = nil },
		"nil cputask": func(w *Workload) { w.CPUTask = nil },
		"no buffers":  func(w *Workload) { w.In, w.Out = nil, nil },
		"zero size":   func(w *Workload) { w.In[0].Size = 0 },
		"dup name":    func(w *Workload) { w.Out[0].Name = "in" },
		"neg warmup":  func(w *Workload) { w.Warmup = -1 },
	}
	for name, mut := range cases {
		w := streamWorkload(1024, false)
		mut(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWorkloadByteTotals(t *testing.T) {
	w := streamWorkload(1024, false)
	if w.BytesIn() != 4096 || w.BytesOut() != 4096 {
		t.Errorf("bytes in/out = %d/%d, want 4096/4096", w.BytesIn(), w.BytesOut())
	}
}

func TestLayoutPanicsOnUnknown(t *testing.T) {
	lay := Layout{}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown buffer name accepted")
		}
	}()
	lay.Addr("ghost")
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sc", "um", "zc"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("dma"); err == nil {
		t.Error("unknown model accepted")
	}
	if len(Models()) != 3 {
		t.Error("Models() should return the three paper models")
	}
}

func TestSCReportStructure(t *testing.T) {
	s := soc.New(devices.TX2())
	rep, err := SC{}.Run(s, streamWorkload(4096, false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "sc" || rep.Platform != devices.TX2Name || rep.Workload != "stream" {
		t.Errorf("identity fields wrong: %+v", rep)
	}
	if rep.CopyTime <= 0 {
		t.Error("SC must report copy time")
	}
	if rep.CopyBytes != 2*4096*4 {
		t.Errorf("copy bytes = %d, want both buffers = %d", rep.CopyBytes, 2*4096*4)
	}
	if rep.FlushTime <= 0 {
		t.Error("SC must pay software-coherence flushes")
	}
	if rep.KernelTime <= 0 || rep.CPUTime <= 0 {
		t.Error("missing component times")
	}
	if rep.Total != rep.CPUTime+rep.FlushTime+rep.CopyTime+rep.KernelTime+rep.LaunchTime {
		t.Error("SC total is not the serialized sum")
	}
	if rep.LaunchTime <= 0 {
		t.Error("launch overhead not accounted")
	}
	if rep.Overlapped {
		t.Error("SC cannot overlap")
	}
	if rep.Energy.Runtime != rep.Total || rep.Energy.CopyBytes != rep.CopyBytes {
		t.Error("energy activity inconsistent")
	}
}

func TestUMMigratesInsteadOfCopying(t *testing.T) {
	s := soc.New(devices.TX2())
	rep, err := UM{}.Run(s, streamWorkload(4096, false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "um" {
		t.Errorf("model = %q", rep.Model)
	}
	if rep.CopyTime <= 0 {
		t.Error("UM must report migration time as copy time")
	}
	if rep.CopyBytes <= 0 {
		t.Error("UM must migrate bytes on the warm iteration (ping-pong)")
	}
	if rep.FlushTime != 0 {
		t.Error("UM does not flush caches")
	}
}

func TestZCNeverCopies(t *testing.T) {
	s := soc.New(devices.TX2())
	rep, err := ZC{}.Run(s, streamWorkload(4096, false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CopyTime != 0 || rep.CopyBytes != 0 || rep.FlushTime != 0 {
		t.Errorf("ZC paid copy/flush costs: %+v", rep)
	}
	if rep.Total != rep.CPUTime+rep.KernelTime+rep.LaunchTime {
		t.Error("non-overlappable ZC total should be serialized sum")
	}
}

func TestZCOverlapShortensTotal(t *testing.T) {
	s := soc.New(devices.Xavier())
	serial, err := ZC{}.Run(s, streamWorkload(1<<15, false))
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := ZC{}.Run(s, streamWorkload(1<<15, true))
	if err != nil {
		t.Fatal(err)
	}
	if !overlapped.Overlapped {
		t.Fatal("overlappable workload did not overlap")
	}
	if overlapped.Total >= serial.Total {
		t.Errorf("overlap total %v not below serial %v", overlapped.Total, serial.Total)
	}
	// Overlap can never beat the slower of the two tasks.
	floor := overlapped.CPUTime
	if overlapped.KernelTime > floor {
		floor = overlapped.KernelTime
	}
	if overlapped.Total < floor {
		t.Errorf("overlap total %v below max component %v", overlapped.Total, floor)
	}
}

func TestZCKernelSlowdownOnTX2VsXavier(t *testing.T) {
	// The same cache-friendly kernel must lose far more from ZC on TX2
	// (uncached pinned path) than on Xavier (I/O-coherent path).
	w := streamWorkload(1<<14, false)
	ratios := make(map[string]float64)
	for _, cfg := range []string{devices.TX2Name, devices.XavierName} {
		s, err := devices.NewSoC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := SC{}.Run(s, w)
		if err != nil {
			t.Fatal(err)
		}
		zc, err := ZC{}.Run(s, w)
		if err != nil {
			t.Fatal(err)
		}
		ratios[cfg] = float64(zc.KernelTime) / float64(sc.KernelTime)
	}
	if ratios[devices.TX2Name] <= ratios[devices.XavierName] {
		t.Errorf("ZC kernel penalty TX2 %.2fx should exceed Xavier %.2fx",
			ratios[devices.TX2Name], ratios[devices.XavierName])
	}
}

func TestModelsRejectInvalidWorkload(t *testing.T) {
	s := soc.New(devices.TX2())
	bad := streamWorkload(1024, false)
	bad.Name = ""
	for _, m := range Models() {
		if _, err := m.Run(s, bad); err == nil {
			t.Errorf("%s accepted invalid workload", m.Name())
		}
	}
}

func TestModelsRejectDivergentKernel(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(1024, false)
	w.MakeKernel = func(lay Layout, launch int) gpu.Kernel {
		return gpu.Kernel{Name: "div", Threads: 32, Program: func(tid int, p *isa.Program) {
			p.Compute(isa.FMA, 1+tid%2)
		}}
	}
	for _, m := range Models() {
		if _, err := m.Run(s, w); err == nil || !strings.Contains(err.Error(), "diverges") {
			t.Errorf("%s: divergence error missing, got %v", m.Name(), err)
		}
	}
}

func TestSequentialRunsIndependent(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	r1, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != r2.Total {
		t.Errorf("repeat run differs: %v vs %v (state leak)", r1.Total, r2.Total)
	}
}

func TestMultiLaunchStripesCopies(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	w.Launches = 4
	w.MakeKernel = func(lay Layout, launch int) gpu.Kernel {
		in, out := lay.Addr("in"), lay.Addr("out")
		per := 4096 / 4
		return gpu.Kernel{
			Name:    "stripe",
			Threads: per,
			Program: func(tid int, p *isa.Program) {
				off := int64(launch*per+tid) * 4
				p.Ld(in+off, 4)
				p.St(out+off, 4)
			},
		}
	}
	rep, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 4 {
		t.Errorf("launches = %d, want 4", rep.Launches)
	}
	// Striped copies still move every byte exactly once.
	if rep.CopyBytes != 2*4096*4 {
		t.Errorf("copy bytes = %d, want %d", rep.CopyBytes, 2*4096*4)
	}
	if rep.KernelTimePer() >= rep.KernelTime {
		t.Error("per-kernel time should be below the 4-launch total")
	}
	if got := rep.CopyTimePer() * 4; got != rep.CopyTime {
		t.Errorf("CopyTimePer*4 = %v, want %v", got, rep.CopyTime)
	}
}

func TestReportThroughput(t *testing.T) {
	r := Report{Total: units.Latency(1e6)} // 1ms
	if got := r.Throughput(); got < 999 || got > 1001 {
		t.Errorf("throughput = %v it/s, want ~1000", got)
	}
	if (Report{}).Throughput() != 0 {
		t.Error("zero-total throughput should be 0")
	}
}

func TestSCAsyncHidesCopies(t *testing.T) {
	s := soc.New(devices.Xavier())
	w := streamWorkload(1<<16, false)
	w.Launches = 8
	w.MakeKernel = func(lay Layout, launch int) gpu.Kernel {
		in, out := lay.Addr("in"), lay.Addr("out")
		per := (1 << 16) / 8
		return gpu.Kernel{
			Name:    "stripe",
			Threads: per,
			Program: func(tid int, p *isa.Program) {
				off := int64(launch*per+tid) * 4
				p.Ld(in+off, 4)
				p.Compute(isa.FMA, 64)
				p.St(out+off, 4)
			},
		}
	}
	sync, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	async, err := SCAsync{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if !async.Overlapped {
		t.Error("sc-async should report overlap")
	}
	if async.Total >= sync.Total {
		t.Errorf("sc-async %v not faster than sc %v", async.Total, sync.Total)
	}
	// The pipeline can never beat the busiest single resource.
	floor := async.KernelTime
	if async.CopyTime > floor {
		floor = async.CopyTime
	}
	if async.Total < async.CPUTime+floor {
		t.Errorf("sc-async total %v below its resource floor %v", async.Total, async.CPUTime+floor)
	}
	// Same bytes still move.
	if async.CopyBytes != sync.CopyBytes {
		t.Errorf("copy bytes differ: %d vs %d", async.CopyBytes, sync.CopyBytes)
	}
}

func TestSCAsyncInByName(t *testing.T) {
	m, err := ByName("sc-async")
	if err != nil || m.Name() != "sc-async" {
		t.Fatalf("ByName(sc-async) = %v, %v", m, err)
	}
	if len(AllModels()) < 4 {
		t.Error("AllModels should include the extensions")
	}
	if len(Models()) != 3 {
		t.Error("Models should stay the paper's 3")
	}
}

func TestSCAsyncRejectsInvalid(t *testing.T) {
	s := soc.New(devices.TX2())
	bad := streamWorkload(1024, false)
	bad.Name = ""
	if _, err := (SCAsync{}).Run(s, bad); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestScratchBuffersNotCopied(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	w.Scratch = []BufferSpec{{Name: "work", Size: 1 << 20}}
	base, err := SC{}.Run(s, streamWorkload(4096, false))
	if err != nil {
		t.Fatal(err)
	}
	withScratch, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if withScratch.CopyBytes != base.CopyBytes {
		t.Errorf("scratch inflated copies: %d vs %d", withScratch.CopyBytes, base.CopyBytes)
	}
}

func TestScratchPinnedUnderZC(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	w.Scratch = []BufferSpec{{Name: "work", Size: 64 * 1024}}
	kernelTouchingScratch := func(lay Layout, launch int) gpu.Kernel {
		workBuf := lay.Addr("work")
		return gpu.Kernel{Name: "scratchy", Threads: 1024, Program: func(tid int, p *isa.Program) {
			p.Ld(workBuf+int64(tid)*4, 4)
		}}
	}
	w.MakeKernel = kernelTouchingScratch
	zc, err := ZC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if zc.GPU.Pinned.Bytes() == 0 {
		t.Error("ZC kernel's scratch accesses should take the pinned path")
	}
	sc, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if sc.GPU.Pinned.Bytes() != 0 {
		t.Error("SC kernel's scratch accesses must stay on the cached path")
	}
}

func TestUMPrefetchCheaperThanDemandFaults(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(1<<16, false)
	demand, err := UM{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	w.UMPrefetch = true
	prefetch, err := UM{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if prefetch.CopyBytes != demand.CopyBytes {
		t.Errorf("prefetch moved %d bytes vs demand %d — the traffic must match", prefetch.CopyBytes, demand.CopyBytes)
	}
	if prefetch.CopyTime >= demand.CopyTime {
		t.Errorf("prefetch migration time %v not below demand %v", prefetch.CopyTime, demand.CopyTime)
	}
	if prefetch.Total >= demand.Total {
		t.Errorf("prefetch total %v not below demand %v", prefetch.Total, demand.Total)
	}
}

func TestReportString(t *testing.T) {
	s := soc.New(devices.TX2())
	rep, err := SC{}.Run(s, streamWorkload(1024, false))
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"jetson-tx2", "stream", "sc", "total", "copies"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}

func TestHybridCopiesInputsOnly(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(1<<14, false)
	sc, err := SC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Hybrid{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Model != "hybrid" {
		t.Errorf("model = %q", hy.Model)
	}
	// Only the In buffer is copied: exactly half of SC's copy traffic here.
	if hy.CopyBytes != w.BytesIn() {
		t.Errorf("hybrid copy bytes = %d, want inputs only %d", hy.CopyBytes, w.BytesIn())
	}
	if hy.CopyBytes >= sc.CopyBytes {
		t.Error("hybrid should copy less than SC")
	}
	// The kernel writes its outputs through the pinned path.
	if hy.GPU.Pinned.BytesWritten == 0 {
		t.Error("hybrid outputs did not take the pinned path")
	}
	// Inputs stay on the cached path.
	if hy.GPU.Pinned.BytesRead != 0 {
		t.Error("hybrid inputs leaked onto the pinned path")
	}
}

func TestHybridInAllModels(t *testing.T) {
	if len(AllModels()) != 5 {
		t.Error("AllModels should list 5 models")
	}
	m, err := ByName("hybrid")
	if err != nil || m.Name() != "hybrid" {
		t.Fatalf("ByName(hybrid) = %v, %v", m, err)
	}
}

func TestHybridRejectsInvalid(t *testing.T) {
	s := soc.New(devices.TX2())
	bad := streamWorkload(1024, false)
	bad.Name = ""
	if _, err := (Hybrid{}).Run(s, bad); err == nil {
		t.Error("invalid workload accepted")
	}
}

// TestAllocationFailureInjection starves the platform of memory and checks
// that every model fails cleanly — and that the platform remains usable for
// a subsequent, smaller run (no leaked allocations or routing).
func TestAllocationFailureInjection(t *testing.T) {
	cfg := devices.TX2()
	cfg.MemBytes = 256 * 1024 // far too small for the big workload
	s := soc.New(cfg)
	big := streamWorkload(1<<20, false) // 4MiB buffers cannot fit
	for _, m := range AllModels() {
		if _, err := m.Run(s, big); err == nil {
			t.Errorf("%s: gigantic workload accepted on a starved platform", m.Name())
		}
	}
	small := streamWorkload(1024, false)
	for _, m := range AllModels() {
		if _, err := m.Run(s, small); err != nil {
			t.Errorf("%s: platform unusable after allocation failures: %v", m.Name(), err)
		}
	}
}

func TestUMMigrationInvalidatesCPUCache(t *testing.T) {
	// When a page migrates to the GPU, the driver must drop the CPU's
	// cached copies: re-reading after the kernel misses instead of serving
	// stale lines.
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	if _, err := (UM{}).Run(s, w); err != nil {
		t.Fatal(err)
	}
	// Allocate the same managed range again and drive the sequence by hand.
	s.ResetState()
	buf, err := s.AllocManaged("probe", 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	s.CPU.Load(buf.Addr, 4) // CPU caches the line
	if !s.CPU.L1().Contains(buf.Addr) {
		t.Fatal("line not cached")
	}
	s.Migrator.Touch(buf.Addr, buf.Size, mmu.OwnerCPU)
	f, _ := s.Migrator.Touch(buf.Addr, buf.Size, mmu.OwnerGPU)
	if f == 0 {
		t.Fatal("no migration happened")
	}
	// The UM model pairs every GPU-side Touch with a CPU cache invalidation;
	// replicate it and verify the consequence.
	s.CPU.L1().FlushRange(buf.Addr, buf.End(), 0)
	s.CPU.LLC().FlushRange(buf.Addr, buf.End(), 0)
	if s.CPU.L1().Contains(buf.Addr) || s.CPU.LLC().Contains(buf.Addr) {
		t.Error("CPU caches kept a migrated page's lines")
	}
}
