package comm

import (
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
)

// Hybrid is an extension beyond the paper's three models: inputs travel by
// explicit copy (cached on both sides, like SC), while outputs are written
// straight into a pinned buffer the CPU reads without a copy-back (like ZC).
// Production ports often land here: the big camera frame benefits from the
// cached path, while small results are cheapest through the zero-copy
// window. The framework's Explore ranks it against the pure models.
type Hybrid struct{}

// Name returns "hybrid".
func (Hybrid) Name() string { return "hybrid" }

// AllocPlan stages inputs through host+device partitions (the SC path) and
// shares one pinned window for the outputs (the ZC path).
func (Hybrid) AllocPlan(w Workload) []AllocGroup {
	return []AllocGroup{
		{Prefix: "host-", Kind: mmu.HostAlloc, Specs: w.In, CPUVisible: true},
		{Prefix: "dev-", Kind: mmu.DeviceAlloc,
			Specs: append(append([]BufferSpec{}, w.In...), w.Scratch...), GPUVisible: true},
		{Prefix: "pin-", Kind: mmu.Pinned, Specs: w.Out, CPUVisible: true, GPUVisible: true},
	}
}

// Run executes the workload under the hybrid model.
func (Hybrid) Run(s *soc.SoC, w Workload) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	s.ResetState()

	plan := Hybrid{}.AllocPlan(w)
	lays, names, err := allocPlan(s, w.Name, plan)
	if err != nil {
		return Report{}, err
	}
	defer freeAll(s, names)
	hostLay, devLay := lays[0], lays[1]

	// The CPU sees host inputs + pinned outputs; the GPU sees device
	// inputs/scratch + the same pinned outputs.
	cpuLay, gpuLay := planViews(plan, lays)

	var rep Report
	lch := gpu.NewLauncher(s.GPU, "hybrid/"+w.Name)
	for i := 0; i <= w.Warmup; i++ {
		measured := i == w.Warmup
		resetHeat(s)
		r, err := hybridIteration(s, w, cpuLay, gpuLay, hostLay, devLay, lch)
		if err != nil {
			return Report{}, err
		}
		if measured {
			rep = r
		}
	}
	captureHeat(s, &rep)
	rep.Model = Hybrid{}.Name()
	rep.Platform = s.Name()
	rep.Workload = w.Name
	rep.DeclaredBytesIn = w.BytesIn()
	rep.DeclaredBytesOut = w.BytesOut()
	rep.OverlapCapable = w.Overlappable
	return rep, nil
}

func hybridIteration(s *soc.SoC, w Workload, cpuLay, gpuLay, hostLay, devLay Layout, lch *gpu.Launcher) (Report, error) {
	dramBefore := s.DRAM.Stats()
	copyBefore := s.CopyBytes()

	var rep Report
	task := timeCPU(s, w.CPUTask, cpuLay)
	rep.CPUTime = task.elapsed
	rep.CPUL1MissRate = task.l1MissRate
	rep.CPULLCMissRate = task.llcMiss
	rep.CPUL1Misses = task.l1Misses
	rep.CPUInstrs = task.instrs

	launches := w.LaunchCount()
	rep.Launches = launches
	for l := 0; l < launches; l++ {
		// Software coherence on the copied inputs only; the pinned outputs
		// need none.
		flushStart := s.CPU.Elapsed()
		for _, spec := range w.In {
			b := hostLay.Buffer(spec.Name)
			s.CPU.FlushRange(b.Addr, b.End())
		}
		rep.FlushTime += s.CPU.Elapsed() - flushStart

		for _, spec := range w.In {
			_, size := stripe(hostLay.Buffer(spec.Name), l, launches)
			rep.CopyTime += s.Copy(size)
		}

		res, err := lch.Launch(l, w.MakeKernel(gpuLay, l))
		if err != nil {
			return Report{}, err
		}
		mergeGPU(&rep.GPU, res)
		rep.KernelTime += res.Time
		rep.LaunchTime += res.LaunchOverhead

		for _, spec := range w.In {
			b := devLay.Buffer(spec.Name)
			_, cost := s.GPU.FlushRange(b.Addr, b.End(), GPUFlushLineCost)
			rep.FlushTime += cost
		}
	}

	post := timeCPU(s, w.CPUPost, cpuLay)
	rep.CPUTime += post.elapsed

	rep.Total = rep.CPUTime + rep.FlushTime + rep.CopyTime + rep.KernelTime + rep.LaunchTime
	rep.DRAMBytes = s.DRAM.Stats().Bytes() - dramBefore.Bytes()
	rep.CopyBytes = s.CopyBytes() - copyBefore
	rep.Energy = energy.Activity{
		Runtime:   rep.Total,
		CPUBusy:   rep.CPUTime + rep.FlushTime + rep.LaunchTime,
		GPUBusy:   rep.KernelTime,
		DRAMBytes: rep.DRAMBytes,
		CopyBytes: rep.CopyBytes,
	}
	return rep, nil
}
