package comm

import (
	"bytes"
	"context"
	"fmt"

	"igpucomm/internal/hazard"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
	"igpucomm/internal/tiling"
)

// This file is the checked mode: the opt-in path that statically verifies a
// workload × model × platform combination — layout disjointness, the §III-C
// schedule's tile ownership and barrier ordering, and the transaction-level
// hazard replay — before or instead of executing it.

// Scheduler is an optional Model extension: a model (or wrapper) that runs a
// custom tiled schedule exposes it here, and Verify proves that schedule
// instead of assuming the default §III-C even/odd checkerboard.
type Scheduler interface {
	Schedule(w Workload, geo tiling.Geometry, phases int) (hazard.Schedule, error)
}

// Verify statically checks the combination without executing it:
//
//  1. It mirrors the model's allocation plan into the platform's address
//     space (then frees it) and checks the resulting layout for overlapping
//     or empty allocations.
//  2. It expands the §III-C even/odd schedule the zero-copy overlap path
//     would run over the workload's input grid and proves per-phase tile
//     disjointness and barrier ordering under the vector-clock model.
//
// The returned report's Checked count says how many facts were proven; use
// TraceCheck for the transaction-level replay.
func Verify(s *soc.SoC, w Workload, m Model) (hazard.Report, error) {
	rep := hazard.Report{Subject: fmt.Sprintf("%s/%s/%s", s.Name(), w.Name, m.Name())}
	if err := w.Validate(); err != nil {
		return rep, err
	}
	planner, ok := m.(Planner)
	if !ok {
		return rep, fmt.Errorf("comm: model %s exposes no allocation plan to verify", m.Name())
	}

	// 1. Layout: place the plan, collect the buffers, release.
	var bufs []mmu.Buffer
	var names []string
	for _, g := range planner.AllocPlan(w) {
		for _, spec := range g.Specs {
			full := "verify/" + w.Name + "/" + g.Prefix + spec.Name
			b, err := s.Space.Alloc(full, spec.Size, g.Kind)
			if err != nil {
				for _, n := range names {
					_ = s.Space.Free(n)
				}
				return rep, fmt.Errorf("comm: verify %s: %w", w.Name, err)
			}
			bufs = append(bufs, b)
			names = append(names, full)
		}
	}
	for _, n := range names {
		_ = s.Space.Free(n)
	}
	lrep := hazard.VerifyLayout(rep.Subject, bufs)
	rep.Merge(lrep)
	if err := s.Space.Validate(); err != nil {
		return rep, fmt.Errorf("comm: verify %s: %w", w.Name, err)
	}

	// 2. Schedule: the checkerboard properties are grid-shape-independent,
	// so the grid derived from the workload's input volume is capped to
	// keep verification fast on large frames.
	geo, err := verifyGeometry(s, w)
	if err != nil {
		return rep, fmt.Errorf("comm: verify %s: %w", w.Name, err)
	}
	phases := w.LaunchCount()
	if phases < 2 {
		phases = 2
	}
	var sched hazard.Schedule
	if sch, ok := m.(Scheduler); ok {
		sched, err = sch.Schedule(w, geo, phases)
	} else {
		sched, err = hazard.FromPattern(tiling.Pattern{Geo: geo, Phases: phases})
	}
	if err != nil {
		return rep, fmt.Errorf("comm: verify %s: %w", w.Name, err)
	}
	srep := hazard.VerifySchedule(sched)
	srep.Subject = rep.Subject + " " + srep.Subject
	rep.Merge(srep)
	return rep, nil
}

// verifyGeometry derives the tile grid the overlapped zero-copy path would
// run over: the workload's input bytes as a 2D element grid with line-sized
// tiles, capped at 4096x64 elements.
func verifyGeometry(s *soc.SoC, w Workload) (tiling.Geometry, error) {
	cfg := s.Config()
	elems := w.BytesIn() / 4
	if elems < 1 {
		elems = 1
	}
	width := int64(4096)
	if elems < width {
		width = elems
	}
	height := elems / width
	if height < 1 {
		height = 1
	}
	if height > 64 {
		height = 64
	}
	return tiling.NewGeometry(int(width), int(height), 4, cfg.CPU.LLC.LineSize, cfg.GPU.LLC.LineSize)
}

// TraceCheck replays one launch of the workload at transaction granularity:
// it generates the kernel's coalesced trace under the model's placement
// (the same dry run cmd/trace exports), wraps it with the CPU-side accesses
// and the model's synchronization protocol — flushes for the software-
// coherence models, migration writebacks for UM, barriers for all — and
// runs the whole interleaving through the hazard trace checker.
func TraceCheck(s *soc.SoC, w Workload, m Model, launch int) (hazard.Report, error) {
	subject := fmt.Sprintf("%s/%s/%s launch %d", s.Name(), w.Name, m.Name(), launch)
	rep := hazard.Report{Subject: subject}
	if err := w.Validate(); err != nil {
		return rep, err
	}
	if launch < 0 || launch >= w.LaunchCount() {
		return rep, fmt.Errorf("comm: trace check %s: launch %d out of range [0,%d)", w.Name, launch, w.LaunchCount())
	}
	planner, ok := m.(Planner)
	if !ok {
		return rep, fmt.Errorf("comm: model %s exposes no allocation plan to verify", m.Name())
	}

	plan := planner.AllocPlan(w)
	lays, names, err := allocPlan(s, "tracecheck-"+w.Name, plan)
	if err != nil {
		return rep, err
	}
	defer freeAll(s, names)
	cpuLay, gpuLay := planViews(plan, lays)

	// The kernel's coalesced transactions, exactly as cmd/trace exports.
	var csv bytes.Buffer
	if err := s.GPU.TraceTransactions(w.MakeKernel(gpuLay, launch), &csv); err != nil {
		return rep, fmt.Errorf("comm: trace check %s: %w", w.Name, err)
	}
	gpuEvents, err := hazard.ParseGPUTrace(&csv)
	if err != nil {
		return rep, err
	}

	flushes := modelFlushes(m)
	var events []hazard.Event
	seq := 0
	emit := func(agent hazard.TraceAgent, op hazard.Op, path string, addr, size int64) {
		events = append(events, hazard.Event{Seq: seq, Agent: agent, Op: op, Path: path, Addr: addr, Size: size})
		seq++
	}

	// Epoch 0: the CPU task produces the inputs through its view.
	for _, spec := range w.In {
		b := cpuLay.Buffer(spec.Name)
		emit(hazard.TraceCPU, hazard.OpWrite, cpuPath(s, b), b.Addr, b.Size)
	}
	if flushes {
		for _, spec := range w.In {
			b := cpuLay.Buffer(spec.Name)
			emit(hazard.TraceCPU, hazard.OpFlush, "", b.Addr, b.Size)
		}
	}
	emit(hazard.TraceCPU, hazard.OpBarrier, "", 0, 0) // the launch boundary

	// Epoch 1: the kernel.
	for _, e := range gpuEvents {
		e.Seq = seq
		seq++
		events = append(events, e)
	}
	if flushes {
		for _, spec := range transferSpecs(w) {
			b := gpuLay.Buffer(spec.Name)
			emit(hazard.TraceGPU, hazard.OpFlush, "", b.Addr, b.Size)
		}
	}
	emit(hazard.TraceGPU, hazard.OpBarrier, "", 0, 0) // kernel completion

	// Epoch 2: the CPU consumes the outputs.
	for _, spec := range w.Out {
		b := cpuLay.Buffer(spec.Name)
		emit(hazard.TraceCPU, hazard.OpRead, cpuPath(s, b), b.Addr, b.Size)
	}

	// Hazard scope: the genuinely shared allocations (pinned windows and
	// managed memory); partitioned host/device buffers cannot alias.
	var shared []hazard.Range
	for _, lay := range lays {
		for _, b := range lay {
			if b.Kind == mmu.Pinned || b.Kind == mmu.Managed {
				shared = append(shared, hazard.Range{Addr: b.Addr, Size: b.Size})
			}
		}
	}

	opts := hazard.TraceOptions{
		LineSize:   s.Config().CPU.LLC.LineSize,
		Shared:     shared,
		IOCoherent: s.IOCoherent(),
	}
	out := hazard.CheckTrace(subject, events, opts)
	return out, nil
}

// modelFlushes says whether the model's protocol includes software-
// coherence cache maintenance between the CPU and GPU epochs: explicit
// flushes under the copy models, the migration engine's writeback +
// invalidate under UM. Zero-copy has none — its safety argument is the
// schedule, which is exactly what the verifier checks.
func modelFlushes(m Model) bool {
	switch m.(type) {
	case SC, SCAsync, Hybrid, UM:
		return true
	default:
		return false
	}
}

// cpuPath is the route a CPU access to the buffer takes: pinned buffers are
// uncached on platforms without I/O coherence, everything else goes through
// the cache hierarchy.
func cpuPath(s *soc.SoC, b mmu.Buffer) string {
	if b.Kind == mmu.Pinned && !s.IOCoherent() {
		return "pinned"
	}
	return "cached"
}

// CheckedRun is the checked mode: verify first, refuse to run a refuted
// combination, and attach the verification report to the run's Report.
func CheckedRun(ctx context.Context, s *soc.SoC, w Workload, m Model) (Report, error) {
	ctx, span := telemetry.Start(ctx, "comm.checked_run",
		telemetry.String("platform", s.Name()),
		telemetry.String("workload", w.Name),
		telemetry.String("model", m.Name()))
	defer span.End()
	_, vspan := telemetry.Start(ctx, "comm.verify")
	hz, err := Verify(s, w, m)
	vspan.End()
	if err != nil {
		span.SetAttr("verdict", "error")
		return Report{}, err
	}
	if !hz.OK() {
		span.SetAttr("verdict", "refuted")
		return Report{Model: m.Name(), Platform: s.Name(), Workload: w.Name, Hazards: &hz},
			fmt.Errorf("comm: %s refuted: %d hazards (first: %s)", hz.Subject, len(hz.Findings), hz.Findings[0])
	}
	span.SetAttr("verdict", "proven")
	_, rspan := telemetry.Start(ctx, "comm.run")
	rep, err := m.Run(s, w)
	rspan.End()
	if err != nil {
		return rep, err
	}
	rep.Hazards = &hz
	return rep, nil
}

// Checked wraps a model with the verifier, so any call site that takes a
// Model can opt into checked execution:
//
//	rep, err := comm.Checked{Inner: comm.ZC{}}.Run(s, w)
type Checked struct {
	Inner Model
}

// Name returns the inner model's name with a "+checked" suffix.
func (c Checked) Name() string { return c.Inner.Name() + "+checked" }

// Run verifies, then executes the inner model (see CheckedRun). The Model
// interface carries no context, so spans only appear when a caller uses
// CheckedRun directly with a traced context.
func (c Checked) Run(s *soc.SoC, w Workload) (Report, error) {
	//igpulint:ignore ctxflow the Model interface fixes this signature; ctx-aware callers use CheckedRun directly
	return CheckedRun(context.Background(), s, w, c.Inner)
}
