package comm

import (
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/memdev"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
)

// ZC is the zero-copy model (paper Fig 1.a/1.b): CPU and GPU access the same
// pinned allocation through pointers. There are no copies and no software
// flushes; instead the platform's coherence wiring decides the cost — on
// Nano/TX2 the buffers are uncached on both sides, on Xavier the GPU snoops
// the CPU LLC through hardware I/O coherence.
//
// When the workload is marked Overlappable, the CPU task and the GPU kernel
// run concurrently (the §III-C tiled access pattern provides the required
// data-consistency discipline; internal/tiling implements it), contending
// for DRAM bandwidth through the SoC's arbiter.
type ZC struct{}

// Name returns "zc".
func (ZC) Name() string { return "zc" }

// AllocPlan pins every buffer once; both sides address the same bytes —
// the whole point of the model, and the reason its schedules need the
// hazard verifier.
func (ZC) AllocPlan(w Workload) []AllocGroup {
	return []AllocGroup{
		{Prefix: "zc-", Kind: mmu.Pinned, Specs: allSpecs(w), CPUVisible: true, GPUVisible: true},
	}
}

// Run executes the workload under zero-copy.
func (ZC) Run(s *soc.SoC, w Workload) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	s.ResetState()
	lays, names, err := allocPlan(s, w.Name, ZC{}.AllocPlan(w))
	if err != nil {
		return Report{}, err
	}
	defer freeAll(s, names)
	lay := lays[0]

	var rep Report
	lch := gpu.NewLauncher(s.GPU, "zc/"+w.Name)
	for i := 0; i <= w.Warmup; i++ {
		measured := i == w.Warmup
		resetHeat(s)
		r, err := zcIteration(s, w, lay, lch)
		if err != nil {
			return Report{}, err
		}
		if measured {
			rep = r
		}
	}
	captureHeat(s, &rep)
	rep.Model = ZC{}.Name()
	rep.Platform = s.Name()
	rep.Workload = w.Name
	rep.DeclaredBytesIn = w.BytesIn()
	rep.DeclaredBytesOut = w.BytesOut()
	rep.OverlapCapable = w.Overlappable
	return rep, nil
}

func zcIteration(s *soc.SoC, w Workload, lay Layout, lch *gpu.Launcher) (Report, error) {
	dramBefore := s.DRAM.Stats()
	var rep Report

	// CPU task, with its DRAM-side traffic attributed for the arbiter.
	cpuTrafficBefore := s.CPUTraffic()
	task := timeCPU(s, w.CPUTask, lay)
	cpuBytes := delta(s.CPUTraffic(), cpuTrafficBefore)
	rep.CPUTime = task.elapsed
	rep.CPUL1MissRate = task.l1MissRate
	rep.CPULLCMissRate = task.llcMiss
	rep.CPUL1Misses = task.l1Misses
	rep.CPUInstrs = task.instrs

	// Kernels straight onto the pinned buffers.
	launches := w.LaunchCount()
	rep.Launches = launches
	var gpuBytes int64
	for l := 0; l < launches; l++ {
		res, err := lch.Launch(l, w.MakeKernel(lay, l))
		if err != nil {
			return Report{}, err
		}
		mergeGPU(&rep.GPU, res)
		rep.KernelTime += res.Time
		rep.LaunchTime += res.LaunchOverhead
		gpuBytes += res.DRAM.Bytes() + res.Pinned.Bytes()
	}

	post := timeCPU(s, w.CPUPost, lay)
	rep.CPUTime += post.elapsed

	if w.Overlappable {
		// §III-C pattern: producer/consumer phases alternate over tiles,
		// so the CPU task and the kernel execute concurrently, sharing
		// DRAM bandwidth.
		makespan, _ := s.Overlap(
			soc.Stream{Name: "cpu", Solo: task.elapsed, Bytes: cpuBytes},
			soc.Stream{Name: "gpu", Solo: rep.KernelTime, Bytes: gpuBytes},
		)
		rep.Total = makespan + rep.LaunchTime + post.elapsed
		rep.Overlapped = true
	} else {
		rep.Total = rep.CPUTime + rep.KernelTime + rep.LaunchTime
	}

	rep.DRAMBytes = s.DRAM.Stats().Bytes() - dramBefore.Bytes()
	rep.Energy = energy.Activity{
		Runtime:   rep.Total,
		CPUBusy:   rep.CPUTime + rep.LaunchTime,
		GPUBusy:   rep.KernelTime,
		DRAMBytes: rep.DRAMBytes,
		CopyBytes: 0,
	}
	return rep, nil
}

func delta(now, before memdev.Stats) int64 {
	return now.Bytes() - before.Bytes()
}
