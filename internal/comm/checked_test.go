package comm

import (
	"context"
	"strings"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/hazard"
	"igpucomm/internal/soc"
	"igpucomm/internal/tiling"
)

func TestVerifyAllDevicesModelsClean(t *testing.T) {
	w := streamWorkload(4096, false)
	for _, name := range []string{devices.NanoName, devices.TX2Name, devices.XavierName} {
		s, err := devices.NewSoC(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range AllModels() {
			rep, err := Verify(s, w, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.Name(), err)
			}
			if !rep.OK() {
				t.Errorf("%s/%s: seed schedule refuted:\n%s", name, m.Name(), rep)
			}
			if rep.Checked == 0 {
				t.Errorf("%s/%s: verifier proved nothing", name, m.Name())
			}
			// Verification must not leak allocations.
			if got := len(s.Space.Buffers()); got != 0 {
				t.Errorf("%s/%s: %d buffers leaked by Verify", name, m.Name(), got)
			}
		}
	}
}

// brokenZC runs the zero-copy model but declares a schedule where the GPU
// steals one of the CPU's phase-1 tiles — the odd/even overlap the verifier
// exists to catch.
type brokenZC struct{ ZC }

func (brokenZC) Schedule(w Workload, geo tiling.Geometry, phases int) (hazard.Schedule, error) {
	sched, err := hazard.FromPattern(tiling.Pattern{Geo: geo, Phases: phases})
	if err != nil {
		return sched, err
	}
	stolen := sched.Phases[1].CPU[0]
	sched.Phases[1].GPU = append(sched.Phases[1].GPU, stolen)
	return sched, nil
}

func TestVerifyBrokenScheduleCounterexample(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	rep, err := Verify(s, w, brokenZC{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("overlapping schedule verified as safe")
	}
	if n := rep.CountKind(hazard.ParityOverlap); n != 1 {
		t.Fatalf("want exactly 1 parity-overlap counterexample, got %d:\n%s", n, rep)
	}
	var f hazard.Finding
	for _, c := range rep.Findings {
		if c.Kind == hazard.ParityOverlap {
			f = c
		}
	}
	// The counterexample must name the phase and the conflicting tile.
	if f.Phase != 1 {
		t.Errorf("counterexample phase = %d, want 1", f.Phase)
	}
	if !strings.Contains(f.Detail, "phase 1") || !strings.Contains(f.Detail, "both cpu and gpu") {
		t.Errorf("counterexample does not name the conflict: %q", f.Detail)
	}
}

func TestCheckedRunRefusesBrokenSchedule(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	rep, err := CheckedRun(context.Background(), s, w, brokenZC{})
	if err == nil {
		t.Fatal("checked run executed a refuted schedule")
	}
	if !strings.Contains(err.Error(), "refuted") {
		t.Errorf("error does not say refuted: %v", err)
	}
	if rep.Hazards == nil || rep.Hazards.OK() {
		t.Error("refusal must carry the hazard report")
	}
	if rep.Total != 0 {
		t.Error("refused run must not report a runtime")
	}
}

func TestCheckedRunAttachesReport(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	rep, err := CheckedRun(context.Background(), s, w, ZC{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hazards == nil || !rep.Hazards.OK() {
		t.Fatal("clean checked run must attach a passing hazard report")
	}
	if rep.Total <= 0 || rep.Model != "zc" {
		t.Errorf("checked run did not execute the inner model: %+v", rep)
	}

	// The same run through the plain path carries no report.
	plain, err := ZC{}.Run(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hazards != nil {
		t.Error("unchecked run must not attach a hazard report")
	}
}

func TestCheckedWrapperIsAModel(t *testing.T) {
	var m Model = Checked{Inner: SC{}}
	if m.Name() != "sc+checked" {
		t.Errorf("name = %q", m.Name())
	}
	s := soc.New(devices.TX2())
	rep, err := m.Run(s, streamWorkload(1024, false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hazards == nil {
		t.Error("wrapper did not verify")
	}
}

func TestTraceCheckCleanAllModels(t *testing.T) {
	w := streamWorkload(4096, false)
	for _, name := range []string{devices.TX2Name, devices.XavierName} {
		s, err := devices.NewSoC(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range AllModels() {
			rep, err := TraceCheck(s, w, m, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.Name(), err)
			}
			if !rep.OK() {
				t.Errorf("%s/%s: trace replay flagged hazards:\n%s", name, m.Name(), rep)
			}
			if rep.Checked == 0 {
				t.Errorf("%s/%s: trace replay checked nothing", name, m.Name())
			}
			if got := len(s.Space.Buffers()); got != 0 {
				t.Errorf("%s/%s: %d buffers leaked by TraceCheck", name, m.Name(), got)
			}
		}
	}
}

func TestTraceCheckFlagsMissingFlush(t *testing.T) {
	// Strip UM of its migration writebacks by presenting it as a bare
	// planner: both sides address the same managed bytes through their
	// caches, so with the CPU's input lines still dirty in the LLC the
	// GPU's reads must be flagged as flush-ordering violations on a
	// software-coherent platform.
	s := soc.New(devices.TX2())
	w := streamWorkload(4096, false)
	rep, err := TraceCheck(s, w, noFlushUM{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountKind(hazard.FlushOrder) == 0 {
		t.Fatalf("missing flushes not flagged:\n%s", rep)
	}

	// On Xavier the I/O-coherent GPU snoops the CPU LLC; the same protocol
	// is clean there.
	x := soc.New(devices.Xavier())
	rep, err = TraceCheck(x, w, noFlushUM{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("I/O-coherent platform flagged spurious flush hazards:\n%s", rep)
	}
}

// noFlushUM looks like UM to the planner but is not one of the software-
// coherence model types, so TraceCheck emits no flush events for it.
type noFlushUM struct{ UM }

func (noFlushUM) Name() string { return "um-noflush" }

func TestTraceCheckRejectsBadLaunch(t *testing.T) {
	s := soc.New(devices.TX2())
	w := streamWorkload(1024, false)
	if _, err := TraceCheck(s, w, ZC{}, 1); err == nil {
		t.Error("out-of-range launch accepted")
	}
	if _, err := TraceCheck(s, w, ZC{}, -1); err == nil {
		t.Error("negative launch accepted")
	}
}
