package comm

import (
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/mmu"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// UM is the unified-memory model (paper Fig 1.d): CPU and GPU address one
// managed allocation; the runtime keeps coherence by migrating pages on
// demand between the two sides. The programmer sees pointers; the driver
// pays for them. Tasks are serialized, as with SC.
//
// With Workload.UMPrefetch set, migrations are issued ahead of the access
// (cudaMemPrefetchAsync): the bytes still move at copy-engine bandwidth but
// the per-page fault overhead disappears.
type UM struct{}

// umTouch moves a range to `by`, via demand faults or prefetch.
func umTouch(s *soc.SoC, w Workload, addr, size int64, by mmu.Owner) (faults, bytes int64) {
	if w.UMPrefetch {
		return 0, s.Migrator.Prefetch(addr, size, by)
	}
	return s.Migrator.Touch(addr, size, by)
}

// Name returns "um".
func (UM) Name() string { return "um" }

// AllocPlan places every buffer in one managed allocation both sides
// address; the migrator keeps the views coherent.
func (UM) AllocPlan(w Workload) []AllocGroup {
	return []AllocGroup{
		{Prefix: "um-", Kind: mmu.Managed, Specs: allSpecs(w), CPUVisible: true, GPUVisible: true},
	}
}

// Run executes the workload under unified memory.
func (UM) Run(s *soc.SoC, w Workload) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	s.ResetState()
	lays, names, err := allocPlan(s, w.Name, UM{}.AllocPlan(w))
	if err != nil {
		return Report{}, err
	}
	defer freeAll(s, names)
	lay := lays[0]

	var rep Report
	lch := gpu.NewLauncher(s.GPU, "um/"+w.Name)
	for i := 0; i <= w.Warmup; i++ {
		measured := i == w.Warmup
		resetHeat(s)
		r := umIteration(s, w, lay, lch)
		if r.err != nil {
			return Report{}, r.err
		}
		if measured {
			rep = r.Report
		}
	}
	captureHeat(s, &rep)
	rep.Model = UM{}.Name()
	rep.Platform = s.Name()
	rep.Workload = w.Name
	rep.DeclaredBytesIn = w.BytesIn()
	rep.DeclaredBytesOut = w.BytesOut()
	rep.OverlapCapable = w.Overlappable
	return rep, nil
}

type umResult struct {
	Report
	err error
}

func umIteration(s *soc.SoC, w Workload, lay Layout, lch *gpu.Launcher) umResult {
	dramBefore := s.DRAM.Stats()
	migBefore := s.Migrator.Stats().BytesMigrated
	var rep Report

	// 1. The CPU faults its working buffers back (no-ops on first touch)
	// and produces the inputs.
	var faults, migBytes int64
	for _, spec := range w.In {
		b := lay.Buffer(spec.Name)
		f, by := umTouch(s, w, b.Addr, b.Size, mmu.OwnerCPU)
		faults, migBytes = faults+f, migBytes+by
	}
	rep.CopyTime += s.MigrationCost(faults, migBytes)
	chargeMigrationTraffic(s, migBytes)

	task := timeCPU(s, w.CPUTask, lay)
	rep.CPUTime = task.elapsed
	rep.CPUL1MissRate = task.l1MissRate
	rep.CPULLCMissRate = task.llcMiss
	rep.CPUL1Misses = task.l1Misses
	rep.CPUInstrs = task.instrs

	// 2. Per launch, the kernel faults the pages of its stripe over to the
	// GPU side, then executes.
	launches := w.LaunchCount()
	rep.Launches = launches
	for l := 0; l < launches; l++ {
		faults, migBytes = 0, 0
		for _, spec := range transferSpecs(w) {
			addr, size := stripe(lay.Buffer(spec.Name), l, launches)
			f, by := umTouch(s, w, addr, size, mmu.OwnerGPU)
			faults, migBytes = faults+f, migBytes+by
			if f > 0 {
				// Migrating a page to the GPU side unmaps it from the
				// CPU: the driver writes back and invalidates the CPU's
				// cached copies (cost is inside the fault latency).
				s.CPU.L1().FlushRange(addr, addr+size, 0)
				s.CPU.LLC().FlushRange(addr, addr+size, 0)
			}
		}
		rep.CopyTime += s.MigrationCost(faults, migBytes)
		chargeMigrationTraffic(s, migBytes)

		res, err := lch.Launch(l, w.MakeKernel(lay, l))
		if err != nil {
			return umResult{err: err}
		}
		mergeGPU(&rep.GPU, res)
		// The UM driver's placement differs slightly from SC's explicit
		// layout; the paper bounds the effect at ±8% of kernel time.
		rep.KernelTime += units.Latency(float64(res.Time) * s.Config().UMKernelFactor)
		rep.LaunchTime += res.LaunchOverhead
	}

	// 3. The CPU faults the results back to consume them.
	faults, migBytes = 0, 0
	for _, spec := range w.Out {
		b := lay.Buffer(spec.Name)
		f, by := umTouch(s, w, b.Addr, b.Size, mmu.OwnerCPU)
		faults, migBytes = faults+f, migBytes+by
	}
	rep.CopyTime += s.MigrationCost(faults, migBytes)
	chargeMigrationTraffic(s, migBytes)

	post := timeCPU(s, w.CPUPost, lay)
	rep.CPUTime += post.elapsed

	rep.Total = rep.CPUTime + rep.CopyTime + rep.KernelTime + rep.LaunchTime
	rep.DRAMBytes = s.DRAM.Stats().Bytes() - dramBefore.Bytes()
	rep.CopyBytes = s.Migrator.Stats().BytesMigrated - migBefore
	rep.Energy = energy.Activity{
		Runtime:   rep.Total,
		CPUBusy:   rep.CPUTime + rep.LaunchTime,
		GPUBusy:   rep.KernelTime,
		DRAMBytes: rep.DRAMBytes,
		CopyBytes: rep.CopyBytes,
	}
	return umResult{Report: rep}
}

// chargeMigrationTraffic accounts a migration's DRAM round trip the same way
// the copy engine does (read + write of the moved bytes).
func chargeMigrationTraffic(s *soc.SoC, bytes int64) {
	if bytes <= 0 {
		return
	}
	s.ChargeDMATraffic(bytes)
}
