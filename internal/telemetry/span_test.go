package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

// manualClock is a hand-stepped clock for deterministic span times.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock { return &manualClock{now: time.Unix(100, 0)} }

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestStartWithoutTracerIsNilSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, s := Start(ctx, "orphan", String("k", "v"))
	if s != nil {
		t.Fatalf("Start without tracer: got span %+v, want nil", s)
	}
	if ctx2 != ctx {
		t.Fatal("Start without tracer should return the context unchanged")
	}
	// Every method must no-op on the nil span.
	s.End()
	s.SetAttr("a", "b")
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span Duration = %v, want 0", d)
	}
	if a := s.Attrs(); a != nil {
		t.Fatalf("nil span Attrs = %v, want nil", a)
	}
	if SpanFrom(ctx2) != nil {
		t.Fatal("SpanFrom should stay nil")
	}
}

func TestSpanTree(t *testing.T) {
	clk := newManualClock()
	tr := NewTracer(TracerOptions{Clock: clk.Now, TraceID: "feedface00000000"})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	clk.advance(time.Millisecond)
	cctx, child := Start(ctx, "child")
	clk.advance(time.Millisecond)
	_, grand := Start(cctx, "grandchild")
	clk.advance(time.Millisecond)
	grand.End()
	child.End()
	clk.advance(time.Millisecond)
	root.End()

	if root.ID != 1 || child.ID != 2 || grand.ID != 3 {
		t.Fatalf("IDs = %d,%d,%d, want allocation order 1,2,3", root.ID, child.ID, grand.ID)
	}
	if root.ParentID != 0 {
		t.Fatalf("root.ParentID = %d, want 0", root.ParentID)
	}
	if child.ParentID != root.ID {
		t.Fatalf("child.ParentID = %d, want %d", child.ParentID, root.ID)
	}
	if grand.ParentID != child.ID {
		t.Fatalf("grandchild.ParentID = %d, want %d", grand.ParentID, child.ID)
	}
	if root.Start != 0 || child.Start != time.Millisecond || grand.Start != 2*time.Millisecond {
		t.Fatalf("starts = %v,%v,%v", root.Start, child.Start, grand.Start)
	}
	if d := root.Duration(); d != 4*time.Millisecond {
		t.Fatalf("root duration = %v, want 4ms", d)
	}
	if d := grand.Duration(); d != time.Millisecond {
		t.Fatalf("grandchild duration = %v, want 1ms", d)
	}
	if tr.Len() != 3 {
		t.Fatalf("tracer has %d spans, want 3", tr.Len())
	}
}

func TestEndIsIdempotent(t *testing.T) {
	clk := newManualClock()
	tr := NewTracer(TracerOptions{Clock: clk.Now})
	_, s := Start(WithTracer(context.Background(), tr), "op")
	clk.advance(time.Millisecond)
	s.End()
	clk.advance(time.Hour)
	s.End() // must not stretch the duration
	if d := s.Duration(); d != time.Millisecond {
		t.Fatalf("duration after double End = %v, want 1ms", d)
	}
}

func TestTraceIDStampedOnSpans(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	ctx = WithTraceID(ctx, "abc123")
	_, s := Start(ctx, "op")
	s.End()
	var got string
	for _, a := range s.Attrs() {
		if a.Key == "trace_id" {
			got = a.Value
		}
	}
	if got != "abc123" {
		t.Fatalf("trace_id attr = %q, want abc123", got)
	}
	if id := TraceIDFrom(ctx); id != "abc123" {
		t.Fatalf("TraceIDFrom = %q", id)
	}
}

// TestSpanTreeConcurrent starts a fan-out of children and grandchildren from
// many goroutines (run under -race in CI) and checks the recorded tree:
// parent links intact, IDs unique and dense.
func TestSpanTreeConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")

	const workers = 64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, child := Start(ctx, "child")
			_, grand := Start(cctx, "grandchild")
			grand.SetAttr("k", "v")
			grand.End()
			child.End()
		}()
	}
	wg.Wait()
	root.End()

	spans := tr.Spans()
	if len(spans) != 1+2*workers {
		t.Fatalf("got %d spans, want %d", len(spans), 1+2*workers)
	}
	byID := make(map[int64]*Span, len(spans))
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if int(s.ID) < 1 || int(s.ID) > len(spans) {
			t.Fatalf("span ID %d outside dense range 1..%d", s.ID, len(spans))
		}
		switch s.Name {
		case "root":
			if s.ParentID != 0 {
				t.Fatalf("root has parent %d", s.ParentID)
			}
		case "child":
			if s.ParentID != root.ID {
				t.Fatalf("child %d has parent %d, want root %d", s.ID, s.ParentID, root.ID)
			}
		case "grandchild":
			p := byID[s.ParentID]
			if p == nil || p.Name != "child" {
				t.Fatalf("grandchild %d has parent %d (%v), want a child span", s.ID, s.ParentID, p)
			}
		}
	}
}

func TestTracerFrom(t *testing.T) {
	if TracerFrom(context.Background()) != nil {
		t.Fatal("TracerFrom on empty context should be nil")
	}
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom should find the installed tracer")
	}
	ctx, s := Start(ctx, "op")
	defer s.End()
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom should follow the current span's tracer")
	}
}

func TestNewTraceIDFormat(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two trace IDs collided: %q", a)
	}
}
