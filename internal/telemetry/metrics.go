package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are atomic.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Stored as float64 bits so
// fractional gauges (utilization ratios) work; all methods are atomic.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency histogram. Buckets are upper bounds in
// ascending order; a +Inf bucket is implicit. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	sum    Gauge
	count  atomic.Uint64
}

// DefBuckets is a general-purpose latency spread (seconds), .5ms to 10s.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one registered metric name: its metadata plus either a single
// unlabeled instrument, a set of labeled children, or a scrape-time callback.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // label name for vec families

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64            // scrape-time value (counterFunc/gaugeFunc)
	fnVec   func() map[string]float64 // scrape-time labeled values (counterVecFunc)
	info    map[string]string         // constant-1 info gauge labels

	mu       sync.Mutex
	counters map[string]*Counter   // vec children by label value
	hists    map[string]*Histogram // vec children by label value
	bounds   []float64             // histogram vec bucket template
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds metric families and renders them for scraping. Registration
// panics on invalid or duplicate names (programmer error, caught at boot);
// everything after registration is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

func (r *Registry) register(f *family) *family {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", f.name))
	}
	r.families[f.name] = f
	return f
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(&family{name: name, help: help, kind: kindCounter, counter: &Counter{}}).counter
}

// CounterFunc registers a counter whose value is read at scrape time —
// the bridge for counters owned elsewhere (the engine's cache stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindCounter, fn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(&family{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}).gauge
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// InfoGauge registers a constant-1 gauge carrying build/runtime facts as
// labels (the `foo_build_info` idiom).
func (r *Registry) InfoGauge(name, help string, labels map[string]string) {
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.register(&family{name: name, help: help, kind: kindGauge, info: cp})
}

// Histogram registers and returns a histogram (nil buckets: DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(&family{name: name, help: help, kind: kindHistogram, hist: newHistogram(buckets)}).hist
}

// CounterVecFunc registers a labeled counter family whose children are read
// at scrape time from fn (label value -> count) — the bridge for per-label
// counters owned elsewhere, like the fault injector's per-point totals.
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]float64) {
	r.register(&family{name: name, help: help, kind: kindCounter, label: label, fnVec: fn})
}

// CounterVec registers a family of counters keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.register(&family{name: name, help: help, kind: kindCounter, label: label,
		counters: make(map[string]*Counter)})
	return &CounterVec{f: f}
}

// HistogramVec registers a family of histograms keyed by one label (nil
// buckets: DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	f := r.register(&family{name: name, help: help, kind: kindHistogram, label: label,
		hists: make(map[string]*Histogram), bounds: buckets})
	return &HistogramVec{f: f}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for a label value.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[value]
	if !ok {
		c = &Counter{}
		v.f.counters[value] = c
	}
	return c
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns (creating on first use) the histogram for a label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.hists[value]
	if !ok {
		h = newHistogram(v.f.bounds)
		v.f.hists[value] = h
	}
	return h
}
