package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildFixtureTrace records a small advisory-shaped trace under a manual
// clock: two sequential phases, then two overlapping fan-out workers.
func buildFixtureTrace() *Tracer {
	clk := newManualClock()
	tr := NewTracer(TracerOptions{Clock: clk.Now, TraceID: "deadbeefdeadbeef"})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "advise", String("device", "tx2"))
	clk.advance(time.Millisecond)
	_, mb1 := Start(ctx, "mb1")
	clk.advance(2 * time.Millisecond)
	mb1.End()
	_, mb2 := Start(ctx, "mb2")
	clk.advance(time.Millisecond)
	mb2.End()
	_, wa := Start(ctx, "worker.a")
	clk.advance(500 * time.Microsecond)
	_, wb := Start(ctx, "worker.b")
	clk.advance(500 * time.Microsecond)
	wa.End()
	clk.advance(500 * time.Microsecond)
	wb.End()
	clk.advance(500 * time.Microsecond)
	root.End()
	return tr
}

// TestChromeTraceGolden pins the exact exported bytes: IDs are allocation
// counters, timestamps are epoch offsets, sequential children share the
// parent's lane (tid 1) and the overlapping sibling spills to tid 2 so the
// fan-out renders as parallel tracks.
func TestChromeTraceGolden(t *testing.T) {
	want := `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"igpucomm"}},
{"name":"advise","cat":"igpucomm","ph":"X","ts":0,"dur":6000,"pid":1,"tid":1,"args":{"span_id":"1","device":"tx2"}},
{"name":"mb1","cat":"igpucomm","ph":"X","ts":1000,"dur":2000,"pid":1,"tid":1,"args":{"span_id":"2","parent_id":"1"}},
{"name":"mb2","cat":"igpucomm","ph":"X","ts":3000,"dur":1000,"pid":1,"tid":1,"args":{"span_id":"3","parent_id":"1"}},
{"name":"worker.a","cat":"igpucomm","ph":"X","ts":4000,"dur":1000,"pid":1,"tid":1,"args":{"span_id":"4","parent_id":"1"}},
{"name":"worker.b","cat":"igpucomm","ph":"X","ts":4500,"dur":1000,"pid":1,"tid":2,"args":{"span_id":"5","parent_id":"1"}}
],"displayTimeUnit":"ms","otherData":{"traceId":"deadbeefdeadbeef"}}
`
	var b strings.Builder
	if err := buildFixtureTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeTraceDeterministic re-records the identical span tree and
// demands byte-identical exports: nothing derived from wall-clock or map
// iteration order may leak into the file.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := buildFixtureTrace().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildFixtureTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two identical traces exported differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestChromeTraceIsValidJSON parses the export with encoding/json — the
// exporter builds JSON by hand, so this guards the quoting and comma layout.
func TestChromeTraceIsValidJSON(t *testing.T) {
	var b strings.Builder
	if err := buildFixtureTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 6 { // metadata + 5 spans
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	if doc.OtherData["traceId"] != "deadbeefdeadbeef" {
		t.Fatalf("traceId = %q", doc.OtherData["traceId"])
	}
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Fatalf("span event %q has ph %q, want X", ev.Name, ev.Ph)
		}
		if _, ok := ev.Args["span_id"]; !ok {
			t.Fatalf("span event %q lacks span_id", ev.Name)
		}
	}
}

// TestAssignLanesKeepsLanesLaminar checks the exporter invariant directly:
// within one tid, spans nest properly (no partial overlap), because Chrome
// nests purely by time containment.
func TestAssignLanesKeepsLanesLaminar(t *testing.T) {
	spans := buildFixtureTrace().exportOrder()
	lanes := assignLanes(spans)
	byLane := make(map[int][]*Span)
	for _, s := range spans {
		byLane[lanes[s.ID]] = append(byLane[lanes[s.ID]], s)
	}
	for tid, ls := range byLane {
		for i := 0; i < len(ls); i++ {
			for j := i + 1; j < len(ls); j++ {
				a, b := ls[i], ls[j]
				aEnd, bEnd := a.Start+a.Duration(), b.Start+b.Duration()
				overlap := a.Start < bEnd && b.Start < aEnd
				contained := (a.Start <= b.Start && bEnd <= aEnd) || (b.Start <= a.Start && aEnd <= bEnd)
				if overlap && !contained {
					t.Fatalf("lane %d holds partially overlapping spans %q and %q", tid, a.Name, b.Name)
				}
			}
		}
	}
}

func TestWriteTextTree(t *testing.T) {
	want := `advise 6ms device=tx2
  mb1 2ms
  mb2 1ms
  worker.a 1ms
  worker.b 1ms
`
	var b strings.Builder
	if err := buildFixtureTrace().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("text tree mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestMicros(t *testing.T) {
	cases := map[time.Duration]string{
		0:                      "0",
		time.Microsecond:       "1",
		1500 * time.Nanosecond: "1.500",
		time.Millisecond:       "1000",
	}
	for d, want := range cases {
		if got := micros(d); got != want {
			t.Fatalf("micros(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestJSONStringEscaping(t *testing.T) {
	cases := map[string]string{
		`plain`:      `"plain"`,
		"a\"b":       `"a\"b"`,
		"a\\b":       `"a\\b"`,
		"a\nb\tc":    `"a\nb\tc"`,
		"ctl\x01end": `"ctl\u0001end"`,
	}
	for in, want := range cases {
		if got := jsonString(in); got != want {
			t.Fatalf("jsonString(%q) = %s, want %s", in, got, want)
		}
	}
}
