// Package telemetry is the repo's zero-dependency observability layer: a
// span tracer propagated through context.Context and a metrics registry
// rendered in Prometheus text exposition format.
//
// Tracing. A Tracer collects a tree of spans — name, attributes, start
// offset, duration, parent — started with Start and closed with End. Spans
// flow through contexts: install a tracer with WithTracer, and every
// instrumented layer (engine fan-out, framework micro-benchmark phases,
// profiling, checked execution) opens child spans under whatever span the
// context carries. When no tracer is installed, Start returns a nil span
// whose methods no-op, so the hot path pays one context lookup and nothing
// else. Completed traces export as Chrome trace_event JSON
// (chrome://tracing, Perfetto) — which makes the engine's fan-out
// parallelism visible as overlapping lanes — or as a human-readable tree.
//
// Metrics. A Registry holds counters, gauges and fixed-bucket latency
// histograms, all safe for concurrent use via atomics, and renders them in
// Prometheus text exposition format for scraping (advisord's /metrics).
//
// Everything here is dependency-free on purpose: the simulator is the
// product, and pinning OpenTelemetry or client_golang for a span struct and
// a text format would dwarf the code it supports (see DESIGN §10).
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

type ctxKey int

const (
	ctxSpanKey ctxKey = iota
	ctxTracerKey
	ctxTraceIDKey
)

// WithTracer returns a context whose spans record into t. Instrumented code
// below this context opens spans via Start.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxTracerKey, t)
}

// TracerFrom returns the tracer the context carries, either installed
// directly (WithTracer) or implied by the current span. Nil when the context
// is untraced.
func TracerFrom(ctx context.Context) *Tracer {
	if s := SpanFrom(ctx); s != nil {
		return s.tracer
	}
	t, _ := ctx.Value(ctxTracerKey).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxSpanKey).(*Span)
	return s
}

// WithTraceID returns a context carrying a request-scoped trace ID. Every
// span started under it is stamped with a trace_id attribute (advisord sets
// this per HTTP request and echoes the ID in the X-Trace-Id header).
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxTraceIDKey, id)
}

// TraceIDFrom returns the context's trace ID, or "".
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxTraceIDKey).(string)
	return id
}

// NewTraceID returns a 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable enough that a fixed ID —
		// still unique per process lifetime for logging purposes — beats
		// aborting a request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
