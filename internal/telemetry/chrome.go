package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteChromeTrace writes the trace as Chrome trace_event JSON ("X" complete
// events), loadable in chrome://tracing and Perfetto. Spans are emitted in
// (start, ID) order and IDs are allocation counters, so for a given span tree
// the output is byte-deterministic — no wall-clock leaks into IDs or
// ordering (timestamps are offsets from the tracer epoch).
//
// Chrome nests events on one tid by time containment, so the exporter
// assigns each span a lane ("tid") such that every lane holds a properly
// nested set: a child rides its parent's lane when no placed sibling
// overlaps it, and overlapping siblings — the engine's fan-out — spill to
// fresh lanes, which is exactly what makes the parallelism visible.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.exportOrder()
	lanes := assignLanes(spans)
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"igpucomm"}}`)
	for _, s := range spans {
		b.WriteString(",\n")
		fmt.Fprintf(&b, `{"name":%s,"cat":"igpucomm","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{`,
			jsonString(s.Name), micros(s.Start), micros(s.Duration()), lanes[s.ID])
		fmt.Fprintf(&b, `"span_id":"%d"`, s.ID)
		if s.ParentID != 0 {
			fmt.Fprintf(&b, `,"parent_id":"%d"`, s.ParentID)
		}
		for _, a := range s.Attrs() {
			fmt.Fprintf(&b, ",%s:%s", jsonString(a.Key), jsonString(a.Value))
		}
		b.WriteString("}}")
	}
	// Counter samples become "C" events after the spans, in (ts, insertion)
	// order — insertion IDs break timestamp ties under a frozen fake clock,
	// so the output stays byte-deterministic. Traces that never call Counter
	// emit exactly the pre-counter byte stream.
	counters := t.counterSamples()
	sort.SliceStable(counters, func(i, j int) bool {
		if counters[i].ts != counters[j].ts {
			return counters[i].ts < counters[j].ts
		}
		return counters[i].id < counters[j].id
	})
	for _, c := range counters {
		b.WriteString(",\n")
		fmt.Fprintf(&b, `{"name":%s,"cat":"igpucomm","ph":"C","ts":%s,"pid":1,"args":{`,
			jsonString(c.name), micros(c.ts))
		for i, v := range c.values {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%s", jsonString(v.Series), strconv.FormatFloat(v.Value, 'g', -1, 64))
		}
		b.WriteString("}}")
	}
	fmt.Fprintf(&b, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"traceId\":%s}}\n", jsonString(t.traceID))
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteText writes the trace as an indented tree — a flame graph for
// terminals: each line is a span with its duration and attributes, children
// indented under parents in start order.
func (t *Tracer) WriteText(w io.Writer) error {
	spans := t.exportOrder()
	children := make(map[int64][]*Span)
	var roots []*Span
	for _, s := range spans {
		if s.ParentID == 0 {
			roots = append(roots, s)
		} else {
			children[s.ParentID] = append(children[s.ParentID], s)
		}
	}
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %v", strings.Repeat("  ", depth), s.Name, s.Duration())
		for _, a := range s.Attrs() {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exportOrder snapshots spans sorted by (start, ID): a parent is created
// before its children, so the order is topological even under a frozen fake
// clock.
func (t *Tracer) exportOrder() []*Span {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	return spans
}

// lane is one Chrome tid: a stack of open spans, kept properly nested.
type lane struct {
	open []*Span // innermost last
	ends []time.Duration
}

// fits reports whether s can be placed on l keeping the lane laminar, after
// retiring spans that ended at or before s starts.
func (l *lane) fits(s *Span, end time.Duration) bool {
	for len(l.open) > 0 && l.ends[len(l.ends)-1] <= s.Start {
		l.open = l.open[:len(l.open)-1]
		l.ends = l.ends[:len(l.ends)-1]
	}
	return len(l.open) == 0 || l.ends[len(l.ends)-1] >= end
}

func (l *lane) push(s *Span, end time.Duration) {
	l.open = append(l.open, s)
	l.ends = append(l.ends, end)
}

// assignLanes maps span ID -> tid. Spans must be in (start, ID) order.
func assignLanes(spans []*Span) map[int64]int {
	out := make(map[int64]int, len(spans))
	var lanes []*lane
	for _, s := range spans {
		end := s.Start + s.Duration()
		placed := -1
		// Prefer the parent's lane when the parent is still the innermost
		// open span there — that renders the child nested under it.
		if s.ParentID != 0 {
			if pl, ok := out[s.ParentID]; ok && lanes[pl-1].fits(s, end) {
				open := lanes[pl-1].open
				if len(open) > 0 && open[len(open)-1].ID == s.ParentID {
					placed = pl - 1
				}
			}
		}
		if placed < 0 {
			for i, l := range lanes {
				if l.fits(s, end) && len(l.open) == 0 {
					placed = i
					break
				}
			}
		}
		if placed < 0 {
			lanes = append(lanes, &lane{})
			placed = len(lanes) - 1
		}
		lanes[placed].push(s, end)
		out[s.ID] = placed + 1
	}
	return out
}

// micros renders a duration as microseconds with nanosecond precision,
// without float formatting jitter.
func micros(d time.Duration) string {
	ns := d.Nanoseconds()
	if ns%1000 == 0 {
		return fmt.Sprintf("%d", ns/1000)
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jsonString escapes a string for direct JSON embedding.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
