package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Inc()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 3200 {
		t.Fatalf("gauge after concurrent Inc = %g, want 3200", got)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket semantics:
// a value exactly on a bound lands in that bound's bucket, zero lands in the
// first bucket of a zero-bounded histogram, and anything above the last bound
// — including +Inf itself — lands in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0, 0.1, 1})
	for _, v := range []float64{
		-1,          // below every bound -> bucket le=0
		0,           // exactly on the 0 bound -> bucket le=0
		0.05,        // -> le=0.1
		0.1,         // exactly on the bound -> le=0.1
		0.5,         // -> le=1
		1,           // exactly on the bound -> le=1
		2,           // above the last bound -> +Inf
		math.Inf(1), // -> +Inf
	} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // le=0, le=0.1, le=1, +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); !math.IsInf(got, 1) {
		t.Fatalf("sum = %g, want +Inf (an Inf observation was recorded)", got)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := newHistogram(nil)
	if len(h.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(h.bounds), len(DefBuckets))
	}
	h.Observe(0.0001)
	if got := h.counts[0].Load(); got != 1 {
		t.Fatal("tiny observation should land in the first default bucket")
	}
}

func TestHistogramRejectsNonAscendingBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newHistogram should panic on non-ascending bounds")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name twice should panic")
		}
	}()
	r.Gauge("x_total", "again")
}

func TestRegistryRejectsInvalidNames(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("registering an invalid name should panic")
		}
	}()
	r.Counter("8bad name", "nope")
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "requests", "endpoint")
	cv.With("/a").Inc()
	cv.With("/a").Inc()
	cv.With("/b").Inc()
	if got := cv.With("/a").Value(); got != 2 {
		t.Fatalf("child /a = %d, want 2", got)
	}
	hv := r.HistogramVec("lat_seconds", "latency", "endpoint", []float64{1})
	hv.With("/a").Observe(0.5)
	if got := hv.With("/a").Count(); got != 1 {
		t.Fatalf("histogram child count = %d, want 1", got)
	}
}

// TestRegistryConcurrentScrape hammers instruments while scraping; run under
// -race this proves a scrape never tears or races a hot-path update.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("lat_seconds", "latency", nil)
	cv := r.CounterVec("code_total", "by code", "code")
	r.GaugeFunc("derived", "scrape-time", func() float64 { return g.Value() * 2 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					g.Add(1)
					h.Observe(0.01)
					cv.With("200").Inc()
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if !strings.Contains(b.String(), "ops_total") {
			t.Fatal("scrape lost a family")
		}
	}
	close(stop)
	wg.Wait()
}
