package telemetry

import "time"

// CounterValue is one named series sample within a counter event. A counter
// with several series (e.g. reads + writes) renders as a stacked area chart
// in the Chrome trace viewer.
type CounterValue struct {
	Series string
	Value  float64
}

// counterSample is one recorded counter event: a named set of series values
// at a clock offset. The id is the insertion order, which breaks timestamp
// ties deterministically under a frozen fake clock (mirroring span IDs).
type counterSample struct {
	name   string
	ts     time.Duration // offset from the tracer epoch
	id     int64
	values []CounterValue
}

// Counter records a counter sample: name identifies the counter track,
// values are the series plotted on it, in the order given. Safe for
// concurrent use; a nil tracer no-ops so call sites need no guards.
func (t *Tracer) Counter(name string, values ...CounterValue) {
	if t == nil || len(values) == 0 {
		return
	}
	ts := t.clock().Sub(t.epoch)
	vals := make([]CounterValue, len(values))
	copy(vals, values)
	t.mu.Lock()
	t.counters = append(t.counters, counterSample{
		name:   name,
		ts:     ts,
		id:     int64(len(t.counters)) + 1,
		values: vals,
	})
	t.mu.Unlock()
}

// CounterLen returns the number of counter samples recorded so far.
func (t *Tracer) CounterLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.counters)
}

// counterSamples snapshots the recorded counter samples in insertion order.
func (t *Tracer) counterSamples() []counterSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]counterSample, len(t.counters))
	copy(out, t.counters)
	return out
}
