package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition output — family
// ordering, HELP/TYPE lines, label rendering, cumulative histogram buckets
// with the implicit +Inf, and _sum/_count — against a hand-checked golden.
// Observation values are dyadic rationals so float formatting is exact.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.InfoGauge("app_build_info", "Build facts.",
		map[string]string{"version": "v1", "revision": "abc"})
	hv := r.HistogramVec("app_http_latency_seconds", "Latency by endpoint.", "endpoint", []float64{0.1, 1})
	hv.With("/a").Observe(0.0625)
	hv.With("/a").Observe(0.25)
	hv.With("/a").Observe(5)
	c := r.Counter("app_ops_total", "Operations.")
	c.Add(3)
	g := r.Gauge("app_queue_depth", "Queue depth.")
	g.Set(2.5)
	cv := r.CounterVec("app_resp_total", "Responses by code.", "code")
	cv.With("200").Add(2)
	cv.With("500").Inc()
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 12.5 })

	want := `# HELP app_build_info Build facts.
# TYPE app_build_info gauge
app_build_info{revision="abc",version="v1"} 1
# HELP app_http_latency_seconds Latency by endpoint.
# TYPE app_http_latency_seconds histogram
app_http_latency_seconds_bucket{endpoint="/a",le="0.1"} 1
app_http_latency_seconds_bucket{endpoint="/a",le="1"} 2
app_http_latency_seconds_bucket{endpoint="/a",le="+Inf"} 3
app_http_latency_seconds_sum{endpoint="/a"} 5.3125
app_http_latency_seconds_count{endpoint="/a"} 3
# HELP app_ops_total Operations.
# TYPE app_ops_total counter
app_ops_total 3
# HELP app_queue_depth Queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 2.5
# HELP app_resp_total Responses by code.
# TYPE app_resp_total counter
app_resp_total{code="200"} 2
app_resp_total{code="500"} 1
# HELP app_uptime_seconds Uptime.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 12.5
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusUnlabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		`lat_seconds_sum 2.5`,
		`lat_seconds_count 2`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{2.5: "2.5", 0: "0"}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%g) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(1.0 / 0.0001); got != "10000" {
		t.Fatalf("formatFloat = %q", got)
	}
}

func TestWritePrometheusCounterVecFunc(t *testing.T) {
	r := NewRegistry()
	r.CounterVecFunc("faults_total", "Injected faults by point.", "point",
		func() map[string]float64 {
			return map[string]float64{"b.point": 2, "a.point": 7}
		})
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP faults_total Injected faults by point.
# TYPE faults_total counter
faults_total{point="a.point"} 7
faults_total{point="b.point"} 2
`
	if buf.String() != want {
		t.Errorf("counter vec func rendering:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
