package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Counter("x", CounterValue{Series: "a", Value: 1}) // must not panic
	if tr.CounterLen() != 0 {
		t.Error("nil tracer counted samples")
	}
}

func TestCounterIgnoresEmptyValues(t *testing.T) {
	tr := NewTracer(TracerOptions{TraceID: "t"})
	tr.Counter("empty")
	if tr.CounterLen() != 0 {
		t.Errorf("CounterLen = %d, want 0 for a value-less sample", tr.CounterLen())
	}
}

// TestChromeTraceCounterGolden pins the counter events' exact bytes: "C"
// events follow the spans in (ts, insertion) order, series render in call
// order, and float values use shortest-round-trip formatting.
func TestChromeTraceCounterGolden(t *testing.T) {
	clk := newManualClock()
	tr := NewTracer(TracerOptions{Clock: clk.Now, TraceID: "deadbeefdeadbeef"})
	clk.advance(time.Millisecond)
	tr.Counter("heat tx2/shwfs/sc",
		CounterValue{Series: "frame", Value: 2.25},
		CounterValue{Series: "centroids", Value: 36})
	tr.Counter("heat tx2/shwfs/zc", CounterValue{Series: "frame", Value: 1.5})

	want := `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"igpucomm"}},
{"name":"heat tx2/shwfs/sc","cat":"igpucomm","ph":"C","ts":1000,"pid":1,"args":{"frame":2.25,"centroids":36}},
{"name":"heat tx2/shwfs/zc","cat":"igpucomm","ph":"C","ts":1000,"pid":1,"args":{"frame":1.5}}
],"displayTimeUnit":"ms","otherData":{"traceId":"deadbeefdeadbeef"}}
`
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("counter trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeTraceCountersAfterSpans checks the combined export stays valid
// JSON with counters interleaved into a real span tree, and that a trace
// without counters is unchanged (the golden in chrome_test.go enforces the
// exact bytes).
func TestChromeTraceCountersAfterSpans(t *testing.T) {
	tr := buildFixtureTrace()
	tr.Counter("heat", CounterValue{Series: "buf", Value: 4})
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 7 { // metadata + 5 spans + 1 counter
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Ph != "C" || last.Name != "heat" {
		t.Fatalf("last event = %+v, want the counter", last)
	}
	if v, ok := last.Args["buf"].(float64); !ok || v != 4 {
		t.Fatalf("counter args = %v, want buf=4", last.Args)
	}
}
