package telemetry

import (
	"context"
	"sync"
	"time"
)

// Attr is one key=value span attribute. Values are strings; use the
// formatting helpers for other types so exporters need no type switches.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Clock overrides time.Now (golden tests use a stepping fake so trace
	// exports are byte-deterministic).
	Clock func() time.Time
	// TraceID labels the whole trace; a random one is generated when empty.
	TraceID string
}

// Tracer collects spans. Safe for concurrent use; span IDs are allocation
// order, and all times are offsets from the tracer's creation instant so an
// export never embeds absolute wall-clock.
type Tracer struct {
	clock   func() time.Time
	epoch   time.Time
	traceID string

	mu       sync.Mutex
	spans    []*Span
	counters []counterSample
}

// NewTracer builds a tracer.
func NewTracer(o TracerOptions) *Tracer {
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.TraceID == "" {
		o.TraceID = NewTraceID()
	}
	return &Tracer{clock: o.Clock, epoch: o.Clock(), traceID: o.TraceID}
}

// TraceID returns the tracer's trace ID.
func (t *Tracer) TraceID() string { return t.traceID }

// Len returns the number of spans started so far.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans snapshots the started spans in ID order.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Span is one timed operation in the trace tree. Exported fields are fixed
// at creation; duration and attributes are guarded for concurrent readers
// (an exporter may run while spans are still open).
type Span struct {
	ID       int64
	ParentID int64 // 0: root
	Name     string
	Start    time.Duration // offset from the tracer epoch

	tracer *Tracer

	mu    sync.Mutex
	attrs []Attr
	dur   time.Duration
	ended bool
}

// Start opens a span named name under the context's current span (or as a
// root when there is none) and returns a context carrying it. When the
// context has no tracer the returned span is nil — all Span methods are
// nil-safe, so call sites need no guards.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	var tracer *Tracer
	if parent != nil {
		tracer = parent.tracer
	} else if tracer, _ = ctx.Value(ctxTracerKey).(*Tracer); tracer == nil {
		return ctx, nil
	}
	s := &Span{
		Name:   name,
		Start:  tracer.clock().Sub(tracer.epoch),
		tracer: tracer,
		attrs:  attrs,
	}
	if parent != nil {
		s.ParentID = parent.ID
	}
	if id := TraceIDFrom(ctx); id != "" {
		s.attrs = append(s.attrs, String("trace_id", id))
	}
	tracer.mu.Lock()
	s.ID = int64(len(tracer.spans)) + 1
	tracer.spans = append(tracer.spans, s)
	tracer.mu.Unlock()
	return context.WithValue(ctx, ctxSpanKey, s), s
}

// End closes the span, fixing its duration. Second and later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.clock().Sub(s.tracer.epoch)
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now - s.Start
	}
	s.mu.Unlock()
}

// SetAttr adds (or appends, attributes are not deduplicated) an attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Duration returns the span's duration; for a still-open span, the elapsed
// time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return s.tracer.clock().Sub(s.tracer.epoch) - s.Start
}

// Attrs snapshots the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}
