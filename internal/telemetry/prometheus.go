package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4), families and label values sorted so the output is stable
// for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(float64(f.counter.Value())))
		case f.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		case f.fn != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
		case f.fnVec != nil:
			vals := f.fnVec()
			for _, lv := range sortedKeys(vals) {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", f.name, f.label, lv, formatFloat(vals[lv]))
			}
		case f.info != nil:
			fmt.Fprintf(&b, "%s{%s} 1\n", f.name, formatLabels(f.info))
		case f.hist != nil:
			writeHistogram(&b, f.name, "", "", f.hist)
		case f.counters != nil:
			f.mu.Lock()
			for _, lv := range sortedKeys(f.counters) {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", f.name, f.label, lv,
					formatFloat(float64(f.counters[lv].Value())))
			}
			f.mu.Unlock()
		case f.hists != nil:
			f.mu.Lock()
			for _, lv := range sortedKeys(f.hists) {
				writeHistogram(&b, f.name, f.label, lv, f.hists[lv])
			}
			f.mu.Unlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves WritePrometheus — mount it on /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// writeHistogram renders the cumulative bucket series plus _sum and _count.
func writeHistogram(b *strings.Builder, name, label, lv string, h *Histogram) {
	prefix := func(le string) string {
		if label == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", name, le)
		}
		return fmt.Sprintf("%s_bucket{%s=%q,le=%q}", name, label, lv, le)
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s %d\n", prefix(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", prefix("+Inf"), cum)
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, lv)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.Count())
}

func formatLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
