// Package buildinfo is the shared version/build identity helper behind every
// binary's -version flag, advisord's /statusz, and the build_info metric: one
// place that interrogates runtime/debug.ReadBuildInfo so the eight cmd/
// binaries cannot drift in how they report themselves.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the distilled build identity.
type Info struct {
	// Main is the main module path (e.g. "igpucomm").
	Main string `json:"main"`
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS commit, with a "+dirty" suffix for modified
	// trees; empty when the binary was built outside version control.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// OS and Arch are the target platform.
	OS   string `json:"os"`
	Arch string `json:"arch"`
}

// Get reads the running binary's build information. It degrades gracefully
// (test binaries and unusual link modes may carry no build info).
func Get() Info {
	info := Info{
		Main:      "igpucomm",
		Version:   "unknown",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Main = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		info.Revision = revision
	}
	return info
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	rev := i.Revision
	if rev == "" {
		rev = "unknown"
	}
	return fmt.Sprintf("%s %s (rev %s, %s, %s/%s)", i.Main, i.Version, rev, i.GoVersion, i.OS, i.Arch)
}

// Labels returns the info as metric labels for a build_info gauge.
func (i Info) Labels() map[string]string {
	rev := i.Revision
	if rev == "" {
		rev = "unknown"
	}
	return map[string]string{
		"version":    i.Version,
		"revision":   rev,
		"go_version": i.GoVersion,
	}
}
