package buildinfo

import (
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.GoVersion == "" {
		t.Fatal("GoVersion should always be set")
	}
	if info.OS == "" || info.Arch == "" {
		t.Fatalf("OS/Arch empty: %+v", info)
	}
	if info.Version == "" {
		t.Fatal("Version should default to a placeholder, never empty")
	}
}

func TestString(t *testing.T) {
	s := Get().String()
	for _, part := range []string{Get().Main, Get().GoVersion, Get().OS + "/" + Get().Arch} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() = %q, missing %q", s, part)
		}
	}
}

func TestLabels(t *testing.T) {
	labels := Get().Labels()
	for _, k := range []string{"version", "revision", "go_version"} {
		if labels[k] == "" {
			t.Fatalf("Labels() missing %q: %v", k, labels)
		}
	}
}
