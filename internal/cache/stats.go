package cache

// Stats collects the counters a profiling tool would expose for one cache
// level. All byte counts are line-granular (a partial-line demand access
// still moves a whole line, as in hardware).
type Stats struct {
	Reads      int64
	Writes     int64
	ReadHits   int64
	WriteHits  int64
	Evictions  int64
	Writebacks int64 // dirty evictions pushed to the lower level

	// Writeback traffic received from an upper level.
	WritebacksIn int64

	Flushes         int64
	FlushWritebacks int64
	Invalidates     int64

	// Bypass traffic observed while the level was disabled.
	Bypasses    int64
	BypassBytes int64

	// BytesIn counts all line fills + writeback-in traffic in bytes.
	BytesIn int64
}

func (s *Stats) count(kind Kind, lineSize int64) {
	switch kind {
	case Read:
		s.Reads++
	case Write:
		s.Writes++
	case Writeback:
		s.WritebacksIn++
	}
	s.BytesIn += lineSize
}

func (s *Stats) countHit(kind Kind) {
	switch kind {
	case Read:
		s.ReadHits++
	case Write:
		s.WriteHits++
	}
}

// Accesses is the total number of demand accesses (reads + writes).
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Hits is the total number of demand hits.
func (s Stats) Hits() int64 { return s.ReadHits + s.WriteHits }

// Misses is the total number of demand misses.
func (s Stats) Misses() int64 { return s.Accesses() - s.Hits() }

// HitRate is demand hits over demand accesses, 0 when idle.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(a)
}

// MissRate is 1 - HitRate for a non-idle cache, 0 when idle.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

// Add accumulates other into s (useful to merge per-SM L1 stats).
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ReadHits += other.ReadHits
	s.WriteHits += other.WriteHits
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.WritebacksIn += other.WritebacksIn
	s.Flushes += other.Flushes
	s.FlushWritebacks += other.FlushWritebacks
	s.Invalidates += other.Invalidates
	s.Bypasses += other.Bypasses
	s.BypassBytes += other.BypassBytes
	s.BytesIn += other.BytesIn
}
