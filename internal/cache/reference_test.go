package cache

// Differential testing of the cache against an executable reference model:
// an obviously-correct map+slice implementation of set-associative LRU. Every
// access of a generated sequence must classify identically (hit/miss) in
// both, and the final resident sets must match. The cache is the substrate's
// ground truth, so it gets the strongest check in the repository.

import (
	"testing"
	"testing/quick"
)

// refCache is the specification: per set, an LRU-ordered list of tags.
type refCache struct {
	lineSize int64
	sets     int64
	ways     int
	lru      map[int64][]int64 // set -> tags, most recent last
	dirty    map[int64]bool    // line address -> dirty
}

func newRefCache(size, lineSize int64, ways int) *refCache {
	return &refCache{
		lineSize: lineSize,
		sets:     size / (lineSize * int64(ways)),
		ways:     ways,
		lru:      make(map[int64][]int64),
		dirty:    make(map[int64]bool),
	}
}

// access classifies one line-sized access and updates the model; it returns
// whether it hit and, if an eviction happened, whether the victim was dirty.
func (r *refCache) access(addr int64, write bool) (hit bool, evictedDirty bool) {
	line := addr / r.lineSize
	set := line % r.sets
	tag := line / r.sets
	tags := r.lru[set]
	for i, tg := range tags {
		if tg == tag {
			// Move to MRU.
			tags = append(append(append([]int64{}, tags[:i]...), tags[i+1:]...), tag)
			r.lru[set] = tags
			if write {
				r.dirty[line] = true
			}
			return true, false
		}
	}
	// Miss: evict LRU if full.
	if len(tags) == r.ways {
		victim := tags[0]
		tags = tags[1:]
		victimLine := victim*r.sets + set
		evictedDirty = r.dirty[victimLine]
		delete(r.dirty, victimLine)
	}
	tags = append(tags, tag)
	r.lru[set] = tags
	if write {
		r.dirty[line] = true
	} else {
		delete(r.dirty, line)
	}
	return false, evictedDirty
}

func (r *refCache) resident() map[int64]bool {
	out := make(map[int64]bool)
	for set, tags := range r.lru {
		for _, tag := range tags {
			out[tag*r.sets+set] = true
		}
	}
	return out
}

// countingSink tallies writebacks so the dirty-eviction behaviour can be
// compared too.
type countingSink struct{ writebacks int }

func (s *countingSink) Name() string { return "sink" }
func (s *countingSink) Do(a Access) Result {
	if a.Kind == Writeback {
		s.writebacks++
	}
	return Result{Latency: 1, ServedBy: "sink"}
}

func TestDifferentialAgainstReferenceModel(t *testing.T) {
	type geometry struct {
		size, line int64
		ways       int
	}
	geoms := []geometry{
		{1024, 64, 1},  // direct mapped
		{1024, 64, 4},  // typical
		{512, 32, 8},   // fully associative (2 sets... 512/32/8 = 2 sets)
		{2048, 128, 2}, // wide lines
	}
	f := func(ops []uint16, writes []bool, geoSel uint8) bool {
		geo := geoms[int(geoSel)%len(geoms)]
		sink := &countingSink{}
		real := New(Config{Name: "dut", Size: geo.size, LineSize: geo.line, Ways: geo.ways, HitLatency: 1}, sink)
		ref := newRefCache(geo.size, geo.line, geo.ways)
		refWritebacks := 0

		for i, op := range ops {
			// Line-aligned single-line accesses keep the comparison 1:1.
			addr := (int64(op) % 256) * geo.line
			write := i < len(writes) && writes[i]
			kind := Read
			if write {
				kind = Write
			}
			before := real.Stats().Hits()
			real.Do(Access{Addr: addr, Size: 4, Kind: kind})
			realHit := real.Stats().Hits() > before

			refHit, evictedDirty := ref.access(addr, write)
			if evictedDirty {
				refWritebacks++
			}
			if realHit != refHit {
				t.Logf("access %d addr %d write %v: real hit=%v ref hit=%v", i, addr, write, realHit, refHit)
				return false
			}
		}
		// Writeback counts agree (no flush happened, so sink counts demand
		// evictions only).
		if sink.writebacks != refWritebacks {
			t.Logf("writebacks: real %d ref %d", sink.writebacks, refWritebacks)
			return false
		}
		// Final resident sets agree.
		for line := range ref.resident() {
			if !real.Contains(line * geo.line) {
				t.Logf("line %d resident in ref but not in cache", line)
				return false
			}
		}
		if real.ResidentLines() != int64(len(ref.resident())) {
			t.Logf("resident count: real %d ref %d", real.ResidentLines(), len(ref.resident()))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialLongSequence pushes one long deterministic mixed sequence
// through both models (quick.Check sequences are short; this exercises deep
// LRU churn).
func TestDifferentialLongSequence(t *testing.T) {
	sink := &countingSink{}
	real := New(Config{Name: "dut", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 1}, sink)
	ref := newRefCache(4096, 64, 4)
	refWritebacks := 0

	state := uint64(0x12345678)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 20000; i++ {
		addr := int64(next()%512) * 64
		write := next()%3 == 0
		kind := Read
		if write {
			kind = Write
		}
		before := real.Stats().Hits()
		real.Do(Access{Addr: addr, Size: 4, Kind: kind})
		realHit := real.Stats().Hits() > before
		refHit, evictedDirty := ref.access(addr, write)
		if evictedDirty {
			refWritebacks++
		}
		if realHit != refHit {
			t.Fatalf("access %d: real hit=%v ref hit=%v", i, realHit, refHit)
		}
	}
	if sink.writebacks != refWritebacks {
		t.Fatalf("writebacks: real %d ref %d", sink.writebacks, refWritebacks)
	}
	if hr := real.Stats().HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("suspicious hit rate %v for a mixed sequence", hr)
	}
}
