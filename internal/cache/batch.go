package cache

import "igpucomm/internal/units"

// This file is the batch entry point to the cache model: DoBatch services an
// ordered group of accesses level by level instead of recursing per access.
// The simulate hot path (internal/gpu's compiled replay) calls it with whole
// transaction groups, which removes the per-access interface dispatch and
// makes the path allocation-free (the Batch scratch is caller-owned and
// reused).
//
// Equivalence to the serial path (for _, a := range accs { out = c.Do(a) })
// is exact, not approximate:
//
//   - A level's state transitions (LRU order, dirty bits, victim choice,
//     stats) depend only on the sequence of accesses presented to that
//     level, never on what lower levels return. Processing every access's
//     lines at this level first therefore leaves the level in the same
//     state the serial interleaving would.
//   - The lower level sees the same requests in the same order the serial
//     recursion would issue them: per access, per line, the dirty-victim
//     writeback followed by the demand fill.
//   - Latencies combine in the serial float-addition order: per access, per
//     line, out.Latency += HitLatency + lowerLatency — the exact expression
//     and sequence Do uses — so results match bit for bit even for the
//     fractional latencies some device catalogs use.
//
// The property and fuzz suites in this package and internal/gpu hold DoBatch
// to that contract against the serial path and the naive reference model.

// BatchLevel is a Level that can service a whole ordered group of accesses
// in one call. The results must be byte-identical to calling Do per access
// in order.
type BatchLevel interface {
	Level
	DoBatch(accs []Access, out []Result, b *Batch)
}

// Batch is reusable scratch for DoBatch. The zero value is ready to use; a
// Batch may be reused across calls and levels but not concurrently.
type Batch struct {
	lower    []Access
	lowerOut []Result
	lines    []lineRef
	child    *Batch
}

// lineRef records how one cache line of one access resolves: which access it
// belongs to and which lower-level result (if any) contributes its latency.
type lineRef struct {
	acc      int32
	lowerIdx int32 // -1: hit or writeback-allocate (no lower latency)
}

func (b *Batch) childScratch() *Batch {
	if b.child == nil {
		b.child = &Batch{}
	}
	return b.child
}

// DoBatch services accs in order, writing one Result per access into out
// (len(out) must be >= len(accs)). It is byte-identical to calling Do per
// access in order. b is caller-owned scratch; nil allocates a temporary.
func (c *Cache) DoBatch(accs []Access, out []Result, b *Batch) {
	if b == nil {
		b = &Batch{}
	}
	b.lower = b.lower[:0]
	b.lines = b.lines[:0]

	if !c.enabled {
		// Bypass: forward each access unsplit, result passes through.
		for i := range accs {
			out[i] = Result{}
			if accs[i].Size <= 0 {
				continue
			}
			c.stats.Bypasses++
			c.stats.BypassBytes += accs[i].Size
			if c.heat != nil && accs[i].Kind != Writeback {
				c.heat.Record(accs[i].Addr, accs[i].Size, accs[i].Kind == Write, true)
			}
			b.lines = append(b.lines, lineRef{acc: int32(i), lowerIdx: int32(len(b.lower))})
			b.lower = append(b.lower, accs[i])
		}
	} else {
		setBits := uintLog2(c.setCount)
		for i := range accs {
			a := accs[i]
			out[i] = Result{}
			if a.Size <= 0 {
				continue
			}
			first := a.Addr >> c.offBits
			last := (a.Addr + a.Size - 1) >> c.offBits
			for ln := first; ln <= last; ln++ {
				c.useClock++
				set := ln & (c.setCount - 1)
				tag := ln >> setBits
				base := set * int64(c.ways)
				ways := c.sets[base : base+int64(c.ways)]
				c.stats.count(a.Kind, c.cfg.LineSize)

				lowerIdx := int32(-1)
				hit := false
				for w := range ways {
					if ways[w].valid && ways[w].tag == tag {
						ways[w].lastUse = c.useClock
						if a.Kind != Read {
							ways[w].dirty = true
						}
						c.stats.countHit(a.Kind)
						hit = true
						break
					}
				}
				// Heat records at the same points, in the same order, as the
				// serial doLine — the byte-identity contract extends to heat.
				if c.heat != nil {
					c.heat.Record(ln<<c.offBits, c.cfg.LineSize, a.Kind != Read, !hit)
				}
				if !hit {
					victim := 0
					for w := range ways {
						if !ways[w].valid {
							victim = w
							break
						}
						if ways[w].lastUse < ways[victim].lastUse {
							victim = w
						}
					}
					v := &ways[victim]
					if v.valid {
						c.stats.Evictions++
						if v.dirty {
							c.stats.Writebacks++
							wbAddr := (v.tag<<setBits | set) << c.offBits
							if c.heat != nil {
								c.heat.RecordWriteback(wbAddr, c.cfg.LineSize)
							}
							// Writeback latency is off the critical path —
							// enqueued for state and traffic, no lineRef.
							b.lower = append(b.lower, Access{Addr: wbAddr, Size: c.cfg.LineSize, Kind: Writeback})
						}
					}
					if a.Kind != Writeback {
						lowerIdx = int32(len(b.lower))
						b.lower = append(b.lower, Access{Addr: ln << c.offBits, Size: c.cfg.LineSize, Kind: a.Kind})
					}
					*v = line{tag: tag, lastUse: c.useClock, valid: true, dirty: a.Kind != Read}
				}
				b.lines = append(b.lines, lineRef{acc: int32(i), lowerIdx: lowerIdx})
			}
		}
	}

	// Service the lower level with the queued requests — the same sequence
	// the serial recursion would issue, in the same order.
	if cap(b.lowerOut) < len(b.lower) {
		b.lowerOut = make([]Result, len(b.lower))
	}
	lowerOut := b.lowerOut[:len(b.lower)]
	if len(b.lower) > 0 {
		if lc, ok := c.lower.(*Cache); ok {
			lc.DoBatch(b.lower, lowerOut, b.childScratch())
		} else {
			for j := range b.lower {
				lowerOut[j] = c.lower.Do(b.lower[j])
			}
		}
	}

	// Combine: replay the per-line resolution in serial order.
	if !c.enabled {
		for _, lr := range b.lines {
			out[lr.acc] = lowerOut[lr.lowerIdx]
		}
		return
	}
	for _, lr := range b.lines {
		var lowerLat units.Latency
		served := c.cfg.Name
		if lr.lowerIdx >= 0 {
			r := lowerOut[lr.lowerIdx]
			lowerLat = r.Latency
			if r.ServedBy != "" {
				served = r.ServedBy
			}
		}
		out[lr.acc].Latency += c.cfg.HitLatency + lowerLat
		out[lr.acc].ServedBy = served
	}
}
