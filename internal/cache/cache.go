// Package cache implements a deterministic set-associative cache simulator.
//
// It is the ground-truth engine behind the framework's profiler: every
// simulated CPU instruction and GPU memory transaction is pushed through a
// hierarchy of Cache levels terminating in a memory device, and the
// hit/miss/traffic counters collected here feed the paper's cache-usage
// equations (eqns 1-2).
//
// Levels are composable: a Cache forwards misses to its lower Level, which is
// either another Cache or a memory device (internal/memdev). A Cache can be
// bypassed at runtime (SetEnabled(false)) — this is how the simulator models
// the LLC being disabled under the zero-copy communication model.
//
// Caches are write-back, write-allocate, with true-LRU replacement. They are
// not safe for concurrent use; each simulated agent owns its hierarchy.
package cache

import (
	"fmt"

	"igpucomm/internal/heatmap"
	"igpucomm/internal/units"
)

// Kind distinguishes demand reads, demand writes, and writebacks so that
// lower levels can account for traffic correctly.
type Kind uint8

// Access kinds.
const (
	Read Kind = iota
	Write
	Writeback // dirty eviction traffic; latency-free (buffered off critical path)
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one memory request presented to a Level.
type Access struct {
	Addr int64
	Size int64
	Kind Kind
}

// Result reports how a request was serviced.
type Result struct {
	// Latency is the total latency on the critical path, in simulated
	// nanoseconds.
	Latency units.Latency
	// ServedBy names the level that supplied (or absorbed) the data.
	ServedBy string
}

// Level is anything that can service memory accesses: a cache or a memory
// device.
type Level interface {
	Name() string
	Do(a Access) Result
}

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int64 // total capacity in bytes
	LineSize   int64 // bytes per line; power of two
	Ways       int   // associativity; Size/LineSize must be divisible by Ways
	HitLatency units.Latency
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0:
		return fmt.Errorf("cache %s: size %d must be positive", c.Name, c.Size)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %s: line size %d must be a positive power of two", c.Name, c.LineSize)
	case c.Ways <= 0:
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	case c.Size%(c.LineSize*int64(c.Ways)) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*ways %d", c.Name, c.Size, c.LineSize*int64(c.Ways))
	}
	sets := c.Size / (c.LineSize * int64(c.Ways))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d must be a power of two", c.Name, sets)
	}
	return nil
}

type line struct {
	tag     int64
	lastUse uint64
	valid   bool
	dirty   bool
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	lower    Level
	sets     []line // sets*ways, laid out set-major
	ways     int
	setCount int64
	offBits  uint
	useClock uint64
	enabled  bool
	stats    Stats
	// heat, when non-nil, receives one record per line serviced. Only
	// entry-level caches (CPU L1, per-SM GPU L1s) carry a sink, so a page is
	// attributed exactly once per demand touch; the nil check is the entire
	// cost of the disabled path.
	heat *heatmap.Accumulator
}

// New builds a cache level on top of lower. It panics if cfg is invalid or
// lower is nil: cache geometry is static configuration, and a bad geometry is
// a programming error, not a runtime condition.
func New(cfg Config, lower Level) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if lower == nil {
		panic(fmt.Sprintf("cache %s: nil lower level", cfg.Name))
	}
	setCount := cfg.Size / (cfg.LineSize * int64(cfg.Ways))
	offBits := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		offBits++
	}
	return &Cache{
		cfg:      cfg,
		lower:    lower,
		sets:     make([]line, setCount*int64(cfg.Ways)),
		ways:     cfg.Ways,
		setCount: setCount,
		offBits:  offBits,
		enabled:  true,
	}
}

// Name returns the configured level name.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Lower returns the next level down.
func (c *Cache) Lower() Level { return c.lower }

// Enabled reports whether the cache is participating in lookups.
func (c *Cache) Enabled() bool { return c.enabled }

// SetEnabled switches the cache in or out of the access path. Disabling
// flushes nothing by itself — callers that need coherence must Flush first
// (see internal/coherence). While disabled, every access is forwarded to the
// lower level and counted as a bypass.
func (c *Cache) SetEnabled(on bool) { c.enabled = on }

// SetHeatSink attaches (or, with nil, detaches) the per-page heat
// accumulator this level reports line traffic to. Heat recording never
// changes a Result or any cache state, so enabling it cannot perturb the
// simulation.
func (c *Cache) SetHeatSink(h *heatmap.Accumulator) { c.heat = h }

// Do services one access, recursing into lower levels on miss. Requests
// larger than a line are split into per-line requests and the latencies are
// summed (the agent models decide what issues; the cache just services).
func (c *Cache) Do(a Access) Result {
	if a.Size <= 0 {
		return Result{}
	}
	if !c.enabled {
		c.stats.Bypasses++
		c.stats.BypassBytes += a.Size
		if c.heat != nil && a.Kind != Writeback {
			// A bypassed demand access is serviced below this level: a miss
			// by construction.
			c.heat.Record(a.Addr, a.Size, a.Kind == Write, true)
		}
		return c.lower.Do(a)
	}
	var total Result
	first := a.Addr >> c.offBits
	last := (a.Addr + a.Size - 1) >> c.offBits
	for ln := first; ln <= last; ln++ {
		r := c.doLine(ln, a.Kind)
		total.Latency += r.Latency
		total.ServedBy = r.ServedBy // last line wins; uniform for aligned requests
	}
	return total
}

func (c *Cache) doLine(lineAddr int64, kind Kind) Result {
	c.useClock++
	set := lineAddr & (c.setCount - 1)
	tag := lineAddr >> uintLog2(c.setCount)
	base := set * int64(c.ways)
	ways := c.sets[base : base+int64(c.ways)]

	c.stats.count(kind, c.cfg.LineSize)

	// Hit path.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.useClock
			if kind != Read {
				ways[i].dirty = true
			}
			c.stats.countHit(kind)
			if c.heat != nil {
				c.heat.Record(lineAddr<<c.offBits, c.cfg.LineSize, kind != Read, false)
			}
			return Result{Latency: c.cfg.HitLatency, ServedBy: c.cfg.Name}
		}
	}
	if c.heat != nil {
		c.heat.Record(lineAddr<<c.offBits, c.cfg.LineSize, kind != Read, true)
	}

	// Miss: pick victim (invalid first, else LRU).
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	v := &ways[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			wbAddr := (v.tag<<uintLog2(c.setCount) | set) << c.offBits
			if c.heat != nil {
				c.heat.RecordWriteback(wbAddr, c.cfg.LineSize)
			}
			c.lower.Do(Access{Addr: wbAddr, Size: c.cfg.LineSize, Kind: Writeback})
		}
	}

	// Fill from below. Writebacks arriving here allocate without a demand
	// fetch (the line is fully overwritten), so only Read/Write fetch.
	var lowerRes Result
	if kind != Writeback {
		lowerRes = c.lower.Do(Access{Addr: lineAddr << c.offBits, Size: c.cfg.LineSize, Kind: kind})
	}
	*v = line{tag: tag, lastUse: c.useClock, valid: true, dirty: kind != Read}

	served := lowerRes.ServedBy
	if served == "" {
		served = c.cfg.Name
	}
	return Result{Latency: c.cfg.HitLatency + lowerRes.Latency, ServedBy: served}
}

// Flush writes back all dirty lines and invalidates the whole cache,
// returning the number of lines written back and the cycle cost on the
// flushing agent (per-line tag walk plus writeback issue). This is the
// operation the standard-copy model performs around every kernel launch.
func (c *Cache) Flush(perLineCost units.Latency) (writebacks int64, cost units.Latency) {
	for i := range c.sets {
		l := &c.sets[i]
		if !l.valid {
			continue
		}
		cost += perLineCost
		if l.dirty {
			writebacks++
			set := int64(i) / int64(c.ways)
			wbAddr := (l.tag<<uintLog2(c.setCount) | set) << c.offBits
			if c.heat != nil {
				c.heat.RecordWriteback(wbAddr, c.cfg.LineSize)
			}
			c.lower.Do(Access{Addr: wbAddr, Size: c.cfg.LineSize, Kind: Writeback})
		}
		*l = line{}
	}
	c.stats.Flushes++
	c.stats.FlushWritebacks += writebacks
	return writebacks, cost
}

// FlushRange writes back and invalidates only the lines holding addresses in
// [lo, hi) — what cache-maintenance-by-VA instructions do. This is how
// software coherence actually flushes shared buffers around kernel launches:
// the agent's private working set stays cached.
func (c *Cache) FlushRange(lo, hi int64, perLineCost units.Latency) (writebacks int64, cost units.Latency) {
	if hi <= lo {
		return 0, 0
	}
	setBits := uintLog2(c.setCount)
	firstLine := lo >> c.offBits
	lastLine := (hi - 1) >> c.offBits
	if n := lastLine - firstLine + 1; n < c.setCount {
		// The range covers fewer lines than the cache has sets, so each set
		// holds at most one in-range line: probe only the touched sets
		// instead of scanning every line. Sets are visited in ascending
		// index order, ways ascending within a set — the same order as the
		// dense scan below, so writeback traffic into the lower level is
		// identical and simulation results do not depend on which path ran.
		s0 := firstLine & (c.setCount - 1)
		flushSet := func(set int64) {
			// The one line address in [firstLine, lastLine] congruent to
			// set modulo setCount.
			la := firstLine + ((set - s0) & (c.setCount - 1))
			if la > lastLine {
				return
			}
			tag := la >> setBits
			addr := la << c.offBits
			base := set * int64(c.ways)
			for w := int64(0); w < int64(c.ways); w++ {
				l := &c.sets[base+w]
				if !l.valid || l.tag != tag {
					continue
				}
				cost += perLineCost
				if l.dirty {
					writebacks++
					if c.heat != nil {
						c.heat.RecordWriteback(addr, c.cfg.LineSize)
					}
					c.lower.Do(Access{Addr: addr, Size: c.cfg.LineSize, Kind: Writeback})
				}
				*l = line{}
			}
		}
		if s0+n <= c.setCount {
			for set := s0; set < s0+n; set++ {
				flushSet(set)
			}
		} else {
			for set := int64(0); set < s0+n-c.setCount; set++ {
				flushSet(set)
			}
			for set := s0; set < c.setCount; set++ {
				flushSet(set)
			}
		}
		c.stats.Flushes++
		c.stats.FlushWritebacks += writebacks
		return writebacks, cost
	}
	for i := range c.sets {
		l := &c.sets[i]
		if !l.valid {
			continue
		}
		set := int64(i) / int64(c.ways)
		addr := (l.tag<<setBits | set) << c.offBits
		if addr+c.cfg.LineSize <= lo || addr >= hi {
			continue
		}
		cost += perLineCost
		if l.dirty {
			writebacks++
			if c.heat != nil {
				c.heat.RecordWriteback(addr, c.cfg.LineSize)
			}
			c.lower.Do(Access{Addr: addr, Size: c.cfg.LineSize, Kind: Writeback})
		}
		*l = line{}
	}
	c.stats.Flushes++
	c.stats.FlushWritebacks += writebacks
	return writebacks, cost
}

// Invalidate drops all lines without writing anything back. Used to model
// the invalidate side of software coherence (before the CPU re-reads data the
// GPU produced under SC).
func (c *Cache) Invalidate() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
	c.stats.Invalidates++
}

// Contains reports whether the line holding addr is currently resident.
// Intended for tests and invariant checks.
func (c *Cache) Contains(addr int64) bool {
	lineAddr := addr >> c.offBits
	set := lineAddr & (c.setCount - 1)
	tag := lineAddr >> uintLog2(c.setCount)
	base := set * int64(c.ways)
	for _, l := range c.sets[base : base+int64(c.ways)] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// ResidentLines counts valid lines; tests use it to check capacity behaviour.
func (c *Cache) ResidentLines() int64 {
	var n int64
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents, so a
// profiler can measure a region of interest after warmup.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func uintLog2(v int64) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
