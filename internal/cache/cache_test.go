package cache

import (
	"testing"
	"testing/quick"

	"igpucomm/internal/units"
)

// sink is a terminal level with fixed latency that records traffic.
type sink struct {
	latency  units.Latency
	accesses []Access
}

func (s *sink) Name() string { return "mem" }
func (s *sink) Do(a Access) Result {
	s.accesses = append(s.accesses, a)
	if a.Kind == Writeback {
		return Result{ServedBy: s.Name()}
	}
	return Result{Latency: s.latency, ServedBy: s.Name()}
}

func newTestCache(t *testing.T, size, lineSize int64, ways int) (*Cache, *sink) {
	t.Helper()
	mem := &sink{latency: 100}
	c := New(Config{Name: "L1", Size: size, LineSize: lineSize, Ways: ways, HitLatency: 4}, mem)
	return c, mem
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Name: "c", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 1}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero-size", Size: 0, LineSize: 64, Ways: 4},
		{Name: "neg-size", Size: -64, LineSize: 64, Ways: 1},
		{Name: "npot-line", Size: 1024, LineSize: 48, Ways: 4},
		{Name: "zero-line", Size: 1024, LineSize: 0, Ways: 4},
		{Name: "zero-ways", Size: 1024, LineSize: 64, Ways: 0},
		{Name: "indivisible", Size: 1000, LineSize: 64, Ways: 4},
		{Name: "npot-sets", Size: 3 * 64 * 4, LineSize: 64, Ways: 4},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s accepted, want error", cfg.Name)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{Name: "bad", Size: 0, LineSize: 64, Ways: 1}, &sink{})
}

func TestNewPanicsOnNilLower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil lower did not panic")
		}
	}()
	New(Config{Name: "c", Size: 1024, LineSize: 64, Ways: 4, HitLatency: 1}, nil)
}

func TestColdMissThenHit(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	r1 := c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	if r1.Latency != 104 {
		t.Errorf("cold miss latency = %v, want 104 (4 tag + 100 mem)", r1.Latency)
	}
	if r1.ServedBy != "mem" {
		t.Errorf("cold miss served by %q, want mem", r1.ServedBy)
	}
	r2 := c.Do(Access{Addr: 32, Size: 4, Kind: Read}) // same line
	if r2.Latency != 4 {
		t.Errorf("hit latency = %v, want 4", r2.Latency)
	}
	if r2.ServedBy != "L1" {
		t.Errorf("hit served by %q, want L1", r2.ServedBy)
	}
	if len(mem.accesses) != 1 {
		t.Errorf("memory accesses = %d, want 1", len(mem.accesses))
	}
	st := c.Stats()
	if st.Reads != 2 || st.ReadHits != 1 {
		t.Errorf("stats = %+v, want 2 reads 1 hit", st)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	// Direct-mapped, 2 sets, line 64: addrs 0 and 128 conflict in set 0.
	c, mem := newTestCache(t, 128, 64, 1)
	c.Do(Access{Addr: 0, Size: 4, Kind: Write})  // allocate dirty
	c.Do(Access{Addr: 128, Size: 4, Kind: Read}) // evicts dirty line 0
	st := c.Stats()
	if st.Evictions != 1 || st.Writebacks != 1 {
		t.Fatalf("evictions=%d writebacks=%d, want 1,1", st.Evictions, st.Writebacks)
	}
	var sawWB bool
	for _, a := range mem.accesses {
		if a.Kind == Writeback {
			sawWB = true
			if a.Addr != 0 || a.Size != 64 {
				t.Errorf("writeback addr/size = %d/%d, want 0/64", a.Addr, a.Size)
			}
		}
	}
	if !sawWB {
		t.Error("no writeback reached memory")
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c, mem := newTestCache(t, 128, 64, 1)
	c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	c.Do(Access{Addr: 128, Size: 4, Kind: Read})
	for _, a := range mem.accesses {
		if a.Kind == Writeback {
			t.Fatal("clean eviction produced a writeback")
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Writebacks != 0 {
		t.Errorf("evictions=%d writebacks=%d, want 1,0", st.Evictions, st.Writebacks)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 1 set: size = 2 lines.
	c, _ := newTestCache(t, 128, 64, 2)
	c.Do(Access{Addr: 0, Size: 4, Kind: Read})   // A
	c.Do(Access{Addr: 128, Size: 4, Kind: Read}) // B
	c.Do(Access{Addr: 0, Size: 4, Kind: Read})   // touch A; B is LRU
	c.Do(Access{Addr: 256, Size: 4, Kind: Read}) // C evicts B
	if !c.Contains(0) {
		t.Error("MRU line A evicted")
	}
	if c.Contains(128) {
		t.Error("LRU line B survived")
	}
	if !c.Contains(256) {
		t.Error("new line C absent")
	}
}

func TestMultiLineAccessSplits(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 0, Size: 256, Kind: Read}) // 4 lines
	if got := len(mem.accesses); got != 4 {
		t.Errorf("memory fills = %d, want 4", got)
	}
	if got := c.Stats().Reads; got != 4 {
		t.Errorf("line reads = %d, want 4", got)
	}
}

func TestUnalignedAccessTouchesBothLines(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 60, Size: 8, Kind: Read}) // straddles lines 0 and 1
	if got := len(mem.accesses); got != 2 {
		t.Errorf("memory fills = %d, want 2", got)
	}
}

func TestZeroAndNegativeSize(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	if r := c.Do(Access{Addr: 0, Size: 0, Kind: Read}); r.Latency != 0 {
		t.Errorf("zero-size access latency = %v, want 0", r.Latency)
	}
	if r := c.Do(Access{Addr: 0, Size: -8, Kind: Read}); r.Latency != 0 {
		t.Errorf("negative-size access latency = %v, want 0", r.Latency)
	}
	if len(mem.accesses) != 0 {
		t.Error("degenerate accesses reached memory")
	}
}

func TestDisableBypasses(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	c.SetEnabled(false)
	r := c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	if r.Latency != 100 {
		t.Errorf("bypass latency = %v, want raw memory 100", r.Latency)
	}
	if r.ServedBy != "mem" {
		t.Errorf("bypass served by %q, want mem", r.ServedBy)
	}
	st := c.Stats()
	if st.Bypasses != 1 || st.BypassBytes != 4 {
		t.Errorf("bypasses=%d bytes=%d, want 1,4", st.Bypasses, st.BypassBytes)
	}
	// Re-enable: previously cached line still resident.
	c.SetEnabled(true)
	if r := c.Do(Access{Addr: 0, Size: 4, Kind: Read}); r.ServedBy != "L1" {
		t.Errorf("after re-enable served by %q, want L1", r.ServedBy)
	}
	_ = mem
}

func TestFlushWritesBackDirtyAndEmpties(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 0, Size: 4, Kind: Write})
	c.Do(Access{Addr: 64, Size: 4, Kind: Read})
	c.Do(Access{Addr: 128, Size: 4, Kind: Write})
	wbs, cost := c.Flush(2)
	if wbs != 2 {
		t.Errorf("flush writebacks = %d, want 2", wbs)
	}
	if cost != 6 { // 3 valid lines * 2 cycles
		t.Errorf("flush cost = %v, want 6", cost)
	}
	if c.ResidentLines() != 0 {
		t.Errorf("resident after flush = %d, want 0", c.ResidentLines())
	}
	var wbCount int
	for _, a := range mem.accesses {
		if a.Kind == Writeback {
			wbCount++
		}
	}
	if wbCount != 2 {
		t.Errorf("writebacks at memory = %d, want 2", wbCount)
	}
}

func TestInvalidateDropsWithoutWriteback(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 0, Size: 4, Kind: Write})
	before := len(mem.accesses)
	c.Invalidate()
	if c.ResidentLines() != 0 {
		t.Error("lines survived invalidate")
	}
	if len(mem.accesses) != before {
		t.Error("invalidate generated memory traffic")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c, _ := newTestCache(t, 1024, 64, 4) // 16 lines
	for i := int64(0); i < 100; i++ {
		c.Do(Access{Addr: i * 64, Size: 4, Kind: Read})
	}
	if got := c.ResidentLines(); got != 16 {
		t.Errorf("resident = %d, want full capacity 16", got)
	}
}

func TestWorkingSetFitsHitRate(t *testing.T) {
	c, _ := newTestCache(t, 32*1024, 64, 8)
	// 16KiB working set streamed 10 times: only the first pass misses.
	const ws = 16 * 1024
	for pass := 0; pass < 10; pass++ {
		for a := int64(0); a < ws; a += 64 {
			c.Do(Access{Addr: a, Size: 4, Kind: Read})
		}
	}
	st := c.Stats()
	wantHitRate := 0.9
	if hr := st.HitRate(); hr < wantHitRate-1e-9 {
		t.Errorf("hit rate = %.3f, want >= %.3f (misses=%d)", hr, wantHitRate, st.Misses())
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	c, _ := newTestCache(t, 1024, 64, 4) // 1KiB cache
	// 64KiB streaming working set: every access after the first pass still misses.
	const ws = 64 * 1024
	for pass := 0; pass < 3; pass++ {
		for a := int64(0); a < ws; a += 64 {
			c.Do(Access{Addr: a, Size: 4, Kind: Read})
		}
	}
	if hr := c.Stats().HitRate(); hr > 0.01 {
		t.Errorf("hit rate on thrashing stream = %.3f, want ~0", hr)
	}
}

func TestStatsAddAndRates(t *testing.T) {
	a := Stats{Reads: 10, ReadHits: 5, Writes: 10, WriteHits: 10}
	b := Stats{Reads: 10, ReadHits: 0}
	a.Add(b)
	if a.Accesses() != 30 || a.Hits() != 15 || a.Misses() != 15 {
		t.Errorf("accesses/hits/misses = %d/%d/%d, want 30/15/15", a.Accesses(), a.Hits(), a.Misses())
	}
	if a.HitRate() != 0.5 || a.MissRate() != 0.5 {
		t.Errorf("hit/miss rate = %v/%v, want 0.5/0.5", a.HitRate(), a.MissRate())
	}
	var idle Stats
	if idle.HitRate() != 0 || idle.MissRate() != 0 {
		t.Error("idle cache rates should be 0")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c, _ := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("stats survived reset")
	}
	if r := c.Do(Access{Addr: 0, Size: 4, Kind: Read}); r.ServedBy != "L1" {
		t.Error("contents lost across ResetStats")
	}
}

// Property: for any access sequence, hits+misses == accesses and the cache
// never reports more resident lines than capacity.
func TestPropertyCountersConsistent(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c, _ := newTestCache(t, 2048, 64, 4)
		for i, a := range addrs {
			kind := Read
			if i < len(writes) && writes[i] {
				kind = Write
			}
			c.Do(Access{Addr: int64(a), Size: 4, Kind: kind})
		}
		st := c.Stats()
		capacityLines := int64(2048 / 64)
		return st.Hits()+st.Misses() == st.Accesses() &&
			c.ResidentLines() <= capacityLines &&
			st.Writebacks <= st.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: immediately re-reading any address after touching it must hit.
func TestPropertyTemporalLocalityHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c, _ := newTestCache(t, 4096, 64, 8)
		for _, a := range addrs {
			c.Do(Access{Addr: int64(a % 1 << 20), Size: 4, Kind: Read})
			r := c.Do(Access{Addr: int64(a % 1 << 20), Size: 4, Kind: Read})
			if r.ServedBy != "L1" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	mem := &sink{latency: 200}
	l2 := New(Config{Name: "L2", Size: 4096, LineSize: 64, Ways: 8, HitLatency: 20}, mem)
	l1 := New(Config{Name: "L1", Size: 512, LineSize: 64, Ways: 2, HitLatency: 4}, l2)

	r := l1.Do(Access{Addr: 0, Size: 4, Kind: Read})
	if r.Latency != 224 { // 4 + 20 + 200
		t.Errorf("cold latency = %v, want 224", r.Latency)
	}
	if r.ServedBy != "mem" {
		t.Errorf("served by %q, want mem", r.ServedBy)
	}

	// Evict from L1 (2-way, 4 sets: addrs 0, 512, 1024 map to set 0).
	l1.Do(Access{Addr: 512, Size: 4, Kind: Read})
	l1.Do(Access{Addr: 1024, Size: 4, Kind: Read})
	// Addr 0 now out of L1 but still in L2.
	r = l1.Do(Access{Addr: 0, Size: 4, Kind: Read})
	if r.Latency != 24 { // 4 + 20
		t.Errorf("L2 hit latency = %v, want 24", r.Latency)
	}
	if r.ServedBy != "L2" {
		t.Errorf("served by %q, want L2", r.ServedBy)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Writeback.String() != "writeback" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestFlushRangeSelective(t *testing.T) {
	c, mem := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 0, Size: 4, Kind: Write})    // in range, dirty
	c.Do(Access{Addr: 128, Size: 4, Kind: Read})   // in range, clean
	c.Do(Access{Addr: 4096, Size: 4, Kind: Write}) // outside range, dirty
	before := len(mem.accesses)
	wbs, cost := c.FlushRange(0, 256, 2)
	if wbs != 1 {
		t.Errorf("range flush writebacks = %d, want 1", wbs)
	}
	if cost != 4 { // two in-range lines walked at 2 each
		t.Errorf("range flush cost = %v, want 4", cost)
	}
	if c.Contains(0) || c.Contains(128) {
		t.Error("in-range lines survived the flush")
	}
	if !c.Contains(4096) {
		t.Error("out-of-range line was flushed")
	}
	var wbCount int
	for _, a := range mem.accesses[before:] {
		if a.Kind == Writeback {
			wbCount++
			if a.Addr != 0 {
				t.Errorf("writeback addr = %d, want 0", a.Addr)
			}
		}
	}
	if wbCount != 1 {
		t.Errorf("memory saw %d writebacks, want 1", wbCount)
	}
}

func TestFlushRangeBoundaries(t *testing.T) {
	c, _ := newTestCache(t, 1024, 64, 4)
	c.Do(Access{Addr: 64, Size: 4, Kind: Read})
	// A range that ends exactly at the line start must not touch it...
	c.FlushRange(0, 64, 1)
	if !c.Contains(64) {
		t.Error("line at range end was flushed")
	}
	// ...a range that overlaps a single byte of the line must flush it.
	c.FlushRange(127, 128, 1)
	if c.Contains(64) {
		t.Error("partially overlapped line survived")
	}
	// Degenerate range is a no-op.
	if wbs, cost := c.FlushRange(100, 100, 1); wbs != 0 || cost != 0 {
		t.Error("empty range did work")
	}
}

// Property: FlushRange over the whole address space equals Flush.
func TestPropertyFlushRangeTotalEqualsFlush(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		a, _ := newTestCache(t, 2048, 64, 4)
		b, _ := newTestCache(t, 2048, 64, 4)
		for i, addr := range addrs {
			kind := Read
			if i < len(writes) && writes[i] {
				kind = Write
			}
			a.Do(Access{Addr: int64(addr), Size: 4, Kind: kind})
			b.Do(Access{Addr: int64(addr), Size: 4, Kind: kind})
		}
		wbsA, _ := a.Flush(1)
		wbsB, _ := b.FlushRange(0, 1<<20, 1)
		return wbsA == wbsB && a.ResidentLines() == 0 && b.ResidentLines() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	mem := &sink{latency: 100}
	c := New(Config{Name: "L1", Size: 32 * 1024, LineSize: 64, Ways: 4, HitLatency: 2}, mem)
	c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(Access{Addr: 0, Size: 4, Kind: Read})
	}
}

func BenchmarkCacheStreamingMiss(b *testing.B) {
	mem := &sink{latency: 100}
	c := New(Config{Name: "L1", Size: 32 * 1024, LineSize: 64, Ways: 4, HitLatency: 2}, mem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(Access{Addr: int64(i) * 64, Size: 4, Kind: Read})
		if len(mem.accesses) > 1<<16 {
			mem.accesses = mem.accesses[:0] // keep the sink bounded
		}
	}
}
