package cache

// Property suite for the batch cache kernel: DoBatch must be byte-identical
// to the serial Do loop for any access sequence, and both must classify
// hits, misses and writebacks exactly like the naive refCache specification
// (reference_test.go). The streams are seeded, so a failure reproduces.

import (
	"testing"
)

// xorshift is the seeded generator all property streams draw from.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// streamGeometries are the cache shapes the property streams cycle through:
// direct-mapped, typical set-associative, near-fully-associative, wide-line.
var streamGeometries = []Config{
	{Name: "dm", Size: 1024, LineSize: 64, Ways: 1, HitLatency: 1},
	{Name: "sa4", Size: 4096, LineSize: 64, Ways: 4, HitLatency: 2},
	{Name: "fa", Size: 512, LineSize: 32, Ways: 8, HitLatency: 1},
	{Name: "wide", Size: 8192, LineSize: 128, Ways: 2, HitLatency: 3},
}

// genStream produces one access stream with a mixed pattern: sequential,
// strided (the stride mutates mid-stream), and random, with sizes from one
// byte to multiple lines.
func genStream(rng *xorshift, n int) []Access {
	accs := make([]Access, 0, n)
	mode := rng.next() % 3
	addr := int64(rng.next() % 4096)
	stride := int64(rng.next()%300) + 1
	for i := 0; i < n; i++ {
		switch mode {
		case 0: // sequential
			addr += int64(rng.next()%64) + 1
		case 1: // strided
			addr += stride
			if rng.next()%16 == 0 {
				stride = int64(rng.next()%300) + 1
			}
		default: // random
			addr = int64(rng.next() % 16384)
		}
		size := int64(rng.next()%160) + 1
		kind := Read
		if rng.next()%3 == 0 {
			kind = Write
		}
		accs = append(accs, Access{Addr: addr % 16384, Size: size, Kind: kind})
	}
	return accs
}

// TestBatchPropertySeededStreams drives 1000 seeded streams of mixed
// strides and sizes through three implementations — DoBatch, the serial Do
// loop, and the refCache specification — and requires byte-identical
// results from the first two and identical hit/writeback classification
// from the third.
func TestBatchPropertySeededStreams(t *testing.T) {
	run := func(seed uint64) {
		rng := xorshift(seed)
		cfg := streamGeometries[rng.next()%uint64(len(streamGeometries))]
		serialSink := &countingSink{}
		batchSink := &countingSink{}
		serial := New(cfg, serialSink)
		batch := New(cfg, batchSink)
		ref := newRefCache(cfg.Size, cfg.LineSize, cfg.Ways)
		refWritebacks := 0

		accs := genStream(&rng, 40)
		wantOut := make([]Result, len(accs))
		gotOut := make([]Result, len(accs))
		var scratch Batch

		// Reference classification per touched line.
		refHits := make([]int, len(accs))
		for i, a := range accs {
			first := a.Addr / cfg.LineSize
			last := (a.Addr + a.Size - 1) / cfg.LineSize
			for ln := first; ln <= last; ln++ {
				hit, evictedDirty := ref.access(ln*cfg.LineSize, a.Kind == Write)
				if hit {
					refHits[i]++
				}
				if evictedDirty {
					refWritebacks++
				}
			}
		}

		for i, a := range accs {
			before := serial.Stats().Hits()
			wantOut[i] = serial.Do(a)
			if got := int(serial.Stats().Hits() - before); got != refHits[i] {
				t.Fatalf("seed %#x access %d (%+v): serial %d line-hits, ref %d", seed, i, a, got, refHits[i])
			}
		}
		batch.DoBatch(accs, gotOut, &scratch)

		for i := range accs {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("seed %#x access %d (%+v): batch %+v, serial %+v",
					seed, i, accs[i], gotOut[i], wantOut[i])
			}
		}
		if bs, ss := batch.Stats(), serial.Stats(); bs != ss {
			t.Fatalf("seed %#x: stats diverge:\nbatch:  %+v\nserial: %+v", seed, bs, ss)
		}
		if batchSink.writebacks != serialSink.writebacks || batchSink.writebacks != refWritebacks {
			t.Fatalf("seed %#x: writebacks batch=%d serial=%d ref=%d",
				seed, batchSink.writebacks, serialSink.writebacks, refWritebacks)
		}
		if batch.ResidentLines() != serial.ResidentLines() ||
			batch.ResidentLines() != int64(len(ref.resident())) {
			t.Fatalf("seed %#x: resident batch=%d serial=%d ref=%d",
				seed, batch.ResidentLines(), serial.ResidentLines(), len(ref.resident()))
		}
	}
	for seed := uint64(1); seed <= 1000; seed++ {
		run(seed*0x9e3779b97f4a7c15 + 1)
	}
}

// TestBatchHierarchyMatchesSerial pushes seeded streams through a two-level
// hierarchy (the GPU's L1-over-LLC shape) — the batch path recurses into the
// lower cache's own batch kernel, and every latency, ServedBy label and
// counter must still match the serial recursion exactly.
func TestBatchHierarchyMatchesSerial(t *testing.T) {
	build := func() (*Cache, *Cache, *countingSink) {
		sink := &countingSink{}
		llc := New(Config{Name: "llc", Size: 8192, LineSize: 64, Ways: 8, HitLatency: 10}, sink)
		l1 := New(Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 2, HitLatency: 1}, llc)
		return l1, llc, sink
	}
	for seed := uint64(1); seed <= 200; seed++ {
		rng := xorshift(seed * 0xff51afd7ed558ccd)
		accs := genStream(&rng, 60)
		sl1, sllc, ssink := build()
		bl1, bllc, bsink := build()
		wantOut := make([]Result, len(accs))
		gotOut := make([]Result, len(accs))
		for i, a := range accs {
			wantOut[i] = sl1.Do(a)
		}
		var scratch Batch
		bl1.DoBatch(accs, gotOut, &scratch)
		for i := range accs {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("seed %#x access %d: batch %+v, serial %+v", seed, i, gotOut[i], wantOut[i])
			}
		}
		if bl1.Stats() != sl1.Stats() || bllc.Stats() != sllc.Stats() {
			t.Fatalf("seed %#x: hierarchy stats diverge", seed)
		}
		if bsink.writebacks != ssink.writebacks {
			t.Fatalf("seed %#x: sink writebacks %d vs %d", seed, bsink.writebacks, ssink.writebacks)
		}
	}
}

// TestBatchDisabledBypasses covers the disabled-cache path (zero-copy
// platforms disable CPU caching of pinned windows): bypass accounting and
// pass-through results must match the serial path.
func TestBatchDisabledBypasses(t *testing.T) {
	sink := &countingSink{}
	serial := New(Config{Name: "off", Size: 1024, LineSize: 64, Ways: 1, HitLatency: 1}, sink)
	serial.SetEnabled(false)
	batch := New(Config{Name: "off", Size: 1024, LineSize: 64, Ways: 1, HitLatency: 1}, &countingSink{})
	batch.SetEnabled(false)
	accs := []Access{
		{Addr: 0, Size: 64, Kind: Read},
		{Addr: 100, Size: 0, Kind: Read}, // degenerate: no traffic
		{Addr: 512, Size: 32, Kind: Write},
	}
	wantOut := make([]Result, len(accs))
	gotOut := make([]Result, len(accs))
	for i, a := range accs {
		wantOut[i] = serial.Do(a)
	}
	batch.DoBatch(accs, gotOut, nil) // nil scratch: DoBatch allocates its own
	for i := range accs {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("access %d: batch %+v, serial %+v", i, gotOut[i], wantOut[i])
		}
	}
	if batch.Stats() != serial.Stats() {
		t.Fatalf("bypass stats diverge: %+v vs %+v", batch.Stats(), serial.Stats())
	}
}

// TestDoBatchZeroAlloc is the allocation gate on the batch cache kernel:
// with warmed caller-owned scratch, servicing a batch allocates nothing.
func TestDoBatchZeroAlloc(t *testing.T) {
	sink := &countingSink{}
	llc := New(Config{Name: "llc", Size: 8192, LineSize: 64, Ways: 8, HitLatency: 10}, sink)
	l1 := New(Config{Name: "l1", Size: 1024, LineSize: 64, Ways: 2, HitLatency: 1}, llc)
	rng := xorshift(0xabcdef)
	accs := genStream(&rng, 64)
	out := make([]Result, len(accs))
	var scratch Batch
	l1.DoBatch(accs, out, &scratch) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		l1.DoBatch(accs, out, &scratch)
	})
	if allocs != 0 {
		t.Fatalf("warm DoBatch allocates %v times per run, want 0", allocs)
	}
}
