package advisord

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Breaker state names, exposed on /statusz and as the breaker_state gauge
// (closed=0, half-open=1, open=2).
const (
	BreakerClosed   = "closed"
	BreakerHalfOpen = "half-open"
	BreakerOpen     = "open"
)

// Breaker is a circuit breaker around device characterization. Consecutive
// characterization failures trip it open; while open, advisory requests skip
// the engine entirely and answer in degraded mode. After a cooldown it
// half-opens and lets exactly one probe through: success closes it, failure
// re-opens it for another cooldown.
//
// Context cancellations and deadline expiries do not count as failures — a
// client hanging up says nothing about the engine's health.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    string
	failures int
	openedAt time.Time
	probing  bool
}

// newBreaker builds a breaker; now must be non-nil (the server passes its
// Clock's Now, defaulting to the wall clock).
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now, state: BreakerClosed}
}

// Allow asks whether a characterization attempt may proceed. When it may,
// ok is true and the caller must invoke done with the attempt's outcome.
// When it may not (breaker open, or a half-open probe already in flight),
// ok is false and done is nil.
func (b *Breaker) Allow() (done func(err error), ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return nil, false
		}
		b.state = BreakerHalfOpen
		b.probing = false
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			return nil, false
		}
		b.probing = true
	}
	return b.record, true
}

// record folds one attempt's outcome into the breaker.
func (b *Breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The caller went away; that says nothing about the engine, so the
		// attempt is inconclusive: release a half-open probe slot without
		// moving the state.
		b.probing = false
		return
	}
	if err == nil {
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.failures = 0
		b.probing = false
	}
}

// State returns the breaker's current state name, advancing open to
// half-open when the cooldown has lapsed so /statusz never reports a stale
// open.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// stateValue encodes State for the breaker_state gauge.
func (b *Breaker) stateValue() float64 {
	switch b.State() {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// RetryAfter estimates how long a shed caller should wait before retrying:
// the remaining cooldown, floored at one second.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return time.Second
	}
	remaining := b.cooldown - b.now().Sub(b.openedAt)
	if remaining < time.Second {
		return time.Second
	}
	return remaining.Round(time.Second)
}

// admission is the bounded admission queue in front of the /v1 handlers:
// maxConcurrent requests execute, up to maxQueue more wait for a slot, and
// everything beyond that is shed immediately (429) instead of piling up
// latency the clients have already given up on.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{slots: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. ok is false when the request must be shed (queue full) or
// the context ended while queued; on true, the caller must call release.
func (a *admission) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, true
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, false
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, true
	case <-ctx.Done():
		return nil, false
	}
}
