package advisord

import (
	"encoding/json"
	"fmt"
	"net/http"

	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
)

// Fleet surface: when Options.Fleet is set the server is one shard of a
// sharded advisord fleet and grows three route groups.
//
//   - Data plane additions: GET /v1/fleet/topology (the membership clients
//     refresh their rings from) and GET /v1/cache/export (the warm-handoff
//     NDJSON stream peers pull owned entries over). Export is deliberately
//     NOT behind the drain gate — a draining shard's whole point is to keep
//     serving its cache to peers while shedding advisory traffic.
//   - Admin plane (AdminHandler, served on -admin-addr): /admin/v1/status,
//     /admin/v1/ring, /admin/v1/drain, /admin/v1/rebalance — the surface
//     cmd/advisorctl speaks.

// faultFleetExport injects into the warm-handoff export stream (see
// internal/faults).
var faultFleetExport = faults.Register("advisord.fleet.export",
	"fleet warm-handoff cache export stream",
	faults.CanError|faults.CanLatency|faults.CanPanic)

// Fleet metric names, declared as consts so the metricname analyzer audits
// the family at one declaration site.
const (
	metricFleetRingSize            = "igpucomm_fleet_ring_size"
	metricFleetReroutesTotal       = "igpucomm_fleet_reroutes_total"
	metricFleetHandoffEntriesTotal = "igpucomm_fleet_handoff_entries_total"
	metricFleetDrainingState       = "igpucomm_fleet_draining_state"
)

// handleFleetTopology answers the shard's current fleet topology — the
// versioned membership document clients feed to Router.Update.
func (s *Server) handleFleetTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/fleet/topology")
		return
	}
	writeJSON(w, http.StatusOK, s.fleet.Topology())
}

// handleCacheExport streams cache entries as warm-handoff NDJSON. With
// ?owner=<shardID> only the entries that shard owns under THIS replica's
// ring are sent — the puller and exporter agree because ring ownership is a
// pure function of the membership list; without it the full cache streams.
func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/cache/export")
		return
	}
	if err := faults.Fire(faultFleetExport); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("cache export: %v", err))
		return
	}
	var include func(string) bool
	if owner := r.URL.Query().Get("owner"); owner != "" {
		ring := s.fleet.Ring()
		include = func(key string) bool { return ring.Owner(key) == owner }
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	n, err := fleet.WriteExport(w, s.eng.CacheExport(), include)
	s.fleet.CountExported(n)
	if err != nil {
		// Headers are gone; all we can do is log and cut the stream short.
		s.log.Error("cache export", "err", err)
	}
}

// adminStatus is the /admin/v1/status payload advisorctl renders.
type adminStatus struct {
	// Fleet is the shard's fleet counter snapshot.
	Fleet fleet.Stats `json:"fleet"`
	// Cache is the characterization cache snapshot.
	Cache engine.MemoStats `json:"cache"`
	// CacheByRole splits the cache by shard role (owned vs remote).
	CacheByRole map[string]engine.MemoRoleStats `json:"cache_by_role,omitempty"`
}

// adminRing is the /admin/v1/ring payload: the topology plus each shard's
// keyspace share.
type adminRing struct {
	// Topology is the versioned membership document.
	Topology fleet.Topology `json:"topology"`
	// Shares maps shard ID to its fraction of the key space.
	Shares map[string]float64 `json:"shares"`
}

// drainRequest is the /admin/v1/drain body.
type drainRequest struct {
	// Shard must name this replica; drain requests are not forwarded.
	Shard string `json:"shard"`
	// Drain sets (true) or clears (false) the drain flag.
	Drain bool `json:"drain"`
}

// rebalanceRequest is the /admin/v1/rebalance body.
type rebalanceRequest struct {
	// Peers, when non-empty, replaces the membership list (bumping the
	// topology version).
	Peers []fleet.Shard `json:"peers,omitempty"`
	// Pull, when true, warm-pulls the entries this shard owns from every
	// peer after the membership update.
	Pull bool `json:"pull,omitempty"`
}

// rebalanceResponse is the /admin/v1/rebalance reply.
type rebalanceResponse struct {
	// Version is the topology version after the update.
	Version int64 `json:"version"`
	// Pulled is how many cache entries the warm pull installed.
	Pulled int `json:"pulled"`
	// PeerErrors lists peers the pull could not reach.
	PeerErrors []string `json:"peer_errors,omitempty"`
}

// AdminHandler builds the fleet admin surface advisorctl speaks. Serve it on
// a separate listener (-admin-addr) so operator commands never queue behind
// data-plane admission control. Nil when the server is not part of a fleet.
func (s *Server) AdminHandler() http.Handler {
	if s.fleet == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/v1/status", s.handleAdminStatus)
	mux.HandleFunc("/admin/v1/ring", s.handleAdminRing)
	mux.HandleFunc("/admin/v1/drain", s.handleAdminDrain)
	mux.HandleFunc("/admin/v1/rebalance", s.handleAdminRebalance)
	return s.recoverPanics(mux)
}

func (s *Server) handleAdminStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /admin/v1/status")
		return
	}
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, adminStatus{
		Fleet:       s.fleet.Stats(),
		Cache:       st.Characterizations,
		CacheByRole: st.CharacterizationsByRole,
	})
}

func (s *Server) handleAdminRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /admin/v1/ring")
		return
	}
	writeJSON(w, http.StatusOK, adminRing{
		Topology: s.fleet.Topology(),
		Shares:   s.fleet.Ring().Shares(),
	})
}

func (s *Server) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST /admin/v1/drain")
		return
	}
	var req drainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if req.Shard != s.fleet.Self() {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("this replica is %q, not %q; send drain to the shard's own admin address", s.fleet.Self(), req.Shard))
		return
	}
	s.fleet.SetDraining(req.Drain)
	s.log.Info("drain flag set", "shard", req.Shard, "drain", req.Drain)
	writeJSON(w, http.StatusOK, map[string]bool{"draining": req.Drain})
}

func (s *Server) handleAdminRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST /admin/v1/rebalance")
		return
	}
	var req rebalanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Peers) > 0 {
		if err := s.fleet.SetShards(req.Peers); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.log.Info("membership updated", "version", s.fleet.Version(), "shards", len(req.Peers))
	}
	resp := rebalanceResponse{Version: s.fleet.Version()}
	if req.Pull {
		rep, err := fleet.Pull(r.Context(), s.fleet, nil, s.eng.CachePut)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp.Pulled = rep.Pulled
		resp.PeerErrors = rep.PeerErrors
		s.log.Info("warm pull complete", "pulled", rep.Pulled, "peer_errors", len(rep.PeerErrors))
	}
	writeJSON(w, http.StatusOK, resp)
}
