package advisord

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/fleet"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/units"
)

// synthCharForDevice builds a characterization that survives the persist
// round trip the export stream uses.
func synthCharForDevice(t *testing.T, platform string) framework.Characterization {
	t.Helper()
	return framework.Characterization{
		Platform:            platform,
		Thresholds:          perfmodel.Thresholds{CPUCache: 0.10, GPUCacheLow: 0.10, GPUCacheHigh: 0.30},
		PeakGPUThroughput:   100 * units.GBps,
		PinnedGPUThroughput: 10 * units.GBps,
		ZCSCMaxSpeedup:      10,
		SCZCMaxSpeedup:      2.5,
	}
}

// seedSynthEntries puts n synthetic entries under content-hash-shaped keys
// and returns the keys.
func seedSynthEntries(t *testing.T, eng *engine.Engine, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("advisord-fleet-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
		eng.CachePut(keys[i], synthCharForDevice(t, fmt.Sprintf("board-%d", i)))
	}
	return keys
}

// fleetTestServer builds one shard's server (data plane + admin plane) over
// a fresh engine wired for per-role accounting.
func fleetTestServer(t *testing.T, self string, shards []fleet.Shard) (*Server, *fleet.State, *engine.Engine, *httptest.Server, *httptest.Server) {
	t.Helper()
	st, err := fleet.NewState(self, shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2, KeyRole: st.KeyRole})
	srv := New(eng, Options{
		Params: microbench.TestParams(),
		Scale:  catalog.Quick,
		Logger: testLogger(),
		Fleet:  st,
	})
	data := httptest.NewServer(srv.Handler())
	t.Cleanup(data.Close)
	admin := httptest.NewServer(srv.AdminHandler())
	t.Cleanup(admin.Close)
	return srv, st, eng, data, admin
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestFleetTopologyEndpoint(t *testing.T) {
	shards := []fleet.Shard{
		{ID: "shard-a", URL: "http://a.test"},
		{ID: "shard-b", URL: "http://b.test"},
	}
	_, _, _, data, _ := fleetTestServer(t, "shard-a", shards)

	var topo fleet.Topology
	resp := getJSON(t, data.URL+"/v1/fleet/topology", &topo)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology status %d", resp.StatusCode)
	}
	if topo.Version != 1 || topo.Self != "shard-a" || len(topo.Shards) != 2 {
		t.Fatalf("topology = %+v", topo)
	}
	for _, sh := range topo.Shards {
		if sh.ID == "shard-a" && sh.State != fleet.StateHealthy {
			t.Fatalf("self state = %q, want healthy", sh.State)
		}
		if sh.ID == "shard-b" && sh.State != fleet.StateUnknown {
			t.Fatalf("peer state = %q, want unknown", sh.State)
		}
	}
}

// The drain gate: /v1 data plane sheds with retryable 503, while topology
// and export stay up — the protocol a warm drain depends on.
func TestFleetDrainGate(t *testing.T) {
	shards := []fleet.Shard{{ID: "solo", URL: "http://solo.test"}}
	_, st, eng, data, admin := fleetTestServer(t, "solo", shards)

	// Warm one entry so the export stream has content.
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	key, err := engine.CacheKey(cfg, microbench.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	eng.CachePut(key, synthCharForDevice(t, cfg.Name))

	// Drain via the admin surface; a drain for another shard is refused.
	resp := postJSON(t, admin.URL+"/admin/v1/drain", drainRequest{Shard: "other", Drain: true}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain for foreign shard: status %d, want 404", resp.StatusCode)
	}
	resp = postJSON(t, admin.URL+"/admin/v1/drain", drainRequest{Shard: "solo", Drain: true}, nil)
	if resp.StatusCode != http.StatusOK || !st.Draining() {
		t.Fatalf("drain failed: status %d draining=%v", resp.StatusCode, st.Draining())
	}

	// Data plane sheds with 503 + Retry-After (the client's retryable set).
	reqBody, _ := json.Marshal(AdviseBody{Requests: []AdviseRequest{{Device: devices.TX2Name, App: "shwfs"}}})
	shedResp, err := http.Post(data.URL+"/v1/advise", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	shedResp.Body.Close()
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining advise status = %d, want 503", shedResp.StatusCode)
	}
	if shedResp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}

	// Topology and export still answer.
	var topo fleet.Topology
	if resp := getJSON(t, data.URL+"/v1/fleet/topology", &topo); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining topology status %d", resp.StatusCode)
	}
	if topo.Shards[0].State != fleet.StateDraining {
		t.Fatalf("draining shard reports state %q", topo.Shards[0].State)
	}
	exportResp, err := http.Get(data.URL + "/v1/cache/export")
	if err != nil {
		t.Fatal(err)
	}
	defer exportResp.Body.Close()
	if exportResp.StatusCode != http.StatusOK {
		t.Fatalf("draining export status %d", exportResp.StatusCode)
	}
	lines := 0
	sc := bufio.NewScanner(exportResp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	if lines != 1 {
		t.Fatalf("draining export streamed %d entries, want 1", lines)
	}

	// Undrain restores the data plane.
	postJSON(t, admin.URL+"/admin/v1/drain", drainRequest{Shard: "solo", Drain: false}, nil)
	okResp, err := http.Post(data.URL+"/v1/advise", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	okResp.Body.Close()
	if okResp.StatusCode != http.StatusOK {
		t.Fatalf("undrained advise status = %d, want 200", okResp.StatusCode)
	}
}

// Export with ?owner= must filter on the exporter's ring, so a joining peer
// pulls exactly the keys it owns.
func TestFleetCacheExportOwnerFilter(t *testing.T) {
	shards := []fleet.Shard{
		{ID: "shard-a", URL: "http://a.test"},
		{ID: "shard-b", URL: "http://b.test"},
	}
	_, st, eng, data, _ := fleetTestServer(t, "shard-a", shards)
	keys := seedSynthEntries(t, eng, 40)

	wantB := 0
	for _, key := range keys {
		if st.Owner(key) == "shard-b" {
			wantB++
		}
	}
	if wantB == 0 || wantB == len(keys) {
		t.Fatalf("degenerate split: shard-b owns %d/%d", wantB, len(keys))
	}

	resp, err := http.Get(data.URL + "/v1/cache/export?owner=shard-b")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line fleet.ExportLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		if st.Owner(line.Key) != "shard-b" {
			t.Fatalf("export leaked key %s owned by %s", line.Key, st.Owner(line.Key))
		}
		got++
	}
	if got != wantB {
		t.Fatalf("export streamed %d entries, want %d", got, wantB)
	}
	if st.Stats().HandoffExported != uint64(wantB) {
		t.Fatalf("exported counter = %d, want %d", st.Stats().HandoffExported, wantB)
	}
}

// Rebalance: a membership push bumps the version, and a pull warms the cache
// from the peer.
func TestFleetAdminRebalance(t *testing.T) {
	// Shard A already knows the two-shard membership (the operator pushed
	// it), so its export filter agrees with B's ring.
	shardsA := []fleet.Shard{
		{ID: "shard-a", URL: "http://placeholder.test"},
		{ID: "shard-b", URL: "http://b.test"},
	}
	_, _, engA, dataA, _ := fleetTestServer(t, "shard-a", shardsA)
	seedSynthEntries(t, engA, 30)

	// Shard B boots cold knowing both shards; its pull should fetch the
	// entries it owns from A.
	shardsBoth := []fleet.Shard{
		{ID: "shard-a", URL: dataA.URL},
		{ID: "shard-b", URL: "http://b.test"},
	}
	_, stB, engB, _, adminB := fleetTestServer(t, "shard-b", shardsBoth)

	var resp rebalanceResponse
	httpResp := postJSON(t, adminB.URL+"/admin/v1/rebalance", rebalanceRequest{Pull: true}, &resp)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance status %d", httpResp.StatusCode)
	}
	if resp.Pulled == 0 {
		t.Fatal("pull installed no entries")
	}
	if len(resp.PeerErrors) != 0 {
		t.Fatalf("peer errors: %v", resp.PeerErrors)
	}
	if got := engB.Stats().Characterizations.Entries; got != resp.Pulled {
		t.Fatalf("engine holds %d entries, pull reported %d", got, resp.Pulled)
	}
	if stB.Stats().HandoffImported != uint64(resp.Pulled) {
		t.Fatalf("imported counter = %d, want %d", stB.Stats().HandoffImported, resp.Pulled)
	}

	// Membership push: version bumps and the ring grows.
	grown := append(shardsBoth, fleet.Shard{ID: "shard-c", URL: "http://c.test"})
	httpResp = postJSON(t, adminB.URL+"/admin/v1/rebalance", rebalanceRequest{Peers: grown}, &resp)
	if httpResp.StatusCode != http.StatusOK || resp.Version != 2 {
		t.Fatalf("membership push: status %d version %d, want 200/2", httpResp.StatusCode, resp.Version)
	}
	// Ejecting self is refused.
	httpResp = postJSON(t, adminB.URL+"/admin/v1/rebalance",
		rebalanceRequest{Peers: []fleet.Shard{{ID: "shard-a", URL: dataA.URL}}}, nil)
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-ejecting push: status %d, want 400", httpResp.StatusCode)
	}
}

// /statusz grows a fleet section and per-role cache counters; /metrics grows
// the igpucomm_fleet_* family; /admin/v1/ring reports shares that sum to 1.
func TestFleetStatuszMetricsAndRing(t *testing.T) {
	shards := []fleet.Shard{
		{ID: "shard-a", URL: "http://a.test"},
		{ID: "shard-b", URL: "http://b.test"},
	}
	_, st, eng, data, admin := fleetTestServer(t, "shard-a", shards)
	seedSynthEntries(t, eng, 20)
	// Serve a key owned by the other shard: exactly one received reroute.
	remoteKey := ""
	for i := 0; remoteKey == ""; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("remote-%d", i)))
		if key := hex.EncodeToString(sum[:]); !st.Owns(key) {
			remoteKey = key
		}
	}
	st.NoteServed(remoteKey)

	var status struct {
		Engine struct {
			CharacterizationsByRole map[string]engine.MemoRoleStats `json:"characterizations_by_role"`
		} `json:"engine"`
		Fleet *fleet.Stats `json:"fleet"`
	}
	getJSON(t, data.URL+"/statusz", &status)
	if status.Fleet == nil || status.Fleet.Self != "shard-a" || status.Fleet.Shards != 2 {
		t.Fatalf("statusz fleet section = %+v", status.Fleet)
	}
	if status.Fleet.ReroutesReceived != 1 {
		t.Fatalf("reroutes_received = %d, want 1", status.Fleet.ReroutesReceived)
	}
	roles := status.Engine.CharacterizationsByRole
	if roles == nil {
		t.Fatal("statusz missing characterizations_by_role")
	}
	entries := 0
	for _, r := range roles {
		entries += r.Entries
	}
	if entries != 20 {
		t.Fatalf("per-role entries sum to %d, want 20", entries)
	}

	metricsResp, err := http.Get(data.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(metricsResp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"igpucomm_fleet_ring_size 2",
		"igpucomm_fleet_reroutes_total 1",
		`igpucomm_fleet_handoff_entries_total{direction="exported"}`,
		`igpucomm_fleet_handoff_entries_total{direction="imported"}`,
		"igpucomm_fleet_draining_state 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	var ring adminRing
	getJSON(t, admin.URL+"/admin/v1/ring", &ring)
	if len(ring.Shares) != 2 {
		t.Fatalf("ring shares = %v", ring.Shares)
	}
	total := 0.0
	for _, s := range ring.Shares {
		total += s
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
	var adminSt adminStatus
	getJSON(t, admin.URL+"/admin/v1/status", &adminSt)
	if adminSt.Fleet.Self != "shard-a" || adminSt.Cache.Entries != 20 {
		t.Fatalf("admin status = %+v", adminSt)
	}
}

// Without Options.Fleet the new surface must be absent and /statusz
// byte-compatible: no fleet key, no per-role key, 404 on the fleet routes.
func TestNoFleetKeepsLegacySurface(t *testing.T) {
	_, ts := testServer(t)
	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/statusz", &raw)
	if _, ok := raw["fleet"]; ok {
		t.Fatal("statusz has a fleet section without a fleet")
	}
	var eng map[string]json.RawMessage
	if err := json.Unmarshal(raw["engine"], &eng); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng["characterizations_by_role"]; ok {
		t.Fatal("statusz has per-role counters without a classifier")
	}
	for _, path := range []string{"/v1/fleet/topology", "/v1/cache/export"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d without a fleet, want 404", path, resp.StatusCode)
		}
	}
}
