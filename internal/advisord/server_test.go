package advisord

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	srv := New(eng, Options{Params: microbench.TestParams(), Scale: catalog.Quick, Logger: testLogger()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postAdvise(t *testing.T, ts *httptest.Server, body AdviseBody) AdviseResponse {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST /v1/advise: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/advise: status %d", resp.StatusCode)
	}
	var out AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode advise response: %v", err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "ok" {
		t.Fatalf("healthz body = %q, want ok", got)
	}
}

func TestStatuszListsCatalog(t *testing.T) {
	_, ts := testServer(t)
	var st statuszResponse
	if resp := getJSON(t, ts.URL+"/statusz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	if len(st.Devices) != len(devices.All()) {
		t.Errorf("statusz devices = %v", st.Devices)
	}
	if len(st.Apps) != len(catalog.Names()) {
		t.Errorf("statusz apps = %v", st.Apps)
	}
	if st.Engine.Workers != 2 {
		t.Errorf("statusz workers = %d, want 2", st.Engine.Workers)
	}
}

// A batch naming the same device several times must execute exactly one
// characterization, and the per-request answers must match the serial
// advisor's.
func TestAdviseBatchSharesCharacterization(t *testing.T) {
	srv, ts := testServer(t)
	out := postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
		{Device: devices.TX2Name, App: "lanedet", Current: "sc"},
		{Device: devices.TX2Name, App: "orbslam", Current: "zc"},
	}})
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("result %d: unexpected error %q", i, res.Error)
		}
		if res.Recommendation == nil || res.Recommendation.Suggested == "" {
			t.Fatalf("result %d: empty recommendation", i)
		}
		if res.Zone == "" {
			t.Errorf("result %d: empty zone", i)
		}
	}
	st := srv.eng.Stats()
	if st.Characterizations.Executions != 1 {
		t.Errorf("executions = %d, want 1 (one device, one characterization)",
			st.Characterizations.Executions)
	}
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
}

// Unknown devices and apps fail per-request; the valid request in the same
// batch still gets its recommendation.
func TestAdvisePerRequestErrors(t *testing.T) {
	_, ts := testServer(t)
	out := postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: "no-such-board", App: "shwfs"},
		{Device: devices.TX2Name, App: "no-such-app"},
		{Device: devices.TX2Name, App: "shwfs"},
	}})
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Error == "" || out.Results[0].Recommendation != nil {
		t.Errorf("result 0 = %+v, want device error", out.Results[0])
	}
	if out.Results[1].Error == "" || out.Results[1].Recommendation != nil {
		t.Errorf("result 1 = %+v, want app error", out.Results[1])
	}
	if out.Results[2].Error != "" || out.Results[2].Recommendation == nil {
		t.Errorf("result 2 = %+v, want recommendation", out.Results[2])
	}
}

func TestAdviseRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/advise status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
}

// The /v1/characterize body must round-trip through the framework's persist
// loader — it is documented as directly usable as cmd/advisor's -char file.
func TestCharacterizeEndpointRoundTrips(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/characterize?device=" + devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize status = %d", resp.StatusCode)
	}
	char, err := framework.LoadCharacterization(resp.Body)
	if err != nil {
		t.Fatalf("response is not a loadable characterization: %v", err)
	}
	if char.Platform != devices.TX2Name {
		t.Errorf("platform = %q, want %q", char.Platform, devices.TX2Name)
	}

	// A second fetch must be a cache hit, not a new simulation.
	resp2, err := http.Get(ts.URL + "/v1/characterize?device=" + devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	st := srv.eng.Stats()
	if st.Characterizations.Executions != 1 {
		t.Errorf("executions = %d, want 1 after repeated fetch", st.Characterizations.Executions)
	}
	if st.Characterizations.Hits == 0 {
		t.Errorf("hits = 0, want at least one cache hit")
	}

	if resp := getJSON(t, ts.URL+"/v1/characterize?device=bogus", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bogus device status = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/characterize", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing device status = %d, want 400", resp.StatusCode)
	}
}

// With a cache directory configured, a characterization must be persisted in
// the framework format and a fresh server must warm-start from it without
// re-executing.
func TestCachePersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	eng := engine.New(engine.Options{Workers: 2})
	srv := New(eng, Options{Params: microbench.TestParams(), Scale: catalog.Quick, CacheDir: dir, Logger: testLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/characterize?device=" + devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := eng.Stats().Characterizations.Executions; n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}

	eng2 := engine.New(engine.Options{Workers: 2})
	n, err := eng2.LoadCache(dir)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if n != 1 {
		t.Fatalf("warm start loaded %d entries, want 1", n)
	}
	srv2 := New(eng2, Options{Params: microbench.TestParams(), Scale: catalog.Quick, Logger: testLogger()})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/characterize?device=" + devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	st := eng2.Stats()
	if st.Characterizations.Executions != 0 {
		t.Errorf("warm server executions = %d, want 0", st.Characterizations.Executions)
	}
	if st.Characterizations.Hits != 1 {
		t.Errorf("warm server hits = %d, want 1", st.Characterizations.Hits)
	}
}

// testLogger keeps request logging out of test output.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestHeatmapEndpointServesArtifact is the /v1/heatmap golden check: the
// endpoint's body must be byte-identical to the schema-versioned artifact a
// direct heat-enabled exploration produces — the same data `advisor -heatmap`
// writes, served over HTTP.
func TestHeatmapEndpointServesArtifact(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/heatmap?device=" + devices.TX2Name + "&app=shwfs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heatmap status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	art, err := framework.LoadHeatArtifact(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a loadable heat artifact: %v", err)
	}
	if len(art.Entries) == 0 {
		t.Fatal("heat artifact has no entries")
	}
	for _, e := range art.Entries {
		if e.Platform != devices.TX2Name || e.Workload != "shwfs" {
			t.Errorf("entry for %s/%s, want %s/shwfs", e.Platform, e.Workload, devices.TX2Name)
		}
		if len(e.Buffers) == 0 {
			t.Errorf("model %s: no buffer heat", e.Model)
		}
	}

	// Golden: the simulation is deterministic, so an equivalent direct
	// exploration must serialize to the exact bytes the endpoint served.
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := catalog.ByName("shwfs", catalog.Quick)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := engine.New(engine.Options{Workers: 2}).ExploreHeat(context.Background(), cfg, w, comm.AllModels())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := framework.SaveHeatArtifact(&want,
		framework.HeatArtifact{Entries: framework.HeatEntriesFromExploration(exp)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("endpoint body diverges from direct artifact:\ngot:  %s\nwant: %s", body, want.Bytes())
	}

	if got := srv.metrics.heatRequests.Value(); got != 1 {
		t.Errorf("heat requests metric = %d, want 1", got)
	}
	if got := srv.metrics.heatBuffers.Value(); got <= 0 {
		t.Errorf("heat buffers gauge = %v, want > 0", got)
	}
}

func TestHeatmapEndpointRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	for _, tt := range []struct {
		url  string
		want int
	}{
		{"/v1/heatmap", http.StatusBadRequest},
		{"/v1/heatmap?device=" + devices.TX2Name, http.StatusBadRequest},
		{"/v1/heatmap?device=bogus&app=shwfs", http.StatusNotFound},
		{"/v1/heatmap?device=" + devices.TX2Name + "&app=bogus", http.StatusNotFound},
	} {
		if resp := getJSON(t, ts.URL+tt.url, nil); resp.StatusCode != tt.want {
			t.Errorf("%s status = %d, want %d", tt.url, resp.StatusCode, tt.want)
		}
	}
}

// Repeating a question must be answered from the advice memo: the engine
// sees new requests (its own stats count them) but no new simulation work,
// and the answer is byte-identical.
func TestAdviseMemoServesRepeatedQuestions(t *testing.T) {
	srv, ts := testServer(t)
	req := AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
	}}
	first := postAdvise(t, ts, req)
	if first.Results[0].Error != "" {
		t.Fatalf("first advise failed: %s", first.Results[0].Error)
	}
	srv.adviceMu.Lock()
	memoSize := len(srv.adviceMemo)
	srv.adviceMu.Unlock()
	if memoSize != 1 {
		t.Fatalf("advice memo holds %d entries after one advise, want 1", memoSize)
	}
	second := postAdvise(t, ts, req)
	a, _ := json.Marshal(first.Results[0])
	b, _ := json.Marshal(second.Results[0])
	if !bytes.Equal(a, b) {
		t.Fatalf("memoized answer differs:\n first %s\nsecond %s", a, b)
	}
	// A different current model is a different question and must get its
	// own memo entry, not the cached answer for "sc".
	postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "shwfs", Current: "zc"},
	}})
	srv.adviceMu.Lock()
	memoSize = len(srv.adviceMemo)
	srv.adviceMu.Unlock()
	if memoSize != 2 {
		t.Fatalf("advice memo holds %d entries, want 2 (distinct current model is a distinct question)", memoSize)
	}
}
