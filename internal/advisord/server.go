// Package advisord is the advisory service's HTTP surface, importable so
// both the cmd/advisord binary and the perfbench harness serve the exact
// same routes: batch advice (/v1/advise), cached device characterization
// (/v1/characterize), per-buffer heat exploration (/v1/heatmap), health,
// status and Prometheus metrics, all wrapped in
// the per-request observability middleware (trace IDs, latency histograms,
// structured request log). All state lives in the execution engine; the
// server only translates requests, records telemetry, and persists the
// cache.
//
// The /v1 endpoints sit behind a resilience layer: per-request deadlines, a
// bounded admission queue that sheds overload with 429 + Retry-After, a
// circuit breaker around device characterization, and a degraded mode that
// answers from a threshold-only heuristic (framework.HeuristicAdvise) when
// the engine cannot — so the service keeps answering, with reduced fidelity,
// through engine failures instead of timing out or crashing.
package advisord

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/buildinfo"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/simnet"
	"igpucomm/internal/telemetry"
)

// Options configures a Server. The zero value of every resilience knob means
// "use the default", so existing callers only set what they care about.
type Options struct {
	// Params are the micro-benchmark parameters used for characterization.
	Params microbench.Params
	// Scale selects the workload catalog scale (catalog.Full or Quick).
	Scale catalog.Scale
	// CacheDir, when non-empty, receives cache snapshots after requests
	// that executed new characterizations.
	CacheDir string
	// Logger receives the structured request log (nil: slog.Default).
	Logger *slog.Logger

	// RequestTimeout is the per-request deadline applied to /v1 handlers
	// (0: 30s). Work the engine has not finished when it lapses is
	// abandoned and the request answers in degraded mode.
	RequestTimeout time.Duration
	// MaxConcurrent bounds how many /v1 requests execute at once (0: 64).
	MaxConcurrent int
	// MaxQueue bounds how many /v1 requests may wait for an execution
	// slot; anything beyond is shed with 429 (0: 2*MaxConcurrent).
	MaxQueue int
	// BreakerThreshold is how many consecutive characterization failures
	// trip the circuit breaker open (0: 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// probe through (0: 10s).
	BreakerCooldown time.Duration
	// Clock is the time source for everything the server times — breaker
	// cooldown, request deadlines, latency observation, uptime (nil:
	// simnet.Real()). The DST harness injects a virtual clock here.
	Clock simnet.Clock

	// Fleet, when non-nil, makes this server one shard of a sharded
	// advisord fleet: the topology and cache-export routes appear, the
	// drain gate sheds /v1 traffic while draining, fleet metrics register,
	// and AdminHandler serves the advisorctl surface. Install the same
	// State's KeyRole on the engine for per-role cache accounting.
	Fleet *fleet.State
}

func (o *Options) applyDefaults() {
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.MaxConcurrent
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.Clock == nil {
		o.Clock = simnet.Real()
	}
}

// Server wires the execution engine to the HTTP surface. All state lives in
// the engine; the server only translates requests, records telemetry, and
// persists the cache.
type Server struct {
	eng     *engine.Engine
	opt     Options
	start   time.Time
	log     *slog.Logger
	metrics *serverMetrics
	info    buildinfo.Info

	breaker *Breaker
	admit   *admission
	fleet   *fleet.State // nil outside a fleet

	// persistMu serializes SaveCache writers and lastSaved tracks the
	// execution count already on disk.
	persistMu sync.Mutex
	lastSaved uint64

	// adviceMu guards adviceMemo, the per-server memo of successful
	// non-degraded recommendations. The key (characterization cache key +
	// workload name + current model) is a complete identity here — one
	// server runs one Params and one Scale, so a workload name denotes
	// exactly one workload — which makes re-profiling a repeated question
	// pure waste. Degraded answers are never memoized: they depend on
	// transient failure state, not on the question.
	adviceMu   sync.Mutex
	adviceMemo map[string]framework.Recommendation
}

// New builds a server answering with the given engine under the given
// options.
func New(eng *engine.Engine, opt Options) *Server {
	opt.applyDefaults()
	start := opt.Clock.Now()
	info := buildinfo.Get()
	br := newBreaker(opt.BreakerThreshold, opt.BreakerCooldown, opt.Clock.Now)
	return &Server{
		eng:     eng,
		opt:     opt,
		start:   start,
		log:     opt.Logger,
		metrics: newServerMetrics(eng, opt.Clock, start, info, br, opt.Fleet),
		info:    info,
		breaker: br,
		admit:   newAdmission(opt.MaxConcurrent, opt.MaxQueue),
		fleet:   opt.Fleet,

		adviceMemo: make(map[string]framework.Recommendation),
	}
}

// Handler builds the service's route table: every endpoint wrapped in the
// observability middleware, the /v1 endpoints additionally behind admission
// control and a per-request deadline.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.Handle("/v1/advise", s.admitted(http.HandlerFunc(s.handleAdvise)))
	mux.Handle("/v1/characterize", s.admitted(http.HandlerFunc(s.handleCharacterize)))
	mux.Handle("/v1/heatmap", s.admitted(http.HandlerFunc(s.handleHeatmap)))
	if s.fleet != nil {
		// Deliberately outside admitted(): topology must answer while the
		// shard drains (clients need it to route away), and export must
		// answer while the shard drains (peers pull the cache off it).
		mux.HandleFunc("/v1/fleet/topology", s.handleFleetTopology)
		mux.HandleFunc("/v1/cache/export", s.handleCacheExport)
	}
	return s.observe(s.recoverPanics(mux))
}

// endpoints the middleware labels metrics with; anything else is "other" so
// an URL scan cannot explode the label space.
var knownEndpoints = map[string]bool{
	"/healthz":           true,
	"/statusz":           true,
	"/metrics":           true,
	"/v1/advise":         true,
	"/v1/characterize":   true,
	"/v1/heatmap":        true,
	"/v1/fleet/topology": true,
	"/v1/cache/export":   true,
}

// statusRecorder captures the status code the handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status code before delegating to the wrapped
// ResponseWriter.
func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// observe is the per-request observability middleware: a trace ID (accepted
// from X-Trace-Id or generated) echoed in the response header and stamped on
// every span the request opens, in-flight and latency metrics per endpoint,
// and a structured request log line.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := r.URL.Path
		if !knownEndpoints[endpoint] {
			endpoint = "other"
		}
		traceID := r.Header.Get("X-Trace-Id")
		if traceID == "" {
			traceID = telemetry.NewTraceID()
		}
		w.Header().Set("X-Trace-Id", traceID)
		ctx := telemetry.WithTraceID(r.Context(), traceID)

		s.metrics.requests.With(endpoint).Inc()
		s.metrics.inFlight.Inc()
		defer s.metrics.inFlight.Dec()

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := s.opt.Clock.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := s.opt.Clock.Since(t0)

		s.metrics.latency.With(endpoint).Observe(elapsed.Seconds())
		s.metrics.responses.With(strconv.Itoa(rec.status)).Inc()
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", elapsed,
			"trace_id", traceID,
		)
	})
}

// recoverPanics converts a handler panic into a 500 instead of an aborted
// connection, counts it, and keeps the process alive — the last line of the
// no-escaped-panics invariant the chaos suite asserts.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Inc()
				s.log.Error("handler panic recovered",
					"path", r.URL.Path, "panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// admitted is the /v1 admission middleware: bounded concurrency with a
// bounded wait queue, shedding overload as 429 + Retry-After, plus the
// per-request deadline.
func (s *Server) admitted(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.fleet != nil && s.fleet.Draining() {
			// Draining shard: shed advisory traffic with a retryable 503 so
			// fleet clients reroute to a healthy shard. The fleet topology
			// and cache-export routes stay up (they are not admitted()).
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "shard draining, retry another replica")
			return
		}
		release, ok := s.admit.acquire(r.Context())
		if !ok {
			s.metrics.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		defer release()
		ctx, cancel := s.opt.Clock.WithTimeout(r.Context(), s.opt.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// resilienceStatus is the /statusz view of the resilience layer.
type resilienceStatus struct {
	Breaker           string `json:"breaker"`
	RequestsShed      uint64 `json:"requests_shed"`
	DegradedResponses uint64 `json:"degraded_responses"`
	PanicsRecovered   uint64 `json:"panics_recovered"`
	FaultsInjected    uint64 `json:"faults_injected"`
}

// statuszResponse is the /statusz payload.
type statuszResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Build         buildinfo.Info   `json:"build"`
	Devices       []string         `json:"devices"`
	Apps          []string         `json:"apps"`
	Engine        engine.Stats     `json:"engine"`
	Resilience    resilienceStatus `json:"resilience"`
	// Fleet is the shard's fleet counter snapshot, absent outside a fleet
	// so the pre-fleet JSON shape is unchanged. Per-role cache counters
	// live under engine.characterizations_by_role.
	Fleet *fleet.Stats `json:"fleet,omitempty"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, cfg := range devices.All() {
		names = append(names, cfg.Name)
	}
	resp := statuszResponse{
		UptimeSeconds: s.opt.Clock.Since(s.start).Seconds(),
		Build:         s.info,
		Devices:       names,
		Apps:          catalog.Names(),
		Engine:        s.eng.Stats(),
		Resilience: resilienceStatus{
			Breaker:           s.breaker.State(),
			RequestsShed:      s.metrics.shed.Value(),
			DegradedResponses: s.metrics.degraded.Value(),
			PanicsRecovered:   s.metrics.panics.Value(),
			FaultsInjected:    faults.InjectedTotal(),
		},
	}
	if s.fleet != nil {
		st := s.fleet.Stats()
		resp.Fleet = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// AdviseRequest is one advisory question over the wire.
type AdviseRequest struct {
	// Device names a catalog platform (e.g. "jetson-tx2").
	Device string `json:"device"`
	// App names a catalog workload (e.g. "shwfs").
	App string `json:"app"`
	// Current is the model the application currently implements
	// (default "sc").
	Current string `json:"current"`
}

// AdviseBody is the /v1/advise request body: a batch of questions.
type AdviseBody struct {
	Requests []AdviseRequest `json:"requests"`
}

// AdviseResult mirrors engine.Result for the wire: either a recommendation
// or a per-request error, never both. Degraded marks advice produced by the
// threshold-only heuristic because the engine could not answer.
type AdviseResult struct {
	Recommendation *framework.Recommendation `json:"recommendation,omitempty"`
	Zone           string                    `json:"zone,omitempty"`
	Degraded       bool                      `json:"degraded,omitempty"`
	DegradedReason string                    `json:"degraded_reason,omitempty"`
	Error          string                    `json:"error,omitempty"`
	ErrorKind      string                    `json:"error_kind,omitempty"`
}

// AdviseResponse is the /v1/advise response body, results in request order.
type AdviseResponse struct {
	Results []AdviseResult `json:"results"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /v1/advise")
		return
	}
	var body AdviseBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(body.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "no requests")
		return
	}

	// Translate wire requests to engine requests; translation failures
	// (unknown device or app) become per-request errors so the rest of
	// the batch still runs.
	s.eng.NoteBatch()
	results := make([]AdviseResult, len(body.Requests))
	var wg sync.WaitGroup
	for i, ar := range body.Requests {
		req, err := s.toEngineRequest(ar)
		if err != nil {
			results[i] = AdviseResult{Error: err.Error(), ErrorKind: "invalid_request"}
			continue
		}
		if s.fleet != nil {
			if key, kerr := engine.CacheKey(req.Config, req.Params); kerr == nil {
				s.fleet.NoteServed(key)
			}
		}
		wg.Add(1)
		go func(i int, req engine.Request) {
			defer wg.Done()
			results[i] = s.adviseOne(r.Context(), req)
		}(i, req)
	}
	wg.Wait()
	s.maybePersist()
	writeJSON(w, http.StatusOK, AdviseResponse{Results: results})
}

// adviseOne answers one advisory request through the resilience layer:
// breaker-guarded characterization, then profile-and-decide; any failure on
// that path falls back to degraded heuristic advice so the caller always
// gets an answer or a typed error.
func (s *Server) adviseOne(ctx context.Context, req engine.Request) AdviseResult {
	done, ok := s.breaker.Allow()
	if !ok {
		return s.degraded(ctx, req, "circuit breaker open")
	}
	var char framework.Characterization
	err := guard(func() error {
		var err error
		char, err = s.eng.Characterize(ctx, req.Config, req.Params)
		return err
	})
	done(err)
	if err != nil {
		return s.degraded(ctx, req, fmt.Sprintf("characterization failed: %v", err))
	}
	memoKey := ""
	if key, kerr := engine.CacheKey(req.Config, req.Params); kerr == nil {
		memoKey = key + "|" + req.Workload.Name + "|" + req.Current
		s.adviceMu.Lock()
		rec, ok := s.adviceMemo[memoKey]
		s.adviceMu.Unlock()
		if ok {
			return AdviseResult{Recommendation: &rec, Zone: rec.Zone.String()}
		}
	}
	var rec framework.Recommendation
	err = guard(func() error {
		var err error
		rec, err = s.eng.AdviseWith(ctx, char, req)
		return err
	})
	if err != nil {
		return s.degraded(ctx, req, fmt.Sprintf("advice failed: %v", err))
	}
	if memoKey != "" {
		s.adviceMu.Lock()
		if len(s.adviceMemo) >= adviceMemoCap {
			// The population is bounded by devices x apps x models in any
			// real deployment; hitting the cap means pathological inputs,
			// and a reset is cheaper than an eviction policy.
			s.adviceMemo = make(map[string]framework.Recommendation)
		}
		s.adviceMemo[memoKey] = rec
		s.adviceMu.Unlock()
	}
	return AdviseResult{Recommendation: &rec, Zone: rec.Zone.String()}
}

// adviceMemoCap bounds the advice memo; see adviseOne.
const adviceMemoCap = 4096

// degraded answers from the threshold-only heuristic, marking the result so
// callers know it carries no measured speedup, and annotating the request's
// trace with the reason.
func (s *Server) degraded(ctx context.Context, req engine.Request, reason string) AdviseResult {
	rec, err := framework.HeuristicAdvise(req.Config, req.Workload, req.Current)
	if err != nil {
		// Even the fallback needs a valid current model; this is a caller
		// mistake, not an engine failure.
		return AdviseResult{Error: err.Error(), ErrorKind: "invalid_request"}
	}
	s.metrics.degraded.Inc()
	_, span := telemetry.Start(ctx, "advisord.degraded",
		telemetry.String("device", req.Config.Name),
		telemetry.String("workload", req.Workload.Name))
	span.SetAttr("degraded", reason)
	span.End()
	s.log.Warn("degraded advice", "device", req.Config.Name,
		"workload", req.Workload.Name, "reason", reason)
	return AdviseResult{
		Recommendation: &rec,
		Zone:           rec.Zone.String(),
		Degraded:       true,
		DegradedReason: reason,
	}
}

// guard runs f, converting a panic into an *engine.PanicError — the fault
// injector's panic mode (and any real bug) must degrade the one request, not
// kill the process.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &engine.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}

func (s *Server) toEngineRequest(ar AdviseRequest) (engine.Request, error) {
	cfg, err := devices.ByName(ar.Device)
	if err != nil {
		return engine.Request{}, err
	}
	wl, err := catalog.ByName(ar.App, s.opt.Scale)
	if err != nil {
		return engine.Request{}, err
	}
	current := ar.Current
	if current == "" {
		current = "sc"
	}
	return engine.Request{Config: cfg, Params: s.opt.Params, Workload: wl, Current: current}, nil
}

// handleCharacterize serves the (cached) device characterization in the
// framework persist format, so the response body is directly usable as
// cmd/advisor's -char file. Unlike /v1/advise it has no degraded fallback —
// a characterization either exists or it does not — so an open breaker
// answers 503 with a Retry-After hint.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	if device == "" {
		writeError(w, http.StatusBadRequest, "missing ?device= parameter")
		return
	}
	cfg, err := devices.ByName(device)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	done, ok := s.breaker.Allow()
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.breaker.RetryAfter().Seconds())))
		writeError(w, http.StatusServiceUnavailable, "characterization circuit breaker open")
		return
	}
	var char framework.Characterization
	err = guard(func() error {
		var err error
		char, err = s.eng.Characterize(r.Context(), cfg, s.opt.Params)
		return err
	})
	done(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.maybePersist()
	w.Header().Set("Content-Type", "application/json")
	if err := framework.SaveCharacterization(w, char); err != nil {
		s.log.Error("write characterization", "err", err)
	}
}

// handleHeatmap runs a heat-enabled exploration of one device x app point and
// serves the per-buffer heat artifact in the same schema-versioned format
// `advisor -heatmap` writes, so the response body is directly loadable with
// framework.LoadHeatArtifact. Heat runs are never cached (heat is an
// observability overlay, not part of the engine's memoized results), so like
// /v1/characterize an open breaker answers 503 with a Retry-After hint.
func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	if device == "" {
		writeError(w, http.StatusBadRequest, "missing ?device= parameter")
		return
	}
	app := r.URL.Query().Get("app")
	if app == "" {
		writeError(w, http.StatusBadRequest, "missing ?app= parameter")
		return
	}
	cfg, err := devices.ByName(device)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	wl, err := catalog.ByName(app, s.opt.Scale)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	done, ok := s.breaker.Allow()
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.breaker.RetryAfter().Seconds())))
		writeError(w, http.StatusServiceUnavailable, "exploration circuit breaker open")
		return
	}
	var exp framework.Exploration
	err = guard(func() error {
		var err error
		exp, err = s.eng.ExploreHeat(r.Context(), cfg, wl, comm.AllModels())
		return err
	})
	done(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	art := framework.HeatArtifact{Entries: framework.HeatEntriesFromExploration(exp)}
	s.metrics.heatRequests.Inc()
	if len(art.Entries) > 0 {
		best := art.Entries[0]
		hot := 0
		for _, h := range best.Hints {
			if h.Class == framework.BufferHot {
				hot++
			}
		}
		s.metrics.heatBuffers.Set(float64(len(best.Buffers)))
		s.metrics.heatHot.Set(float64(hot))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := framework.SaveHeatArtifact(w, art); err != nil {
		s.log.Error("write heat artifact", "err", err)
	}
}

// maybePersist snapshots the cache to disk when new characterizations were
// executed since the last snapshot.
func (s *Server) maybePersist() {
	if s.opt.CacheDir == "" {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	execs := s.eng.Stats().Characterizations.Executions
	if execs == s.lastSaved {
		return
	}
	if _, err := s.eng.SaveCache(s.opt.CacheDir); err != nil {
		s.log.Error("persist cache", "err", err)
		return
	}
	s.lastSaved = execs
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Error("encode response", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
