// Package advisord is the advisory service's HTTP surface, importable so
// both the cmd/advisord binary and the perfbench harness serve the exact
// same routes: batch advice (/v1/advise), cached device characterization
// (/v1/characterize), health, status and Prometheus metrics, all wrapped in
// the per-request observability middleware (trace IDs, latency histograms,
// structured request log). All state lives in the execution engine; the
// server only translates requests, records telemetry, and persists the
// cache.
package advisord

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/buildinfo"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/telemetry"
)

// Server wires the execution engine to the HTTP surface. All state lives in
// the engine; the server only translates requests, records telemetry, and
// persists the cache.
type Server struct {
	eng     *engine.Engine
	params  microbench.Params
	scale   catalog.Scale
	start   time.Time
	log     *slog.Logger
	metrics *serverMetrics
	info    buildinfo.Info

	// cacheDir, when set, receives a SaveCache snapshot whenever new
	// characterizations were executed; persistMu serializes the writers
	// and lastSaved tracks the execution count already on disk.
	cacheDir  string
	persistMu sync.Mutex
	lastSaved uint64
}

// New builds a server answering with the given engine, micro-benchmark
// params and workload scale. cacheDir, when non-empty, receives cache
// snapshots after requests that executed new characterizations; a nil logger
// falls back to slog.Default.
func New(eng *engine.Engine, params microbench.Params, scale catalog.Scale, cacheDir string, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	start := time.Now()
	info := buildinfo.Get()
	return &Server{
		eng:      eng,
		params:   params,
		scale:    scale,
		start:    start,
		log:      logger,
		metrics:  newServerMetrics(eng, start, info),
		info:     info,
		cacheDir: cacheDir,
	}
}

// Handler builds the service's route table, every endpoint wrapped in the
// observability middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.HandleFunc("/v1/advise", s.handleAdvise)
	mux.HandleFunc("/v1/characterize", s.handleCharacterize)
	return s.observe(mux)
}

// endpoints the middleware labels metrics with; anything else is "other" so
// an URL scan cannot explode the label space.
var knownEndpoints = map[string]bool{
	"/healthz":         true,
	"/statusz":         true,
	"/metrics":         true,
	"/v1/advise":       true,
	"/v1/characterize": true,
}

// statusRecorder captures the status code the handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// observe is the per-request observability middleware: a trace ID (accepted
// from X-Trace-Id or generated) echoed in the response header and stamped on
// every span the request opens, in-flight and latency metrics per endpoint,
// and a structured request log line.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := r.URL.Path
		if !knownEndpoints[endpoint] {
			endpoint = "other"
		}
		traceID := r.Header.Get("X-Trace-Id")
		if traceID == "" {
			traceID = telemetry.NewTraceID()
		}
		w.Header().Set("X-Trace-Id", traceID)
		ctx := telemetry.WithTraceID(r.Context(), traceID)

		s.metrics.requests.With(endpoint).Inc()
		s.metrics.inFlight.Inc()
		defer s.metrics.inFlight.Dec()

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := time.Since(t0)

		s.metrics.latency.With(endpoint).Observe(elapsed.Seconds())
		s.metrics.responses.With(strconv.Itoa(rec.status)).Inc()
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", elapsed,
			"trace_id", traceID,
		)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statuszResponse is the /statusz payload.
type statuszResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Build         buildinfo.Info `json:"build"`
	Devices       []string       `json:"devices"`
	Apps          []string       `json:"apps"`
	Engine        engine.Stats   `json:"engine"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, cfg := range devices.All() {
		names = append(names, cfg.Name)
	}
	writeJSON(w, http.StatusOK, statuszResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         s.info,
		Devices:       names,
		Apps:          catalog.Names(),
		Engine:        s.eng.Stats(),
	})
}

// adviseRequest is one advisory question over the wire.
type adviseRequest struct {
	Device string `json:"device"`
	App    string `json:"app"`
	// Current is the model the application currently implements
	// (default "sc").
	Current string `json:"current"`
}

type adviseBody struct {
	Requests []adviseRequest `json:"requests"`
}

// adviseResult mirrors engine.Result for the wire: either a recommendation
// or a per-request error, never both.
type adviseResult struct {
	Recommendation *framework.Recommendation `json:"recommendation,omitempty"`
	Zone           string                    `json:"zone,omitempty"`
	Error          string                    `json:"error,omitempty"`
}

type adviseResponse struct {
	Results []adviseResult `json:"results"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /v1/advise")
		return
	}
	var body adviseBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(body.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "no requests")
		return
	}

	// Translate wire requests to engine requests; translation failures
	// (unknown device or app) become per-request errors so the rest of
	// the batch still runs.
	results := make([]adviseResult, len(body.Requests))
	reqs := make([]engine.Request, 0, len(body.Requests))
	slots := make([]int, 0, len(body.Requests))
	for i, ar := range body.Requests {
		req, err := s.toEngineRequest(ar)
		if err != nil {
			results[i] = adviseResult{Error: err.Error()}
			continue
		}
		reqs = append(reqs, req)
		slots = append(slots, i)
	}
	for j, res := range s.eng.AdviseBatch(r.Context(), reqs) {
		i := slots[j]
		if res.Err != nil {
			results[i] = adviseResult{Error: res.Err.Error()}
			continue
		}
		rec := res.Rec
		results[i] = adviseResult{Recommendation: &rec, Zone: rec.Zone.String()}
	}
	s.maybePersist()
	writeJSON(w, http.StatusOK, adviseResponse{Results: results})
}

func (s *Server) toEngineRequest(ar adviseRequest) (engine.Request, error) {
	cfg, err := devices.ByName(ar.Device)
	if err != nil {
		return engine.Request{}, err
	}
	wl, err := catalog.ByName(ar.App, s.scale)
	if err != nil {
		return engine.Request{}, err
	}
	current := ar.Current
	if current == "" {
		current = "sc"
	}
	return engine.Request{Config: cfg, Params: s.params, Workload: wl, Current: current}, nil
}

// handleCharacterize serves the (cached) device characterization in the
// framework persist format, so the response body is directly usable as
// cmd/advisor's -char file.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	if device == "" {
		writeError(w, http.StatusBadRequest, "missing ?device= parameter")
		return
	}
	cfg, err := devices.ByName(device)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	char, err := s.eng.Characterize(r.Context(), cfg, s.params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.maybePersist()
	w.Header().Set("Content-Type", "application/json")
	if err := framework.SaveCharacterization(w, char); err != nil {
		s.log.Error("write characterization", "err", err)
	}
}

// maybePersist snapshots the cache to disk when new characterizations were
// executed since the last snapshot.
func (s *Server) maybePersist() {
	if s.cacheDir == "" {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	execs := s.eng.Stats().Characterizations.Executions
	if execs == s.lastSaved {
		return
	}
	if _, err := s.eng.SaveCache(s.cacheDir); err != nil {
		s.log.Error("persist cache", "err", err)
		return
	}
	s.lastSaved = execs
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Error("encode response", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
