package advisord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/microbench"
	"igpucomm/internal/simnet"
)

// breakerClock is a manually advanced clock for breaker tests.
type breakerClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *breakerClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *breakerClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	clock := &breakerClock{t: time.Unix(1000, 0)}
	b := newBreaker(2, 10*time.Second, clock.now)

	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		done, ok := b.Allow()
		if !ok {
			t.Fatalf("attempt %d denied while closed", i)
		}
		done(boom)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after %d failures = %s, want open", 2, got)
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker allowed an attempt before cooldown")
	}

	// Cooldown lapses: exactly one probe gets through.
	clock.advance(11 * time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", got)
	}
	done, ok := b.Allow()
	if !ok {
		t.Fatal("half-open breaker denied the probe")
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("second concurrent probe allowed in half-open")
	}
	done(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}

	// A failed probe re-opens immediately, without needing threshold
	// consecutive failures again.
	for i := 0; i < 2; i++ {
		if done, ok := b.Allow(); ok {
			done(boom)
		}
	}
	clock.advance(11 * time.Second)
	done, ok = b.Allow()
	if !ok {
		t.Fatal("half-open breaker denied the probe")
	}
	done(boom)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
}

func TestBreakerIgnoresContextErrors(t *testing.T) {
	b := newBreaker(1, 10*time.Second, time.Now)
	for i := 0; i < 5; i++ {
		done, ok := b.Allow()
		if !ok {
			t.Fatalf("attempt %d denied", i)
		}
		done(context.Canceled)
		done2, ok := b.Allow()
		if !ok {
			t.Fatalf("attempt %db denied", i)
		}
		done2(context.DeadlineExceeded)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %s after only context errors, want closed", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker(3, 10*time.Second, time.Now)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		done, _ := b.Allow()
		done(boom)
		done, _ = b.Allow()
		done(nil) // interleaved successes: never 3 consecutive failures
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed (failures never consecutive)", got)
	}
}

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := newAdmission(1, 1)
	release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire denied")
	}

	// Second caller occupies the one queue slot.
	queued := make(chan struct{})
	go func() {
		rel, ok := a.acquire(context.Background())
		close(queued)
		if ok {
			rel()
		}
	}()
	// Wait until the goroutine is actually queued (queued counter = 1).
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	// Third caller: queue full, must shed immediately.
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("acquire beyond the queue bound was admitted")
	}

	release()
	<-queued

	// A queued caller whose context ends is released without a slot.
	release2, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("re-acquire denied")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := a.acquire(ctx); ok {
		t.Fatal("cancelled context acquired a slot")
	}
	release2()
}

// resilientServer builds a test server with explicit resilience options.
func resilientServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	opt.Params = microbench.TestParams()
	opt.Scale = catalog.Quick
	opt.Logger = testLogger()
	eng := engine.New(engine.Options{Workers: 2})
	srv := New(eng, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// activatePlan installs a fault plan for the duration of the test.
func activatePlan(t *testing.T, seed int64, rules ...faults.Rule) {
	t.Helper()
	if err := faults.Activate(faults.NewPlan(seed, rules...)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		faults.Deactivate()
		faults.ResetInjected()
	})
}

// With characterization failing every time, advise must still answer 200
// with degraded heuristic advice, and the telemetry must show it.
func TestAdviseDegradesWhenCharacterizationFails(t *testing.T) {
	activatePlan(t, 1, faults.Rule{Point: "engine.characterize", Mode: faults.ModeError, Every: 1})
	_, ts := resilientServer(t, Options{BreakerThreshold: 100})

	out := postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
	}})
	res := out.Results[0]
	if !res.Degraded {
		t.Fatalf("result not degraded: %+v", res)
	}
	if !strings.Contains(res.DegradedReason, "characterization failed") {
		t.Errorf("degraded reason = %q", res.DegradedReason)
	}
	if res.Recommendation == nil || res.Recommendation.Suggested == "" {
		t.Fatalf("degraded result carries no recommendation: %+v", res)
	}
	if !strings.HasPrefix(res.Recommendation.Rationale, "degraded heuristic") {
		t.Errorf("rationale = %q", res.Recommendation.Rationale)
	}

	got := scrapeMetrics(t, ts)
	for _, want := range []string{
		"igpucomm_advise_degraded_total 1",
		`igpucomm_faults_injected_total{point="engine.characterize"}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// Consecutive characterization failures trip the breaker; once open, advise
// answers degraded without touching the engine and characterize sheds 503.
func TestBreakerOpensUnderRepeatedFailure(t *testing.T) {
	activatePlan(t, 2, faults.Rule{Point: "engine.characterize", Mode: faults.ModeError, Every: 1})
	srv, ts := resilientServer(t, Options{
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
		Clock: simnet.NewSimAt(time.Unix(1000, 0)),
	})

	for i := 0; i < 2; i++ {
		postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
			{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
		}})
	}
	if got := srv.breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker = %s after consecutive failures, want open", got)
	}

	out := postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "lanedet", Current: "sc"},
	}})
	if !out.Results[0].Degraded || out.Results[0].DegradedReason != "circuit breaker open" {
		t.Errorf("open-breaker result = %+v, want degraded (breaker open)", out.Results[0])
	}

	resp, err := http.Get(ts.URL + "/v1/characterize?device=" + devices.TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("characterize under open breaker = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	if !strings.Contains(scrapeMetrics(t, ts), "igpucomm_breaker_state 2") {
		t.Error("breaker_state gauge not 2 (open)")
	}

	var st statuszResponse
	getJSON(t, ts.URL+"/statusz", &st)
	if st.Resilience.Breaker != BreakerOpen {
		t.Errorf("statusz breaker = %q, want open", st.Resilience.Breaker)
	}
	if st.Resilience.DegradedResponses == 0 {
		t.Error("statusz shows no degraded responses")
	}
}

// An injected panic in characterization is contained: the request degrades,
// the process survives, and the health check still answers.
func TestAdvisePanicFaultIsContained(t *testing.T) {
	activatePlan(t, 3, faults.Rule{Point: "engine.characterize", Mode: faults.ModePanic, Every: 1})
	_, ts := resilientServer(t, Options{BreakerThreshold: 100})

	out := postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.XavierName, App: "orbslam", Current: "zc"},
	}})
	res := out.Results[0]
	if !res.Degraded || res.Recommendation == nil {
		t.Fatalf("panic fault did not degrade cleanly: %+v", res)
	}
	if !strings.Contains(res.DegradedReason, "panic") {
		t.Errorf("degraded reason = %q, want a panic mention", res.DegradedReason)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", resp.StatusCode)
	}
}

// Overload beyond the admission queue is shed as 429 + Retry-After while
// admitted requests complete normally.
func TestOverloadShedsWith429(t *testing.T) {
	activatePlan(t, 4, faults.Rule{
		Point: "engine.characterize", Mode: faults.ModeLatency, Every: 1, Delay: 200 * time.Millisecond,
	})
	_, ts := resilientServer(t, Options{MaxConcurrent: 1, MaxQueue: 1, BreakerThreshold: 100})

	body, err := json.Marshal(AdviseBody{Requests: []AdviseRequest{
		{Device: devices.NanoName, App: "shwfs", Current: "sc"},
	}})
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)

	var ok200, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok200 == 0 {
		t.Error("no request was admitted")
	}
	if shed == 0 {
		t.Error("no request was shed despite capacity 1 + queue 1 and 6 callers")
	}
	if shed > 0 && !strings.Contains(scrapeMetrics(t, ts), "igpucomm_http_requests_shed_total") {
		t.Error("shed counter missing from scrape")
	}
}

// The per-request deadline turns a wedged engine into degraded answers
// instead of unbounded latency.
func TestRequestDeadlineDegrades(t *testing.T) {
	activatePlan(t, 5, faults.Rule{
		Point: "engine.characterize", Mode: faults.ModeLatency, Every: 1, Delay: 2 * time.Second,
	})
	_, ts := resilientServer(t, Options{RequestTimeout: 100 * time.Millisecond, BreakerThreshold: 100})

	t0 := time.Now()
	out := postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
	}})
	// The latency fault sleeps 2s regardless of context, so the request
	// takes that long; what matters is that the answer is degraded, not an
	// opaque 500, and that the deadline was the trigger.
	res := out.Results[0]
	if !res.Degraded || res.Recommendation == nil {
		t.Fatalf("deadline did not degrade cleanly in %v: %+v", time.Since(t0), res)
	}
}
