package advisord

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/telemetry"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint exercises the full scrape surface: HTTP instruments
// from the middleware, build identity, and the engine cache counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)

	// Generate traffic the scrape should reflect: one advise batch (engine
	// counters), one health check, one prior scrape (endpoint label).
	postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
		{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
	}})
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	scrapeMetrics(t, ts)

	got := scrapeMetrics(t, ts)
	for _, want := range []string{
		"# TYPE igpucomm_http_requests_total counter",
		`igpucomm_http_requests_total{endpoint="/v1/advise"} 1`,
		`igpucomm_http_requests_total{endpoint="/healthz"} 1`,
		`igpucomm_http_requests_total{endpoint="/metrics"}`,
		`igpucomm_http_responses_total{code="200"}`,
		"# TYPE igpucomm_http_request_duration_seconds histogram",
		`igpucomm_http_request_duration_seconds_bucket{endpoint="/v1/advise",le="+Inf"} 1`,
		"igpucomm_build_info{",
		"igpucomm_engine_requests_total 1",
		"igpucomm_engine_batches_total 1",
		"igpucomm_engine_char_cache_executions_total 1",
		"igpucomm_engine_char_cache_misses_total 1",
		"igpucomm_engine_pool_workers 2",
		"igpucomm_uptime_seconds",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("scrape missing %q:\n%s", want, got)
		}
	}
}

// TestMetricsRegisterCacheFamilies pins the naming contract the igpulint
// metricname suppressions in registerCacheMetrics rely on: every name the
// helper assembles from its constant prefix and table stays inside the
// igpucomm_engine_<cache>_cache_* family and ends in a sanctioned unit.
func TestMetricsRegisterCacheFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	registerCacheMetrics(reg, "char", "characterization",
		func() engine.MemoStats { return engine.MemoStats{} })
	registerCacheMetrics(reg, "mb1", "MB1",
		func() engine.MemoStats { return engine.MemoStats{} })

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		names[strings.Fields(line)[2]] = true
	}
	if len(names) != 16 {
		t.Fatalf("expected 16 metric families (8 per cache), got %d: %v", len(names), names)
	}
	shape := regexp.MustCompile(`^igpucomm_engine_(char|mb1)_cache_[a-z0-9]+(_[a-z0-9]+)*$`)
	for name := range names {
		if !shape.MatchString(name) {
			t.Errorf("metric %q escapes the igpucomm_engine_<cache>_cache_* family", name)
		}
		ok := false
		for _, unit := range []string{"_total", "_entries", "_in_flight"} {
			if strings.HasSuffix(name, unit) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("metric %q does not end in a sanctioned unit suffix", name)
		}
	}
}

func TestMetricsBoundsEndpointLabels(t *testing.T) {
	_, ts := testServer(t)
	// Unknown paths must collapse into one label, not mint new ones.
	for _, p := range []string{"/nope", "/also/nope", "/v1/advise/extra"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	got := scrapeMetrics(t, ts)
	if !strings.Contains(got, `igpucomm_http_requests_total{endpoint="other"} 3`) {
		t.Fatalf("unknown paths should share the \"other\" endpoint label:\n%s", got)
	}
	if strings.Contains(got, `endpoint="/nope"`) {
		t.Fatal("unknown path leaked into the endpoint label space")
	}
}

func TestTraceIDHeader(t *testing.T) {
	_, ts := testServer(t)

	// Generated when absent: 16 hex digits.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated X-Trace-Id = %q, want 16 hex digits", id)
	}

	// Echoed when the client supplies one.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "my-request-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); got != "my-request-42" {
		t.Fatalf("X-Trace-Id = %q, want the echoed client ID", got)
	}
}

func TestStatuszReportsBuild(t *testing.T) {
	_, ts := testServer(t)
	var status statuszResponse
	getJSON(t, ts.URL+"/statusz", &status)
	if status.Build.GoVersion == "" {
		t.Fatalf("statusz build info missing go version: %+v", status.Build)
	}
	if status.Build.Main == "" {
		t.Fatalf("statusz build info missing module: %+v", status.Build)
	}
}

// TestConcurrentScrapesDuringAdvise runs metric and status scrapes
// concurrently with advise batches; under -race (CI runs this package with
// it) this proves /metrics and /statusz take consistent snapshots while the
// engine mutates its counters.
func TestConcurrentScrapesDuringAdvise(t *testing.T) {
	_, ts := testServer(t)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postAdvise(t, ts, AdviseBody{Requests: []AdviseRequest{
				{Device: devices.TX2Name, App: "shwfs", Current: "sc"},
				{Device: devices.XavierName, App: "orbslam", Current: "zc"},
			}})
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := http.Get(ts.URL + "/statusz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				resp, err = http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	got := scrapeMetrics(t, ts)
	if !strings.Contains(got, "igpucomm_engine_batches_total 4") {
		t.Fatalf("engine batch counter should reach 4:\n%s", got)
	}
}
