package advisord

import (
	"fmt"
	"time"

	"igpucomm/internal/buildinfo"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
	"igpucomm/internal/simnet"
	"igpucomm/internal/telemetry"
)

// Heat-map metric names, declared as consts so the metricname analyzer
// audits the family at one declaration site.
const (
	metricHeatmapRequestsTotal      = "igpucomm_heatmap_requests_total"
	metricHeatmapLastBuffersEntries = "igpucomm_heatmap_last_buffers_entries"
	metricHeatmapLastHotEntries     = "igpucomm_heatmap_last_hot_entries"
)

// serverMetrics is advisord's /metrics surface: HTTP-side instruments owned
// by the middleware plus scrape-time collectors over the engine's own atomic
// counters, so a scrape never takes a lock the hot path contends on.
type serverMetrics struct {
	reg *telemetry.Registry

	requests  *telemetry.CounterVec   // by endpoint
	responses *telemetry.CounterVec   // by status code
	latency   *telemetry.HistogramVec // by endpoint, seconds
	inFlight  *telemetry.Gauge

	shed     *telemetry.Counter // admission-queue overflow (429s)
	degraded *telemetry.Counter // heuristic answers served
	panics   *telemetry.Counter // handler panics recovered

	heatRequests *telemetry.Counter // /v1/heatmap explorations served
	heatBuffers  *telemetry.Gauge   // buffer rows in the last best-model heat entry
	heatHot      *telemetry.Gauge   // buffers classified hot in that entry
}

func newServerMetrics(eng *engine.Engine, clock simnet.Clock, start time.Time, info buildinfo.Info, br *Breaker, fl *fleet.State) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("igpucomm_http_requests_total",
			"HTTP requests received, by endpoint.", "endpoint"),
		responses: reg.CounterVec("igpucomm_http_responses_total",
			"HTTP responses sent, by status code.", "code"),
		latency: reg.HistogramVec("igpucomm_http_request_duration_seconds",
			"HTTP request latency, by endpoint.", "endpoint", nil),
		inFlight: reg.Gauge("igpucomm_http_requests_in_flight",
			"HTTP requests currently being served."),
		shed: reg.Counter("igpucomm_http_requests_shed_total",
			"Requests shed by the admission queue (answered 429)."),
		degraded: reg.Counter("igpucomm_advise_degraded_total",
			"Advisory answers served by the degraded-mode heuristic."),
		panics: reg.Counter("igpucomm_http_panics_recovered_total",
			"Handler panics recovered into 500 responses."),
		heatRequests: reg.Counter(metricHeatmapRequestsTotal,
			"Heat-map explorations served by /v1/heatmap."),
		heatBuffers: reg.Gauge(metricHeatmapLastBuffersEntries,
			"Per-buffer heat rows in the last /v1/heatmap best-model entry."),
		heatHot: reg.Gauge(metricHeatmapLastHotEntries,
			"Buffers classified hot in the last /v1/heatmap best-model entry."),
	}

	reg.GaugeFunc("igpucomm_breaker_state",
		"Characterization circuit breaker state (0 closed, 1 half-open, 2 open).",
		br.stateValue)
	reg.CounterVecFunc("igpucomm_faults_injected_total",
		"Faults injected by the fault-injection layer, by point.", "point",
		func() map[string]float64 {
			counts := faults.Injected()
			out := make(map[string]float64, len(counts))
			for point, n := range counts {
				out[point] = float64(n)
			}
			return out
		})
	reg.CounterFunc("igpucomm_engine_cache_corrupt_entries_total",
		"Persisted cache entries quarantined at warm start.",
		func() float64 { return float64(eng.Stats().CacheCorruptEntries) })

	reg.InfoGauge("igpucomm_build_info",
		"Build identity of the running advisord binary.", info.Labels())
	reg.GaugeFunc("igpucomm_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return clock.Since(start).Seconds() })

	reg.CounterFunc("igpucomm_engine_requests_total",
		"Advisory requests answered by the engine.",
		func() float64 { return float64(eng.Stats().Requests) })
	reg.CounterFunc("igpucomm_engine_batches_total",
		"Advisory batches answered by the engine.",
		func() float64 { return float64(eng.Stats().Batches) })
	reg.GaugeFunc("igpucomm_engine_pool_workers",
		"Configured simulation-parallelism bound.",
		func() float64 { return float64(eng.Workers()) })
	reg.GaugeFunc("igpucomm_engine_pool_in_use",
		"Simulation worker slots held right now.",
		func() float64 { return float64(eng.PoolInUse()) })
	reg.GaugeFunc("igpucomm_engine_pool_utilization",
		"Fraction of the simulation pool in use.",
		func() float64 {
			if eng.Workers() == 0 {
				return 0
			}
			return float64(eng.PoolInUse()) / float64(eng.Workers())
		})

	registerCacheMetrics(reg, "char", "characterization",
		func() engine.MemoStats { return eng.Stats().Characterizations })
	registerCacheMetrics(reg, "mb1", "MB1",
		func() engine.MemoStats { return eng.Stats().MB1 })

	if fl != nil {
		reg.GaugeFunc(metricFleetRingSize,
			"Member shards in this replica's consistent-hash ring.",
			func() float64 { return float64(fl.Stats().Shards) })
		reg.CounterFunc(metricFleetReroutesTotal,
			"Advisory requests served for keys owned by another shard (client fallback traffic received).",
			func() float64 { return float64(fl.Stats().ReroutesReceived) })
		reg.CounterVecFunc(metricFleetHandoffEntriesTotal,
			"Warm-handoff cache entries moved, by direction (exported to peers / imported from peers).", "direction",
			func() map[string]float64 {
				st := fl.Stats()
				return map[string]float64{
					"exported": float64(st.HandoffExported),
					"imported": float64(st.HandoffImported),
				}
			})
		reg.GaugeFunc(metricFleetDrainingState,
			"Whether this shard is draining (1) or serving (0).",
			func() float64 {
				if fl.Draining() {
					return 1
				}
				return 0
			})
	}
	return m
}

// registerCacheMetrics exports one memo cache's counters under
// igpucomm_engine_<cache>_cache_*.
func registerCacheMetrics(reg *telemetry.Registry, cache, what string, stats func() engine.MemoStats) {
	prefix := "igpucomm_engine_" + cache + "_cache_"
	counters := []struct {
		name string
		help string
		get  func(engine.MemoStats) float64
	}{
		{"hits_total", "requests served from the cache", func(s engine.MemoStats) float64 { return float64(s.Hits) }},
		{"misses_total", "requests that found no live entry", func(s engine.MemoStats) float64 { return float64(s.Misses) }},
		{"shared_total", "misses that piggybacked on an in-flight execution (singleflight)", func(s engine.MemoStats) float64 { return float64(s.Shared) }},
		{"executions_total", "compute functions actually run", func(s engine.MemoStats) float64 { return float64(s.Executions) }},
		{"evictions_total", "LRU capacity evictions", func(s engine.MemoStats) float64 { return float64(s.Evictions) }},
		{"expirations_total", "entries dropped because their TTL lapsed", func(s engine.MemoStats) float64 { return float64(s.Expirations) }},
	}
	for _, c := range counters {
		c := c
		//igpulint:ignore metricname per-cache family: constant prefix ("mb1"/"mb3") + constant table entries, format-checked by TestMetricsRegisterCacheFamilies
		reg.CounterFunc(prefix+c.name,
			fmt.Sprintf("%s cache: %s.", what, c.help),
			func() float64 { return c.get(stats()) })
	}
	//igpulint:ignore metricname per-cache family: constant prefix + constant suffix, see TestMetricsRegisterCacheFamilies
	reg.GaugeFunc(prefix+"entries",
		fmt.Sprintf("%s cache: live cached values.", what),
		func() float64 { return float64(stats().Entries) })
	//igpulint:ignore metricname per-cache family: constant prefix + constant suffix, see TestMetricsRegisterCacheFamilies
	reg.GaugeFunc(prefix+"in_flight",
		fmt.Sprintf("%s cache: executions running right now.", what),
		func() float64 { return float64(stats().InFlight) })
}
