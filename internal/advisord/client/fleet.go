package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/fleet"
)

// Fleet routing, layered UNDER the retry policy: Advise groups the batch by
// owning shard (each question's characterization key hashed on the shared
// ring), posts each group to its owner, and on every retry re-picks a shard
// from the key's preference order — so a 429, 5xx or network failure walks
// down the ring to the next replica instead of hammering the same one. The
// router's health tracking demotes repeat offenders, and retryable failures
// trigger a rate-limited topology refresh so a membership change pushed by
// advisorctl reaches clients mid-storm.

// routeKey computes the characterization cache key an advisory question
// routes on — the same sha256 content hash the server's engine memoizes
// under. Questions whose device the client cannot resolve still route
// deterministically, on a synthetic per-device key.
func (c *Client) routeKey(ar advisord.AdviseRequest) string {
	cfg, err := devices.ByName(ar.Device)
	if err != nil {
		return "device/" + ar.Device
	}
	key, err := engine.CacheKey(cfg, c.opt.Params)
	if err != nil {
		return "device/" + ar.Device
	}
	return key
}

// shardGroup is the slice of one batch owned by a single shard.
type shardGroup struct {
	key  string // routing key of the group's first question
	idxs []int  // positions in the original batch
	reqs []advisord.AdviseRequest
}

// adviseFleet answers a batch through the fleet: split by owning shard,
// route each group independently, reassemble results in request order. A
// group that exhausts its retries fails the whole call with every group
// error joined — a partial batch would silently drop questions.
func (c *Client) adviseFleet(ctx context.Context, body advisord.AdviseBody) (advisord.AdviseResponse, error) {
	groups := make(map[string]*shardGroup)
	for i, ar := range body.Requests {
		key := c.routeKey(ar)
		owner := c.opt.Fleet.Owner(key)
		g := groups[owner]
		if g == nil {
			g = &shardGroup{key: key}
			groups[owner] = g
		}
		g.idxs = append(g.idxs, i)
		g.reqs = append(g.reqs, ar)
	}
	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners)

	results := make([]advisord.AdviseResult, len(body.Requests))
	var errs []error
	for _, owner := range owners {
		g := groups[owner]
		out, err := c.adviseGroup(ctx, g.key, advisord.AdviseBody{Requests: g.reqs})
		if err != nil {
			errs = append(errs, fmt.Errorf("client: shard group %s: %w", owner, err))
			continue
		}
		if len(out.Results) != len(g.idxs) {
			errs = append(errs, fmt.Errorf("client: shard group %s: %d results for %d requests", owner, len(out.Results), len(g.idxs)))
			continue
		}
		for j, idx := range g.idxs {
			results[idx] = out.Results[j]
		}
	}
	if len(errs) > 0 {
		return advisord.AdviseResponse{}, errors.Join(errs...)
	}
	return advisord.AdviseResponse{Results: results}, nil
}

// adviseGroup posts one shard group under the retry policy, re-picking the
// target shard on every attempt.
func (c *Client) adviseGroup(ctx context.Context, key string, body advisord.AdviseBody) (advisord.AdviseResponse, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return advisord.AdviseResponse{}, fmt.Errorf("client: encode request: %w", err)
	}
	var out advisord.AdviseResponse
	tried := make(map[string]bool)
	lastShard := ""
	err = c.retry(ctx, func(ctx context.Context) (bool, time.Duration, error) {
		sh := c.pickShard(key, tried)
		tried[sh.ID] = true
		if lastShard != "" && sh.ID != lastShard {
			c.opt.Fleet.NoteReroute()
		}
		lastShard = sh.ID
		retryable, retryAfter, err := c.postAdviseOnce(ctx, sh.URL, payload, &out)
		if err == nil {
			c.opt.Fleet.ReportSuccess(sh.ID)
			return false, 0, nil
		}
		if retryable {
			c.opt.Fleet.ReportFailure(sh.ID)
			// The failure may mean the topology moved under us (a drained
			// or replaced shard); refresh it, rate-limited, before the
			// next attempt re-picks.
			c.maybeRefreshTopology(ctx)
		}
		return retryable, retryAfter, err
	})
	if err != nil {
		return advisord.AdviseResponse{}, err
	}
	return out, nil
}

// pickShard returns the first shard in key's preference order not yet tried
// this call. Once every shard has been tried the tried set resets — later
// attempts walk the (possibly refreshed) preference order again rather than
// giving up routing.
func (c *Client) pickShard(key string, tried map[string]bool) fleet.Shard {
	pref := c.opt.Fleet.Route(key)
	for _, sh := range pref {
		if !tried[sh.ID] {
			return sh
		}
	}
	for id := range tried {
		delete(tried, id)
	}
	return pref[0]
}

// RefreshTopology fetches /v1/fleet/topology from the fleet, first replica
// to answer wins, and installs it on the router when newer than what the
// router holds. Safe to call concurrently; no-op error when the client has
// no fleet.
func (c *Client) RefreshTopology(ctx context.Context) error {
	if c.opt.Fleet == nil {
		return errors.New("client: no fleet configured")
	}
	var errs []error
	for _, sh := range c.opt.Fleet.Shards() {
		topo, err := c.fetchTopology(ctx, sh.URL)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", sh.ID, err))
			continue
		}
		if _, err := c.opt.Fleet.Update(topo); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", sh.ID, err))
			continue
		}
		return nil
	}
	return fmt.Errorf("client: topology refresh failed on every shard: %w", errors.Join(errs...))
}

// fetchTopology GETs one replica's topology document.
func (c *Client) fetchTopology(ctx context.Context, baseURL string) (fleet.Topology, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/fleet/topology", nil)
	if err != nil {
		return fleet.Topology{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fleet.Topology{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.Topology{}, &APIError{Status: resp.StatusCode, Message: readErrorBody(resp.Body)}
	}
	var topo fleet.Topology
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return fleet.Topology{}, fmt.Errorf("decode topology: %w", err)
	}
	return topo, nil
}

// maybeRefreshTopology refreshes at most once per RefreshMinInterval,
// best-effort — a failed refresh must not fail the advisory call that
// triggered it.
func (c *Client) maybeRefreshTopology(ctx context.Context) {
	c.refreshMu.Lock()
	now := c.clock.Now()
	due := c.lastRefresh.IsZero() || now.Sub(c.lastRefresh) >= c.opt.RefreshMinInterval
	if due {
		c.lastRefresh = now
	}
	c.refreshMu.Unlock()
	if !due {
		return
	}
	if err := c.RefreshTopology(ctx); err != nil {
		// Best-effort: the next retry still has the old ring to walk.
		return
	}
}
