package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/devices"
	"igpucomm/internal/fleet"
	"igpucomm/internal/microbench"
)

// fakeShard is a stub advisord shard: answers /v1/advise with its own ID as
// every result's Zone (so tests see who served what) and /v1/fleet/topology
// with an installed topology document.
type fakeShard struct {
	id string

	mu       sync.Mutex
	served   []advisord.AdviseRequest
	fail     int // answer this many advises with 503 first
	topology *fleet.Topology
	degraded bool
}

func (f *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/advise", func(w http.ResponseWriter, r *http.Request) {
		var body advisord.AdviseBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.fail > 0 {
			f.fail--
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "injected outage"})
			return
		}
		f.served = append(f.served, body.Requests...)
		results := make([]advisord.AdviseResult, len(body.Requests))
		for i := range results {
			results[i] = advisord.AdviseResult{Zone: f.id, Degraded: f.degraded}
		}
		json.NewEncoder(w).Encode(advisord.AdviseResponse{Results: results})
	})
	mux.HandleFunc("/v1/fleet/topology", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		topo := f.topology
		f.mu.Unlock()
		if topo == nil {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(topo)
	})
	return mux
}

func (f *fakeShard) servedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.served)
}

// startShards brings up n fake shards and returns them plus the membership.
func startShards(t *testing.T, ids ...string) ([]*fakeShard, []fleet.Shard) {
	t.Helper()
	fakes := make([]*fakeShard, len(ids))
	shards := make([]fleet.Shard, len(ids))
	for i, id := range ids {
		fakes[i] = &fakeShard{id: id}
		ts := httptest.NewServer(fakes[i].handler())
		t.Cleanup(ts.Close)
		shards[i] = fleet.Shard{ID: id, URL: ts.URL}
	}
	return fakes, shards
}

func fleetClient(t *testing.T, rt *fleet.Router, opts ...func(*Options)) *Client {
	t.Helper()
	sleep := &recordingSleep{}
	o := Options{Fleet: rt, Sleep: sleep.sleep, RefreshMinInterval: time.Nanosecond}
	for _, f := range opts {
		f(&o)
	}
	return New(o)
}

func fourDeviceBody(t *testing.T) advisord.AdviseBody {
	t.Helper()
	var body advisord.AdviseBody
	for _, cfg := range devices.All() {
		body.Requests = append(body.Requests,
			advisord.AdviseRequest{Device: cfg.Name, App: "shwfs", Current: "sc"})
	}
	if len(body.Requests) < 2 {
		t.Fatal("need at least two catalog devices")
	}
	return body
}

// Healthy fleet: every question lands on the shard owning its key, and
// results come back in request order.
func TestFleetRoutingSendsEachKeyToItsOwner(t *testing.T) {
	fakes, shards := startShards(t, "shard-a", "shard-b", "shard-c")
	rt, err := fleet.NewRouter(fleet.RouterOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	c := fleetClient(t, rt)
	body := fourDeviceBody(t)

	resp, err := c.Advise(context.Background(), body)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(body.Requests) {
		t.Fatalf("%d results for %d requests", len(resp.Results), len(body.Requests))
	}
	for i, ar := range body.Requests {
		owner := rt.Owner(c.routeKey(ar))
		if resp.Results[i].Zone != owner {
			t.Fatalf("request %d (%s) answered by %s, owner is %s",
				i, ar.Device, resp.Results[i].Zone, owner)
		}
	}
	total := 0
	for _, f := range fakes {
		total += f.servedCount()
	}
	if total != len(body.Requests) {
		t.Fatalf("shards served %d questions, want %d", total, len(body.Requests))
	}
	if st := rt.Stats(); st.Reroutes != 0 || st.Fallbacks != 0 {
		t.Fatalf("healthy fleet counted reroutes/fallbacks: %+v", st)
	}
}

// Single-shard ring (satellite edge case): everything routes to the only
// shard, retries included.
func TestFleetSingleShardRing(t *testing.T) {
	fakes, shards := startShards(t, "solo")
	fakes[0].mu.Lock()
	fakes[0].fail = 1 // first attempt 503s; the retry must return to solo
	fakes[0].mu.Unlock()
	rt, err := fleet.NewRouter(fleet.RouterOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	c := fleetClient(t, rt)

	resp, err := c.Advise(context.Background(), adviseBody())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Zone != "solo" {
		t.Fatalf("results = %+v", resp.Results)
	}
	// Same shard on both attempts: no reroute was possible or counted.
	if st := rt.Stats(); st.Reroutes != 0 {
		t.Fatalf("single-shard ring counted %d reroutes", st.Reroutes)
	}
}

// All shards unhealthy (satellite edge case): the any-replica fallback still
// finds the one replica that answers — with degraded advice — instead of
// erasing the request.
func TestFleetAllUnhealthyFallsBackToAnyReplica(t *testing.T) {
	fakes, shards := startShards(t, "shard-a", "shard-b", "shard-c")
	rt, err := fleet.NewRouter(fleet.RouterOptions{
		Shards:           shards,
		FailureThreshold: 1,
		Cooldown:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every shard marked down; only shard-b actually answers, degraded.
	for _, id := range []string{"shard-a", "shard-b", "shard-c"} {
		rt.ReportFailure(id)
	}
	for _, f := range fakes {
		f.mu.Lock()
		if f.id == "shard-b" {
			f.degraded = true
		} else {
			f.fail = 1 << 20 // never answers advise
		}
		f.mu.Unlock()
	}
	c := fleetClient(t, rt, func(o *Options) { o.MaxAttempts = 6 })

	resp, err := c.Advise(context.Background(), adviseBody())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Zone != "shard-b" || !resp.Results[0].Degraded {
		t.Fatalf("results = %+v, want degraded answer from shard-b", resp.Results)
	}
	if st := rt.Stats(); st.Fallbacks == 0 {
		t.Fatal("any-replica fallback not counted")
	}
}

// Topology refresh mid-retry (satellite edge case): the original shard dies
// after publishing a v2 topology naming its replacement; the retry path
// refreshes and the next attempt lands on the replacement.
func TestFleetTopologyRefreshMidRetry(t *testing.T) {
	fakes, shards := startShards(t, "shard-a", "shard-b")
	// Initial client membership: only shard-a. Its topology document
	// already announces v2 with both shards.
	fakes[0].mu.Lock()
	fakes[0].fail = 1 << 20 // shard-a sheds everything
	fakes[0].topology = &fleet.Topology{Version: 2, Self: "shard-a", Shards: shards}
	fakes[0].mu.Unlock()
	rt, err := fleet.NewRouter(fleet.RouterOptions{Shards: shards[:1]})
	if err != nil {
		t.Fatal(err)
	}
	c := fleetClient(t, rt, func(o *Options) { o.MaxAttempts = 4 })

	resp, err := c.Advise(context.Background(), adviseBody())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Zone != "shard-b" {
		t.Fatalf("answered by %s, want the shard learned mid-retry", resp.Results[0].Zone)
	}
	if rt.Version() != 2 || len(rt.Shards()) != 2 {
		t.Fatalf("topology not refreshed: version=%d shards=%v", rt.Version(), rt.Shards())
	}
	if st := rt.Stats(); st.TopologyRefreshes == 0 || st.Reroutes == 0 {
		t.Fatalf("refresh/reroute not counted: %+v", st)
	}
}

// Ring determinism across restarts (satellite edge case): a freshly built
// client and router — a simulated process restart — agree with the original
// on every key's owner, so cache locality survives restarts.
func TestFleetRoutingDeterministicAcrossRestarts(t *testing.T) {
	_, shards := startShards(t, "shard-a", "shard-b", "shard-c")
	rt1, err := fleet.NewRouter(fleet.RouterOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	// The "restarted" process sees the same membership in a different
	// order.
	perm := []fleet.Shard{shards[2], shards[0], shards[1]}
	rt2, err := fleet.NewRouter(fleet.RouterOptions{Shards: perm})
	if err != nil {
		t.Fatal(err)
	}
	c1 := fleetClient(t, rt1)
	c2 := fleetClient(t, rt2, func(o *Options) { o.Params = microbench.DefaultParams() })

	for _, cfg := range devices.All() {
		ar := advisord.AdviseRequest{Device: cfg.Name, App: "shwfs"}
		k1, k2 := c1.routeKey(ar), c2.routeKey(ar)
		if k1 != k2 {
			t.Fatalf("route key for %s diverged across restarts", cfg.Name)
		}
		if rt1.Owner(k1) != rt2.Owner(k2) {
			t.Fatalf("owner for %s diverged across restarts: %s vs %s",
				cfg.Name, rt1.Owner(k1), rt2.Owner(k2))
		}
	}
	// Unresolvable devices still route deterministically.
	ghost := advisord.AdviseRequest{Device: "no-such-board"}
	if c1.routeKey(ghost) != c2.routeKey(ghost) {
		t.Fatal("synthetic route key diverged")
	}
}
