// Package client is a resilient HTTP client for the advisord service:
// exponential backoff with full jitter, a total retry budget, and honoring
// of the server's Retry-After hints, so a fleet of callers backs off
// politely instead of hammering a struggling server in lockstep. The chaos
// suite drives the 45-combination sweep through it under injected faults.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/fleet"
	"igpucomm/internal/microbench"
	"igpucomm/internal/simnet"
)

// Options configures a Client. Zero values mean defaults.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8025".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds total tries per call, first included (0: 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0: 50ms).
	BaseDelay time.Duration
	// MaxDelay caps any single backoff sleep (0: 2s).
	MaxDelay time.Duration
	// Budget caps the summed backoff sleeps per call; when the next sleep
	// would exceed it, the call fails with ErrBudgetExhausted wrapping the
	// last attempt's error (0: 10s).
	Budget time.Duration
	// Seed makes the jitter deterministic (0: 1).
	Seed int64
	// Clock is the time source for backoff sleeps and the topology-refresh
	// rate limiter (nil: simnet.Real()). The DST harness injects a virtual
	// clock here, so a full retry storm replays without wall-clock waits.
	Clock simnet.Clock
	// Sleep overrides the backoff wait (tests); it takes precedence over
	// Clock for sleeping. It must return early with ctx.Err() when the
	// context ends mid-sleep.
	Sleep func(ctx context.Context, d time.Duration) error

	// Fleet, when non-nil, routes each advisory question to the shard
	// owning its characterization key, layered UNDER the retry policy:
	// every retry re-picks a shard from the key's preference order, so a
	// 429/5xx or network failure reroutes to the next replica. BaseURL is
	// ignored when Fleet is set.
	Fleet *fleet.Router
	// Params mirrors the server's characterization parameters so the
	// client computes the same sha256 cache keys the fleet shards route on
	// (zero value: microbench.DefaultParams). A mismatch is safe but turns
	// every request into a reroute on arrival.
	Params microbench.Params
	// RefreshMinInterval rate-limits the topology refresh triggered by
	// retryable failures (0: 2s).
	RefreshMinInterval time.Duration
}

// ErrBudgetExhausted marks a call abandoned because its retry budget ran
// out before an attempt succeeded.
var ErrBudgetExhausted = errors.New("client: retry budget exhausted")

// APIError is a non-retryable (or final) HTTP-level failure from the server.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error body, when decodable.
	Message string
}

// Error formats the status and server message.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Client calls advisord with retries. Safe for concurrent use except for the
// jitter stream, which is internally locked via the channel-free rand guard
// below; create one client per goroutine in hot paths.
type Client struct {
	opt   Options
	http  *http.Client
	clock simnet.Clock
	sleep func(ctx context.Context, d time.Duration) error

	rngCh chan *rand.Rand // capacity-1 channel as a lock on the jitter stream

	// refreshMu guards lastRefresh, the topology-refresh rate limiter.
	refreshMu   sync.Mutex
	lastRefresh time.Time
}

// New builds a client for the server at opt.BaseURL.
func New(opt Options) *Client {
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 4
	}
	if opt.BaseDelay <= 0 {
		opt.BaseDelay = 50 * time.Millisecond
	}
	if opt.MaxDelay <= 0 {
		opt.MaxDelay = 2 * time.Second
	}
	if opt.Budget <= 0 {
		opt.Budget = 10 * time.Second
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.RefreshMinInterval <= 0 {
		opt.RefreshMinInterval = 2 * time.Second
	}
	if opt.Fleet != nil && len(opt.Params.MB2Fractions) == 0 {
		opt.Params = microbench.DefaultParams()
	}
	if opt.Clock == nil {
		opt.Clock = simnet.Real()
	}
	sleep := opt.Sleep
	if sleep == nil {
		sleep = opt.Clock.Sleep
	}
	c := &Client{opt: opt, http: opt.HTTPClient, clock: opt.Clock, sleep: sleep, rngCh: make(chan *rand.Rand, 1)}
	c.rngCh <- rand.New(rand.NewSource(opt.Seed))
	return c
}

// backoff returns the full-jitter delay for a retry: uniform in
// [0, min(MaxDelay, BaseDelay<<attempt)].
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.opt.MaxDelay
	if shifted := c.opt.BaseDelay << uint(attempt); shifted < ceil && shifted > 0 {
		ceil = shifted
	}
	rng := <-c.rngCh
	d := time.Duration(rng.Int63n(int64(ceil) + 1))
	c.rngCh <- rng
	return d
}

// Advise posts a batch of advisory questions, retrying transient failures
// (network errors, 429, 5xx) under the client's backoff policy. Retry-After
// headers raise the next sleep's floor whether they arrive on a 429 (at
// capacity) or a 503 (shard draining, breaker open). With
// Options.Fleet set, each question routes to the shard owning its
// characterization key (see fleet.go) — the same retries and budgets apply,
// per shard group.
func (c *Client) Advise(ctx context.Context, body advisord.AdviseBody) (advisord.AdviseResponse, error) {
	if c.opt.Fleet != nil {
		return c.adviseFleet(ctx, body)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return advisord.AdviseResponse{}, fmt.Errorf("client: encode request: %w", err)
	}
	var out advisord.AdviseResponse
	err = c.retry(ctx, func(ctx context.Context) (bool, time.Duration, error) {
		return c.postAdviseOnce(ctx, c.opt.BaseURL, payload, &out)
	})
	if err != nil {
		return advisord.AdviseResponse{}, err
	}
	return out, nil
}

// postAdviseOnce is one POST /v1/advise attempt against one base URL,
// reporting retryability and any server-imposed delay floor exactly as the
// retry loop expects.
func (c *Client) postAdviseOnce(ctx context.Context, baseURL string, payload []byte, out *advisord.AdviseResponse) (retryable bool, retryAfter time.Duration, _ error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/advise", bytes.NewReader(payload))
	if err != nil {
		return false, 0, fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return true, 0, fmt.Errorf("client: post advise: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, Message: readErrorBody(resp.Body)}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return true, parseRetryAfter(resp.Header.Get("Retry-After")), apiErr
		}
		return false, 0, apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return true, 0, fmt.Errorf("client: decode response: %w", err)
	}
	return false, 0, nil
}

// retry runs attempt under the backoff policy. attempt reports whether its
// error is worth retrying and an optional server-imposed minimum delay.
func (c *Client) retry(ctx context.Context, attempt func(ctx context.Context) (bool, time.Duration, error)) error {
	var lastErr error
	var spent time.Duration
	var floor time.Duration
	for try := 0; try < c.opt.MaxAttempts; try++ {
		if try > 0 {
			d := c.backoff(try - 1)
			if d < floor {
				d = floor
			}
			if spent+d > c.opt.Budget {
				return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, try, lastErr)
			}
			spent += d
			if err := c.sleep(ctx, d); err != nil {
				return fmt.Errorf("client: backoff interrupted: %w", err)
			}
		}
		retryable, retryAfter, err := attempt(ctx)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: %w: last error: %v", ctx.Err(), lastErr)
		}
		floor = retryAfter
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.opt.MaxAttempts, lastErr)
}

// readErrorBody extracts the server's {"error": ...} message, falling back
// to the raw body prefix.
func readErrorBody(r io.Reader) string {
	data, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil {
		return ""
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// parseRetryAfter reads a Retry-After header's delay-seconds form.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}
