package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/simnet"
)

// recordingSleep captures requested backoff delays without waiting.
type recordingSleep struct {
	delays []time.Duration
}

func (s *recordingSleep) sleep(ctx context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return ctx.Err()
}

func adviseBody() advisord.AdviseBody {
	return advisord.AdviseBody{Requests: []advisord.AdviseRequest{
		{Device: "jetson-tx2", App: "shwfs", Current: "sc"},
	}}
}

func okResponse(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"results":[{"zone":"zc-safe"}]}`)
}

// Full jitter must stay within [0, min(MaxDelay, Base<<attempt)] and not
// collapse to a constant.
func TestBackoffJitterBounds(t *testing.T) {
	c := New(Options{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 42})
	seen := map[time.Duration]bool{}
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 50 * time.Millisecond << uint(attempt)
		if ceil > 2*time.Second {
			ceil = 2 * time.Second
		}
		for i := 0; i < 200; i++ {
			d := c.backoff(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, ceil)
			}
			seen[d] = true
		}
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct delays across 1600 draws; jitter looks degenerate", len(seen))
	}
	// Same seed, same sequence: the plan is reproducible.
	a := New(Options{Seed: 7})
	b := New(Options{Seed: 7})
	for i := 0; i < 20; i++ {
		if x, y := a.backoff(i%4), b.backoff(i%4); x != y {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, x, y)
		}
	}
}

func TestRetriesTransientFailuresThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		okResponse(w)
	}))
	defer ts.Close()

	rec := &recordingSleep{}
	c := New(Options{BaseURL: ts.URL, Sleep: rec.sleep, Seed: 3})
	out, err := c.Advise(context.Background(), adviseBody())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Zone != "zc-safe" {
		t.Errorf("response = %+v", out)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if len(rec.delays) != 2 {
		t.Errorf("slept %d times, want 2", len(rec.delays))
	}
}

func TestDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no requests"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(Options{BaseURL: ts.URL, Sleep: (&recordingSleep{}).sleep})
	_, err := c.Advise(context.Background(), adviseBody())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if apiErr.Message != "no requests" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (400 is not retryable)", got)
	}
}

// A 429's Retry-After must raise the floor of the next sleep even when the
// jittered delay would have been shorter.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error":"at capacity"}`, http.StatusTooManyRequests)
			return
		}
		okResponse(w)
	}))
	defer ts.Close()

	rec := &recordingSleep{}
	c := New(Options{BaseURL: ts.URL, Sleep: rec.sleep, Budget: time.Minute,
		BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 5})
	if _, err := c.Advise(context.Background(), adviseBody()); err != nil {
		t.Fatal(err)
	}
	if len(rec.delays) != 1 || rec.delays[0] < 3*time.Second {
		t.Errorf("slept %v, want >= 3s from Retry-After", rec.delays)
	}
}

// When the summed sleeps would exceed the budget, the client gives up with a
// typed error wrapping the last failure instead of burning another attempt.
func TestBudgetExhaustion(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "10")
		http.Error(w, `{"error":"still down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	rec := &recordingSleep{}
	c := New(Options{BaseURL: ts.URL, Sleep: rec.sleep, Budget: 15 * time.Second, MaxAttempts: 10})
	_, err := c.Advise(context.Background(), adviseBody())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// 10s floor per sleep, 15s budget: first retry fits (10s), second would
	// hit 20s > 15s -- so exactly two attempts reach the server.
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2 under the budget", got)
	}
	if !errors.As(err, new(*APIError)) {
		t.Errorf("budget error does not wrap the last APIError: %v", err)
	}
}

func TestContextCancellationMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	// Real sleep with a long delay; cancel fires while the client waits.
	c := New(Options{BaseURL: ts.URL, BaseDelay: 10 * time.Second,
		MaxDelay: 10 * time.Second, Budget: time.Hour, Seed: 9})
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := c.Advise(ctx, adviseBody())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; backoff did not honor the context", elapsed)
	}
}

func TestRetriesNetworkErrors(t *testing.T) {
	// A server that is immediately closed: every dial fails.
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	url := ts.URL
	ts.Close()

	rec := &recordingSleep{}
	c := New(Options{BaseURL: url, Sleep: rec.sleep, MaxAttempts: 3})
	_, err := c.Advise(context.Background(), adviseBody())
	if err == nil {
		t.Fatal("dial to a dead server succeeded")
	}
	if len(rec.delays) != 2 {
		t.Errorf("slept %d times, want 2 (network errors are retryable)", len(rec.delays))
	}
}

// A draining shard sheds with 503 + Retry-After; the client must honor that
// hint exactly as it honors a 429's — same retry, same raised sleep floor —
// so a drain smears load over the hint window instead of hammering the
// shard the moment it starts handing off. Runs entirely in virtual time.
func TestHonorsRetryAfterOnDrain503(t *testing.T) {
	for _, tt := range []struct {
		name   string
		status int
		msg    string
	}{
		{"drain-503", http.StatusServiceUnavailable, "shard draining, retry another replica"},
		{"capacity-429", http.StatusTooManyRequests, "at capacity"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			sim := simnet.NewSim().AutoAdvance(true)
			nw := simnet.NewNetwork(sim, 1)
			var calls atomic.Int32
			nw.Register("advisord.sim", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) == 1 {
					w.Header().Set("Retry-After", "3")
					http.Error(w, fmt.Sprintf(`{"error":%q}`, tt.msg), tt.status)
					return
				}
				okResponse(w)
			}))
			c := New(Options{
				BaseURL:    "http://advisord.sim",
				HTTPClient: nw.Client("test-client"),
				Clock:      sim,
				BaseDelay:  time.Millisecond,
				MaxDelay:   2 * time.Millisecond,
				Budget:     time.Minute,
				Seed:       5,
			})
			virtualStart := sim.Now()
			wallStart := time.Now()
			if _, err := c.Advise(context.Background(), adviseBody()); err != nil {
				t.Fatal(err)
			}
			if got := calls.Load(); got != 2 {
				t.Fatalf("server saw %d calls, want 2", got)
			}
			if elapsed := sim.Since(virtualStart); elapsed < 3*time.Second {
				t.Errorf("virtual elapsed %v, want >= 3s from Retry-After", elapsed)
			}
			if wall := time.Since(wallStart); wall > time.Second {
				t.Errorf("took %v of wall clock; the wait must be virtual", wall)
			}
		})
	}
}
