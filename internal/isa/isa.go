// Package isa defines the micro instruction set the simulator's agents
// execute. The paper specifies its micro-benchmarks as PTX instruction mixes
// (ld.global / st.global / fma.rn / add.s32 plus CPU-side float ops such as
// sqrt and div); this package is that vocabulary, together with per-op issue
// cost tables for CPU cores and GPU SMs.
//
// Programs stay deliberately tiny: an instruction is an opcode plus, for
// memory ops, an address and size. Timing comes from the agents (internal/cpu,
// internal/gpu), which combine issue costs from a CostModel with memory
// latencies from the cache hierarchy.
//
// Internally a Program is run-length encoded: the micro-benchmarks emit long
// homogeneous compute stretches (Compute(FMA, 2048)), and storing those as
// one Run instead of 2048 Instrs is what lets the batch executors compile a
// kernel once and replay it without ever materializing the flat stream.
package isa

import (
	"fmt"
	"math"

	"igpucomm/internal/units"
)

// Op is a micro-ISA opcode.
type Op uint8

// Opcodes. Memory ops carry an address; compute ops only cost issue cycles.
const (
	Nop Op = iota
	LdGlobal
	StGlobal
	FMA    // fused multiply-add (fma.rn)
	AddS32 // integer add (add.s32)
	AddF32
	MulF32
	DivF32
	SqrtF32
	// LdShared and StShared are on-chip shared-memory (scratchpad)
	// accesses: they cost issue cycles on the SM but generate no memory-
	// hierarchy traffic — how tiled kernels stage their working sets.
	LdShared
	StShared
	opCount // sentinel
)

// NumOps is the number of defined opcodes — the length of dense per-op
// tables such as CostTable.
const NumOps = int(opCount)

var opNames = [...]string{
	Nop:      "nop",
	LdGlobal: "ld.global",
	StGlobal: "st.global",
	FMA:      "fma.rn",
	AddS32:   "add.s32",
	AddF32:   "add.f32",
	MulF32:   "mul.f32",
	DivF32:   "div.f32",
	SqrtF32:  "sqrt.f32",
	LdShared: "ld.shared",
	StShared: "st.shared",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMemory reports whether the op references the global memory hierarchy.
// Shared-memory ops are on-chip and deliberately excluded: they cost issue
// cycles but never reach the caches or DRAM.
func (o Op) IsMemory() bool { return o == LdGlobal || o == StGlobal }

// Instr is one instruction. Addr/Size are meaningful only for memory ops.
type Instr struct {
	Op   Op
	Addr int64
	Size int64
}

func (i Instr) String() string {
	if i.Op.IsMemory() {
		return fmt.Sprintf("%s [%#x], %d", i.Op, i.Addr, i.Size)
	}
	return i.Op.String()
}

// Validate reports structural problems with an instruction.
func (i Instr) Validate() error {
	if i.Op >= opCount {
		return fmt.Errorf("isa: unknown opcode %d", uint8(i.Op))
	}
	if i.Op.IsMemory() {
		if i.Size <= 0 {
			return fmt.Errorf("isa: %s: size %d must be positive", i.Op, i.Size)
		}
		if i.Addr < 0 {
			return fmt.Errorf("isa: %s: negative address %#x", i.Op, i.Addr)
		}
	}
	return nil
}

// CostModel gives per-op issue costs in cycles of the executing agent's
// clock. Memory ops' costs cover issue only; the service latency comes from
// the memory system.
type CostModel struct {
	Issue map[Op]units.Cycles
}

// Cost returns the issue cost of op (0 for unknown ops, so a sparse table is
// usable).
func (m CostModel) Cost(op Op) units.Cycles { return m.Issue[op] }

// Validate checks that no cost is negative.
func (m CostModel) Validate() error {
	for op, c := range m.Issue {
		if c < 0 {
			return fmt.Errorf("isa: cost model: negative cost %v for %s", c, op)
		}
	}
	return nil
}

// CostTable is a CostModel densified into an array, so the executors' inner
// loops index instead of hashing. Ops outside the defined range cost 0, like
// CostModel.Cost.
type CostTable [NumOps]units.Cycles

// Table densifies the model. Unknown (out-of-range) ops in the sparse map
// are dropped; they cost 0 through both representations.
func (m CostModel) Table() CostTable {
	var t CostTable
	for op, c := range m.Issue {
		if int(op) < NumOps {
			t[op] = c
		}
	}
	return t
}

// Cost returns the issue cost of op (0 for out-of-range ops).
func (t *CostTable) Cost(op Op) units.Cycles {
	if int(op) >= NumOps {
		return 0
	}
	return t[op]
}

// Integral reports whether every cost in the table is a whole number of
// cycles. When true, n repeated additions of a cost equal cost*n exactly
// (integer-valued float partial sums are exact below 2^53), which is what
// licenses the batch executors to bulk-charge run-length-encoded compute
// stretches without perturbing a single bit of the serial result.
func (t *CostTable) Integral() bool {
	for _, c := range t {
		if c != units.Cycles(math.Trunc(float64(c))) {
			return false
		}
	}
	return true
}

// DefaultCPUCosts is a Cortex-A-class in-order issue cost table.
func DefaultCPUCosts() CostModel {
	return CostModel{Issue: map[Op]units.Cycles{
		Nop:      1,
		LdGlobal: 1,
		StGlobal: 1,
		FMA:      1,
		AddS32:   1,
		AddF32:   1,
		MulF32:   1,
		DivF32:   12,
		SqrtF32:  14,
		LdShared: 1,
		StShared: 1,
	}}
}

// DefaultGPUCosts is a per-warp issue cost table for a Maxwell/Volta-class
// integrated GPU SM (costs are per warp-instruction, throughput-normalized).
func DefaultGPUCosts() CostModel {
	return CostModel{Issue: map[Op]units.Cycles{
		Nop:      1,
		LdGlobal: 1,
		StGlobal: 1,
		FMA:      1,
		AddS32:   1,
		AddF32:   1,
		MulF32:   1,
		DivF32:   8,
		SqrtF32:  8,
		LdShared: 2,
		StShared: 2,
	}}
}

// Run is a run-length-encoded stretch of identical instructions. Memory
// instructions never merge (each carries its own address), so a memory Run
// always has Count 1.
type Run struct {
	In    Instr
	Count int32
}

// Program is a buildable instruction sequence with fluent emitters, used by
// the micro-benchmarks to express their kernels compactly. The sequence is
// stored run-length encoded; emitters merge adjacent identical compute ops,
// so a Compute(FMA, 2048) stretch is one Run, not 2048 slots.
type Program struct {
	runs []Run
	n    int     // total instruction count across runs
	flat []Instr // scratch for Instrs() materialization
}

// Runs returns the run-length-encoded sequence (not a copy; callers must not
// mutate it while an agent is executing). This is the zero-allocation view
// the batch executors iterate.
func (p *Program) Runs() []Run { return p.runs }

// Instrs materializes the flat instruction slice into an internal scratch
// buffer and returns it. The slice is invalidated by the next emitter,
// Reset or Instrs call; callers must not mutate or retain it. Hot paths
// iterate Runs instead.
func (p *Program) Instrs() []Instr {
	if cap(p.flat) < p.n {
		p.flat = make([]Instr, 0, p.n)
	}
	p.flat = p.flat[:0]
	for _, r := range p.runs {
		for i := int32(0); i < r.Count; i++ {
			p.flat = append(p.flat, r.In)
		}
	}
	return p.flat
}

// Reset empties the program, keeping capacity, so warp-granular executors can
// reuse per-lane buffers.
func (p *Program) Reset() {
	p.runs = p.runs[:0]
	p.n = 0
}

// Len returns the instruction count.
func (p *Program) Len() int { return p.n }

// Ld appends a global load.
func (p *Program) Ld(addr, size int64) *Program {
	p.runs = append(p.runs, Run{In: Instr{Op: LdGlobal, Addr: addr, Size: size}, Count: 1})
	p.n++
	return p
}

// St appends a global store.
func (p *Program) St(addr, size int64) *Program {
	p.runs = append(p.runs, Run{In: Instr{Op: StGlobal, Addr: addr, Size: size}, Count: 1})
	p.n++
	return p
}

// Compute appends n copies of a compute op. Adjacent identical non-memory
// ops merge into one run, so repeated Compute calls stay O(1) in space.
func (p *Program) Compute(op Op, n int) *Program {
	if n <= 0 {
		return p
	}
	p.n += n
	if l := len(p.runs) - 1; l >= 0 && !op.IsMemory() && p.runs[l].In == (Instr{Op: op}) {
		p.runs[l].Count += int32(n)
		return p
	}
	p.runs = append(p.runs, Run{In: Instr{Op: op}, Count: int32(n)})
	return p
}

// Validate checks every instruction.
func (p *Program) Validate() error {
	idx := 0
	for _, r := range p.runs {
		if err := r.In.Validate(); err != nil {
			return fmt.Errorf("isa: instr %d: %w", idx, err)
		}
		idx += int(r.Count)
	}
	return nil
}

// MemoryBytes sums the bytes referenced by memory ops (requested bytes, not
// line-inflated traffic).
func (p *Program) MemoryBytes() int64 {
	var n int64
	for _, r := range p.runs {
		if r.In.Op.IsMemory() {
			n += r.In.Size * int64(r.Count)
		}
	}
	return n
}

// Counts tallies instructions by opcode.
func (p *Program) Counts() map[Op]int {
	c := make(map[Op]int)
	for _, r := range p.runs {
		c[r.In.Op] += int(r.Count)
	}
	return c
}

// PadTo appends Nops until the program reaches n instructions — the
// predication helper for SIMT kernels whose lanes would otherwise emit
// different instruction counts (all lanes must converge; real GPUs execute
// the masked path too).
func (p *Program) PadTo(n int) *Program {
	if pad := n - p.n; pad > 0 {
		p.Compute(Nop, pad)
	}
	return p
}
