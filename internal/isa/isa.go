// Package isa defines the micro instruction set the simulator's agents
// execute. The paper specifies its micro-benchmarks as PTX instruction mixes
// (ld.global / st.global / fma.rn / add.s32 plus CPU-side float ops such as
// sqrt and div); this package is that vocabulary, together with per-op issue
// cost tables for CPU cores and GPU SMs.
//
// Programs stay deliberately tiny: an instruction is an opcode plus, for
// memory ops, an address and size. Timing comes from the agents (internal/cpu,
// internal/gpu), which combine issue costs from a CostModel with memory
// latencies from the cache hierarchy.
package isa

import (
	"fmt"

	"igpucomm/internal/units"
)

// Op is a micro-ISA opcode.
type Op uint8

// Opcodes. Memory ops carry an address; compute ops only cost issue cycles.
const (
	Nop Op = iota
	LdGlobal
	StGlobal
	FMA    // fused multiply-add (fma.rn)
	AddS32 // integer add (add.s32)
	AddF32
	MulF32
	DivF32
	SqrtF32
	// LdShared and StShared are on-chip shared-memory (scratchpad)
	// accesses: they cost issue cycles on the SM but generate no memory-
	// hierarchy traffic — how tiled kernels stage their working sets.
	LdShared
	StShared
	opCount // sentinel
)

var opNames = [...]string{
	Nop:      "nop",
	LdGlobal: "ld.global",
	StGlobal: "st.global",
	FMA:      "fma.rn",
	AddS32:   "add.s32",
	AddF32:   "add.f32",
	MulF32:   "mul.f32",
	DivF32:   "div.f32",
	SqrtF32:  "sqrt.f32",
	LdShared: "ld.shared",
	StShared: "st.shared",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMemory reports whether the op references the global memory hierarchy.
// Shared-memory ops are on-chip and deliberately excluded: they cost issue
// cycles but never reach the caches or DRAM.
func (o Op) IsMemory() bool { return o == LdGlobal || o == StGlobal }

// Instr is one instruction. Addr/Size are meaningful only for memory ops.
type Instr struct {
	Op   Op
	Addr int64
	Size int64
}

func (i Instr) String() string {
	if i.Op.IsMemory() {
		return fmt.Sprintf("%s [%#x], %d", i.Op, i.Addr, i.Size)
	}
	return i.Op.String()
}

// Validate reports structural problems with an instruction.
func (i Instr) Validate() error {
	if i.Op >= opCount {
		return fmt.Errorf("isa: unknown opcode %d", uint8(i.Op))
	}
	if i.Op.IsMemory() {
		if i.Size <= 0 {
			return fmt.Errorf("isa: %s: size %d must be positive", i.Op, i.Size)
		}
		if i.Addr < 0 {
			return fmt.Errorf("isa: %s: negative address %#x", i.Op, i.Addr)
		}
	}
	return nil
}

// CostModel gives per-op issue costs in cycles of the executing agent's
// clock. Memory ops' costs cover issue only; the service latency comes from
// the memory system.
type CostModel struct {
	Issue map[Op]units.Cycles
}

// Cost returns the issue cost of op (0 for unknown ops, so a sparse table is
// usable).
func (m CostModel) Cost(op Op) units.Cycles { return m.Issue[op] }

// Validate checks that no cost is negative.
func (m CostModel) Validate() error {
	for op, c := range m.Issue {
		if c < 0 {
			return fmt.Errorf("isa: cost model: negative cost %v for %s", c, op)
		}
	}
	return nil
}

// DefaultCPUCosts is a Cortex-A-class in-order issue cost table.
func DefaultCPUCosts() CostModel {
	return CostModel{Issue: map[Op]units.Cycles{
		Nop:      1,
		LdGlobal: 1,
		StGlobal: 1,
		FMA:      1,
		AddS32:   1,
		AddF32:   1,
		MulF32:   1,
		DivF32:   12,
		SqrtF32:  14,
		LdShared: 1,
		StShared: 1,
	}}
}

// DefaultGPUCosts is a per-warp issue cost table for a Maxwell/Volta-class
// integrated GPU SM (costs are per warp-instruction, throughput-normalized).
func DefaultGPUCosts() CostModel {
	return CostModel{Issue: map[Op]units.Cycles{
		Nop:      1,
		LdGlobal: 1,
		StGlobal: 1,
		FMA:      1,
		AddS32:   1,
		AddF32:   1,
		MulF32:   1,
		DivF32:   8,
		SqrtF32:  8,
		LdShared: 2,
		StShared: 2,
	}}
}

// Program is a buildable instruction sequence with fluent emitters, used by
// the micro-benchmarks to express their kernels compactly.
type Program struct {
	instrs []Instr
}

// Instrs returns the underlying instruction slice (not a copy; callers must
// not mutate it while an agent is executing).
func (p *Program) Instrs() []Instr { return p.instrs }

// Reset empties the program, keeping capacity, so warp-granular executors can
// reuse per-lane buffers.
func (p *Program) Reset() { p.instrs = p.instrs[:0] }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.instrs) }

// Ld appends a global load.
func (p *Program) Ld(addr, size int64) *Program {
	p.instrs = append(p.instrs, Instr{Op: LdGlobal, Addr: addr, Size: size})
	return p
}

// St appends a global store.
func (p *Program) St(addr, size int64) *Program {
	p.instrs = append(p.instrs, Instr{Op: StGlobal, Addr: addr, Size: size})
	return p
}

// Compute appends n copies of a compute op.
func (p *Program) Compute(op Op, n int) *Program {
	for i := 0; i < n; i++ {
		p.instrs = append(p.instrs, Instr{Op: op})
	}
	return p
}

// Validate checks every instruction.
func (p *Program) Validate() error {
	for idx, in := range p.instrs {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: instr %d: %w", idx, err)
		}
	}
	return nil
}

// MemoryBytes sums the bytes referenced by memory ops (requested bytes, not
// line-inflated traffic).
func (p *Program) MemoryBytes() int64 {
	var n int64
	for _, in := range p.instrs {
		if in.Op.IsMemory() {
			n += in.Size
		}
	}
	return n
}

// Counts tallies instructions by opcode.
func (p *Program) Counts() map[Op]int {
	c := make(map[Op]int)
	for _, in := range p.instrs {
		c[in.Op]++
	}
	return c
}

// PadTo appends Nops until the program reaches n instructions — the
// predication helper for SIMT kernels whose lanes would otherwise emit
// different instruction counts (all lanes must converge; real GPUs execute
// the masked path too).
func (p *Program) PadTo(n int) *Program {
	for p.Len() < n {
		p.instrs = append(p.instrs, Instr{Op: Nop})
	}
	return p
}
