package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"igpucomm/internal/units"
)

func TestOpStrings(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{LdGlobal, "ld.global"},
		{StGlobal, "st.global"},
		{FMA, "fma.rn"},
		{AddS32, "add.s32"},
		{SqrtF32, "sqrt.f32"},
		{DivF32, "div.f32"},
		{Nop, "nop"},
		{Op(200), "Op(200)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestIsMemory(t *testing.T) {
	for op := Nop; op < opCount; op++ {
		want := op == LdGlobal || op == StGlobal
		if got := op.IsMemory(); got != want {
			t.Errorf("%s.IsMemory() = %v, want %v", op, got, want)
		}
	}
}

func TestInstrString(t *testing.T) {
	ld := Instr{Op: LdGlobal, Addr: 0x40, Size: 4}
	if got := ld.String(); !strings.Contains(got, "0x40") || !strings.Contains(got, "ld.global") {
		t.Errorf("memory instr string = %q", got)
	}
	if got := (Instr{Op: FMA}).String(); got != "fma.rn" {
		t.Errorf("compute instr string = %q", got)
	}
}

func TestInstrValidate(t *testing.T) {
	good := []Instr{
		{Op: Nop},
		{Op: LdGlobal, Addr: 0, Size: 4},
		{Op: StGlobal, Addr: 64, Size: 64},
		{Op: FMA},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("valid %v rejected: %v", in, err)
		}
	}
	bad := []Instr{
		{Op: opCount},
		{Op: Op(99)},
		{Op: LdGlobal, Addr: 0, Size: 0},
		{Op: StGlobal, Addr: -4, Size: 4},
		{Op: LdGlobal, Addr: 4, Size: -1},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("invalid %v accepted", in)
		}
	}
}

func TestCostModels(t *testing.T) {
	cpu := DefaultCPUCosts()
	gpu := DefaultGPUCosts()
	if err := cpu.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := gpu.Validate(); err != nil {
		t.Fatal(err)
	}
	if cpu.Cost(DivF32) <= cpu.Cost(MulF32) {
		t.Error("CPU division should cost more than multiply")
	}
	if cpu.Cost(SqrtF32) <= cpu.Cost(AddF32) {
		t.Error("CPU sqrt should cost more than add")
	}
	if gpu.Cost(FMA) != 1 {
		t.Error("GPU FMA should be single-issue")
	}
	if cpu.Cost(Op(250)) != 0 {
		t.Error("unknown op should cost 0")
	}
	badModel := CostModel{Issue: map[Op]units.Cycles{FMA: -1}}
	if err := badModel.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestProgramBuilder(t *testing.T) {
	var p Program
	p.Ld(0, 4).Compute(FMA, 3).St(4, 4).Compute(SqrtF32, 1)
	if p.Len() != 6 {
		t.Fatalf("len = %d, want 6", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.MemoryBytes(); got != 8 {
		t.Errorf("memory bytes = %d, want 8", got)
	}
	counts := p.Counts()
	if counts[FMA] != 3 || counts[LdGlobal] != 1 || counts[StGlobal] != 1 || counts[SqrtF32] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestProgramValidateCatchesBadInstr(t *testing.T) {
	var p Program
	p.Ld(0, 4)
	p.runs = append(p.runs, Run{In: Instr{Op: LdGlobal, Size: 0}, Count: 1})
	p.n++
	if err := p.Validate(); err == nil {
		t.Error("program with invalid instruction accepted")
	}
}

// Property: builder programs are always valid, and MemoryBytes equals the sum
// of emitted sizes.
func TestPropertyBuilderValid(t *testing.T) {
	f := func(loads []uint8, fmas uint8) bool {
		var p Program
		var want int64
		for i, sz := range loads {
			size := int64(sz%64) + 1
			p.Ld(int64(i)*64, size)
			want += size
		}
		p.Compute(FMA, int(fmas%32))
		return p.Validate() == nil && p.MemoryBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProgramReset(t *testing.T) {
	var p Program
	p.Ld(0, 4).Compute(FMA, 3)
	p.Reset()
	if p.Len() != 0 {
		t.Errorf("len after reset = %d, want 0", p.Len())
	}
	p.St(8, 4)
	if p.Len() != 1 || p.Instrs()[0].Op != StGlobal {
		t.Error("program unusable after reset")
	}
}

func TestPadTo(t *testing.T) {
	var p Program
	p.Ld(0, 4).PadTo(5)
	if p.Len() != 5 {
		t.Fatalf("len = %d, want 5", p.Len())
	}
	for _, in := range p.Instrs()[1:] {
		if in.Op != Nop {
			t.Error("padding is not Nop")
		}
	}
	p.PadTo(3) // shorter target: no-op
	if p.Len() != 5 {
		t.Error("PadTo shrank the program")
	}
}
