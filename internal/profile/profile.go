// Package profile is the simulator's stand-in for nvprof/perf: it runs a
// workload under a communication model and distills the counters the
// performance model consumes — L1/LLC miss rates on the CPU side, GPU L1 hit
// rate, transaction counts and sizes, kernel runtime, copy time per kernel.
//
// Because the cache simulator counts exactly, these "profiles" are noise-free
// versions of what a sampling profiler reports on real hardware.
package profile

import (
	"context"
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/faults"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
	"igpucomm/internal/units"
)

// faultCollect interrupts profile collection — the stand-in for a wedged or
// crashing profiler run (a truncated nvprof session on real hardware).
var faultCollect = faults.Register("profile.collect",
	"workload profiling run", faults.CanError|faults.CanLatency|faults.CanPanic)

// Profile condenses one profiled run.
type Profile struct {
	Platform string
	Workload string
	Model    string

	// CPU-side counters (eqn 1 inputs) measured over the CPU task.
	CPUL1MissRate  float64
	CPULLCMissRate float64
	// CPUCacheUsage is eqn 1 evaluated on the above.
	CPUCacheUsage float64
	// CPUCacheUsagePerInstr is the instruction-normalized variant the
	// framework's CPU threshold is defined against.
	CPUCacheUsagePerInstr float64

	// GPU-side counters (eqn 2 inputs) aggregated over all launches.
	GPUL1HitRate     float64
	Transactions     int64
	TransactionBytes int64

	// Times.
	CPUTime       units.Latency
	KernelTime    units.Latency // total across launches
	KernelTimePer units.Latency
	CopyTimePer   units.Latency
	Total         units.Latency

	// GPUDemand is the kernel's LL-L1 demand throughput (eqn 2 numerator
	// over kernel runtime). Dividing by the device's measured peak (first
	// micro-benchmark) yields GPUCacheUsage.
	GPUDemand units.BytesPerSecond

	// PerBuffer is the run's per-buffer heat breakdown, hottest first; nil
	// unless the platform ran with heat profiling enabled.
	PerBuffer []heatmap.BufferHeat

	// Report keeps the full run record for downstream consumers.
	Report comm.Report
}

// GPUCacheUsage evaluates eqn 2 against a device peak throughput.
func (p Profile) GPUCacheUsage(peak units.BytesPerSecond) float64 {
	if peak <= 0 {
		return 0
	}
	return float64(p.GPUDemand) / float64(peak)
}

// Collect profiles the workload under the given model on the platform.
func Collect(ctx context.Context, s *soc.SoC, w comm.Workload, m comm.Model) (Profile, error) {
	if m == nil {
		return Profile{}, fmt.Errorf("profile: nil model")
	}
	_, span := telemetry.Start(ctx, "profile.collect",
		telemetry.String("workload", w.Name), telemetry.String("model", m.Name()))
	defer span.End()
	if err := faults.Fire(faultCollect); err != nil {
		return Profile{}, fmt.Errorf("profile: %s under %s: %w", w.Name, m.Name(), err)
	}
	rep, err := m.Run(s, w)
	if err != nil {
		return Profile{}, fmt.Errorf("profile: %s under %s: %w", w.Name, m.Name(), err)
	}
	return FromReport(rep), nil
}

// FromReport distills an existing run report into a Profile, so callers that
// already ran the workload (the framework does, for every model) need not
// re-simulate.
func FromReport(rep comm.Report) Profile {
	p := Profile{
		Platform:       rep.Platform,
		Workload:       rep.Workload,
		Model:          rep.Model,
		CPUL1MissRate:  rep.CPUL1MissRate,
		CPULLCMissRate: rep.CPULLCMissRate,
		CPUCacheUsage:  perfmodel.CPUCacheUsage(rep.CPUL1MissRate, rep.CPULLCMissRate),
		CPUCacheUsagePerInstr: perfmodel.CPUCacheUsagePerInstr(
			rep.CPUL1Misses, rep.CPULLCMissRate, rep.CPUInstrs),
		GPUL1HitRate:     rep.GPU.L1.HitRate(),
		Transactions:     rep.GPU.Transactions,
		TransactionBytes: rep.GPU.TransactionBytes,
		CPUTime:          rep.CPUTime,
		KernelTime:       rep.KernelTime,
		KernelTimePer:    rep.KernelTimePer(),
		CopyTimePer:      rep.CopyTimePer(),
		Total:            rep.Total,
		PerBuffer:        rep.BufferHeat,
		Report:           rep,
	}
	// Guard the demand math against corrupt reports (fault-injected runs can
	// surface negative byte counts or out-of-range hit rates): clamp to the
	// physically meaningful ranges instead of propagating a negative or
	// >100% demand into the classification.
	if p.TransactionBytes < 0 {
		p.TransactionBytes = 0
	}
	if p.GPUL1HitRate < 0 {
		p.GPUL1HitRate = 0
	} else if p.GPUL1HitRate > 1 {
		p.GPUL1HitRate = 1
	}
	if rep.KernelTime > 0 {
		demandBytes := float64(p.TransactionBytes) * (1 - p.GPUL1HitRate)
		p.GPUDemand = units.BytesPerSecond(demandBytes / rep.KernelTime.Seconds())
	}
	return p
}
