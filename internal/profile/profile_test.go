package profile

import (
	"context"
	"math"
	"testing"

	"igpucomm/internal/cache"
	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/devices"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

func testWorkload() comm.Workload {
	const n = 4096
	return comm.Workload{
		Name: "prof",
		In:   []comm.BufferSpec{{Name: "in", Size: n * 4}},
		Out:  []comm.BufferSpec{{Name: "out", Size: n * 4}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			base := lay.Addr("in")
			for i := int64(0); i < n; i++ {
				c.Store(base+i*4, 4)
			}
		},
		MakeKernel: func(lay comm.Layout, launch int) gpu.Kernel {
			in, out := lay.Addr("in"), lay.Addr("out")
			return gpu.Kernel{
				Name:    "k",
				Threads: n,
				Program: func(tid int, p *isa.Program) {
					p.Ld(in+int64(tid)*4, 4)
					p.St(out+int64(tid)*4, 4)
				},
			}
		},
		Warmup: 1,
	}
}

func TestCollectFillsEverything(t *testing.T) {
	s := soc.New(devices.TX2())
	p, err := Collect(context.Background(), s, testWorkload(), comm.SC{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Platform != devices.TX2Name || p.Workload != "prof" || p.Model != "sc" {
		t.Errorf("identity fields wrong: %+v", p)
	}
	if p.Transactions == 0 || p.TransactionBytes == 0 {
		t.Error("no transactions recorded")
	}
	if p.KernelTime <= 0 || p.CPUTime <= 0 || p.Total <= 0 {
		t.Error("missing times")
	}
	if p.GPUDemand <= 0 {
		t.Error("no GPU demand computed")
	}
	if p.CopyTimePer <= 0 {
		t.Error("SC profile must include copy time per kernel")
	}
	if p.CPUCacheUsage < 0 || p.CPUCacheUsage > 1 {
		t.Errorf("CPU cache usage out of range: %v", p.CPUCacheUsage)
	}
}

func TestCollectNilModel(t *testing.T) {
	s := soc.New(devices.TX2())
	if _, err := Collect(context.Background(), s, testWorkload(), nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestCollectPropagatesErrors(t *testing.T) {
	s := soc.New(devices.TX2())
	w := testWorkload()
	w.Name = ""
	if _, err := Collect(context.Background(), s, w, comm.SC{}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestGPUCacheUsageNormalization(t *testing.T) {
	p := Profile{GPUDemand: 48.5 * units.GBps}
	if got := p.GPUCacheUsage(97 * units.GBps); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("usage = %v, want 0.5", got)
	}
	if p.GPUCacheUsage(0) != 0 {
		t.Error("zero peak should give 0")
	}
}

func TestFromReportConsistentWithCollect(t *testing.T) {
	s := soc.New(devices.TX2())
	rep, err := comm.SC{}.Run(s, testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	p := FromReport(rep)
	p2, err := Collect(context.Background(), s, testWorkload(), comm.SC{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Transactions != p2.Transactions || p.KernelTime != p2.KernelTime {
		t.Error("FromReport and Collect disagree on identical runs")
	}
}

func TestGPUDemandReflectsL1Hits(t *testing.T) {
	// A kernel whose warm L1 absorbs everything should show low demand.
	s := soc.New(devices.TX2())
	reuse := testWorkload()
	reuse.Name = "reuse"
	reuse.MakeKernel = func(lay comm.Layout, launch int) gpu.Kernel {
		in := lay.Addr("in")
		return gpu.Kernel{
			Name:    "hot",
			Threads: 4096,
			Program: func(tid int, p *isa.Program) {
				// Every warp re-reads the same single line, repeatedly.
				for i := 0; i < 8; i++ {
					p.Ld(in, 4)
				}
			},
		}
	}
	hot, err := Collect(context.Background(), s, reuse, comm.SC{})
	if err != nil {
		t.Fatal(err)
	}
	if hot.GPUL1HitRate < 0.9 {
		t.Errorf("hot-loop L1 hit rate = %v, want high", hot.GPUL1HitRate)
	}
	stream, err := Collect(context.Background(), s, testWorkload(), comm.SC{})
	if err != nil {
		t.Fatal(err)
	}
	if hot.GPUCacheUsage(97*units.GBps) >= stream.GPUCacheUsage(97*units.GBps) {
		t.Error("L1-resident kernel should show lower LL demand than streaming kernel")
	}
}

// TestFromReportClampsCorruptCounters covers the guard in front of the
// GPUDemand math: fault-injected runs can hand FromReport reports whose raw
// counters are physically impossible (negative byte totals, hit counts above
// access counts). The clamp keeps the derived demand inside [0, peak] instead
// of propagating nonsense into the classification.
func TestFromReportClampsCorruptCounters(t *testing.T) {
	const kt = units.Latency(1000)
	mk := func(txBytes, reads, readHits int64) comm.Report {
		return comm.Report{
			KernelTime: kt,
			GPU: gpu.Result{
				L1:               cache.Stats{Reads: reads, ReadHits: readHits},
				TransactionBytes: txBytes,
			},
		}
	}
	tests := []struct {
		name      string
		rep       comm.Report
		wantBytes int64
		wantHit   float64
	}{
		{"in-range passes through", mk(1000, 10, 5), 1000, 0.5},
		{"negative bytes clamp to zero", mk(-4096, 10, 5), 0, 0.5},
		{"hit rate above one clamps to one", mk(1000, 10, 20), 1000, 1},
		{"negative hit rate clamps to zero", mk(1000, 10, -5), 1000, 0},
		{"both corrupt", mk(-1, 10, 20), 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := FromReport(tt.rep)
			if p.TransactionBytes != tt.wantBytes {
				t.Errorf("TransactionBytes = %d, want %d", p.TransactionBytes, tt.wantBytes)
			}
			if p.GPUL1HitRate != tt.wantHit {
				t.Errorf("GPUL1HitRate = %v, want %v", p.GPUL1HitRate, tt.wantHit)
			}
			want := units.BytesPerSecond(float64(tt.wantBytes) * (1 - tt.wantHit) / kt.Seconds())
			if p.GPUDemand != want {
				t.Errorf("GPUDemand = %v, want %v", p.GPUDemand, want)
			}
			if p.GPUDemand < 0 {
				t.Errorf("GPUDemand = %v, negative demand escaped the clamp", p.GPUDemand)
			}
		})
	}
	// Zero kernel time leaves demand untouched regardless of counters.
	if p := FromReport(comm.Report{GPU: gpu.Result{TransactionBytes: 1 << 30}}); p.GPUDemand != 0 {
		t.Errorf("GPUDemand with zero kernel time = %v, want 0", p.GPUDemand)
	}
}
