package tiling

import (
	"fmt"

	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// SoCWork binds the pattern to simulated hardware: what the CPU does per
// tile and what kernel the GPU launches over its tile set each phase.
type SoCWork struct {
	// CPUTile processes one tile on the CPU model.
	CPUTile func(c *cpu.CPU, t Tile)
	// GPUKernel builds the phase's kernel over the GPU-side tiles.
	GPUKernel func(phase int, tiles []Tile) gpu.Kernel
	// Barrier is the per-phase synchronization cost (event record + wait).
	Barrier units.Latency
}

// PhaseTrace records one simulated phase for inspection.
type PhaseTrace struct {
	Phase    int
	CPUTime  units.Latency
	GPUTime  units.Latency
	Overlap  units.Latency // arbited makespan of the two sides
	CPUTiles int
	GPUTiles int
}

// SimulateOnSoC runs the pattern phase-accurately on the simulated platform:
// each phase, the CPU model processes its parity's tiles while the GPU model
// runs a kernel over the other parity's, the two streams contend for DRAM
// through the arbiter, and the phase ends at the slower side plus the
// barrier. This is the mechanical version of what comm.ZC approximates with
// a single whole-iteration overlap.
func (p Pattern) SimulateOnSoC(s *soc.SoC, work SoCWork) (units.Latency, []PhaseTrace, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	if work.CPUTile == nil || work.GPUKernel == nil {
		return 0, nil, fmt.Errorf("tiling: nil SoC work")
	}
	if work.Barrier < 0 {
		return 0, nil, fmt.Errorf("tiling: negative barrier cost")
	}

	var total units.Latency
	traces := make([]PhaseTrace, 0, p.Phases)
	for phase := 0; phase < p.Phases; phase++ {
		cpuParity := Parity(phase % 2)
		cpuTiles := p.Geo.Tiles(cpuParity)
		gpuTiles := p.Geo.Tiles(cpuParity.Flip())

		// CPU side, measured through the CPU model.
		trafficBefore := s.CPUTraffic()
		start := s.CPU.Elapsed()
		for _, t := range cpuTiles {
			work.CPUTile(s.CPU, t)
		}
		cpuTime := s.CPU.Elapsed() - start
		cpuBytes := s.CPUTraffic().Bytes() - trafficBefore.Bytes()

		// GPU side, one launch over its tile set.
		var gpuTime units.Latency
		var gpuBytes int64
		if len(gpuTiles) > 0 {
			res, err := s.GPU.Launch(work.GPUKernel(phase, gpuTiles))
			if err != nil {
				return 0, nil, fmt.Errorf("tiling: phase %d: %w", phase, err)
			}
			gpuTime = res.Time + res.LaunchOverhead
			gpuBytes = res.DRAM.Bytes() + res.Pinned.Bytes()
		}

		makespan, _ := s.Overlap(
			soc.Stream{Name: "cpu", Solo: cpuTime, Bytes: cpuBytes},
			soc.Stream{Name: "gpu", Solo: gpuTime, Bytes: gpuBytes},
		)
		total += makespan + work.Barrier
		traces = append(traces, PhaseTrace{
			Phase:    phase,
			CPUTime:  cpuTime,
			GPUTime:  gpuTime,
			Overlap:  makespan,
			CPUTiles: len(cpuTiles),
			GPUTiles: len(gpuTiles),
		})
	}
	return total, traces, nil
}
