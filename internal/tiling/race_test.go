package tiling

import (
	"math/rand"
	"testing"
)

// TestRunConcurrentPhasesRaceFree stresses the §III-C pattern's concurrency
// claim under the race detector: the CPU and GPU workers write to shared
// per-tile state with NO synchronization of their own — the phase barrier
// inside Run is the only ordering point. If the even/odd ownership or the
// barrier were wrong, `go test -race` flags the conflicting writes; the
// assertions below additionally check that every tile is visited exactly
// once per phase and that the last writer is the phase's owner.
func TestRunConcurrentPhasesRaceFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		width := 16 + rng.Intn(240)
		height := 1 + rng.Intn(48)
		elem := []int{1, 2, 4, 8}[rng.Intn(4)]
		g, err := NewGeometry(width, height, elem, 64, 64)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		phases := 2 + rng.Intn(9)
		p := Pattern{Geo: g, Phases: phases}

		// Unsynchronized shared state, deliberately.
		lastAgent := make([]int, g.TileCount()) // 0 = cpu, 1 = gpu
		visits := make([]int, g.TileCount())

		cpu := func(phase int, tile Tile) {
			lastAgent[tile.Index] = 0
			visits[tile.Index]++
		}
		gpu := func(phase int, tile Tile) {
			lastAgent[tile.Index] = 1
			visits[tile.Index]++
		}
		if err := p.Run(cpu, gpu); err != nil {
			t.Fatalf("trial %d (%dx%d, %d phases): %v", trial, width, height, phases, err)
		}

		// Each phase covers every tile exactly once across the two agents.
		for i, v := range visits {
			if v != phases {
				t.Fatalf("trial %d: tile %d visited %d times, want %d", trial, i, v, phases)
			}
		}
		// In the final phase the CPU owns parity (phases-1)%2; the last
		// writer of each tile must match that ownership.
		lastCPUParity := Parity((phases - 1) % 2)
		for i := 0; i < g.TileCount(); i++ {
			tile := g.TileAt(i)
			wantAgent := 1
			if tile.Parity(g) == lastCPUParity {
				wantAgent = 0
			}
			if lastAgent[i] != wantAgent {
				t.Fatalf("trial %d: tile %d last written by agent %d, want %d",
					trial, i, lastAgent[i], wantAgent)
			}
		}
	}
}

// TestRunManyPhasesStress is a heavier soak for the race detector: a larger
// grid and more phases, with both workers also reading the other parity's
// previous-phase results (the producer/consumer handoff the barrier exists
// to order).
func TestRunManyPhasesStress(t *testing.T) {
	g, err := NewGeometry(512, 32, 4, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	const phases = 16
	p := Pattern{Geo: g, Phases: phases}

	// Producer/consumer handoff: ownership of a tile alternates each phase,
	// so reading your own tile consumes what the OTHER agent wrote there in
	// the previous phase — visible only because of the barrier. (Reading any
	// other-parity tile in the same phase would be a real race: its current
	// owner is rewriting it concurrently.)
	cells := make([]int, g.TileCount())
	cpu := func(phase int, tile Tile) { cells[tile.Index] = phase + cells[tile.Index]/2 }
	gpu := func(phase int, tile Tile) { cells[tile.Index] = -phase - cells[tile.Index]/2 }
	if err := p.Run(cpu, gpu); err != nil {
		t.Fatal(err)
	}
	// Sign of each cell identifies the final phase's owner.
	last := Parity((phases - 1) % 2)
	for i := range cells {
		tile := g.TileAt(i)
		cpuOwned := tile.Parity(g) == last
		if cpuOwned && cells[i] < 0 || !cpuOwned && cells[i] > 0 {
			t.Fatalf("tile %d final value %d contradicts phase %d ownership", i, cells[i], phases-1)
		}
	}
}
