package tiling_test

import (
	"fmt"

	"igpucomm/internal/tiling"
)

// The §III-C pattern: CPU and GPU goroutines alternate over even/odd tiles,
// phase by phase, with no per-access synchronization.
func ExamplePattern_Run() {
	geo, err := tiling.NewGeometry(64, 2, 4, 64, 64) // 64x2 floats, 64B lines
	if err != nil {
		panic(err)
	}
	data := make([]int, geo.Width*geo.Height)
	p := tiling.Pattern{Geo: geo, Phases: 2}
	err = p.Run(
		func(phase int, t tiling.Tile) { // CPU side
			for y := t.Y0; y < t.Y0+t.H; y++ {
				for x := t.X0; x < t.X0+t.W; x++ {
					data[y*geo.Width+x]++
				}
			}
		},
		func(phase int, t tiling.Tile) { // GPU side
			for y := t.Y0; y < t.Y0+t.H; y++ {
				for x := t.X0; x < t.X0+t.W; x++ {
					data[y*geo.Width+x] += 10
				}
			}
		},
	)
	if err != nil {
		panic(err)
	}
	// After two phases every element was visited once by each side.
	fmt.Println("tiles:", geo.TileCount(), "element[0]:", data[0])
	// Output: tiles: 8 element[0]: 11
}

// The analytic twin prices the pattern: balanced sides overlap almost
// perfectly.
func ExamplePattern_Estimate() {
	geo, _ := tiling.NewGeometry(256, 16, 4, 64, 64)
	p := tiling.Pattern{Geo: geo, Phases: 2}
	overlapped, serialized, _ := p.Estimate(tiling.Timing{CPUTile: 100, GPUTile: 100, Barrier: 0})
	fmt.Printf("overlap gain %.1fx\n", float64(serialized)/float64(overlapped))
	// Output: overlap gain 2.0x
}
